#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "des/scheduler.hpp"
#include "phy/channel.hpp"
#include "phy/units.hpp"

namespace rrnet::phy {
namespace {

struct Capture final : RadioListener {
  std::vector<std::pair<Airframe, RxInfo>> received;
  std::vector<std::uint64_t> tx_done;
  int busy_edges = 0;
  void on_receive(const Airframe& frame, const RxInfo& info) override {
    received.emplace_back(frame, info);
  }
  void on_tx_done(std::uint64_t id) override { tx_done.push_back(id); }
  void on_medium_changed(bool busy) override {
    if (busy) ++busy_edges;
  }
};

class ChannelTest : public ::testing::Test {
 protected:
  /// Channel with nodes on a line, spacing given, range 250 m.
  void build(std::vector<double> xs) {
    std::vector<geom::Vec2> positions;
    for (double x : xs) positions.push_back({x, 500.0});
    FreeSpace for_power;
    params_.cs_threshold_dbm = params_.rx_threshold_dbm - 7.0;
    params_.noise_floor_dbm = params_.rx_threshold_dbm - 14.0;
    params_.interference_cutoff_dbm = params_.rx_threshold_dbm - 14.0;
    params_.tx_power_dbm =
        tx_power_for_range(for_power, 250.0, params_.rx_threshold_dbm);
    channel_ = std::make_unique<Channel>(
        scheduler_, geom::Terrain(5000.0, 1000.0),
        std::make_unique<FreeSpace>(), params_, positions, des::Rng(1));
    captures_.resize(xs.size());
    for (std::uint32_t i = 0; i < xs.size(); ++i) {
      channel_->transceiver(i).attach(captures_[i]);
    }
  }

  Airframe frame_from(std::uint32_t sender, std::uint32_t bytes = 100) {
    Airframe f;
    f.id = channel_->next_frame_id();
    f.sender = sender;
    f.size_bytes = bytes;
    return f;
  }

  des::Scheduler scheduler_;
  RadioParams params_;
  std::unique_ptr<Channel> channel_;
  std::vector<Capture> captures_;
};

TEST_F(ChannelTest, DeliversWithinRange) {
  build({0.0, 200.0});
  EXPECT_TRUE(channel_->transmit(frame_from(0)));
  scheduler_.run();
  ASSERT_EQ(captures_[1].received.size(), 1u);
  EXPECT_EQ(captures_[1].received[0].first.sender, 0u);
  EXPECT_EQ(channel_->stats().deliveries, 1u);
  EXPECT_EQ(channel_->stats().transmissions, 1u);
}

TEST_F(ChannelTest, NoDeliveryBeyondRange) {
  build({0.0, 300.0});
  channel_->transmit(frame_from(0));
  scheduler_.run();
  EXPECT_TRUE(captures_[1].received.empty());
  EXPECT_EQ(channel_->stats().deliveries, 0u);
}

TEST_F(ChannelTest, NominalRangeIsCalibrated) {
  build({0.0, 200.0});
  EXPECT_NEAR(channel_->nominal_range_m(), 250.0, 0.5);
  EXPECT_GT(channel_->interference_range_m(), channel_->nominal_range_m());
}

TEST_F(ChannelTest, RssiDecreasesWithDistance) {
  build({0.0, 100.0, 240.0});
  channel_->transmit(frame_from(0));
  scheduler_.run();
  ASSERT_EQ(captures_[1].received.size(), 1u);
  ASSERT_EQ(captures_[2].received.size(), 1u);
  EXPECT_GT(captures_[1].received[0].second.rssi_dbm,
            captures_[2].received[0].second.rssi_dbm);
}

TEST_F(ChannelTest, SenderGetsTxDoneAndNoSelfReception) {
  build({0.0, 200.0});
  const Airframe f = frame_from(0);
  channel_->transmit(f);
  scheduler_.run();
  ASSERT_EQ(captures_[0].tx_done.size(), 1u);
  EXPECT_EQ(captures_[0].tx_done[0], f.id);
  EXPECT_TRUE(captures_[0].received.empty());
}

TEST_F(ChannelTest, SimultaneousTransmissionsCollideAtMiddle) {
  // Nodes 0 and 2 both in range of middle node 1, equal power -> SINR ~ 0 dB
  // at node 1 -> both frames lost there.
  build({0.0, 200.0, 400.0});
  channel_->transmit(frame_from(0));
  channel_->transmit(frame_from(2));
  scheduler_.run();
  EXPECT_TRUE(captures_[1].received.empty());
  EXPECT_GE(channel_->transceiver(1).stats().frames_collided, 1u);
}

TEST_F(ChannelTest, CaptureOfMuchStrongerFrame) {
  // Node 1 is 50 m from node 0 but 240 m from node 2: frame from 0 is
  // ~13.6 dB stronger and survives the overlap.
  build({0.0, 50.0, 290.0});
  channel_->transmit(frame_from(0));
  channel_->transmit(frame_from(2));
  scheduler_.run();
  ASSERT_EQ(captures_[1].received.size(), 1u);
  EXPECT_EQ(captures_[1].received[0].first.sender, 0u);
}

TEST_F(ChannelTest, LateInterferenceCorruptsLockedFrame) {
  build({0.0, 200.0, 400.0});
  channel_->transmit(frame_from(0, 1000));  // long frame
  bool second_sent = false;
  scheduler_.schedule_at(0.001, [&]() {
    second_sent = channel_->transmit(frame_from(2, 1000));
  });
  scheduler_.run();
  EXPECT_TRUE(second_sent);
  EXPECT_TRUE(captures_[1].received.empty());  // corrupted mid-reception
}

TEST_F(ChannelTest, HalfDuplexSenderCannotReceive) {
  build({0.0, 200.0});
  channel_->transmit(frame_from(0, 1000));
  scheduler_.schedule_at(0.0001, [&]() {
    channel_->transmit(frame_from(1, 50));  // while 0 still transmitting
  });
  scheduler_.run();
  EXPECT_TRUE(captures_[0].received.empty());
}

TEST_F(ChannelTest, RejectsDoubleTransmit) {
  build({0.0, 200.0});
  EXPECT_TRUE(channel_->transmit(frame_from(0, 1000)));
  EXPECT_FALSE(channel_->transmit(frame_from(0, 10)));
  scheduler_.run();
}

// Regression: a transmit attempt while already transmitting used to return
// false silently — no counter, no trace — making busy-sender losses
// indistinguishable from frames that were never offered.
TEST_F(ChannelTest, BusySenderDropIsCounted) {
  build({0.0, 200.0});
  EXPECT_EQ(channel_->transceiver(0).stats().tx_dropped_busy, 0u);
  EXPECT_TRUE(channel_->transmit(frame_from(0, 1000)));
  EXPECT_FALSE(channel_->transmit(frame_from(0, 10)));
  EXPECT_FALSE(channel_->transmit(frame_from(0, 10)));
  EXPECT_EQ(channel_->transceiver(0).stats().tx_dropped_busy, 2u);
  EXPECT_EQ(channel_->transceiver(0).stats().tx_dropped_off, 0u);
  scheduler_.run();
  // Once the airtime ends the radio is no longer busy.
  EXPECT_TRUE(channel_->transmit(frame_from(0, 10)));
  scheduler_.run();
  EXPECT_EQ(channel_->transceiver(0).stats().tx_dropped_busy, 2u);
}

// Regression: turning a radio off mid-decode cleared the signal set and the
// lock without crediting the aborted reception to any drop counter, leaving
// arrivals unaccounted (decoded + drops < signals_arrived).
TEST_F(ChannelTest, TurnOffMidDecodeCountsAbortedReception) {
  build({0.0, 200.0});
  channel_->transmit(frame_from(0, 1000));  // long frame
  bool turned_off = false;
  scheduler_.schedule_at(0.001, [&]() {  // mid-airtime: node 1 is locked
    EXPECT_EQ(channel_->transceiver(1).state(), RadioState::Rx);
    channel_->transceiver(1).turn_off();
    turned_off = true;
  });
  scheduler_.run();
  EXPECT_TRUE(turned_off);
  EXPECT_TRUE(captures_[1].received.empty());
  const TransceiverStats& stats = channel_->transceiver(1).stats();
  EXPECT_EQ(stats.frames_aborted_off, 1u);
  // Conservation: the single arrival resolves into exactly one outcome.
  EXPECT_EQ(stats.signals_arrived, 1u);
  EXPECT_EQ(stats.frames_decoded + stats.frames_collided +
                stats.frames_missed_busy + stats.frames_below_threshold +
                stats.frames_while_off + stats.frames_aborted_off,
            stats.signals_arrived);
}

// Radio-off without a lock in progress must NOT bump the aborted counter
// (the other cleared signals already got their outcome at arrival).
TEST_F(ChannelTest, TurnOffWithoutLockAbortsNothing) {
  build({0.0, 200.0});
  channel_->transceiver(1).turn_off();
  scheduler_.run();
  EXPECT_EQ(channel_->transceiver(1).stats().frames_aborted_off, 0u);
}

// Regression for carrier-sense drift: the cumulative in-air power at a
// receiver is maintained incrementally across arrivals/expiries; after
// heavy overlapping-signal churn the medium must read exactly idle again
// (total power exactly 0.0), not epsilon-busy from FP residue.
TEST_F(ChannelTest, MediumReadsExactlyIdleAfterSignalChurn) {
  build({0.0, 150.0, 200.0, 310.0, 405.0});
  des::Rng jitter(99);
  for (int round = 0; round < 200; ++round) {
    // Overlapping bursts from every node at staggered times: receiver
    // signal sets grow and drain repeatedly, in varying interleavings.
    for (std::uint32_t s = 0; s < 5; ++s) {
      scheduler_.schedule_at(scheduler_.now() + jitter.uniform01() * 1e-3,
                             [this, s]() {
                               channel_->transmit(frame_from(s, 400));
                             });
    }
    scheduler_.run();
    for (std::uint32_t n = 0; n < 5; ++n) {
      ASSERT_EQ(channel_->transceiver(n).total_rx_power_mw(), 0.0)
          << "node " << n << " round " << round;
      ASSERT_FALSE(channel_->transceiver(n).medium_busy());
    }
  }
}

TEST_F(ChannelTest, OffRadioNeitherSendsNorReceives) {
  build({0.0, 200.0});
  channel_->transceiver(1).turn_off();
  channel_->transmit(frame_from(0));
  scheduler_.run();
  EXPECT_TRUE(captures_[1].received.empty());
  EXPECT_EQ(channel_->transceiver(1).stats().frames_while_off, 1u);
  EXPECT_FALSE(channel_->transmit(frame_from(1)));
  EXPECT_EQ(channel_->transceiver(1).stats().tx_dropped_off, 1u);
}

TEST_F(ChannelTest, TurnOnRestoresOperation) {
  build({0.0, 200.0});
  channel_->transceiver(1).turn_off();
  channel_->transceiver(1).turn_on();
  channel_->transmit(frame_from(0));
  scheduler_.run();
  EXPECT_EQ(captures_[1].received.size(), 1u);
}

TEST_F(ChannelTest, CarrierSenseSeesNeighborTransmission) {
  build({0.0, 200.0});
  EXPECT_FALSE(channel_->transceiver(1).medium_busy());
  channel_->transmit(frame_from(0, 1000));
  scheduler_.run_until(0.001);
  EXPECT_TRUE(channel_->transceiver(1).medium_busy());
  scheduler_.run();
  EXPECT_FALSE(channel_->transceiver(1).medium_busy());
  EXPECT_GE(captures_[1].busy_edges, 1);
}

TEST_F(ChannelTest, BackToBackFramesBothDeliver) {
  build({0.0, 200.0});
  channel_->transmit(frame_from(0, 100));
  scheduler_.schedule_at(0.01, [&]() { channel_->transmit(frame_from(0, 100)); });
  scheduler_.run();
  EXPECT_EQ(captures_[1].received.size(), 2u);
}

TEST_F(ChannelTest, PropagationDelayOrdersDistantReceivers) {
  build({0.0, 100.0, 240.0});
  channel_->transmit(frame_from(0));
  scheduler_.run();
  ASSERT_EQ(captures_[1].received.size(), 1u);
  ASSERT_EQ(captures_[2].received.size(), 1u);
  EXPECT_LT(captures_[1].received[0].second.rx_end,
            captures_[2].received[0].second.rx_end);
}

TEST_F(ChannelTest, FrameIdsAreUnique) {
  build({0.0, 200.0});
  const auto a = channel_->next_frame_id();
  const auto b = channel_->next_frame_id();
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace rrnet::phy
