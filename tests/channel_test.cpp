#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "des/scheduler.hpp"
#include "phy/channel.hpp"
#include "phy/units.hpp"

namespace rrnet::phy {
namespace {

struct Capture final : RadioListener {
  std::vector<std::pair<Airframe, RxInfo>> received;
  std::vector<std::uint64_t> tx_done;
  int busy_edges = 0;
  void on_receive(const Airframe& frame, const RxInfo& info) override {
    received.emplace_back(frame, info);
  }
  void on_tx_done(std::uint64_t id) override { tx_done.push_back(id); }
  void on_medium_changed(bool busy) override {
    if (busy) ++busy_edges;
  }
};

class ChannelTest : public ::testing::Test {
 protected:
  /// Channel with nodes on a line, spacing given, range 250 m.
  void build(std::vector<double> xs) {
    std::vector<geom::Vec2> positions;
    for (double x : xs) positions.push_back({x, 500.0});
    FreeSpace for_power;
    params_.cs_threshold_dbm = params_.rx_threshold_dbm - 7.0;
    params_.noise_floor_dbm = params_.rx_threshold_dbm - 14.0;
    params_.interference_cutoff_dbm = params_.rx_threshold_dbm - 14.0;
    params_.tx_power_dbm =
        tx_power_for_range(for_power, 250.0, params_.rx_threshold_dbm);
    channel_ = std::make_unique<Channel>(
        scheduler_, geom::Terrain(5000.0, 1000.0),
        std::make_unique<FreeSpace>(), params_, positions, des::Rng(1));
    captures_.resize(xs.size());
    for (std::uint32_t i = 0; i < xs.size(); ++i) {
      channel_->transceiver(i).attach(captures_[i]);
    }
  }

  Airframe frame_from(std::uint32_t sender, std::uint32_t bytes = 100) {
    Airframe f;
    f.sender = sender;
    f.id = channel_->next_frame_id(sender);
    f.size_bytes = bytes;
    return f;
  }

  des::Scheduler scheduler_;
  RadioParams params_;
  std::unique_ptr<Channel> channel_;
  std::vector<Capture> captures_;
};

TEST_F(ChannelTest, DeliversWithinRange) {
  build({0.0, 200.0});
  EXPECT_TRUE(channel_->transmit(frame_from(0)));
  scheduler_.run();
  ASSERT_EQ(captures_[1].received.size(), 1u);
  EXPECT_EQ(captures_[1].received[0].first.sender, 0u);
  EXPECT_EQ(channel_->stats().deliveries, 1u);
  EXPECT_EQ(channel_->stats().transmissions, 1u);
}

TEST_F(ChannelTest, NoDeliveryBeyondRange) {
  build({0.0, 300.0});
  channel_->transmit(frame_from(0));
  scheduler_.run();
  EXPECT_TRUE(captures_[1].received.empty());
  EXPECT_EQ(channel_->stats().deliveries, 0u);
}

TEST_F(ChannelTest, NominalRangeIsCalibrated) {
  build({0.0, 200.0});
  EXPECT_NEAR(channel_->nominal_range_m(), 250.0, 0.5);
  EXPECT_GT(channel_->interference_range_m(), channel_->nominal_range_m());
}

TEST_F(ChannelTest, RssiDecreasesWithDistance) {
  build({0.0, 100.0, 240.0});
  channel_->transmit(frame_from(0));
  scheduler_.run();
  ASSERT_EQ(captures_[1].received.size(), 1u);
  ASSERT_EQ(captures_[2].received.size(), 1u);
  EXPECT_GT(captures_[1].received[0].second.rssi_dbm,
            captures_[2].received[0].second.rssi_dbm);
}

TEST_F(ChannelTest, SenderGetsTxDoneAndNoSelfReception) {
  build({0.0, 200.0});
  const Airframe f = frame_from(0);
  channel_->transmit(f);
  scheduler_.run();
  ASSERT_EQ(captures_[0].tx_done.size(), 1u);
  EXPECT_EQ(captures_[0].tx_done[0], f.id);
  EXPECT_TRUE(captures_[0].received.empty());
}

TEST_F(ChannelTest, SimultaneousTransmissionsCollideAtMiddle) {
  // Nodes 0 and 2 both in range of middle node 1, equal power -> SINR ~ 0 dB
  // at node 1 -> both frames lost there.
  build({0.0, 200.0, 400.0});
  channel_->transmit(frame_from(0));
  channel_->transmit(frame_from(2));
  scheduler_.run();
  EXPECT_TRUE(captures_[1].received.empty());
  EXPECT_GE(channel_->transceiver(1).stats().frames_collided, 1u);
}

TEST_F(ChannelTest, CaptureOfMuchStrongerFrame) {
  // Node 1 is 50 m from node 0 but 240 m from node 2: frame from 0 is
  // ~13.6 dB stronger and survives the overlap.
  build({0.0, 50.0, 290.0});
  channel_->transmit(frame_from(0));
  channel_->transmit(frame_from(2));
  scheduler_.run();
  ASSERT_EQ(captures_[1].received.size(), 1u);
  EXPECT_EQ(captures_[1].received[0].first.sender, 0u);
}

TEST_F(ChannelTest, LateInterferenceCorruptsLockedFrame) {
  build({0.0, 200.0, 400.0});
  channel_->transmit(frame_from(0, 1000));  // long frame
  bool second_sent = false;
  scheduler_.schedule_at(0.001, [&]() {
    second_sent = channel_->transmit(frame_from(2, 1000));
  });
  scheduler_.run();
  EXPECT_TRUE(second_sent);
  EXPECT_TRUE(captures_[1].received.empty());  // corrupted mid-reception
}

TEST_F(ChannelTest, HalfDuplexSenderCannotReceive) {
  build({0.0, 200.0});
  channel_->transmit(frame_from(0, 1000));
  scheduler_.schedule_at(0.0001, [&]() {
    channel_->transmit(frame_from(1, 50));  // while 0 still transmitting
  });
  scheduler_.run();
  EXPECT_TRUE(captures_[0].received.empty());
}

TEST_F(ChannelTest, RejectsDoubleTransmit) {
  build({0.0, 200.0});
  EXPECT_TRUE(channel_->transmit(frame_from(0, 1000)));
  EXPECT_FALSE(channel_->transmit(frame_from(0, 10)));
  scheduler_.run();
}

// Regression: a transmit attempt while already transmitting used to return
// false silently — no counter, no trace — making busy-sender losses
// indistinguishable from frames that were never offered.
TEST_F(ChannelTest, BusySenderDropIsCounted) {
  build({0.0, 200.0});
  EXPECT_EQ(channel_->transceiver(0).stats().tx_dropped_busy, 0u);
  EXPECT_TRUE(channel_->transmit(frame_from(0, 1000)));
  EXPECT_FALSE(channel_->transmit(frame_from(0, 10)));
  EXPECT_FALSE(channel_->transmit(frame_from(0, 10)));
  EXPECT_EQ(channel_->transceiver(0).stats().tx_dropped_busy, 2u);
  EXPECT_EQ(channel_->transceiver(0).stats().tx_dropped_off, 0u);
  scheduler_.run();
  // Once the airtime ends the radio is no longer busy.
  EXPECT_TRUE(channel_->transmit(frame_from(0, 10)));
  scheduler_.run();
  EXPECT_EQ(channel_->transceiver(0).stats().tx_dropped_busy, 2u);
}

// Regression: turning a radio off mid-decode cleared the signal set and the
// lock without crediting the aborted reception to any drop counter, leaving
// arrivals unaccounted (decoded + drops < signals_arrived).
TEST_F(ChannelTest, TurnOffMidDecodeCountsAbortedReception) {
  build({0.0, 200.0});
  channel_->transmit(frame_from(0, 1000));  // long frame
  bool turned_off = false;
  scheduler_.schedule_at(0.001, [&]() {  // mid-airtime: node 1 is locked
    EXPECT_EQ(channel_->transceiver(1).state(), RadioState::Rx);
    channel_->transceiver(1).turn_off();
    turned_off = true;
  });
  scheduler_.run();
  EXPECT_TRUE(turned_off);
  EXPECT_TRUE(captures_[1].received.empty());
  const TransceiverStats& stats = channel_->transceiver(1).stats();
  EXPECT_EQ(stats.frames_aborted_off, 1u);
  // Conservation: the single arrival resolves into exactly one outcome.
  EXPECT_EQ(stats.signals_arrived, 1u);
  EXPECT_EQ(stats.frames_decoded + stats.frames_collided +
                stats.frames_missed_busy + stats.frames_below_threshold +
                stats.frames_while_off + stats.frames_aborted_off,
            stats.signals_arrived);
}

// Radio-off without a lock in progress must NOT bump the aborted counter
// (the other cleared signals already got their outcome at arrival).
TEST_F(ChannelTest, TurnOffWithoutLockAbortsNothing) {
  build({0.0, 200.0});
  channel_->transceiver(1).turn_off();
  scheduler_.run();
  EXPECT_EQ(channel_->transceiver(1).stats().frames_aborted_off, 0u);
}

// Regression for carrier-sense drift: the cumulative in-air power at a
// receiver is maintained incrementally across arrivals/expiries; after
// heavy overlapping-signal churn the medium must read exactly idle again
// (total power exactly 0.0), not epsilon-busy from FP residue.
TEST_F(ChannelTest, MediumReadsExactlyIdleAfterSignalChurn) {
  build({0.0, 150.0, 200.0, 310.0, 405.0});
  des::Rng jitter(99);
  for (int round = 0; round < 200; ++round) {
    // Overlapping bursts from every node at staggered times: receiver
    // signal sets grow and drain repeatedly, in varying interleavings.
    for (std::uint32_t s = 0; s < 5; ++s) {
      scheduler_.schedule_at(scheduler_.now() + jitter.uniform01() * 1e-3,
                             [this, s]() {
                               channel_->transmit(frame_from(s, 400));
                             });
    }
    scheduler_.run();
    for (std::uint32_t n = 0; n < 5; ++n) {
      ASSERT_EQ(channel_->transceiver(n).total_rx_power_mw(), 0.0)
          << "node " << n << " round " << round;
      ASSERT_FALSE(channel_->transceiver(n).medium_busy());
    }
  }
}

TEST_F(ChannelTest, OffRadioNeitherSendsNorReceives) {
  build({0.0, 200.0});
  channel_->transceiver(1).turn_off();
  channel_->transmit(frame_from(0));
  scheduler_.run();
  EXPECT_TRUE(captures_[1].received.empty());
  EXPECT_EQ(channel_->transceiver(1).stats().frames_while_off, 1u);
  EXPECT_FALSE(channel_->transmit(frame_from(1)));
  EXPECT_EQ(channel_->transceiver(1).stats().tx_dropped_off, 1u);
}

TEST_F(ChannelTest, TurnOnRestoresOperation) {
  build({0.0, 200.0});
  channel_->transceiver(1).turn_off();
  channel_->transceiver(1).turn_on();
  channel_->transmit(frame_from(0));
  scheduler_.run();
  EXPECT_EQ(captures_[1].received.size(), 1u);
}

TEST_F(ChannelTest, CarrierSenseSeesNeighborTransmission) {
  build({0.0, 200.0});
  EXPECT_FALSE(channel_->transceiver(1).medium_busy());
  channel_->transmit(frame_from(0, 1000));
  scheduler_.run_until(0.001);
  EXPECT_TRUE(channel_->transceiver(1).medium_busy());
  scheduler_.run();
  EXPECT_FALSE(channel_->transceiver(1).medium_busy());
  EXPECT_GE(captures_[1].busy_edges, 1);
}

TEST_F(ChannelTest, BackToBackFramesBothDeliver) {
  build({0.0, 200.0});
  channel_->transmit(frame_from(0, 100));
  scheduler_.schedule_at(0.01, [&]() { channel_->transmit(frame_from(0, 100)); });
  scheduler_.run();
  EXPECT_EQ(captures_[1].received.size(), 2u);
}

TEST_F(ChannelTest, PropagationDelayOrdersDistantReceivers) {
  build({0.0, 100.0, 240.0});
  channel_->transmit(frame_from(0));
  scheduler_.run();
  ASSERT_EQ(captures_[1].received.size(), 1u);
  ASSERT_EQ(captures_[2].received.size(), 1u);
  EXPECT_LT(captures_[1].received[0].second.rx_end,
            captures_[2].received[0].second.rx_end);
}

/// Two half-channels over the SAME position set, split at x = 500: the
/// cross-shard handoff path (outbox on the source, inject_remote + replay
/// on the destination) is the sharded engine's only inter-thread data
/// flow, so it gets direct unit coverage (and a TSan sweep via verify.sh).
class ChannelHandoffTest : public ::testing::Test {
 protected:
  void build(std::vector<geom::Vec2> positions,
             std::vector<std::uint32_t> owner,
             double cutoff_delta_db = -14.0) {
    FreeSpace for_power;
    params_.cs_threshold_dbm = params_.rx_threshold_dbm - 7.0;
    params_.noise_floor_dbm = params_.rx_threshold_dbm - 14.0;
    params_.interference_cutoff_dbm =
        params_.rx_threshold_dbm + cutoff_delta_db;
    params_.tx_power_dbm =
        tx_power_for_range(for_power, 250.0, params_.rx_threshold_dbm);
    const geom::Terrain terrain(1000.0, 1000.0);
    for (std::uint32_t s = 0; s < 2; ++s) {
      ShardSpec spec;
      spec.shard = s;
      spec.shards = 2;
      spec.owner = owner;
      shard_[s] = std::make_unique<Channel>(
          scheduler_[s], terrain, std::make_unique<FreeSpace>(), params_,
          positions, des::Rng(1), std::move(spec));
    }
    captures_.resize(positions.size());
    for (std::uint32_t id = 0; id < positions.size(); ++id) {
      shard_[owner[id]]->transceiver(id).attach(captures_[id]);
    }
  }

  des::Scheduler scheduler_[2];
  RadioParams params_;
  std::unique_ptr<Channel> shard_[2];
  std::vector<Capture> captures_;
};

TEST_F(ChannelHandoffTest, BoundaryTransmissionProducesOneHandoffPerShard) {
  // Node 0 (shard 0) straddles the strip boundary's radio range; nodes 1
  // and 2 both live on shard 1, so the single transmission must enqueue
  // exactly ONE handoff for shard 1 (the destination replays the full
  // receiver walk itself), not one per remote receiver.
  build({{400.0, 500.0}, {600.0, 500.0}, {700.0, 500.0}}, {0, 1, 1});
  Airframe frame;
  frame.sender = 0;
  frame.id = shard_[0]->next_frame_id(0);
  frame.size_bytes = 100;
  ASSERT_TRUE(shard_[0]->transmit(frame));
  ASSERT_EQ(shard_[0]->outbox(1).size(), 1u);
  const ShardHandoff& handoff = shard_[0]->outbox(1)[0];
  EXPECT_EQ(handoff.tx_time, 0.0);
  EXPECT_EQ(handoff.duration, params_.airtime(100));
  EXPECT_EQ(handoff.frame.sender, 0u);
  scheduler_[0].run();

  shard_[1]->inject_remote(handoff);
  scheduler_[1].run();
  // Node 1 (200 m) decodes; node 2 (300 m) is past decode range but the
  // signal still arrives (interference replay). The remote shard must NOT
  // count the transmission again — the source shard already did.
  ASSERT_EQ(captures_[1].received.size(), 1u);
  EXPECT_EQ(captures_[1].received[0].first.sender, 0u);
  EXPECT_TRUE(captures_[2].received.empty());
  EXPECT_GE(shard_[1]->transceiver(2).stats().signals_arrived, 1u);
  EXPECT_EQ(shard_[1]->stats().transmissions, 0u);
  EXPECT_EQ(shard_[1]->stats().deliveries, 1u);
  EXPECT_EQ(shard_[0]->stats().transmissions, 1u);
}

TEST_F(ChannelHandoffTest, OutOfRangeTransmissionLeavesOutboxEmpty) {
  // Cutoff only 6 dB under decode threshold -> interference range ~500 m;
  // at 800 m the remote shard never perceives the frame, so no handoff.
  build({{100.0, 500.0}, {900.0, 500.0}}, {0, 1}, -6.0);
  Airframe frame;
  frame.sender = 0;
  frame.id = shard_[0]->next_frame_id(0);
  frame.size_bytes = 100;
  ASSERT_TRUE(shard_[0]->transmit(frame));
  EXPECT_TRUE(shard_[0]->outbox(1).empty());
  scheduler_[0].run();
}

TEST_F(ChannelHandoffTest, LookaheadHeapsDropPastEntriesAndKeepFuture) {
  build({{400.0, 500.0}, {600.0, 500.0}}, {0, 1});
  Channel& ch = *shard_[0];
  const auto inf = std::numeric_limits<des::Time>::infinity();
  EXPECT_EQ(ch.earliest_armed_tx(0.0), inf);
  ch.note_armed_tx(1e-3);
  ch.note_armed_tx(2e-3);
  EXPECT_EQ(ch.earliest_armed_tx(0.0), 1e-3);
  // Entries at or before `now` already executed inside the closed window;
  // the query lazily discards them.
  EXPECT_EQ(ch.earliest_armed_tx(1e-3), 2e-3);
  EXPECT_EQ(ch.earliest_armed_tx(2e-3), inf);
}

TEST_F(ChannelHandoffTest, ClearOutboxesDropsPendingHandoffs) {
  build({{400.0, 500.0}, {600.0, 500.0}}, {0, 1});
  Airframe frame;
  frame.sender = 0;
  frame.id = shard_[0]->next_frame_id(0);
  frame.size_bytes = 100;
  ASSERT_TRUE(shard_[0]->transmit(frame));
  ASSERT_EQ(shard_[0]->outbox(1).size(), 1u);
  shard_[0]->clear_outboxes();
  EXPECT_TRUE(shard_[0]->outbox(1).empty());
  scheduler_[0].run();
}

TEST_F(ChannelTest, FrameIdsAreUnique) {
  build({0.0, 200.0});
  // Per-sender counters: ids differ across draws of one sender and across
  // senders (the sender id lives in the high 32 bits).
  const auto a = channel_->next_frame_id(0);
  const auto b = channel_->next_frame_id(0);
  const auto c = channel_->next_frame_id(1);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
  EXPECT_EQ(c >> 32, 1u);
}

}  // namespace
}  // namespace rrnet::phy
