#include <gtest/gtest.h>

#include "proto/aodv.hpp"
#include "test_helpers.hpp"

namespace rrnet::proto {
namespace {

using rrnet::testing::TestNet;

AodvProtocol& aodv_of(net::Node& node) {
  return static_cast<AodvProtocol&>(node.protocol());
}

void attach_aodv(TestNet& tn, AodvConfig config = {}) {
  for (std::uint32_t i = 0; i < tn.network->size(); ++i) {
    tn.node(i).set_protocol(
        std::make_unique<AodvProtocol>(tn.node(i), config));
  }
  tn.network->start_protocols();
}

TEST(Aodv, EstablishesRouteAndDelivers) {
  auto tn = rrnet::testing::make_line_net(5);
  attach_aodv(tn);
  int deliveries = 0;
  net::PacketRef delivered;
  tn.node(4).set_delivery_handler([&](const net::PacketRef& p) {
    ++deliveries;
    delivered = p;
  });
  tn.node(0).protocol().send_data(4, 128);
  tn.scheduler.run_until(20.0);
  ASSERT_EQ(deliveries, 1);
  EXPECT_EQ(delivered.actual_hops(), 4u);
  ASSERT_TRUE(aodv_of(tn.node(0)).has_route(4));
  EXPECT_EQ(aodv_of(tn.node(0)).route_hops(4), 4u);
  EXPECT_EQ(aodv_of(tn.node(0)).next_hop(4), 1u);
}

TEST(Aodv, ReverseRoutesBuiltByRreq) {
  auto tn = rrnet::testing::make_line_net(4);
  attach_aodv(tn);
  tn.node(0).protocol().send_data(3, 64);
  tn.scheduler.run_until(20.0);
  for (std::uint32_t i = 1; i < 4; ++i) {
    ASSERT_TRUE(aodv_of(tn.node(i)).has_route(0)) << i;
    EXPECT_EQ(aodv_of(tn.node(i)).route_hops(0), i) << i;
    EXPECT_EQ(aodv_of(tn.node(i)).next_hop(0), i - 1) << i;
  }
}

TEST(Aodv, SecondPacketUsesCachedRoute) {
  auto tn = rrnet::testing::make_line_net(4);
  attach_aodv(tn);
  int deliveries = 0;
  tn.node(3).set_delivery_handler([&](const net::PacketRef&) { ++deliveries; });
  tn.node(0).protocol().send_data(3, 64);
  tn.scheduler.run_until(20.0);
  const std::uint64_t rreqs = aodv_of(tn.node(0)).aodv_stats().rreq_originated;
  tn.node(0).protocol().send_data(3, 64);
  tn.scheduler.run_until(40.0);
  EXPECT_EQ(deliveries, 2);
  EXPECT_EQ(aodv_of(tn.node(0)).aodv_stats().rreq_originated, rreqs);
}

TEST(Aodv, LinkBreakTriggersRerrAndRediscovery) {
  auto tn = rrnet::testing::make_line_net(4);
  AodvConfig config;
  config.discovery_timeout = 1.0;
  attach_aodv(tn, config);
  int deliveries = 0;
  tn.node(3).set_delivery_handler([&](const net::PacketRef&) { ++deliveries; });
  tn.node(0).protocol().send_data(3, 64);
  tn.scheduler.run_until(20.0);
  ASSERT_EQ(deliveries, 1);
  // Kill node 1 permanently: 0's next hop is gone, and the line has no
  // alternative path, so the flow must fail with link breaks + RERR traffic.
  tn.network->channel().transceiver(1).turn_off();
  tn.node(0).protocol().send_data(3, 64);
  tn.scheduler.run_until(60.0);
  EXPECT_EQ(deliveries, 1);
  EXPECT_GE(aodv_of(tn.node(0)).aodv_stats().link_breaks, 1u);
  EXPECT_FALSE(aodv_of(tn.node(0)).has_route(3));
}

TEST(Aodv, ReroutesAroundFailedRelayWhenAlternativeExists) {
  std::vector<geom::Vec2> positions{
      {0, 500}, {200, 440}, {200, 560}, {400, 500}};
  AodvConfig config;
  config.discovery_timeout = 1.0;
  TestNet tn(positions, 250.0, geom::Terrain(800, 1000));
  attach_aodv(tn, config);
  int deliveries = 0;
  tn.node(3).set_delivery_handler([&](const net::PacketRef&) { ++deliveries; });
  tn.node(0).protocol().send_data(3, 64);
  tn.scheduler.run_until(10.0);
  ASSERT_EQ(deliveries, 1);
  // Whichever relay the route uses, kill it; AODV must re-discover through
  // the other relay.
  const std::uint32_t relay = aodv_of(tn.node(0)).next_hop(3);
  tn.network->channel().transceiver(relay).turn_off();
  for (int i = 0; i < 4; ++i) {
    tn.scheduler.schedule_at(10.5 + i, [&tn]() {
      tn.node(0).protocol().send_data(3, 64);
    });
  }
  tn.scheduler.run_until(60.0);
  EXPECT_GE(deliveries, 3);  // first post-failure packet may be lost
}

TEST(Aodv, BlindDiscoveryCostsMoreThanDedup) {
  std::vector<geom::Vec2> positions;
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      positions.push_back({100.0 + 130.0 * c, 100.0 + 130.0 * r});
    }
  }
  auto run_mode = [&](RreqFlooding mode) {
    TestNet tn(positions, 250.0, geom::Terrain(800, 800));
    AodvConfig config;
    config.discovery = mode;
    attach_aodv(tn, config);
    int deliveries = 0;
    tn.node(15).set_delivery_handler([&](const net::PacketRef&) { ++deliveries; });
    tn.node(0).protocol().send_data(15, 64);
    tn.scheduler.run_until(30.0);
    EXPECT_GE(deliveries, 1) << "mode " << static_cast<int>(mode);
    return tn.network->total_mac_tx();
  };
  const std::uint64_t tx_dedup = run_mode(RreqFlooding::Dedup);
  const std::uint64_t tx_blind = run_mode(RreqFlooding::Blind);
  EXPECT_GT(tx_blind, tx_dedup);
}

TEST(Aodv, SuppressModeCutsRreqRelays) {
  std::vector<geom::Vec2> positions;
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      positions.push_back({100.0 + 110.0 * c, 100.0 + 110.0 * r});
    }
  }
  auto rreq_relays = [&](RreqFlooding mode) {
    TestNet tn(positions, 250.0, geom::Terrain(800, 800));
    AodvConfig config;
    config.discovery = mode;
    attach_aodv(tn, config);
    tn.node(0).protocol().send_data(15, 64);
    tn.scheduler.run_until(30.0);
    std::uint64_t relays = 0;
    for (std::uint32_t i = 0; i < tn.network->size(); ++i) {
      relays += aodv_of(tn.node(i)).aodv_stats().rreq_relayed;
    }
    return relays;
  };
  EXPECT_LT(rreq_relays(RreqFlooding::Suppress),
            rreq_relays(RreqFlooding::Dedup));
}

TEST(Aodv, UnreachableTargetFailsDiscovery) {
  std::vector<geom::Vec2> positions{{0, 500}, {200, 500}, {3000, 500}};
  AodvConfig config;
  config.discovery_timeout = 0.5;
  config.max_discovery_retries = 2;
  TestNet tn(positions, 250.0, geom::Terrain(4000, 1000));
  attach_aodv(tn, config);
  tn.node(0).protocol().send_data(2, 64);
  tn.scheduler.run_until(10.0);
  EXPECT_EQ(aodv_of(tn.node(0)).aodv_stats().discovery_failures, 1u);
  EXPECT_EQ(aodv_of(tn.node(0)).aodv_stats().pending_dropped, 1u);
}

TEST(Aodv, DeliversEachPacketOnce) {
  auto tn = rrnet::testing::make_line_net(3);
  attach_aodv(tn);
  int deliveries = 0;
  tn.node(2).set_delivery_handler([&](const net::PacketRef&) { ++deliveries; });
  for (int i = 0; i < 6; ++i) {
    tn.scheduler.schedule_at(0.3 * i + 0.1, [&tn]() {
      tn.node(0).protocol().send_data(2, 32);
    });
  }
  tn.scheduler.run_until(30.0);
  EXPECT_EQ(deliveries, 6);
}

TEST(Aodv, MacUnicastChainProducesAcks) {
  auto tn = rrnet::testing::make_line_net(4);
  attach_aodv(tn);
  tn.node(0).protocol().send_data(3, 64);
  tn.scheduler.run_until(20.0);
  std::uint64_t acks = 0;
  for (std::uint32_t i = 0; i < 4; ++i) {
    acks += tn.node(i).mac().stats().ack_tx;
  }
  // RREP unicast chain (3 hops) + data chain (3 hops) >= 6 MAC acks.
  EXPECT_GE(acks, 6u);
}

TEST(AodvExpandingRing, FirstRreqUsesSmallTtl) {
  // 8-node line; target 2 hops away: ring_start_ttl = 2 suffices and the
  // flood must not reach the line's far end.
  auto tn = rrnet::testing::make_line_net(8);
  AodvConfig config;
  config.expanding_ring = true;
  config.ring_start_ttl = 2;
  attach_aodv(tn, config);
  int deliveries = 0;
  tn.node(2).set_delivery_handler([&](const net::PacketRef&) { ++deliveries; });
  tn.node(0).protocol().send_data(2, 64);
  tn.scheduler.run_until(20.0);
  EXPECT_EQ(deliveries, 1);
  // Nodes beyond the ring never saw the RREQ, so they have no reverse route.
  EXPECT_FALSE(aodv_of(tn.node(6)).has_route(0));
  EXPECT_FALSE(aodv_of(tn.node(7)).has_route(0));
}

TEST(AodvExpandingRing, RetriesWidenTheRing) {
  // Target 5 hops away: ring 2 fails, ring 5 (after one +3 retry) succeeds.
  auto tn = rrnet::testing::make_line_net(7);
  AodvConfig config;
  config.expanding_ring = true;
  config.ring_start_ttl = 2;
  config.ring_increment = 3;
  config.discovery_timeout = 1.0;
  attach_aodv(tn, config);
  int deliveries = 0;
  tn.node(5).set_delivery_handler([&](const net::PacketRef&) { ++deliveries; });
  tn.node(0).protocol().send_data(5, 64);
  tn.scheduler.run_until(30.0);
  EXPECT_EQ(deliveries, 1);
  EXPECT_GE(aodv_of(tn.node(0)).aodv_stats().rreq_originated, 1u);
}

TEST(AodvExpandingRing, CheaperThanFullFloodForNearbyTargets) {
  std::vector<geom::Vec2> positions;
  for (int r = 0; r < 5; ++r) {
    for (int c = 0; c < 5; ++c) {
      positions.push_back({100.0 + 150.0 * c, 100.0 + 150.0 * r});
    }
  }
  auto run = [&](bool ring) {
    TestNet tn(positions, 250.0, geom::Terrain(1000, 1000));
    AodvConfig config;
    config.expanding_ring = ring;
    attach_aodv(tn, config);
    int deliveries = 0;
    tn.node(6).set_delivery_handler([&](const net::PacketRef&) { ++deliveries; });
    tn.node(0).protocol().send_data(6, 64);  // an adjacent-ish target
    tn.scheduler.run_until(20.0);
    EXPECT_EQ(deliveries, 1) << "ring=" << ring;
    return tn.network->total_mac_tx();
  };
  EXPECT_LT(run(true), run(false));
}

}  // namespace
}  // namespace rrnet::proto
