// RTS/CTS virtual carrier sense (hidden-terminal mitigation).
//
// The fixture narrows the carrier-sense range to the transmission range so
// that two nodes on opposite sides of a receiver are genuinely hidden from
// each other — the scenario RTS/CTS exists for.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "mac/csma.hpp"
#include "phy/propagation.hpp"

namespace rrnet::mac {
namespace {

struct NetListener final : MacListener {
  std::vector<Frame> received;
  int successes = 0;
  int failures = 0;
  void mac_receive(const Frame& frame, const phy::RxInfo&,
                   bool for_us) override {
    if (for_us) received.push_back(frame);
  }
  void mac_send_done(const Frame&, bool success) override {
    if (success) {
      ++successes;
    } else {
      ++failures;
    }
  }
};

class RtsCtsTest : public ::testing::Test {
 protected:
  void build(std::vector<double> xs, MacParams params) {
    macs_.clear();
    channel_.reset();
    scheduler_ = std::make_unique<des::Scheduler>();
    std::vector<geom::Vec2> positions;
    for (double x : xs) positions.push_back({x, 500.0});
    phy::FreeSpace for_power;
    phy::RadioParams radio;
    // Hidden terminals: carrier sense range == transmission range.
    radio.cs_threshold_dbm = radio.rx_threshold_dbm;
    radio.noise_floor_dbm = radio.rx_threshold_dbm - 14.0;
    radio.interference_cutoff_dbm = radio.rx_threshold_dbm - 14.0;
    radio.tx_power_dbm =
        phy::tx_power_for_range(for_power, 250.0, radio.rx_threshold_dbm);
    channel_ = std::make_unique<phy::Channel>(
        *scheduler_, geom::Terrain(5000.0, 1000.0),
        std::make_unique<phy::FreeSpace>(), radio, positions, des::Rng(1));
    listeners_ = std::vector<NetListener>(xs.size());
    for (std::uint32_t i = 0; i < xs.size(); ++i) {
      macs_.push_back(std::make_unique<CsmaMac>(*channel_, i, params,
                                                des::Rng(500 + i),
                                                listeners_[i]));
    }
  }

  net::PacketRef payload() { return net::make_packet(net::PacketInit{}); }

  std::unique_ptr<des::Scheduler> scheduler_;
  std::unique_ptr<phy::Channel> channel_;
  std::vector<NetListener> listeners_;
  std::vector<std::unique_ptr<CsmaMac>> macs_;
};

MacParams rts_params(std::uint32_t threshold = 0) {
  MacParams params;
  params.rts_cts = true;
  params.rts_threshold_bytes = threshold;
  return params;
}

TEST_F(RtsCtsTest, HandshakeDeliversUnicast) {
  build({0.0, 200.0}, rts_params());
  macs_[0]->send(1, payload(), 500);
  scheduler_->run();
  ASSERT_EQ(listeners_[1].received.size(), 1u);
  EXPECT_EQ(listeners_[0].successes, 1);
  EXPECT_EQ(macs_[0]->stats().rts_tx, 1u);
  EXPECT_EQ(macs_[1]->stats().cts_tx, 1u);
  EXPECT_EQ(macs_[1]->stats().ack_tx, 1u);
  EXPECT_EQ(macs_[0]->stats().data_tx, 1u);
}

TEST_F(RtsCtsTest, BroadcastNeverUsesRts) {
  build({0.0, 200.0}, rts_params());
  macs_[0]->send(kBroadcastAddress, payload(), 500);
  scheduler_->run();
  EXPECT_EQ(macs_[0]->stats().rts_tx, 0u);
  EXPECT_EQ(listeners_[1].received.size(), 1u);
}

TEST_F(RtsCtsTest, SmallFramesSkipRts) {
  build({0.0, 200.0}, rts_params(/*threshold=*/400));
  macs_[0]->send(1, payload(), 100);  // 116 B with header, below threshold
  scheduler_->run();
  EXPECT_EQ(macs_[0]->stats().rts_tx, 0u);
  EXPECT_EQ(listeners_[0].successes, 1);
}

TEST_F(RtsCtsTest, CtsTimeoutRetriesThenFails) {
  MacParams params = rts_params();
  params.max_retries = 2;
  build({0.0, 200.0}, params);
  channel_->transceiver(1).turn_off();
  macs_[0]->send(1, payload(), 500);
  scheduler_->run();
  EXPECT_EQ(listeners_[0].failures, 1);
  EXPECT_GE(macs_[0]->stats().cts_timeouts, 3u);  // initial + 2 retries
  EXPECT_EQ(macs_[0]->stats().data_tx, 0u);       // data never risked
}

TEST_F(RtsCtsTest, ThirdPartyDefersOnOverheardCts) {
  // Node 2 sits next to the receiver; it overhears the CTS for the 0->1
  // exchange and must hold its own transmission until the NAV expires.
  build({0.0, 200.0, 350.0}, rts_params());
  macs_[0]->send(1, payload(), 1200);
  // Node 2 (hidden from 0: 350 m apart) queues a broadcast just after the
  // CTS lands.
  scheduler_->schedule_at(0.0012, [&]() {
    macs_[2]->send(kBroadcastAddress, payload(), 100);
  });
  scheduler_->run();
  ASSERT_EQ(listeners_[1].received.size(), 2u);  // data + node 2's broadcast
  EXPECT_GE(macs_[2]->stats().nav_deferrals, 1u);
  EXPECT_EQ(listeners_[0].successes, 1);
}

TEST_F(RtsCtsTest, HiddenTerminalsImproveWithRtsCts) {
  // A (0 m) and C (480 m) are hidden from each other; both stream long
  // unicast frames to B (240 m). Without RTS/CTS their data frames collide
  // at B; with it, the loser of the RTS race defers on B's CTS.
  struct Outcome {
    std::uint64_t retries;
    std::size_t delivered;
  };
  auto run = [&](bool rts) {
    MacParams params;
    params.rts_cts = rts;
    params.rts_threshold_bytes = 0;
    build({0.0, 240.0, 480.0}, params);
    for (int i = 0; i < 20; ++i) {
      const des::Time at = 0.01 * i;
      scheduler_->schedule_at(at, [&]() { macs_[0]->send(1, payload(), 900); });
      scheduler_->schedule_at(at + 1e-4,
                             [&]() { macs_[2]->send(1, payload(), 900); });
    }
    scheduler_->run();
    return Outcome{macs_[0]->stats().retries + macs_[2]->stats().retries,
                   listeners_[1].received.size()};
  };
  const Outcome without = run(false);
  const Outcome with = run(true);
  // The hidden senders' long frames always collide at B without the
  // handshake; with it, nearly everything gets through in few retries.
  EXPECT_LT(with.retries, without.retries / 2);
  EXPECT_GE(with.delivered, 35u);
  EXPECT_GT(with.delivered, without.delivered);
}

}  // namespace
}  // namespace rrnet::mac
