// Determinism gate for the sharded engine: for any shard count K, every
// semantic metric — flow stats, per-layer counters, figure columns — must
// be bit-identical to the serial run. Engine-internal counters (des.*,
// pool.*, shard.*, runtime.*) legitimately differ (extra walker
// bookkeeping, per-worker pools, wall-clock-derived profiler telemetry)
// and are excluded.
#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "net/packet_buffer.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "proto/dsr.hpp"
#include "sim/builder.hpp"
#include "sim/replication.hpp"
#include "sim/runner.hpp"
#include "sim/sharded.hpp"

namespace rrnet::sim {
namespace {

bool engine_internal(std::string_view name) {
  return name.starts_with("des.") || name.starts_with("pool.") ||
         name.starts_with("sim.") || name.starts_with("shard.") ||
         name.starts_with("runtime.");
}

void expect_semantically_identical(const ScenarioResult& serial,
                                   const ScenarioResult& sharded,
                                   std::uint32_t shards) {
  EXPECT_EQ(serial.sent, sharded.sent) << "K=" << shards;
  EXPECT_EQ(serial.delivered, sharded.delivered) << "K=" << shards;
  EXPECT_EQ(serial.delivery_ratio, sharded.delivery_ratio) << "K=" << shards;
  EXPECT_EQ(serial.mean_delay_s, sharded.mean_delay_s) << "K=" << shards;
  EXPECT_EQ(serial.mean_hops, sharded.mean_hops) << "K=" << shards;
  EXPECT_EQ(serial.mac_packets, sharded.mac_packets) << "K=" << shards;
  EXPECT_EQ(serial.channel_transmissions, sharded.channel_transmissions)
      << "K=" << shards;
  for (const obs::Metric& metric : serial.metrics.snapshot()) {
    if (engine_internal(metric.name)) continue;
    EXPECT_EQ(metric.value, sharded.metrics.value(metric.name))
        << "K=" << shards << " metric=" << metric.name;
  }
  for (const obs::Metric& metric : sharded.metrics.snapshot()) {
    if (engine_internal(metric.name)) continue;
    EXPECT_TRUE(serial.metrics.contains(metric.name))
        << "K=" << shards << " sharded-only metric=" << metric.name;
  }
}

/// Figure-1-shaped scenario (SSAF flood over a wide terrain), scaled down.
ScenarioConfig fig1_scenario() {
  ScenarioConfig config;
  config.seed = 20260808;
  config.nodes = 140;
  config.width_m = 1600.0;
  config.height_m = 900.0;
  config.range_m = 250.0;
  config.protocol = ProtocolKind::Ssaf;
  config.pairs = 2;
  config.require_connected_pairs = true;
  config.min_pair_hops = 2;
  config.cbr_interval = 0.5;
  config.payload_bytes = 256;
  config.traffic_start = 1.0;
  config.traffic_stop = 5.0;
  config.sim_end = 7.0;
  return config;
}

/// Figure-3-shaped scenario (routeless routing, bidirectional CBR).
ScenarioConfig fig3_scenario() {
  ScenarioConfig config;
  config.seed = 424242;
  config.nodes = 120;
  config.width_m = 1400.0;
  config.height_m = 1000.0;
  config.range_m = 250.0;
  config.protocol = ProtocolKind::Routeless;
  config.pairs = 2;
  config.bidirectional = true;
  config.cbr_interval = 0.5;
  config.payload_bytes = 256;
  config.traffic_start = 1.0;
  config.traffic_stop = 5.0;
  config.sim_end = 7.0;
  return config;
}

TEST(ShardedDeterminism, Fig1SsafBitIdenticalAcrossShardCounts) {
  const ScenarioResult serial = run_scenario(fig1_scenario());
  ASSERT_GT(serial.sent, 0u);
  ASSERT_GT(serial.delivered, 0u);
  for (const std::uint32_t shards : {2u, 4u}) {
    ScenarioConfig config = fig1_scenario();
    config.shards = shards;
    config.shard_threads = 2;
    const ScenarioResult result = run_scenario(config);
    expect_semantically_identical(serial, result, shards);
  }
}

TEST(ShardedDeterminism, Fig3RoutelessBitIdenticalAcrossShardCounts) {
  const ScenarioResult serial = run_scenario(fig3_scenario());
  ASSERT_GT(serial.sent, 0u);
  for (const std::uint32_t shards : {2u, 4u}) {
    ScenarioConfig config = fig3_scenario();
    config.shards = shards;
    config.shard_threads = 2;
    const ScenarioResult result = run_scenario(config);
    expect_semantically_identical(serial, result, shards);
  }
}

/// Mobility scenario tuned so nodes actually cross strip boundaries: a
/// narrow-but-wide terrain (thin strips at K=4), fast nodes, and a
/// migratable protocol family (flooding).
ScenarioConfig mobility_scenario() {
  ScenarioConfig config;
  config.seed = 8881;
  config.nodes = 100;
  config.width_m = 1200.0;
  config.height_m = 800.0;
  config.range_m = 250.0;
  config.protocol = ProtocolKind::Ssaf;
  config.pairs = 2;
  config.cbr_interval = 0.5;
  config.payload_bytes = 256;
  config.traffic_start = 1.0;
  config.traffic_stop = 8.0;
  config.sim_end = 10.0;
  config.mobility = true;
  config.mobility_min_speed_mps = 10.0;
  config.mobility_max_speed_mps = 30.0;
  config.mobility_pause_s = 0.5;
  return config;
}

/// Rayleigh-fading scenario: every per-receiver power is a stochastic draw,
/// exercising the counter-based per-link streams end to end.
ScenarioConfig fading_scenario(PropagationKind kind) {
  ScenarioConfig config;
  config.seed = 5150;
  config.nodes = 110;
  config.width_m = 1300.0;
  config.height_m = 900.0;
  config.range_m = 250.0;
  config.propagation = kind;
  config.protocol = ProtocolKind::Counter1Flooding;
  config.pairs = 2;
  config.cbr_interval = 0.5;
  config.payload_bytes = 256;
  config.traffic_start = 1.0;
  config.traffic_stop = 5.0;
  config.sim_end = 7.0;
  return config;
}

/// Figure-4-shaped scenario: periodic transceiver failures plus energy
/// accounting (the failure schedule and the meters both must shard).
ScenarioConfig fig4_scenario() {
  ScenarioConfig config;
  config.seed = 40404;
  config.nodes = 120;
  config.width_m = 1400.0;
  config.height_m = 1000.0;
  config.range_m = 250.0;
  config.protocol = ProtocolKind::Ssaf;
  config.pairs = 2;
  config.cbr_interval = 0.5;
  config.payload_bytes = 256;
  config.traffic_start = 1.0;
  config.traffic_stop = 6.0;
  config.sim_end = 8.0;
  config.failure_fraction = 0.3;
  config.failure_cycle_s = 2.0;
  config.track_energy = true;
  return config;
}

void expect_energy_identical(const ScenarioResult& serial,
                             const ScenarioResult& sharded,
                             std::uint32_t shards) {
  EXPECT_EQ(serial.total_energy_j, sharded.total_energy_j) << "K=" << shards;
  EXPECT_EQ(serial.energy_per_delivered_j, sharded.energy_per_delivered_j)
      << "K=" << shards;
}

TEST(ShardedDeterminism, MobilityBitIdenticalAcrossShardCounts) {
  const ScenarioResult serial = run_scenario(mobility_scenario());
  ASSERT_GT(serial.sent, 0u);
  ASSERT_GT(serial.delivered, 0u);
  std::uint64_t migrations_seen = 0;
  for (const std::uint32_t shards : {2u, 4u}) {
    ScenarioConfig config = mobility_scenario();
    config.shards = shards;
    config.shard_threads = 2;
    const ScenarioResult result = run_scenario(config);
    expect_semantically_identical(serial, result, shards);
    if (result.metrics.contains(obs::metric::kSimNodeMigrations)) {
      migrations_seen += result.metrics.value(obs::metric::kSimNodeMigrations);
    }
  }
  // The scenario is tuned so ownership actually changes hands — otherwise
  // this gate would silently degrade into the static-topology one.
  EXPECT_GT(migrations_seen, 0u);
}

TEST(ShardedDeterminism, RayleighFadingBitIdenticalAcrossShardCounts) {
  const ScenarioResult serial =
      run_scenario(fading_scenario(PropagationKind::Rayleigh));
  ASSERT_GT(serial.sent, 0u);
  for (const std::uint32_t shards : {2u, 4u}) {
    ScenarioConfig config = fading_scenario(PropagationKind::Rayleigh);
    config.shards = shards;
    config.shard_threads = 2;
    const ScenarioResult result = run_scenario(config);
    expect_semantically_identical(serial, result, shards);
  }
}

TEST(ShardedDeterminism, ShadowingBitIdenticalAcrossShardCounts) {
  const ScenarioResult serial =
      run_scenario(fading_scenario(PropagationKind::Shadowing));
  ASSERT_GT(serial.sent, 0u);
  for (const std::uint32_t shards : {2u, 4u}) {
    ScenarioConfig config = fading_scenario(PropagationKind::Shadowing);
    config.shards = shards;
    config.shard_threads = 2;
    const ScenarioResult result = run_scenario(config);
    expect_semantically_identical(serial, result, shards);
  }
}

TEST(ShardedDeterminism, Fig4FailuresAndEnergyBitIdentical) {
  const ScenarioResult serial = run_scenario(fig4_scenario());
  ASSERT_GT(serial.sent, 0u);
  ASSERT_GT(serial.total_energy_j, 0.0);
  // The failure model must actually be flipping radios for this to gate
  // anything.
  ASSERT_GT(serial.metrics.value("phy.drop_while_off") +
                serial.metrics.value("phy.tx_dropped_off") +
                serial.metrics.value("mac.tx_dropped_radio_off"),
            0u);
  for (const std::uint32_t shards : {2u, 4u}) {
    ScenarioConfig config = fig4_scenario();
    config.shards = shards;
    config.shard_threads = 2;
    const ScenarioResult result = run_scenario(config);
    expect_semantically_identical(serial, result, shards);
    expect_energy_identical(serial, result, shards);
  }
}

TEST(ShardedDeterminism, MobileFadingEnergyComposeBitIdentically) {
  // Everything at once — the scenario shape the guards used to reject
  // wholesale: moving nodes, stochastic fading, failures, and energy.
  ScenarioConfig base = mobility_scenario();
  base.propagation = PropagationKind::Rayleigh;
  base.failure_fraction = 0.2;
  base.failure_cycle_s = 2.0;
  base.track_energy = true;
  base.traffic_stop = 5.0;
  base.sim_end = 7.0;
  const ScenarioResult serial = run_scenario(base);
  ASSERT_GT(serial.sent, 0u);
  for (const std::uint32_t shards : {2u, 4u}) {
    ScenarioConfig config = base;
    config.shards = shards;
    config.shard_threads = 2;
    const ScenarioResult result = run_scenario(config);
    expect_semantically_identical(serial, result, shards);
    expect_energy_identical(serial, result, shards);
  }
}

TEST(ShardedDeterminism, MobilityThreadCountInvariant) {
  ScenarioConfig config = mobility_scenario();
  config.shards = 4;
  config.shard_threads = 1;
  const ScenarioResult one = run_scenario(config);
  config.shard_threads = 4;
  const ScenarioResult four = run_scenario(config);
  expect_semantically_identical(one, four, 4);
}

TEST(ShardedDeterminism, ReplicationsComposeWithShards) {
  // run_replications over a sharded config: the outer replication pool and
  // the inner per-replication shard pools share one thread budget (outer x
  // inner <= requested), and every replication stays bit-identical to its
  // serial twin regardless of how the budget splits. A requested budget
  // smaller than reps x shards must clamp, not oversubscribe.
  ScenarioConfig config = mobility_scenario();
  const Aggregated serial = run_replications(config, 3, 2);
  config.shards = 2;
  config.shard_threads = 0;  // would resolve to hw without the clamp
  const Aggregated sharded = run_replications(config, 3, 2);
  EXPECT_EQ(serial.delivery_ratio.mean, sharded.delivery_ratio.mean);
  EXPECT_EQ(serial.delay_s.mean, sharded.delay_s.mean);
  EXPECT_EQ(serial.hops.mean, sharded.hops.mean);
  EXPECT_EQ(serial.mac_packets.mean, sharded.mac_packets.mean);
  for (const obs::Metric& metric : serial.metrics.snapshot()) {
    if (engine_internal(metric.name)) continue;
    EXPECT_EQ(metric.value, sharded.metrics.value(metric.name))
        << "metric=" << metric.name;
  }
}

TEST(ShardedDeterminism, WindowBatchIsPureOptimization) {
  // shard_window_batch must be invisible in the results: a skipped exchange
  // round is a no-op by construction. Gate every fixed batch plus 0 (the
  // adaptive controller) against exchange-every-window.
  for (const std::uint32_t batch : {0u, 4u, 16u}) {
    ScenarioConfig config = mobility_scenario();
    config.shards = 4;
    config.shard_threads = 2;
    config.shard_window_batch = 1;
    const ScenarioResult baseline = run_scenario(config);
    config.shard_window_batch = batch;
    const ScenarioResult batched = run_scenario(config);
    expect_semantically_identical(baseline, batched, 4);
  }
}

TEST(SerialFadingRng, DeterministicPerSeedAfterLinkRngSwitch) {
  // The one documented result change of the counter-based rng scheme:
  // serial stochastic-fading runs draw per-link streams now, so absolute
  // numbers moved ONCE. This pins the new scheme down: per-seed
  // reproducibility and seed sensitivity.
  const ScenarioResult a =
      run_scenario(fading_scenario(PropagationKind::Rayleigh));
  const ScenarioResult b =
      run_scenario(fading_scenario(PropagationKind::Rayleigh));
  EXPECT_EQ(a.sent, b.sent);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.mean_delay_s, b.mean_delay_s);
  EXPECT_EQ(a.mac_packets, b.mac_packets);
  EXPECT_EQ(a.channel_transmissions, b.channel_transmissions);

  ScenarioConfig other = fading_scenario(PropagationKind::Rayleigh);
  other.seed = 5151;
  const ScenarioResult c = run_scenario(other);
  EXPECT_NE(std::tie(a.delivered, a.mean_delay_s, a.mac_packets),
            std::tie(c.delivered, c.mean_delay_s, c.mac_packets));
}

TEST(ShardedDeterminism, EmptyShardsAreHarmless) {
  // More shards than can be populated: several strips own zero nodes, and
  // their idle schedulers must not stall or skew the window protocol.
  ScenarioConfig config = fig3_scenario();
  config.nodes = 12;
  config.pairs = 1;
  const ScenarioResult serial = run_scenario(config);
  config.shards = 8;
  config.shard_threads = 4;
  const ScenarioResult result = run_scenario(config);
  expect_semantically_identical(serial, result, 8);
}

TEST(ShardedDeterminism, ShardedRunIsRepeatable) {
  ScenarioConfig config = fig1_scenario();
  config.shards = 4;
  config.shard_threads = 4;
  const ScenarioResult a = run_scenario(config);
  const ScenarioResult b = run_scenario(config);
  EXPECT_EQ(a.sent, b.sent);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.mean_delay_s, b.mean_delay_s);
  EXPECT_EQ(a.mac_packets, b.mac_packets);
}

TEST(ShardedDeterminism, SingleThreadEqualsMultiThread) {
  ScenarioConfig config = fig1_scenario();
  config.shards = 4;
  config.shard_threads = 1;
  const ScenarioResult one = run_scenario(config);
  config.shard_threads = 4;
  const ScenarioResult four = run_scenario(config);
  expect_semantically_identical(one, four, 4);
}

TEST(ShardedDeterminism, RuntimeProfilerOnStaysBitIdentical) {
  // The profiler stamps wall clock only at round boundaries, so turning it
  // on must not move a single semantic bit — at any K, against a serial
  // baseline that also has it enabled (a no-op there).
  ScenarioConfig base = fig1_scenario();
  base.profile_runtime = true;
  const ScenarioResult serial = run_scenario(base);
  ASSERT_GT(serial.sent, 0u);
  for (const std::uint32_t shards : {2u, 4u}) {
    ScenarioConfig config = base;
    config.shards = shards;
    config.shard_threads = 2;
    const ScenarioResult result = run_scenario(config);
    expect_semantically_identical(serial, result, shards);
    // The telemetry itself must be there (excluded from the sweep above).
    EXPECT_GT(result.metrics.value(obs::metric::kShardRounds), 0u)
        << "K=" << shards;
    EXPECT_GT(result.metrics.value(obs::metric::kRuntimeExecuteNs), 0u)
        << "K=" << shards;
    EXPECT_GE(result.metrics.value(obs::metric::kRuntimeBarrierWaitPct), 0u)
        << "K=" << shards;
  }
}

TEST(ShardedDeterminism, HealthMonitorAndProfilerComposeWithMigration) {
  // Monitor + profiler together on the hardest scenario (mobile nodes
  // crossing strips): still bit-identical, and the monitor observed a live
  // run without tripping any budget (none were set).
  const ScenarioResult serial = run_scenario(mobility_scenario());
  ASSERT_GT(serial.sent, 0u);
  ScenarioConfig config = mobility_scenario();
  config.shards = 4;
  config.shard_threads = 2;
  config.profile_runtime = true;
  obs::RunHealthMonitor monitor;
  config.health_monitor = &monitor;
  const ScenarioResult result = run_scenario(config);
  expect_semantically_identical(serial, result, 4);
  EXPECT_EQ(result.events_executed, monitor.events());
  EXPECT_GT(monitor.wall_s(), 0.0);
  EXPECT_FALSE(monitor.budget_exceeded());
  EXPECT_GE(monitor.samples().size(), 1u);
  // note_profile ran in the coordinator: the report gets one phase
  // breakdown per worker, each fully covered by the contiguous laps.
  ASSERT_EQ(monitor.worker_phases().size(), 2u);
  EXPECT_GT(monitor.min_phase_coverage(), 0.95);
}

TEST(ClonePacketDeep, CopiesEveryFieldAndRehomesExtension) {
  net::PacketInit init;
  init.type = net::PacketType::Data;
  init.origin = 3;
  init.target = 9;
  init.sequence = 77;
  init.uid = (std::uint64_t{3} << 32) | 12;
  init.payload_bytes = 512;
  init.created_at = 1.25;
  init.rreq_id = 5;
  init.origin_seqno = 8;
  init.target_seqno = 2;
  init.unreachable = 1;
  init.extension =
      net::make_extension<proto::SourceRouteExtension>(
          std::vector<std::uint32_t>{3, 4, 9});
  net::PacketRef original = net::make_packet(std::move(init));
  original.hop().ttl = 7;
  original.hop().prev_hop = 4;
  original.hop().actual_hops = 3;
  original.hop().expected_hops = 5;

  const net::PacketRef clone = net::clone_packet_deep(original);
  EXPECT_EQ(clone.type(), original.type());
  EXPECT_EQ(clone.origin(), original.origin());
  EXPECT_EQ(clone.target(), original.target());
  EXPECT_EQ(clone.sequence(), original.sequence());
  EXPECT_EQ(clone.uid(), original.uid());
  EXPECT_EQ(clone.payload_bytes(), original.payload_bytes());
  EXPECT_EQ(clone.created_at(), original.created_at());
  EXPECT_EQ(clone.rreq_id(), original.rreq_id());
  EXPECT_EQ(clone.origin_seqno(), original.origin_seqno());
  EXPECT_EQ(clone.target_seqno(), original.target_seqno());
  EXPECT_EQ(clone.unreachable(), original.unreachable());
  EXPECT_EQ(clone.ttl(), original.ttl());
  EXPECT_EQ(clone.prev_hop(), original.prev_hop());
  EXPECT_EQ(clone.actual_hops(), original.actual_hops());
  EXPECT_EQ(clone.expected_hops(), original.expected_hops());
  // Distinct buffers (the whole point: the clone lives in the destination
  // shard's pool), equal extension payload.
  EXPECT_NE(&clone.buffer(), &original.buffer());
  const auto* route = clone.buffer().extension_as<proto::SourceRouteExtension>();
  ASSERT_NE(route, nullptr);
  EXPECT_NE(route,
            original.buffer().extension_as<proto::SourceRouteExtension>());
  EXPECT_EQ(route->route,
            original.buffer()
                .extension_as<proto::SourceRouteExtension>()
                ->route);
}

TEST(ShardedTrace, TwoShardRunTracesSameEventMultisetAsOneShard) {
  // HandlerSpan / WindowSpan / BarrierWait ids are wall-clock nanoseconds
  // and scheduler/worker structure is engine-internal, so the comparison
  // covers packet-lifecycle and election records only. With tracing
  // compiled out both sides are empty and the test degenerates to checking
  // the merge path doesn't crash.
  using Key = std::tuple<double, std::uint64_t, std::uint32_t, std::uint16_t,
                         std::uint16_t>;
  const auto semantic_keys = [](const std::vector<obs::TraceRecord>& records) {
    std::vector<Key> keys;
    for (const obs::TraceRecord& rec : records) {
      if (rec.kind ==
              static_cast<std::uint16_t>(obs::EventKind::HandlerSpan) ||
          rec.kind ==
              static_cast<std::uint16_t>(obs::EventKind::WindowSpan) ||
          rec.kind ==
              static_cast<std::uint16_t>(obs::EventKind::BarrierWait)) {
        continue;
      }
      keys.emplace_back(rec.time, rec.id, rec.node, rec.kind, rec.arg);
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  };

  ScenarioConfig config = fig3_scenario();
  config.nodes = 60;
  config.sim_end = 4.0;
  config.traffic_stop = 3.0;
  config.trace_events = true;

  SimInstance serial(config);
  serial.run();
  ASSERT_NE(serial.tracer(), nullptr);
  const std::vector<Key> serial_keys =
      semantic_keys(serial.tracer()->snapshot());

  config.shards = 2;
  config.shard_threads = 2;
  std::vector<obs::TraceRecord> sharded_records;
  (void)run_scenario_sharded(config, &sharded_records);
  const std::vector<Key> sharded_keys = semantic_keys(sharded_records);

  if (obs::trace_compiled_in()) {
    ASSERT_FALSE(serial_keys.empty());
  }
  EXPECT_EQ(serial_keys, sharded_keys);

  // The merged stream must round-trip through the record exporters: one
  // JSONL line per record, same formatting as the single-ring path.
  std::ostringstream os;
  ASSERT_TRUE(obs::export_records_jsonl(sharded_records, os));
  const std::string jsonl = os.str();
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(jsonl.begin(), jsonl.end(), '\n')),
            sharded_records.size());
  std::ostringstream chrome;
  ASSERT_TRUE(obs::export_records_chrome_trace(sharded_records, chrome));
  EXPECT_NE(chrome.str().find("\"traceEvents\""), std::string::npos);
}

}  // namespace
}  // namespace rrnet::sim
