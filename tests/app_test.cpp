#include <utility>

#include <gtest/gtest.h>

#include "util/contracts.hpp"

#include "app/cbr.hpp"
#include "proto/ssaf.hpp"
#include "test_helpers.hpp"

namespace rrnet::app {
namespace {

using rrnet::testing::TestNet;

TEST(FlowStats, DeliveryRatioAndDelay) {
  FlowStats stats;
  stats.record_sent(1, 0.0);
  stats.record_sent(2, 0.0);
  stats.record_sent(3, 0.0);
  net::PacketInit init;
  init.uid = 1;
  init.created_at = 0.0;
  init.actual_hops = 4;
  stats.record_delivered(net::make_packet(std::move(init)), 0.5);
  EXPECT_EQ(stats.sent(), 3u);
  EXPECT_EQ(stats.delivered(), 1u);
  EXPECT_NEAR(stats.delivery_ratio(), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.delay().mean(), 0.5);
  EXPECT_DOUBLE_EQ(stats.hops().mean(), 4.0);
}

TEST(FlowStats, DuplicateDeliveryCountedOnce) {
  FlowStats stats;
  stats.record_sent(7, 0.0);
  net::PacketInit init;
  init.uid = 7;
  const net::PacketRef p = net::make_packet(std::move(init));
  stats.record_delivered(p, 0.1);
  stats.record_delivered(p, 0.2);
  EXPECT_EQ(stats.delivered(), 1u);
  EXPECT_EQ(stats.delay().count(), 1u);
}

TEST(FlowStats, UnknownUidIgnored) {
  FlowStats stats;
  net::PacketInit init;
  init.uid = 99;
  stats.record_delivered(net::make_packet(std::move(init)), 0.1);
  EXPECT_EQ(stats.delivered(), 0u);
}

TEST(FlowStats, ZeroSentGivesZeroRatio) {
  FlowStats stats;
  EXPECT_DOUBLE_EQ(stats.delivery_ratio(), 0.0);
}

TEST(FlowStats, OutstandingBoundedUnderSustainedLoss) {
  // Regression: outstanding_ used to grow by one entry per lost packet
  // forever. With a uid window it stays bounded however long the run.
  FlowStats stats(/*uid_window=*/64);
  EXPECT_EQ(stats.uid_window(), 64u);
  for (std::uint64_t uid = 1; uid <= 1000; ++uid) {
    stats.record_sent(uid, static_cast<double>(uid) * 0.01);
  }
  EXPECT_EQ(stats.sent(), 1000u);
  EXPECT_LE(stats.outstanding_size(), 64u);
  EXPECT_EQ(stats.outstanding_evictions(), 1000u - 64u);
  EXPECT_DOUBLE_EQ(stats.delivery_ratio(), 0.0);  // counters unaffected
}

TEST(FlowStats, EvictedUidDeliveryIgnoredRecentUidCounted) {
  FlowStats stats(/*uid_window=*/64);
  for (std::uint64_t uid = 1; uid <= 1000; ++uid) stats.record_sent(uid, 0.0);
  // uid 1 aged out of the window: its ultra-late delivery is ignored, same
  // as the old code's unknown-uid judgement call.
  net::PacketInit evicted;
  evicted.uid = 1;
  stats.record_delivered(net::make_packet(std::move(evicted)), 1.0);
  EXPECT_EQ(stats.delivered(), 0u);
  // uid 1000 is still tracked and counts normally.
  net::PacketInit recent;
  recent.uid = 1000;
  recent.created_at = 0.0;
  stats.record_delivered(net::make_packet(std::move(recent)), 1.0);
  EXPECT_EQ(stats.delivered(), 1u);
  EXPECT_EQ(stats.delay().count(), 1u);
}

TEST(FlowStats, SeenUidWindowBoundedToo) {
  FlowStats stats(/*uid_window=*/32);
  for (std::uint64_t uid = 1; uid <= 200; ++uid) {
    stats.record_sent(uid, 0.0);
    net::PacketInit init;
    init.uid = uid;
    stats.record_delivered(net::make_packet(std::move(init)), 0.1);
  }
  EXPECT_EQ(stats.delivered(), 200u);
  EXPECT_LE(stats.seen_size(), 32u);
  EXPECT_LE(stats.outstanding_size(), 32u);
}

TEST(Cbr, RejectsBadConfig) {
  auto tn = rrnet::testing::make_line_net(2);
  tn.node(0).set_protocol(proto::make_counter1_flooding(tn.node(0)));
  FlowStats stats;
  CbrConfig bad;
  bad.interval = 0.0;
  EXPECT_THROW(CbrSource(tn.node(0), 1, bad, stats),
               rrnet::ContractViolation);
  EXPECT_THROW(CbrSource(tn.node(0), 0, CbrConfig{}, stats),
               rrnet::ContractViolation);
}

TEST(Cbr, GeneratesExpectedPacketCount) {
  auto tn = rrnet::testing::make_line_net(2);
  for (std::uint32_t i = 0; i < 2; ++i) {
    tn.node(i).set_protocol(proto::make_counter1_flooding(tn.node(i)));
  }
  tn.network->start_protocols();
  FlowStats stats;
  CbrConfig config;
  config.interval = 1.0;
  config.start_time = 1.0;
  config.stop_time = 11.0;
  CbrSource source(tn.node(0), 1, config, stats);
  source.start();
  tn.scheduler.run_until(30.0);
  // First packet in (1, 2]; then one per second until t >= 11: 9 or 10.
  EXPECT_GE(source.packets_sent(), 9u);
  EXPECT_LE(source.packets_sent(), 10u);
  EXPECT_EQ(stats.sent(), source.packets_sent());
}

TEST(Cbr, EndToEndWithSinkOverRealProtocol) {
  auto tn = rrnet::testing::make_line_net(3);
  for (std::uint32_t i = 0; i < 3; ++i) {
    tn.node(i).set_protocol(proto::make_counter1_flooding(tn.node(i)));
  }
  tn.network->start_protocols();
  FlowStats stats;
  attach_sink(tn.node(2), stats);
  CbrConfig config;
  config.interval = 0.5;
  config.start_time = 0.5;
  config.stop_time = 5.5;
  CbrSource source(tn.node(0), 2, config, stats);
  source.start();
  tn.scheduler.run_until(20.0);
  EXPECT_GE(stats.sent(), 9u);
  EXPECT_EQ(stats.delivered(), stats.sent());  // quiet 2-hop line: no loss
  EXPECT_NEAR(stats.hops().mean(), 2.0, 1e-9);
  EXPECT_GT(stats.delay().mean(), 0.0);
  EXPECT_LT(stats.delay().mean(), 0.1);
}

TEST(Cbr, StopTimeHaltsGeneration) {
  auto tn = rrnet::testing::make_line_net(2);
  for (std::uint32_t i = 0; i < 2; ++i) {
    tn.node(i).set_protocol(proto::make_counter1_flooding(tn.node(i)));
  }
  tn.network->start_protocols();
  FlowStats stats;
  CbrConfig config;
  config.interval = 1.0;
  config.start_time = 0.0;
  config.stop_time = 3.0;
  CbrSource source(tn.node(0), 1, config, stats);
  source.start();
  tn.scheduler.run_until(100.0);
  EXPECT_LE(source.packets_sent(), 3u);
}

}  // namespace
}  // namespace rrnet::app
