#include <gtest/gtest.h>

#include "proto/dsr.hpp"
#include "sim/runner.hpp"
#include "test_helpers.hpp"
#include "util/contracts.hpp"

namespace rrnet::proto {
namespace {

using rrnet::testing::TestNet;

DsrProtocol& dsr_of(net::Node& node) {
  return static_cast<DsrProtocol&>(node.protocol());
}

void attach_dsr(TestNet& tn, DsrConfig config = {}) {
  for (std::uint32_t i = 0; i < tn.network->size(); ++i) {
    tn.node(i).set_protocol(std::make_unique<DsrProtocol>(tn.node(i), config));
  }
  tn.network->start_protocols();
}

TEST(Dsr, DiscoversSourceRouteAndDelivers) {
  auto tn = rrnet::testing::make_line_net(5);
  attach_dsr(tn);
  int deliveries = 0;
  net::PacketRef delivered;
  tn.node(4).set_delivery_handler([&](const net::PacketRef& p) {
    ++deliveries;
    delivered = p;
  });
  tn.node(0).protocol().send_data(4, 128);
  tn.scheduler.run_until(20.0);
  ASSERT_EQ(deliveries, 1);
  EXPECT_EQ(delivered.actual_hops(), 4u);
  ASSERT_TRUE(dsr_of(tn.node(0)).has_cached_route(4));
  const SourceRoute& route = dsr_of(tn.node(0)).cached_route(4);
  EXPECT_EQ(route, (SourceRoute{0, 1, 2, 3, 4}));
}

TEST(Dsr, IntermediateNodesCacheSubRoutes) {
  auto tn = rrnet::testing::make_line_net(5);
  attach_dsr(tn);
  tn.node(0).protocol().send_data(4, 64);
  tn.scheduler.run_until(20.0);
  // Node 2 forwarded the reply/data; it knows routes both ways.
  ASSERT_TRUE(dsr_of(tn.node(2)).has_cached_route(4));
  ASSERT_TRUE(dsr_of(tn.node(2)).has_cached_route(0));
  EXPECT_EQ(dsr_of(tn.node(2)).cached_route(4), (SourceRoute{2, 3, 4}));
  EXPECT_EQ(dsr_of(tn.node(2)).cached_route(0), (SourceRoute{2, 1, 0}));
}

TEST(Dsr, SecondPacketUsesCache) {
  auto tn = rrnet::testing::make_line_net(4);
  attach_dsr(tn);
  int deliveries = 0;
  tn.node(3).set_delivery_handler([&](const net::PacketRef&) { ++deliveries; });
  tn.node(0).protocol().send_data(3, 64);
  tn.scheduler.run_until(20.0);
  const std::uint64_t rreqs = dsr_of(tn.node(0)).dsr_stats().rreq_originated;
  tn.node(0).protocol().send_data(3, 64);
  tn.scheduler.run_until(40.0);
  EXPECT_EQ(deliveries, 2);
  EXPECT_EQ(dsr_of(tn.node(0)).dsr_stats().rreq_originated, rreqs);
  EXPECT_GE(dsr_of(tn.node(0)).dsr_stats().cache_hits, 1u);
}

TEST(Dsr, LinkBreakPurgesCachesAndRecovers) {
  std::vector<geom::Vec2> positions{
      {0, 500}, {200, 440}, {200, 560}, {400, 500}};
  DsrConfig config;
  config.discovery_timeout = 1.0;
  TestNet tn(positions, 250.0, geom::Terrain(800, 1000));
  attach_dsr(tn, config);
  int deliveries = 0;
  tn.node(3).set_delivery_handler([&](const net::PacketRef&) { ++deliveries; });
  tn.node(0).protocol().send_data(3, 64);
  tn.scheduler.run_until(10.0);
  ASSERT_EQ(deliveries, 1);
  // Kill the relay the cached route uses; the next packets re-discover
  // through the other relay.
  const SourceRoute route = dsr_of(tn.node(0)).cached_route(3);
  ASSERT_EQ(route.size(), 3u);
  tn.network->channel().transceiver(route[1]).turn_off();
  for (int i = 0; i < 4; ++i) {
    tn.scheduler.schedule_at(10.5 + i, [&tn]() {
      tn.node(0).protocol().send_data(3, 64);
    });
  }
  tn.scheduler.run_until(60.0);
  EXPECT_GE(deliveries, 4);
  EXPECT_GE(dsr_of(tn.node(0)).dsr_stats().link_breaks, 1u);
  EXPECT_GE(dsr_of(tn.node(0)).dsr_stats().rerr_sent, 1u);
}

TEST(Dsr, UnreachableTargetFailsCleanly) {
  std::vector<geom::Vec2> positions{{0, 500}, {200, 500}, {3000, 500}};
  DsrConfig config;
  config.discovery_timeout = 0.5;
  config.max_discovery_retries = 2;
  TestNet tn(positions, 250.0, geom::Terrain(4000, 1000));
  attach_dsr(tn, config);
  tn.node(0).protocol().send_data(2, 64);
  tn.scheduler.run_until(10.0);
  EXPECT_EQ(dsr_of(tn.node(0)).dsr_stats().discovery_failures, 1u);
  EXPECT_EQ(dsr_of(tn.node(0)).dsr_stats().pending_dropped, 1u);
}

TEST(Dsr, RouteRequestLoopsAreDropped) {
  // Dense cluster: RREQ copies echo back along loops and must be ignored.
  std::vector<geom::Vec2> positions;
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      positions.push_back({100.0 + 150.0 * c, 100.0 + 150.0 * r});
    }
  }
  TestNet tn(positions, 250.0, geom::Terrain(600, 600));
  attach_dsr(tn);
  int deliveries = 0;
  tn.node(8).set_delivery_handler([&](const net::PacketRef&) { ++deliveries; });
  tn.node(0).protocol().send_data(8, 64);
  tn.scheduler.run_until(20.0);
  EXPECT_EQ(deliveries, 1);
  // The cached route must be loop-free.
  const SourceRoute& route = dsr_of(tn.node(0)).cached_route(8);
  SourceRoute sorted = route;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(Dsr, CacheCapacityEvicts) {
  auto tn = rrnet::testing::make_line_net(6);
  DsrConfig config;
  config.cache_capacity = 2;
  attach_dsr(tn, config);
  // Flows to three different targets from node 0.
  for (std::uint32_t target : {3u, 4u, 5u}) {
    tn.node(0).protocol().send_data(target, 32);
    tn.scheduler.run_until(tn.scheduler.now() + 10.0);
  }
  EXPECT_GE(dsr_of(tn.node(0)).dsr_stats().cache_evictions, 1u);
}

TEST(DsrScenario, WorksThroughTheScenarioHarness) {
  sim::ScenarioConfig config;
  config.seed = 8;
  config.nodes = 50;
  config.width_m = config.height_m = 800.0;
  config.protocol = sim::ProtocolKind::Dsr;
  config.pairs = 3;
  config.cbr_interval = 1.0;
  config.traffic_stop = 11.0;
  config.sim_end = 18.0;
  const sim::ScenarioResult r = sim::run_scenario(config);
  EXPECT_GT(r.sent, 0u);
  EXPECT_GT(r.delivery_ratio, 0.9);
  EXPECT_GE(r.mean_hops, 1.0);
}

}  // namespace
}  // namespace rrnet::proto
