#include <memory>

#include <gtest/gtest.h>

#include "sim/mobility.hpp"
#include "sim/runner.hpp"
#include "util/contracts.hpp"

namespace rrnet::sim {
namespace {

class MobilityTest : public ::testing::Test {
 protected:
  void build(MobilityConfig config, std::size_t nodes = 5) {
    terrain_ = std::make_unique<geom::Terrain>(1000.0, 800.0);
    std::vector<geom::Vec2> positions;
    des::Rng place(3);
    for (std::size_t i = 0; i < nodes; ++i) {
      positions.push_back(
          {place.uniform(0.0, 1000.0), place.uniform(0.0, 800.0)});
    }
    initial_positions_ = positions;
    phy::RadioParams radio;
    channel_ = std::make_unique<phy::Channel>(
        scheduler_, *terrain_, std::make_unique<phy::FreeSpace>(), radio,
        positions, des::Rng(4));
    model_ = std::make_unique<RandomWaypoint>(scheduler_, *channel_, *terrain_,
                                              config, des::Rng(5));
  }

  des::Scheduler scheduler_;
  std::unique_ptr<geom::Terrain> terrain_;
  std::unique_ptr<phy::Channel> channel_;
  std::unique_ptr<RandomWaypoint> model_;
  std::vector<geom::Vec2> initial_positions_;
};

TEST_F(MobilityTest, NodesActuallyMove) {
  build(MobilityConfig{});
  model_->start();
  scheduler_.run_until(30.0);
  int moved = 0;
  for (std::uint32_t i = 0; i < 5; ++i) {
    if (geom::distance(channel_->position(i), initial_positions_[i]) > 1.0) {
      ++moved;
    }
    EXPECT_GT(model_->distance_traveled(i), 0.0) << i;
  }
  EXPECT_EQ(moved, 5);
}

TEST_F(MobilityTest, PositionsStayInsideTerrain) {
  MobilityConfig config;
  config.max_speed_mps = 20.0;
  config.pause_s = 0.1;
  build(config);
  model_->start();
  for (int step = 1; step <= 60; ++step) {
    scheduler_.run_until(static_cast<double>(step));
    for (std::uint32_t i = 0; i < 5; ++i) {
      EXPECT_TRUE(terrain_->contains(channel_->position(i)))
          << "node " << i << " at t=" << step;
    }
  }
}

TEST_F(MobilityTest, SpeedBoundsRespected) {
  MobilityConfig config;
  config.min_speed_mps = 2.0;
  config.max_speed_mps = 4.0;
  config.pause_s = 0.0001;
  build(config);
  model_->start();
  const double horizon = 100.0;
  scheduler_.run_until(horizon);
  for (std::uint32_t i = 0; i < 5; ++i) {
    const double avg_speed = model_->distance_traveled(i) / horizon;
    EXPECT_LE(avg_speed, 4.0 + 0.1) << i;
    EXPECT_GE(avg_speed, 0.5) << i;  // pauses are negligible here
  }
}

TEST_F(MobilityTest, PinnedNodesNeverMove) {
  MobilityConfig config;
  config.pinned_nodes = {2};
  build(config);
  model_->start();
  scheduler_.run_until(30.0);
  EXPECT_EQ(channel_->position(2), initial_positions_[2]);
  EXPECT_DOUBLE_EQ(model_->distance_traveled(2), 0.0);
}

TEST_F(MobilityTest, RejectsBadConfig) {
  MobilityConfig bad;
  bad.min_speed_mps = 0.0;
  EXPECT_THROW(build(bad), rrnet::ContractViolation);
  MobilityConfig inverted;
  inverted.min_speed_mps = 5.0;
  inverted.max_speed_mps = 1.0;
  EXPECT_THROW(build(inverted), rrnet::ContractViolation);
}

TEST(MobilityScenario, RoutelessDeliversUnderMobility) {
  ScenarioConfig config;
  config.seed = 9;
  config.nodes = 60;
  config.width_m = config.height_m = 800.0;
  config.protocol = ProtocolKind::Routeless;
  config.pairs = 2;
  config.cbr_interval = 1.0;
  config.traffic_start = 1.0;
  config.traffic_stop = 21.0;
  config.sim_end = 30.0;
  config.mobility = true;
  config.mobility_min_speed_mps = 2.0;
  config.mobility_max_speed_mps = 8.0;
  const ScenarioResult r = run_scenario(config);
  EXPECT_GT(r.sent, 0u);
  // Routeless Routing's selling point: topology changes are absorbed by
  // per-packet elections; a dense mobile network still delivers most data.
  EXPECT_GT(r.delivery_ratio, 0.8);
}

TEST(MobilityScenario, MobilityOffByDefault) {
  ScenarioConfig config;
  config.nodes = 10;
  config.pairs = 1;
  config.sim_end = 2.0;
  SimInstance sim(config);
  EXPECT_EQ(sim.mobility(), nullptr);
}

TEST(EnergyScenario, TracksConsumptionWhenEnabled) {
  ScenarioConfig config;
  config.seed = 12;
  config.nodes = 30;
  config.width_m = config.height_m = 600.0;
  config.protocol = ProtocolKind::Ssaf;
  config.pairs = 2;
  config.cbr_interval = 1.0;
  config.traffic_stop = 6.0;
  config.sim_end = 10.0;
  config.track_energy = true;
  const ScenarioResult r = run_scenario(config);
  EXPECT_GT(r.total_energy_j, 0.0);
  EXPECT_GT(r.energy_per_delivered_j, 0.0);
  // Sanity bound: 30 radios idling at ~30 mW for 10 s ~ 9 J, plus tx.
  EXPECT_GT(r.total_energy_j, 5.0);
  EXPECT_LT(r.total_energy_j, 30.0);
}

TEST(EnergyScenario, SleepingRadiosConsumeLess) {
  ScenarioConfig config;
  config.seed = 12;
  config.nodes = 30;
  config.width_m = config.height_m = 600.0;
  config.protocol = ProtocolKind::Routeless;
  config.pairs = 1;
  config.cbr_interval = 2.0;
  config.traffic_stop = 11.0;
  config.sim_end = 20.0;
  config.track_energy = true;
  const ScenarioResult awake = run_scenario(config);
  config.failure_fraction = 0.5;  // duty-cycle half the time (sleep mode)
  const ScenarioResult dozy = run_scenario(config);
  EXPECT_LT(dozy.total_energy_j, awake.total_energy_j);
}

TEST(EnergyScenario, OffByDefault) {
  ScenarioConfig config;
  config.nodes = 10;
  config.pairs = 1;
  config.traffic_stop = 2.0;
  config.sim_end = 3.0;
  const ScenarioResult r = run_scenario(config);
  EXPECT_DOUBLE_EQ(r.total_energy_j, 0.0);
}

}  // namespace
}  // namespace rrnet::sim
