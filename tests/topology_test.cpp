#include <gtest/gtest.h>

#include "sim/runner.hpp"
#include "sim/topology.hpp"
#include "test_helpers.hpp"
#include "util/contracts.hpp"

namespace rrnet::sim {
namespace {

using rrnet::testing::TestNet;
using rrnet::testing::line_positions;

TEST(Topology, LineGraphHopDistances) {
  auto tn = rrnet::testing::make_line_net(6);
  const Topology topology(tn.network->channel());
  EXPECT_EQ(topology.node_count(), 6u);
  EXPECT_EQ(topology.hop_distance(0, 0), 0);
  EXPECT_EQ(topology.hop_distance(0, 1), 1);
  EXPECT_EQ(topology.hop_distance(0, 5), 5);
  EXPECT_EQ(topology.hop_distance(5, 0), 5);
  EXPECT_TRUE(topology.connected());
  EXPECT_EQ(topology.largest_component(), 6u);
  // Interior nodes have two neighbors, ends have one.
  EXPECT_EQ(topology.neighbors(0).size(), 1u);
  EXPECT_EQ(topology.neighbors(3).size(), 2u);
  EXPECT_NEAR(topology.average_degree(), (2.0 * 5.0) / 6.0, 1e-12);
}

TEST(Topology, DetectsPartition) {
  std::vector<geom::Vec2> positions{
      {0, 500}, {200, 500}, {3000, 500}, {3200, 500}};
  TestNet tn(positions, 250.0, geom::Terrain(4000, 1000));
  const Topology topology(tn.network->channel());
  EXPECT_FALSE(topology.connected());
  EXPECT_EQ(topology.largest_component(), 2u);
  EXPECT_EQ(topology.hop_distance(0, 2), -1);
  EXPECT_FALSE(topology.reachable(1, 3));
  EXPECT_TRUE(topology.reachable(0, 1));
}

TEST(Topology, BoundsChecked) {
  auto tn = rrnet::testing::make_line_net(3);
  const Topology topology(tn.network->channel());
  EXPECT_THROW(static_cast<void>(topology.neighbors(9)),
               rrnet::ContractViolation);
  EXPECT_THROW(static_cast<void>(topology.hop_distance(0, 9)),
               rrnet::ContractViolation);
}

TEST(DrawConnectedPairs, AllPairsReachableAndFarEnough) {
  auto tn = rrnet::testing::make_line_net(8);
  const Topology topology(tn.network->channel());
  des::Rng rng(5);
  const auto pairs = draw_connected_pairs(topology, 20, rng, /*min_hops=*/3);
  ASSERT_EQ(pairs.size(), 20u);
  for (const auto& [src, dst] : pairs) {
    EXPECT_NE(src, dst);
    EXPECT_GE(topology.hop_distance(src, dst), 3);
  }
}

TEST(DrawConnectedPairs, FallsBackWhenImpossible) {
  // 2-node network: min_hops 5 is unsatisfiable; must still return pairs.
  std::vector<geom::Vec2> positions{{0, 500}, {200, 500}};
  TestNet tn(positions, 250.0, geom::Terrain(1000, 1000));
  const Topology topology(tn.network->channel());
  des::Rng rng(6);
  const auto pairs = draw_connected_pairs(topology, 3, rng, 5, 16);
  ASSERT_EQ(pairs.size(), 3u);
  for (const auto& [src, dst] : pairs) EXPECT_NE(src, dst);
}

TEST(ConnectedPairsScenario, DeliveredHopsMatchBfsOnQuietNetwork) {
  ScenarioConfig config;
  config.seed = 31;
  config.nodes = 50;
  config.width_m = config.height_m = 900.0;
  config.protocol = ProtocolKind::Routeless;
  config.pairs = 2;
  config.require_connected_pairs = true;
  config.min_pair_hops = 3;
  config.cbr_interval = 2.0;
  config.traffic_stop = 9.0;
  config.sim_end = 15.0;
  SimInstance sim(config);
  const Topology topology(sim.network().channel());
  for (const auto& [src, dst] : sim.pairs()) {
    EXPECT_GE(topology.hop_distance(src, dst), 3);
  }
  sim.run();
  const ScenarioResult r = sim.result();
  EXPECT_GT(r.delivered, 0u);
  // RR finds near-shortest paths; delivered hops can't beat the BFS bound.
  double max_bfs = 0;
  for (const auto& [src, dst] : sim.pairs()) {
    max_bfs = std::max(max_bfs,
                       static_cast<double>(topology.hop_distance(src, dst)));
  }
  EXPECT_GE(r.mean_hops, 3.0);
  EXPECT_LE(r.mean_hops, max_bfs + 3.0);
}

TEST(ConnectedPairsScenario, ImprovesDeliveryOnSparseNetworks) {
  // A sparse deployment where random pairs often land in different
  // components: requiring connectivity removes that artifact.
  ScenarioConfig config;
  config.seed = 33;
  config.nodes = 25;
  config.width_m = config.height_m = 1600.0;
  config.protocol = ProtocolKind::Counter1Flooding;
  config.pairs = 10;
  config.cbr_interval = 2.0;
  config.traffic_stop = 9.0;
  config.sim_end = 15.0;
  const ScenarioResult random_pairs = run_scenario(config);
  config.require_connected_pairs = true;
  const ScenarioResult connected_pairs = run_scenario(config);
  EXPECT_GE(connected_pairs.delivery_ratio, random_pairs.delivery_ratio);
}

}  // namespace
}  // namespace rrnet::sim
