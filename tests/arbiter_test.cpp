#include <gtest/gtest.h>

#include "util/contracts.hpp"

#include "core/arbiter.hpp"
#include "des/scheduler.hpp"

namespace rrnet::core {
namespace {

ArbiterConfig config(des::Time timeout = 0.05, std::uint32_t retries = 3) {
  ArbiterConfig c;
  c.relay_timeout = timeout;
  c.max_retransmits = retries;
  return c;
}

TEST(Arbiter, RelayHeardSendsAckOnceAndStops) {
  des::Scheduler sched;
  Arbiter arbiter(sched, config());
  int acks = 0, retx = 0;
  arbiter.watch(1, {[&]() { ++retx; }, [&]() { ++acks; }});
  EXPECT_TRUE(arbiter.watching(1));
  EXPECT_TRUE(arbiter.relay_heard(1));
  EXPECT_EQ(acks, 1);
  EXPECT_FALSE(arbiter.watching(1));
  EXPECT_FALSE(arbiter.relay_heard(1));  // second report: no double ack
  sched.run();
  EXPECT_EQ(acks, 1);
  EXPECT_EQ(retx, 0);
  EXPECT_EQ(arbiter.stats().relays_heard, 1u);
}

TEST(Arbiter, SilenceTriggersRetransmissions) {
  des::Scheduler sched;
  Arbiter arbiter(sched, config(0.05, 3));
  int retx = 0;
  arbiter.watch(2, {[&]() { ++retx; }, []() {}});
  sched.run();
  EXPECT_EQ(retx, 3);
  EXPECT_FALSE(arbiter.watching(2));
  EXPECT_EQ(arbiter.stats().retransmits, 3u);
  EXPECT_EQ(arbiter.stats().gave_up, 1u);
  // 3 retransmits at 0.05 spacing, then a final timeout before giving up.
  EXPECT_NEAR(sched.now(), 0.2, 1e-9);
}

TEST(Arbiter, RelayHeardAfterRetransmitStillAcks) {
  des::Scheduler sched;
  Arbiter arbiter(sched, config(0.05, 5));
  int acks = 0, retx = 0;
  arbiter.watch(3, {[&]() { ++retx; }, [&]() { ++acks; }});
  sched.schedule_at(0.12, [&]() { arbiter.relay_heard(3); });
  sched.run();
  EXPECT_EQ(retx, 2);  // at 0.05 and 0.10
  EXPECT_EQ(acks, 1);
}

TEST(Arbiter, StopIsSilent) {
  des::Scheduler sched;
  Arbiter arbiter(sched, config());
  int acks = 0, retx = 0;
  arbiter.watch(4, {[&]() { ++retx; }, [&]() { ++acks; }});
  EXPECT_TRUE(arbiter.stop(4));
  EXPECT_FALSE(arbiter.stop(4));
  sched.run();
  EXPECT_EQ(acks, 0);
  EXPECT_EQ(retx, 0);
}

TEST(Arbiter, RewatchResetsRetryBudget) {
  des::Scheduler sched;
  Arbiter arbiter(sched, config(0.05, 1));
  int retx = 0;
  arbiter.watch(5, {[&]() { ++retx; }, []() {}});
  sched.run_until(0.06);  // first (and only budgeted) retransmit fired
  EXPECT_EQ(retx, 1);
  arbiter.watch(5, {[&]() { ++retx; }, []() {}});  // fresh watch
  sched.run();
  EXPECT_EQ(retx, 2);
}

TEST(Arbiter, IndependentKeys) {
  des::Scheduler sched;
  Arbiter arbiter(sched, config(0.05, 2));
  int retx_a = 0, retx_b = 0, acks_b = 0;
  arbiter.watch(10, {[&]() { ++retx_a; }, []() {}});
  arbiter.watch(11, {[&]() { ++retx_b; }, [&]() { ++acks_b; }});
  EXPECT_EQ(arbiter.active_count(), 2u);
  arbiter.relay_heard(11);
  sched.run();
  EXPECT_EQ(retx_a, 2);
  EXPECT_EQ(retx_b, 0);
  EXPECT_EQ(acks_b, 1);
}

TEST(Arbiter, RetransmitCallbackMayRewatch) {
  // A protocol's retransmit path goes through watch_as_arbiter again; the
  // arbiter must tolerate re-entrant watch() from inside its own callback.
  des::Scheduler sched;
  Arbiter arbiter(sched, config(0.05, 1));
  int retx = 0;
  // Callbacks are move-only; re-watch through a by-reference trampoline.
  std::function<void()> retransmit = [&]() {
    ++retx;
    if (retx < 3) {
      arbiter.watch(7, {[&]() { retransmit(); }, []() {}});
    }
  };
  arbiter.watch(7, {[&]() { retransmit(); }, []() {}});
  sched.run();
  EXPECT_EQ(retx, 3);
}

TEST(Arbiter, RequiresBothCallbacks) {
  des::Scheduler sched;
  Arbiter arbiter(sched, config());
  EXPECT_THROW(arbiter.watch(1, {nullptr, []() {}}),
               rrnet::ContractViolation);
  EXPECT_THROW(arbiter.watch(1, {[]() {}, nullptr}),
               rrnet::ContractViolation);
}

}  // namespace
}  // namespace rrnet::core
