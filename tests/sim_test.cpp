#include <cstdint>
#include <cstring>

#include <gtest/gtest.h>

#include "sim/replication.hpp"
#include "sim/runner.hpp"
#include "sim/sweep.hpp"

namespace rrnet::sim {
namespace {

ScenarioConfig small_scenario(ProtocolKind protocol) {
  ScenarioConfig config;
  config.seed = 11;
  config.nodes = 30;
  config.width_m = 600.0;
  config.height_m = 600.0;
  config.range_m = 250.0;
  config.protocol = protocol;
  config.pairs = 2;
  config.cbr_interval = 1.0;
  config.payload_bytes = 128;
  config.traffic_start = 1.0;
  config.traffic_stop = 8.0;
  config.sim_end = 15.0;
  return config;
}

TEST(DrawPairs, EndpointsDistinctAndInRange) {
  des::Rng rng(5);
  const auto pairs = draw_pairs(20, 50, rng);
  ASSERT_EQ(pairs.size(), 50u);
  for (const auto& [src, dst] : pairs) {
    EXPECT_LT(src, 20u);
    EXPECT_LT(dst, 20u);
    EXPECT_NE(src, dst);
  }
}

TEST(ProtocolKindNames, AllDistinct) {
  EXPECT_STREQ(to_string(ProtocolKind::Ssaf), "SSAF");
  EXPECT_STREQ(to_string(ProtocolKind::Routeless), "Routeless Routing");
  EXPECT_STREQ(to_string(ProtocolKind::Aodv), "AODV");
}

TEST(SimInstance, RunsAndProducesSaneMetrics) {
  const ScenarioResult r = run_scenario(small_scenario(ProtocolKind::Ssaf));
  EXPECT_GT(r.sent, 0u);
  EXPECT_GT(r.delivered, 0u);
  EXPECT_GE(r.delivery_ratio, 0.0);
  EXPECT_LE(r.delivery_ratio, 1.0);
  EXPECT_GT(r.mac_packets, r.sent);
  EXPECT_GT(r.events_executed, 0u);
  EXPECT_GE(r.mean_hops, 1.0);
  EXPECT_GT(r.mean_delay_s, 0.0);
}

TEST(SimInstance, DeterministicForSameSeed) {
  const ScenarioResult a = run_scenario(small_scenario(ProtocolKind::Routeless));
  const ScenarioResult b = run_scenario(small_scenario(ProtocolKind::Routeless));
  EXPECT_EQ(a.sent, b.sent);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.mac_packets, b.mac_packets);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_DOUBLE_EQ(a.mean_delay_s, b.mean_delay_s);
}

TEST(SimInstance, SeedChangesOutcome) {
  ScenarioConfig c1 = small_scenario(ProtocolKind::Ssaf);
  ScenarioConfig c2 = c1;
  c2.seed = 12;
  const ScenarioResult a = run_scenario(c1);
  const ScenarioResult b = run_scenario(c2);
  EXPECT_NE(a.events_executed, b.events_executed);
}

TEST(SimInstance, ExplicitPairsHonored) {
  ScenarioConfig config = small_scenario(ProtocolKind::Ssaf);
  config.explicit_pairs = {{0, 1}, {2, 3}};
  SimInstance sim(config);
  ASSERT_EQ(sim.pairs().size(), 2u);
  EXPECT_EQ(sim.pairs()[0], (std::pair<std::uint32_t, std::uint32_t>{0, 1}));
}

TEST(SimInstance, BidirectionalDoublesTraffic) {
  ScenarioConfig uni = small_scenario(ProtocolKind::Ssaf);
  ScenarioConfig bi = uni;
  bi.bidirectional = true;
  const ScenarioResult a = run_scenario(uni);
  const ScenarioResult b = run_scenario(bi);
  EXPECT_GT(b.sent, a.sent * 3 / 2);
}

TEST(SimInstance, TracePathsRecordsWhenEnabled) {
  ScenarioConfig config = small_scenario(ProtocolKind::Routeless);
  config.trace_paths = true;
  SimInstance sim(config);
  sim.run();
  ASSERT_NE(sim.path_trace(), nullptr);
  EXPECT_FALSE(sim.path_trace()->paths().empty());
}

TEST(SimInstance, FailureModelCreatedOnlyWhenRequested) {
  ScenarioConfig config = small_scenario(ProtocolKind::Routeless);
  SimInstance without(config);
  EXPECT_EQ(without.failures(), nullptr);
  config.failure_fraction = 0.1;
  SimInstance with(config);
  EXPECT_NE(with.failures(), nullptr);
}

TEST(SimInstance, RadioCalibratedToConfiguredRange) {
  ScenarioConfig config = small_scenario(ProtocolKind::Ssaf);
  config.range_m = 180.0;
  SimInstance sim(config);
  EXPECT_NEAR(sim.network().channel().nominal_range_m(), 180.0, 1.0);
}

// Compare two summaries bit-exactly (NaN-safe): determinism means identical
// doubles, not merely close ones.
void expect_bit_identical(const util::Summary& a, const util::Summary& b,
                          const char* what) {
  EXPECT_EQ(a.count, b.count) << what;
  auto bits = [](double d) {
    std::uint64_t u;
    std::memcpy(&u, &d, sizeof(u));
    return u;
  };
  EXPECT_EQ(bits(a.mean), bits(b.mean)) << what << ".mean";
  EXPECT_EQ(bits(a.stddev), bits(b.stddev)) << what << ".stddev";
  EXPECT_EQ(bits(a.min), bits(b.min)) << what << ".min";
  EXPECT_EQ(bits(a.max), bits(b.max)) << what << ".max";
  EXPECT_EQ(bits(a.ci95), bits(b.ci95)) << what << ".ci95";
}

TEST(Replication, ParallelIsBitIdenticalToSerial) {
  const ScenarioConfig base = small_scenario(ProtocolKind::Ssaf);
  const Aggregated serial = run_replications(base, 4, /*threads=*/1);
  const Aggregated parallel = run_replications(base, 4, /*threads=*/4);
  expect_bit_identical(serial.delivery_ratio, parallel.delivery_ratio,
                       "delivery_ratio");
  expect_bit_identical(serial.delay_s, parallel.delay_s, "delay_s");
  expect_bit_identical(serial.hops, parallel.hops, "hops");
  expect_bit_identical(serial.mac_packets, parallel.mac_packets,
                       "mac_packets");
  expect_bit_identical(serial.mac_per_delivered, parallel.mac_per_delivered,
                       "mac_per_delivered");
  EXPECT_EQ(serial.replications, 4u);
}

TEST(Replication, AdjacentBaseSeedsDoNotShareReplications) {
  // Regression for the base.seed + i overlap: with additive seeding, base
  // seed 1 replication 2 and base seed 3 replication 0 were the SAME run.
  ScenarioConfig a = small_scenario(ProtocolKind::Ssaf);
  a.seed = 1;
  ScenarioConfig b = a;
  b.seed = 3;
  const Aggregated agg_a = run_replications(a, 4, /*threads=*/2);
  const Aggregated agg_b = run_replications(b, 4, /*threads=*/2);
  // Identical replication sets would make every aggregate coincide; the
  // mac_packets totals are fine-grained enough to distinguish real runs.
  EXPECT_NE(agg_a.mac_packets.mean, agg_b.mac_packets.mean);
}

TEST(Replication, SummariesCoverAllReplications) {
  const Aggregated agg =
      run_replications(small_scenario(ProtocolKind::Ssaf), 3, 3);
  EXPECT_EQ(agg.delivery_ratio.count, 3u);
  EXPECT_EQ(agg.mac_packets.count, 3u);
  EXPECT_GT(agg.mac_packets.mean, 0.0);
}

TEST(Sweep, BuildsLabeledTable) {
  SweepSpec spec;
  spec.x_label = "interval_s";
  spec.x_values = {1.0, 2.0};
  spec.replications = 1;
  ScenarioConfig base = small_scenario(ProtocolKind::Ssaf);
  Sweep sweep(spec, base);
  sweep.run("ssaf", ProtocolKind::Ssaf, [](ScenarioConfig& c, double x) {
    c.cbr_interval = x;
  });
  const util::Table table = sweep.table();
  EXPECT_EQ(table.rows(), 2u);
  // x + 4 paper metrics + 4 observability counters per series.
  EXPECT_EQ(table.columns(), 9u);
  EXPECT_DOUBLE_EQ(std::get<double>(table.at(0, 0)), 1.0);
  EXPECT_GT(std::get<double>(table.at(0, 1)), 0.0);  // delivery ratio
  // SSAF arms an election per received flood copy; the elec_won counter
  // must be live (relays happened, so someone won).
  EXPECT_GT(std::get<double>(table.at(0, 8)), 0.0);
}

}  // namespace
}  // namespace rrnet::sim
