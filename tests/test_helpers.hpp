// Shared fixtures: hand-placed topologies wired through the real substrate.
#pragma once

#include <memory>
#include <vector>

#include "des/scheduler.hpp"
#include "geom/terrain.hpp"
#include "net/network.hpp"
#include "phy/propagation.hpp"

namespace rrnet::testing {

/// A complete network over explicit positions with free-space propagation
/// and tx power calibrated for the requested range.
struct TestNet {
  des::Scheduler scheduler;
  geom::Terrain terrain;
  std::unique_ptr<net::Network> network;

  TestNet(std::vector<geom::Vec2> positions, double range_m,
          geom::Terrain terrain_in, std::uint64_t seed = 7,
          mac::MacParams mac_params = {})
      : terrain(terrain_in) {
    phy::FreeSpace model_for_power;
    phy::RadioParams radio;
    radio.cs_threshold_dbm = radio.rx_threshold_dbm - 7.0;
    radio.noise_floor_dbm = radio.rx_threshold_dbm - 14.0;
    radio.interference_cutoff_dbm = radio.rx_threshold_dbm - 14.0;
    radio.tx_power_dbm = phy::tx_power_for_range(model_for_power, range_m,
                                                 radio.rx_threshold_dbm);
    network = std::make_unique<net::Network>(
        scheduler, terrain, std::make_unique<phy::FreeSpace>(), radio,
        mac_params, std::move(positions), des::Rng(seed));
  }

  net::Node& node(std::uint32_t id) { return network->node(id); }
};

/// N nodes on a horizontal line with the given spacing; with spacing just
/// under the range only adjacent nodes hear each other.
inline std::vector<geom::Vec2> line_positions(std::size_t n, double spacing,
                                              double y = 500.0,
                                              double x0 = 10.0) {
  std::vector<geom::Vec2> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({x0 + spacing * static_cast<double>(i), y});
  }
  return out;
}

/// A line network: spacing 200 m, range 250 m -> adjacent-only links.
inline TestNet make_line_net(std::size_t n, std::uint64_t seed = 7,
                             mac::MacParams mac_params = {}) {
  const double width = 200.0 * static_cast<double>(n) + 20.0;
  return TestNet(line_positions(n, 200.0), 250.0,
                 geom::Terrain(width, 1000.0), seed, mac_params);
}

}  // namespace rrnet::testing
