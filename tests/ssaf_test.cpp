#include <gtest/gtest.h>

#include "geom/placement.hpp"
#include "proto/ssaf.hpp"
#include "test_helpers.hpp"

namespace rrnet::proto {
namespace {

using rrnet::testing::TestNet;

void attach_ssaf(TestNet& tn, SsafConfig config = {}) {
  for (std::uint32_t i = 0; i < tn.network->size(); ++i) {
    tn.node(i).set_protocol(make_ssaf(tn.node(i), config));
  }
  tn.network->start_protocols();
}

void attach_counter1(TestNet& tn, des::Time lambda = 10e-3) {
  for (std::uint32_t i = 0; i < tn.network->size(); ++i) {
    tn.node(i).set_protocol(make_counter1_flooding(tn.node(i), lambda));
  }
  tn.network->start_protocols();
}

TEST(Ssaf, DeliversOnLineTopology) {
  auto tn = rrnet::testing::make_line_net(5);
  attach_ssaf(tn);
  int deliveries = 0;
  net::PacketRef delivered;
  tn.node(4).set_delivery_handler([&](const net::PacketRef& p) {
    ++deliveries;
    delivered = p;
  });
  tn.node(0).protocol().send_data(4, 64);
  tn.scheduler.run();
  ASSERT_EQ(deliveries, 1);
  EXPECT_EQ(delivered.actual_hops(), 4u);
}

TEST(Ssaf, FartherReceiverRelaysFirst) {
  // Source at x=0; candidates at 60 m (near) and 240 m (far); a probe node
  // at 460 m hears only the far candidate's relay. With SSAF and zero
  // jitter, the far candidate must always fire before the near one.
  std::vector<geom::Vec2> positions{
      {0, 500}, {60, 500}, {240, 500}, {460, 500}};
  TestNet tn(positions, 250.0, geom::Terrain(1000, 1000));
  SsafConfig config;
  config.jitter_fraction = 0.0;
  attach_ssaf(tn, config);
  int probe_deliveries = 0;
  net::PacketRef probe_packet;
  tn.node(3).set_delivery_handler([&](const net::PacketRef& p) {
    ++probe_deliveries;
    probe_packet = p;
  });
  tn.node(0).protocol().send_data(3, 32);
  tn.scheduler.run();
  ASSERT_EQ(probe_deliveries, 1);
  // Via the far candidate: exactly 2 hops (0 -> 240 -> 460).
  EXPECT_EQ(probe_packet.actual_hops(), 2u);
}

TEST(Ssaf, HopCountNoWorseThanCounter1OnAverage) {
  // Random 40-node network; same seed for both protocols so topologies are
  // identical. SSAF's mean delivered hop count must not exceed counter-1's
  // (the paper's Figure 1 middle panel).
  const geom::Terrain terrain(1000, 1000);
  des::Rng placement(77);
  const auto positions = geom::place_uniform(terrain, 40, placement);

  auto run = [&](bool ssaf) {
    TestNet tn(positions, 250.0, terrain);
    if (ssaf) {
      attach_ssaf(tn);
    } else {
      attach_counter1(tn);
    }
    double hops_sum = 0.0;
    int deliveries = 0;
    for (std::uint32_t sink : {35u, 36u, 37u, 38u, 39u}) {
      tn.node(sink).set_delivery_handler([&](const net::PacketRef& p) {
        hops_sum += p.actual_hops();
        ++deliveries;
      });
    }
    double t = 0.0;
    for (int round = 0; round < 5; ++round) {
      for (std::uint32_t src : {0u, 1u, 2u, 3u, 4u}) {
        const std::uint32_t sink = 35u + src;
        tn.scheduler.schedule_at(t += 0.21, [&tn, src, sink]() {
          tn.node(src).protocol().send_data(sink, 64);
        });
      }
    }
    tn.scheduler.run();
    EXPECT_GT(deliveries, 0);
    return hops_sum / std::max(1, deliveries);
  };
  const double hops_counter1 = run(false);
  const double hops_ssaf = run(true);
  EXPECT_LE(hops_ssaf, hops_counter1 + 0.3);
}

TEST(Ssaf, JitterKeepsBackoffWithinLambda) {
  // Covered at the policy level too; here we assert protocol wiring: the
  // election delays recorded as MAC priorities must stay within lambda.
  auto tn = rrnet::testing::make_line_net(3);
  SsafConfig config;
  config.lambda = 4e-3;
  attach_ssaf(tn, config);
  tn.node(0).protocol().send_data(2, 16);
  tn.scheduler.run();
  const auto& stats =
      static_cast<FloodingProtocol&>(tn.node(1).protocol()).election_stats();
  EXPECT_GE(stats.won, 1u);
}

TEST(Ssaf, NameIdentifiesProtocol) {
  auto tn = rrnet::testing::make_line_net(2);
  attach_ssaf(tn);
  EXPECT_STREQ(tn.node(0).protocol().name(), "ssaf");
}

}  // namespace
}  // namespace rrnet::proto
