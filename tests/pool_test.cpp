// util::PayloadPool: reuse, exhaustion fallback, and mixed release safety.
#include "util/pool.hpp"

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "util/pooled_containers.hpp"

namespace rrnet::util {
namespace {

struct Payload {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  explicit Payload(std::uint64_t v) : a(v), b(~v) {}
};

TEST(PayloadPool, ReusesChunksAfterRelease) {
  PayloadPool pool(/*capacity=*/4);
  void* first = pool.allocate(32);
  EXPECT_EQ(pool.stats().pool_allocs, 1u);
  PayloadPool::release(first);
  EXPECT_EQ(pool.stats().releases, 1u);
  // Free-list is LIFO: the released chunk comes straight back.
  void* second = pool.allocate(32);
  EXPECT_EQ(second, first);
  EXPECT_EQ(pool.stats().pool_allocs, 2u);
  EXPECT_EQ(pool.stats().heap_allocs, 0u);
  PayloadPool::release(second);
}

TEST(PayloadPool, ExhaustionFallsBackToHeapNeverFails) {
  PayloadPool pool(/*capacity=*/2);
  std::vector<void*> chunks;
  for (int i = 0; i < 5; ++i) chunks.push_back(pool.allocate(16));
  EXPECT_EQ(pool.stats().pool_allocs, 2u);
  EXPECT_EQ(pool.stats().heap_allocs, 3u);
  for (void* p : chunks) PayloadPool::release(p);
  // Only pool-owned chunks return to the free list (heap chunks are freed),
  // and pool release counting reflects that.
  EXPECT_EQ(pool.stats().releases, 2u);
  EXPECT_EQ(pool.free_count(), 2u);
  // After drain-and-release, pooled service resumes.
  void* again = pool.allocate(16);
  EXPECT_EQ(pool.stats().pool_allocs, 3u);
  PayloadPool::release(again);
}

TEST(PayloadPool, MismatchedSizeTakesHeapPath) {
  PayloadPool pool(/*capacity=*/4);
  void* sized = pool.allocate(24);  // fixes chunk size at 24
  void* other = pool.allocate(48);  // different size -> heap fallback
  EXPECT_EQ(pool.stats().pool_allocs, 1u);
  EXPECT_EQ(pool.stats().heap_allocs, 1u);
  PayloadPool::release(sized);
  PayloadPool::release(other);
}

TEST(MakePooled, RoundTripsThroughThreadLocalPool) {
  const auto& stats = pooled_stats<Payload>();
  const std::uint64_t pool_before = stats.pool_allocs;
  {
    std::shared_ptr<const Payload> boxed = make_pooled<Payload>(7u);
    EXPECT_EQ(boxed->a, 7u);
    EXPECT_EQ(boxed->b, ~std::uint64_t{7});
    EXPECT_EQ(stats.pool_allocs, pool_before + 1);
  }
  // Dropping the last handle returns the combined block to the pool.
  const std::uint64_t releases_after = stats.releases;
  std::shared_ptr<const Payload> next = make_pooled<Payload>(9u);
  EXPECT_EQ(stats.pool_allocs, pool_before + 2);
  EXPECT_GE(releases_after, 1u);
}

TEST(MakePooled, SteadyStateIsAllocationFree) {
  // Warm the pool, then box/release in a loop: every allocation must be
  // served from the free list (pool_allocs advances, heap_allocs does not).
  { auto warm = make_pooled<Payload>(0u); }
  const auto& stats = pooled_stats<Payload>();
  const std::uint64_t heap_before = stats.heap_allocs;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    auto boxed = make_pooled<Payload>(i);
    ASSERT_EQ(boxed->a, i);
  }
  EXPECT_EQ(stats.heap_allocs, heap_before);
}

TEST(MakePooled, HandlesOutlivePoolPressure) {
  // Hold more live handles than the arena holds chunks; overflow handles
  // must be heap-backed and still destruct cleanly.
  std::vector<std::shared_ptr<const Payload>> live;
  const std::size_t n = PayloadPool::kDefaultCapacity + 64;
  live.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) live.push_back(make_pooled<Payload>(i));
  const auto& stats = pooled_stats<Payload>();
  EXPECT_GT(stats.heap_allocs, 0u);
  for (std::uint64_t i = 0; i < n; ++i) ASSERT_EQ(live[i]->a, i);
  live.clear();  // releases both pool and heap chunks without error
}

TEST(PoolAllocated, ObjectsRecycleThroughSizeClassPools) {
  struct Obj : PoolAllocated {
    std::uint64_t data[5] = {};
  };  // 40 bytes -> the 64-byte size class
  const auto& stats = sized_pool(sizeof(Obj)).stats();
  delete new Obj;  // warm the class (first call may carve the arena)
  const std::uint64_t pool_before = stats.pool_allocs;
  const std::uint64_t heap_before = stats.heap_allocs;
  for (int i = 0; i < 100; ++i) delete new Obj;
  EXPECT_EQ(stats.pool_allocs, pool_before + 100);
  EXPECT_EQ(stats.heap_allocs, heap_before);
}

TEST(PoolAllocated, OversizedObjectsBypassThePoolsSafely) {
  struct Big : PoolAllocated {
    char blob[2048] = {};  // above kSizeClassMax -> headered heap chunk
  };
  Big* big = new Big;
  big->blob[2047] = 'x';
  delete big;  // release dispatches on the null-owner header
}

// These two tests spell out libstdc++'s internal node types to reach the
// per-node-type pool counters; they pin the property the pooled aliases
// exist for (node recycling through the pool) on the toolchain this repo
// builds with.
TEST(PooledContainers, MapEraseInsertIsAllocationFreeInSteadyState) {
  // Container node types get their own per-thread pools; once warm, an
  // erase/insert cycle is a free-list round trip, not a heap one.
  using Map = PooledUnorderedMap<std::uint64_t, std::uint64_t>;
  using Node = std::__detail::_Hash_node<
      std::pair<const std::uint64_t, std::uint64_t>, false>;
  const auto& stats = payload_pool<NodePoolAllocator<Node>>().stats();
  Map map;
  for (std::uint64_t i = 0; i < 64; ++i) map.emplace(i, ~i);
  const std::uint64_t heap_before = stats.heap_allocs;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    map.erase(i % 64);
    map.emplace(i % 64, i);
  }
  EXPECT_EQ(stats.heap_allocs, heap_before);
  EXPECT_GE(stats.pool_allocs, 1000u);
  EXPECT_EQ(map.size(), 64u);
  for (std::uint64_t i = 0; i < 64; ++i) EXPECT_TRUE(map.contains(i));
}

TEST(PooledContainers, ListAndSetUseDistinctPoolsForSameElementType) {
  // A list node and a hash-set node of the same element type have different
  // sizes; keying pools by the rebound node type keeps both on the pool
  // path instead of forcing one into the heap fallback.
  PooledList<std::uint64_t> list;
  PooledUnorderedSet<std::uint64_t> set;
  using ListNode = std::_List_node<std::uint64_t>;
  using SetNode = std::__detail::_Hash_node<std::uint64_t, false>;
  const auto& list_stats = payload_pool<NodePoolAllocator<ListNode>>().stats();
  const auto& set_stats = payload_pool<NodePoolAllocator<SetNode>>().stats();
  const std::uint64_t list_pool_before = list_stats.pool_allocs;
  const std::uint64_t set_pool_before = set_stats.pool_allocs;
  for (std::uint64_t i = 0; i < 100; ++i) {
    list.push_back(i);
    set.insert(i);
  }
  EXPECT_EQ(list_stats.pool_allocs, list_pool_before + 100);
  EXPECT_EQ(set_stats.pool_allocs, set_pool_before + 100);
  EXPECT_EQ(list.size(), 100u);
  EXPECT_EQ(set.size(), 100u);
}

}  // namespace
}  // namespace rrnet::util
