// Cross-module integration: the paper's qualitative claims on small (fast)
// versions of its scenarios. These are shape checks, not benchmarks — the
// bench/ binaries regenerate the full figures.
#include <gtest/gtest.h>

#include "sim/replication.hpp"
#include "sim/runner.hpp"

namespace rrnet::sim {
namespace {

ScenarioConfig flooding_base() {
  // The paper's Figure-1 topology (100 nodes / 1000x1000 m) at moderate
  // load: small enough to run in a second, large enough (4-5 hop paths)
  // that SSAF's far-first relaying is measurable above noise.
  ScenarioConfig config;
  config.seed = 42;
  config.nodes = 100;
  config.width_m = 1000.0;
  config.height_m = 1000.0;
  config.range_m = 250.0;
  config.pairs = 20;
  config.cbr_interval = 2.0;
  config.payload_bytes = 64;
  config.traffic_start = 1.0;
  config.traffic_stop = 13.0;
  config.sim_end = 20.0;
  return config;
}

ScenarioConfig routing_base() {
  ScenarioConfig config;
  config.seed = 43;
  config.nodes = 80;
  config.width_m = 1000.0;
  config.height_m = 1000.0;
  config.range_m = 250.0;
  config.pairs = 3;
  config.bidirectional = true;
  config.cbr_interval = 2.0;
  config.payload_bytes = 256;
  config.traffic_start = 1.0;
  config.traffic_stop = 21.0;
  config.sim_end = 30.0;
  return config;
}

TEST(Integration, SsafBeatsCounter1OnHopsAndDelivery) {
  ScenarioConfig base = flooding_base();
  base.protocol = ProtocolKind::Counter1Flooding;
  const Aggregated counter1 = run_replications(base, 3);
  base.protocol = ProtocolKind::Ssaf;
  const Aggregated ssaf = run_replications(base, 3);

  EXPECT_GT(counter1.delivery_ratio.mean, 0.5);
  EXPECT_GT(ssaf.delivery_ratio.mean, 0.5);
  // Figure 1 shapes (with slack for small-scale noise).
  EXPECT_LT(ssaf.hops.mean, counter1.hops.mean);
  EXPECT_LT(ssaf.delay_s.mean, counter1.delay_s.mean);
  EXPECT_GE(ssaf.delivery_ratio.mean, counter1.delivery_ratio.mean - 0.05);
  EXPECT_LT(ssaf.mac_packets.mean, counter1.mac_packets.mean);
}

TEST(Integration, RoutelessAndAodvBothDeliverWithoutFailures) {
  ScenarioConfig base = routing_base();
  base.protocol = ProtocolKind::Routeless;
  const Aggregated rr = run_replications(base, 2);
  base.protocol = ProtocolKind::Aodv;
  base.aodv.discovery = proto::RreqFlooding::Dedup;
  const Aggregated aodv = run_replications(base, 2);

  EXPECT_GT(rr.delivery_ratio.mean, 0.8);
  EXPECT_GT(aodv.delivery_ratio.mean, 0.8);
}

TEST(Integration, RoutelessResilientToFailuresAodvDegrades) {
  ScenarioConfig base = routing_base();
  base.failure_fraction = 0.08;
  base.pairs = 2;

  base.protocol = ProtocolKind::Routeless;
  const Aggregated rr = run_replications(base, 2);
  base.protocol = ProtocolKind::Aodv;
  base.aodv.discovery = proto::RreqFlooding::Dedup;
  const Aggregated aodv = run_replications(base, 2);

  // Figure 4 shape: RR keeps delivering under failures about as well as
  // AODV (the paper shows near-identical delivery ratios).
  EXPECT_GE(rr.delivery_ratio.mean, aodv.delivery_ratio.mean - 0.05);
  EXPECT_GT(rr.delivery_ratio.mean, 0.85);
}

TEST(Integration, FailuresRaiseAodvOverheadPerDeliveredPacket) {
  // Figure 4 shape: under failures AODV pays MAC retries, RERRs, and
  // re-discovery floods for every delivered packet.
  ScenarioConfig base = routing_base();
  base.protocol = ProtocolKind::Aodv;
  base.aodv.discovery = proto::RreqFlooding::Dedup;
  base.pairs = 2;
  base.cbr_interval = 1.0;
  base.traffic_stop = 41.0;
  base.sim_end = 50.0;
  const Aggregated clean = run_replications(base, 3);
  base.failure_fraction = 0.2;
  const Aggregated faulty = run_replications(base, 3);
  EXPECT_GT(faulty.mac_per_delivered.mean, clean.mac_per_delivered.mean);
}

TEST(Integration, BlindFloodingCostsMostTransmissions) {
  ScenarioConfig base = flooding_base();
  base.pairs = 2;
  base.traffic_stop = 5.0;
  base.sim_end = 12.0;
  base.protocol = ProtocolKind::Counter1Flooding;
  const Aggregated counter1 = run_replications(base, 2);
  base.protocol = ProtocolKind::BlindFlooding;
  const Aggregated blind = run_replications(base, 2);
  EXPECT_GT(blind.mac_packets.mean, counter1.mac_packets.mean);
}

}  // namespace
}  // namespace rrnet::sim
