#include <cstdio>

#include <gtest/gtest.h>

#include "util/contracts.hpp"

#include "proto/routeless.hpp"
#include "test_helpers.hpp"
#include "trace/path_trace.hpp"
#include "trace/render.hpp"

namespace rrnet::trace {
namespace {

using rrnet::testing::TestNet;

TEST(PathTrace, RecordsRelayChain) {
  auto tn = rrnet::testing::make_line_net(4);
  for (std::uint32_t i = 0; i < 4; ++i) {
    tn.node(i).set_protocol(
        std::make_unique<proto::RoutelessProtocol>(tn.node(i)));
  }
  tn.network->start_protocols();
  PathTrace trace(*tn.network);
  tn.node(0).protocol().send_data(3, 64);
  tn.scheduler.run_until(20.0);
  // Find the delivered data path.
  const PacketPath* data_path = nullptr;
  for (const auto& [uid, path] : trace.paths()) {
    if (path.delivered) data_path = &path;
  }
  ASSERT_NE(data_path, nullptr);
  EXPECT_EQ(data_path->origin, 0u);
  EXPECT_EQ(data_path->target, 3u);
  // Transmissions at 0, 1, 2 plus the delivery hop at 3.
  ASSERT_GE(data_path->hops.size(), 4u);
  EXPECT_EQ(data_path->hops.front().node, 0u);
  EXPECT_EQ(data_path->hops.back().node, 3u);
  // Times strictly increase along the chain.
  for (std::size_t i = 1; i < data_path->hops.size(); ++i) {
    EXPECT_GE(data_path->hops[i].time, data_path->hops[i - 1].time);
  }
}

TEST(PathTrace, DetourZeroForStraightLine) {
  PacketPath path;
  path.origin = 0;
  path.target = 1;
  path.delivered = true;
  for (int i = 0; i <= 4; ++i) {
    path.hops.push_back({0, {100.0 * i, 500.0}, 0.1 * i});
  }
  EXPECT_NEAR(PathTrace::mean_detour(path, {0, 500}, {400, 500}), 0.0, 1e-9);
}

TEST(PathTrace, DetourMeasuresDeviation) {
  PacketPath path;
  path.hops.push_back({0, {0, 500}, 0.0});
  path.hops.push_back({1, {200, 700}, 0.1});  // 200 m off the line
  path.hops.push_back({2, {400, 500}, 0.2});
  const double detour = PathTrace::mean_detour(path, {0, 500}, {400, 500});
  EXPECT_NEAR(detour, 200.0 / 3.0, 1e-9);
}

TEST(GridCanvas, PointAccumulation) {
  GridCanvas canvas(geom::Terrain(100, 100), 10, 10);
  canvas.add_point({5, 5});
  canvas.add_point({5, 5}, 2.0);
  EXPECT_DOUBLE_EQ(canvas.cell(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(canvas.cell(5, 5), 0.0);
}

TEST(GridCanvas, SegmentTouchesCellsAlongLine) {
  GridCanvas canvas(geom::Terrain(100, 100), 10, 10);
  canvas.add_segment({5, 5}, {95, 5});
  int touched = 0;
  for (std::size_t c = 0; c < 10; ++c) {
    if (canvas.cell(c, 0) > 0.0) ++touched;
  }
  EXPECT_EQ(touched, 10);
  // No vertical bleed.
  for (std::size_t c = 0; c < 10; ++c) {
    EXPECT_DOUBLE_EQ(canvas.cell(c, 5), 0.0);
  }
}

TEST(GridCanvas, AsciiShapesAndMarkers) {
  GridCanvas canvas(geom::Terrain(100, 100), 8, 4);
  canvas.add_point({50, 50}, 5.0);
  canvas.add_marker({5, 5}, 'A');
  const std::string art = canvas.to_ascii();
  // 4 rows of 8 chars + newlines.
  EXPECT_EQ(art.size(), 4u * 9u);
  EXPECT_EQ(art[0], 'A');  // marker in top-left cell
  EXPECT_NE(art.find('#'), std::string::npos);  // the hot cell
}

TEST(GridCanvas, EmptyCanvasRendersBlank) {
  GridCanvas canvas(geom::Terrain(10, 10), 4, 2);
  const std::string art = canvas.to_ascii();
  for (char c : art) {
    EXPECT_TRUE(c == ' ' || c == '\n');
  }
}

TEST(GridCanvas, SavePgmWritesValidHeader) {
  GridCanvas canvas(geom::Terrain(100, 100), 16, 16);
  canvas.add_point({50, 50}, 3.0);
  const std::string path = ::testing::TempDir() + "/rrnet_canvas.pgm";
  ASSERT_TRUE(canvas.save_pgm(path));
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char magic[3] = {0, 0, 0};
  ASSERT_EQ(std::fread(magic, 1, 2, f), 2u);
  EXPECT_EQ(magic[0], 'P');
  EXPECT_EQ(magic[1], '5');
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(GridCanvas, RejectsZeroDims) {
  EXPECT_THROW(GridCanvas(geom::Terrain(10, 10), 0, 4),
               rrnet::ContractViolation);
}

TEST(GridCanvas, SavePgmReportsIoFailure) {
  GridCanvas canvas(geom::Terrain(100, 100), 8, 8);
  canvas.add_point({50, 50});
  // Unwritable target: the parent directory does not exist. The call must
  // fail cleanly (false), not throw or write elsewhere.
  EXPECT_FALSE(
      canvas.save_pgm("/nonexistent_rrnet_dir/sub/never/canvas.pgm"));
}

TEST(PathTrace, DefaultMaskTracesDataOnly) {
  auto tn = rrnet::testing::make_line_net(4);
  for (std::uint32_t i = 0; i < 4; ++i) {
    tn.node(i).set_protocol(
        std::make_unique<proto::RoutelessProtocol>(tn.node(i)));
  }
  tn.network->start_protocols();
  // Observer fan-out: both traces watch the same run, one masked to Data
  // (the default), one tracing every control type too.
  PathTrace data_only(*tn.network);
  PathTrace all_types(*tn.network, kTraceAllTypes);
  EXPECT_EQ(data_only.type_mask(), kTraceDataOnly);
  EXPECT_EQ(all_types.type_mask(), kTraceAllTypes);
  tn.node(0).protocol().send_data(3, 64);
  tn.scheduler.run_until(20.0);

  // Routeless delivery requires a PathDiscovery flood + reply + acks, so
  // the unmasked trace must have seen strictly more packets.
  EXPECT_FALSE(data_only.paths().empty());
  EXPECT_GT(all_types.paths().size(), data_only.paths().size());
  // And the default trace saw no discovery traffic at all (every traced
  // uid also appears in the full trace — it is a strict subset).
  for (const auto& [uid, path] : data_only.paths()) {
    EXPECT_EQ(all_types.paths().count(uid), 1u);
  }
}

TEST(PathTrace, MaskOfCoversEachTypeDistinctly) {
  EXPECT_EQ(mask_of(net::PacketType::Data), 1u);
  EXPECT_NE(mask_of(net::PacketType::PathDiscovery),
            mask_of(net::PacketType::PathReply));
  EXPECT_TRUE(kTraceAllTypes & mask_of(net::PacketType::RouteUpdate));
}

}  // namespace
}  // namespace rrnet::trace
