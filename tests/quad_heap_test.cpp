// des::QuadHeap: ordering, determinism, and a randomized model test.
#include "des/quad_heap.hpp"

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "des/scheduler.hpp"
#include "mac/frame.hpp"
#include "mac/priority_queue.hpp"

namespace rrnet::des {
namespace {

struct IntLess {
  bool operator()(int a, int b) const noexcept { return a < b; }
};

TEST(QuadHeap, PopsInSortedOrder) {
  QuadHeap<int, IntLess> heap;
  const std::vector<int> input = {7, 3, 9, 1, 4, 1, 8, 2, 6, 5, 0, 9};
  for (int v : input) heap.push(v);
  std::vector<int> expected = input;
  std::sort(expected.begin(), expected.end());
  std::vector<int> popped;
  while (!heap.empty()) popped.push_back(heap.pop_top());
  EXPECT_EQ(popped, expected);
}

TEST(QuadHeap, SingleElementAndClear) {
  QuadHeap<int, IntLess> heap;
  EXPECT_TRUE(heap.empty());
  heap.push(42);
  EXPECT_EQ(heap.size(), 1u);
  EXPECT_EQ(heap.top(), 42);
  heap.pop();
  EXPECT_TRUE(heap.empty());
  heap.push(1);
  heap.clear();
  EXPECT_TRUE(heap.empty());
}

struct Keyed {
  int key;
  std::uint64_t sequence;  // insertion order, for FIFO among equal keys
};
struct KeyedBefore {
  bool operator()(const Keyed& a, const Keyed& b) const noexcept {
    if (a.key != b.key) return a.key < b.key;
    return a.sequence < b.sequence;
  }
};

// Randomized property test: interleaved pushes and pops against a sorted
// reference model must agree exactly, including FIFO among equal keys.
TEST(QuadHeap, MatchesReferenceModelUnderRandomWorkload) {
  std::mt19937_64 gen(0xC0FFEE);
  std::uniform_int_distribution<int> key_dist(0, 19);  // frequent ties
  std::uniform_int_distribution<int> op_dist(0, 99);

  QuadHeap<Keyed, KeyedBefore> heap;
  std::vector<Keyed> model;  // kept sorted by (key, sequence)
  const KeyedBefore before{};
  std::uint64_t next_sequence = 0;

  for (int step = 0; step < 20000; ++step) {
    const bool do_push = model.empty() || op_dist(gen) < 55;
    if (do_push) {
      const Keyed item{key_dist(gen), next_sequence++};
      heap.push(item);
      model.insert(std::upper_bound(model.begin(), model.end(), item, before),
                   item);
    } else {
      ASSERT_FALSE(heap.empty());
      const Keyed& expected = model.front();
      ASSERT_EQ(heap.top().key, expected.key) << "step " << step;
      ASSERT_EQ(heap.top().sequence, expected.sequence) << "step " << step;
      heap.pop();
      model.erase(model.begin());
    }
    ASSERT_EQ(heap.size(), model.size());
  }
  while (!heap.empty()) {
    const Keyed got = heap.pop_top();
    ASSERT_EQ(got.sequence, model.front().sequence);
    model.erase(model.begin());
  }
  EXPECT_TRUE(model.empty());
}

// Equal keys must drain strictly in insertion order — the determinism
// property the scheduler's same-timestamp FIFO guarantee rests on.
TEST(QuadHeap, FifoAmongEqualKeys) {
  QuadHeap<Keyed, KeyedBefore> heap;
  for (std::uint64_t i = 0; i < 100; ++i) heap.push({/*key=*/5, i});
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(heap.pop_top().sequence, i);
  }
}

// Same-timestamp FIFO across the full Scheduler under cancel/reschedule
// churn, now running on the 4-ary heap: cancelled events must not disturb
// the insertion order of survivors at the same timestamp.
TEST(QuadHeapScheduler, SameTimestampFifoUnderChurn) {
  Scheduler sched;
  std::vector<int> order;
  std::vector<EventId> cancelled;
  constexpr Time kT = 1.0;
  int expected_rank = 0;
  for (int round = 0; round < 50; ++round) {
    // Two doomed events bracketing each survivor, cancelled below.
    cancelled.push_back(sched.schedule_at(kT, [&]() { ADD_FAILURE(); }));
    const int rank = expected_rank++;
    sched.schedule_at(kT, [&order, rank]() { order.push_back(rank); });
    cancelled.push_back(sched.schedule_at(kT, [&]() { ADD_FAILURE(); }));
  }
  for (EventId id : cancelled) EXPECT_TRUE(sched.cancel(id));
  // Reschedule more survivors at the same instant after the churn.
  for (int round = 0; round < 50; ++round) {
    const int rank = expected_rank++;
    sched.schedule_at(kT, [&order, rank]() { order.push_back(rank); });
  }
  sched.run();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

// mac::TxQueue shares the tie-break discipline: FIFO among equal
// priorities, in both prioritized and plain-FIFO modes.
TEST(TxQueueTieBreak, FifoAmongEqualPriorities) {
  mac::TxQueue queue(/*capacity=*/64, /*prioritized=*/true);
  for (std::uint32_t i = 0; i < 8; ++i) {
    mac::Frame frame;
    frame.sequence = i;
    queue.push({frame, /*priority=*/0.25});
  }
  for (std::uint32_t i = 0; i < 8; ++i) {
    auto got = queue.pop();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->frame.sequence, i);
  }
}

TEST(TxQueueTieBreak, PriorityThenFifo) {
  mac::TxQueue queue(/*capacity=*/64, /*prioritized=*/true);
  const double priorities[] = {0.5, 0.1, 0.5, 0.1, 0.3};
  for (std::uint32_t i = 0; i < 5; ++i) {
    mac::Frame frame;
    frame.sequence = i;
    queue.push({frame, priorities[i]});
  }
  // (0.1, seq 1), (0.1, seq 3), (0.3, seq 4), (0.5, seq 0), (0.5, seq 2)
  const std::uint32_t expected[] = {1, 3, 4, 0, 2};
  for (std::uint32_t e : expected) {
    auto got = queue.pop();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->frame.sequence, e);
  }
}

}  // namespace
}  // namespace rrnet::des
