#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "des/rng.hpp"
#include "des/scheduler.hpp"
#include "des/timer.hpp"
#include "util/contracts.hpp"

namespace rrnet::des {
namespace {

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(3.0, [&]() { order.push_back(3); });
  sched.schedule_at(1.0, [&]() { order.push_back(1); });
  sched.schedule_at(2.0, [&]() { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sched.now(), 3.0);
  EXPECT_EQ(sched.executed_count(), 3u);
}

TEST(Scheduler, EqualTimesRunFifo) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.schedule_at(1.0, [&, i]() { order.push_back(i); });
  }
  sched.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Scheduler, RejectsPastAndNullCallbacks) {
  Scheduler sched;
  sched.schedule_at(5.0, []() {});
  sched.run();
  EXPECT_THROW(sched.schedule_at(4.0, []() {}), rrnet::ContractViolation);
  EXPECT_THROW(sched.schedule_in(-1.0, []() {}), rrnet::ContractViolation);
  EXPECT_THROW(sched.schedule_at(6.0, nullptr), rrnet::ContractViolation);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler sched;
  bool ran = false;
  const EventId id = sched.schedule_at(1.0, [&]() { ran = true; });
  EXPECT_TRUE(sched.pending(id));
  EXPECT_TRUE(sched.cancel(id));
  EXPECT_FALSE(sched.pending(id));
  EXPECT_FALSE(sched.cancel(id));  // second cancel is a no-op
  sched.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sched.executed_count(), 0u);
}

TEST(Scheduler, SlotReuseDoesNotResurrectOldIds) {
  Scheduler sched;
  int fired = 0;
  const EventId first = sched.schedule_at(1.0, [&]() { ++fired; });
  sched.cancel(first);
  // New event likely reuses the slot; the old id must stay dead.
  const EventId second = sched.schedule_at(2.0, [&]() { ++fired; });
  EXPECT_FALSE(sched.pending(first));
  EXPECT_TRUE(sched.pending(second));
  EXPECT_FALSE(sched.cancel(first));
  sched.run();
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, ScheduleDuringCallback) {
  Scheduler sched;
  std::vector<std::string> log;
  sched.schedule_at(1.0, [&]() {
    log.push_back("a");
    sched.schedule_in(0.5, [&]() { log.push_back("b"); });
  });
  sched.run();
  EXPECT_EQ(log, (std::vector<std::string>{"a", "b"}));
  EXPECT_DOUBLE_EQ(sched.now(), 1.5);
}

TEST(Scheduler, CancelDuringCallback) {
  Scheduler sched;
  bool second_ran = false;
  EventId second{};
  second = sched.schedule_at(2.0, [&]() { second_ran = true; });
  sched.schedule_at(1.0, [&]() { sched.cancel(second); });
  sched.run();
  EXPECT_FALSE(second_ran);
}

TEST(Scheduler, RunUntilAdvancesClockToHorizon) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_at(1.0, [&]() { ++fired; });
  sched.schedule_at(5.0, [&]() { ++fired; });
  sched.run_until(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sched.now(), 3.0);
  EXPECT_EQ(sched.pending_count(), 1u);
  sched.run_until(10.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sched.now(), 10.0);
}

TEST(Scheduler, RunUntilIncludesBoundary) {
  Scheduler sched;
  bool ran = false;
  sched.schedule_at(3.0, [&]() { ran = true; });
  sched.run_until(3.0);
  EXPECT_TRUE(ran);
}

TEST(Scheduler, StepExecutesExactlyOne) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_at(1.0, [&]() { ++fired; });
  sched.schedule_at(2.0, [&]() { ++fired; });
  EXPECT_TRUE(sched.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sched.step());
  EXPECT_FALSE(sched.step());
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, PendingCountTracksLiveEvents) {
  Scheduler sched;
  const EventId a = sched.schedule_at(1.0, []() {});
  sched.schedule_at(2.0, []() {});
  EXPECT_EQ(sched.pending_count(), 2u);
  sched.cancel(a);
  EXPECT_EQ(sched.pending_count(), 1u);
  sched.run();
  EXPECT_EQ(sched.pending_count(), 0u);
}

TEST(Scheduler, ManyInterleavedScheduleCancels) {
  Scheduler sched;
  int fired = 0;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(
        sched.schedule_at(1.0 + 0.001 * i, [&]() { ++fired; }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) sched.cancel(ids[i]);
  sched.run();
  EXPECT_EQ(fired, 500);
}

TEST(Timer, FiresAfterDelay) {
  Scheduler sched;
  Timer timer(sched);
  bool fired = false;
  timer.start(2.0, [&]() { fired = true; });
  EXPECT_TRUE(timer.active());
  EXPECT_DOUBLE_EQ(timer.expiry(), 2.0);
  sched.run();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(timer.active());
}

TEST(Timer, CancelStopsFiring) {
  Scheduler sched;
  Timer timer(sched);
  bool fired = false;
  timer.start(1.0, [&]() { fired = true; });
  EXPECT_TRUE(timer.cancel());
  EXPECT_FALSE(timer.cancel());
  sched.run();
  EXPECT_FALSE(fired);
}

TEST(Timer, RestartReplacesPending) {
  Scheduler sched;
  Timer timer(sched);
  int which = 0;
  timer.start(1.0, [&]() { which = 1; });
  timer.start(2.0, [&]() { which = 2; });
  sched.run();
  EXPECT_EQ(which, 2);
  EXPECT_DOUBLE_EQ(sched.now(), 2.0);
  EXPECT_EQ(sched.executed_count(), 1u);
}

TEST(Timer, DestructionCancels) {
  Scheduler sched;
  bool fired = false;
  {
    Timer timer(sched);
    timer.start(1.0, [&]() { fired = true; });
  }
  sched.run();
  EXPECT_FALSE(fired);
}

TEST(Timer, MoveTransfersOwnership) {
  Scheduler sched;
  bool fired = false;
  Timer a(sched);
  a.start(1.0, [&]() { fired = true; });
  Timer b = std::move(a);
  EXPECT_TRUE(b.active());
  sched.run();
  EXPECT_TRUE(fired);
}

TEST(Timer, RearmFromInsideCallback) {
  Scheduler sched;
  Timer timer(sched);
  int count = 0;
  std::function<void()> tick = [&]() {
    if (++count < 5) timer.start(1.0, tick);
  };
  timer.start(1.0, tick);
  sched.run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(sched.now(), 5.0);
}

// Property: an arbitrary interleaving of schedules executes in
// nondecreasing time order.
class SchedulerOrderTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerOrderTest, TimesNondecreasing) {
  Scheduler sched;
  std::uint64_t state = GetParam();
  std::vector<Time> executed;
  for (int i = 0; i < 200; ++i) {
    const Time t = static_cast<double>(splitmix64(state) % 1000) / 100.0;
    sched.schedule_at(t, [&, t]() {
      executed.push_back(t);
      // Occasionally chain another event.
      if (executed.size() % 7 == 0) {
        sched.schedule_in(0.01, [&]() { executed.push_back(sched.now()); });
      }
    });
  }
  sched.run();
  for (std::size_t i = 1; i < executed.size(); ++i) {
    EXPECT_LE(executed[i - 1], executed[i] + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerOrderTest,
                         ::testing::Values(1u, 2u, 3u, 42u, 999u));

// Property: among events sharing a timestamp, execution order equals
// insertion order (FIFO) — even under heavy cancel/reschedule churn, which
// recycles slots and generations aggressively. The captures here are sized
// like the channel hot path to exercise InlineCallback's inline storage.
class SchedulerFifoChurnTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SchedulerFifoChurnTest, SameTimestampFifoSurvivesChurn) {
  Scheduler sched;
  std::uint64_t state = GetParam();
  struct Record {
    Time t;
    int serial;
  };
  std::vector<Record> executed;
  struct Pending {
    EventId id;
    bool cancelled = false;
  };
  std::vector<Pending> pending;
  int serial = 0;
  // Events land on a coarse grid of 8 timestamps so ties are common.
  auto schedule_one = [&]() {
    const Time t = 1.0 + static_cast<double>(splitmix64(state) % 8);
    const int s = serial++;
    double pad[4] = {t, 0.0, 0.0, 0.0};  // inflate capture toward the budget
    pending.push_back({sched.schedule_at(t, [&executed, t, s, pad]() {
                         executed.push_back({t + 0.0 * pad[0], s});
                       })});
  };
  for (int round = 0; round < 120; ++round) {
    schedule_one();
    schedule_one();
    schedule_one();
    // Cancel a pseudo-random pending event...
    const std::size_t victim = splitmix64(state) % pending.size();
    if (!pending[victim].cancelled && sched.cancel(pending[victim].id)) {
      pending[victim].cancelled = true;
      // ...and replace it with a later-inserted event (fresh serial).
      schedule_one();
    }
  }
  sched.run();
  std::size_t survivors = 0;
  for (const Pending& p : pending) {
    if (!p.cancelled) ++survivors;
  }
  ASSERT_EQ(executed.size(), survivors);
  for (std::size_t i = 1; i < executed.size(); ++i) {
    const Record& a = executed[i - 1];
    const Record& b = executed[i];
    ASSERT_LE(a.t, b.t);
    if (a.t == b.t) {
      EXPECT_LT(a.serial, b.serial)
          << "FIFO violated at t=" << a.t << " position " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerFifoChurnTest,
                         ::testing::Values(7u, 1234u, 0xDEADBEEFu));

TEST(InlineCallback, MoveTransfersAndEmptiesSource) {
  int hits = 0;
  InlineCallback a([&hits]() { ++hits; });
  EXPECT_TRUE(static_cast<bool>(a));
  InlineCallback b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
  b = nullptr;
  EXPECT_TRUE(b == nullptr);
}

TEST(InlineCallback, DestroysCaptureOnResetAndCancel) {
  auto token = std::make_shared<int>(42);
  {
    InlineCallback cb([token]() {});
    EXPECT_EQ(token.use_count(), 2);
    cb.reset();
    EXPECT_EQ(token.use_count(), 1);
  }
  // Cancelling a scheduled event must release its capture immediately, not
  // at slot-reuse time: protocol code relies on timers dropping references.
  Scheduler sched;
  const EventId id = sched.schedule_at(1.0, [token]() {});
  EXPECT_EQ(token.use_count(), 2);
  EXPECT_TRUE(sched.cancel(id));
  EXPECT_EQ(token.use_count(), 1);
}

TEST(InlineCallback, CapturesUpToCapacityInline) {
  // A capture exactly at the budget must be storable (compile-time check);
  // anything larger is a static_assert at the schedule site.
  struct Payload {
    std::byte bytes[InlineCallback::kCapacity - sizeof(void*)];
  };
  static_assert(sizeof(Payload) + sizeof(void*) <= InlineCallback::kCapacity);
  int hits = 0;
  Payload p{};
  int* hp = &hits;
  InlineCallback cb([p, hp]() {
    (void)p;
    ++*hp;
  });
  cb();
  EXPECT_EQ(hits, 1);
}

}  // namespace
}  // namespace rrnet::des
