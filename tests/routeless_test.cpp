#include <gtest/gtest.h>

#include "proto/routeless.hpp"
#include "test_helpers.hpp"

namespace rrnet::proto {
namespace {

using rrnet::testing::TestNet;

RoutelessProtocol& rr_of(net::Node& node) {
  return static_cast<RoutelessProtocol&>(node.protocol());
}

void attach_rr(TestNet& tn, RoutelessConfig config = {}) {
  for (std::uint32_t i = 0; i < tn.network->size(); ++i) {
    tn.node(i).set_protocol(
        std::make_unique<RoutelessProtocol>(tn.node(i), config));
  }
  tn.network->start_protocols();
}

TEST(Routeless, DiscoveryAndDataDeliveryOnLine) {
  auto tn = rrnet::testing::make_line_net(5);
  attach_rr(tn);
  int deliveries = 0;
  net::PacketRef delivered;
  tn.node(4).set_delivery_handler([&](const net::PacketRef& p) {
    ++deliveries;
    delivered = p;
  });
  tn.node(0).protocol().send_data(4, 128);
  tn.scheduler.run_until(20.0);
  ASSERT_EQ(deliveries, 1);
  EXPECT_EQ(delivered.origin(), 0u);
  EXPECT_EQ(delivered.actual_hops(), 4u);  // shortest path on a line
  EXPECT_EQ(delivered.payload_bytes(), 128u);
}

TEST(Routeless, ActiveTableLearnsHopDistances) {
  auto tn = rrnet::testing::make_line_net(5);
  attach_rr(tn);
  tn.node(0).protocol().send_data(4, 64);
  tn.scheduler.run_until(20.0);
  // Discovery flood from node 0 teaches every node its distance to 0.
  for (std::uint32_t i = 1; i < 5; ++i) {
    ASSERT_TRUE(rr_of(tn.node(i)).knows_target(0)) << i;
    EXPECT_EQ(rr_of(tn.node(i)).hops_to(0), i) << i;
  }
  // The reply (and data) teach the source its distance to the destination.
  ASSERT_TRUE(rr_of(tn.node(0)).knows_target(4));
  EXPECT_EQ(rr_of(tn.node(0)).hops_to(4), 4u);
}

TEST(Routeless, SecondPacketSkipsDiscovery) {
  auto tn = rrnet::testing::make_line_net(4);
  attach_rr(tn);
  int deliveries = 0;
  tn.node(3).set_delivery_handler([&](const net::PacketRef&) { ++deliveries; });
  tn.node(0).protocol().send_data(3, 64);
  tn.scheduler.run_until(20.0);
  const std::uint64_t discoveries_before =
      rr_of(tn.node(0)).rr_stats().discoveries_started;
  tn.node(0).protocol().send_data(3, 64);
  tn.scheduler.run_until(40.0);
  EXPECT_EQ(deliveries, 2);
  EXPECT_EQ(rr_of(tn.node(0)).rr_stats().discoveries_started,
            discoveries_before);
}

TEST(Routeless, NetAcksFlowBackPerHop) {
  auto tn = rrnet::testing::make_line_net(4);
  attach_rr(tn);
  tn.node(0).protocol().send_data(3, 64);
  tn.scheduler.run_until(20.0);
  std::uint64_t acks = 0;
  for (std::uint32_t i = 0; i < 4; ++i) {
    acks += rr_of(tn.node(i)).rr_stats().netacks_sent;
  }
  EXPECT_GE(acks, 2u);  // at least destination + one relay arbiter
}

TEST(Routeless, SurvivesRelayNodeFailureMidFlow) {
  // Two parallel relay rows between endpoints: when the relay that carried
  // the first packets dies, the other row takes over seamlessly.
  std::vector<geom::Vec2> positions{
      {0, 500},             // 0: source
      {200, 440},           // 1: relay row A
      {200, 560},           // 2: relay row B
      {400, 500},           // 3: destination
  };
  TestNet tn(positions, 250.0, geom::Terrain(800, 1000));
  attach_rr(tn);
  int deliveries = 0;
  tn.node(3).set_delivery_handler([&](const net::PacketRef&) { ++deliveries; });
  // Send one packet per second; kill one relay (whichever) at t = 5.5 s.
  for (int i = 0; i < 12; ++i) {
    tn.scheduler.schedule_at(0.5 + i, [&tn]() {
      tn.node(0).protocol().send_data(3, 64);
    });
  }
  tn.scheduler.schedule_at(5.5, [&tn]() {
    tn.network->channel().transceiver(1).turn_off();
  });
  tn.scheduler.run_until(30.0);
  EXPECT_EQ(deliveries, 12);
}

TEST(Routeless, UnreachableTargetDiscoveryFailsCleanly) {
  std::vector<geom::Vec2> positions{{0, 500}, {200, 500}, {3000, 500}};
  RoutelessConfig config;
  config.discovery_timeout = 0.5;
  config.max_discovery_retries = 2;
  TestNet tn(positions, 250.0, geom::Terrain(4000, 1000));
  attach_rr(tn, config);
  tn.node(0).protocol().send_data(2, 64);
  tn.scheduler.run_until(10.0);
  const auto& stats = rr_of(tn.node(0)).rr_stats();
  EXPECT_EQ(stats.discovery_failures, 1u);
  EXPECT_EQ(stats.discovery_retries, 2u);
  EXPECT_EQ(stats.pending_dropped, 1u);
  EXPECT_EQ(stats.data_delivered, 0u);
}

TEST(Routeless, PendingQueueCapacityBounds) {
  std::vector<geom::Vec2> positions{{0, 500}, {3000, 500}};
  RoutelessConfig config;
  config.pending_capacity = 4;
  config.discovery_timeout = 5.0;
  TestNet tn(positions, 250.0, geom::Terrain(4000, 1000));
  attach_rr(tn, config);
  for (int i = 0; i < 10; ++i) {
    tn.node(0).protocol().send_data(1, 64);
  }
  tn.scheduler.run_until(1.0);
  EXPECT_GE(rr_of(tn.node(0)).rr_stats().pending_dropped, 6u);
}

TEST(Routeless, BidirectionalTrafficBothDirectionsDeliver) {
  auto tn = rrnet::testing::make_line_net(4);
  attach_rr(tn);
  int fwd = 0, rev = 0;
  tn.node(3).set_delivery_handler([&](const net::PacketRef&) { ++fwd; });
  tn.node(0).set_delivery_handler([&](const net::PacketRef&) { ++rev; });
  tn.node(0).protocol().send_data(3, 64);
  tn.scheduler.schedule_at(5.0, [&tn]() {
    tn.node(3).protocol().send_data(0, 64);
  });
  tn.scheduler.run_until(20.0);
  EXPECT_EQ(fwd, 1);
  EXPECT_EQ(rev, 1);
}

TEST(Routeless, DataPacketsUseGradientElections) {
  auto tn = rrnet::testing::make_line_net(5);
  attach_rr(tn);
  tn.node(0).protocol().send_data(4, 64);
  tn.scheduler.run_until(20.0);
  // A middle node must have both armed and won at least one forwarding
  // election (it relayed either the reply or the data packet).
  std::uint64_t total_won = 0;
  for (std::uint32_t i = 1; i < 4; ++i) {
    total_won += rr_of(tn.node(i)).election_stats().won;
  }
  EXPECT_GE(total_won, 2u);
}

TEST(Routeless, ArbiterRetransmitsWhenRelayUnheard) {
  // Destination broadcasts a reply that nobody can relay (no other nodes in
  // range of the source side): the arbiter retries then gives up.
  std::vector<geom::Vec2> positions{{0, 500}, {200, 500}};
  RoutelessConfig config;
  config.arbiter.relay_timeout = 0.02;
  config.arbiter.max_retransmits = 2;
  TestNet tn(positions, 250.0, geom::Terrain(1000, 1000));
  attach_rr(tn, config);
  int deliveries = 0;
  tn.node(1).set_delivery_handler([&](const net::PacketRef&) { ++deliveries; });
  tn.node(0).protocol().send_data(1, 64);
  tn.scheduler.run_until(10.0);
  // Adjacent nodes: reply goes straight to the source, data straight to the
  // destination — delivered despite there being no intermediate relays.
  EXPECT_EQ(deliveries, 1);
  // Source's data broadcast was never "relayed" by anyone, but the
  // destination's NetAck stops the arbiter: no give-up storm. The reply
  // behaves symmetrically.
  EXPECT_LE(rr_of(tn.node(0)).arbiter_stats().retransmits, 3u);
}

TEST(Routeless, TableRefreshesWithNewerSequences) {
  auto tn = rrnet::testing::make_line_net(3);
  attach_rr(tn);
  // First flow teaches node 2 that node 0 is 2 hops away.
  tn.node(0).protocol().send_data(2, 16);
  tn.scheduler.run_until(20.0);
  ASSERT_TRUE(rr_of(tn.node(2)).knows_target(0));
  EXPECT_EQ(rr_of(tn.node(2)).hops_to(0), 2u);
  // Later packets keep the entry fresh rather than stale-min.
  tn.node(0).protocol().send_data(2, 16);
  tn.scheduler.run_until(40.0);
  EXPECT_EQ(rr_of(tn.node(2)).hops_to(0), 2u);
}

TEST(Routeless, DeliversExactlyOncePerDataPacket) {
  auto tn = rrnet::testing::make_line_net(4);
  attach_rr(tn);
  int deliveries = 0;
  tn.node(3).set_delivery_handler([&](const net::PacketRef&) { ++deliveries; });
  for (int i = 0; i < 5; ++i) {
    tn.scheduler.schedule_at(0.5 * i + 0.1, [&tn]() {
      tn.node(0).protocol().send_data(3, 32);
    });
  }
  tn.scheduler.run_until(30.0);
  EXPECT_EQ(deliveries, 5);
}

TEST(Routeless, SsafDiscoveryDelivers) {
  auto tn = rrnet::testing::make_line_net(5);
  RoutelessConfig config;
  config.ssaf_discovery = true;
  attach_rr(tn, config);
  int deliveries = 0;
  tn.node(4).set_delivery_handler([&](const net::PacketRef&) { ++deliveries; });
  tn.node(0).protocol().send_data(4, 64);
  tn.scheduler.run_until(20.0);
  EXPECT_EQ(deliveries, 1);
}

TEST(Routeless, SsafDiscoveryUsesFewerRelaysOnDenseNet) {
  std::vector<geom::Vec2> positions;
  for (int r = 0; r < 5; ++r) {
    for (int c = 0; c < 5; ++c) {
      positions.push_back({100.0 + 120.0 * c, 100.0 + 120.0 * r});
    }
  }
  auto discovery_relays = [&](bool ssaf) {
    TestNet tn(positions, 250.0, geom::Terrain(800, 800));
    RoutelessConfig config;
    config.ssaf_discovery = ssaf;
    attach_rr(tn, config);
    int deliveries = 0;
    tn.node(24).set_delivery_handler([&](const net::PacketRef&) { ++deliveries; });
    tn.node(0).protocol().send_data(24, 64);
    tn.scheduler.run_until(20.0);
    EXPECT_EQ(deliveries, 1) << "ssaf=" << ssaf;
    std::uint64_t relays = 0;
    for (std::uint32_t i = 0; i < tn.network->size(); ++i) {
      relays += rr_of(tn.node(i)).rr_stats().discovery_relays;
    }
    return relays;
  };
  EXPECT_LT(discovery_relays(true), discovery_relays(false));
}

}  // namespace
}  // namespace rrnet::proto
