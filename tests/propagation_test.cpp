#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "phy/propagation.hpp"
#include "phy/units.hpp"

namespace rrnet::phy {
namespace {

TEST(Units, DbmMwRoundtrip) {
  EXPECT_DOUBLE_EQ(dbm_to_mw(0.0), 1.0);
  EXPECT_DOUBLE_EQ(dbm_to_mw(10.0), 10.0);
  EXPECT_NEAR(mw_to_dbm(dbm_to_mw(-37.5)), -37.5, 1e-9);
  EXPECT_NEAR(db_to_ratio(ratio_to_db(123.0)), 123.0, 1e-9);
}

TEST(Units, ZeroPowerClampsInsteadOfInf) {
  EXPECT_GT(mw_to_dbm(0.0), -400.0);
  EXPECT_LT(mw_to_dbm(0.0), -200.0);
}

TEST(FreeSpace, MatchesFriisFormula) {
  const double f = 914e6;
  FreeSpace model(f);
  des::Rng rng(1);
  const double lambda = 299792458.0 / f;
  const double d = 250.0;
  const double expected =
      10.0 + 20.0 * std::log10(lambda / (4.0 * M_PI * d));
  EXPECT_NEAR(model.rx_power_dbm(10.0, d, rng), expected, 1e-9);
}

TEST(FreeSpace, InverseSquareIn20DbPerDecade) {
  FreeSpace model;
  const double p100 = model.mean_rx_power_dbm(0.0, 100.0);
  const double p1000 = model.mean_rx_power_dbm(0.0, 1000.0);
  EXPECT_NEAR(p100 - p1000, 20.0, 1e-9);
}

TEST(FreeSpace, ClampsTinyDistances) {
  FreeSpace model;
  EXPECT_DOUBLE_EQ(model.mean_rx_power_dbm(0.0, 0.0),
                   model.mean_rx_power_dbm(0.0, kMinDistanceM));
}

TEST(TwoRay, FreeSpaceBelowCrossover) {
  TwoRayGround model(914e6, 1.5, 1.5);
  FreeSpace fs(914e6);
  const double d = model.crossover_distance_m() * 0.5;
  EXPECT_DOUBLE_EQ(model.mean_rx_power_dbm(7.0, d),
                   fs.mean_rx_power_dbm(7.0, d));
}

TEST(TwoRay, FourthPowerBeyondCrossover) {
  TwoRayGround model(914e6, 1.5, 1.5);
  const double d = model.crossover_distance_m() * 2.0;
  const double p1 = model.mean_rx_power_dbm(0.0, d);
  const double p2 = model.mean_rx_power_dbm(0.0, 2.0 * d);
  EXPECT_NEAR(p1 - p2, 40.0 * std::log10(2.0), 1e-9);
}

TEST(LogDistance, ExponentControlsSlope) {
  LogDistance model(3.5, 1.0);
  const double p10 = model.mean_rx_power_dbm(0.0, 10.0);
  const double p100 = model.mean_rx_power_dbm(0.0, 100.0);
  EXPECT_NEAR(p10 - p100, 35.0, 1e-9);
}

TEST(LogDistance, FlatBelowReference) {
  LogDistance model(3.0, 10.0);
  EXPECT_DOUBLE_EQ(model.mean_rx_power_dbm(0.0, 2.0),
                   model.mean_rx_power_dbm(0.0, 10.0));
}

TEST(Rayleigh, MeanPowerTracksLargeScale) {
  RayleighFading model(std::make_unique<FreeSpace>());
  FreeSpace fs;
  des::Rng rng(5);
  const double d = 200.0;
  double sum_mw = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    sum_mw += dbm_to_mw(model.rx_power_dbm(0.0, d, rng));
  }
  const double mean_dbm = mw_to_dbm(sum_mw / kN);
  EXPECT_NEAR(mean_dbm, fs.mean_rx_power_dbm(0.0, d), 0.3);
}

TEST(Rayleigh, SamplesActuallyFluctuate) {
  RayleighFading model(std::make_unique<FreeSpace>());
  des::Rng rng(6);
  double lo = 1e9, hi = -1e9;
  for (int i = 0; i < 100; ++i) {
    const double p = model.rx_power_dbm(0.0, 100.0, rng);
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  EXPECT_GT(hi - lo, 10.0);  // deep fades happen
}

TEST(Shadowing, SigmaMatches) {
  LogNormalShadowing model(std::make_unique<FreeSpace>(), 6.0);
  FreeSpace fs;
  des::Rng rng(7);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 20000;
  const double base = fs.mean_rx_power_dbm(0.0, 150.0);
  for (int i = 0; i < kN; ++i) {
    const double dev = model.rx_power_dbm(0.0, 150.0, rng) - base;
    sum += dev;
    sq += dev * dev;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.15);
  EXPECT_NEAR(std::sqrt(sq / kN), 6.0, 0.15);
}

TEST(Range, RangeForThresholdInverts) {
  FreeSpace model;
  const double tx = 15.0;
  const double at250 = model.mean_rx_power_dbm(tx, 250.0);
  EXPECT_NEAR(range_for_threshold(model, tx, at250), 250.0, 0.01);
}

TEST(Range, UnreachableThresholdGivesZero) {
  FreeSpace model;
  EXPECT_DOUBLE_EQ(range_for_threshold(model, -100.0, 0.0), 0.0);
}

TEST(Range, TxPowerForRangeRoundTrips) {
  FreeSpace model;
  const double tx = tx_power_for_range(model, 250.0, -64.0);
  EXPECT_NEAR(model.mean_rx_power_dbm(tx, 250.0), -64.0, 1e-6);
  EXPECT_NEAR(range_for_threshold(model, tx, -64.0), 250.0, 0.1);
}

TEST(Range, TwoRayCalibrationToo) {
  TwoRayGround model;
  const double tx = tx_power_for_range(model, 250.0, -64.0);
  EXPECT_NEAR(range_for_threshold(model, tx, -64.0), 250.0, 0.1);
}

// Property: mean received power is nonincreasing with distance for every
// large-scale model.
class MonotoneModelTest
    : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<PropagationModel> make_model() const {
    switch (GetParam()) {
      case 0: return std::make_unique<FreeSpace>();
      case 1: return std::make_unique<TwoRayGround>();
      case 2: return std::make_unique<LogDistance>(2.7);
      case 3:
        return std::make_unique<RayleighFading>(std::make_unique<FreeSpace>());
      default:
        return std::make_unique<LogNormalShadowing>(
            std::make_unique<FreeSpace>(), 4.0);
    }
  }
};

TEST_P(MonotoneModelTest, MeanPowerNonincreasing) {
  const auto model = make_model();
  double prev = model->mean_rx_power_dbm(10.0, 1.0);
  for (double d = 2.0; d < 3000.0; d *= 1.3) {
    const double p = model->mean_rx_power_dbm(10.0, d);
    EXPECT_LE(p, prev + 1e-9) << "at distance " << d;
    prev = p;
  }
}

TEST_P(MonotoneModelTest, TxPowerShiftsLinearly) {
  const auto model = make_model();
  const double base = model->mean_rx_power_dbm(0.0, 120.0);
  EXPECT_NEAR(model->mean_rx_power_dbm(17.0, 120.0), base + 17.0, 1e-9);
}

// The linear (mW) entry points are the channel's hot path; they must agree
// with the dBm forms they bypass, up to FP rounding of the conversion.
TEST_P(MonotoneModelTest, LinearEntryPointsMatchDbm) {
  const auto model = make_model();
  const double tx_dbm = 15.0;
  const double tx_mw = dbm_to_mw(tx_dbm);
  for (double d = 1.0; d < 3000.0; d *= 2.7) {
    const double via_dbm = dbm_to_mw(model->mean_rx_power_dbm(tx_dbm, d));
    const double direct = model->mean_rx_power_mw(tx_mw, d);
    EXPECT_NEAR(direct, via_dbm, 1e-9 * via_dbm) << "at distance " << d;
  }
  // Stochastic draws: same seed must give matching powers through either
  // entry point (both consume exactly one draw per call).
  des::Rng rng_dbm(7);
  des::Rng rng_mw(7);
  for (int i = 0; i < 50; ++i) {
    const double via_dbm =
        dbm_to_mw(model->rx_power_dbm(tx_dbm, 150.0, rng_dbm));
    const double direct = model->rx_power_mw(tx_mw, 150.0, rng_mw);
    EXPECT_NEAR(direct, via_dbm, 1e-9 * via_dbm) << "draw " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, MonotoneModelTest,
                         ::testing::Values(0, 1, 2, 3, 4));

}  // namespace
}  // namespace rrnet::phy
