#include <gtest/gtest.h>

#include "proto/dsdv.hpp"
#include "sim/runner.hpp"
#include "test_helpers.hpp"
#include "util/contracts.hpp"

namespace rrnet::proto {
namespace {

using rrnet::testing::TestNet;

DsdvProtocol& dsdv_of(net::Node& node) {
  return static_cast<DsdvProtocol&>(node.protocol());
}

void attach_dsdv(TestNet& tn, DsdvConfig config = {}) {
  for (std::uint32_t i = 0; i < tn.network->size(); ++i) {
    tn.node(i).set_protocol(
        std::make_unique<DsdvProtocol>(tn.node(i), config));
  }
  tn.network->start_protocols();
}

TEST(Dsdv, ConvergesToAllPairsRoutesOnLine) {
  auto tn = rrnet::testing::make_line_net(5);
  DsdvConfig config;
  config.update_interval = 1.0;
  attach_dsdv(tn, config);
  // A few update rounds: distance vectors propagate one hop per round.
  tn.scheduler.run_until(8.0);
  for (std::uint32_t i = 0; i < 5; ++i) {
    for (std::uint32_t j = 0; j < 5; ++j) {
      if (i == j) continue;
      ASSERT_TRUE(dsdv_of(tn.node(i)).has_route(j)) << i << "->" << j;
      const std::uint32_t expected_metric = i > j ? i - j : j - i;
      EXPECT_EQ(dsdv_of(tn.node(i)).route_metric(j), expected_metric)
          << i << "->" << j;
    }
  }
  // Next hops point along the line.
  EXPECT_EQ(dsdv_of(tn.node(0)).next_hop(4), 1u);
  EXPECT_EQ(dsdv_of(tn.node(4)).next_hop(0), 3u);
}

TEST(Dsdv, DeliversDataAfterConvergence) {
  auto tn = rrnet::testing::make_line_net(5);
  DsdvConfig config;
  config.update_interval = 1.0;
  attach_dsdv(tn, config);
  int deliveries = 0;
  net::PacketRef delivered;
  tn.node(4).set_delivery_handler([&](const net::PacketRef& p) {
    ++deliveries;
    delivered = p;
  });
  tn.scheduler.schedule_at(8.0, [&tn]() {
    tn.node(0).protocol().send_data(4, 128);
  });
  tn.scheduler.run_until(12.0);
  ASSERT_EQ(deliveries, 1);
  EXPECT_EQ(delivered.actual_hops(), 4u);
}

TEST(Dsdv, BuffersDataUntilRoutesArrive) {
  auto tn = rrnet::testing::make_line_net(4);
  DsdvConfig config;
  config.update_interval = 1.0;
  attach_dsdv(tn, config);
  int deliveries = 0;
  tn.node(3).set_delivery_handler([&](const net::PacketRef&) { ++deliveries; });
  // Send immediately, before any update has been exchanged.
  tn.node(0).protocol().send_data(3, 64);
  tn.scheduler.run_until(15.0);
  EXPECT_EQ(deliveries, 1);
}

TEST(Dsdv, BrokenLinkAdvertisedWithOddSeqno) {
  auto tn = rrnet::testing::make_line_net(4);
  DsdvConfig config;
  config.update_interval = 1.0;
  attach_dsdv(tn, config);
  tn.scheduler.run_until(8.0);
  ASSERT_TRUE(dsdv_of(tn.node(0)).has_route(3));
  // Kill node 1; node 0's unicast to it fails, breaking every route via 1.
  tn.network->channel().transceiver(1).turn_off();
  tn.scheduler.schedule_at(8.5, [&tn]() {
    tn.node(0).protocol().send_data(3, 64);
  });
  tn.scheduler.run_until(12.0);
  EXPECT_GE(dsdv_of(tn.node(0)).dsdv_stats().link_breaks, 1u);
  EXPECT_FALSE(dsdv_of(tn.node(0)).has_route(3));
}

TEST(Dsdv, StaleRoutesExpire) {
  auto tn = rrnet::testing::make_line_net(3);
  DsdvConfig config;
  config.update_interval = 1.0;
  config.route_expiry = 3.0;
  attach_dsdv(tn, config);
  tn.scheduler.run_until(6.0);
  ASSERT_TRUE(dsdv_of(tn.node(0)).has_route(2));
  // Silence node 1 and 2: no more refreshes reach node 0.
  tn.network->channel().transceiver(1).turn_off();
  tn.network->channel().transceiver(2).turn_off();
  tn.scheduler.run_until(16.0);
  EXPECT_FALSE(dsdv_of(tn.node(0)).has_route(2));
}

TEST(Dsdv, ControlOverheadFlowsEvenWithoutTraffic) {
  auto tn = rrnet::testing::make_line_net(4);
  DsdvConfig config;
  config.update_interval = 1.0;
  attach_dsdv(tn, config);
  tn.scheduler.run_until(10.0);
  // ~10 updates per node, zero data packets: the proactive cost floor.
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_GE(dsdv_of(tn.node(i)).dsdv_stats().updates_sent, 8u) << i;
    EXPECT_EQ(dsdv_of(tn.node(i)).dsdv_stats().data_originated, 0u);
  }
  EXPECT_GT(tn.network->total_mac_tx(), 30u);
}

TEST(Dsdv, TriggeredUpdatesAreDamped) {
  auto tn = rrnet::testing::make_line_net(4);
  DsdvConfig config;
  config.update_interval = 5.0;
  config.triggered_min_gap = 0.5;
  attach_dsdv(tn, config);
  tn.scheduler.run_until(20.0);
  for (std::uint32_t i = 0; i < 4; ++i) {
    const auto& st = dsdv_of(tn.node(i)).dsdv_stats();
    // Updates are bounded: periodic (~4) + damped triggered ones.
    EXPECT_LE(st.updates_sent, 20u) << i;
  }
}

TEST(Dsdv, PendingCapacityBounds) {
  std::vector<geom::Vec2> positions{{0, 500}, {3000, 500}};
  DsdvConfig config;
  config.pending_capacity = 3;
  TestNet tn(positions, 250.0, geom::Terrain(4000, 1000));
  attach_dsdv(tn, config);
  for (int i = 0; i < 8; ++i) {
    tn.node(0).protocol().send_data(1, 64);
  }
  tn.scheduler.run_until(1.0);
  EXPECT_GE(dsdv_of(tn.node(0)).dsdv_stats().pending_dropped, 5u);
}

TEST(Dsdv, RejectsBadConfig) {
  auto tn = rrnet::testing::make_line_net(2);
  DsdvConfig bad;
  bad.update_interval = 0.0;
  EXPECT_THROW(DsdvProtocol(tn.node(0), bad), rrnet::ContractViolation);
}

TEST(DsdvScenario, WorksThroughTheScenarioHarness) {
  sim::ScenarioConfig config;
  config.seed = 5;
  config.nodes = 40;
  config.width_m = config.height_m = 700.0;
  config.protocol = sim::ProtocolKind::Dsdv;
  config.pairs = 2;
  config.cbr_interval = 1.0;
  config.traffic_start = 8.0;  // let routing converge first
  config.traffic_stop = 18.0;
  config.sim_end = 24.0;
  const sim::ScenarioResult r = sim::run_scenario(config);
  EXPECT_GT(r.sent, 0u);
  EXPECT_GT(r.delivery_ratio, 0.9);
  // Proactive floor: far more MAC packets than data would explain.
  EXPECT_GT(r.mac_packets, r.delivered * 4);
}

TEST(DsdvScenario, ZeroDiscoveryLatencyOnceConverged) {
  // After convergence, DSDV's first-packet delay is pure forwarding (no
  // discovery round-trip) — compare against AODV's cold start.
  sim::ScenarioConfig config;
  config.seed = 6;
  config.nodes = 40;
  config.width_m = config.height_m = 700.0;
  config.pairs = 1;
  config.cbr_interval = 2.0;
  config.traffic_start = 10.0;
  config.traffic_stop = 16.0;
  config.sim_end = 22.0;
  config.protocol = sim::ProtocolKind::Dsdv;
  const sim::ScenarioResult dsdv = sim::run_scenario(config);
  config.protocol = sim::ProtocolKind::Aodv;
  config.aodv.discovery = RreqFlooding::Dedup;
  const sim::ScenarioResult aodv = sim::run_scenario(config);
  ASSERT_GT(dsdv.delivered, 0u);
  ASSERT_GT(aodv.delivered, 0u);
  EXPECT_LT(dsdv.mean_delay_s, 0.05);
}

}  // namespace
}  // namespace rrnet::proto
