#include <gtest/gtest.h>

#include "proto/gradient.hpp"
#include "proto/routeless.hpp"
#include "test_helpers.hpp"

namespace rrnet::proto {
namespace {

using rrnet::testing::TestNet;

GradientProtocol& gr_of(net::Node& node) {
  return static_cast<GradientProtocol&>(node.protocol());
}

void attach_gradient(TestNet& tn, GradientConfig config = {}) {
  for (std::uint32_t i = 0; i < tn.network->size(); ++i) {
    tn.node(i).set_protocol(
        std::make_unique<GradientProtocol>(tn.node(i), config));
  }
  tn.network->start_protocols();
}

TEST(Gradient, DeliversOnLineTopology) {
  auto tn = rrnet::testing::make_line_net(5);
  attach_gradient(tn);
  int deliveries = 0;
  net::PacketRef delivered;
  tn.node(4).set_delivery_handler([&](const net::PacketRef& p) {
    ++deliveries;
    delivered = p;
  });
  tn.node(0).protocol().send_data(4, 64);
  tn.scheduler.run_until(30.0);
  ASSERT_EQ(deliveries, 1);
  EXPECT_EQ(delivered.actual_hops(), 4u);
}

TEST(Gradient, OnlyDownhillNodesForward) {
  auto tn = rrnet::testing::make_line_net(5);
  attach_gradient(tn);
  tn.node(0).protocol().send_data(4, 64);
  tn.scheduler.run_until(30.0);
  // Node 0's neighbors uphill of the target never relay data; on a line
  // every relay is on the single shortest path, so not_on_gradient stays
  // small while relays ~ path length.
  std::uint64_t relays = 0;
  for (std::uint32_t i = 0; i < 5; ++i) {
    relays += gr_of(tn.node(i)).gradient_stats().relays;
  }
  EXPECT_GE(relays, 3u);
}

TEST(Gradient, MoreDataRelaysThanRoutelessOnDenseNet) {
  // Dense 6x3 grid: many nodes sit strictly downhill of each transmitter,
  // and gradient routing lets all of them forward the same packet — the
  // redundant-retransmission congestion §4.4 describes. Routeless Routing's
  // leader election keeps relays near one per hop. Compare *data relays*
  // (the redundant traffic in question), not control chatter.
  std::vector<geom::Vec2> positions;
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 6; ++c) {
      positions.push_back({60.0 + 110.0 * c, 100.0 + 110.0 * r});
    }
  }
  const std::uint32_t target = 17;  // far corner
  auto drive = [&](auto& tn) {
    int deliveries = 0;
    tn.node(target).set_delivery_handler(
        [&](const net::PacketRef&) { ++deliveries; });
    for (int i = 0; i < 5; ++i) {
      tn.scheduler.schedule_at(0.5 * i + 0.1, [&tn, target]() {
        tn.node(0).protocol().send_data(target, 64);
      });
    }
    tn.scheduler.run_until(30.0);
    EXPECT_GE(deliveries, 4);
  };
  std::uint64_t gradient_relays = 0;
  {
    TestNet tn(positions, 250.0, geom::Terrain(800, 500));
    attach_gradient(tn);
    drive(tn);
    for (std::uint32_t i = 0; i < tn.network->size(); ++i) {
      gradient_relays += gr_of(tn.node(i)).gradient_stats().relays;
    }
  }
  std::uint64_t rr_relays = 0;
  {
    TestNet tn(positions, 250.0, geom::Terrain(800, 500));
    for (std::uint32_t i = 0; i < tn.network->size(); ++i) {
      tn.node(i).set_protocol(
          std::make_unique<RoutelessProtocol>(tn.node(i)));
    }
    tn.network->start_protocols();
    drive(tn);
    for (std::uint32_t i = 0; i < tn.network->size(); ++i) {
      rr_relays += static_cast<RoutelessProtocol&>(tn.node(i).protocol())
                       .rr_stats()
                       .relays;
    }
  }
  EXPECT_GT(gradient_relays, rr_relays);
}

TEST(Gradient, UnreachableTargetDropsPending) {
  std::vector<geom::Vec2> positions{{0, 500}, {3000, 500}};
  GradientConfig config;
  config.discovery_timeout = 0.5;
  config.max_discovery_retries = 1;
  TestNet tn(positions, 250.0, geom::Terrain(4000, 1000));
  attach_gradient(tn, config);
  tn.node(0).protocol().send_data(1, 64);
  tn.scheduler.run_until(10.0);
  EXPECT_GE(gr_of(tn.node(0)).gradient_stats().pending_dropped, 1u);
}

TEST(Gradient, DeliversOncePerPacket) {
  auto tn = rrnet::testing::make_line_net(4);
  attach_gradient(tn);
  int deliveries = 0;
  tn.node(3).set_delivery_handler([&](const net::PacketRef&) { ++deliveries; });
  for (int i = 0; i < 4; ++i) {
    tn.scheduler.schedule_at(0.6 * i + 0.1, [&tn]() {
      tn.node(0).protocol().send_data(3, 32);
    });
  }
  tn.scheduler.run_until(30.0);
  EXPECT_EQ(deliveries, 4);
}

}  // namespace
}  // namespace rrnet::proto
