#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "util/contracts.hpp"

#include "net/duplicate_cache.hpp"
#include "net/packet_buffer.hpp"

namespace rrnet::net {
namespace {

PacketRef make_simple(PacketType type, std::uint32_t origin,
                      std::uint32_t sequence) {
  PacketInit init;
  init.type = type;
  init.origin = origin;
  init.sequence = sequence;
  return make_packet(std::move(init));
}

TEST(PacketBuffer, HeaderSizesPerType) {
  PacketInit init;
  init.type = PacketType::Data;
  init.payload_bytes = 512;
  PacketRef p = make_packet(std::move(init));
  EXPECT_EQ(p.header_bytes(), 20u);
  EXPECT_EQ(p.size_bytes(), 532u);
  EXPECT_EQ(make_simple(PacketType::PathDiscovery, 0, 0).header_bytes(), 24u);
  EXPECT_EQ(make_simple(PacketType::NetAck, 0, 0).header_bytes(), 16u);
  EXPECT_EQ(make_simple(PacketType::RouteError, 0, 0).header_bytes(), 12u);
}

TEST(PacketBuffer, FloodKeyDistinguishesOriginSequenceType) {
  const PacketRef a = make_simple(PacketType::Data, 1, 5);
  const PacketRef b = a;
  EXPECT_EQ(a.flood_key(), b.flood_key());
  EXPECT_NE(a.flood_key(), make_simple(PacketType::Data, 1, 6).flood_key());
  EXPECT_NE(a.flood_key(), make_simple(PacketType::Data, 2, 5).flood_key());
  EXPECT_NE(a.flood_key(),
            make_simple(PacketType::PathReply, 1, 5).flood_key());
  EXPECT_EQ(a.flood_key(), flood_key_of(1, 5, PacketType::Data));
}

TEST(PacketBuffer, FloodKeyStableAcrossRelayMutations) {
  PacketRef p = make_simple(PacketType::PathReply, 9, 4);
  const auto key = p.flood_key();
  p.hop().actual_hops = 7;
  p.hop().expected_hops = 3;
  p.hop().ttl = 1;
  p.hop().prev_hop = 12;
  EXPECT_EQ(p.flood_key(), key);
}

TEST(PacketBuffer, FloodKeysUniqueOverManyPackets) {
  std::set<std::uint64_t> keys;
  for (std::uint32_t origin = 0; origin < 50; ++origin) {
    for (std::uint32_t seq = 0; seq < 50; ++seq) {
      keys.insert(flood_key_of(origin, seq, PacketType::Data));
    }
  }
  EXPECT_EQ(keys.size(), 2500u);
}

TEST(PacketBuffer, RefCountTracksCopies) {
  PacketRef a = make_simple(PacketType::Data, 1, 1);
  EXPECT_EQ(a.buffer().ref_count(), 1u);
  {
    PacketRef b = a;
    EXPECT_EQ(a.buffer().ref_count(), 2u);
    PacketRef c = std::move(b);  // move transfers, no bump
    EXPECT_EQ(a.buffer().ref_count(), 2u);
    EXPECT_FALSE(b);  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(c);
  }
  EXPECT_EQ(a.buffer().ref_count(), 1u);
  PacketRef d;
  EXPECT_FALSE(d);
  d = a;
  EXPECT_EQ(a.buffer().ref_count(), 2u);
  d.reset();
  EXPECT_FALSE(d);
  EXPECT_EQ(a.buffer().ref_count(), 1u);
}

TEST(PacketBuffer, HopStateIsPerRefNotShared) {
  PacketRef a = make_simple(PacketType::Data, 3, 7);
  a.hop().ttl = 10;
  a.hop().actual_hops = 2;
  PacketRef b = a;  // same buffer, independent trailer
  b.hop().ttl -= 1;
  b.hop().actual_hops += 1;
  b.hop().prev_hop = 42;
  EXPECT_EQ(a.ttl(), 10);
  EXPECT_EQ(a.actual_hops(), 2);
  EXPECT_EQ(a.prev_hop(), kNoNode);
  EXPECT_EQ(b.ttl(), 9);
  EXPECT_EQ(b.actual_hops(), 3);
  EXPECT_EQ(b.prev_hop(), 42u);
  EXPECT_EQ(&a.buffer(), &b.buffer());
}

TEST(PacketBuffer, ToInitRoundTripsHeaderAndTrailer) {
  PacketInit init;
  init.type = PacketType::RouteRequest;
  init.origin = 11;
  init.target = 22;
  init.sequence = 33;
  init.uid = 44;
  init.ttl = 9;
  init.payload_bytes = 100;
  init.created_at = 1.5;
  init.rreq_id = 55;
  init.origin_seqno = 66;
  init.target_seqno = 77;
  PacketRef p = make_packet(std::move(init));
  p.hop().actual_hops = 4;
  p.hop().prev_hop = 19;

  PacketInit again = p.to_init();
  EXPECT_EQ(again.type, PacketType::RouteRequest);
  EXPECT_EQ(again.origin, 11u);
  EXPECT_EQ(again.target, 22u);
  EXPECT_EQ(again.sequence, 33u);
  EXPECT_EQ(again.uid, 44u);
  EXPECT_EQ(again.ttl, 9);
  EXPECT_EQ(again.actual_hops, 4);
  EXPECT_EQ(again.prev_hop, 19u);
  EXPECT_EQ(again.payload_bytes, 100u);
  EXPECT_EQ(again.created_at, 1.5);
  EXPECT_EQ(again.rreq_id, 55u);
  EXPECT_EQ(again.origin_seqno, 66u);
  EXPECT_EQ(again.target_seqno, 77u);

  PacketRef rebuilt = make_packet(std::move(again));
  EXPECT_EQ(rebuilt.flood_key(), p.flood_key());
  EXPECT_NE(&rebuilt.buffer(), &p.buffer());  // a fresh allocation
}

/// Minimal concrete extension for the typed-slot tests.
class TestRouteExtension final : public PacketExtension {
 public:
  static constexpr ExtensionKind kKind = ExtensionKind::SourceRoute;
  explicit TestRouteExtension(std::vector<std::uint32_t> hops_in)
      : PacketExtension(kKind), hops(std::move(hops_in)) {}
  [[nodiscard]] ExtensionRef clone() const override {
    return make_extension<TestRouteExtension>(hops);
  }
  const std::vector<std::uint32_t> hops;
};

class TestTableExtension final : public PacketExtension {
 public:
  static constexpr ExtensionKind kKind = ExtensionKind::RouteTable;
  TestTableExtension() : PacketExtension(kKind) {}
  [[nodiscard]] ExtensionRef clone() const override {
    return make_extension<TestTableExtension>();
  }
};

TEST(PacketBuffer, TypedExtensionAccess) {
  PacketInit init;
  init.type = PacketType::RouteRequest;
  init.extension =
      make_extension<TestRouteExtension>(std::vector<std::uint32_t>{1, 2, 3});
  PacketRef p = make_packet(std::move(init));
  ASSERT_TRUE(p.has_extension());
  const auto* route = p.extension_as<TestRouteExtension>();
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->hops.size(), 3u);
  // Kind-checked: asking for the wrong concrete type yields nullptr.
  EXPECT_EQ(p.extension_as<TestTableExtension>(), nullptr);
}

TEST(PacketBuffer, ExtensionSharedAcrossRefCopies) {
  PacketInit init;
  init.extension =
      make_extension<TestRouteExtension>(std::vector<std::uint32_t>{5});
  PacketRef a = make_packet(std::move(init));
  PacketRef b = a;
  EXPECT_EQ(a.extension_as<TestRouteExtension>(),
            b.extension_as<TestRouteExtension>());
  // to_init copies the extension handle, not the extension.
  PacketRef c = make_packet(a.to_init());
  EXPECT_EQ(c.extension_as<TestRouteExtension>(),
            a.extension_as<TestRouteExtension>());
}

TEST(PacketBuffer, EmptyRefIsFalseAndResettable) {
  PacketRef p;
  EXPECT_FALSE(p);
  p = make_simple(PacketType::Data, 1, 2);
  EXPECT_TRUE(p);
  p.reset();
  EXPECT_FALSE(p);
  EXPECT_EQ(p.ttl(), HopState{}.ttl);  // trailer cleared too
}

TEST(PacketBuffer, DescribeMentionsTypeAndIds) {
  PacketInit init;
  init.type = PacketType::PathDiscovery;
  init.origin = 3;
  init.target = 8;
  const std::string s = make_packet(std::move(init)).describe();
  EXPECT_NE(s.find("PathDiscovery"), std::string::npos);
  EXPECT_NE(s.find("origin=3"), std::string::npos);
  EXPECT_NE(s.find("target=8"), std::string::npos);
}

TEST(PacketBuffer, TypeNames) {
  EXPECT_STREQ(to_string(PacketType::Data), "Data");
  EXPECT_STREQ(to_string(PacketType::RouteRequest), "RouteRequest");
  EXPECT_STREQ(to_string(PacketType::NetAck), "NetAck");
}

TEST(DuplicateCache, FirstObservationIsNew) {
  DuplicateCache cache(16);
  EXPECT_TRUE(cache.observe(1));
  EXPECT_FALSE(cache.observe(1));
  EXPECT_TRUE(cache.observe(2));
  EXPECT_TRUE(cache.seen(1));
  EXPECT_FALSE(cache.seen(3));
}

TEST(DuplicateCache, CountsObservations) {
  DuplicateCache cache(16);
  cache.observe(7);
  cache.observe(7);
  cache.observe(7);
  EXPECT_EQ(cache.count(7), 3u);
  EXPECT_EQ(cache.count(8), 0u);
}

TEST(DuplicateCache, EvictsOldestBeyondCapacity) {
  DuplicateCache cache(3);
  cache.observe(1);
  cache.observe(2);
  cache.observe(3);
  cache.observe(4);  // evicts 1
  EXPECT_FALSE(cache.seen(1));
  EXPECT_TRUE(cache.seen(2));
  EXPECT_TRUE(cache.seen(4));
  EXPECT_EQ(cache.size(), 3u);
  // An evicted key is "new" again.
  EXPECT_TRUE(cache.observe(1));
}

TEST(DuplicateCache, RejectsZeroCapacity) {
  EXPECT_THROW(DuplicateCache(0), rrnet::ContractViolation);
}

}  // namespace
}  // namespace rrnet::net
