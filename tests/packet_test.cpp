#include <set>

#include <gtest/gtest.h>

#include "util/contracts.hpp"

#include "net/duplicate_cache.hpp"
#include "net/packet.hpp"

namespace rrnet::net {
namespace {

TEST(Packet, HeaderSizesPerType) {
  Packet p;
  p.type = PacketType::Data;
  p.payload_bytes = 512;
  EXPECT_EQ(p.header_bytes(), 20u);
  EXPECT_EQ(p.size_bytes(), 532u);
  p.type = PacketType::PathDiscovery;
  EXPECT_EQ(p.header_bytes(), 24u);
  p.type = PacketType::NetAck;
  EXPECT_EQ(p.header_bytes(), 16u);
  p.type = PacketType::RouteError;
  EXPECT_EQ(p.header_bytes(), 12u);
}

TEST(Packet, FloodKeyDistinguishesOriginSequenceType) {
  Packet a;
  a.origin = 1;
  a.sequence = 5;
  a.type = PacketType::Data;
  Packet b = a;
  EXPECT_EQ(a.flood_key(), b.flood_key());
  b.sequence = 6;
  EXPECT_NE(a.flood_key(), b.flood_key());
  b = a;
  b.origin = 2;
  EXPECT_NE(a.flood_key(), b.flood_key());
  b = a;
  b.type = PacketType::PathReply;
  EXPECT_NE(a.flood_key(), b.flood_key());
}

TEST(Packet, FloodKeyStableAcrossRelayMutations) {
  Packet p;
  p.origin = 9;
  p.sequence = 4;
  p.type = PacketType::PathReply;
  const auto key = p.flood_key();
  p.actual_hops = 7;
  p.expected_hops = 3;
  p.ttl = 1;
  p.prev_hop = 12;
  EXPECT_EQ(p.flood_key(), key);
}

TEST(Packet, FloodKeysUniqueOverManyPackets) {
  std::set<std::uint64_t> keys;
  for (std::uint32_t origin = 0; origin < 50; ++origin) {
    for (std::uint32_t seq = 0; seq < 50; ++seq) {
      Packet p;
      p.origin = origin;
      p.sequence = seq;
      keys.insert(p.flood_key());
    }
  }
  EXPECT_EQ(keys.size(), 2500u);
}

TEST(Packet, DescribeMentionsTypeAndIds) {
  Packet p;
  p.type = PacketType::PathDiscovery;
  p.origin = 3;
  p.target = 8;
  const std::string s = p.describe();
  EXPECT_NE(s.find("PathDiscovery"), std::string::npos);
  EXPECT_NE(s.find("origin=3"), std::string::npos);
  EXPECT_NE(s.find("target=8"), std::string::npos);
}

TEST(Packet, TypeNames) {
  EXPECT_STREQ(to_string(PacketType::Data), "Data");
  EXPECT_STREQ(to_string(PacketType::RouteRequest), "RouteRequest");
  EXPECT_STREQ(to_string(PacketType::NetAck), "NetAck");
}

TEST(DuplicateCache, FirstObservationIsNew) {
  DuplicateCache cache(16);
  EXPECT_TRUE(cache.observe(1));
  EXPECT_FALSE(cache.observe(1));
  EXPECT_TRUE(cache.observe(2));
  EXPECT_TRUE(cache.seen(1));
  EXPECT_FALSE(cache.seen(3));
}

TEST(DuplicateCache, CountsObservations) {
  DuplicateCache cache(16);
  cache.observe(7);
  cache.observe(7);
  cache.observe(7);
  EXPECT_EQ(cache.count(7), 3u);
  EXPECT_EQ(cache.count(8), 0u);
}

TEST(DuplicateCache, EvictsOldestBeyondCapacity) {
  DuplicateCache cache(3);
  cache.observe(1);
  cache.observe(2);
  cache.observe(3);
  cache.observe(4);  // evicts 1
  EXPECT_FALSE(cache.seen(1));
  EXPECT_TRUE(cache.seen(2));
  EXPECT_TRUE(cache.seen(4));
  EXPECT_EQ(cache.size(), 3u);
  // An evicted key is "new" again.
  EXPECT_TRUE(cache.observe(1));
}

TEST(DuplicateCache, RejectsZeroCapacity) {
  EXPECT_THROW(DuplicateCache(0), rrnet::ContractViolation);
}

}  // namespace
}  // namespace rrnet::net
