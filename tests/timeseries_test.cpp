#include <cmath>

#include <gtest/gtest.h>

#include "app/cbr.hpp"
#include "proto/ssaf.hpp"
#include "test_helpers.hpp"
#include "util/contracts.hpp"
#include "util/timeseries.hpp"

namespace rrnet::util {
namespace {

TEST(TimeSeries, BucketsByTime) {
  TimeSeries series(1.0);
  series.add(0.1, 10.0);
  series.add(0.9, 20.0);
  series.add(1.5, 30.0);
  series.add(4.2, 40.0);
  ASSERT_EQ(series.buckets(), 5u);
  EXPECT_EQ(series.count(0), 2u);
  EXPECT_EQ(series.count(1), 1u);
  EXPECT_EQ(series.count(2), 0u);
  EXPECT_EQ(series.count(4), 1u);
  EXPECT_DOUBLE_EQ(series.sum(0), 30.0);
  EXPECT_DOUBLE_EQ(series.mean(0), 15.0);
  EXPECT_TRUE(std::isnan(series.mean(2)));
  EXPECT_DOUBLE_EQ(series.rate(0), 2.0);
}

TEST(TimeSeries, StartOffsetDropsEarlySamples) {
  TimeSeries series(0.5, /*start=*/2.0);
  series.add(1.0);  // before start: dropped
  series.add(2.1);
  series.add(2.6);
  ASSERT_EQ(series.buckets(), 2u);
  EXPECT_DOUBLE_EQ(series.bucket_start(0), 2.0);
  EXPECT_DOUBLE_EQ(series.bucket_start(1), 2.5);
  EXPECT_EQ(series.count(0), 1u);
  EXPECT_EQ(series.count(1), 1u);
}

TEST(TimeSeries, PeakBucket) {
  TimeSeries series(1.0);
  series.add(0.5);
  series.add(3.1);
  series.add(3.2);
  series.add(3.3);
  EXPECT_EQ(series.peak_bucket(), 3u);
  TimeSeries empty(1.0);
  EXPECT_EQ(empty.peak_bucket(), 0u);
}

TEST(TimeSeries, ToTableShape) {
  TimeSeries series(2.0);
  series.add(1.0, 5.0);
  series.add(3.0, 7.0);
  const Table table = series.to_table("delay");
  EXPECT_EQ(table.rows(), 2u);
  EXPECT_EQ(table.columns(), 4u);
  EXPECT_DOUBLE_EQ(std::get<double>(table.at(1, 3)), 7.0);
}

TEST(TimeSeries, BoundsChecked) {
  TimeSeries series(1.0);
  EXPECT_THROW(static_cast<void>(series.count(0)),
               rrnet::ContractViolation);
  EXPECT_THROW(TimeSeries(0.0), rrnet::ContractViolation);
}

TEST(FlowStatsSeries, RecordsDeliveriesPerBucket) {
  auto tn = rrnet::testing::make_line_net(3);
  for (std::uint32_t i = 0; i < 3; ++i) {
    tn.node(i).set_protocol(proto::make_counter1_flooding(tn.node(i)));
  }
  tn.network->start_protocols();
  app::FlowStats stats;
  stats.enable_timeseries(1.0);
  app::attach_sink(tn.node(2), stats);
  app::CbrConfig config;
  config.interval = 0.5;
  config.start_time = 0.0;
  config.stop_time = 5.0;
  app::CbrSource source(tn.node(0), 2, config, stats);
  source.start();
  tn.scheduler.run_until(10.0);
  ASSERT_NE(stats.timeseries(), nullptr);
  const TimeSeries& series = *stats.timeseries();
  ASSERT_GE(series.buckets(), 5u);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < series.buckets(); ++i) total += series.count(i);
  EXPECT_EQ(total, stats.delivered());
  // Roughly two deliveries per one-second bucket while traffic flows.
  EXPECT_GE(series.count(2), 1u);
  EXPECT_LE(series.count(2), 3u);
}

TEST(FlowStatsSeries, DisabledByDefault) {
  app::FlowStats stats;
  EXPECT_EQ(stats.timeseries(), nullptr);
}

}  // namespace
}  // namespace rrnet::util
