#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "util/contracts.hpp"

#include "mac/csma.hpp"
#include "mac/priority_queue.hpp"
#include "phy/propagation.hpp"

namespace rrnet::mac {
namespace {

TEST(TxQueue, FifoAmongEqualPriorities) {
  TxQueue q(8, /*prioritized=*/true);
  for (std::uint32_t i = 0; i < 4; ++i) {
    Frame f;
    f.sequence = i;
    q.push({f, 1.0});
  }
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(q.pop()->frame.sequence, i);
  }
  EXPECT_FALSE(q.pop().has_value());
}

TEST(TxQueue, PriorityOrdering) {
  TxQueue q(8, true);
  Frame a, b, c;
  a.sequence = 0;
  b.sequence = 1;
  c.sequence = 2;
  q.push({a, 5.0});
  q.push({b, 1.0});
  q.push({c, 3.0});
  EXPECT_EQ(q.pop()->frame.sequence, 1u);
  EXPECT_EQ(q.pop()->frame.sequence, 2u);
  EXPECT_EQ(q.pop()->frame.sequence, 0u);
}

TEST(TxQueue, FifoModeIgnoresPriority) {
  TxQueue q(8, /*prioritized=*/false);
  Frame a, b;
  a.sequence = 0;
  b.sequence = 1;
  q.push({a, 5.0});
  q.push({b, 1.0});
  EXPECT_EQ(q.pop()->frame.sequence, 0u);
  EXPECT_FALSE(q.prioritized());
}

TEST(TxQueue, CapacityDrops) {
  TxQueue q(2, true);
  Frame f;
  EXPECT_TRUE(q.push({f, 0.0}));
  EXPECT_TRUE(q.push({f, 0.0}));
  EXPECT_FALSE(q.push({f, 0.0}));
  EXPECT_EQ(q.drops(), 1u);
  EXPECT_EQ(q.size(), 2u);
}

TEST(TxQueue, RejectsZeroCapacity) {
  EXPECT_THROW(TxQueue(0), rrnet::ContractViolation);
}

// --- CSMA MAC over a real channel ----------------------------------------

struct NetListener final : MacListener {
  std::vector<Frame> received;
  std::vector<bool> received_for_us;
  std::vector<std::pair<Frame, bool>> send_done;
  void mac_receive(const Frame& frame, const phy::RxInfo&,
                   bool for_us) override {
    received.push_back(frame);
    received_for_us.push_back(for_us);
  }
  void mac_send_done(const Frame& frame, bool success) override {
    send_done.emplace_back(frame, success);
  }
};

class CsmaTest : public ::testing::Test {
 protected:
  void build(std::vector<double> xs, MacParams params = {}) {
    std::vector<geom::Vec2> positions;
    for (double x : xs) positions.push_back({x, 500.0});
    phy::FreeSpace for_power;
    phy::RadioParams radio;
    radio.cs_threshold_dbm = radio.rx_threshold_dbm - 7.0;
    radio.noise_floor_dbm = radio.rx_threshold_dbm - 14.0;
    radio.interference_cutoff_dbm = radio.rx_threshold_dbm - 14.0;
    radio.tx_power_dbm =
        phy::tx_power_for_range(for_power, 250.0, radio.rx_threshold_dbm);
    channel_ = std::make_unique<phy::Channel>(
        scheduler_, geom::Terrain(5000.0, 1000.0),
        std::make_unique<phy::FreeSpace>(), radio, positions, des::Rng(1));
    listeners_ = std::vector<NetListener>(xs.size());
    for (std::uint32_t i = 0; i < xs.size(); ++i) {
      macs_.push_back(std::make_unique<CsmaMac>(*channel_, i, params,
                                                des::Rng(100 + i),
                                                listeners_[i]));
    }
  }

  net::PacketRef payload() { return net::make_packet(net::PacketInit{}); }

  des::Scheduler scheduler_;
  std::unique_ptr<phy::Channel> channel_;
  std::vector<NetListener> listeners_;
  std::vector<std::unique_ptr<CsmaMac>> macs_;
};

TEST_F(CsmaTest, BroadcastReachesNeighbor) {
  build({0.0, 200.0});
  macs_[0]->send(kBroadcastAddress, payload(), 100);
  scheduler_.run();
  ASSERT_EQ(listeners_[1].received.size(), 1u);
  EXPECT_TRUE(listeners_[1].received_for_us[0]);
  ASSERT_EQ(listeners_[0].send_done.size(), 1u);
  EXPECT_TRUE(listeners_[0].send_done[0].second);
  EXPECT_EQ(macs_[0]->stats().data_tx, 1u);
  EXPECT_EQ(macs_[0]->stats().ack_tx, 0u);  // no ACK for broadcast
  EXPECT_EQ(macs_[1]->stats().ack_tx, 0u);
}

TEST_F(CsmaTest, UnicastGetsAckedAndSucceeds) {
  build({0.0, 200.0});
  macs_[0]->send(1, payload(), 100);
  scheduler_.run();
  ASSERT_EQ(listeners_[1].received.size(), 1u);
  ASSERT_EQ(listeners_[0].send_done.size(), 1u);
  EXPECT_TRUE(listeners_[0].send_done[0].second);
  EXPECT_EQ(macs_[1]->stats().ack_tx, 1u);
  EXPECT_EQ(macs_[0]->stats().retries, 0u);
}

TEST_F(CsmaTest, UnicastToDeadNeighborFailsAfterRetries) {
  MacParams params;
  params.max_retries = 3;
  build({0.0, 200.0}, params);
  channel_->transceiver(1).turn_off();
  macs_[0]->send(1, payload(), 100);
  scheduler_.run();
  ASSERT_EQ(listeners_[0].send_done.size(), 1u);
  EXPECT_FALSE(listeners_[0].send_done[0].second);
  EXPECT_EQ(macs_[0]->stats().retries, 3u);
  EXPECT_EQ(macs_[0]->stats().unicast_failures, 1u);
  EXPECT_EQ(macs_[0]->stats().data_tx, 4u);  // initial + 3 retries
}

TEST_F(CsmaTest, OverheardUnicastDeliveredPromiscuously) {
  build({0.0, 200.0, 100.0});  // node 2 between 0 and 1
  macs_[0]->send(1, payload(), 100);
  scheduler_.run();
  ASSERT_GE(listeners_[2].received.size(), 1u);
  EXPECT_FALSE(listeners_[2].received_for_us[0]);
}

TEST_F(CsmaTest, SendWhileRadioOffFails) {
  build({0.0, 200.0});
  channel_->transceiver(0).turn_off();
  macs_[0]->send(kBroadcastAddress, payload(), 100);
  scheduler_.run();
  ASSERT_EQ(listeners_[0].send_done.size(), 1u);
  EXPECT_FALSE(listeners_[0].send_done[0].second);
  EXPECT_GE(macs_[0]->stats().tx_dropped_radio_off, 1u);
}

TEST_F(CsmaTest, QueueOverflowReportsFailure) {
  MacParams params;
  params.queue_capacity = 2;
  build({0.0, 200.0}, params);
  // First send goes into service almost immediately; two more fill the
  // queue; the rest overflow.
  for (int i = 0; i < 6; ++i) {
    macs_[0]->send(kBroadcastAddress, payload(), 2000);
  }
  EXPECT_GE(macs_[0]->stats().queue_drops, 3u);
  scheduler_.run();
  EXPECT_EQ(listeners_[0].send_done.size(), 6u);
}

TEST_F(CsmaTest, AllQueuedFramesEventuallyAir) {
  build({0.0, 200.0});
  for (int i = 0; i < 10; ++i) {
    macs_[0]->send(kBroadcastAddress, payload(), 100);
  }
  scheduler_.run();
  EXPECT_EQ(listeners_[1].received.size(), 10u);
  EXPECT_EQ(macs_[0]->stats().data_tx, 10u);
}

TEST_F(CsmaTest, PriorityQueueReordersPendingFrames) {
  build({0.0, 200.0});
  // Enqueue with decreasing priority values; frame 0 is put in service
  // immediately, the rest are queued and should come out lowest-value first.
  for (int i = 0; i < 5; ++i) {
    macs_[0]->send(kBroadcastAddress, payload(), 400,
                   /*priority=*/static_cast<double>(10 - i));
  }
  scheduler_.run();
  ASSERT_EQ(listeners_[1].received.size(), 5u);
  // First received is the one that entered service first (sequence 0); the
  // remaining four arrive in reverse enqueue order (lowest priority value
  // first: sequences 4, 3, 2, 1).
  EXPECT_EQ(listeners_[1].received[0].sequence, 0u);
  EXPECT_EQ(listeners_[1].received[1].sequence, 4u);
  EXPECT_EQ(listeners_[1].received[2].sequence, 3u);
  EXPECT_EQ(listeners_[1].received[3].sequence, 2u);
  EXPECT_EQ(listeners_[1].received[4].sequence, 1u);
}

TEST_F(CsmaTest, FifoModePreservesEnqueueOrder) {
  MacParams params;
  params.priority_queue = false;
  build({0.0, 200.0}, params);
  for (int i = 0; i < 5; ++i) {
    macs_[0]->send(kBroadcastAddress, payload(), 400,
                   static_cast<double>(10 - i));
  }
  scheduler_.run();
  ASSERT_EQ(listeners_[1].received.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(listeners_[1].received[i].sequence, i);
  }
}

TEST_F(CsmaTest, TwoContendersBothEventuallyDeliver) {
  build({0.0, 200.0, 400.0});
  // 0 and 2 both broadcast; 1 hears both. CSMA backoff must separate them
  // (they cannot carrier-sense each other, but retransmissions/backoff
  // spread attempts; with only one attempt each this tests capture or
  // collision is possible -> instead stagger slightly).
  macs_[0]->send(kBroadcastAddress, payload(), 100);
  scheduler_.schedule_at(0.005, [&]() {
    macs_[2]->send(kBroadcastAddress, payload(), 100);
  });
  scheduler_.run();
  EXPECT_EQ(listeners_[1].received.size(), 2u);
}

TEST_F(CsmaTest, CarrierSenseDefersSecondSender) {
  // Node 0 starts a 12 ms frame; 1 ms in, node 1 (100 m away, well inside
  // carrier-sense range) queues its own. Node 1 must defer until the medium
  // clears, so node 2 decodes both frames without collision.
  build({0.0, 100.0, 150.0});
  macs_[0]->send(kBroadcastAddress, payload(), 1500);
  scheduler_.schedule_at(0.001, [&]() {
    EXPECT_TRUE(channel_->transceiver(1).medium_busy());
    macs_[1]->send(kBroadcastAddress, payload(), 1500);
  });
  scheduler_.run();
  EXPECT_EQ(listeners_[2].received.size(), 2u);
}

TEST_F(CsmaTest, RadioDyingMidTransmissionDoesNotWedgeTheMac) {
  // The transceiver reports tx-done when powered off mid-frame; the MAC
  // must finish the frame and keep serving the queue after power returns.
  build({0.0, 200.0});
  macs_[0]->send(kBroadcastAddress, payload(), 2000);  // ~16 ms airtime
  scheduler_.schedule_at(0.002, [&]() { channel_->transceiver(0).turn_off(); });
  scheduler_.schedule_at(0.050, [&]() { channel_->transceiver(0).turn_on(); });
  scheduler_.schedule_at(0.060, [&]() {
    macs_[0]->send(kBroadcastAddress, payload(), 100);
  });
  scheduler_.run();
  // The second frame must get through despite the mid-air outage.
  ASSERT_GE(listeners_[1].received.size(), 1u);
  EXPECT_EQ(listeners_[1].received.back().size_bytes, 100u + kMacHeaderBytes);
  EXPECT_EQ(listeners_[0].send_done.size(), 2u);
}

TEST_F(CsmaTest, QueueDrainsAsFailuresWhileRadioIsOff) {
  // Frames attempted during an outage are lost, not held — the paper's
  // failure model ("not able to transmit or receive any packets"). Every
  // queued frame still gets a send_done verdict, and service resumes
  // cleanly once power returns.
  build({0.0, 200.0});
  for (int i = 0; i < 5; ++i) {
    macs_[0]->send(kBroadcastAddress, payload(), 1000);
  }
  scheduler_.schedule_at(0.001, [&]() { channel_->transceiver(0).turn_off(); });
  scheduler_.schedule_at(0.020, [&]() { channel_->transceiver(0).turn_on(); });
  scheduler_.schedule_at(0.030, [&]() {
    macs_[0]->send(kBroadcastAddress, payload(), 100);
  });
  scheduler_.run();
  EXPECT_EQ(listeners_[0].send_done.size(), 6u);
  int failures = 0;
  for (const auto& [frame, ok] : listeners_[0].send_done) {
    if (!ok) ++failures;
  }
  EXPECT_EQ(failures, 4);  // frames 2-5 burned during the outage
  // The in-flight frame's airtime completes at the receivers, and the
  // post-outage frame goes through.
  EXPECT_EQ(listeners_[1].received.size(), 2u);
}

TEST_F(CsmaTest, MacPacketCountsIncludeAcks) {
  build({0.0, 200.0});
  macs_[0]->send(1, payload(), 100);
  scheduler_.run();
  EXPECT_EQ(macs_[0]->stats().total_tx(), 1u);
  EXPECT_EQ(macs_[1]->stats().total_tx(), 1u);  // the ACK
}

}  // namespace
}  // namespace rrnet::mac
