#include <memory>

#include <gtest/gtest.h>

#include "phy/energy.hpp"
#include "phy/failure.hpp"
#include "phy/propagation.hpp"
#include "util/contracts.hpp"

namespace rrnet::phy {
namespace {

TEST(EnergyMeter, AccumulatesByState) {
  EnergyProfile profile;
  profile.tx_w = 0.1;
  profile.rx_w = 0.03;
  profile.idle_w = 0.01;
  profile.off_w = 0.0;
  EnergyMeter meter(profile, 0.0);
  meter.account(RadioState::Idle, 10.0);   // 10 s idle
  meter.account(RadioState::Tx, 12.0);     // 2 s tx
  meter.account(RadioState::Off, 20.0);    // 8 s off
  EXPECT_NEAR(meter.consumed_joules(), 10 * 0.01 + 2 * 0.1 + 8 * 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(meter.time_in(RadioState::Idle), 10.0);
  EXPECT_DOUBLE_EQ(meter.time_in(RadioState::Tx), 2.0);
  EXPECT_DOUBLE_EQ(meter.time_in(RadioState::Off), 8.0);
}

TEST(EnergyMeter, IgnoresNonMonotoneTime) {
  EnergyMeter meter(EnergyProfile{}, 5.0);
  meter.account(RadioState::Idle, 4.0);  // in the past: ignored
  EXPECT_DOUBLE_EQ(meter.consumed_joules(), 0.0);
}

class FailureModelTest : public ::testing::Test {
 protected:
  void build(double fraction, std::vector<std::uint32_t> exempt = {}) {
    std::vector<geom::Vec2> positions{{100, 100}, {200, 100}, {300, 100}};
    RadioParams radio;
    channel_ = std::make_unique<Channel>(
        scheduler_, geom::Terrain(1000, 1000), std::make_unique<FreeSpace>(),
        radio, positions, des::Rng(3));
    FailureConfig config;
    config.off_fraction = fraction;
    config.mean_cycle_s = 5.0;
    config.exempt_nodes = std::move(exempt);
    model_ = std::make_unique<FailureModel>(scheduler_, *channel_, config,
                                            des::Rng(4));
  }

  des::Scheduler scheduler_;
  std::unique_ptr<Channel> channel_;
  std::unique_ptr<FailureModel> model_;
};

TEST_F(FailureModelTest, ZeroFractionNeverTogglesAnything) {
  build(0.0);
  model_->start();
  scheduler_.run_until(100.0);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_FALSE(channel_->transceiver(i).is_off());
    EXPECT_DOUBLE_EQ(model_->observed_off_fraction(i), 0.0);
  }
  EXPECT_EQ(scheduler_.executed_count(), 0u);
}

TEST_F(FailureModelTest, LongRunOffFractionApproachesTarget) {
  build(0.3);
  model_->start();
  scheduler_.run_until(20000.0);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(model_->observed_off_fraction(i), 0.3, 0.05) << "node " << i;
  }
}

TEST_F(FailureModelTest, ExemptNodesNeverFail) {
  build(0.5, {1});
  model_->start();
  scheduler_.run_until(5000.0);
  EXPECT_DOUBLE_EQ(model_->observed_off_fraction(1), 0.0);
  EXPECT_NEAR(model_->observed_off_fraction(0), 0.5, 0.07);
  EXPECT_NEAR(model_->observed_off_fraction(2), 0.5, 0.07);
}

TEST_F(FailureModelTest, RejectsInvalidConfig) {
  std::vector<geom::Vec2> positions{{100, 100}};
  RadioParams radio;
  Channel channel(scheduler_, geom::Terrain(1000, 1000),
                  std::make_unique<FreeSpace>(), radio, positions,
                  des::Rng(3));
  FailureConfig bad;
  bad.off_fraction = 1.0;
  EXPECT_THROW(FailureModel(scheduler_, channel, bad, des::Rng(1)),
               rrnet::ContractViolation);
}

TEST_F(FailureModelTest, RadiosActuallyToggle) {
  build(0.5);
  model_->start();
  int observed_off = 0, observed_on = 0;
  for (int i = 1; i <= 400; ++i) {
    scheduler_.run_until(static_cast<double>(i));
    if (channel_->transceiver(0).is_off()) {
      ++observed_off;
    } else {
      ++observed_on;
    }
  }
  EXPECT_GT(observed_off, 50);
  EXPECT_GT(observed_on, 50);
}

}  // namespace
}  // namespace rrnet::phy
