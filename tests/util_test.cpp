#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "util/contracts.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"

namespace rrnet::util {
namespace {

TEST(Log, LevelFilterGatesMessageExpression) {
  // The macro must not even evaluate the streamed expression when the
  // message is below the process level — logging in a hot path costs
  // nothing while filtered.
  ScopedLogLevel quiet(LogLevel::Error);
  int evaluations = 0;
  RRNET_DEBUG("test", "side effect " << ++evaluations);
  RRNET_INFO("test", "side effect " << ++evaluations);
  RRNET_WARN("test", "side effect " << ++evaluations);
  EXPECT_EQ(evaluations, 0);
  RRNET_LOG(LogLevel::Error, "test", "counted " << ++evaluations);
  EXPECT_EQ(evaluations, 1);
}

TEST(Log, ScopedLevelRestoresOnExitAndNests) {
  const LogLevel before = log_level();
  {
    ScopedLogLevel outer(LogLevel::Trace);
    EXPECT_EQ(log_level(), LogLevel::Trace);
    {
      ScopedLogLevel inner(LogLevel::Error);
      EXPECT_EQ(log_level(), LogLevel::Error);
    }
    EXPECT_EQ(log_level(), LogLevel::Trace);
  }
  EXPECT_EQ(log_level(), before);
}

TEST(Accumulator, EmptyHasNaNMeanAndZeroCount) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_TRUE(acc.empty());
  EXPECT_TRUE(std::isnan(acc.mean()));
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator acc;
  acc.add(42.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 42.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 42.0);
  EXPECT_DOUBLE_EQ(acc.max(), 42.0);
}

TEST(Accumulator, MeanAndVarianceMatchClosedForm) {
  Accumulator acc;
  for (int i = 1; i <= 100; ++i) acc.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(acc.mean(), 50.5);
  // Var of 1..100 (sample): n(n+1)/12 with n=101 -> 841.66...
  EXPECT_NEAR(acc.variance(), 841.6666667, 1e-6);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 100.0);
  EXPECT_NEAR(acc.sum(), 5050.0, 1e-9);
}

TEST(Accumulator, MergeMatchesSequential) {
  Accumulator a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    a.add(x);
    all.add(x);
  }
  for (int i = 50; i < 120; ++i) {
    const double x = std::cos(i) * 3.0 + 1.0;
    b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Accumulator, MergeWithEmptySides) {
  Accumulator a, b;
  a.add(1.0);
  a.add(3.0);
  Accumulator empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Accumulator, SummaryCi95) {
  Accumulator acc;
  for (int i = 0; i < 100; ++i) acc.add(i % 2 == 0 ? 1.0 : -1.0);
  const Summary s = acc.summary();
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(s.mean, 0.0, 1e-12);
  EXPECT_NEAR(s.ci95, 1.96 * s.stddev / 10.0, 1e-12);
}

TEST(Summary, Ci95PinnedToZeroBelowTwoSamples) {
  Accumulator empty;
  EXPECT_EQ(empty.summary().ci95, 0.0);
  EXPECT_EQ(empty.summary().stddev, 0.0);
  Accumulator one;
  one.add(3.5);
  const Summary s = one.summary();
  EXPECT_EQ(s.ci95, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
}

TEST(CellToString, NonFiniteDoublesRenderEmpty) {
  EXPECT_EQ(cell_to_string(Cell{std::numeric_limits<double>::quiet_NaN()}), "");
  EXPECT_EQ(cell_to_string(Cell{std::numeric_limits<double>::infinity()}), "");
  EXPECT_EQ(cell_to_string(Cell{-std::numeric_limits<double>::infinity()}), "");
  EXPECT_EQ(cell_to_string(Cell{1.5}, 2), "1.50");
}

TEST(Table, EmptyAccumulatorSerializesAsEmptyCsvCells) {
  // Regression: the NaN mean of an empty Accumulator used to be written
  // verbatim into sweep CSVs, producing "nan" cells that broke plotting.
  const Summary s = Accumulator{}.summary();
  Table table({"x", "mean", "ci95"});
  table.add_row({std::int64_t{1}, s.mean, s.ci95});
  std::ostringstream os;
  table.write_csv(os, 2);
  EXPECT_EQ(os.str(), "x,mean,ci95\n1,,0.00\n");
}

TEST(RatioCounter, Basics) {
  RatioCounter rc;
  EXPECT_TRUE(std::isnan(rc.ratio()));
  rc.add(true);
  rc.add(false);
  rc.add(true);
  rc.add(true);
  EXPECT_EQ(rc.hits(), 3u);
  EXPECT_EQ(rc.total(), 4u);
  EXPECT_DOUBLE_EQ(rc.ratio(), 0.75);
}

TEST(RatioCounter, Merge) {
  RatioCounter a, b;
  a.add_hits(3, 10);
  b.add_hits(7, 10);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.ratio(), 0.5);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), ContractViolation);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ContractViolation);
}

TEST(Histogram, BinsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(-1.0);  // underflow -> first bin
  h.add(10.0);  // overflow -> last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 4.0);
}

TEST(Histogram, QuantileOfUniformFill) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 0.5, 0.5);
}

TEST(Summarize, VectorSummary) {
  const Summary s = summarize({2.0, 4.0, 6.0});
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
}

TEST(Csv, EscapePlainAndSpecial) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("two\nlines"), "\"two\nlines\"");
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({Cell{std::int64_t{1}}}), ContractViolation);
}

TEST(Table, CsvRoundtripContent) {
  Table t({"x", "name", "value"});
  t.add_row({Cell{std::int64_t{1}}, Cell{std::string{"alpha"}}, Cell{0.5}});
  t.add_row({Cell{std::int64_t{2}}, Cell{std::string{"b,c"}}, Cell{1.25}});
  std::ostringstream oss;
  t.write_csv(oss, 2);
  EXPECT_EQ(oss.str(), "x,name,value\n1,alpha,0.50\n2,\"b,c\",1.25\n");
}

TEST(Table, PrettyAlignsColumns) {
  Table t({"metric", "v"});
  t.add_row({Cell{std::string{"delivery"}}, Cell{0.95}});
  std::ostringstream oss;
  t.write_pretty(oss, 2);
  const std::string out = oss.str();
  EXPECT_NE(out.find("metric"), std::string::npos);
  EXPECT_NE(out.find("0.95"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, AtAccessorBoundsChecked) {
  Table t({"a"});
  t.add_row({Cell{1.0}});
  EXPECT_THROW(static_cast<void>(t.at(1, 0)), ContractViolation);
  EXPECT_THROW(static_cast<void>(t.at(0, 1)), ContractViolation);
  EXPECT_DOUBLE_EQ(std::get<double>(t.at(0, 0)), 1.0);
}

// Shape checks resolve columns by name: the sweep tables grew counter
// columns per protocol, which silently shifted every hard-coded index for
// the second protocol's series (the fig1/fig3/fig4 verdict bug).
TEST(Table, ColumnIndexByName) {
  Table t({"x", "a_delivery", "a_extra", "b_delivery"});
  EXPECT_EQ(t.column_index("x"), 0u);
  EXPECT_EQ(t.column_index("b_delivery"), 3u);
  EXPECT_THROW(static_cast<void>(t.column_index("missing")),
               ContractViolation);
}

TEST(Flags, ParsesKeyValueForms) {
  // Note: a bare "--flag" followed by a non-flag token consumes it as the
  // value, so positionals must precede bare boolean flags.
  const char* argv[] = {"prog", "--alpha=1.5", "--name", "bench",
                        "positional", "--on"};
  Flags flags(6, argv);
  EXPECT_DOUBLE_EQ(flags.get_double("alpha", 0.0), 1.5);
  EXPECT_EQ(flags.get_string("name", ""), "bench");
  EXPECT_TRUE(flags.get_bool("on", false));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
}

TEST(Flags, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags flags(1, argv);
  EXPECT_EQ(flags.get_int("n", 42), 42);
  EXPECT_FALSE(flags.has("n"));
}

TEST(Flags, TypeErrorsThrow) {
  const char* argv[] = {"prog", "--n=abc", "--b=maybe"};
  Flags flags(3, argv);
  EXPECT_THROW(static_cast<void>(flags.get_int("n", 0)),
               ContractViolation);
  EXPECT_THROW(static_cast<void>(flags.get_bool("b", false)),
               ContractViolation);
}

TEST(Flags, SetOverrides) {
  Flags flags;
  flags.set("k", "9");
  EXPECT_EQ(flags.get_int("k", 0), 9);
}

TEST(Contracts, MacrosThrowWithLocation) {
  try {
    RRNET_EXPECTS(1 == 2);
    FAIL() << "expected throw";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("precondition"), std::string::npos);
  }
  EXPECT_THROW(RRNET_ENSURES(false), ContractViolation);
  EXPECT_THROW(RRNET_ASSERT(false), ContractViolation);
  EXPECT_NO_THROW(RRNET_EXPECTS(true));
}

// Property sweep: Welford matches two-pass computation on assorted scales.
class AccumulatorScaleTest : public ::testing::TestWithParam<double> {};

TEST_P(AccumulatorScaleTest, MatchesTwoPassAtScale) {
  const double scale = GetParam();
  std::vector<double> xs;
  Accumulator acc;
  for (int i = 0; i < 500; ++i) {
    const double x = scale * (std::sin(0.1 * i) + 2.0);
    xs.push_back(x);
    acc.add(x);
  }
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(acc.mean(), mean, std::abs(mean) * 1e-12 + 1e-12);
  EXPECT_NEAR(acc.variance(), var, std::abs(var) * 1e-9 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Scales, AccumulatorScaleTest,
                         ::testing::Values(1e-9, 1e-3, 1.0, 1e3, 1e9));

}  // namespace
}  // namespace rrnet::util
