#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "des/rng.hpp"

namespace rrnet::des {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 8.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 8.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(2, 6);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all of 2..6 hit
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(10);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.exponential(2.5);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, 2.5, 0.03);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.03);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, RayleighMeanMatches) {
  Rng rng(19);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.rayleigh(1.0);
  // E[Rayleigh(sigma)] = sigma * sqrt(pi/2) ~= 1.2533.
  EXPECT_NEAR(sum / kN, 1.2533, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, ForkIsDeterministicAndTagSensitive) {
  Rng root(42);
  Rng a1 = root.fork("mac");
  Rng a2 = root.fork("mac");
  Rng b = root.fork("phy");
  EXPECT_EQ(a1.next_u64(), a2.next_u64());
  EXPECT_NE(a1.seed(), b.seed());
}

TEST(Rng, ForkIndexSensitive) {
  Rng root(42);
  Rng n0 = root.fork("node", 0);
  Rng n1 = root.fork("node", 1);
  EXPECT_NE(n0.seed(), n1.seed());
}

TEST(Rng, ForkedStreamsLookIndependent) {
  Rng root(99);
  Rng a = root.fork("a");
  Rng b = root.fork("b");
  // Correlation of 10k pairs should be near zero.
  double sa = 0, sb = 0, sab = 0, saa = 0, sbb = 0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    const double x = a.uniform01();
    const double y = b.uniform01();
    sa += x;
    sb += y;
    sab += x * y;
    saa += x * x;
    sbb += y * y;
  }
  const double cov = sab / kN - (sa / kN) * (sb / kN);
  const double var_a = saa / kN - (sa / kN) * (sa / kN);
  const double var_b = sbb / kN - (sb / kN) * (sb / kN);
  EXPECT_LT(std::abs(cov / std::sqrt(var_a * var_b)), 0.05);
}

TEST(Rng, ForkDoesNotAdvanceParent) {
  Rng root(7);
  Rng probe(7);
  (void)root.fork("x");
  EXPECT_EQ(root.next_u64(), probe.next_u64());
}

// Property: chi-squared uniformity of uniform_int across parameterized
// range widths.
class UniformIntRangeTest : public ::testing::TestWithParam<int> {};

TEST_P(UniformIntRangeTest, RoughlyUniform) {
  const int buckets = GetParam();
  Rng rng(1000 + buckets);
  std::vector<int> counts(buckets, 0);
  const int kN = 20000 * buckets;
  for (int i = 0; i < kN; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform_int(0, buckets - 1))];
  }
  const double expected = static_cast<double>(kN) / buckets;
  double chi2 = 0.0;
  for (int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  // Very loose: 3x the dof; catches systematic bias, not fine statistics.
  EXPECT_LT(chi2, 3.0 * buckets + 30.0);
}

INSTANTIATE_TEST_SUITE_P(Ranges, UniformIntRangeTest,
                         ::testing::Values(2, 3, 7, 16, 100));

TEST(Splitmix, KnownNonDegenerate) {
  std::uint64_t s = 0;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_NE(a, 0u);
}

TEST(DeriveStreamSeed, NoAdditiveOverlapBetweenBaseSeeds) {
  // Regression: replication seeds used to be base + i, so a 10-replication
  // run at base seed 1 shared replications 4..9 with a run at base seed 5.
  // Hash-derived seeds must never reproduce that additive aliasing.
  for (std::uint64_t a = 1; a <= 8; ++a) {
    for (std::uint64_t b = a + 1; b <= 8; ++b) {
      for (std::uint64_t i = 0; i < 10; ++i) {
        for (std::uint64_t j = 0; j < 10; ++j) {
          EXPECT_NE(derive_stream_seed(a, i), derive_stream_seed(b, j))
              << "bases " << a << "," << b << " indices " << i << "," << j;
        }
      }
    }
  }
}

TEST(DeriveStreamSeed, AdjacentBaseSeedsYieldDisjointStreams) {
  // Stronger than seed inequality: the streams themselves must be disjoint.
  // Draw the first k outputs of every replication stream for several
  // adjacent base seeds; no value may appear in two streams.
  constexpr std::uint64_t kBases[] = {1, 2, 3, 4, 5};
  constexpr std::uint64_t kReps = 10;
  constexpr int kDraws = 64;
  std::set<std::uint64_t> all_outputs;
  std::size_t total = 0;
  for (const std::uint64_t base : kBases) {
    for (std::uint64_t i = 0; i < kReps; ++i) {
      Rng rng(derive_stream_seed(base, i));
      for (int d = 0; d < kDraws; ++d) {
        all_outputs.insert(rng.next_u64());
        ++total;
      }
    }
  }
  EXPECT_EQ(all_outputs.size(), total);
}

TEST(DeriveStreamSeed, DeterministicAndIndexSensitive) {
  EXPECT_EQ(derive_stream_seed(42, 7), derive_stream_seed(42, 7));
  EXPECT_NE(derive_stream_seed(42, 7), derive_stream_seed(42, 8));
  EXPECT_NE(derive_stream_seed(42, 7), derive_stream_seed(43, 7));
}

// --- Counter-based per-link streams (shard-replayable fading draws) ---

TEST(LinkRng, SameKeySameDrawAnywhere) {
  // The property the sharded engine rests on: any shard (any thread, any
  // shard count) that constructs the stream for (base, tx, rx, draw) gets
  // the exact same values — the draw is a pure function of its key.
  constexpr std::uint64_t kBase = 0x9E3779B97F4A7C15ULL;
  for (std::uint32_t tx = 0; tx < 4; ++tx) {
    for (std::uint32_t rx = 0; rx < 4; ++rx) {
      if (tx == rx) continue;
      for (std::uint64_t draw = 0; draw < 4; ++draw) {
        LinkRng a(kBase, tx, rx, draw);
        LinkRng b(kBase, tx, rx, draw);
        EXPECT_EQ(a.rng().next_u64(), b.rng().next_u64());
        EXPECT_EQ(a.rng().rayleigh(1.0), b.rng().rayleigh(1.0));
        EXPECT_EQ(a.rng().normal(0.0, 4.0), b.rng().normal(0.0, 4.0));
      }
    }
  }
}

TEST(LinkRng, ReplayIndependentOfEvaluationOrder) {
  // A serial run evaluates links in one global order; a sharded run splits
  // the same links across shards in another. Interleaving must not matter:
  // draw the same keys in forward and reverse order and compare.
  constexpr std::uint64_t kBase = 77;
  struct Key {
    std::uint32_t tx, rx;
    std::uint64_t draw;
  };
  std::vector<Key> keys;
  for (std::uint32_t tx = 0; tx < 8; ++tx) {
    for (std::uint32_t rx = 0; rx < 8; ++rx) {
      if (tx != rx) keys.push_back({tx, rx, tx + rx});
    }
  }
  std::vector<double> forward, backward;
  for (const Key& k : keys) {
    forward.push_back(LinkRng(kBase, k.tx, k.rx, k.draw).rng().uniform01());
  }
  for (auto it = keys.rbegin(); it != keys.rend(); ++it) {
    backward.push_back(
        LinkRng(kBase, it->tx, it->rx, it->draw).rng().uniform01());
  }
  std::reverse(backward.begin(), backward.end());
  EXPECT_EQ(forward, backward);
}

TEST(LinkRng, DistinctLinksAndDrawsDisjoint) {
  // Distinct (tx, rx, draw) keys must open streams that never collide in
  // their first outputs; in particular (tx, rx) and (rx, tx) are different
  // links and draw indices separate successive frames on one link.
  constexpr std::uint64_t kBase = 20260808;
  std::set<std::uint64_t> outputs;
  std::size_t total = 0;
  for (std::uint32_t tx = 0; tx < 6; ++tx) {
    for (std::uint32_t rx = 0; rx < 6; ++rx) {
      if (tx == rx) continue;
      for (std::uint64_t draw = 0; draw < 8; ++draw) {
        LinkRng link(kBase, tx, rx, draw);
        for (int i = 0; i < 8; ++i) {
          outputs.insert(link.rng().next_u64());
          ++total;
        }
      }
    }
  }
  EXPECT_EQ(outputs.size(), total);
}

TEST(LinkRng, BaseSeedSensitive) {
  // Different runs (different channel rng seeds) must not share link
  // streams.
  LinkRng a(1, 2, 3, 4);
  LinkRng b(2, 2, 3, 4);
  EXPECT_NE(a.rng().next_u64(), b.rng().next_u64());
}

TEST(LinkStreamSeed, DeterministicPureFunction) {
  EXPECT_EQ(link_stream_seed(9, 1, 2, 3), link_stream_seed(9, 1, 2, 3));
  EXPECT_NE(link_stream_seed(9, 1, 2, 3), link_stream_seed(9, 2, 1, 3));
  EXPECT_NE(link_stream_seed(9, 1, 2, 3), link_stream_seed(9, 1, 2, 4));
  EXPECT_NE(link_stream_seed(8, 1, 2, 3), link_stream_seed(9, 1, 2, 3));
}

}  // namespace
}  // namespace rrnet::des
