#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "des/rng.hpp"
#include "geom/placement.hpp"
#include "geom/shard_partition.hpp"
#include "geom/spatial_grid.hpp"
#include "geom/terrain.hpp"
#include "geom/vec2.hpp"
#include "util/contracts.hpp"

namespace rrnet::geom {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
  EXPECT_DOUBLE_EQ(a.dot(b), 1.0);
}

TEST(Vec2, NormAndDistance) {
  EXPECT_DOUBLE_EQ((Vec2{3.0, 4.0}).norm(), 5.0);
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance_sq({1, 1}, {4, 5}), 25.0);
}

TEST(Vec2, DistanceToSegmentInterior) {
  // Point above the middle of a horizontal segment.
  EXPECT_DOUBLE_EQ(distance_to_segment({5, 3}, {0, 0}, {10, 0}), 3.0);
}

TEST(Vec2, DistanceToSegmentClampsToEndpoints) {
  EXPECT_DOUBLE_EQ(distance_to_segment({-3, 4}, {0, 0}, {10, 0}), 5.0);
  EXPECT_DOUBLE_EQ(distance_to_segment({13, 4}, {0, 0}, {10, 0}), 5.0);
}

TEST(Vec2, DistanceToDegenerateSegment) {
  EXPECT_DOUBLE_EQ(distance_to_segment({3, 4}, {0, 0}, {0, 0}), 5.0);
}

TEST(Terrain, RejectsNonPositiveDimensions) {
  EXPECT_THROW(Terrain(0.0, 10.0), rrnet::ContractViolation);
  EXPECT_THROW(Terrain(10.0, -1.0), rrnet::ContractViolation);
}

TEST(Terrain, ContainsAndClamp) {
  const Terrain t(100.0, 50.0);
  EXPECT_TRUE(t.contains({0, 0}));
  EXPECT_TRUE(t.contains({100, 50}));
  EXPECT_FALSE(t.contains({100.1, 0}));
  EXPECT_FALSE(t.contains({5, -0.1}));
  EXPECT_EQ(t.clamp({-5, 60}), (Vec2{0, 50}));
  EXPECT_DOUBLE_EQ(t.area(), 5000.0);
  EXPECT_EQ(t.center(), (Vec2{50, 25}));
  EXPECT_NEAR(t.diameter(), 111.803, 1e-3);
}

TEST(Placement, UniformStaysInsideAndCounts) {
  const Terrain t(1000.0, 500.0);
  des::Rng rng(3);
  const auto pts = place_uniform(t, 250, rng);
  ASSERT_EQ(pts.size(), 250u);
  for (const Vec2& p : pts) EXPECT_TRUE(t.contains(p));
}

TEST(Placement, UniformCoversAllQuadrants) {
  const Terrain t(100.0, 100.0);
  des::Rng rng(5);
  const auto pts = place_uniform(t, 400, rng);
  int quadrant[4] = {0, 0, 0, 0};
  for (const Vec2& p : pts) {
    const int q = (p.x > 50.0 ? 1 : 0) + (p.y > 50.0 ? 2 : 0);
    ++quadrant[q];
  }
  for (int q = 0; q < 4; ++q) EXPECT_GT(quadrant[q], 50);
}

TEST(Placement, GridExactAndInside) {
  const Terrain t(100.0, 100.0);
  const auto pts = place_grid(t, 9);
  ASSERT_EQ(pts.size(), 9u);
  for (const Vec2& p : pts) EXPECT_TRUE(t.contains(p));
  // All distinct.
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      EXPECT_GT(distance(pts[i], pts[j]), 1.0);
    }
  }
}

TEST(Placement, MinSeparationHonored) {
  const Terrain t(1000.0, 1000.0);
  des::Rng rng(7);
  const auto pts = place_min_separation(t, 50, 60.0, rng);
  ASSERT_EQ(pts.size(), 50u);
  int violations = 0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      if (distance(pts[i], pts[j]) < 60.0) ++violations;
    }
  }
  EXPECT_EQ(violations, 0);
}

TEST(SpatialGrid, RejectsOutOfTerrainPositions) {
  const Terrain t(100.0, 100.0);
  EXPECT_THROW(SpatialGrid(t, 10.0, {{150.0, 0.0}}), rrnet::ContractViolation);
}

TEST(SpatialGrid, QueryFindsSelfAndNeighbors) {
  const Terrain t(100.0, 100.0);
  SpatialGrid grid(t, 25.0, {{10, 10}, {20, 10}, {90, 90}});
  std::vector<std::uint32_t> out;
  grid.query({10, 10}, 15.0, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 1}));
  grid.query({90, 90}, 5.0, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{2}));
  grid.query({50, 50}, 5.0, out);
  EXPECT_TRUE(out.empty());
}

TEST(SpatialGrid, UpdatePositionMovesAcrossCells) {
  const Terrain t(100.0, 100.0);
  SpatialGrid grid(t, 10.0, {{5, 5}});
  std::vector<std::uint32_t> out;
  grid.update_position(0, {95, 95});
  grid.query({5, 5}, 8.0, out);
  EXPECT_TRUE(out.empty());
  grid.query({95, 95}, 8.0, out);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(grid.position(0), (Vec2{95, 95}));
}

// Query order is a determinism contract, not a convenience: the channel
// iterates the query result and draws one fade/jitter sample per receiver,
// so the id order pins the per-receiver RNG draw order (and with it
// serial == parallel replication bit-identity). The order must be sorted
// ascending by id and survive arbitrary update_position churn, which
// reorders the grid's internal cell vectors via swap-and-pop.
TEST(SpatialGrid, QueryOrderSortedAndStableUnderChurn) {
  const Terrain t(200.0, 200.0);
  des::Rng rng(42);
  std::vector<Vec2> pts;
  pts.reserve(64);
  for (int i = 0; i < 64; ++i) {
    pts.push_back({rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)});
  }
  SpatialGrid grid(t, 50.0, pts);
  // Churn: bounce nodes between cells in an id order chosen to shuffle
  // every cell's vector, then move them back to their original position.
  for (std::uint32_t pass = 0; pass < 3; ++pass) {
    for (std::uint32_t id = 63; id < 64; --id) {
      grid.update_position(id, {rng.uniform(0.0, 200.0),
                                rng.uniform(0.0, 200.0)});
    }
  }
  for (std::uint32_t id = 0; id < 64; ++id) {
    grid.update_position(id, pts[id]);
  }
  std::vector<std::uint32_t> out;
  std::vector<std::uint32_t> again;
  for (int q = 0; q < 16; ++q) {
    const Vec2 center{rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)};
    grid.query(center, 75.0, out);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()))
        << "query " << q << " not sorted by id";
    grid.query(center, 75.0, again);
    EXPECT_EQ(out, again) << "query " << q << " not repeatable";
  }
}

// Property: grid query equals brute force for random layouts / radii / cell
// sizes.
struct GridCase {
  std::uint64_t seed;
  double cell;
  double radius;
};

class SpatialGridPropertyTest : public ::testing::TestWithParam<GridCase> {};

TEST_P(SpatialGridPropertyTest, MatchesBruteForce) {
  const GridCase c = GetParam();
  const Terrain t(1000.0, 800.0);
  des::Rng rng(c.seed);
  const auto pts = place_uniform(t, 300, rng);
  SpatialGrid grid(t, c.cell, pts);
  std::vector<std::uint32_t> got;
  for (int q = 0; q < 25; ++q) {
    const Vec2 center{rng.uniform(0.0, 1000.0), rng.uniform(0.0, 800.0)};
    grid.query(center, c.radius, got);
    std::vector<std::uint32_t> expected;
    for (std::uint32_t i = 0; i < pts.size(); ++i) {
      if (distance(pts[i], center) <= c.radius) expected.push_back(i);
    }
    EXPECT_EQ(got, expected) << "seed=" << c.seed << " q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SpatialGridPropertyTest,
    ::testing::Values(GridCase{1, 50.0, 100.0}, GridCase{2, 250.0, 100.0},
                      GridCase{3, 100.0, 10.0}, GridCase{4, 33.0, 400.0},
                      GridCase{5, 1500.0, 200.0}));

// Differential fuzz: the CSR index with epoch-deferred mobility updates
// must agree with a brute-force O(n) reference across interleaved move /
// query / explicit-compact operations. The mix is tuned so queries run in
// every internal state — clean (freshly compacted), dirty (dislodged list
// populated), and across automatic compactions triggered both by scan
// debt (many dirty queries) and by the dislodged hard cap (move bursts).
TEST(SpatialGrid, DifferentialFuzzAgainstBruteForce) {
  constexpr std::uint32_t kNodes = 257;  // not a multiple of the cell grid
  constexpr int kOps = 4000;
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    const Terrain t(1000.0, 640.0);
    des::Rng rng(seed);
    std::vector<Vec2> reference = place_uniform(t, kNodes, rng);
    SpatialGrid grid(t, 120.0, reference);
    std::size_t compactions_seen = 0;
    std::vector<std::uint32_t> got;
    for (int op = 0; op < kOps; ++op) {
      const double dice = rng.uniform(0.0, 1.0);
      if (dice < 0.55) {
        // Move: half local jitter (often same cell), half teleport.
        const auto id =
            static_cast<std::uint32_t>(rng.uniform_int(0, kNodes - 1));
        Vec2 next;
        if (rng.uniform(0.0, 1.0) < 0.5) {
          next = t.clamp({reference[id].x + rng.uniform(-30.0, 30.0),
                          reference[id].y + rng.uniform(-30.0, 30.0)});
        } else {
          next = {rng.uniform(0.0, 1000.0), rng.uniform(0.0, 640.0)};
        }
        reference[id] = next;
        grid.update_position(id, next);
      } else if (dice < 0.97) {
        // Query: compare against brute force at a random center/radius.
        const Vec2 center{rng.uniform(0.0, 1000.0), rng.uniform(0.0, 640.0)};
        const double radius = rng.uniform(1.0, 500.0);
        grid.query(center, radius, got);
        std::vector<std::uint32_t> expected;
        for (std::uint32_t i = 0; i < kNodes; ++i) {
          if (distance(reference[i], center) <= radius) expected.push_back(i);
        }
        EXPECT_EQ(got, expected) << "seed=" << seed << " op=" << op;
        if (got != expected) return;  // one detailed failure is enough
      } else {
        // Explicit epoch boundary, as the sharded window barrier does.
        grid.compact();
        EXPECT_EQ(grid.pending_updates(), 0u);
      }
      if (grid.pending_updates() == 0) ++compactions_seen;
      EXPECT_EQ(grid.position(static_cast<std::uint32_t>(op) % kNodes),
                reference[op % kNodes]);
    }
    // The op mix must actually have exercised epoch transitions.
    EXPECT_GT(compactions_seen, 5u) << "seed=" << seed;
  }
}

TEST(ShardPartition, EdgeAndBoundaryOwnership) {
  const Terrain terrain(1000.0, 600.0);
  const ShardPartition part(terrain, 4);
  EXPECT_DOUBLE_EQ(part.strip_width(), 250.0);
  // Left edge and stray FP below it.
  EXPECT_EQ(part.shard_of({0.0, 10.0}), 0u);
  EXPECT_EQ(part.shard_of({-0.5, 10.0}), 0u);
  // Interior boundary belongs to the right-hand strip (floor semantics).
  EXPECT_EQ(part.shard_of({250.0, 10.0}), 1u);
  EXPECT_EQ(part.shard_of({249.999, 10.0}), 0u);
  EXPECT_EQ(part.shard_of({500.0, 10.0}), 2u);
  // Right terrain edge and beyond clamp into the last strip.
  EXPECT_EQ(part.shard_of({1000.0, 10.0}), 3u);
  EXPECT_EQ(part.shard_of({1000.1, 10.0}), 3u);
  // Strip ranges tile the terrain.
  EXPECT_DOUBLE_EQ(part.strip_begin(0), 0.0);
  EXPECT_DOUBLE_EQ(part.strip_end(3), 1000.0);
  for (std::uint32_t s = 0; s + 1 < part.shards(); ++s) {
    EXPECT_DOUBLE_EQ(part.strip_end(s), part.strip_begin(s + 1));
  }
}

TEST(ShardPartition, OwnerMapIsPureAndCoversEveryNode) {
  const Terrain terrain(1500.0, 500.0);
  des::Rng rng(77);
  const std::vector<Vec2> pts = place_uniform(terrain, 200, rng);
  const ShardPartition part(terrain, 5);
  const std::vector<std::uint32_t> owner = shard_owner_map(part, pts);
  ASSERT_EQ(owner.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_LT(owner[i], part.shards());
    EXPECT_GE(pts[i].x, part.strip_begin(owner[i]));
    EXPECT_LE(pts[i].x, part.strip_end(owner[i]));
  }
  // Pure: an independently constructed partition derives the same map.
  const ShardPartition again(terrain, 5);
  EXPECT_EQ(shard_owner_map(again, pts), owner);
}

TEST(ShardPartition, MoreShardsThanNodesLeavesEmptyStrips) {
  const Terrain terrain(800.0, 800.0);
  const std::vector<Vec2> pts{{10.0, 10.0}, {15.0, 20.0}, {790.0, 10.0}};
  const ShardPartition part(terrain, 8);
  const std::vector<std::uint32_t> owner = shard_owner_map(part, pts);
  EXPECT_EQ(owner, (std::vector<std::uint32_t>{0, 0, 7}));
  // Shards 1..6 own nothing — a legal configuration the engine must accept.
}

// A full-grid query from a node near a strip boundary must return the same
// id-ordered receiver set no matter how the terrain is sharded: every shard
// indexes ALL positions, and ownership only decides which results are acted
// on locally. This is the query-order half of the handoff determinism
// contract (global order indices break ties identically on every shard).
TEST(ShardPartition, BoundaryStraddlingQueryIsShardCountInvariant) {
  const Terrain terrain(1200.0, 400.0);
  des::Rng rng(99);
  const std::vector<Vec2> pts = place_uniform(terrain, 150, rng);
  const double interference_range = 300.0;  // wider than a 4-shard strip
  const SpatialGrid grid(terrain, interference_range, pts);

  std::vector<std::uint32_t> reference;
  grid.query(pts[0], interference_range, reference);

  for (const std::uint32_t shards : {2u, 3u, 4u, 8u}) {
    const ShardPartition part(terrain, shards);
    EXPECT_LE(part.strip_width(), 2.0 * interference_range)
        << "case must actually straddle strips";
    // Same grid, same query — partitioning never filters the query itself.
    std::vector<std::uint32_t> got;
    grid.query(pts[0], interference_range, got);
    EXPECT_EQ(got, reference) << "shards=" << shards;
    // The straddling receiver set spans more than one owner for at least
    // one shard count, i.e. cross-shard handoffs genuinely occur.
    std::vector<std::uint32_t> owners;
    for (const std::uint32_t id : got) {
      owners.push_back(part.shard_of(pts[id]));
    }
    std::sort(owners.begin(), owners.end());
    owners.erase(std::unique(owners.begin(), owners.end()), owners.end());
    if (shards >= 4) {
      EXPECT_GE(owners.size(), 2u) << "shards=" << shards;
    }
  }
}

}  // namespace
}  // namespace rrnet::geom
