// des::LadderQueue: ordering, FIFO discipline, allocation-free reuse, a
// randomized model test, a heap-vs-ladder cross-check on one workload, and
// the serial==ladder bit-identical scenario determinism gate.
#include "des/ladder_queue.hpp"

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "des/quad_heap.hpp"
#include "des/rng.hpp"
#include "des/scheduler.hpp"
#include "obs/metrics.hpp"
#include "sim/runner.hpp"

namespace rrnet::des {
namespace {

struct Keyed {
  double key;
  std::uint64_t sequence;  // insertion order, for FIFO among equal keys
};
struct KeyedTime {
  Time operator()(const Keyed& k) const noexcept { return k.key; }
};
struct KeyedBefore {
  bool operator()(const Keyed& a, const Keyed& b) const noexcept {
    if (a.key != b.key) return a.key < b.key;
    return a.sequence < b.sequence;
  }
};
using KeyedLadder = LadderQueue<Keyed, KeyedTime, KeyedBefore>;

TEST(LadderQueue, PopsInSortedOrder) {
  KeyedLadder queue;
  const std::vector<double> input = {7, 3, 9, 1, 4, 1, 8, 2, 6, 5, 0, 9};
  std::vector<Keyed> expected;
  for (std::size_t i = 0; i < input.size(); ++i) {
    queue.push({input[i], i});
    expected.push_back({input[i], i});
  }
  std::sort(expected.begin(), expected.end(), KeyedBefore{});
  for (const Keyed& e : expected) {
    ASSERT_FALSE(queue.empty());
    const Keyed got = queue.pop_top();
    EXPECT_EQ(got.key, e.key);
    EXPECT_EQ(got.sequence, e.sequence);
  }
  EXPECT_TRUE(queue.empty());
}

TEST(LadderQueue, SingleElementAndClear) {
  KeyedLadder queue;
  EXPECT_TRUE(queue.empty());
  queue.push({42.0, 0});
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.top().key, 42.0);
  queue.pop();
  EXPECT_TRUE(queue.empty());
  queue.push({1.0, 1});
  queue.clear();
  EXPECT_TRUE(queue.empty());
  // Usable after clear, including times below anything seen before.
  queue.push({0.5, 2});
  queue.push({0.25, 3});
  EXPECT_EQ(queue.pop_top().key, 0.25);
  EXPECT_EQ(queue.pop_top().key, 0.5);
}

// Randomized property test mirroring the QuadHeap one: interleaved pushes
// and pops against a sorted reference model must agree exactly, including
// FIFO among equal keys. Key range deliberately small so bucket collisions
// and rung refinement are constantly exercised.
TEST(LadderQueue, MatchesReferenceModelUnderRandomWorkload) {
  std::mt19937_64 gen(0xC0FFEE);
  std::uniform_int_distribution<int> key_dist(0, 19);  // frequent ties
  std::uniform_int_distribution<int> op_dist(0, 99);

  KeyedLadder queue;
  std::vector<Keyed> model;  // kept sorted by (key, sequence)
  const KeyedBefore before{};
  std::uint64_t next_sequence = 0;

  for (int step = 0; step < 20000; ++step) {
    const bool do_push = model.empty() || op_dist(gen) < 55;
    if (do_push) {
      const Keyed item{static_cast<double>(key_dist(gen)), next_sequence++};
      queue.push(item);
      model.insert(std::upper_bound(model.begin(), model.end(), item, before),
                   item);
    } else {
      ASSERT_FALSE(queue.empty());
      const Keyed& expected = model.front();
      ASSERT_EQ(queue.top().key, expected.key) << "step " << step;
      ASSERT_EQ(queue.top().sequence, expected.sequence) << "step " << step;
      queue.pop();
      model.erase(model.begin());
    }
    ASSERT_EQ(queue.size(), model.size());
  }
  while (!queue.empty()) {
    const Keyed got = queue.pop_top();
    ASSERT_EQ(got.sequence, model.front().sequence);
    model.erase(model.begin());
  }
  EXPECT_TRUE(model.empty());
}

// Equal keys must drain strictly in insertion order — including across the
// overflow threshold (entries with the same timestamp split between a
// rebuilt rung and the overflow region pushed afterwards).
TEST(LadderQueue, FifoAmongEqualKeys) {
  KeyedLadder queue;
  for (std::uint64_t i = 0; i < 100; ++i) queue.push({5.0, i});
  // Force a rebuild so the first batch lands in rungs/bottom, then push
  // more entries at the same key (they land in overflow).
  EXPECT_EQ(queue.top().sequence, 0u);
  for (std::uint64_t i = 100; i < 200; ++i) queue.push({5.0, i});
  for (std::uint64_t i = 0; i < 200; ++i) {
    ASSERT_EQ(queue.pop_top().sequence, i);
  }
}

// Heap and ladder driven through one random schedule/pop workload must pop
// in identical order — the property the scheduler's backend switch (and the
// bit-identical replication guarantee) rests on.
TEST(LadderQueue, CrossCheckAgainstQuadHeapOnRandomWorkload) {
  std::mt19937_64 gen(0xBADC0DE);
  std::uniform_real_distribution<double> time_dist(0.0, 64.0);
  std::uniform_int_distribution<int> op_dist(0, 99);
  std::uniform_int_distribution<int> burst_dist(1, 24);

  QuadHeap<Keyed, KeyedBefore> heap;
  KeyedLadder ladder;
  std::uint64_t next_sequence = 0;
  double now = 0.0;  // scheduler-like: pushes never go below the pop frontier

  for (int step = 0; step < 30000; ++step) {
    if (heap.empty() || op_dist(gen) < 55) {
      const int burst = burst_dist(gen);
      for (int i = 0; i < burst; ++i) {
        const Keyed item{now + time_dist(gen), next_sequence++};
        heap.push(item);
        ladder.push(item);
      }
    } else {
      ASSERT_FALSE(ladder.empty());
      const Keyed a = heap.pop_top();
      const Keyed b = ladder.pop_top();
      ASSERT_EQ(a.key, b.key) << "step " << step;
      ASSERT_EQ(a.sequence, b.sequence) << "step " << step;
      now = a.key;
    }
  }
  while (!heap.empty()) {
    ASSERT_FALSE(ladder.empty());
    ASSERT_EQ(heap.pop_top().sequence, ladder.pop_top().sequence);
  }
  EXPECT_TRUE(ladder.empty());
}

// Same-timestamp FIFO across the full Scheduler under cancel/reschedule
// churn on the ladder backend (mirrors the QuadHeapScheduler test).
TEST(LadderScheduler, SameTimestampFifoUnderChurn) {
  Scheduler sched(QueueBackend::Ladder);
  std::vector<int> order;
  std::vector<EventId> cancelled;
  constexpr Time kT = 1.0;
  int expected_rank = 0;
  for (int round = 0; round < 50; ++round) {
    cancelled.push_back(sched.schedule_at(kT, [&]() { ADD_FAILURE(); }));
    const int rank = expected_rank++;
    sched.schedule_at(kT, [&order, rank]() { order.push_back(rank); });
    cancelled.push_back(sched.schedule_at(kT, [&]() { ADD_FAILURE(); }));
  }
  for (EventId id : cancelled) EXPECT_TRUE(sched.cancel(id));
  for (int round = 0; round < 50; ++round) {
    const int rank = expected_rank++;
    sched.schedule_at(kT, [&order, rank]() { order.push_back(rank); });
  }
  sched.run();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

// Both scheduler backends run the same randomized schedule/cancel workload
// and must execute callbacks in exactly the same order.
TEST(LadderScheduler, BackendsExecuteIdenticalOrderUnderChurn) {
  const auto run_backend = [](QueueBackend backend) {
    Scheduler sched(backend);
    Rng rng(77);
    std::vector<std::uint64_t> order;
    std::vector<EventId> ids;
    for (int round = 0; round < 40; ++round) {
      for (std::uint64_t i = 0; i < 200; ++i) {
        const std::uint64_t tag = round * 1000 + i;
        ids.push_back(
            sched.schedule_in(rng.uniform01() * 4.0,
                              [&order, tag]() { order.push_back(tag); }));
      }
      for (std::size_t i = 0; i < ids.size(); i += 3) sched.cancel(ids[i]);
      ids.clear();
      sched.run_until(sched.now() + 1.0);
    }
    sched.run();
    return order;
  };
  const std::vector<std::uint64_t> heap_order = run_backend(QueueBackend::Heap);
  const std::vector<std::uint64_t> ladder_order =
      run_backend(QueueBackend::Ladder);
  ASSERT_EQ(heap_order.size(), ladder_order.size());
  EXPECT_EQ(heap_order, ladder_order);
}

// The serial==ladder determinism gate: a full fig3-style scenario produces
// bit-identical metric snapshots on both queue backends. Any divergence
// means the ladder broke the strict (time, sequence) total order.
TEST(LadderScheduler, ScenarioBitIdenticalAcrossBackends) {
  sim::ScenarioConfig config;
  config.seed = 11;
  config.nodes = 30;
  config.width_m = 600.0;
  config.height_m = 600.0;
  config.range_m = 250.0;
  config.protocol = sim::ProtocolKind::Routeless;
  config.pairs = 2;
  config.cbr_interval = 1.0;
  config.payload_bytes = 128;
  config.traffic_start = 1.0;
  config.traffic_stop = 8.0;
  config.sim_end = 15.0;

  config.scheduler_queue = QueueBackend::Heap;
  const sim::ScenarioResult serial = sim::run_scenario(config);
  config.scheduler_queue = QueueBackend::Ladder;
  const sim::ScenarioResult ladder = sim::run_scenario(config);

  EXPECT_EQ(serial.events_executed, ladder.events_executed);
  EXPECT_EQ(serial.delivered, ladder.delivered);
  const std::vector<obs::Metric> ss = serial.metrics.snapshot();
  const std::vector<obs::Metric> ls = ladder.metrics.snapshot();
  ASSERT_EQ(ss.size(), ls.size());
  for (std::size_t i = 0; i < ss.size(); ++i) {
    EXPECT_EQ(ss[i].name, ls[i].name);
    EXPECT_EQ(ss[i].value, ls[i].value) << ss[i].name;
  }
}

}  // namespace
}  // namespace rrnet::des
