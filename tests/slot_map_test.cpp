// phy::SignalMap: slot reuse, dense-sum semantics, exhaustion/growth, and
// the exact-zero total-power reset the carrier-sense drift fix rests on.
#include "phy/signal_map.hpp"

#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace rrnet::phy {
namespace {

TEST(SignalMap, InsertFindErase) {
  SignalMap map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.total_power_mw(), 0.0);
  const std::uint32_t a = map.insert(101, 1.5, 2.0);
  const std::uint32_t b = map.insert(202, 2.5, 3.0);
  EXPECT_EQ(map.active_count(), 2u);
  EXPECT_EQ(map.find(101), a);
  EXPECT_EQ(map.find(202), b);
  EXPECT_EQ(map.find(303), SignalMap::kNoSlot);
  EXPECT_DOUBLE_EQ(map.total_power_mw(), 4.0);
  EXPECT_DOUBLE_EQ(map.erase_slot(map.find(101)), 1.5);
  EXPECT_EQ(map.find(101), SignalMap::kNoSlot);
  EXPECT_EQ(map.active_count(), 1u);
}

TEST(SignalMap, FreedSlotsAreReusedMostRecentFirst) {
  SignalMap map;
  const std::uint32_t s0 = map.insert(1, 1.0, 1.0);
  const std::uint32_t s1 = map.insert(2, 1.0, 1.0);
  map.insert(3, 1.0, 1.0);
  map.erase_slot(s0);
  map.erase_slot(s1);
  // LIFO free list: the most recently freed slot comes back first, and the
  // dense range does not grow while parked slots exist.
  EXPECT_EQ(map.insert(4, 1.0, 1.0), s1);
  EXPECT_EQ(map.insert(5, 1.0, 1.0), s0);
  EXPECT_EQ(map.slot_count(), 3u);
}

TEST(SignalMap, SlotRangeGrowsOnExhaustionAndResetsWhenEmpty) {
  SignalMap map;
  std::vector<std::uint32_t> slots;
  // Push far past the reserved capacity: every slot distinct, range dense.
  for (std::uint64_t id = 0; id < 64; ++id) {
    slots.push_back(map.insert(id, 0.5, 1.0));
    EXPECT_EQ(slots.back(), static_cast<std::uint32_t>(id));
  }
  EXPECT_EQ(map.slot_count(), 64u);
  EXPECT_EQ(map.active_count(), 64u);
  for (const std::uint32_t s : slots) map.erase_slot(s);
  // Emptying truncates the dense range, so later sums scan nothing.
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.slot_count(), 0u);
  EXPECT_EQ(map.total_power_mw(), 0.0);
}

TEST(SignalMap, PowerSumExcludingSkipsParkedAndExcludedSlots) {
  SignalMap map;
  map.insert(1, 1.0, 1.0);
  const std::uint32_t s2 = map.insert(2, 2.0, 1.0);
  map.insert(3, 4.0, 1.0);
  EXPECT_DOUBLE_EQ(map.power_sum_excluding(2), 5.0);
  EXPECT_DOUBLE_EQ(map.power_sum_excluding(99), 7.0);  // absent id: full sum
  map.erase_slot(s2);  // parked slot must contribute exactly 0.0
  EXPECT_DOUBLE_EQ(map.power_sum_excluding(99), 5.0);
  EXPECT_DOUBLE_EQ(map.power_sum_excluding(1), 4.0);
}

// The drift regression at the map level: churn signals whose powers have no
// short binary representation, in arrival/expiry patterns that overlap, and
// require the cumulative total to read exactly 0.0 whenever the map
// empties. With pure +=/-= bookkeeping the residue survives (that was the
// carrier-sense drift bug); the empty-reset makes it exact.
TEST(SignalMap, TotalPowerIsExactlyZeroAfterChurn) {
  SignalMap map;
  std::mt19937_64 gen(1234);
  std::uniform_real_distribution<double> power(1e-9, 1e-3);
  std::uint64_t next_id = 0;
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::uint32_t> live;
    for (int i = 0; i < 8; ++i) {
      live.push_back(map.insert(next_id++, power(gen), 1.0));
    }
    // Interleave removals with more arrivals so the incremental total
    // crosses many magnitudes.
    for (int i = 0; i < 4; ++i) {
      map.erase_slot(live[i]);
      live.push_back(map.insert(next_id++, power(gen), 1.0));
    }
    for (std::size_t i = 4; i < live.size(); ++i) {
      map.erase_slot(map.find(next_id - (live.size() - i)));
    }
    ASSERT_TRUE(map.empty()) << "round " << round;
    ASSERT_EQ(map.total_power_mw(), 0.0) << "round " << round;
  }
}

}  // namespace
}  // namespace rrnet::phy
