// Cross-protocol invariants: properties every routing/flooding protocol in
// the library must satisfy, checked over the same scenarios via TEST_P.
#include <gtest/gtest.h>

#include "proto/routeless.hpp"
#include "sim/runner.hpp"
#include "test_helpers.hpp"

namespace rrnet {
namespace {

using sim::ProtocolKind;

class EveryProtocolTest : public ::testing::TestWithParam<ProtocolKind> {
 protected:
  sim::ScenarioConfig base_config() const {
    sim::ScenarioConfig config;
    config.seed = 77;
    config.nodes = 40;
    config.width_m = config.height_m = 700.0;
    config.range_m = 250.0;
    config.protocol = GetParam();
    config.aodv.discovery = proto::RreqFlooding::Dedup;
    config.pairs = 2;
    config.cbr_interval = 1.0;
    config.payload_bytes = 128;
    config.traffic_start = 1.0;
    config.traffic_stop = 9.0;
    config.sim_end = 15.0;
    return config;
  }
};

TEST_P(EveryProtocolTest, DeliversOnDenseNetwork) {
  const sim::ScenarioResult r = sim::run_scenario(base_config());
  EXPECT_GT(r.sent, 0u);
  EXPECT_GT(r.delivery_ratio, 0.7) << sim::to_string(GetParam());
  EXPECT_LE(r.delivery_ratio, 1.0);
}

TEST_P(EveryProtocolTest, DeterministicUnderFixedSeed) {
  const sim::ScenarioResult a = sim::run_scenario(base_config());
  const sim::ScenarioResult b = sim::run_scenario(base_config());
  EXPECT_EQ(a.mac_packets, b.mac_packets);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_DOUBLE_EQ(a.mean_delay_s, b.mean_delay_s);
}

TEST_P(EveryProtocolTest, MacCountMatchesChannelTransmissions) {
  // Every MAC transmission (data or ACK) corresponds to exactly one frame
  // put on the air, and nothing else transmits.
  sim::SimInstance sim(base_config());
  sim.run();
  EXPECT_EQ(sim.network().total_mac_tx(),
            sim.network().channel().stats().transmissions);
}

TEST_P(EveryProtocolTest, SimulationQuiescesAfterTrafficStops) {
  // The event count between two late horizons must be small: timers drain,
  // nothing self-sustains after traffic ends (runaway retransmission loops
  // would show up here).
  sim::ScenarioConfig config = base_config();
  sim::SimInstance sim(config);
  sim.run_until(config.sim_end + 30.0);
  const std::uint64_t events_a = sim.scheduler().executed_count();
  sim.run_until(config.sim_end + 60.0);
  const std::uint64_t events_b = sim.scheduler().executed_count();
  EXPECT_LT(events_b - events_a, 50u) << sim::to_string(GetParam());
}

TEST_P(EveryProtocolTest, DeliveredHopsAreAtLeastGraphDistance) {
  // With endpoints >2 radio ranges apart, any delivered packet used >= 3
  // relays worth of hops.
  sim::ScenarioConfig config = base_config();
  config.nodes = 60;
  config.width_m = 1400.0;
  config.height_m = 400.0;
  config.explicit_pairs = {{0, 1}};
  // Find two nodes far apart deterministically via a probe instance.
  {
    sim::SimInstance probe(config);
    double best = 0.0;
    std::uint32_t src = 0, dst = 1;
    for (std::uint32_t i = 0; i < probe.network().size(); ++i) {
      for (std::uint32_t j = i + 1; j < probe.network().size(); ++j) {
        const double d =
            geom::distance(probe.network().channel().position(i),
                           probe.network().channel().position(j));
        if (d > best) {
          best = d;
          src = i;
          dst = j;
        }
      }
    }
    ASSERT_GT(best, 700.0);
    config.explicit_pairs = {{src, dst}};
  }
  const sim::ScenarioResult r = sim::run_scenario(config);
  if (r.delivered > 0) {
    EXPECT_GE(r.mean_hops, 3.0) << sim::to_string(GetParam());
  }
}

TEST_P(EveryProtocolTest, SurvivesRadioChaos) {
  // Chaos monkey: random radios flip on/off throughout the run. No
  // contract may trip, and the simulation must stay finite.
  sim::ScenarioConfig config = base_config();
  sim::SimInstance sim(config);
  des::Rng chaos(99);
  for (int i = 0; i < 120; ++i) {
    const des::Time when = 1.0 + 0.1 * i;
    sim.scheduler().schedule_at(when, [&sim, &chaos]() {
      const auto node = static_cast<std::uint32_t>(
          chaos.uniform_int(0, static_cast<std::int64_t>(sim.network().size()) - 1));
      auto& radio = sim.network().channel().transceiver(node);
      if (chaos.bernoulli(0.5)) {
        radio.turn_off();
      } else {
        radio.turn_on();
      }
    });
  }
  EXPECT_NO_THROW(sim.run());
  const sim::ScenarioResult r = sim.result();
  EXPECT_LE(r.delivery_ratio, 1.0);
  EXPECT_GT(r.events_executed, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, EveryProtocolTest,
    ::testing::Values(ProtocolKind::Counter1Flooding, ProtocolKind::Ssaf,
                      ProtocolKind::Routeless, ProtocolKind::Aodv,
                      ProtocolKind::Gradient, ProtocolKind::Dsr),
    [](const ::testing::TestParamInfo<ProtocolKind>& info) {
      switch (info.param) {
        case ProtocolKind::Counter1Flooding: return "Counter1";
        case ProtocolKind::Ssaf: return "Ssaf";
        case ProtocolKind::BlindFlooding: return "Blind";
        case ProtocolKind::Routeless: return "Routeless";
        case ProtocolKind::Aodv: return "Aodv";
        case ProtocolKind::Gradient: return "Gradient";
        case ProtocolKind::Dsdv: return "Dsdv";
        case ProtocolKind::Dsr: return "Dsr";
      }
      return "Unknown";
    });

// --- Regression: RR cohort suppression keeps off-gradient nodes quiet -----

TEST(RoutelessSuppression, LateralNodesDoNotRelayData) {
  // T-shaped topology: chain 0-1-2-3 carries the flow; nodes 4 and 5 hang
  // off the chain laterally. After discovery, laterals know they are
  // farther from the destination than expected and must never relay data
  // (first-round eligibility + arbiter acknowledgements keep them silent).
  using rrnet::testing::TestNet;
  std::vector<geom::Vec2> positions{
      {100, 500}, {300, 500}, {500, 500}, {700, 500},  // chain
      {300, 700},                                       // lateral at node 1
      {500, 300},                                       // lateral at node 2
  };
  TestNet tn(positions, 250.0, geom::Terrain(1000, 1000));
  for (std::uint32_t i = 0; i < tn.network->size(); ++i) {
    tn.node(i).set_protocol(
        std::make_unique<proto::RoutelessProtocol>(tn.node(i)));
  }
  tn.network->start_protocols();
  int deliveries = 0;
  tn.node(3).set_delivery_handler([&](const net::PacketRef&) { ++deliveries; });
  for (int i = 0; i < 6; ++i) {
    tn.scheduler.schedule_at(0.5 + i, [&tn]() {
      tn.node(0).protocol().send_data(3, 64);
    });
  }
  tn.scheduler.run_until(30.0);
  EXPECT_EQ(deliveries, 6);
  const auto& lateral_a =
      static_cast<proto::RoutelessProtocol&>(tn.node(4).protocol()).rr_stats();
  const auto& lateral_b =
      static_cast<proto::RoutelessProtocol&>(tn.node(5).protocol()).rr_stats();
  EXPECT_EQ(lateral_a.relays, 0u);
  EXPECT_EQ(lateral_b.relays, 0u);
  // Discovery floods are counter-1: laterals do participate there.
  EXPECT_GE(lateral_a.discovery_relays + lateral_b.discovery_relays, 1u);
}

TEST(RoutelessSuppression, PerPacketCostStaysNearPathLength) {
  // On a clean line, the steady-state per-packet data transmissions must be
  // close to the hop count (no suppressed-flood regression).
  auto tn = rrnet::testing::make_line_net(6);
  for (std::uint32_t i = 0; i < tn.network->size(); ++i) {
    tn.node(i).set_protocol(
        std::make_unique<proto::RoutelessProtocol>(tn.node(i)));
  }
  tn.network->start_protocols();
  int deliveries = 0;
  tn.node(5).set_delivery_handler([&](const net::PacketRef&) { ++deliveries; });
  // Warm up tables with one packet, then measure 5 packets.
  tn.node(0).protocol().send_data(5, 64);
  tn.scheduler.run_until(10.0);
  const std::uint64_t tx_before = tn.network->channel().stats().transmissions;
  for (int i = 0; i < 5; ++i) {
    tn.scheduler.schedule_at(10.5 + i, [&tn]() {
      tn.node(0).protocol().send_data(5, 64);
    });
  }
  tn.scheduler.run_until(40.0);
  EXPECT_EQ(deliveries, 6);
  const std::uint64_t tx = tn.network->channel().stats().transmissions - tx_before;
  // 5 packets x 5 hops: relays (5) + netacks (<= 6) per packet, plus a few
  // arbiter retransmissions. Anything beyond ~3x means runaway redundancy.
  EXPECT_LE(tx, 5u * 15u);
  EXPECT_GE(tx, 5u * 5u);
}

}  // namespace
}  // namespace rrnet
