#include <gtest/gtest.h>

#include "proto/flooding.hpp"
#include "proto/ssaf.hpp"
#include "test_helpers.hpp"

namespace rrnet::proto {
namespace {

using rrnet::testing::TestNet;
using rrnet::testing::line_positions;
using rrnet::testing::make_line_net;

FloodingProtocol& flooding_of(net::Node& node) {
  return static_cast<FloodingProtocol&>(node.protocol());
}

void attach_counter1(TestNet& tn, des::Time lambda = 5e-3,
                     std::uint8_t ttl = 32) {
  for (std::uint32_t i = 0; i < tn.network->size(); ++i) {
    tn.node(i).set_protocol(make_counter1_flooding(tn.node(i), lambda, ttl));
  }
  tn.network->start_protocols();
}

TEST(Counter1, DeliversAcrossMultipleHops) {
  auto tn = make_line_net(6);
  attach_counter1(tn);
  net::PacketRef delivered;
  int deliveries = 0;
  tn.node(5).set_delivery_handler([&](const net::PacketRef& p) {
    delivered = p;
    ++deliveries;
  });
  tn.node(0).protocol().send_data(5, 64);
  tn.scheduler.run();
  ASSERT_EQ(deliveries, 1);
  EXPECT_EQ(delivered.origin(), 0u);
  EXPECT_EQ(delivered.actual_hops(), 5u);  // line topology: exactly 5 hops
  EXPECT_EQ(delivered.payload_bytes(), 64u);
}

TEST(Counter1, EveryNodeRelaysAtMostOncePerPacket) {
  auto tn = make_line_net(6);
  attach_counter1(tn);
  tn.node(0).protocol().send_data(5, 64);
  tn.scheduler.run();
  for (std::uint32_t i = 1; i < 5; ++i) {
    EXPECT_LE(flooding_of(tn.node(i)).flood_stats().relayed, 1u) << i;
  }
  // Total data transmissions: source + at most one relay per non-target.
  EXPECT_LE(tn.network->channel().stats().transmissions, 6u);
}

TEST(Counter1, DestinationDoesNotRelayByDefault) {
  auto tn = make_line_net(4);
  attach_counter1(tn);
  tn.node(0).protocol().send_data(3, 10);
  tn.scheduler.run();
  EXPECT_EQ(flooding_of(tn.node(3)).flood_stats().relayed, 0u);
  EXPECT_EQ(flooding_of(tn.node(3)).flood_stats().delivered, 1u);
}

TEST(Counter1, TtlLimitsPropagation) {
  auto tn = make_line_net(8);
  attach_counter1(tn, 5e-3, /*ttl=*/3);
  int deliveries = 0;
  tn.node(7).set_delivery_handler([&](const net::PacketRef&) { ++deliveries; });
  tn.node(0).protocol().send_data(7, 10);
  tn.scheduler.run();
  EXPECT_EQ(deliveries, 0);  // 7 hops needed, ttl 3
  std::uint64_t total_relays = 0;
  for (std::uint32_t i = 0; i < 8; ++i) {
    total_relays += flooding_of(tn.node(i)).flood_stats().relayed;
  }
  EXPECT_LE(total_relays, 3u);
}

TEST(Counter1, SequenceNumbersKeepPacketsDistinct) {
  auto tn = make_line_net(3);
  attach_counter1(tn);
  int deliveries = 0;
  tn.node(2).set_delivery_handler([&](const net::PacketRef&) { ++deliveries; });
  tn.node(0).protocol().send_data(2, 10);
  tn.scheduler.schedule_at(0.5, [&]() { tn.node(0).protocol().send_data(2, 10); });
  tn.scheduler.schedule_at(1.0, [&]() { tn.node(0).protocol().send_data(2, 10); });
  tn.scheduler.run();
  EXPECT_EQ(deliveries, 3);
}

TEST(BlindFlooding, GeneratesMoreTransmissionsThanCounter1) {
  // A 3x3 grid with ~150 m spacing: dense enough for duplicate copies.
  std::vector<geom::Vec2> positions;
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      positions.push_back({100.0 + 150.0 * c, 100.0 + 150.0 * r});
    }
  }
  std::uint64_t tx_counter1 = 0, tx_blind = 0;
  {
    TestNet tn(positions, 250.0, geom::Terrain(600, 600));
    attach_counter1(tn);
    tn.node(0).protocol().send_data(8, 32);
    tn.scheduler.run();
    tx_counter1 = tn.network->channel().stats().transmissions;
  }
  {
    TestNet tn(positions, 250.0, geom::Terrain(600, 600));
    FloodingConfig fc;
    fc.blind = true;
    fc.lambda = 5e-3;
    for (std::uint32_t i = 0; i < tn.network->size(); ++i) {
      tn.node(i).set_protocol(std::make_unique<FloodingProtocol>(
          tn.node(i), fc, std::make_unique<core::UniformBackoff>(5e-3)));
    }
    tn.network->start_protocols();
    tn.node(0).protocol().send_data(8, 32);
    tn.scheduler.run_until(30.0);
    tx_blind = tn.network->channel().stats().transmissions;
  }
  EXPECT_GT(tx_blind, tx_counter1);
}

TEST(CounterThreshold, SuppressionReducesTransmissions) {
  std::vector<geom::Vec2> positions;
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      positions.push_back({100.0 + 120.0 * c, 100.0 + 120.0 * r});
    }
  }
  auto run_with_threshold = [&](std::uint32_t k) {
    TestNet tn(positions, 250.0, geom::Terrain(600, 600));
    FloodingConfig fc;
    fc.counter_threshold = k;
    fc.lambda = 10e-3;
    for (std::uint32_t i = 0; i < tn.network->size(); ++i) {
      tn.node(i).set_protocol(std::make_unique<FloodingProtocol>(
          tn.node(i), fc, std::make_unique<core::UniformBackoff>(10e-3)));
    }
    tn.network->start_protocols();
    int deliveries = 0;
    tn.node(15).set_delivery_handler([&](const net::PacketRef&) { ++deliveries; });
    tn.node(0).protocol().send_data(15, 32);
    tn.scheduler.run();
    EXPECT_EQ(deliveries, 1) << "threshold " << k;
    return tn.network->channel().stats().transmissions;
  };
  const std::uint64_t tx_plain = run_with_threshold(0);
  const std::uint64_t tx_suppressed = run_with_threshold(1);
  EXPECT_LT(tx_suppressed, tx_plain);
}

TEST(Flooding, OriginNeverRelaysItsOwnPacket) {
  auto tn = make_line_net(3);
  attach_counter1(tn);
  tn.node(0).protocol().send_data(2, 10);
  tn.scheduler.run();
  EXPECT_EQ(flooding_of(tn.node(0)).flood_stats().relayed, 0u);
  EXPECT_EQ(flooding_of(tn.node(0)).flood_stats().originated, 1u);
}

TEST(Flooding, ElectionStatsExposeActivity) {
  auto tn = make_line_net(4);
  attach_counter1(tn);
  tn.node(0).protocol().send_data(3, 10);
  tn.scheduler.run();
  EXPECT_GE(flooding_of(tn.node(1)).election_stats().armed, 1u);
  EXPECT_GE(flooding_of(tn.node(1)).election_stats().won, 1u);
}

// Regression tests for the flooding duplicate cache at small capacity.
// Under the old FIFO-by-insertion eviction, a packet whose duplicates were
// still arriving could be evicted purely by insertion age; a late copy then
// looked fresh (observe() == true) and re-flooded in counter-1 flooding,
// with its duplicate counter silently reset.
TEST(DuplicateCache, ActivelyHeardKeySurvivesCapacityPressure) {
  net::DuplicateCache cache(2);
  EXPECT_TRUE(cache.observe(100));  // the "hot" in-flight packet
  EXPECT_TRUE(cache.observe(200));
  for (std::uint64_t fresh = 300; fresh < 330; ++fresh) {
    EXPECT_FALSE(cache.observe(100)) << "hot key re-flooded at " << fresh;
    EXPECT_TRUE(cache.observe(fresh));  // evicts the coldest key, never 100
    EXPECT_TRUE(cache.seen(100));
  }
  EXPECT_EQ(cache.size(), 2u);
  // Counter continuity: 1 initial + 30 duplicates, never reset by eviction.
  EXPECT_EQ(cache.count(100), 31u);
}

TEST(DuplicateCache, FifoInsertionOrderWouldHaveEvictedHotKey) {
  // The exact interleaving that broke under FIFO: A and B inserted, A heard
  // again (duplicate), then C inserted. FIFO evicted A (oldest insertion);
  // recency-based eviction must evict B.
  net::DuplicateCache cache(2);
  EXPECT_TRUE(cache.observe(1));   // A
  EXPECT_TRUE(cache.observe(2));   // B
  EXPECT_FALSE(cache.observe(1));  // duplicate of A refreshes it
  EXPECT_TRUE(cache.observe(3));   // C: must evict B, not A
  EXPECT_TRUE(cache.seen(1));
  EXPECT_FALSE(cache.seen(2));
  EXPECT_EQ(cache.count(1), 2u);
}

TEST(DuplicateCache, TrulyColdKeyIsEvictedAndLooksFreshAgain) {
  // Pinned behavior of any bounded cache: once a key has genuinely stopped
  // being heard and falls off the end, a very late duplicate is
  // indistinguishable from a new packet and will be treated as fresh.
  net::DuplicateCache cache(2);
  EXPECT_TRUE(cache.observe(1));
  EXPECT_TRUE(cache.observe(2));
  EXPECT_TRUE(cache.observe(3));  // evicts 1 (cold)
  EXPECT_FALSE(cache.seen(1));
  EXPECT_EQ(cache.count(1), 0u);
  EXPECT_TRUE(cache.observe(1));  // late duplicate re-enters as fresh
}

TEST(Flooding, BroadcastToUnreachableTargetDeliversNothing) {
  // Two disconnected clusters.
  std::vector<geom::Vec2> positions{{0, 500}, {200, 500}, {3000, 500},
                                    {3200, 500}};
  TestNet tn(positions, 250.0, geom::Terrain(4000, 1000));
  attach_counter1(tn);
  int deliveries = 0;
  tn.node(3).set_delivery_handler([&](const net::PacketRef&) { ++deliveries; });
  tn.node(0).protocol().send_data(3, 10);
  tn.scheduler.run();
  EXPECT_EQ(deliveries, 0);
}

}  // namespace
}  // namespace rrnet::proto
