#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "util/contracts.hpp"

#include "core/backoff_policy.hpp"
#include "core/election.hpp"
#include "des/scheduler.hpp"

namespace rrnet::core {
namespace {

ElectionContext rssi_ctx(double rssi, double lo = -64.0, double hi = -30.0) {
  ElectionContext ctx;
  ctx.rssi_dbm = rssi;
  ctx.rssi_min_dbm = lo;
  ctx.rssi_max_dbm = hi;
  return ctx;
}

ElectionContext hop_ctx(std::uint32_t table, std::uint32_t expected,
                        bool unknown = false) {
  ElectionContext ctx;
  ctx.hops_table = table;
  ctx.hops_expected = expected;
  ctx.hops_unknown = unknown;
  return ctx;
}

TEST(UniformBackoff, StaysInRange) {
  UniformBackoff policy(0.01);
  des::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double d = policy.delay({}, rng);
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 0.01);
  }
}

TEST(UniformBackoff, RejectsNonPositiveLambda) {
  EXPECT_THROW(UniformBackoff(0.0), rrnet::ContractViolation);
}

TEST(SignalStrengthBackoff, WeakerSignalBacksOffLess) {
  SignalStrengthBackoff policy(0.01, /*jitter_fraction=*/0.0);
  des::Rng rng(2);
  const double d_weak = policy.delay(rssi_ctx(-64.0), rng);
  const double d_mid = policy.delay(rssi_ctx(-47.0), rng);
  const double d_strong = policy.delay(rssi_ctx(-30.0), rng);
  EXPECT_LT(d_weak, d_mid);
  EXPECT_LT(d_mid, d_strong);
  EXPECT_NEAR(d_weak, 0.0, 1e-12);
  EXPECT_NEAR(d_strong, 0.01, 1e-12);
}

TEST(SignalStrengthBackoff, ClampsOutOfRangeRssi) {
  SignalStrengthBackoff policy(0.01, 0.0);
  des::Rng rng(3);
  EXPECT_NEAR(policy.delay(rssi_ctx(-90.0), rng), 0.0, 1e-12);
  EXPECT_NEAR(policy.delay(rssi_ctx(0.0), rng), 0.01, 1e-12);
}

TEST(SignalStrengthBackoff, JitterBoundsRespected) {
  SignalStrengthBackoff policy(0.01, 0.2);
  des::Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    const double d = policy.delay(rssi_ctx(-47.0), rng);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 0.01);
  }
}

TEST(SignalStrengthBackoff, DegenerateSpanFallsBackToMax) {
  SignalStrengthBackoff policy(0.01, 0.0);
  des::Rng rng(5);
  EXPECT_NEAR(policy.delay(rssi_ctx(-50.0, -50.0, -50.0), rng), 0.01, 1e-12);
}

TEST(HopGradientBackoff, PaperBandStructure) {
  const double lambda = 0.002;
  HopGradientBackoff policy(lambda);
  des::Rng rng(6);
  for (int i = 0; i < 500; ++i) {
    // h_table <= h_expected: inside [0, lambda).
    const double fast = policy.delay(hop_ctx(3, 5), rng);
    EXPECT_GE(fast, 0.0);
    EXPECT_LT(fast, lambda);
    // h_table = h_expected + 1: [lambda, 2 lambda) — "larger than lambda".
    const double slow = policy.delay(hop_ctx(6, 5), rng);
    EXPECT_GE(slow, lambda);
    EXPECT_LT(slow, 2 * lambda);
    // Two hops over: next band up.
    const double slower = policy.delay(hop_ctx(7, 5), rng);
    EXPECT_GE(slower, 2 * lambda);
    EXPECT_LT(slower, 3 * lambda);
  }
}

TEST(HopGradientBackoff, UnknownTablePenalized) {
  const double lambda = 0.002;
  HopGradientBackoff policy(lambda, /*unknown_penalty_hops=*/4);
  des::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const double d = policy.delay(hop_ctx(0, 0, /*unknown=*/true), rng);
    EXPECT_GE(d, 4 * lambda);
    EXPECT_LT(d, 5 * lambda);
  }
}

TEST(HopGradientBackoff, EqualHopsCompeteInPriorityBand) {
  HopGradientBackoff policy(0.002);
  des::Rng rng(8);
  const double d = policy.delay(hop_ctx(5, 5), rng);
  EXPECT_LT(d, 0.002);
}

// Property: smaller h_table never has a larger band than larger h_table.
class GradientMonotoneTest
    : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(GradientMonotoneTest, BandsMonotoneInTableHops) {
  const std::uint32_t expected = GetParam();
  HopGradientBackoff policy(0.001);
  des::Rng rng(100 + expected);
  double prev_band_max = 0.001;  // priority band upper bound
  for (std::uint32_t h = expected + 1; h < expected + 6; ++h) {
    const double d = policy.delay(hop_ctx(h, expected), rng);
    EXPECT_GE(d, prev_band_max - 1e-15);
    prev_band_max = 0.001 * static_cast<double>(h - expected + 1);
    EXPECT_LT(d, prev_band_max);
  }
}

INSTANTIATE_TEST_SUITE_P(ExpectedHops, GradientMonotoneTest,
                         ::testing::Values(0u, 1u, 3u, 10u));

TEST(EnergyAwareBackoff, RicherNodesBackOffLess) {
  EnergyAwareBackoff policy(0.01, /*jitter_fraction=*/0.0);
  des::Rng rng(9);
  ElectionContext rich;
  rich.energy_fraction = 1.0;
  ElectionContext half;
  half.energy_fraction = 0.5;
  ElectionContext drained;
  drained.energy_fraction = 0.0;
  EXPECT_NEAR(policy.delay(rich, rng), 0.0, 1e-12);
  EXPECT_NEAR(policy.delay(half, rng), 0.005, 1e-12);
  EXPECT_NEAR(policy.delay(drained, rng), 0.01, 1e-12);
}

TEST(EnergyAwareBackoff, ClampsOutOfRangeEnergy) {
  EnergyAwareBackoff policy(0.01, 0.0);
  des::Rng rng(10);
  ElectionContext overfull;
  overfull.energy_fraction = 1.7;
  ElectionContext negative;
  negative.energy_fraction = -2.0;
  EXPECT_NEAR(policy.delay(overfull, rng), 0.0, 1e-12);
  EXPECT_NEAR(policy.delay(negative, rng), 0.01, 1e-12);
}

TEST(EnergyAwareBackoff, JitterBreaksTiesWithinBounds) {
  EnergyAwareBackoff policy(0.01, 0.3);
  des::Rng rng(11);
  double lo = 1.0, hi = 0.0;
  ElectionContext tie;
  tie.energy_fraction = 0.5;
  for (int i = 0; i < 300; ++i) {
    const double d = policy.delay(tie, rng);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 0.01);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  EXPECT_GT(hi - lo, 0.001);  // the jitter actually spreads the ties
}

TEST(EnergyAwareBackoff, RejectsBadConfig) {
  EXPECT_THROW(EnergyAwareBackoff(0.0), rrnet::ContractViolation);
  EXPECT_THROW(EnergyAwareBackoff(0.01, 1.5), rrnet::ContractViolation);
}

// --- ElectionSession / ElectionTable --------------------------------------

TEST(ElectionSession, WinnerFiresWithDelay) {
  des::Scheduler sched;
  ElectionSession session(sched);
  UniformBackoff policy(0.01);
  des::Rng rng(1);
  double won_delay = -1.0;
  session.arm(policy, {}, rng, [&](des::Time d) { won_delay = d; });
  EXPECT_TRUE(session.armed());
  sched.run();
  EXPECT_GE(won_delay, 0.0);
  EXPECT_LT(won_delay, 0.01);
  EXPECT_DOUBLE_EQ(won_delay, session.delay());
  EXPECT_FALSE(session.armed());
}

TEST(ElectionSession, CancelConcedes) {
  des::Scheduler sched;
  ElectionSession session(sched);
  UniformBackoff policy(0.01);
  des::Rng rng(2);
  bool won = false;
  session.arm(policy, {}, rng, [&](des::Time) { won = true; });
  EXPECT_TRUE(session.cancel());
  EXPECT_FALSE(session.cancel());
  sched.run();
  EXPECT_FALSE(won);
}

TEST(ElectionTable, TracksStatsAcrossOutcomes) {
  des::Scheduler sched;
  ElectionTable table(sched);
  UniformBackoff policy(0.01);
  des::Rng rng(3);
  int wins = 0;
  table.arm(1, policy, {}, rng, [&](des::Time) { ++wins; });
  table.arm(2, policy, {}, rng, [&](des::Time) { ++wins; });
  table.arm(3, policy, {}, rng, [&](des::Time) { ++wins; });
  EXPECT_EQ(table.active_count(), 3u);
  EXPECT_TRUE(table.cancel(2, CancelReason::DuplicateHeard));
  EXPECT_TRUE(table.cancel(3, CancelReason::ArbiterAck));
  EXPECT_FALSE(table.cancel(99, CancelReason::DuplicateHeard));
  sched.run();
  EXPECT_EQ(wins, 1);
  EXPECT_EQ(table.stats().armed, 3u);
  EXPECT_EQ(table.stats().won, 1u);
  EXPECT_EQ(table.stats().cancelled_duplicate, 1u);
  EXPECT_EQ(table.stats().cancelled_ack, 1u);
  EXPECT_EQ(table.active_count(), 0u);
}

TEST(ElectionTable, RearmReplacesPending) {
  des::Scheduler sched;
  ElectionTable table(sched);
  UniformBackoff policy(0.01);
  des::Rng rng(4);
  int first = 0, second = 0;
  table.arm(1, policy, {}, rng, [&](des::Time) { ++first; });
  table.arm(1, policy, {}, rng, [&](des::Time) { ++second; });
  sched.run();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(ElectionTable, WinnerMayRearmFromHandler) {
  des::Scheduler sched;
  ElectionTable table(sched);
  UniformBackoff policy(0.01);
  des::Rng rng(5);
  int rounds = 0;
  // WinHandler is move-only; re-arm through a by-reference trampoline.
  std::function<void(des::Time)> on_win = [&](des::Time) {
    if (++rounds < 3) {
      table.arm(7, policy, {}, rng, [&](des::Time t) { on_win(t); });
    }
  };
  table.arm(7, policy, {}, rng, [&](des::Time t) { on_win(t); });
  sched.run();
  EXPECT_EQ(rounds, 3);
  EXPECT_EQ(table.stats().won, 3u);
}

TEST(ElectionTable, ArmedQuery) {
  des::Scheduler sched;
  ElectionTable table(sched);
  UniformBackoff policy(0.01);
  des::Rng rng(6);
  EXPECT_FALSE(table.armed(5));
  table.arm(5, policy, {}, rng, [](des::Time) {});
  EXPECT_TRUE(table.armed(5));
  sched.run();
  EXPECT_FALSE(table.armed(5));
}

// The core winner-selection property: among N simulated contenders with
// distinct backoffs, the smallest delay wins and the rest would concede on
// hearing it. Modeled here at the election layer (radio-level variants live
// in the protocol tests).
TEST(ElectionTable, SmallestDelayWinsAmongContenders) {
  des::Scheduler sched;
  UniformBackoff policy(0.01);
  std::vector<ElectionTable> tables;
  tables.reserve(8);
  std::vector<des::Rng> rngs;
  for (int i = 0; i < 8; ++i) {
    tables.emplace_back(sched);
    rngs.emplace_back(1000 + i);
  }
  int winner = -1;
  std::vector<double> delays(8, 0.0);
  for (int i = 0; i < 8; ++i) {
    tables[i].arm(42, policy, {}, rngs[i], [&, i](des::Time d) {
      delays[i] = d;
      if (winner == -1) {
        winner = i;
        // The winner's announcement cancels everyone else.
        for (int j = 0; j < 8; ++j) {
          if (j != i) tables[j].cancel(42, CancelReason::DuplicateHeard);
        }
      }
    });
  }
  sched.run();
  ASSERT_NE(winner, -1);
  int fired = 0;
  for (int i = 0; i < 8; ++i) {
    if (delays[i] > 0.0) ++fired;
  }
  EXPECT_EQ(fired, 1);  // exactly one leader
}

}  // namespace
}  // namespace rrnet::core
