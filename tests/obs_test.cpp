// Observability layer: metric registry semantics, histogram flattening,
// tracer ring mechanics, exporter formats, and the end-to-end fig3-style
// capture (metrics invariants + Perfetto-loadable trace file).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "sim/builder.hpp"
#include "sim/replication.hpp"
#include "sim/runner.hpp"

namespace rrnet {
namespace {

namespace m = obs::metric;

TEST(MetricRegistry, CountersAccumulateGaugesMax) {
  obs::MetricRegistry reg;
  EXPECT_TRUE(reg.empty());
  reg.add("a.count", 2);
  reg.add("a.count", 3);
  reg.set_max("a.high_water", 7);
  reg.set_max("a.high_water", 4);  // lower value must not shrink a gauge
  EXPECT_EQ(reg.value("a.count"), 5u);
  EXPECT_EQ(reg.value("a.high_water"), 7u);
  EXPECT_EQ(reg.value("absent"), 0u);
  EXPECT_TRUE(reg.contains("a.count"));
  EXPECT_FALSE(reg.contains("absent"));
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricRegistry, MergeSumsCountersAndMaxesGauges) {
  obs::MetricRegistry a;
  a.add("c", 10);
  a.set_max("g", 5);
  obs::MetricRegistry b;
  b.add("c", 4);
  b.set_max("g", 9);
  b.add("only_b", 1);
  a.merge(b);
  EXPECT_EQ(a.value("c"), 14u);
  EXPECT_EQ(a.value("g"), 9u);
  EXPECT_EQ(a.value("only_b"), 1u);
}

TEST(MetricRegistry, SnapshotIsNameOrdered) {
  obs::MetricRegistry reg;
  reg.add("z.last", 1);
  reg.add("a.first", 1);
  reg.set_max("m.middle", 1);
  const std::vector<obs::Metric> snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a.first");
  EXPECT_EQ(snap[1].name, "m.middle");
  EXPECT_EQ(snap[2].name, "z.last");
  EXPECT_EQ(snap[1].kind, obs::MetricKind::Gauge);
}

TEST(Histogram, ObserveMergeQuantile) {
  obs::Histogram h;
  EXPECT_TRUE(h.empty());
  for (int i = 0; i < 90; ++i) h.observe(1);
  for (int i = 0; i < 10; ++i) h.observe(100);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 90u + 1000u);
  // p50 sits in the zeros-and-ones bucket; p99 must reach the 100s bucket
  // (upper bound 128, power-of-two resolution).
  EXPECT_LE(h.quantile_bound(0.5), 1u);
  EXPECT_GE(h.quantile_bound(0.99), 100u);

  obs::Histogram other;
  other.observe(100);
  h.merge(other);
  EXPECT_EQ(h.count(), 101u);

  obs::MetricRegistry reg;
  h.snapshot_into(reg, "mac.backoff_slots");
  EXPECT_EQ(reg.value("mac.backoff_slots.count"), 101u);
  EXPECT_EQ(reg.value("mac.backoff_slots.sum"), 1190u);
  EXPECT_TRUE(reg.contains("mac.backoff_slots.p50"));
  EXPECT_TRUE(reg.contains("mac.backoff_slots.p99"));
}

TEST(EventTracer, RingWrapsKeepingNewestRecords) {
  obs::EventTracer tracer(4);
  EXPECT_EQ(tracer.capacity(), 4u);
  // Disabled by default: records are refused.
  tracer.record(obs::EventKind::NetSend, 0.0, 1, 1);
  EXPECT_EQ(tracer.recorded(), 0u);

  tracer.set_enabled(true);
  for (std::uint64_t i = 0; i < 6; ++i) {
    tracer.record(obs::EventKind::NetSend, static_cast<double>(i), 1, i);
  }
  EXPECT_EQ(tracer.recorded(), 6u);
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 2u);
  const std::vector<obs::TraceRecord> snap = tracer.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  // Oldest-first, and the two oldest records (ids 0, 1) were overwritten.
  EXPECT_EQ(snap.front().id, 2u);
  EXPECT_EQ(snap.back().id, 5u);

  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(EventTracer, ThreadTracerInstallRestore) {
  obs::EventTracer* before = obs::thread_tracer();
  obs::EventTracer tracer(8);
  obs::EventTracer* prev = obs::set_thread_tracer(&tracer);
  EXPECT_EQ(prev, before);
  EXPECT_EQ(obs::thread_tracer(), &tracer);
  obs::set_thread_tracer(prev);
  EXPECT_EQ(obs::thread_tracer(), before);
}

TEST(EventTracer, JsonlExportOneObjectPerLine) {
  obs::EventTracer tracer(8);
  tracer.set_enabled(true);
  tracer.record(obs::EventKind::NetSend, 1.5, 3, 42, 0);
  tracer.record(obs::EventKind::PhyDrop, 2.0, 4, 43,
                static_cast<std::uint16_t>(obs::DropReason::Collision));
  std::ostringstream os;
  ASSERT_TRUE(tracer.export_jsonl(os));
  const std::string text = os.str();
  std::istringstream lines(text);
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ++n;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(n, 2u);
  EXPECT_NE(text.find("\"kind\":\"net_send\""), std::string::npos);
  EXPECT_NE(text.find("\"reason\":\"collision\""), std::string::npos);
}

TEST(EventTracer, ChromeExportShapesInstantsAndSpans) {
  obs::EventTracer tracer(8);
  tracer.set_enabled(true);
  tracer.record(obs::EventKind::PhyRxDecoded, 0.25, 7, 99);
  tracer.record(obs::EventKind::HandlerSpan, 0.5, obs::kNoTraceNode,
                /*wall ns=*/1500);
  std::ostringstream os;
  ASSERT_TRUE(tracer.export_chrome_trace(os));
  const std::string text = os.str();
  EXPECT_EQ(text.rfind("{\"traceEvents\":[", 0), 0u);  // starts with
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  // Simulated seconds scale to microseconds on the trace timeline.
  EXPECT_NE(text.find("\"ts\":250000"), std::string::npos);
  // Packet instants land on pid 0 with tid = node id.
  EXPECT_NE(text.find("\"tid\":7"), std::string::npos);
}

sim::ScenarioConfig fig3_style_config() {
  sim::ScenarioConfig config;
  config.seed = 11;
  config.nodes = 30;
  config.width_m = 600.0;
  config.height_m = 600.0;
  config.range_m = 250.0;
  config.protocol = sim::ProtocolKind::Routeless;
  config.pairs = 2;
  config.cbr_interval = 1.0;
  config.payload_bytes = 128;
  config.traffic_start = 1.0;
  config.traffic_stop = 8.0;
  config.sim_end = 15.0;
  return config;
}

TEST(ObsIntegration, ScenarioMetricsSatisfyPhyInvariant) {
  const sim::ScenarioResult r = sim::run_scenario(fig3_style_config());
  const obs::MetricRegistry& reg = r.metrics;
  EXPECT_FALSE(reg.empty());

  // Conservation at the PHY: every signal arrival is decoded or accounted to
  // exactly one drop reason — including decodes aborted by a radio turning
  // off — so rx + drops must equal potential receptions exactly, with zero
  // unexplained arrivals.
  const std::uint64_t arrived = reg.value(m::kPhySignalsArrived);
  const std::uint64_t accounted =
      reg.value(m::kPhyRxDecoded) + reg.value(m::kPhyDropCollision) +
      reg.value(m::kPhyDropRxWhileBusy) +
      reg.value(m::kPhyDropBelowSensitivity) +
      reg.value(m::kPhyDropWhileOff) + reg.value(m::kPhyDropAbortedOff);
  EXPECT_GT(arrived, 0u);
  EXPECT_EQ(accounted, arrived);

  // Cross-layer consistency with the classic ScenarioResult fields.
  EXPECT_EQ(reg.value(m::kDesEventsExecuted), r.events_executed);
  // net.delivered counts every app handoff (duplicate copies included);
  // FlowStats dedups by uid, so it can only be lower.
  EXPECT_GE(reg.value(m::kNetDelivered), r.delivered);
  EXPECT_GT(reg.value(m::kNetTxData), 0u);
  EXPECT_GT(reg.value(m::kNetTxControl), 0u);  // routeless sends acks
  EXPECT_GT(reg.value(m::kElectionArmed), 0u);
  EXPECT_GE(reg.value(m::kElectionArmed), reg.value(m::kElectionWon));
  EXPECT_GT(reg.value(m::kDesHeapHighWater), 0u);
  EXPECT_GT(reg.value(m::kPoolPacketAllocs), 0u);
}

// Same conservation law under the Figure-4 failure model: radios cycling
// off mid-decode must account those receptions as aborted drops, not lose
// them (phy.drop_aborted_off is the counter the equality rests on).
TEST(ObsIntegration, PhyInvariantHoldsExactlyUnderRadioFailures) {
  sim::ScenarioConfig config = fig3_style_config();
  config.failure_fraction = 0.5;
  config.failure_cycle_s = 0.5;  // flip radios often enough to cut decodes
  const sim::ScenarioResult r = sim::run_scenario(config);
  const obs::MetricRegistry& reg = r.metrics;
  const std::uint64_t arrived = reg.value(m::kPhySignalsArrived);
  const std::uint64_t accounted =
      reg.value(m::kPhyRxDecoded) + reg.value(m::kPhyDropCollision) +
      reg.value(m::kPhyDropRxWhileBusy) +
      reg.value(m::kPhyDropBelowSensitivity) +
      reg.value(m::kPhyDropWhileOff) + reg.value(m::kPhyDropAbortedOff);
  EXPECT_GT(arrived, 0u);
  EXPECT_EQ(accounted, arrived);
  EXPECT_GT(reg.value(m::kPhyDropWhileOff), 0u);
}

TEST(ObsIntegration, ScenarioMetricsDeterministicAcrossRuns) {
  const sim::ScenarioResult a = sim::run_scenario(fig3_style_config());
  const sim::ScenarioResult b = sim::run_scenario(fig3_style_config());
  const std::vector<obs::Metric> sa = a.metrics.snapshot();
  const std::vector<obs::Metric> sb = b.metrics.snapshot();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].name, sb[i].name);
    EXPECT_EQ(sa[i].value, sb[i].value) << sa[i].name;
  }
}

TEST(ObsIntegration, ReplicationMergeIsThreadCountIndependent) {
  const sim::ScenarioConfig base = fig3_style_config();
  const sim::Aggregated serial = sim::run_replications(base, 4, /*threads=*/1);
  const sim::Aggregated parallel =
      sim::run_replications(base, 4, /*threads=*/4);
  const std::vector<obs::Metric> ss = serial.metrics.snapshot();
  const std::vector<obs::Metric> ps = parallel.metrics.snapshot();
  ASSERT_EQ(ss.size(), ps.size());
  for (std::size_t i = 0; i < ss.size(); ++i) {
    EXPECT_EQ(ss[i].name, ps[i].name);
    EXPECT_EQ(ss[i].value, ps[i].value) << ss[i].name;
  }
}

TEST(ObsIntegration, TraceCaptureExportsChromeTrace) {
  sim::ScenarioConfig config = fig3_style_config();
  config.trace_events = true;
  config.trace_capacity = 1u << 16;
  sim::SimInstance sim(config);
  ASSERT_NE(sim.tracer(), nullptr);
  EXPECT_TRUE(sim.tracer()->enabled());
  sim.run();
  const sim::ScenarioResult r = sim.result();
  EXPECT_GT(r.events_executed, 0u);

  if (obs::trace_compiled_in()) {
    // With RRNET_TRACE compiled in, a fig3-style run must produce a rich
    // packet-lifecycle trace.
    EXPECT_GT(sim.tracer()->recorded(), 0u);
    bool saw_send = false;
    bool saw_decode = false;
    for (const obs::TraceRecord& rec : sim.tracer()->snapshot()) {
      const auto kind = static_cast<obs::EventKind>(rec.kind);
      saw_send = saw_send || kind == obs::EventKind::NetSend;
      saw_decode = saw_decode || kind == obs::EventKind::PhyRxDecoded;
    }
    EXPECT_TRUE(saw_send);
    EXPECT_TRUE(saw_decode);
  } else {
    // Compiled out: the ring exists but no call site feeds it.
    EXPECT_EQ(sim.tracer()->recorded(), 0u);
  }

  // The exporter must produce a Perfetto-loadable file in either build.
  const std::string path = ::testing::TempDir() + "rrnet_obs_trace.json";
  ASSERT_TRUE(sim.tracer()->export_chrome_trace_file(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string head;
  std::getline(in, head);
  EXPECT_EQ(head, "{\"traceEvents\":[");
  std::remove(path.c_str());
}

TEST(EventTracer, MultiRingMergeStaysOrderedWithExactDrops) {
  // Two worker rings wrapping at different rates, fed interleaved
  // increasing timestamps of the kinds the runtime profiler emits. The
  // merged stream must stay timestamp-ordered (stable across rings for
  // equal times) and each ring's dropped() must be exact.
  obs::EventTracer small(8);
  obs::EventTracer large(64);
  small.set_enabled(true);
  large.set_enabled(true);
  for (std::uint64_t i = 0; i < 40; ++i) {
    const double t = static_cast<double>(i) * 1e-3;
    small.record(obs::EventKind::WindowSpan, t, /*node=*/0, /*id=*/i * 10);
    if (i % 2 == 0) {
      large.record(obs::EventKind::BarrierWait, t, 1, i * 7);
    }
    large.record(obs::EventKind::HandlerSpan, t, obs::kNoTraceNode, i);
  }
  EXPECT_EQ(small.recorded(), 40u);
  EXPECT_EQ(small.size(), 8u);
  EXPECT_EQ(small.dropped(), 32u);
  EXPECT_EQ(large.recorded(), 60u);
  EXPECT_EQ(large.size(), 60u);
  EXPECT_EQ(large.dropped(), 0u);

  const std::vector<obs::TraceRecord> merged =
      obs::merge_records_by_time({small.snapshot(), large.snapshot()});
  ASSERT_EQ(merged.size(), small.size() + large.size());
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merged[i - 1].time, merged[i].time);
  }
  // Stability: at any shared timestamp the first ring's survivor precedes
  // the second ring's records (concatenation order under stable_sort).
  const double last_t = static_cast<double>(39) * 1e-3;
  const auto it = std::find_if(merged.begin(), merged.end(),
                               [&](const obs::TraceRecord& r) {
                                 return r.time == last_t;
                               });
  ASSERT_NE(it, merged.end());
  EXPECT_EQ(it->kind, static_cast<std::uint16_t>(obs::EventKind::WindowSpan));

  // The new kinds render as pid-2 duration spans in the Chrome export.
  std::ostringstream chrome;
  ASSERT_TRUE(obs::export_records_chrome_trace(merged, chrome));
  const std::string out = chrome.str();
  EXPECT_NE(out.find("\"name\":\"window\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"barrier_wait\""), std::string::npos);
  EXPECT_NE(out.find("\"pid\":2"), std::string::npos);
}

TEST(RuntimeProfiler, SnapshotFlattensPhasesAndHistograms) {
  obs::RuntimeProfiler profiler(2);
  obs::WorkerProfile& w0 = profiler.worker(0);
  w0.phase_ns[0] = 800;
  w0.phase_ns[1] = 150;
  w0.phase_ns[2] = 50;
  w0.rounds = 10;
  w0.exchange_rounds = 4;
  w0.forced_quiet_exchanges = 1;
  w0.handoffs_out = 12;
  w0.bound_source[0] = 7;
  w0.bound_source[2] = 3;
  w0.window_width_ns.observe(4000);
  obs::WorkerProfile& w1 = profiler.worker(1);
  w1.phase_ns[0] = 200;
  w1.phase_ns[1] = 700;
  w1.phase_ns[2] = 100;
  w1.rounds = 10;  // replicated across workers -> gauge, not 2x counter
  w1.exchange_rounds = 4;
  w1.handoffs_out = 3;

  obs::MetricRegistry reg;
  profiler.snapshot_into(reg);
  EXPECT_EQ(reg.value(m::kRuntimeExecuteNs), 1000u);
  EXPECT_EQ(reg.value(m::kRuntimeBarrierWaitNs), 850u);
  EXPECT_EQ(reg.value(m::kRuntimeExchangeNs), 150u);
  EXPECT_EQ(reg.value(m::kShardRounds), 10u);
  EXPECT_EQ(reg.value(m::kShardExchangeRounds), 4u);
  EXPECT_EQ(reg.value(m::kShardHandoffs), 15u);
  EXPECT_EQ(reg.value(m::kShardBoundArmedTx), 7u);
  EXPECT_EQ(reg.value(m::kShardBoundNextEvent), 3u);
  // 850 of 2000 total ns -> 42%; per-worker: w0 15%, w1 70%.
  EXPECT_EQ(reg.value(m::kRuntimeBarrierWaitPct), 42u);
  EXPECT_EQ(reg.value("runtime.w0.barrier_wait_pct"), 15u);
  EXPECT_EQ(reg.value("runtime.w1.barrier_wait_pct"), 70u);
  EXPECT_TRUE(reg.contains("shard.window_width_ns.count"));
  EXPECT_EQ(reg.value("shard.window_width_ns.sum"), 4000u);
}

TEST(RunHealthMonitor, WritesParseableReportAndEnforcesRssBudget) {
  obs::RunHealthMonitor::Config config;
  config.rss_budget_mib = 0.001;  // any live process exceeds this
  config.sample_period_s = 0.0;   // sample on every checkpoint
  obs::RunHealthMonitor monitor(config);
  monitor.begin_run();
  EXPECT_FALSE(monitor.checkpoint(1000));
  EXPECT_TRUE(monitor.budget_exceeded());
  EXPECT_NE(monitor.abort_reason().find("rss"), std::string::npos);
  monitor.finish_run(1000);
  EXPECT_EQ(monitor.events(), 1000u);
  EXPECT_GT(monitor.peak_rss_mib(), 0.0);
  EXPECT_GE(monitor.samples().size(), 2u);
  EXPECT_DOUBLE_EQ(monitor.min_phase_coverage(), 1.0);  // no profile noted

  const std::string path = ::testing::TempDir() + "rrnet_run_report.json";
  ASSERT_TRUE(monitor.write_report_json(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"schema\": \"rrnet-run-report-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"aborted\": true"), std::string::npos);
  EXPECT_NE(json.find("\"throughput\": ["), std::string::npos);
  // No profile was noted, so no phases object (and no NaN anywhere).
  EXPECT_EQ(json.find("\"phases\""), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rrnet
