// Quickstart: simulate Routeless Routing on a random sensor network.
//
// Builds a 100-node network on a 1000x1000 m terrain, runs three CBR flows
// for 20 simulated seconds, and prints the headline metrics. This is the
// highest-level entry point of the library: describe the scenario, run it,
// read the results.
//
//   ./quickstart [--seed N] [--protocol rr|aodv|ssaf|counter1]
#include <cstdio>
#include <string>

#include "sim/runner.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace rrnet;
  const util::Flags flags(argc, argv);

  sim::ScenarioConfig config;
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  config.nodes = 100;
  config.width_m = 1000.0;
  config.height_m = 1000.0;
  config.range_m = 250.0;  // tx power is calibrated automatically
  config.pairs = 3;
  config.bidirectional = true;
  config.cbr_interval = 1.0;
  config.payload_bytes = 256;
  config.traffic_start = 1.0;
  config.traffic_stop = 16.0;
  config.sim_end = 20.0;

  const std::string name = flags.get_string("protocol", "rr");
  if (name == "rr") {
    config.protocol = sim::ProtocolKind::Routeless;
  } else if (name == "aodv") {
    config.protocol = sim::ProtocolKind::Aodv;
    config.aodv.discovery = proto::RreqFlooding::Dedup;
  } else if (name == "ssaf") {
    config.protocol = sim::ProtocolKind::Ssaf;
  } else if (name == "counter1") {
    config.protocol = sim::ProtocolKind::Counter1Flooding;
  } else {
    std::fprintf(stderr, "unknown --protocol %s\n", name.c_str());
    return 1;
  }

  std::printf("rrnet quickstart: %zu nodes, %zu bidirectional CBR pairs, "
              "protocol = %s\n",
              config.nodes, config.pairs, sim::to_string(config.protocol));

  const sim::ScenarioResult result = sim::run_scenario(config);

  std::printf("\n  packets sent       : %llu\n",
              static_cast<unsigned long long>(result.sent));
  std::printf("  packets delivered  : %llu\n",
              static_cast<unsigned long long>(result.delivered));
  std::printf("  delivery ratio     : %.3f\n", result.delivery_ratio);
  std::printf("  mean e2e delay     : %.1f ms\n", result.mean_delay_s * 1e3);
  std::printf("  mean hops          : %.2f\n", result.mean_hops);
  std::printf("  MAC transmissions  : %llu\n",
              static_cast<unsigned long long>(result.mac_packets));
  std::printf("  simulator events   : %llu\n",
              static_cast<unsigned long long>(result.events_executed));
  return 0;
}
