// Routeless Routing's headline property (§4.2): seamless failover.
//
// A CBR flow runs across a network; halfway through, we kill the radio of
// every node that has been relaying the flow's packets. A route-keeping
// protocol would have to detect the break, tear down state and re-discover;
// Routeless Routing simply elects different leaders for the very next
// packet. The demo prints the delivery log and which relays carried each
// packet before and after the failure.
#include <cstdio>
#include <memory>
#include <set>

#include "sim/builder.hpp"

using namespace rrnet;

int main() {
  sim::ScenarioConfig config;
  config.seed = 21;
  config.nodes = 120;
  config.width_m = 1200.0;
  config.height_m = 1200.0;
  config.range_m = 250.0;
  config.protocol = sim::ProtocolKind::Routeless;
  config.explicit_pairs = {{0, 1}};
  config.cbr_interval = 1.0;
  config.payload_bytes = 128;
  config.traffic_start = 1.0;
  config.traffic_stop = 25.0;
  config.sim_end = 30.0;
  config.trace_paths = true;

  // Pick the two most separated nodes as endpoints so the flow needs
  // several relays. Placement is deterministic per seed, so a probe
  // instance sees the same layout the real run will.
  std::uint32_t src = 0, dst = 1;
  {
    sim::SimInstance probe(config);
    double best = 0.0;
    net::Network& network = probe.network();
    for (std::uint32_t i = 0; i < network.size(); ++i) {
      for (std::uint32_t j = i + 1; j < network.size(); ++j) {
        const double d = geom::distance(network.channel().position(i),
                                        network.channel().position(j));
        if (d > best) {
          best = d;
          src = i;
          dst = j;
        }
      }
    }
  }
  config.explicit_pairs = {{src, dst}};
  sim::SimInstance sim(config);
  const double separation = geom::distance(
      sim.network().channel().position(src),
      sim.network().channel().position(dst));
  std::printf("flow %u -> %u, endpoint separation %.0f m (~%d hops)\n", src,
              dst, separation, static_cast<int>(separation / 250.0) + 1);

  int delivered = 0;
  sim.network().node(dst).set_delivery_handler([&](const net::PacketRef& packet) {
    ++delivered;
    std::printf("  t=%5.2f s  packet #%-2u delivered after %u hops\n",
                sim.scheduler().now(), packet.sequence(), packet.actual_hops());
  });

  // Phase 1: let the flow establish itself.
  sim.run_until(12.0);
  // Collect the relay chain of the most recent delivered packet — the
  // "route" a route-keeping protocol would have installed.
  std::set<std::uint32_t> relays_used;
  const trace::PacketPath* latest = nullptr;
  for (const auto& [uid, path] : sim.path_trace()->paths()) {
    if (!path.delivered) continue;
    if (latest == nullptr || path.delivered_at > latest->delivered_at) {
      latest = &path;
    }
  }
  if (latest != nullptr) {
    for (const auto& hop : latest->hops) {
      if (hop.node != src && hop.node != dst) relays_used.insert(hop.node);
    }
  }
  std::printf("\n>>> t=12 s: killing the %zu relays that carried the latest packet:",
              relays_used.size());
  for (const std::uint32_t node : relays_used) {
    std::printf(" %u", node);
    sim.network().channel().transceiver(node).turn_off();
  }
  std::printf("\n    (no route repair, no control packets — the next data\n"
              "     packet simply elects different leaders)\n\n");

  // Phase 2: the flow continues over fresh relays.
  const int delivered_before = delivered;
  sim.run();
  std::printf("\ndelivered %d packets before the failure, %d after — ",
              delivered_before, delivered - delivered_before);
  std::printf("%s\n", delivered > delivered_before
                          ? "the flow survived without any route maintenance"
                          : "the flow did NOT survive (unexpected)");

  // Show which relays carried traffic after the failure.
  std::set<std::uint32_t> relays_after;
  for (const auto& [uid, path] : sim.path_trace()->paths()) {
    if (path.hops.empty() || path.hops.front().time < 12.0) continue;
    for (const auto& hop : path.hops) {
      if (hop.node != src && hop.node != dst &&
          relays_used.count(hop.node) == 0) {
        relays_after.insert(hop.node);
      }
    }
  }
  std::printf("fresh relays elected after the failure: %zu distinct nodes\n",
              relays_after.size());
  return 0;
}
