// SSAF vs counter-1 flooding on one broadcast (§3), hop by hop.
//
// A source floods a packet across a 60-node network twice — once with
// counter-1 flooding (uniform random backoff, every node relays) and once
// with SSAF (signal-strength backoff + leader-election suppression). The
// demo prints the relay timeline of each and compares transmissions, hops,
// and latency at the far-corner destination.
#include <cstdio>
#include <memory>
#include <vector>

#include "geom/placement.hpp"
#include "net/network.hpp"
#include "proto/ssaf.hpp"

using namespace rrnet;

namespace {

struct FloodOutcome {
  int transmissions = 0;
  int delivered_hops = -1;
  double delivered_at = -1.0;
};

FloodOutcome run_flood(bool ssaf, std::uint64_t seed, bool verbose) {
  const geom::Terrain terrain(1000.0, 1000.0);
  des::Rng placement(seed);
  auto positions = geom::place_uniform(terrain, 60, placement);
  positions[0] = {40.0, 40.0};    // source, bottom-left
  positions[59] = {960.0, 960.0}; // destination, top-right

  phy::FreeSpace for_power;
  phy::RadioParams radio;
  radio.tx_power_dbm =
      phy::tx_power_for_range(for_power, 250.0, radio.rx_threshold_dbm);
  des::Scheduler scheduler;
  net::Network network(scheduler, terrain, std::make_unique<phy::FreeSpace>(),
                       radio, mac::MacParams{}, positions, des::Rng(seed));
  for (std::uint32_t i = 0; i < network.size(); ++i) {
    if (ssaf) {
      network.node(i).set_protocol(proto::make_ssaf(network.node(i)));
    } else {
      network.node(i).set_protocol(
          proto::make_counter1_flooding(network.node(i)));
    }
  }
  network.start_protocols();

  FloodOutcome outcome;
  struct Obs : net::PacketObserver {
    FloodOutcome* out;
    net::Network* net_;
    bool verbose;
    void on_network_tx(std::uint32_t node, const net::PacketRef& packet) override {
      if (packet.type() != net::PacketType::Data) return;
      ++out->transmissions;
      if (verbose && out->transmissions <= 12) {
        const geom::Vec2 p = net_->channel().position(node);
        std::printf("    t=%6.2f ms  node %-3u relays (hops=%u) at "
                    "(%4.0f, %4.0f)\n",
                    net_->scheduler().now() * 1e3, node, packet.actual_hops(),
                    p.x, p.y);
      }
    }
  } observer;
  observer.out = &outcome;
  observer.net_ = &network;
  observer.verbose = verbose;
  network.add_observer(&observer);

  network.node(59).set_delivery_handler([&](const net::PacketRef& packet) {
    outcome.delivered_hops = packet.actual_hops();
    outcome.delivered_at = scheduler.now();
  });
  network.node(0).protocol().send_data(59, 64);
  scheduler.run_until(5.0);
  return outcome;
}

}  // namespace

int main() {
  constexpr std::uint64_t kSeed = 11;
  std::printf("flooding one 64-byte packet corner-to-corner across 60 "
              "nodes\n");

  std::printf("\n=== counter-1 flooding (every node relays once) ===\n");
  const FloodOutcome counter1 = run_flood(false, kSeed, true);
  std::printf("  ... (%d total transmissions)\n", counter1.transmissions);

  std::printf("\n=== SSAF (far receivers relay first; overheard relays "
              "suppress) ===\n");
  const FloodOutcome ssaf = run_flood(true, kSeed, true);
  std::printf("  ... (%d total transmissions)\n", ssaf.transmissions);

  std::printf("\n%-28s %12s %12s\n", "", "counter-1", "SSAF");
  std::printf("%-28s %12d %12d\n", "data transmissions",
              counter1.transmissions, ssaf.transmissions);
  std::printf("%-28s %12d %12d\n", "hops at destination",
              counter1.delivered_hops, ssaf.delivered_hops);
  std::printf("%-28s %11.1fms %11.1fms\n", "delivery latency",
              counter1.delivered_at * 1e3, ssaf.delivered_at * 1e3);
  return 0;
}
