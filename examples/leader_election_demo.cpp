// The local leader election operator, stripped to its essentials (§2).
//
// One "synchronization" node broadcasts a packet; its neighbors compete to
// become the relay leader using three different backoff policies. The demo
// prints who won, with what backoff, and then demonstrates the arbiter:
// when the winning announcement is jammed away, the arbiter re-triggers the
// election until a leader emerges.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/arbiter.hpp"
#include "core/backoff_policy.hpp"
#include "core/election.hpp"
#include "des/scheduler.hpp"

using namespace rrnet;

namespace {

/// A candidate in the neighborhood: id, distance from the sync node (m),
/// and hop distance to some routing target.
struct Candidate {
  int id;
  double distance_m;
  std::uint32_t hops_to_target;
};

void run_election(const char* title, const core::BackoffPolicy& policy,
                  const std::vector<Candidate>& candidates,
                  std::uint32_t expected_hops) {
  std::printf("\n--- %s ---\n", title);
  des::Scheduler scheduler;
  std::vector<core::ElectionTable> tables;
  std::vector<des::Rng> rngs;
  tables.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    tables.emplace_back(scheduler);
    rngs.emplace_back(100 + i);
  }
  // RSSI falls with distance (free-space-ish synthetic mapping for demo).
  constexpr double kRssiNear = -40.0, kRssiFar = -64.0;
  int winner = -1;
  constexpr std::uint64_t kKey = 1;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    core::ElectionContext ctx;
    ctx.rssi_dbm = kRssiNear + (kRssiFar - kRssiNear) *
                                   (candidates[i].distance_m / 250.0);
    ctx.rssi_min_dbm = kRssiFar;
    ctx.rssi_max_dbm = kRssiNear;
    ctx.hops_table = candidates[i].hops_to_target;
    ctx.hops_expected = expected_hops;
    tables[i].arm(kKey, policy, ctx, rngs[i], [&, i](des::Time delay) {
      if (winner == -1) {
        winner = candidates[i].id;
        std::printf("  leader: node %d (%.0f m out, %u hops to target), "
                    "backoff %.2f ms\n",
                    candidates[i].id, candidates[i].distance_m,
                    candidates[i].hops_to_target, delay * 1e3);
        // The announcement reaches everyone: the rest concede.
        for (std::size_t j = 0; j < candidates.size(); ++j) {
          if (j != i) tables[j].cancel(kKey, core::CancelReason::DuplicateHeard);
        }
      }
    });
  }
  scheduler.run();
}

}  // namespace

int main() {
  const std::vector<Candidate> candidates = {
      {1, 40.0, 6}, {2, 120.0, 5}, {3, 190.0, 3}, {4, 240.0, 4},
  };
  std::printf("four candidates heard the same transmission — the implicit\n"
              "synchronization point — and compete to relay it.\n");

  run_election("uniform random backoff (classic CSMA: leader is arbitrary)",
               core::UniformBackoff(10e-3), candidates, 4);
  run_election("signal-strength backoff (SSAF: farthest node wins)",
               core::SignalStrengthBackoff(10e-3, 0.0), candidates, 4);
  // With expected_hops = 3, only the node already 3 hops from the target
  // competes in the priority band; everyone else is pushed beyond lambda.
  run_election("hop-gradient backoff (Routeless Routing: closest to target)",
               core::HopGradientBackoff(10e-3), candidates, 3);

  // --- the arbiter: guaranteed leadership ---------------------------------
  std::printf("\n--- arbiter: no announcement heard -> retransmit ---\n");
  des::Scheduler scheduler;
  core::Arbiter arbiter(scheduler, core::ArbiterConfig{20e-3, 3});
  int retriggers = 0;
  arbiter.watch(1, core::Arbiter::Callbacks{
      [&]() {
        ++retriggers;
        std::printf("  t=%.0f ms: silence — arbiter retransmits "
                    "(attempt %d)\n",
                    scheduler.now() * 1e3, retriggers);
        if (retriggers == 2) {
          // This time the relay gets through; the arbiter acknowledges.
          scheduler.schedule_in(5e-3, [&]() { arbiter.relay_heard(1); });
        }
      },
      [&]() {
        std::printf("  t=%.0f ms: relay heard — arbiter broadcasts the "
                    "acknowledgement; election settled\n",
                    scheduler.now() * 1e3);
      }});
  scheduler.run();
  std::printf("\n(election retries used: %llu, relays acknowledged: %llu)\n",
              static_cast<unsigned long long>(arbiter.stats().retransmits),
              static_cast<unsigned long long>(arbiter.stats().relays_heard));
  return 0;
}
