// General-purpose scenario driver: every knob of the simulator on the
// command line. The "I just want to run an experiment" tool.
//
//   ./simulate --protocol rr --nodes 500 --width 2000 --height 2000
//              --pairs 10 --interval 2 --bidirectional --reps 3
//
// Protocols: rr | aodv | ssaf | counter1 | blind | gradient
// Propagation: freespace | tworay | logdistance | rayleigh | shadowing
#include <cstdio>
#include <string>

#include "sim/replication.hpp"
#include "sim/runner.hpp"
#include "util/flags.hpp"

using namespace rrnet;

namespace {

bool parse_protocol(const std::string& name, sim::ScenarioConfig& config) {
  if (name == "rr") {
    config.protocol = sim::ProtocolKind::Routeless;
  } else if (name == "aodv") {
    config.protocol = sim::ProtocolKind::Aodv;
    config.aodv.discovery = proto::RreqFlooding::Dedup;
  } else if (name == "ssaf") {
    config.protocol = sim::ProtocolKind::Ssaf;
  } else if (name == "counter1") {
    config.protocol = sim::ProtocolKind::Counter1Flooding;
  } else if (name == "blind") {
    config.protocol = sim::ProtocolKind::BlindFlooding;
  } else if (name == "gradient") {
    config.protocol = sim::ProtocolKind::Gradient;
  } else if (name == "dsdv") {
    config.protocol = sim::ProtocolKind::Dsdv;
  } else if (name == "dsr") {
    config.protocol = sim::ProtocolKind::Dsr;
  } else {
    return false;
  }
  return true;
}

bool parse_propagation(const std::string& name, sim::ScenarioConfig& config) {
  if (name == "freespace") {
    config.propagation = sim::PropagationKind::FreeSpace;
  } else if (name == "tworay") {
    config.propagation = sim::PropagationKind::TwoRay;
  } else if (name == "logdistance") {
    config.propagation = sim::PropagationKind::LogDistance;
  } else if (name == "rayleigh") {
    config.propagation = sim::PropagationKind::Rayleigh;
  } else if (name == "shadowing") {
    config.propagation = sim::PropagationKind::Shadowing;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  if (flags.get_bool("help", false)) {
    std::printf(
        "usage: simulate [options]\n"
        "  --protocol rr|aodv|ssaf|counter1|blind|gradient|dsdv|dsr  (default rr)\n"
        "  --propagation freespace|tworay|logdistance|rayleigh|shadowing\n"
        "  --nodes N --width M --height M --range M\n"
        "  --pairs N --bidirectional --interval S --payload BYTES\n"
        "  --duration S (traffic window) --seed N --reps N\n"
        "  --failures PCT --mobility --speed MPS --energy\n"
        "  --lambda MS (RR election backoff)\n");
    return 0;
  }

  sim::ScenarioConfig config;
  config.protocol = sim::ProtocolKind::Routeless;
  config.aodv.discovery = proto::RreqFlooding::Dedup;
  if (!parse_protocol(flags.get_string("protocol", "rr"), config)) {
    std::fprintf(stderr, "unknown protocol\n");
    return 1;
  }
  if (!parse_propagation(flags.get_string("propagation", "freespace"),
                         config)) {
    std::fprintf(stderr, "unknown propagation model\n");
    return 1;
  }
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  config.nodes = static_cast<std::size_t>(flags.get_int("nodes", 100));
  config.width_m = flags.get_double("width", 1000.0);
  config.height_m = flags.get_double("height", 1000.0);
  config.range_m = flags.get_double("range", 250.0);
  config.pairs = static_cast<std::size_t>(flags.get_int("pairs", 3));
  config.bidirectional = flags.get_bool("bidirectional", false);
  config.cbr_interval = flags.get_double("interval", 1.0);
  config.payload_bytes =
      static_cast<std::uint32_t>(flags.get_int("payload", 256));
  const double duration = flags.get_double("duration", 20.0);
  config.traffic_start = 1.0;
  config.traffic_stop = 1.0 + duration;
  config.sim_end = config.traffic_stop + 8.0;
  config.failure_fraction = flags.get_double("failures", 0.0) / 100.0;
  config.mobility = flags.get_bool("mobility", false);
  config.mobility_max_speed_mps = flags.get_double("speed", 5.0);
  config.track_energy = flags.get_bool("energy", false);
  if (flags.has("lambda")) {
    config.routeless.lambda = flags.get_double("lambda", 50.0) * 1e-3;
    config.routeless.arbiter.relay_timeout =
        10.0 * config.routeless.lambda + 50e-3;
  }

  const auto reps = static_cast<std::size_t>(flags.get_int("reps", 1));
  std::printf("simulating %s: %zu nodes, %.0fx%.0f m, %zu pairs%s, "
              "interval %.2g s, %zu replication(s)\n",
              sim::to_string(config.protocol), config.nodes, config.width_m,
              config.height_m, config.pairs,
              config.bidirectional ? " (bidirectional)" : "",
              config.cbr_interval, reps);

  const sim::Aggregated agg = sim::run_replications(config, reps);
  std::printf("\n  delivery ratio   : %.4f  (± %.4f)\n",
              agg.delivery_ratio.mean, agg.delivery_ratio.ci95);
  std::printf("  mean delay       : %.1f ms\n", agg.delay_s.mean * 1e3);
  std::printf("  mean hops        : %.2f\n", agg.hops.mean);
  std::printf("  MAC packets      : %.0f\n", agg.mac_packets.mean);
  std::printf("  MAC per delivered: %.1f\n", agg.mac_per_delivered.mean);
  if (config.track_energy) {
    sim::ScenarioConfig one = config;
    const sim::ScenarioResult r = sim::run_scenario(one);
    std::printf("  energy           : %.2f J total, %.4f J per delivered\n",
                r.total_energy_j, r.energy_per_delivered_j);
  }
  return 0;
}
