// Render a Figure-2-style path map: where do Routeless Routing packets
// actually travel, and how does a congesting cross flow bend them?
//
// Writes two PGM images (viewable with any image tool) plus ASCII art.
//
//   ./congestion_map [--seed N] [--out-prefix PATH]
#include <cstdio>
#include <string>

#include "sim/builder.hpp"
#include "trace/render.hpp"
#include "util/flags.hpp"

using namespace rrnet;

namespace {

std::uint32_t nearest_node(net::Network& network, geom::Vec2 anchor) {
  std::uint32_t best = 0;
  double best_d = 1e18;
  for (std::uint32_t i = 0; i < network.size(); ++i) {
    const double d = geom::distance(network.channel().position(i), anchor);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  sim::ScenarioConfig config;
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 5));
  config.nodes = 260;
  config.width_m = config.height_m = 1500.0;
  config.range_m = 250.0;
  config.radio.bitrate_bps = 2e6;
  config.protocol = sim::ProtocolKind::Routeless;
  config.bidirectional = true;
  config.payload_bytes = 256;
  config.traffic_start = 1.0;
  config.traffic_stop = 21.0;
  config.sim_end = 28.0;
  config.trace_paths = true;

  // Find endpoint nodes near the terrain midlines (deterministic per seed).
  sim::SimInstance probe(config);
  const double w = config.width_m, h = config.height_m;
  const std::uint32_t na = nearest_node(probe.network(), {0.1 * w, 0.5 * h});
  const std::uint32_t nb = nearest_node(probe.network(), {0.9 * w, 0.5 * h});
  const std::uint32_t nc = nearest_node(probe.network(), {0.5 * w, 0.1 * h});
  const std::uint32_t nd = nearest_node(probe.network(), {0.5 * w, 0.9 * h});

  const std::string prefix = flags.get_string("out-prefix", "congestion_map");

  for (const bool congested : {false, true}) {
    sim::ScenarioConfig run_config = config;
    run_config.explicit_pairs = {{na, nb}};
    run_config.explicit_pair_intervals = {1.0};
    if (congested) {
      run_config.explicit_pairs.push_back({nc, nd});
      run_config.explicit_pair_intervals.push_back(0.15);
    }
    sim::SimInstance sim(run_config);
    sim.run();

    trace::GridCanvas canvas(sim.terrain(), 64, 32);
    for (const auto& [uid, path] : sim.path_trace()->paths()) {
      if (path.origin == na && path.target == nb && path.delivered) {
        canvas.add_path(path);
      }
    }
    canvas.add_marker(sim.network().channel().position(na), 'A');
    canvas.add_marker(sim.network().channel().position(nb), 'B');
    canvas.add_marker(sim.network().channel().position(nc), 'C');
    canvas.add_marker(sim.network().channel().position(nd), 'D');

    std::printf("\n=== A->B paths %s ===\n%s",
                congested ? "with heavy C->D cross flow" : "alone",
                canvas.to_ascii().c_str());
    const std::string file =
        prefix + (congested ? "_congested.pgm" : "_alone.pgm");
    if (canvas.save_pgm(file)) std::printf("[wrote %s]\n", file.c_str());
  }
  return 0;
}
