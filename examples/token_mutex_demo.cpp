// Local leader election as distributed mutual exclusion (paper §1).
//
// "In the token-based distributed mutual exclusion algorithm, when the
//  current token holder leaves the critical section, the token must be
//  passed to a successor, and this successor is indeed a local leader among
//  all other nodes that are competing for the token."
//
// Ten nodes in one radio neighborhood want the token. The release broadcast
// of the current holder is the implicit synchronization point; contenders
// arm elections whose backoff encodes how long they have waited (longest
// wait = smallest backoff, approximating FIFO fairness), the winner claims
// the token by broadcasting — which is also the announcement that makes the
// other contenders concede.
//
// Implemented directly against the net::Protocol interface to show how a
// new protocol plugs into the stack.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/backoff_policy.hpp"
#include "core/election.hpp"
#include "net/network.hpp"
#include "proto/flooding.hpp"

using namespace rrnet;

namespace {

/// Backoff shrinking with time-already-waited: quasi-FIFO token handoff.
class WaitTimeBackoff final : public core::BackoffPolicy {
 public:
  explicit WaitTimeBackoff(des::Time lambda, des::Time max_wait)
      : lambda_(lambda), max_wait_(max_wait) {}
  des::Time delay(const core::ElectionContext& ctx,
                  des::Rng& rng) const override {
    // ctx.rssi_dbm is repurposed to carry the wait time (seconds); the
    // ElectionContext is deliberately generic.
    const double waited = std::min(ctx.rssi_dbm, max_wait_);
    const double urgency = waited / max_wait_;  // 1 = waited longest
    // Jitter only breaks exact ties; it must stay well below the backoff
    // separation produced by one queue position's worth of waiting.
    return lambda_ * ((1.0 - urgency) * 0.95 + 0.005 * rng.uniform01());
  }
  const char* name() const noexcept override { return "wait-time"; }

 private:
  des::Time lambda_;
  des::Time max_wait_;
};

class TokenProtocol final : public net::Protocol {
 public:
  TokenProtocol(net::Node& node, bool initial_holder)
      : net::Protocol(node),
        policy_(100e-3, 2.0),
        elections_(node.scheduler()),
        rng_(node.rng().fork("token")),
        hold_timer_(node.scheduler()),
        rerelease_timer_(node.scheduler()),
        holding_(initial_holder) {}

  void start() override {
    if (holding_) enter_critical_section();
  }

  void want_token(des::Time now) {
    wants_ = true;
    wait_since_ = now;
  }

  std::uint64_t send_data(std::uint32_t, std::uint32_t) override { return 0; }
  const char* name() const noexcept override { return "token-mutex"; }

  void on_packet(const net::PacketRef& packet, const phy::RxInfo&, bool,
                 std::uint32_t) override {
    if (packet.type() != net::PacketType::Data) return;
    const std::uint64_t key = packet.flood_key();
    if (packet.expected_hops() == kRelease) {
      // The release broadcast: the implicit synchronization point. Every
      // node that wants the token competes.
      if (!wants_) return;
      core::ElectionContext ctx;
      ctx.rssi_dbm = node().scheduler().now() - wait_since_;  // wait time
      // Releases from duplicate holders can overlap; compete in the newest
      // election only.
      if (pending_key_ != 0 && pending_key_ != key) {
        elections_.cancel(pending_key_, core::CancelReason::Superseded);
      }
      pending_key_ = key;
      elections_.arm(key, policy_, ctx, rng_, [this](des::Time) {
        claim_token();
      });
    } else if (packet.expected_hops() == kClaim) {
      rerelease_timer_.cancel();  // arbiter duty done: a successor exists
      // Someone else claimed: concede. The claim packet carries its own
      // flood key, so cancel the election we armed for the release.
      elections_.cancel(pending_key_, core::CancelReason::DuplicateHeard);
    }
  }

 private:
  static constexpr std::uint16_t kRelease = 1;
  static constexpr std::uint16_t kClaim = 2;

  void claim_token() {
    holding_ = true;
    wants_ = false;
    std::printf("  t=%7.1f ms  node %u takes the token (waited %.1f ms)\n",
                node().scheduler().now() * 1e3, node().id(),
                (node().scheduler().now() - wait_since_) * 1e3);
    broadcast(kClaim);
    enter_critical_section();
  }

  void enter_critical_section() {
    // Hold the token for 30 ms of "work", then release.
    hold_timer_.start(30e-3, [this]() {
      holding_ = false;
      release();
    });
  }

  void release() {
    broadcast(kRelease);
    // Arbiter role (§2): if no claim is overheard — nobody wanted the token
    // yet, or the claim was lost — re-trigger the election by re-sending
    // the release (the synchronization packet).
    rerelease_timer_.start(0.25, [this]() { release(); });
  }

  void broadcast(std::uint16_t kind) {
    net::PacketInit packet;
    packet.type = net::PacketType::Data;
    packet.origin = node().id();
    packet.target = net::kNoNode;
    packet.sequence = next_sequence_++;
    packet.uid = node().next_packet_uid();
    packet.expected_hops = kind;  // Release or Claim marker
    packet.payload_bytes = 8;
    packet.created_at = node().scheduler().now();
    node().send_packet(net::make_packet(std::move(packet)),
                       mac::kBroadcastAddress, 0.0);
  }

  WaitTimeBackoff policy_;
  core::ElectionTable elections_;
  des::Rng rng_;
  des::Timer hold_timer_;
  des::Timer rerelease_timer_;
  bool holding_ = false;
  bool wants_ = false;
  std::uint64_t pending_key_ = 0;
  des::Time wait_since_ = 0.0;
  std::uint32_t next_sequence_ = 0;
};

}  // namespace

int main() {
  // Ten nodes in a tight cluster: everyone hears everyone.
  std::vector<geom::Vec2> positions;
  des::Rng place(3);
  for (int i = 0; i < 10; ++i) {
    positions.push_back({450.0 + place.uniform(0.0, 100.0),
                         450.0 + place.uniform(0.0, 100.0)});
  }
  phy::RadioParams radio;
  phy::FreeSpace for_power;
  radio.tx_power_dbm =
      phy::tx_power_for_range(for_power, 250.0, radio.rx_threshold_dbm);
  des::Scheduler scheduler;
  net::Network network(scheduler, geom::Terrain(1000, 1000),
                       std::make_unique<phy::FreeSpace>(), radio,
                       mac::MacParams{}, positions, des::Rng(4));
  std::vector<TokenProtocol*> protocols;
  for (std::uint32_t i = 0; i < network.size(); ++i) {
    auto protocol = std::make_unique<TokenProtocol>(network.node(i), i == 0);
    protocols.push_back(protocol.get());
    network.node(i).set_protocol(std::move(protocol));
  }
  // Nodes 1..9 start wanting the token at staggered times.
  for (std::uint32_t i = 1; i < network.size(); ++i) {
    const des::Time when = 0.05 * static_cast<double>(i);
    scheduler.schedule_at(when, [protocols, i, when]() {
      protocols[i]->want_token(when);
    });
  }
  std::printf("node 0 holds the token; nodes 1..9 queue up for it.\n"
              "each release broadcast triggers a local leader election; the\n"
              "backoff encodes waiting time, so handoff is near-FIFO:\n\n");
  network.start_protocols();
  scheduler.run_until(2.0);
  return 0;
}
