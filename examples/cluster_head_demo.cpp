// Cluster-head rotation via energy-aware leader election.
//
// LEACH-style sensor clustering, expressed directly with the paper's
// operator: each round a sink broadcasts a beacon (the implicit
// synchronization point); cluster candidates compete with a backoff that
// shrinks with *remaining energy*, so the richest node wins, serves as
// cluster head for the round (burning energy faster than the others), and
// headship rotates as budgets drain — no coordinator, no global knowledge.
//
// This mirrors the Span coordinator election the paper cites in §2 ("more
// connectivity and more energy [gives] higher priority to become the
// coordinators").
#include <cstdio>
#include <memory>
#include <vector>

#include "core/backoff_policy.hpp"
#include "core/election.hpp"
#include "net/network.hpp"
#include "proto/flooding.hpp"

using namespace rrnet;

namespace {

constexpr int kCandidates = 8;
constexpr double kInitialEnergy = 100.0;
constexpr double kHeadCostPerRound = 18.0;
constexpr double kMemberCostPerRound = 2.0;

class ClusterProtocol final : public net::Protocol {
 public:
  ClusterProtocol(net::Node& node, std::vector<double>* energy,
                  std::vector<int>* head_rounds)
      : net::Protocol(node),
        policy_(50e-3, 0.3),
        elections_(node.scheduler()),
        rng_(node.rng().fork("cluster")),
        energy_(energy),
        head_rounds_(head_rounds) {}

  std::uint64_t send_data(std::uint32_t, std::uint32_t) override { return 0; }
  const char* name() const noexcept override { return "cluster-election"; }

  void on_packet(const net::PacketRef& packet, const phy::RxInfo&, bool,
                 std::uint32_t) override {
    if (packet.type() != net::PacketType::Data) return;
    const std::uint64_t key = packet.flood_key();
    if (packet.expected_hops() == 1) {  // round beacon from the sink
      if (node().id() == 0) return;     // the sink doesn't run for head
      core::ElectionContext ctx;
      ctx.energy_fraction = (*energy_)[node().id()] / kInitialEnergy;
      pending_key_ = key;
      elections_.arm(key, policy_, ctx, rng_,
                     [this, round = packet.sequence()](des::Time) {
        become_head(round);
      });
    } else if (packet.expected_hops() == 2) {  // head announcement
      elections_.cancel(pending_key_, core::CancelReason::DuplicateHeard);
      (*energy_)[node().id()] -= kMemberCostPerRound;
    }
  }

 private:
  void become_head(std::uint32_t round) {
    auto& e = (*energy_)[node().id()];
    std::printf("  round %2u: node %u becomes cluster head "
                "(%.0f%% energy left)\n",
                round, node().id(), 100.0 * e / kInitialEnergy);
    e -= kHeadCostPerRound;
    ++(*head_rounds_)[node().id()];
    net::PacketInit announce;
    announce.type = net::PacketType::Data;
    announce.origin = node().id();
    announce.target = net::kNoNode;
    announce.sequence = round;
    announce.uid = node().next_packet_uid();
    announce.expected_hops = 2;  // head-announcement marker
    announce.payload_bytes = 8;
    announce.created_at = node().scheduler().now();
    node().send_packet(net::make_packet(std::move(announce)),
                       mac::kBroadcastAddress, 0.0);
  }

  core::EnergyAwareBackoff policy_;
  core::ElectionTable elections_;
  des::Rng rng_;
  std::vector<double>* energy_;
  std::vector<int>* head_rounds_;
  std::uint64_t pending_key_ = 0;
};

}  // namespace

int main() {
  // Sink (node 0) plus candidates clustered within one radio neighborhood.
  std::vector<geom::Vec2> positions{{500.0, 500.0}};
  des::Rng place(9);
  for (int i = 0; i < kCandidates; ++i) {
    positions.push_back({450.0 + place.uniform(0.0, 100.0),
                         450.0 + place.uniform(0.0, 100.0)});
  }
  phy::FreeSpace for_power;
  phy::RadioParams radio;
  radio.tx_power_dbm =
      phy::tx_power_for_range(for_power, 250.0, radio.rx_threshold_dbm);
  des::Scheduler scheduler;
  net::Network network(scheduler, geom::Terrain(1000, 1000),
                       std::make_unique<phy::FreeSpace>(), radio,
                       mac::MacParams{}, positions, des::Rng(10));
  std::vector<double> energy(network.size(), kInitialEnergy);
  std::vector<int> head_rounds(network.size(), 0);
  for (std::uint32_t i = 0; i < network.size(); ++i) {
    network.node(i).set_protocol(std::make_unique<ClusterProtocol>(
        network.node(i), &energy, &head_rounds));
  }
  network.start_protocols();

  std::printf("%d candidates, %0.f J each; a cluster-head round costs "
              "%0.f J, membership %0.f J.\n"
              "the energy-aware backoff rotates headship to the richest "
              "node each round:\n\n",
              kCandidates, kInitialEnergy, kHeadCostPerRound,
              kMemberCostPerRound);

  // The sink beacons a new round every 200 ms.
  for (std::uint32_t round = 0; round < 16; ++round) {
    scheduler.schedule_at(0.2 * (round + 1), [&network, &scheduler, round]() {
      net::PacketInit beacon;
      beacon.type = net::PacketType::Data;
      beacon.origin = 0;
      beacon.target = net::kNoNode;
      beacon.sequence = round;
      beacon.uid = network.node(0).next_packet_uid();
      beacon.expected_hops = 1;  // round-beacon marker
      beacon.payload_bytes = 8;
      beacon.created_at = scheduler.now();
      network.node(0).send_packet(net::make_packet(std::move(beacon)),
                                  mac::kBroadcastAddress, 0.0);
    });
  }
  scheduler.run_until(4.0);

  std::printf("\nheadship distribution (16 rounds over %d nodes = 2 each;\n"
              "occasional double winners are the paper's tolerated "
              "multi-leader case):\n",
              kCandidates);
  int min_rounds = 1000, max_rounds = 0;
  for (std::uint32_t i = 1; i < network.size(); ++i) {
    std::printf("  node %u: %d rounds as head, %.0f%% energy left\n", i,
                head_rounds[i], 100.0 * energy[i] / kInitialEnergy);
    min_rounds = std::min(min_rounds, head_rounds[i]);
    max_rounds = std::max(max_rounds, head_rounds[i]);
  }
  std::printf("\nrotation fairness: every node served %d-%d rounds — the\n"
              "election balanced the load without any central bookkeeping.\n",
              min_rounds, max_rounds);
  return 0;
}
