file(REMOVE_RECURSE
  "CMakeFiles/rts_cts_test.dir/rts_cts_test.cpp.o"
  "CMakeFiles/rts_cts_test.dir/rts_cts_test.cpp.o.d"
  "rts_cts_test"
  "rts_cts_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rts_cts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
