file(REMOVE_RECURSE
  "CMakeFiles/ssaf_test.dir/ssaf_test.cpp.o"
  "CMakeFiles/ssaf_test.dir/ssaf_test.cpp.o.d"
  "ssaf_test"
  "ssaf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssaf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
