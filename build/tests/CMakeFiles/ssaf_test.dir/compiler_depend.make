# Empty compiler generated dependencies file for ssaf_test.
# This may be replaced when dependencies are built.
