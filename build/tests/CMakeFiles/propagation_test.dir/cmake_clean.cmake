file(REMOVE_RECURSE
  "CMakeFiles/propagation_test.dir/propagation_test.cpp.o"
  "CMakeFiles/propagation_test.dir/propagation_test.cpp.o.d"
  "propagation_test"
  "propagation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/propagation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
