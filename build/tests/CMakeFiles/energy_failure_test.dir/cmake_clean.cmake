file(REMOVE_RECURSE
  "CMakeFiles/energy_failure_test.dir/energy_failure_test.cpp.o"
  "CMakeFiles/energy_failure_test.dir/energy_failure_test.cpp.o.d"
  "energy_failure_test"
  "energy_failure_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
