# Empty compiler generated dependencies file for energy_failure_test.
# This may be replaced when dependencies are built.
