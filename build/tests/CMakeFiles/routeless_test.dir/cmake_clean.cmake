file(REMOVE_RECURSE
  "CMakeFiles/routeless_test.dir/routeless_test.cpp.o"
  "CMakeFiles/routeless_test.dir/routeless_test.cpp.o.d"
  "routeless_test"
  "routeless_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routeless_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
