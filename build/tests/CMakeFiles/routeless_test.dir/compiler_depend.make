# Empty compiler generated dependencies file for routeless_test.
# This may be replaced when dependencies are built.
