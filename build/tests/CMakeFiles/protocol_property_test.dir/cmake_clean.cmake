file(REMOVE_RECURSE
  "CMakeFiles/protocol_property_test.dir/protocol_property_test.cpp.o"
  "CMakeFiles/protocol_property_test.dir/protocol_property_test.cpp.o.d"
  "protocol_property_test"
  "protocol_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
