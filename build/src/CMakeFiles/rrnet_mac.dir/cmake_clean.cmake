file(REMOVE_RECURSE
  "CMakeFiles/rrnet_mac.dir/mac/csma.cpp.o"
  "CMakeFiles/rrnet_mac.dir/mac/csma.cpp.o.d"
  "CMakeFiles/rrnet_mac.dir/mac/frame.cpp.o"
  "CMakeFiles/rrnet_mac.dir/mac/frame.cpp.o.d"
  "CMakeFiles/rrnet_mac.dir/mac/priority_queue.cpp.o"
  "CMakeFiles/rrnet_mac.dir/mac/priority_queue.cpp.o.d"
  "librrnet_mac.a"
  "librrnet_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrnet_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
