# Empty compiler generated dependencies file for rrnet_mac.
# This may be replaced when dependencies are built.
