file(REMOVE_RECURSE
  "librrnet_mac.a"
)
