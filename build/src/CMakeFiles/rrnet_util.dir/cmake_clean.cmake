file(REMOVE_RECURSE
  "CMakeFiles/rrnet_util.dir/util/csv.cpp.o"
  "CMakeFiles/rrnet_util.dir/util/csv.cpp.o.d"
  "CMakeFiles/rrnet_util.dir/util/flags.cpp.o"
  "CMakeFiles/rrnet_util.dir/util/flags.cpp.o.d"
  "CMakeFiles/rrnet_util.dir/util/log.cpp.o"
  "CMakeFiles/rrnet_util.dir/util/log.cpp.o.d"
  "CMakeFiles/rrnet_util.dir/util/stats.cpp.o"
  "CMakeFiles/rrnet_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/rrnet_util.dir/util/timeseries.cpp.o"
  "CMakeFiles/rrnet_util.dir/util/timeseries.cpp.o.d"
  "librrnet_util.a"
  "librrnet_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrnet_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
