# Empty dependencies file for rrnet_util.
# This may be replaced when dependencies are built.
