file(REMOVE_RECURSE
  "librrnet_util.a"
)
