file(REMOVE_RECURSE
  "librrnet_net.a"
)
