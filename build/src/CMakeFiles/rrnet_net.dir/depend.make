# Empty dependencies file for rrnet_net.
# This may be replaced when dependencies are built.
