
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/duplicate_cache.cpp" "src/CMakeFiles/rrnet_net.dir/net/duplicate_cache.cpp.o" "gcc" "src/CMakeFiles/rrnet_net.dir/net/duplicate_cache.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/rrnet_net.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/rrnet_net.dir/net/network.cpp.o.d"
  "/root/repo/src/net/node.cpp" "src/CMakeFiles/rrnet_net.dir/net/node.cpp.o" "gcc" "src/CMakeFiles/rrnet_net.dir/net/node.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/CMakeFiles/rrnet_net.dir/net/packet.cpp.o" "gcc" "src/CMakeFiles/rrnet_net.dir/net/packet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rrnet_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrnet_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrnet_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrnet_des.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
