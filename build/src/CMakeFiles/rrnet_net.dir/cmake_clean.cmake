file(REMOVE_RECURSE
  "CMakeFiles/rrnet_net.dir/net/duplicate_cache.cpp.o"
  "CMakeFiles/rrnet_net.dir/net/duplicate_cache.cpp.o.d"
  "CMakeFiles/rrnet_net.dir/net/network.cpp.o"
  "CMakeFiles/rrnet_net.dir/net/network.cpp.o.d"
  "CMakeFiles/rrnet_net.dir/net/node.cpp.o"
  "CMakeFiles/rrnet_net.dir/net/node.cpp.o.d"
  "CMakeFiles/rrnet_net.dir/net/packet.cpp.o"
  "CMakeFiles/rrnet_net.dir/net/packet.cpp.o.d"
  "librrnet_net.a"
  "librrnet_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrnet_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
