# Empty compiler generated dependencies file for rrnet_trace.
# This may be replaced when dependencies are built.
