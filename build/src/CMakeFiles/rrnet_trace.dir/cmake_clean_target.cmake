file(REMOVE_RECURSE
  "librrnet_trace.a"
)
