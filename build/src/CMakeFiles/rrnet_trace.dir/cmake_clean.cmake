file(REMOVE_RECURSE
  "CMakeFiles/rrnet_trace.dir/trace/path_trace.cpp.o"
  "CMakeFiles/rrnet_trace.dir/trace/path_trace.cpp.o.d"
  "CMakeFiles/rrnet_trace.dir/trace/render.cpp.o"
  "CMakeFiles/rrnet_trace.dir/trace/render.cpp.o.d"
  "librrnet_trace.a"
  "librrnet_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrnet_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
