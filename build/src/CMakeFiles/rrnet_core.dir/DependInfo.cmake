
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/arbiter.cpp" "src/CMakeFiles/rrnet_core.dir/core/arbiter.cpp.o" "gcc" "src/CMakeFiles/rrnet_core.dir/core/arbiter.cpp.o.d"
  "/root/repo/src/core/backoff_policy.cpp" "src/CMakeFiles/rrnet_core.dir/core/backoff_policy.cpp.o" "gcc" "src/CMakeFiles/rrnet_core.dir/core/backoff_policy.cpp.o.d"
  "/root/repo/src/core/election.cpp" "src/CMakeFiles/rrnet_core.dir/core/election.cpp.o" "gcc" "src/CMakeFiles/rrnet_core.dir/core/election.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rrnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrnet_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrnet_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrnet_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrnet_des.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
