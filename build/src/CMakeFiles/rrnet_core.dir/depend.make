# Empty dependencies file for rrnet_core.
# This may be replaced when dependencies are built.
