file(REMOVE_RECURSE
  "CMakeFiles/rrnet_core.dir/core/arbiter.cpp.o"
  "CMakeFiles/rrnet_core.dir/core/arbiter.cpp.o.d"
  "CMakeFiles/rrnet_core.dir/core/backoff_policy.cpp.o"
  "CMakeFiles/rrnet_core.dir/core/backoff_policy.cpp.o.d"
  "CMakeFiles/rrnet_core.dir/core/election.cpp.o"
  "CMakeFiles/rrnet_core.dir/core/election.cpp.o.d"
  "librrnet_core.a"
  "librrnet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrnet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
