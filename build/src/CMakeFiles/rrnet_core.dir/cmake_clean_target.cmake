file(REMOVE_RECURSE
  "librrnet_core.a"
)
