# Empty compiler generated dependencies file for rrnet_des.
# This may be replaced when dependencies are built.
