file(REMOVE_RECURSE
  "CMakeFiles/rrnet_des.dir/des/rng.cpp.o"
  "CMakeFiles/rrnet_des.dir/des/rng.cpp.o.d"
  "CMakeFiles/rrnet_des.dir/des/scheduler.cpp.o"
  "CMakeFiles/rrnet_des.dir/des/scheduler.cpp.o.d"
  "CMakeFiles/rrnet_des.dir/des/timer.cpp.o"
  "CMakeFiles/rrnet_des.dir/des/timer.cpp.o.d"
  "librrnet_des.a"
  "librrnet_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrnet_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
