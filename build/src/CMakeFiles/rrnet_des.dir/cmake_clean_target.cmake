file(REMOVE_RECURSE
  "librrnet_des.a"
)
