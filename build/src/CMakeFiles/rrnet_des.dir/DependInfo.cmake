
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/des/rng.cpp" "src/CMakeFiles/rrnet_des.dir/des/rng.cpp.o" "gcc" "src/CMakeFiles/rrnet_des.dir/des/rng.cpp.o.d"
  "/root/repo/src/des/scheduler.cpp" "src/CMakeFiles/rrnet_des.dir/des/scheduler.cpp.o" "gcc" "src/CMakeFiles/rrnet_des.dir/des/scheduler.cpp.o.d"
  "/root/repo/src/des/timer.cpp" "src/CMakeFiles/rrnet_des.dir/des/timer.cpp.o" "gcc" "src/CMakeFiles/rrnet_des.dir/des/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rrnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
