# Empty compiler generated dependencies file for rrnet_proto.
# This may be replaced when dependencies are built.
