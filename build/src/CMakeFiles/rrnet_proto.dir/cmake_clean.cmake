file(REMOVE_RECURSE
  "CMakeFiles/rrnet_proto.dir/proto/aodv.cpp.o"
  "CMakeFiles/rrnet_proto.dir/proto/aodv.cpp.o.d"
  "CMakeFiles/rrnet_proto.dir/proto/dsdv.cpp.o"
  "CMakeFiles/rrnet_proto.dir/proto/dsdv.cpp.o.d"
  "CMakeFiles/rrnet_proto.dir/proto/dsr.cpp.o"
  "CMakeFiles/rrnet_proto.dir/proto/dsr.cpp.o.d"
  "CMakeFiles/rrnet_proto.dir/proto/flooding.cpp.o"
  "CMakeFiles/rrnet_proto.dir/proto/flooding.cpp.o.d"
  "CMakeFiles/rrnet_proto.dir/proto/gradient.cpp.o"
  "CMakeFiles/rrnet_proto.dir/proto/gradient.cpp.o.d"
  "CMakeFiles/rrnet_proto.dir/proto/routeless.cpp.o"
  "CMakeFiles/rrnet_proto.dir/proto/routeless.cpp.o.d"
  "CMakeFiles/rrnet_proto.dir/proto/ssaf.cpp.o"
  "CMakeFiles/rrnet_proto.dir/proto/ssaf.cpp.o.d"
  "librrnet_proto.a"
  "librrnet_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrnet_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
