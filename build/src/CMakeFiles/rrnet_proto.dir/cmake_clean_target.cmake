file(REMOVE_RECURSE
  "librrnet_proto.a"
)
