
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/aodv.cpp" "src/CMakeFiles/rrnet_proto.dir/proto/aodv.cpp.o" "gcc" "src/CMakeFiles/rrnet_proto.dir/proto/aodv.cpp.o.d"
  "/root/repo/src/proto/dsdv.cpp" "src/CMakeFiles/rrnet_proto.dir/proto/dsdv.cpp.o" "gcc" "src/CMakeFiles/rrnet_proto.dir/proto/dsdv.cpp.o.d"
  "/root/repo/src/proto/dsr.cpp" "src/CMakeFiles/rrnet_proto.dir/proto/dsr.cpp.o" "gcc" "src/CMakeFiles/rrnet_proto.dir/proto/dsr.cpp.o.d"
  "/root/repo/src/proto/flooding.cpp" "src/CMakeFiles/rrnet_proto.dir/proto/flooding.cpp.o" "gcc" "src/CMakeFiles/rrnet_proto.dir/proto/flooding.cpp.o.d"
  "/root/repo/src/proto/gradient.cpp" "src/CMakeFiles/rrnet_proto.dir/proto/gradient.cpp.o" "gcc" "src/CMakeFiles/rrnet_proto.dir/proto/gradient.cpp.o.d"
  "/root/repo/src/proto/routeless.cpp" "src/CMakeFiles/rrnet_proto.dir/proto/routeless.cpp.o" "gcc" "src/CMakeFiles/rrnet_proto.dir/proto/routeless.cpp.o.d"
  "/root/repo/src/proto/ssaf.cpp" "src/CMakeFiles/rrnet_proto.dir/proto/ssaf.cpp.o" "gcc" "src/CMakeFiles/rrnet_proto.dir/proto/ssaf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rrnet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrnet_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrnet_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrnet_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrnet_des.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
