file(REMOVE_RECURSE
  "librrnet_phy.a"
)
