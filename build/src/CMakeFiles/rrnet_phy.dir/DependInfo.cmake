
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/channel.cpp" "src/CMakeFiles/rrnet_phy.dir/phy/channel.cpp.o" "gcc" "src/CMakeFiles/rrnet_phy.dir/phy/channel.cpp.o.d"
  "/root/repo/src/phy/energy.cpp" "src/CMakeFiles/rrnet_phy.dir/phy/energy.cpp.o" "gcc" "src/CMakeFiles/rrnet_phy.dir/phy/energy.cpp.o.d"
  "/root/repo/src/phy/failure.cpp" "src/CMakeFiles/rrnet_phy.dir/phy/failure.cpp.o" "gcc" "src/CMakeFiles/rrnet_phy.dir/phy/failure.cpp.o.d"
  "/root/repo/src/phy/propagation.cpp" "src/CMakeFiles/rrnet_phy.dir/phy/propagation.cpp.o" "gcc" "src/CMakeFiles/rrnet_phy.dir/phy/propagation.cpp.o.d"
  "/root/repo/src/phy/transceiver.cpp" "src/CMakeFiles/rrnet_phy.dir/phy/transceiver.cpp.o" "gcc" "src/CMakeFiles/rrnet_phy.dir/phy/transceiver.cpp.o.d"
  "/root/repo/src/phy/units.cpp" "src/CMakeFiles/rrnet_phy.dir/phy/units.cpp.o" "gcc" "src/CMakeFiles/rrnet_phy.dir/phy/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rrnet_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrnet_des.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
