# Empty dependencies file for rrnet_phy.
# This may be replaced when dependencies are built.
