file(REMOVE_RECURSE
  "CMakeFiles/rrnet_phy.dir/phy/channel.cpp.o"
  "CMakeFiles/rrnet_phy.dir/phy/channel.cpp.o.d"
  "CMakeFiles/rrnet_phy.dir/phy/energy.cpp.o"
  "CMakeFiles/rrnet_phy.dir/phy/energy.cpp.o.d"
  "CMakeFiles/rrnet_phy.dir/phy/failure.cpp.o"
  "CMakeFiles/rrnet_phy.dir/phy/failure.cpp.o.d"
  "CMakeFiles/rrnet_phy.dir/phy/propagation.cpp.o"
  "CMakeFiles/rrnet_phy.dir/phy/propagation.cpp.o.d"
  "CMakeFiles/rrnet_phy.dir/phy/transceiver.cpp.o"
  "CMakeFiles/rrnet_phy.dir/phy/transceiver.cpp.o.d"
  "CMakeFiles/rrnet_phy.dir/phy/units.cpp.o"
  "CMakeFiles/rrnet_phy.dir/phy/units.cpp.o.d"
  "librrnet_phy.a"
  "librrnet_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrnet_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
