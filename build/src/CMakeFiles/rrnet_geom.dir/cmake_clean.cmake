file(REMOVE_RECURSE
  "CMakeFiles/rrnet_geom.dir/geom/placement.cpp.o"
  "CMakeFiles/rrnet_geom.dir/geom/placement.cpp.o.d"
  "CMakeFiles/rrnet_geom.dir/geom/spatial_grid.cpp.o"
  "CMakeFiles/rrnet_geom.dir/geom/spatial_grid.cpp.o.d"
  "CMakeFiles/rrnet_geom.dir/geom/terrain.cpp.o"
  "CMakeFiles/rrnet_geom.dir/geom/terrain.cpp.o.d"
  "librrnet_geom.a"
  "librrnet_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrnet_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
