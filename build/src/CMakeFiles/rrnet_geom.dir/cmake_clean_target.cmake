file(REMOVE_RECURSE
  "librrnet_geom.a"
)
