# Empty dependencies file for rrnet_geom.
# This may be replaced when dependencies are built.
