# Empty compiler generated dependencies file for rrnet_app.
# This may be replaced when dependencies are built.
