file(REMOVE_RECURSE
  "CMakeFiles/rrnet_app.dir/app/cbr.cpp.o"
  "CMakeFiles/rrnet_app.dir/app/cbr.cpp.o.d"
  "CMakeFiles/rrnet_app.dir/app/flow_stats.cpp.o"
  "CMakeFiles/rrnet_app.dir/app/flow_stats.cpp.o.d"
  "librrnet_app.a"
  "librrnet_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrnet_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
