file(REMOVE_RECURSE
  "librrnet_app.a"
)
