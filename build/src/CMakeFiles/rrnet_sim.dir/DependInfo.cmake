
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/builder.cpp" "src/CMakeFiles/rrnet_sim.dir/sim/builder.cpp.o" "gcc" "src/CMakeFiles/rrnet_sim.dir/sim/builder.cpp.o.d"
  "/root/repo/src/sim/mobility.cpp" "src/CMakeFiles/rrnet_sim.dir/sim/mobility.cpp.o" "gcc" "src/CMakeFiles/rrnet_sim.dir/sim/mobility.cpp.o.d"
  "/root/repo/src/sim/replication.cpp" "src/CMakeFiles/rrnet_sim.dir/sim/replication.cpp.o" "gcc" "src/CMakeFiles/rrnet_sim.dir/sim/replication.cpp.o.d"
  "/root/repo/src/sim/runner.cpp" "src/CMakeFiles/rrnet_sim.dir/sim/runner.cpp.o" "gcc" "src/CMakeFiles/rrnet_sim.dir/sim/runner.cpp.o.d"
  "/root/repo/src/sim/scenario.cpp" "src/CMakeFiles/rrnet_sim.dir/sim/scenario.cpp.o" "gcc" "src/CMakeFiles/rrnet_sim.dir/sim/scenario.cpp.o.d"
  "/root/repo/src/sim/sweep.cpp" "src/CMakeFiles/rrnet_sim.dir/sim/sweep.cpp.o" "gcc" "src/CMakeFiles/rrnet_sim.dir/sim/sweep.cpp.o.d"
  "/root/repo/src/sim/topology.cpp" "src/CMakeFiles/rrnet_sim.dir/sim/topology.cpp.o" "gcc" "src/CMakeFiles/rrnet_sim.dir/sim/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rrnet_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrnet_app.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrnet_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrnet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrnet_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrnet_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrnet_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrnet_des.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
