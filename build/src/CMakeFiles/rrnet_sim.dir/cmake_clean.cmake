file(REMOVE_RECURSE
  "CMakeFiles/rrnet_sim.dir/sim/builder.cpp.o"
  "CMakeFiles/rrnet_sim.dir/sim/builder.cpp.o.d"
  "CMakeFiles/rrnet_sim.dir/sim/mobility.cpp.o"
  "CMakeFiles/rrnet_sim.dir/sim/mobility.cpp.o.d"
  "CMakeFiles/rrnet_sim.dir/sim/replication.cpp.o"
  "CMakeFiles/rrnet_sim.dir/sim/replication.cpp.o.d"
  "CMakeFiles/rrnet_sim.dir/sim/runner.cpp.o"
  "CMakeFiles/rrnet_sim.dir/sim/runner.cpp.o.d"
  "CMakeFiles/rrnet_sim.dir/sim/scenario.cpp.o"
  "CMakeFiles/rrnet_sim.dir/sim/scenario.cpp.o.d"
  "CMakeFiles/rrnet_sim.dir/sim/sweep.cpp.o"
  "CMakeFiles/rrnet_sim.dir/sim/sweep.cpp.o.d"
  "CMakeFiles/rrnet_sim.dir/sim/topology.cpp.o"
  "CMakeFiles/rrnet_sim.dir/sim/topology.cpp.o.d"
  "librrnet_sim.a"
  "librrnet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrnet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
