file(REMOVE_RECURSE
  "librrnet_sim.a"
)
