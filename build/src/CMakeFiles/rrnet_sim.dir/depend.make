# Empty dependencies file for rrnet_sim.
# This may be replaced when dependencies are built.
