# Empty dependencies file for abl_priority_queue.
# This may be replaced when dependencies are built.
