file(REMOVE_RECURSE
  "CMakeFiles/abl_priority_queue.dir/abl_priority_queue.cpp.o"
  "CMakeFiles/abl_priority_queue.dir/abl_priority_queue.cpp.o.d"
  "abl_priority_queue"
  "abl_priority_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_priority_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
