file(REMOVE_RECURSE
  "CMakeFiles/fig2_congestion_avoidance.dir/fig2_congestion_avoidance.cpp.o"
  "CMakeFiles/fig2_congestion_avoidance.dir/fig2_congestion_avoidance.cpp.o.d"
  "fig2_congestion_avoidance"
  "fig2_congestion_avoidance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_congestion_avoidance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
