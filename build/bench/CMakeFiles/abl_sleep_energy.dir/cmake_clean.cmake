file(REMOVE_RECURSE
  "CMakeFiles/abl_sleep_energy.dir/abl_sleep_energy.cpp.o"
  "CMakeFiles/abl_sleep_energy.dir/abl_sleep_energy.cpp.o.d"
  "abl_sleep_energy"
  "abl_sleep_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sleep_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
