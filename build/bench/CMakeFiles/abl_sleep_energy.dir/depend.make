# Empty dependencies file for abl_sleep_energy.
# This may be replaced when dependencies are built.
