# Empty dependencies file for abl_lambda_sweep.
# This may be replaced when dependencies are built.
