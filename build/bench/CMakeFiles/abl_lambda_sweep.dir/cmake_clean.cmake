file(REMOVE_RECURSE
  "CMakeFiles/abl_lambda_sweep.dir/abl_lambda_sweep.cpp.o"
  "CMakeFiles/abl_lambda_sweep.dir/abl_lambda_sweep.cpp.o.d"
  "abl_lambda_sweep"
  "abl_lambda_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_lambda_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
