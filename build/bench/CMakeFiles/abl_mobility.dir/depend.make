# Empty dependencies file for abl_mobility.
# This may be replaced when dependencies are built.
