file(REMOVE_RECURSE
  "CMakeFiles/abl_gradient_vs_rr.dir/abl_gradient_vs_rr.cpp.o"
  "CMakeFiles/abl_gradient_vs_rr.dir/abl_gradient_vs_rr.cpp.o.d"
  "abl_gradient_vs_rr"
  "abl_gradient_vs_rr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_gradient_vs_rr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
