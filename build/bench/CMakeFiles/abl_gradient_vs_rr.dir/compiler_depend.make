# Empty compiler generated dependencies file for abl_gradient_vs_rr.
# This may be replaced when dependencies are built.
