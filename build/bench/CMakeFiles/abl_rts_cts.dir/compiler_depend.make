# Empty compiler generated dependencies file for abl_rts_cts.
# This may be replaced when dependencies are built.
