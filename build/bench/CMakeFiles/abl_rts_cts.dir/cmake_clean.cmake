file(REMOVE_RECURSE
  "CMakeFiles/abl_rts_cts.dir/abl_rts_cts.cpp.o"
  "CMakeFiles/abl_rts_cts.dir/abl_rts_cts.cpp.o.d"
  "abl_rts_cts"
  "abl_rts_cts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_rts_cts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
