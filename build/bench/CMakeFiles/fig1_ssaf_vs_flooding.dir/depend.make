# Empty dependencies file for fig1_ssaf_vs_flooding.
# This may be replaced when dependencies are built.
