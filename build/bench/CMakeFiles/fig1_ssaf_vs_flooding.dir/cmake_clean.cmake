file(REMOVE_RECURSE
  "CMakeFiles/fig1_ssaf_vs_flooding.dir/fig1_ssaf_vs_flooding.cpp.o"
  "CMakeFiles/fig1_ssaf_vs_flooding.dir/fig1_ssaf_vs_flooding.cpp.o.d"
  "fig1_ssaf_vs_flooding"
  "fig1_ssaf_vs_flooding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_ssaf_vs_flooding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
