# Empty dependencies file for fig4_node_failures.
# This may be replaced when dependencies are built.
