file(REMOVE_RECURSE
  "CMakeFiles/fig4_node_failures.dir/fig4_node_failures.cpp.o"
  "CMakeFiles/fig4_node_failures.dir/fig4_node_failures.cpp.o.d"
  "fig4_node_failures"
  "fig4_node_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_node_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
