# Empty dependencies file for abl_aodv_discovery.
# This may be replaced when dependencies are built.
