file(REMOVE_RECURSE
  "CMakeFiles/abl_aodv_discovery.dir/abl_aodv_discovery.cpp.o"
  "CMakeFiles/abl_aodv_discovery.dir/abl_aodv_discovery.cpp.o.d"
  "abl_aodv_discovery"
  "abl_aodv_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_aodv_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
