# Empty dependencies file for abl_backoff_policies.
# This may be replaced when dependencies are built.
