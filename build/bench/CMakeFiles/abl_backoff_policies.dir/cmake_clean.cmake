file(REMOVE_RECURSE
  "CMakeFiles/abl_backoff_policies.dir/abl_backoff_policies.cpp.o"
  "CMakeFiles/abl_backoff_policies.dir/abl_backoff_policies.cpp.o.d"
  "abl_backoff_policies"
  "abl_backoff_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_backoff_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
