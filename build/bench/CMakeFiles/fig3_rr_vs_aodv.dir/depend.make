# Empty dependencies file for fig3_rr_vs_aodv.
# This may be replaced when dependencies are built.
