file(REMOVE_RECURSE
  "CMakeFiles/fig3_rr_vs_aodv.dir/fig3_rr_vs_aodv.cpp.o"
  "CMakeFiles/fig3_rr_vs_aodv.dir/fig3_rr_vs_aodv.cpp.o.d"
  "fig3_rr_vs_aodv"
  "fig3_rr_vs_aodv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_rr_vs_aodv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
