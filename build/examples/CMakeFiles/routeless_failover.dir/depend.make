# Empty dependencies file for routeless_failover.
# This may be replaced when dependencies are built.
