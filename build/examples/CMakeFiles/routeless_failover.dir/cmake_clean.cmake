file(REMOVE_RECURSE
  "CMakeFiles/routeless_failover.dir/routeless_failover.cpp.o"
  "CMakeFiles/routeless_failover.dir/routeless_failover.cpp.o.d"
  "routeless_failover"
  "routeless_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routeless_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
