# Empty compiler generated dependencies file for token_mutex_demo.
# This may be replaced when dependencies are built.
