file(REMOVE_RECURSE
  "CMakeFiles/token_mutex_demo.dir/token_mutex_demo.cpp.o"
  "CMakeFiles/token_mutex_demo.dir/token_mutex_demo.cpp.o.d"
  "token_mutex_demo"
  "token_mutex_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/token_mutex_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
