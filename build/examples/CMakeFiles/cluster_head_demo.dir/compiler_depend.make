# Empty compiler generated dependencies file for cluster_head_demo.
# This may be replaced when dependencies are built.
