file(REMOVE_RECURSE
  "CMakeFiles/cluster_head_demo.dir/cluster_head_demo.cpp.o"
  "CMakeFiles/cluster_head_demo.dir/cluster_head_demo.cpp.o.d"
  "cluster_head_demo"
  "cluster_head_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_head_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
