# Empty compiler generated dependencies file for flooding_demo.
# This may be replaced when dependencies are built.
