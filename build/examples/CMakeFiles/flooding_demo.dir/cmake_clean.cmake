file(REMOVE_RECURSE
  "CMakeFiles/flooding_demo.dir/flooding_demo.cpp.o"
  "CMakeFiles/flooding_demo.dir/flooding_demo.cpp.o.d"
  "flooding_demo"
  "flooding_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flooding_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
