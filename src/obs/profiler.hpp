// Parallel-runtime profiler + run-health monitor (observability pillar 3).
//
// Two complementary instruments for the question the metric registry and
// event tracer cannot answer: where does *wall clock* go when a scenario
// runs, and is the run healthy while it is still running?
//
//  * RuntimeProfiler attributes wall time per shard worker across the three
//    phases of every window round — execute (run_until the window),
//    barrier-wait (spin at A/B/C), exchange (handoff injection + node
//    migration) — plus histograms of window width, lookahead-bound source,
//    handoff fan-out, and adaptive-batch width. The cardinal rule: stamps
//    are taken ONLY at round boundaries, never per event, so enabling the
//    profiler cannot perturb the serial==sharded bit-identity contract.
//    Laps are contiguous (each lap starts where the previous ended), so the
//    three phases account for the entire round loop by construction.
//    Flattened into shard.* / runtime.* registry entries — wall-clock
//    derived, hence engine-internal like sim.node_migrations and excluded
//    from the determinism sweeps.
//
//  * RunHealthMonitor samples wall-clock throughput (events/s) and process
//    RSS (getrusage) at window barriers (sharded; worker 0 publishes its
//    verdict before barrier B so every worker aborts at the same round) or
//    every ~262k events (serial), drives optional progress lines on
//    stderr, enforces per-run wall-clock and RSS budgets with a graceful
//    partial-result abort, and writes a structured report.json (phase
//    breakdown, peak RSS, throughput curve).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace rrnet::obs {

/// The three wall-clock phases of one sharded window round.
enum class ShardPhase : std::uint8_t {
  Execute = 0,  ///< run_until(window) + bound/emitted publication
  BarrierWait,  ///< spinning at barrier A / B / C
  Exchange,     ///< handoff injection, migration collect/apply, rebound
};

/// Which term of the conservative lookahead bound was the minimum.
enum class BoundSource : std::uint8_t {
  ArmedTx = 0,  ///< earliest armed-tx timer note
  PendingPhy,   ///< earliest in-flight PHY event + SIFS
  NextEvent,    ///< earliest scheduler event + DIFS
};

/// Per-worker accumulators, written by exactly one worker thread during the
/// round loop and read after join. Cache-line aligned: adjacent workers'
/// profiles must not false-share while both are stamping.
struct alignas(64) WorkerProfile {
  std::uint64_t phase_ns[3] = {0, 0, 0};  ///< indexed by ShardPhase
  std::uint64_t loop_ns = 0;              ///< begin()..end() wall time
  std::uint64_t rounds = 0;
  std::uint64_t exchange_rounds = 0;
  std::uint64_t forced_quiet_exchanges = 0;
  std::uint64_t handoffs_out = 0;    ///< handoffs this worker's shards emitted
  std::uint64_t migrations_out = 0;  ///< node migrations its shards initiated
  std::uint64_t bound_source[3] = {0, 0, 0};  ///< indexed by BoundSource
  Histogram window_width_ns;  ///< simulated window width (worker 0 only)
  Histogram handoff_fanout;   ///< outbound handoffs per shard-exchange
  Histogram batch_width;      ///< adaptive batch at exchange (worker 0 only)

  /// Start the lap clock (round-loop entry).
  void begin() noexcept {
    begin_ = mark_ = std::chrono::steady_clock::now();
  }
  /// Charge the time since the previous lap (or begin()) to `phase` and
  /// return it. Laps are contiguous: this lap's end is the next one's start.
  std::uint64_t lap(ShardPhase phase) noexcept {
    const auto now = std::chrono::steady_clock::now();
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - mark_)
            .count());
    mark_ = now;
    phase_ns[static_cast<std::uint8_t>(phase)] += ns;
    return ns;
  }
  /// Close the round loop; loop_ns is the phase-coverage denominator.
  void end() noexcept {
    loop_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - begin_)
            .count());
  }
  [[nodiscard]] std::uint64_t accounted_ns() const noexcept {
    return phase_ns[0] + phase_ns[1] + phase_ns[2];
  }

 private:
  std::chrono::steady_clock::time_point begin_{};
  std::chrono::steady_clock::time_point mark_{};
};

/// One profile per worker thread of a sharded run. Constructed by the
/// coordinator, stamped by the workers, flattened into the metric registry
/// (and the run report) after join.
class RuntimeProfiler {
 public:
  explicit RuntimeProfiler(std::uint32_t workers) : workers_(workers) {}

  [[nodiscard]] WorkerProfile& worker(std::uint32_t t) { return workers_[t]; }
  [[nodiscard]] const WorkerProfile& worker(std::uint32_t t) const {
    return workers_[t];
  }
  [[nodiscard]] std::uint32_t workers() const noexcept {
    return static_cast<std::uint32_t>(workers_.size());
  }

  /// Flatten into shard.* / runtime.* registry entries: phase totals,
  /// barrier-wait percentage (overall and per worker), round counts,
  /// bound-source counters, and the merged histograms.
  void snapshot_into(MetricRegistry& registry) const;

 private:
  std::vector<WorkerProfile> workers_;
};

/// Samples run health (events/s, RSS) while a scenario executes, enforces
/// wall/RSS budgets, and writes the per-run report.json. Attach one to a
/// run via ScenarioConfig::health_monitor (non-owning); the engine calls
/// checkpoint() at window barriers (sharded) or every event slice (serial)
/// and finish_run() at the end. checkpoint() is cheap — one steady-clock
/// read unless the sample period elapsed.
class RunHealthMonitor {
 public:
  struct Config {
    double sample_period_s = 2.0;  ///< min wall clock between full samples
    double wall_budget_s = 0.0;    ///< abort when exceeded; 0 = unlimited
    double rss_budget_mib = 0.0;   ///< abort when exceeded; 0 = unlimited
    bool progress = false;         ///< print a progress line per sample
    std::string label;             ///< progress line prefix
  };
  /// One point of the throughput curve (events_per_s is the rate since the
  /// previous sample, i.e. the instantaneous slope, not the run average).
  struct Sample {
    double wall_s = 0.0;
    std::uint64_t events = 0;
    double events_per_s = 0.0;
    double rss_mib = 0.0;
  };
  /// Per-worker phase breakdown copied from the RuntimeProfiler for the
  /// report (coverage = accounted phases / measured round-loop wall).
  struct WorkerPhases {
    std::uint64_t execute_ns = 0;
    std::uint64_t barrier_wait_ns = 0;
    std::uint64_t exchange_ns = 0;
    std::uint64_t loop_ns = 0;
    [[nodiscard]] double coverage() const noexcept {
      const std::uint64_t accounted =
          execute_ns + barrier_wait_ns + exchange_ns;
      return loop_ns > 0 ? static_cast<double>(accounted) /
                               static_cast<double>(loop_ns)
                         : 1.0;
    }
  };

  RunHealthMonitor();  // default Config
  explicit RunHealthMonitor(Config config);

  /// Reset all state and start the run clock. checkpoint()/finish_run()
  /// self-start when this was not called explicitly.
  void begin_run();
  /// Report progress at a safe boundary. Returns true while the run is
  /// within budget; a false return asks the caller to stop gracefully and
  /// keep the partial result.
  bool checkpoint(std::uint64_t events_so_far);
  /// Record the final sample and close the run clock. Idempotent.
  void finish_run(std::uint64_t total_events);

  /// Copy the per-worker phase breakdown + aggregate round counters out of
  /// a finished run's profiler for the report.
  void note_profile(const RuntimeProfiler& profiler);

  [[nodiscard]] bool budget_exceeded() const noexcept { return aborted_; }
  [[nodiscard]] const std::string& abort_reason() const noexcept {
    return abort_reason_;
  }
  [[nodiscard]] const std::vector<Sample>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] const std::vector<WorkerPhases>& worker_phases()
      const noexcept {
    return worker_phases_;
  }
  [[nodiscard]] double peak_rss_mib() const noexcept { return peak_rss_mib_; }
  [[nodiscard]] double wall_s() const noexcept { return wall_s_; }
  [[nodiscard]] std::uint64_t events() const noexcept { return events_; }
  /// Smallest per-worker phase coverage, or 1.0 when no profile was noted.
  [[nodiscard]] double min_phase_coverage() const noexcept;

  /// Write the structured run report ("rrnet-run-report-v1"): wall/events/
  /// throughput, peak RSS, budgets + abort state, per-worker phase
  /// breakdown (when note_profile ran), and the throughput curve. Returns
  /// false when the file cannot be written.
  bool write_report_json(const std::string& path) const;

  /// Process peak RSS in MiB (getrusage; ru_maxrss is KiB on Linux).
  [[nodiscard]] static double process_rss_mib();

 private:
  void ensure_started();
  /// Full sample: RSS read, budget checks, optional progress line.
  bool sample_now(double wall, std::uint64_t events_so_far);

  Config config_;
  bool started_ = false;
  bool finished_ = false;
  bool aborted_ = false;
  std::string abort_reason_;
  std::chrono::steady_clock::time_point t0_{};
  double last_sample_wall_s_ = 0.0;
  std::uint64_t last_sample_events_ = 0;
  double peak_rss_mib_ = 0.0;
  double wall_s_ = 0.0;
  std::uint64_t events_ = 0;
  std::vector<Sample> samples_;
  std::vector<WorkerPhases> worker_phases_;
  // Aggregate round counters from note_profile (report only).
  std::uint64_t rounds_ = 0;
  std::uint64_t exchange_rounds_ = 0;
  std::uint64_t forced_quiet_exchanges_ = 0;
  std::uint64_t handoffs_ = 0;
  std::uint64_t migrations_ = 0;
  bool profile_noted_ = false;
};

}  // namespace rrnet::obs
