#include "obs/metrics.hpp"

#include <algorithm>

namespace rrnet::obs {

void MetricRegistry::add(std::string_view name, std::uint64_t delta) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    it = entries_.emplace(std::string(name), Entry{MetricKind::Counter, 0})
             .first;
  }
  it->second.value += delta;
}

void MetricRegistry::set_max(std::string_view name, std::uint64_t value) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    entries_.emplace(std::string(name), Entry{MetricKind::Gauge, value});
    return;
  }
  it->second.kind = MetricKind::Gauge;
  it->second.value = std::max(it->second.value, value);
}

void MetricRegistry::merge(const MetricRegistry& other) {
  for (const auto& [name, entry] : other.entries_) {
    if (entry.kind == MetricKind::Gauge) {
      set_max(name, entry.value);
    } else {
      add(name, entry.value);
    }
  }
}

std::uint64_t MetricRegistry::value(std::string_view name) const noexcept {
  const auto it = entries_.find(name);
  return it == entries_.end() ? 0u : it->second.value;
}

bool MetricRegistry::contains(std::string_view name) const noexcept {
  return entries_.find(name) != entries_.end();
}

std::vector<Metric> MetricRegistry::snapshot() const {
  std::vector<Metric> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.push_back(Metric{name, entry.kind, entry.value});
  }
  return out;
}

std::uint64_t Histogram::quantile_bound(double q) const noexcept {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen > rank) {
      // Exclusive upper bound of bucket b: bucket 0 holds {0, 1}, bucket
      // b >= 1 holds [2^b, 2^(b+1)).
      return b == 0 ? 1u : (std::uint64_t{1} << (b + 1));
    }
  }
  return std::uint64_t{1} << kBuckets;
}

void Histogram::snapshot_into(MetricRegistry& registry,
                              std::string_view prefix) const {
  const std::string base(prefix);
  registry.add(base + ".count", count_);
  registry.add(base + ".sum", sum_);
  registry.set_max(base + ".p50", quantile_bound(0.50));
  registry.set_max(base + ".p99", quantile_bound(0.99));
}

}  // namespace rrnet::obs
