#include "obs/metrics.hpp"

#include <algorithm>
#include <cstring>

#include "util/contracts.hpp"

namespace rrnet::obs {

namespace {

/// lower_bound over the sorted entry vector by name.
template <typename Vec>
auto name_lower_bound(Vec& entries, std::string_view name) {
  return std::lower_bound(
      entries.begin(), entries.end(), name,
      [](const auto& entry, std::string_view n) { return entry.view() < n; });
}

}  // namespace

const MetricRegistry::Entry* MetricRegistry::find(
    std::string_view name) const noexcept {
  const auto it = name_lower_bound(entries_, name);
  return it != entries_.end() && it->view() == name ? &*it : nullptr;
}

MetricRegistry::Entry& MetricRegistry::find_or_insert(std::string_view name,
                                                      MetricKind kind) {
  RRNET_EXPECTS(name.size() <= kMaxNameLen);
  if (entries_.capacity() == 0) entries_.reserve(48);
  auto it = name_lower_bound(entries_, name);
  if (it != entries_.end() && it->view() == name) return *it;
  Entry entry;
  entry.kind = kind;
  entry.len = static_cast<std::uint8_t>(name.size());
  std::memcpy(entry.name, name.data(), name.size());
  return *entries_.insert(it, entry);
}

void MetricRegistry::add(std::string_view name, std::uint64_t delta) {
  find_or_insert(name, MetricKind::Counter).value += delta;
}

void MetricRegistry::set_max(std::string_view name, std::uint64_t value) {
  Entry& entry = find_or_insert(name, MetricKind::Gauge);
  entry.kind = MetricKind::Gauge;
  entry.value = std::max(entry.value, value);
}

void MetricRegistry::merge(const MetricRegistry& other) {
  for (const Entry& entry : other.entries_) {
    if (entry.kind == MetricKind::Gauge) {
      set_max(entry.view(), entry.value);
    } else {
      add(entry.view(), entry.value);
    }
  }
}

std::uint64_t MetricRegistry::value(std::string_view name) const noexcept {
  const Entry* entry = find(name);
  return entry == nullptr ? 0u : entry->value;
}

bool MetricRegistry::contains(std::string_view name) const noexcept {
  return find(name) != nullptr;
}

std::vector<Metric> MetricRegistry::snapshot() const {
  std::vector<Metric> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    out.push_back(Metric{std::string(entry.view()), entry.kind, entry.value});
  }
  return out;
}

std::uint64_t Histogram::quantile_bound(double q) const noexcept {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen > rank) {
      // Exclusive upper bound of bucket b: bucket 0 holds {0, 1}, bucket
      // b >= 1 holds [2^b, 2^(b+1)).
      return b == 0 ? 1u : (std::uint64_t{1} << (b + 1));
    }
  }
  return std::uint64_t{1} << kBuckets;
}

void Histogram::snapshot_into(MetricRegistry& registry,
                              std::string_view prefix) const {
  const std::string base(prefix);
  registry.add(base + ".count", count_);
  registry.add(base + ".sum", sum_);
  registry.set_max(base + ".p50", quantile_bound(0.50));
  registry.set_max(base + ".p99", quantile_bound(0.99));
}

}  // namespace rrnet::obs
