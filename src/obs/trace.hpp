// Binary event tracer (observability pillar 2).
//
// A fixed-size-record ring buffer recording packet lifecycle (net send,
// tx start/end, rx decode, drop + reason, app delivery), election
// transitions and scheduler handler spans. Two gates keep it free when
// unused:
//
//  * Compile-time: hot-path call sites use RRNET_TRACE_EVENT(...), which
//    expands to nothing unless the build defines RRNET_TRACE (CMake
//    -DRRNET_TRACE=ON). The default build therefore carries zero
//    instructions of tracing overhead — this is the invariant the
//    scripts/verify.sh bench gate enforces.
//  * Runtime: with RRNET_TRACE compiled in, records are captured only while
//    a tracer is installed for the current thread (thread_tracer()) and
//    enabled. The per-event cost is then one TLS load and a branch.
//
// The ring is preallocated; record() never allocates (hot-path safe). When
// full it wraps, keeping the most recent records and counting the
// overwritten ones. Exporters emit JSONL (one record per line) and the
// Chrome trace-event format — the produced file loads directly in Perfetto
// (ui.perfetto.dev) or chrome://tracing: packet events are instants on
// pid 0 with tid = node id, scheduler handler spans are duration events on
// pid 1 (ts = simulated microseconds, dur = handler wall-clock time), and
// shard-worker window rounds (WindowSpan / BarrierWait, emitted when
// ScenarioConfig::profile_runtime is on) are duration events on pid 2 with
// tid = worker index — one Perfetto lane per worker.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rrnet::obs {

enum class EventKind : std::uint16_t {
  NetSend = 0,       ///< network layer handed a packet to the MAC
  NetDeliver,        ///< packet delivered to the application
  PhyTxStart,        ///< frame put on the air
  PhyTxEnd,          ///< frame airtime over
  PhyRxDecoded,      ///< frame decoded by a receiver
  PhyDrop,           ///< reception lost; arg = DropReason
  MacDrop,           ///< frame dropped before airing; arg = DropReason
  ElectionArm,       ///< candidacy armed (id = flood key)
  ElectionCancel,    ///< candidacy conceded; arg = core::CancelReason
  ElectionWin,       ///< backoff expired, node relays
  ArbiterRetransmit, ///< arbiter re-triggered an election
  ArbiterAck,        ///< arbiter heard a relay and acknowledged
  HandlerSpan,       ///< one scheduler handler execution; id = wall ns
  WindowSpan,        ///< one shard-window execute; node = worker, id = wall ns
  BarrierWait,       ///< one round's barrier spinning; node = worker, id = ns
};

/// Drop classification shared by PhyDrop and MacDrop records.
enum class DropReason : std::uint16_t {
  BelowSensitivity = 0,  ///< rx power under the decode threshold
  Collision,             ///< SINR fell below threshold
  RxWhileBusy,           ///< arrived while Tx or locked on another frame
  RadioOff,              ///< radio sleeping / failed
  QueueOverflow,         ///< MAC queue full
  RetriesExhausted,      ///< unicast retry budget spent
  TxWhileBusy,           ///< transmit attempt while already transmitting
};

[[nodiscard]] const char* to_string(EventKind kind) noexcept;
[[nodiscard]] const char* to_string(DropReason reason) noexcept;

inline constexpr std::uint32_t kNoTraceNode = 0xFFFFFFFFu;

/// 24-byte POD record; the ring is a flat array of these.
struct TraceRecord {
  double time = 0.0;        ///< simulated seconds
  std::uint64_t id = 0;     ///< packet uid / flood key / frame id / wall ns
  std::uint32_t node = kNoTraceNode;
  std::uint16_t kind = 0;   ///< EventKind
  std::uint16_t arg = 0;    ///< DropReason, PacketType, CancelReason, ...
};
static_assert(sizeof(TraceRecord) == 24, "keep trace records cache-friendly");

class EventTracer {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 20;

  /// Preallocates the ring; record() never allocates afterwards.
  explicit EventTracer(std::size_t capacity = kDefaultCapacity);

  EventTracer(const EventTracer&) = delete;
  EventTracer& operator=(const EventTracer&) = delete;

  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Append one record (dropping the oldest when the ring is full). No-op
  /// while disabled. Never allocates.
  void record(EventKind kind, double time, std::uint32_t node,
              std::uint64_t id, std::uint16_t arg = 0) noexcept;

  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  /// Records currently held (<= capacity).
  [[nodiscard]] std::size_t size() const noexcept;
  /// Total records accepted, including ones the wrap discarded.
  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }
  /// Records lost to ring wrap.
  [[nodiscard]] std::uint64_t dropped() const noexcept;

  void clear() noexcept;

  /// Held records, oldest first.
  [[nodiscard]] std::vector<TraceRecord> snapshot() const;

  /// One JSON object per line. Returns false on stream failure.
  bool export_jsonl(std::ostream& os) const;
  /// Chrome trace-event JSON ({"traceEvents": [...]}); loads in Perfetto.
  bool export_chrome_trace(std::ostream& os) const;
  /// File helpers; false when the file cannot be written.
  bool export_jsonl_file(const std::string& path) const;
  bool export_chrome_trace_file(const std::string& path) const;

 private:
  template <typename Fn>
  void for_each_ordered(Fn&& fn) const;

  std::vector<TraceRecord> ring_;
  std::uint64_t recorded_ = 0;
  bool enabled_ = false;
};

/// Exporters over an already-materialized record stream — the sharded
/// engine merges one per-worker ring per shard thread by timestamp
/// (sim::run_scenario_sharded) and hands the merged vector here; the
/// formatting is byte-identical to EventTracer::export_*.
bool export_records_jsonl(const std::vector<TraceRecord>& records,
                          std::ostream& os);
bool export_records_chrome_trace(const std::vector<TraceRecord>& records,
                                 std::ostream& os);
bool export_records_jsonl_file(const std::vector<TraceRecord>& records,
                               const std::string& path);
bool export_records_chrome_trace_file(const std::vector<TraceRecord>& records,
                                      const std::string& path);

/// Timestamp-stable merge of per-worker record streams (each already in
/// capture order): equal timestamps keep stream order, then intra-stream
/// order. The sharded engine merges its per-worker rings through this; the
/// ring-wrap tests exercise it directly.
[[nodiscard]] std::vector<TraceRecord> merge_records_by_time(
    const std::vector<std::vector<TraceRecord>>& streams);

/// The tracer capturing this thread's events (null = none). Installed per
/// worker thread by sim::SimInstance, matching the simulator's
/// shared-nothing replication model.
[[nodiscard]] EventTracer* thread_tracer() noexcept;
/// Install `tracer` for the calling thread; returns the previous tracer.
EventTracer* set_thread_tracer(EventTracer* tracer) noexcept;

/// True when the build compiled hot-path instrumentation in (RRNET_TRACE).
[[nodiscard]] bool trace_compiled_in() noexcept;

}  // namespace rrnet::obs

// Hot-path instrumentation macro: zero-cost unless RRNET_TRACE is defined.
#ifdef RRNET_TRACE
#define RRNET_TRACE_EVENT(kind, time, node, id, arg)                       \
  do {                                                                     \
    ::rrnet::obs::EventTracer* rrnet_tracer_ =                             \
        ::rrnet::obs::thread_tracer();                                     \
    if (rrnet_tracer_ != nullptr) {                                        \
      rrnet_tracer_->record((kind), (time),                                \
                            static_cast<std::uint32_t>(node),              \
                            static_cast<std::uint64_t>(id),                \
                            static_cast<std::uint16_t>(arg));              \
    }                                                                      \
  } while (false)
#else
#define RRNET_TRACE_EVENT(kind, time, node, id, arg) \
  do {                                               \
  } while (false)
#endif
