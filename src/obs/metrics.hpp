// Per-layer metric registry (observability pillar 1).
//
// Hot paths never touch the registry: every layer keeps incrementing its
// plain-uint64 stats struct (TransceiverStats, MacStats, ElectionStats, ...)
// exactly as before, and the registry is assembled once at end-of-run by
// walking those structs (net::Network::snapshot_metrics, sim::SimInstance).
// The registry therefore costs nothing per event; its job is a uniform,
// deterministically ordered namespace for counters so ScenarioResult,
// replication merging, sweep CSVs and BENCH_engine.json all speak the same
// vocabulary.
//
// Metric names are statically registered as the constants in obs::metric
// below (layer.name, lowercase, dot-separated). Two kinds:
//  * Counter — monotonic count; replications merge by summation.
//  * Gauge   — level / high-water mark; replications merge by maximum.
// Histograms are carried by obs::Histogram (log2-bucketed) inside a layer's
// stats struct and flattened into scalar registry entries (count / sum /
// approximate percentiles) via Histogram::snapshot_into.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rrnet::obs {

enum class MetricKind : std::uint8_t {
  Counter,  ///< monotonic; merged across replications by sum
  Gauge,    ///< level / high-water; merged across replications by max
};

/// One registry entry, as returned by snapshot().
struct Metric {
  std::string name;
  MetricKind kind = MetricKind::Counter;
  std::uint64_t value = 0;
};

/// Deterministically ordered (by name) scalar metric store. Cheap to copy;
/// intended for end-of-run snapshots, never for per-event updates.
///
/// Storage is a name-sorted flat vector of 64-byte entries with inline
/// names: the node-and-string churn of the std::map this replaced was the
/// single largest per-run allocation source in sharded scenarios (one
/// registry per shard plus merges, every metric name longer than SSO).
/// Entries are trivially copyable; a registry's only allocation is its
/// vector's growth, reserved to typical size on first insert.
class MetricRegistry {
 public:
  /// Longest accepted metric name; inline storage keeps entries at 64 B.
  static constexpr std::size_t kMaxNameLen = 54;

  /// Add `delta` to counter `name` (created at zero when absent).
  void add(std::string_view name, std::uint64_t delta);
  /// Raise gauge `name` to at least `value` (created when absent).
  void set_max(std::string_view name, std::uint64_t value);

  /// Merge `other` into this registry: counters sum, gauges max. Merging in
  /// replication-index order yields thread-count-independent results.
  void merge(const MetricRegistry& other);

  /// Value of `name`, or 0 when absent.
  [[nodiscard]] std::uint64_t value(std::string_view name) const noexcept;
  [[nodiscard]] bool contains(std::string_view name) const noexcept;
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// All entries in name order.
  [[nodiscard]] std::vector<Metric> snapshot() const;

 private:
  struct Entry {
    std::uint64_t value = 0;
    MetricKind kind = MetricKind::Counter;
    std::uint8_t len = 0;
    char name[kMaxNameLen];  ///< not NUL-terminated; `len` bytes valid
    [[nodiscard]] std::string_view view() const noexcept {
      return {name, len};
    }
  };
  static_assert(sizeof(Entry) == 64);

  [[nodiscard]] const Entry* find(std::string_view name) const noexcept;
  /// Sorted-position insert (or existing entry); sets kind only on create.
  Entry& find_or_insert(std::string_view name, MetricKind kind);

  std::vector<Entry> entries_;  ///< sorted by name
};

/// Log2-bucketed histogram of nonnegative integer samples: bucket 0 counts
/// zeros and ones, bucket k >= 1 counts samples in [2^k, 2^(k+1)). Fixed
/// storage, O(1) observe — cheap enough to live inside a per-node stats
/// struct and be bumped on moderately hot paths (e.g. MAC backoff draws).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 33;

  void observe(std::uint64_t value) noexcept {
    ++buckets_[bucket_of(value)];
    ++count_;
    sum_ += value;
  }

  void merge(const Histogram& other) noexcept {
    for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ += other.sum_;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  /// Upper bound of the bucket holding quantile `q` in [0, 1] — an
  /// approximate percentile with power-of-two resolution.
  [[nodiscard]] std::uint64_t quantile_bound(double q) const noexcept;

  /// Flatten into scalar registry entries: `prefix.count`, `prefix.sum`
  /// (counters) and `prefix.p50` / `prefix.p99` (gauges).
  void snapshot_into(MetricRegistry& registry, std::string_view prefix) const;

 private:
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t value) noexcept {
    std::size_t b = 0;
    while (value > 1 && b + 1 < kBuckets) {
      value >>= 1;
      ++b;
    }
    return b;
  }

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
};

/// The statically registered metric namespace. Layers instrument against
/// these constants; ad-hoc names are allowed but discouraged.
namespace metric {
// PHY — channel-wide and per-transceiver reception accounting.
inline constexpr std::string_view kPhyTransmissions = "phy.transmissions";
inline constexpr std::string_view kPhyDeliveries = "phy.deliveries";
inline constexpr std::string_view kPhyTxFrames = "phy.tx_frames";
inline constexpr std::string_view kPhySignalsArrived = "phy.signals_arrived";
inline constexpr std::string_view kPhyRxDecoded = "phy.rx_decoded";
inline constexpr std::string_view kPhyDropCollision = "phy.drop_collision";
inline constexpr std::string_view kPhyDropRxWhileBusy = "phy.drop_rx_while_busy";
inline constexpr std::string_view kPhyDropBelowSensitivity =
    "phy.drop_below_sensitivity";
inline constexpr std::string_view kPhyDropWhileOff = "phy.drop_while_off";
inline constexpr std::string_view kPhyDropAbortedOff = "phy.drop_aborted_off";
inline constexpr std::string_view kPhyTxDroppedOff = "phy.tx_dropped_off";
inline constexpr std::string_view kPhyTxDroppedBusy = "phy.tx_dropped_busy";

// MAC — contention, retries, queueing.
inline constexpr std::string_view kMacDataTx = "mac.data_tx";
inline constexpr std::string_view kMacAckTx = "mac.ack_tx";
inline constexpr std::string_view kMacRtsTx = "mac.rts_tx";
inline constexpr std::string_view kMacCtsTx = "mac.cts_tx";
inline constexpr std::string_view kMacBackoffs = "mac.backoffs";
inline constexpr std::string_view kMacRetries = "mac.retries";
inline constexpr std::string_view kMacCtsTimeouts = "mac.cts_timeouts";
inline constexpr std::string_view kMacNavDeferrals = "mac.nav_deferrals";
inline constexpr std::string_view kMacUnicastFailures = "mac.unicast_failures";
inline constexpr std::string_view kMacQueueDrops = "mac.queue_drops";
inline constexpr std::string_view kMacTxDroppedRadioOff =
    "mac.tx_dropped_radio_off";
inline constexpr std::string_view kMacQueueHighWater = "mac.queue_high_water";
inline constexpr std::string_view kMacBackoffSlots = "mac.backoff_slots";

// NET — per-node packet accounting and duplicate suppression.
inline constexpr std::string_view kNetTxData = "net.tx_data";
inline constexpr std::string_view kNetTxControl = "net.tx_control";
inline constexpr std::string_view kNetDelivered = "net.delivered";
inline constexpr std::string_view kNetDupCacheHits = "net.dup_cache_hits";
inline constexpr std::string_view kNetDupCacheEvictions =
    "net.dup_cache_evictions";

// Leader election / arbiter (core).
inline constexpr std::string_view kElectionArmed = "election.armed";
inline constexpr std::string_view kElectionWon = "election.won";
inline constexpr std::string_view kElectionCancelledDuplicate =
    "election.cancelled_duplicate";
inline constexpr std::string_view kElectionCancelledAck =
    "election.cancelled_ack";
inline constexpr std::string_view kElectionCancelledSuperseded =
    "election.cancelled_superseded";
inline constexpr std::string_view kArbiterWatches = "arbiter.watches";
inline constexpr std::string_view kArbiterRelaysHeard = "arbiter.relays_heard";
inline constexpr std::string_view kArbiterRetransmits = "arbiter.retransmits";
inline constexpr std::string_view kArbiterGaveUp = "arbiter.gave_up";

// Scheduler.
inline constexpr std::string_view kDesEventsExecuted = "des.events_executed";
inline constexpr std::string_view kDesHeapHighWater = "des.heap_high_water";

// Pools and arenas (per-run deltas; gauges reset at run start).
inline constexpr std::string_view kPoolPacketAllocs =
    "pool.packet_buffer_allocs";
inline constexpr std::string_view kPoolPacketHeapAllocs =
    "pool.packet_buffer_heap_allocs";
inline constexpr std::string_view kPoolPacketInUseHighWater =
    "pool.packet_buffer_in_use_high_water";
inline constexpr std::string_view kPoolObjectAllocs = "pool.object_allocs";
inline constexpr std::string_view kPoolObjectHeapAllocs =
    "pool.object_heap_allocs";
inline constexpr std::string_view kPoolObjectInUseHighWater =
    "pool.object_in_use_high_water";

// Sharded engine internals (absent from serial runs; excluded from the
// bit-identity contract like des.* / pool.*).
inline constexpr std::string_view kSimNodeMigrations = "sim.node_migrations";

// Runtime profiler (ScenarioConfig::profile_runtime). Wall-clock derived —
// engine-internal like sim.*, excluded from bit-identity sweeps. Round
// counters are replicated across workers, hence gauges; ns totals and
// handoff/bound counters sum across workers.
inline constexpr std::string_view kShardRounds = "shard.rounds";
inline constexpr std::string_view kShardExchangeRounds =
    "shard.exchange_rounds";
inline constexpr std::string_view kShardForcedQuietExchanges =
    "shard.forced_quiet_exchanges";
inline constexpr std::string_view kShardHandoffs = "shard.handoffs";
inline constexpr std::string_view kShardProfiledMigrations =
    "shard.profiled_migrations";
inline constexpr std::string_view kShardBoundArmedTx = "shard.bound_armed_tx";
inline constexpr std::string_view kShardBoundPendingPhy =
    "shard.bound_pending_phy";
inline constexpr std::string_view kShardBoundNextEvent =
    "shard.bound_next_event";
// Histogram prefixes (.count/.sum/.p50/.p99 appended by snapshot_into).
inline constexpr std::string_view kShardWindowWidthNs =
    "shard.window_width_ns";
inline constexpr std::string_view kShardHandoffFanout = "shard.handoff_fanout";
inline constexpr std::string_view kShardBatchWidth = "shard.batch_width";
// Phase wall totals across workers + barrier-wait share (percent gauge;
// per-worker variants are runtime.w<t>.barrier_wait_pct).
inline constexpr std::string_view kRuntimeExecuteNs = "runtime.execute_ns";
inline constexpr std::string_view kRuntimeBarrierWaitNs =
    "runtime.barrier_wait_ns";
inline constexpr std::string_view kRuntimeExchangeNs = "runtime.exchange_ns";
inline constexpr std::string_view kRuntimeBarrierWaitPct =
    "runtime.barrier_wait_pct";
}  // namespace metric

}  // namespace rrnet::obs
