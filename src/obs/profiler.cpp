#include "obs/profiler.hpp"

#include <sys/resource.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <utility>

namespace rrnet::obs {
namespace {

/// Percentage helper that never divides by zero.
std::uint64_t pct_of(std::uint64_t part, std::uint64_t whole) noexcept {
  return whole > 0 ? (100 * part) / whole : 0;
}

/// JSON-safe double: report files must survive `python3 -m json.tool`, so
/// NaN/inf (not valid JSON) collapse to 0.
double json_num(double v) noexcept { return std::isfinite(v) ? v : 0.0; }

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", json_num(v));
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

void RuntimeProfiler::snapshot_into(MetricRegistry& registry) const {
  std::uint64_t phase_total[3] = {0, 0, 0};
  std::uint64_t handoffs = 0;
  std::uint64_t migrations = 0;
  std::uint64_t bound[3] = {0, 0, 0};
  Histogram window_width;
  Histogram fanout;
  Histogram batch;
  char name[MetricRegistry::kMaxNameLen + 1];
  for (std::uint32_t t = 0; t < workers(); ++t) {
    const WorkerProfile& w = workers_[t];
    for (int p = 0; p < 3; ++p) phase_total[p] += w.phase_ns[p];
    handoffs += w.handoffs_out;
    migrations += w.migrations_out;
    for (int b = 0; b < 3; ++b) bound[b] += w.bound_source[b];
    // Round counters are replicated (every worker walks the same rounds):
    // gauges, so K workers do not inflate them K-fold.
    registry.set_max(metric::kShardRounds, w.rounds);
    registry.set_max(metric::kShardExchangeRounds, w.exchange_rounds);
    registry.set_max(metric::kShardForcedQuietExchanges,
                     w.forced_quiet_exchanges);
    window_width.merge(w.window_width_ns);
    fanout.merge(w.handoff_fanout);
    batch.merge(w.batch_width);
    std::snprintf(name, sizeof(name), "runtime.w%u.barrier_wait_pct", t);
    registry.set_max(name, pct_of(w.phase_ns[1], w.accounted_ns()));
  }
  registry.add(metric::kRuntimeExecuteNs, phase_total[0]);
  registry.add(metric::kRuntimeBarrierWaitNs, phase_total[1]);
  registry.add(metric::kRuntimeExchangeNs, phase_total[2]);
  registry.set_max(metric::kRuntimeBarrierWaitPct,
                   pct_of(phase_total[1],
                          phase_total[0] + phase_total[1] + phase_total[2]));
  registry.add(metric::kShardHandoffs, handoffs);
  registry.add(metric::kShardProfiledMigrations, migrations);
  registry.add(metric::kShardBoundArmedTx, bound[0]);
  registry.add(metric::kShardBoundPendingPhy, bound[1]);
  registry.add(metric::kShardBoundNextEvent, bound[2]);
  if (!window_width.empty()) {
    window_width.snapshot_into(registry, metric::kShardWindowWidthNs);
  }
  if (!fanout.empty()) fanout.snapshot_into(registry, metric::kShardHandoffFanout);
  if (!batch.empty()) batch.snapshot_into(registry, metric::kShardBatchWidth);
}

RunHealthMonitor::RunHealthMonitor() : RunHealthMonitor(Config()) {}

RunHealthMonitor::RunHealthMonitor(Config config)
    : config_(std::move(config)) {}

double RunHealthMonitor::process_rss_mib() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KiB on Linux
}

void RunHealthMonitor::begin_run() {
  started_ = true;
  finished_ = false;
  aborted_ = false;
  abort_reason_.clear();
  t0_ = std::chrono::steady_clock::now();
  last_sample_wall_s_ = 0.0;
  last_sample_events_ = 0;
  peak_rss_mib_ = 0.0;
  wall_s_ = 0.0;
  events_ = 0;
  samples_.clear();
  worker_phases_.clear();
  rounds_ = exchange_rounds_ = forced_quiet_exchanges_ = 0;
  handoffs_ = migrations_ = 0;
  profile_noted_ = false;
}

void RunHealthMonitor::ensure_started() {
  if (!started_) begin_run();
}

bool RunHealthMonitor::sample_now(double wall, std::uint64_t events_so_far) {
  const double dt = wall - last_sample_wall_s_;
  const double rate =
      dt > 0.0
          ? static_cast<double>(events_so_far - last_sample_events_) / dt
          : 0.0;
  const double rss = process_rss_mib();
  peak_rss_mib_ = std::max(peak_rss_mib_, rss);
  samples_.push_back(Sample{wall, events_so_far, rate, rss});
  last_sample_wall_s_ = wall;
  last_sample_events_ = events_so_far;
  if (config_.progress) {
    std::fprintf(stderr, "  [%s] %.1fs  %.2fM events  %.2fM ev/s  %.0f MiB\n",
                 config_.label.c_str(), wall,
                 static_cast<double>(events_so_far) * 1e-6, rate * 1e-6, rss);
  }
  if (!aborted_ && config_.rss_budget_mib > 0.0 &&
      rss > config_.rss_budget_mib) {
    aborted_ = true;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "rss %.0f MiB exceeded budget %.0f MiB",
                  rss, config_.rss_budget_mib);
    abort_reason_ = buf;
  }
  if (!aborted_ && config_.wall_budget_s > 0.0 &&
      wall > config_.wall_budget_s) {
    aborted_ = true;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "wall %.1fs exceeded budget %.1fs", wall,
                  config_.wall_budget_s);
    abort_reason_ = buf;
  }
  return !aborted_;
}

bool RunHealthMonitor::checkpoint(std::uint64_t events_so_far) {
  ensure_started();
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0_)
                          .count();
  events_ = events_so_far;
  wall_s_ = wall;
  // Wall budget is checked every checkpoint (the clock was already read);
  // RSS + progress only once per sample period.
  if (!aborted_ && config_.wall_budget_s > 0.0 &&
      wall > config_.wall_budget_s) {
    aborted_ = true;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "wall %.1fs exceeded budget %.1fs", wall,
                  config_.wall_budget_s);
    abort_reason_ = buf;
  }
  if (samples_.empty() ||
      wall - last_sample_wall_s_ >= config_.sample_period_s) {
    return sample_now(wall, events_so_far);
  }
  return !aborted_;
}

void RunHealthMonitor::finish_run(std::uint64_t total_events) {
  ensure_started();
  if (finished_) return;
  finished_ = true;
  wall_s_ = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0_)
                .count();
  events_ = total_events;
  sample_now(wall_s_, total_events);
}

void RunHealthMonitor::note_profile(const RuntimeProfiler& profiler) {
  worker_phases_.clear();
  worker_phases_.reserve(profiler.workers());
  handoffs_ = migrations_ = 0;
  for (std::uint32_t t = 0; t < profiler.workers(); ++t) {
    const WorkerProfile& w = profiler.worker(t);
    worker_phases_.push_back(WorkerPhases{
        w.phase_ns[0], w.phase_ns[1], w.phase_ns[2], w.loop_ns});
    handoffs_ += w.handoffs_out;
    migrations_ += w.migrations_out;
    rounds_ = std::max(rounds_, w.rounds);
    exchange_rounds_ = std::max(exchange_rounds_, w.exchange_rounds);
    forced_quiet_exchanges_ =
        std::max(forced_quiet_exchanges_, w.forced_quiet_exchanges);
  }
  profile_noted_ = true;
}

double RunHealthMonitor::min_phase_coverage() const noexcept {
  double min_cov = 1.0;
  for (const WorkerPhases& w : worker_phases_) {
    min_cov = std::min(min_cov, w.coverage());
  }
  return min_cov;
}

bool RunHealthMonitor::write_report_json(const std::string& path) const {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"schema\": \"rrnet-run-report-v1\",\n  \"label\": ";
  append_json_string(out, config_.label);
  out += ",\n  \"wall_s\": ";
  append_double(out, wall_s_);
  out += ",\n  \"events\": ";
  append_u64(out, events_);
  out += ",\n  \"events_per_s\": ";
  append_double(out, wall_s_ > 0.0
                         ? static_cast<double>(events_) / wall_s_
                         : 0.0);
  out += ",\n  \"peak_rss_mib\": ";
  append_double(out, peak_rss_mib_);
  out += ",\n  \"aborted\": ";
  out += aborted_ ? "true" : "false";
  out += ",\n  \"abort_reason\": ";
  append_json_string(out, abort_reason_);
  out += ",\n  \"budgets\": {\"wall_s\": ";
  append_double(out, config_.wall_budget_s);
  out += ", \"rss_mib\": ";
  append_double(out, config_.rss_budget_mib);
  out += "}";
  if (profile_noted_) {
    std::uint64_t exec = 0;
    std::uint64_t barrier = 0;
    std::uint64_t exch = 0;
    for (const WorkerPhases& w : worker_phases_) {
      exec += w.execute_ns;
      barrier += w.barrier_wait_ns;
      exch += w.exchange_ns;
    }
    const std::uint64_t total = exec + barrier + exch;
    out += ",\n  \"phases\": {\n    \"totals\": {\"execute_ns\": ";
    append_u64(out, exec);
    out += ", \"barrier_wait_ns\": ";
    append_u64(out, barrier);
    out += ", \"exchange_ns\": ";
    append_u64(out, exch);
    out += ", \"barrier_wait_frac\": ";
    append_double(out, total > 0 ? static_cast<double>(barrier) /
                                       static_cast<double>(total)
                                 : 0.0);
    out += "},\n    \"rounds\": ";
    append_u64(out, rounds_);
    out += ",\n    \"exchange_rounds\": ";
    append_u64(out, exchange_rounds_);
    out += ",\n    \"forced_quiet_exchanges\": ";
    append_u64(out, forced_quiet_exchanges_);
    out += ",\n    \"handoffs\": ";
    append_u64(out, handoffs_);
    out += ",\n    \"migrations\": ";
    append_u64(out, migrations_);
    out += ",\n    \"workers\": [";
    for (std::size_t t = 0; t < worker_phases_.size(); ++t) {
      const WorkerPhases& w = worker_phases_[t];
      out += t == 0 ? "\n" : ",\n";
      out += "      {\"worker\": ";
      append_u64(out, t);
      out += ", \"execute_ns\": ";
      append_u64(out, w.execute_ns);
      out += ", \"barrier_wait_ns\": ";
      append_u64(out, w.barrier_wait_ns);
      out += ", \"exchange_ns\": ";
      append_u64(out, w.exchange_ns);
      out += ", \"loop_ns\": ";
      append_u64(out, w.loop_ns);
      out += ", \"coverage\": ";
      append_double(out, w.coverage());
      out += "}";
    }
    out += "\n    ]\n  }";
  }
  out += ",\n  \"throughput\": [";
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const Sample& s = samples_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"wall_s\": ";
    append_double(out, s.wall_s);
    out += ", \"events\": ";
    append_u64(out, s.events);
    out += ", \"events_per_s\": ";
    append_double(out, s.events_per_s);
    out += ", \"rss_mib\": ";
    append_double(out, s.rss_mib);
    out += "}";
  }
  out += samples_.empty() ? "]\n}\n" : "\n  ]\n}\n";
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  os.write(out.data(), static_cast<std::streamsize>(out.size()));
  return os.good();
}

}  // namespace rrnet::obs
