#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "util/contracts.hpp"

namespace rrnet::obs {

namespace {
thread_local EventTracer* t_tracer = nullptr;
}  // namespace

EventTracer* thread_tracer() noexcept { return t_tracer; }

EventTracer* set_thread_tracer(EventTracer* tracer) noexcept {
  EventTracer* previous = t_tracer;
  t_tracer = tracer;
  return previous;
}

bool trace_compiled_in() noexcept {
#ifdef RRNET_TRACE
  return true;
#else
  return false;
#endif
}

const char* to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::NetSend: return "net_send";
    case EventKind::NetDeliver: return "net_deliver";
    case EventKind::PhyTxStart: return "phy_tx_start";
    case EventKind::PhyTxEnd: return "phy_tx_end";
    case EventKind::PhyRxDecoded: return "phy_rx_decoded";
    case EventKind::PhyDrop: return "phy_drop";
    case EventKind::MacDrop: return "mac_drop";
    case EventKind::ElectionArm: return "election_arm";
    case EventKind::ElectionCancel: return "election_cancel";
    case EventKind::ElectionWin: return "election_win";
    case EventKind::ArbiterRetransmit: return "arbiter_retransmit";
    case EventKind::ArbiterAck: return "arbiter_ack";
    case EventKind::HandlerSpan: return "handler_span";
    case EventKind::WindowSpan: return "window_span";
    case EventKind::BarrierWait: return "barrier_wait";
  }
  return "unknown";
}

const char* to_string(DropReason reason) noexcept {
  switch (reason) {
    case DropReason::BelowSensitivity: return "below_sensitivity";
    case DropReason::Collision: return "collision";
    case DropReason::RxWhileBusy: return "rx_while_busy";
    case DropReason::RadioOff: return "radio_off";
    case DropReason::QueueOverflow: return "queue_overflow";
    case DropReason::RetriesExhausted: return "retries_exhausted";
    case DropReason::TxWhileBusy: return "tx_while_busy";
  }
  return "unknown";
}

EventTracer::EventTracer(std::size_t capacity) {
  RRNET_EXPECTS(capacity > 0);
  ring_.resize(capacity);
}

void EventTracer::record(EventKind kind, double time, std::uint32_t node,
                         std::uint64_t id, std::uint16_t arg) noexcept {
  if (!enabled_) return;
  TraceRecord& slot = ring_[recorded_ % ring_.size()];
  slot.time = time;
  slot.id = id;
  slot.node = node;
  slot.kind = static_cast<std::uint16_t>(kind);
  slot.arg = arg;
  ++recorded_;
}

std::size_t EventTracer::size() const noexcept {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(recorded_, ring_.size()));
}

std::uint64_t EventTracer::dropped() const noexcept {
  return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0u;
}

void EventTracer::clear() noexcept { recorded_ = 0; }

template <typename Fn>
void EventTracer::for_each_ordered(Fn&& fn) const {
  const std::size_t n = size();
  const std::size_t start =
      recorded_ > ring_.size()
          ? static_cast<std::size_t>(recorded_ % ring_.size())
          : 0u;
  for (std::size_t i = 0; i < n; ++i) {
    fn(ring_[(start + i) % ring_.size()]);
  }
}

std::vector<TraceRecord> EventTracer::snapshot() const {
  std::vector<TraceRecord> out;
  out.reserve(size());
  for_each_ordered([&](const TraceRecord& r) { out.push_back(r); });
  return out;
}

namespace {

bool is_drop(EventKind kind) noexcept {
  return kind == EventKind::PhyDrop || kind == EventKind::MacDrop;
}

void append_jsonl_record(std::ostream& os, const TraceRecord& r) {
  const auto kind = static_cast<EventKind>(r.kind);
  os << "{\"t\":" << r.time << ",\"kind\":\"" << to_string(kind) << "\"";
  if (r.node != kNoTraceNode) os << ",\"node\":" << r.node;
  os << ",\"id\":" << r.id << ",\"arg\":" << r.arg;
  if (is_drop(kind)) {
    os << ",\"reason\":\"" << to_string(static_cast<DropReason>(r.arg))
       << "\"";
  }
  os << "}\n";
}

void append_chrome_preamble(std::ostream& os) {
  os << "{\"traceEvents\":[\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
        "\"args\":{\"name\":\"network (tid = node id)\"}},\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"scheduler\"}},\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,"
        "\"args\":{\"name\":\"shard workers (tid = worker)\"}}";
}

void append_chrome_record(std::ostream& os, const TraceRecord& r) {
  const auto kind = static_cast<EventKind>(r.kind);
  const double ts_us = r.time * 1e6;  // simulated seconds -> microseconds
  os << ",\n";
  if (kind == EventKind::HandlerSpan) {
    // Span on the scheduler track: position on the simulated-time axis,
    // width = the handler's wall-clock cost (id field carries wall ns).
    const double dur_us = std::max(static_cast<double>(r.id) * 1e-3, 1e-3);
    os << "{\"name\":\"handler\",\"ph\":\"X\",\"ts\":" << ts_us
       << ",\"dur\":" << dur_us
       << ",\"pid\":1,\"tid\":0,\"args\":{\"wall_ns\":" << r.id << "}}";
    return;
  }
  if (kind == EventKind::WindowSpan || kind == EventKind::BarrierWait) {
    // Worker lanes: one Perfetto row per shard worker (pid 2, tid = worker
    // index). Positioned on the simulated-time axis at the round's window,
    // width = that phase's wall-clock cost this round (id carries wall ns).
    const double dur_us = std::max(static_cast<double>(r.id) * 1e-3, 1e-3);
    os << "{\"name\":\""
       << (kind == EventKind::WindowSpan ? "window" : "barrier_wait")
       << "\",\"ph\":\"X\",\"ts\":" << ts_us << ",\"dur\":" << dur_us
       << ",\"pid\":2,\"tid\":" << (r.node == kNoTraceNode ? 0u : r.node)
       << ",\"args\":{\"wall_ns\":" << r.id << "}}";
    return;
  }
  os << "{\"name\":\"" << to_string(kind);
  if (is_drop(kind)) {
    os << "(" << to_string(static_cast<DropReason>(r.arg)) << ")";
  }
  os << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << ts_us << ",\"pid\":0"
     << ",\"tid\":" << (r.node == kNoTraceNode ? 0u : r.node)
     << ",\"args\":{\"id\":" << r.id << ",\"arg\":" << r.arg << "}}";
}

}  // namespace

bool EventTracer::export_jsonl(std::ostream& os) const {
  for_each_ordered([&](const TraceRecord& r) { append_jsonl_record(os, r); });
  return static_cast<bool>(os);
}

bool EventTracer::export_chrome_trace(std::ostream& os) const {
  append_chrome_preamble(os);
  for_each_ordered([&](const TraceRecord& r) { append_chrome_record(os, r); });
  os << "\n]}\n";
  return static_cast<bool>(os);
}

bool export_records_jsonl(const std::vector<TraceRecord>& records,
                          std::ostream& os) {
  for (const TraceRecord& r : records) append_jsonl_record(os, r);
  return static_cast<bool>(os);
}

bool export_records_chrome_trace(const std::vector<TraceRecord>& records,
                                 std::ostream& os) {
  append_chrome_preamble(os);
  for (const TraceRecord& r : records) append_chrome_record(os, r);
  os << "\n]}\n";
  return static_cast<bool>(os);
}

std::vector<TraceRecord> merge_records_by_time(
    const std::vector<std::vector<TraceRecord>>& streams) {
  std::size_t total = 0;
  for (const std::vector<TraceRecord>& stream : streams) {
    total += stream.size();
  }
  std::vector<TraceRecord> merged;
  merged.reserve(total);
  for (const std::vector<TraceRecord>& stream : streams) {
    merged.insert(merged.end(), stream.begin(), stream.end());
  }
  // Stable: equal timestamps keep (stream, intra-stream) order, so the
  // merged output is deterministic for a fixed worker count.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.time < b.time;
                   });
  return merged;
}

bool export_records_jsonl_file(const std::vector<TraceRecord>& records,
                               const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  return export_records_jsonl(records, os);
}

bool export_records_chrome_trace_file(const std::vector<TraceRecord>& records,
                                      const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  return export_records_chrome_trace(records, os);
}

bool EventTracer::export_jsonl_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  return export_jsonl(os);
}

bool EventTracer::export_chrome_trace_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  return export_chrome_trace(os);
}

}  // namespace rrnet::obs
