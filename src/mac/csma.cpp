#include "mac/csma.hpp"

#include <algorithm>
#include <utility>

#include "obs/trace.hpp"
#include "util/contracts.hpp"

#include <cstdio>
#include <cstdlib>

namespace {
bool mac_trace_enabled() {
  static const bool on = std::getenv("RRNET_MAC_TRACE") != nullptr;
  return on;
}
#define MAC_TRACE(...) \
  do { if (mac_trace_enabled()) std::fprintf(stderr, __VA_ARGS__); } while (0)
}  // namespace

namespace rrnet::mac {


CsmaMac::CsmaMac(phy::Channel& channel, std::uint32_t node_id,
                 MacParams params, des::Rng rng, MacListener& listener)
    : channel_(&channel),
      scheduler_(&channel.scheduler()),
      node_id_(node_id),
      params_(params),
      rng_(rng),
      listener_(&listener),
      queue_(params.queue_capacity, params.priority_queue),
      backoff_timer_(channel.scheduler()),
      difs_timer_(channel.scheduler()),
      ack_timer_(channel.scheduler()),
      nav_timer_(channel.scheduler()) {
  RRNET_EXPECTS(params.cw_min > 0);
  RRNET_EXPECTS(params.cw_max >= params.cw_min);
  channel_->transceiver(node_id_).attach(*this);
}

void CsmaMac::send(std::uint32_t dst, net::PacketRef packet,
                   std::uint32_t payload_bytes, double priority) {
  Frame frame;
  frame.kind = FrameKind::Data;
  frame.src = node_id_;
  frame.dst = dst;
  frame.sequence = next_sequence_++;
  frame.size_bytes = payload_bytes + kMacHeaderBytes;
  frame.payload = std::move(packet);
  if (!queue_.push(QueuedFrame{frame, priority})) {
    ++stats_.queue_drops;
    RRNET_TRACE_EVENT(obs::EventKind::MacDrop, scheduler_->now(), node_id_,
                      frame.payload ? frame.payload.uid() : 0u,
                      obs::DropReason::QueueOverflow);
    listener_->mac_send_done(frame, false);
    return;
  }
  if (state_ == TxState::Idle) serve_next();
}

void CsmaMac::serve_next() {
  RRNET_ASSERT(state_ == TxState::Idle);
  RRNET_ASSERT(!current_.has_value());
  auto next = queue_.pop();
  if (!next.has_value()) return;
  current_ = std::move(next);
  attempt_ = 0;
  cw_ = params_.cw_min;
  slots_left_ = 0;
  begin_attempt();
}

void CsmaMac::begin_attempt() {
  const phy::Transceiver& radio = channel_->transceiver(node_id_);
  if (radio.is_off()) {
    ++stats_.tx_dropped_radio_off;
    finish_current(false);
    return;
  }
  if (radio.medium_busy() || nav_blocked()) {
    if (nav_blocked()) ++stats_.nav_deferrals;
    state_ = TxState::WaitIdle;
    return;
  }
  start_difs();
}

void CsmaMac::start_difs() {
  state_ = TxState::Difs;
  // DIFS expiry can transmit immediately (a zero backoff draw), so the
  // sharded engine must know about it before the window bound is computed.
  channel_->note_armed_tx(scheduler_->now() + params_.difs);
  difs_timer_.start(params_.difs, [this]() { start_backoff(); });
}

void CsmaMac::start_backoff() {
  if (slots_left_ == 0) {
    slots_left_ = static_cast<std::uint32_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(cw_) - 1));
    ++stats_.backoffs;
    stats_.backoff_slots.observe(slots_left_);
  }
  state_ = TxState::Backoff;
  if (slots_left_ == 0) {
    transmit_current();
    return;
  }
  // Only the final slot's expiry transmits, but the whole countdown can run
  // inside one synchronization window, so the armed-transmit note must be
  // pushed NOW for the countdown's end. Accumulate hop by hop — each slot
  // timer fires at exactly (previous expiry + slot_time), so repeating the
  // same additions reproduces the final expiry bit-for-bit. A pause only
  // delays the transmit, leaving this note a stale (conservative) bound.
  des::Time armed = scheduler_->now();
  for (std::uint32_t i = 0; i < slots_left_; ++i) armed += params_.slot_time;
  channel_->note_armed_tx(armed);
  backoff_timer_.start(params_.slot_time, [this]() {
    --slots_left_;
    if (slots_left_ == 0) {
      transmit_current();
    } else {
      start_backoff();
    }
  });
}

void CsmaMac::pause_backoff() {
  backoff_timer_.cancel();
  difs_timer_.cancel();
  state_ = TxState::WaitIdle;
}

bool CsmaMac::nav_blocked() const noexcept {
  return scheduler_->now() < nav_until_;
}

bool CsmaMac::uses_rts(const Frame& frame) const noexcept {
  return params_.rts_cts && !is_broadcast(frame) &&
         frame.size_bytes >= params_.rts_threshold_bytes;
}

void CsmaMac::observe_nav(const Frame& frame, des::Time frame_end) {
  const des::Time until = frame_end + frame.nav_duration;
  if (until <= nav_until_) return;
  nav_until_ = until;
  if (state_ == TxState::Difs || state_ == TxState::Backoff) {
    ++stats_.nav_deferrals;
    pause_backoff();
  }
  nav_timer_.start(nav_until_ - scheduler_->now(), [this]() {
    // Virtual carrier released: resume a parked attempt if the physical
    // medium is also quiet.
    if (state_ == TxState::WaitIdle && current_.has_value() &&
        !channel_->transceiver(node_id_).medium_busy()) {
      start_difs();
    }
  });
}

void CsmaMac::transmit_current() {
  RRNET_ASSERT(current_.has_value());
  const phy::Transceiver& radio = channel_->transceiver(node_id_);
  if (radio.is_off()) {
    ++stats_.tx_dropped_radio_off;
    finish_current(false);
    return;
  }
  if (radio.state() == phy::RadioState::Tx) {
    // Our own ACK is still on the air; retry one slot later.
    slots_left_ = 1;
    state_ = TxState::Backoff;
    channel_->note_armed_tx(scheduler_->now() + params_.slot_time);
    backoff_timer_.start(params_.slot_time, [this]() { transmit_current(); });
    return;
  }
  if (uses_rts(current_->frame)) {
    send_rts();
    return;
  }
  phy::Airframe air;
  air.id = channel_->next_frame_id(node_id_);
  air.sender = node_id_;
  air.size_bytes = current_->frame.size_bytes;
  air.frame = current_->frame;
  if (!channel_->transmit(air)) {
    ++stats_.tx_dropped_radio_off;
    finish_current(false);
    return;
  }
  airframe_id_ = air.id;
  tx_is_ack_ = false;
  tx_is_rts_ = false;
  ++stats_.data_tx;
  state_ = TxState::Transmitting;
}

void CsmaMac::send_rts() {
  RRNET_ASSERT(current_.has_value());
  const phy::RadioParams& radio = channel_->params();
  Frame rts;
  rts.kind = FrameKind::Rts;
  rts.src = node_id_;
  rts.dst = current_->frame.dst;
  rts.sequence = current_->frame.sequence;
  rts.size_bytes = kRtsBytes;
  // Reserve the medium for CTS + DATA + ACK plus the three SIFS gaps.
  rts.nav_duration = 3.0 * params_.sifs + radio.airtime(kCtsBytes) +
                     radio.airtime(current_->frame.size_bytes) +
                     radio.airtime(kAckBytes);
  phy::Airframe air;
  air.id = channel_->next_frame_id(node_id_);
  air.sender = node_id_;
  air.size_bytes = rts.size_bytes;
  air.frame = rts;
  if (!channel_->transmit(air)) {
    ++stats_.tx_dropped_radio_off;
    finish_current(false);
    return;
  }
  airframe_id_ = air.id;
  tx_is_ack_ = false;
  tx_is_rts_ = true;
  ++stats_.rts_tx;
  MAC_TRACE("%.6f n%u TX RTS->%u seq=%u\n", scheduler_->now(), node_id_,
            rts.dst, rts.sequence);
  state_ = TxState::Transmitting;
}

void CsmaMac::transmit_data_now() {
  // The medium is reserved for us (CTS in hand): send after SIFS without a
  // fresh contention round.
  state_ = TxState::Transmitting;
  channel_->note_armed_tx(scheduler_->now() + params_.sifs);
  ++pending_deferred_;
  scheduler_->schedule_in(params_.sifs, [this]() {
    --pending_deferred_;
    if (!current_.has_value()) return;
    const phy::Transceiver& radio = channel_->transceiver(node_id_);
    if (radio.is_off()) {
      ++stats_.tx_dropped_radio_off;
      finish_current(false);
      return;
    }
    phy::Airframe air;
    air.id = channel_->next_frame_id(node_id_);
    air.sender = node_id_;
    air.size_bytes = current_->frame.size_bytes;
    air.frame = current_->frame;
    if (!channel_->transmit(air)) {
      ++stats_.tx_dropped_radio_off;
      finish_current(false);
      return;
    }
    airframe_id_ = air.id;
    tx_is_ack_ = false;
    tx_is_rts_ = false;
    ++stats_.data_tx;
    MAC_TRACE("%.6f n%u TX DATA->%u seq=%u\n", scheduler_->now(), node_id_,
              current_->frame.dst, current_->frame.sequence);
    state_ = TxState::Transmitting;
  });
}

void CsmaMac::send_cts(const Frame& rts) {
  channel_->note_armed_tx(scheduler_->now() + params_.sifs);
  ++pending_deferred_;
  scheduler_->schedule_in(params_.sifs, [this, src = rts.src,
                                         seq = rts.sequence,
                                         nav = rts.nav_duration]() {
    --pending_deferred_;
    const phy::Transceiver& radio = channel_->transceiver(node_id_);
    if (radio.is_off() || radio.state() == phy::RadioState::Tx) return;
    // A CTS is a promise of a quiet medium: refuse while any reservation —
    // including one we granted ourselves — is still standing, or two hidden
    // senders end up with overlapping grants that guarantee a collision.
    if (nav_blocked()) return;
    Frame cts;
    cts.kind = FrameKind::Cts;
    cts.src = node_id_;
    cts.dst = src;
    cts.sequence = seq;
    cts.size_bytes = kCtsBytes;
    const double consumed =
        params_.sifs + channel_->params().airtime(kCtsBytes);
    cts.nav_duration = nav > consumed ? nav - consumed : 0.0;
    phy::Airframe air;
    air.id = channel_->next_frame_id(node_id_);
    air.sender = node_id_;
    air.size_bytes = cts.size_bytes;
    air.frame = std::move(cts);
    if (channel_->transmit(air)) {
      airframe_id_ = air.id;
      tx_is_ack_ = true;  // fire-and-forget, like an ACK
      ++stats_.cts_tx;
      MAC_TRACE("%.6f n%u TX CTS->%u seq=%u nav=%.4f\n", scheduler_->now(),
                node_id_, cts.dst, cts.sequence, cts.nav_duration);
      // Reserve ourselves for the granted exchange.
      nav_until_ = std::max(nav_until_,
                            scheduler_->now() +
                                channel_->params().airtime(kCtsBytes) +
                                cts.nav_duration);
    }
  });
}

des::Time CsmaMac::ack_timeout() const noexcept {
  // SIFS + ACK airtime + generous propagation/turnaround slack.
  return params_.sifs + channel_->params().airtime(kAckBytes) + 100e-6;
}

void CsmaMac::on_tx_done(std::uint64_t frame_id) {
  if (tx_is_ack_ && frame_id == airframe_id_) {
    tx_is_ack_ = false;
    return;  // medium-idle edge will resume any paused attempt
  }
  if (state_ != TxState::Transmitting || frame_id != airframe_id_) return;
  RRNET_ASSERT(current_.has_value());
  if (tx_is_rts_) {
    tx_is_rts_ = false;
    state_ = TxState::AwaitCts;
    const des::Time cts_timeout =
        params_.sifs + channel_->params().airtime(kCtsBytes) + 100e-6;
    ack_timer_.start(cts_timeout, [this]() {
      ++stats_.cts_timeouts;
      handle_ack_timeout();
    });
    return;
  }
  if (is_broadcast(current_->frame)) {
    finish_current(true);
    return;
  }
  state_ = TxState::AwaitAck;
  ack_timer_.start(ack_timeout(), [this]() { handle_ack_timeout(); });
}

void CsmaMac::handle_ack_timeout() {
  RRNET_ASSERT(current_.has_value());
  ++attempt_;
  if (attempt_ > params_.max_retries) {
    ++stats_.unicast_failures;
    RRNET_TRACE_EVENT(obs::EventKind::MacDrop, scheduler_->now(), node_id_,
                      current_->frame.payload ? current_->frame.payload.uid()
                                              : 0u,
                      obs::DropReason::RetriesExhausted);
    finish_current(false);
    return;
  }
  ++stats_.retries;
  cw_ = std::min(cw_ * 2, params_.cw_max);
  slots_left_ = 0;
  begin_attempt();
}

void CsmaMac::finish_current(bool success) {
  RRNET_ASSERT(current_.has_value());
  const Frame frame = current_->frame;
  current_.reset();
  backoff_timer_.cancel();
  difs_timer_.cancel();
  ack_timer_.cancel();
  state_ = TxState::Idle;
  listener_->mac_send_done(frame, success);
  // The listener may have synchronously enqueued (and begun serving) another
  // frame from inside mac_send_done; only pull from the queue if not.
  if (state_ == TxState::Idle && !current_.has_value()) serve_next();
}

void CsmaMac::send_ack(const Frame& data_frame) {
  channel_->note_armed_tx(scheduler_->now() + params_.sifs);
  ++pending_deferred_;
  scheduler_->schedule_in(params_.sifs, [this, src = data_frame.src,
                                         seq = data_frame.sequence]() {
    --pending_deferred_;
    const phy::Transceiver& radio = channel_->transceiver(node_id_);
    if (radio.is_off() || radio.state() == phy::RadioState::Tx) return;
    Frame ack;
    ack.kind = FrameKind::Ack;
    ack.src = node_id_;
    ack.dst = src;
    ack.sequence = seq;
    ack.size_bytes = kAckBytes;
    phy::Airframe air;
    air.id = channel_->next_frame_id(node_id_);
    air.sender = node_id_;
    air.size_bytes = ack.size_bytes;
    air.frame = std::move(ack);
    if (channel_->transmit(air)) {
      airframe_id_ = air.id;
      tx_is_ack_ = true;
      ++stats_.ack_tx;
    }
  });
}

void CsmaMac::on_receive(const phy::Airframe& air, const phy::RxInfo& info) {
  const Frame& frame = air.frame;
  if (frame.kind == FrameKind::Rts) {
    MAC_TRACE("%.6f n%u RX RTS from %u->%u\n", scheduler_->now(), node_id_,
              frame.src, frame.dst);
    if (frame.dst == node_id_) {
      send_cts(frame);
    } else {
      observe_nav(frame, info.rx_end);
    }
    return;
  }
  if (frame.kind == FrameKind::Cts) {
    if (frame.dst == node_id_) {
      if (state_ == TxState::AwaitCts && current_.has_value() &&
          frame.sequence == current_->frame.sequence &&
          frame.src == current_->frame.dst) {
        ack_timer_.cancel();
        transmit_data_now();
      }
    } else {
      observe_nav(frame, info.rx_end);
    }
    return;
  }
  if (frame.kind == FrameKind::Ack) {
    if (frame.dst == node_id_ && state_ == TxState::AwaitAck &&
        current_.has_value() && frame.sequence == current_->frame.sequence &&
        frame.src == current_->frame.dst) {
      ack_timer_.cancel();
      finish_current(true);
    }
    return;
  }
  MAC_TRACE("%.6f n%u RX DATA from %u->%u\n", scheduler_->now(), node_id_,
            frame.src, frame.dst);
  const bool for_us = frame.dst == node_id_ || is_broadcast(frame);
  if (frame.dst == node_id_) send_ack(frame);
  listener_->mac_receive(frame, info, for_us);
}

void CsmaMac::on_medium_changed(bool busy) {
  if (busy) {
    if (state_ == TxState::Difs || state_ == TxState::Backoff) {
      pause_backoff();
    }
    return;
  }
  if (state_ == TxState::WaitIdle && current_.has_value() && !nav_blocked()) {
    // The physical medium cleared; the virtual one (NAV) must agree too —
    // nav_timer_ resumes us otherwise.
    start_difs();
  }
}

}  // namespace rrnet::mac
