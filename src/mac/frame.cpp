#include "mac/frame.hpp"

namespace rrnet::mac {

bool is_broadcast(const Frame& frame) noexcept {
  return frame.dst == kBroadcastAddress;
}

}  // namespace rrnet::mac
