// The queue between the network layer and the MAC.
//
// The paper (Section 3) attributes part of SSAF's delay advantage to this
// queue: "A priority queue favors those packets with a shorter backoff
// delay. Therefore, the prioritization takes effect not only among packets
// in different nodes, but also among packets in the same node."
// Lower priority value = served first; FIFO among equal priorities. A FIFO
// mode is provided for the ablation (and for protocols that don't
// prioritize, where every priority is equal anyway).
//
// Built on the same des::QuadHeap + embedded-sequence tie-break discipline
// as the scheduler: equal-priority frames dequeue strictly in arrival
// order regardless of standard-library heap implementation, so MAC service
// order is deterministic across toolchains (tested in mac_queue_test.cpp).
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>

#include "des/quad_heap.hpp"
#include "mac/frame.hpp"

namespace rrnet::mac {

struct QueuedFrame {
  Frame frame;
  double priority = 0.0;  ///< e.g. the leader-election backoff delay
};

class TxQueue {
 public:
  /// `prioritized` = false degrades to plain FIFO (priority ignored).
  explicit TxQueue(std::size_t capacity, bool prioritized = true);

  /// Returns false (and counts a drop) when full.
  bool push(QueuedFrame item);
  /// Highest-priority (or oldest, in FIFO mode) frame; empty -> nullopt.
  std::optional<QueuedFrame> pop();

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }
  /// Deepest the queue has ever been (congestion gauge).
  [[nodiscard]] std::size_t high_water() const noexcept {
    return std::max(entries_.high_water(), restored_high_water_);
  }
  /// Carry an evicted node's high-water mark across a shard migration (the
  /// gauge is lifetime-deep, so the fresh queue must not reset it).
  void restore_high_water(std::size_t hw) noexcept {
    restored_high_water_ = hw;
  }
  [[nodiscard]] bool prioritized() const noexcept { return prioritized_; }

 private:
  struct Entry {
    QueuedFrame item;
    std::uint64_t sequence;
  };
  struct Earlier {
    bool prioritized;
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (prioritized && a.item.priority != b.item.priority) {
        return a.item.priority < b.item.priority;
      }
      return a.sequence < b.sequence;  // FIFO among equal priorities
    }
  };

  std::size_t capacity_;
  bool prioritized_;
  des::QuadHeap<Entry, Earlier> entries_;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t drops_ = 0;
  std::size_t restored_high_water_ = 0;  ///< migrated-in gauge floor
};

}  // namespace rrnet::mac
