#include "mac/priority_queue.hpp"

#include "util/contracts.hpp"

namespace rrnet::mac {

TxQueue::TxQueue(std::size_t capacity, bool prioritized)
    : capacity_(capacity),
      prioritized_(prioritized),
      entries_(Earlier{prioritized}) {
  RRNET_EXPECTS(capacity > 0);
}

bool TxQueue::push(QueuedFrame item) {
  if (entries_.size() >= capacity_) {
    ++drops_;
    return false;
  }
  entries_.push(Entry{std::move(item), next_sequence_++});
  return true;
}

std::optional<QueuedFrame> TxQueue::pop() {
  if (entries_.empty()) return std::nullopt;
  // pop_top moves the entry out — no Frame / payload-handle copy.
  return entries_.pop_top().item;
}

}  // namespace rrnet::mac
