#include "mac/priority_queue.hpp"

#include "util/contracts.hpp"

namespace rrnet::mac {

TxQueue::TxQueue(std::size_t capacity, bool prioritized)
    : capacity_(capacity),
      prioritized_(prioritized),
      entries_(Later{prioritized}) {
  RRNET_EXPECTS(capacity > 0);
}

bool TxQueue::push(QueuedFrame item) {
  if (entries_.size() >= capacity_) {
    ++drops_;
    return false;
  }
  entries_.push(Entry{std::move(item), next_sequence_++});
  return true;
}

std::optional<QueuedFrame> TxQueue::pop() {
  if (entries_.empty()) return std::nullopt;
  QueuedFrame out = entries_.top().item;
  entries_.pop();
  return out;
}

}  // namespace rrnet::mac
