// MAC frames. The network packet rides inside as a typed net::PacketRef —
// 24 bytes of buffer pointer + per-hop trailer, no type erasure and no
// copy of the packet itself. Message *types* (net/packet_buffer.hpp) are
// foundation vocabulary shared down the stack; behavioral layering still
// runs strictly upward (PHY -> MAC -> NET) through the listener interfaces.
#pragma once

#include <cstdint>

#include "net/packet_buffer.hpp"

namespace rrnet::mac {

/// Destination address meaning "all neighbors".
inline constexpr std::uint32_t kBroadcastAddress = 0xFFFFFFFFu;

enum class FrameKind : std::uint8_t { Data, Ack, Rts, Cts };

struct Frame {
  FrameKind kind = FrameKind::Data;
  std::uint32_t src = 0;  ///< transmitting node
  std::uint32_t dst = kBroadcastAddress;
  std::uint32_t sequence = 0;   ///< per-sender MAC sequence (ACK matching)
  std::uint32_t size_bytes = 0; ///< total frame size incl. MAC header
  /// RTS/CTS: how long the medium stays reserved after this frame ends
  /// (seconds). Overhearers honor it as their NAV (virtual carrier sense).
  double nav_duration = 0.0;
  net::PacketRef payload;  ///< network packet (empty for control frames)
};

/// MAC header overhead added to every data frame (bytes).
inline constexpr std::uint32_t kMacHeaderBytes = 16;
/// Size of an ACK frame (bytes).
inline constexpr std::uint32_t kAckBytes = 14;
/// Sizes of the RTS/CTS control frames (bytes).
inline constexpr std::uint32_t kRtsBytes = 20;
inline constexpr std::uint32_t kCtsBytes = 14;

[[nodiscard]] bool is_broadcast(const Frame& frame) noexcept;

}  // namespace rrnet::mac
