// CSMA/CA MAC with carrier sense, IFS, slotted binary-exponential backoff,
// broadcast frames (single attempt, no ACK) and unicast frames with
// ACK + retransmission (link-break detection for AODV).
#pragma once

#include <cstdint>
#include <optional>

#include "des/rng.hpp"
#include "des/timer.hpp"
#include "mac/frame.hpp"
#include "mac/priority_queue.hpp"
#include "obs/metrics.hpp"
#include "phy/channel.hpp"
#include "util/pool.hpp"

namespace rrnet::mac {

struct MacParams {
  des::Time slot_time = 20e-6;
  des::Time difs = 50e-6;   ///< idle wait before backoff countdown
  des::Time sifs = 10e-6;   ///< gap before an ACK
  std::uint32_t cw_min = 16;   ///< initial contention window (slots)
  std::uint32_t cw_max = 1024;
  std::uint32_t max_retries = 4;  ///< unicast attempts before giving up
  std::size_t queue_capacity = 64;
  bool priority_queue = true;  ///< paper's net->MAC priority queue
  /// RTS/CTS virtual carrier sense for unicast frames whose total size
  /// reaches rts_threshold_bytes (hidden-terminal mitigation).
  bool rts_cts = false;
  std::uint32_t rts_threshold_bytes = 128;
};

/// Per-MAC counters. `data_tx + ack_tx` is the paper's "number of MAC
/// packets" metric for one node.
struct MacStats {
  std::uint64_t data_tx = 0;
  std::uint64_t ack_tx = 0;
  std::uint64_t rts_tx = 0;
  std::uint64_t cts_tx = 0;
  std::uint64_t cts_timeouts = 0;
  std::uint64_t nav_deferrals = 0;  ///< attempts deferred by a foreign NAV
  std::uint64_t backoffs = 0;       ///< fresh backoff draws (not resumptions)
  std::uint64_t retries = 0;
  std::uint64_t unicast_failures = 0;  ///< retries exhausted
  std::uint64_t queue_drops = 0;
  std::uint64_t tx_dropped_radio_off = 0;
  obs::Histogram backoff_slots;  ///< distribution of drawn backoff slots
  [[nodiscard]] std::uint64_t total_tx() const noexcept {
    return data_tx + ack_tx + rts_tx + cts_tx;
  }
};

/// Everything of a MAC that must survive a cross-shard node migration.
/// Only valid for a quiescent MAC (idle, empty queue, no timers, no
/// deferred sends): the live machinery never moves, just the counters and
/// stream position the node would carry into its next frame.
struct MacMigrationState {
  des::RngState rng;
  std::uint32_t next_sequence = 0;
  des::Time nav_until = 0.0;
  MacStats stats;
  std::size_t queue_high_water = 0;
};

/// Delivery callbacks from the MAC to the network layer.
class MacListener {
 public:
  virtual ~MacListener() = default;
  /// A data frame arrived. `for_us` is false for overheard unicast traffic
  /// addressed to another node (promiscuous delivery: Routeless Routing
  /// learns hop counts "by passively listening to all packets").
  virtual void mac_receive(const Frame& frame, const phy::RxInfo& info,
                           bool for_us) = 0;
  /// A previously enqueued frame left the MAC: delivered/aired (`success`)
  /// or dropped (queue overflow counted separately; here: radio off or
  /// unicast retries exhausted).
  virtual void mac_send_done(const Frame& frame, bool success) = 0;
};

class CsmaMac final : public phy::RadioListener, public util::PoolAllocated {
 public:
  CsmaMac(phy::Channel& channel, std::uint32_t node_id, MacParams params,
          des::Rng rng, MacListener& listener);

  CsmaMac(const CsmaMac&) = delete;
  CsmaMac& operator=(const CsmaMac&) = delete;

  /// Queue a network packet for transmission. `priority`: lower is served
  /// first when the priority queue is enabled (use the election backoff).
  /// `payload_bytes` is the network-layer size; MAC header is added here.
  void send(std::uint32_t dst, net::PacketRef packet,
            std::uint32_t payload_bytes, double priority = 0.0);

  [[nodiscard]] const MacStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint32_t node_id() const noexcept { return node_id_; }
  [[nodiscard]] std::size_t queue_length() const noexcept {
    return queue_.size();
  }
  /// Deepest the net->MAC queue has ever been (congestion gauge).
  [[nodiscard]] std::size_t queue_high_water() const noexcept {
    return queue_.high_water();
  }
  [[nodiscard]] const MacParams& params() const noexcept { return params_; }

  // phy::RadioListener
  void on_receive(const phy::Airframe& frame, const phy::RxInfo& info) override;
  void on_tx_done(std::uint64_t frame_id) override;
  void on_medium_changed(bool busy) override;

  // --- Node migration (sharded dynamic ownership) ---

  /// True when no event can re-enter this MAC: nothing in service or
  /// queued, every timer idle, and no SIFS-deferred ACK/CTS/data lambda
  /// scheduled (those capture `this` and would dangle after eviction).
  [[nodiscard]] bool quiescent() const noexcept {
    return state_ == TxState::Idle && !current_.has_value() &&
           queue_.empty() && !backoff_timer_.active() &&
           !difs_timer_.active() && !ack_timer_.active() &&
           !nav_timer_.active() && pending_deferred_ == 0;
  }
  [[nodiscard]] MacMigrationState export_migration_state() const {
    return {rng_.state(), next_sequence_, nav_until_, stats_,
            queue_high_water()};
  }
  void import_migration_state(const MacMigrationState& s) {
    rng_.restore(s.rng);
    next_sequence_ = s.next_sequence;
    nav_until_ = s.nav_until;
    stats_ = s.stats;
    queue_.restore_high_water(s.queue_high_water);
  }

 private:
  enum class TxState : std::uint8_t {
    Idle,        ///< nothing in service
    WaitIdle,    ///< medium busy; waiting for it to clear
    Difs,        ///< sensing idle for DIFS
    Backoff,     ///< counting down backoff slots
    Transmitting,///< frame on the air
    AwaitAck,    ///< unicast sent; ACK timer running
    AwaitCts     ///< RTS sent; CTS timer running
  };

  void serve_next();
  void begin_attempt();
  void start_difs();
  void start_backoff();
  void pause_backoff();
  void transmit_current();
  void transmit_data_now();
  void send_rts();
  void send_cts(const Frame& rts);
  void handle_rts_cts_response(const Frame& frame);
  void observe_nav(const Frame& frame, des::Time frame_end);
  [[nodiscard]] bool nav_blocked() const noexcept;
  [[nodiscard]] bool uses_rts(const Frame& frame) const noexcept;
  void handle_ack_timeout();
  void finish_current(bool success);
  void send_ack(const Frame& data_frame);
  [[nodiscard]] des::Time ack_timeout() const noexcept;

  phy::Channel* channel_;
  des::Scheduler* scheduler_;
  std::uint32_t node_id_;
  MacParams params_;
  des::Rng rng_;
  MacListener* listener_;
  TxQueue queue_;

  TxState state_ = TxState::Idle;
  std::optional<QueuedFrame> current_;
  std::uint32_t attempt_ = 0;     ///< retries used for current frame
  std::uint32_t cw_ = 0;          ///< current contention window
  std::uint32_t slots_left_ = 0;  ///< frozen backoff slots remaining
  std::uint64_t airframe_id_ = 0; ///< id of our frame on the air
  bool tx_is_ack_ = false;
  std::uint32_t next_sequence_ = 0;
  des::Timer backoff_timer_;
  des::Timer difs_timer_;
  des::Timer ack_timer_;
  des::Timer nav_timer_;
  des::Time nav_until_ = 0.0;  ///< virtual carrier sense horizon
  bool tx_is_rts_ = false;
  /// SIFS-deferred send lambdas in flight (they capture `this`); a node
  /// with any outstanding cannot migrate.
  std::uint32_t pending_deferred_ = 0;
  MacStats stats_;
};

}  // namespace rrnet::mac
