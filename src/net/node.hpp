// A wireless node: transceiver + CSMA MAC + one network protocol +
// application delivery handler, glued together.
#pragma once

#include <cstdint>
#include <memory>

#include "des/inline_callback.hpp"
#include "des/rng.hpp"
#include "geom/vec2.hpp"
#include "mac/csma.hpp"
#include "net/packet_buffer.hpp"
#include "net/protocol.hpp"
#include "util/pool.hpp"

namespace rrnet::net {

class Network;

/// Observes every network-layer transmission and delivery in the network
/// (path tracing for Figure 2, hop accounting, debugging).
class PacketObserver {
 public:
  virtual ~PacketObserver() = default;
  virtual void on_network_tx(std::uint32_t node, const PacketRef& packet) {
    (void)node;
    (void)packet;
  }
  virtual void on_delivered(std::uint32_t node, const PacketRef& packet) {
    (void)node;
    (void)packet;
  }
};

/// Per-node network-layer counters. Control = every non-Data packet type
/// (discovery floods, replies, net-acks, route maintenance) — the overhead
/// side of the paper's control-vs-data split.
struct NodeStats {
  std::uint64_t data_tx = 0;
  std::uint64_t control_tx = 0;
  std::uint64_t delivered = 0;
};

class Node final : public mac::MacListener, public util::PoolAllocated {
 public:
  Node(Network& network, std::uint32_t id, const mac::MacParams& mac_params,
       des::Rng rng);

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] Network& network() const noexcept { return *network_; }
  [[nodiscard]] mac::CsmaMac& mac() noexcept { return *mac_; }
  [[nodiscard]] const mac::CsmaMac& mac() const noexcept { return *mac_; }
  [[nodiscard]] geom::Vec2 position() const;
  [[nodiscard]] des::Scheduler& scheduler() const;
  [[nodiscard]] des::Rng& rng() noexcept { return rng_; }

  /// Fresh unique packet uid: (node id << 32) | per-node counter. Keyed to
  /// the originating node (not a network-global counter) so the uids a node
  /// hands out are independent of every other node's traffic — a spatially
  /// sharded run assigns the same uids as a serial one.
  [[nodiscard]] std::uint64_t next_packet_uid() noexcept {
    return (static_cast<std::uint64_t>(id_) << 32) | ++last_uid_;
  }

  /// Install the protocol (exactly once, before start()).
  void set_protocol(std::unique_ptr<Protocol> protocol);
  [[nodiscard]] Protocol& protocol() const;
  [[nodiscard]] bool has_protocol() const noexcept { return protocol_ != nullptr; }

  /// Transmit a network packet via the MAC. `mac_dst` is a neighbor id or
  /// mac::kBroadcastAddress; `priority` feeds the net->MAC priority queue
  /// (lower = sooner; pass the election backoff delay). The packet travels
  /// by reference: only the 24-byte ref is enqueued, never a packet copy.
  void send_packet(const PacketRef& packet, std::uint32_t mac_dst,
                   double priority = 0.0);

  /// Deliver a packet to the application on this node (destination reached).
  void deliver_to_app(const PacketRef& packet);

  /// Application delivery sink. Inline (64-byte capture budget) — the last
  /// std::function on the hot path is gone; oversized captures are a
  /// compile error, not a silent heap allocation.
  using DeliveryHandler = des::InlineFunction<void(const PacketRef&), 64>;
  void set_delivery_handler(DeliveryHandler handler) {
    delivery_handler_ = std::move(handler);
  }

  [[nodiscard]] const NodeStats& stats() const noexcept { return stats_; }

  // --- Node migration (sharded dynamic ownership) ---

  [[nodiscard]] std::uint32_t last_uid() const noexcept { return last_uid_; }
  /// Overwrite the counters and stream position with an evicted node's so
  /// the adopted instance continues its exact uid/draw sequences.
  void restore_migration_state(const NodeStats& stats, std::uint32_t last_uid,
                               const des::RngState& rng) noexcept {
    stats_ = stats;
    last_uid_ = last_uid;
    rng_.restore(rng);
  }

  // mac::MacListener
  void mac_receive(const mac::Frame& frame, const phy::RxInfo& info,
                   bool for_us) override;
  void mac_send_done(const mac::Frame& frame, bool success) override;

 private:
  Network* network_;
  std::uint32_t id_;
  des::Rng rng_;
  std::unique_ptr<mac::CsmaMac> mac_;
  std::unique_ptr<Protocol> protocol_;
  DeliveryHandler delivery_handler_;
  NodeStats stats_;
  std::uint32_t last_uid_ = 0;
};

}  // namespace rrnet::net
