#include "net/network.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace rrnet::net {

Network::Network(des::Scheduler& scheduler, const geom::Terrain& terrain,
                 std::unique_ptr<phy::PropagationModel> model,
                 phy::RadioParams radio_params, mac::MacParams mac_params,
                 std::vector<geom::Vec2> positions, des::Rng root_rng,
                 phy::ShardSpec shard,
                 std::shared_ptr<const geom::SpatialGrid> shared_index)
    : scheduler_(&scheduler), root_rng_(root_rng), mac_params_(mac_params) {
  const std::size_t n =
      shared_index ? shared_index->size() : positions.size();
  RRNET_EXPECTS(n > 0);
  channel_ = std::make_unique<phy::Channel>(
      scheduler, terrain, std::move(model), radio_params, std::move(positions),
      root_rng.fork("channel"), std::move(shard), std::move(shared_index));
  nodes_.reserve(n);
  for (std::uint32_t id = 0; id < n; ++id) {
    // Fork the per-node stream even for remote ids: forks are keyed off the
    // parent seed (not stream position), so this is only documentation that
    // id-keyed forking is what keeps shards bit-compatible with serial.
    des::Rng node_rng = root_rng.fork("node", id);
    if (!channel_->owns(id)) {
      nodes_.push_back(nullptr);
      continue;
    }
    nodes_.push_back(
        std::make_unique<Node>(*this, id, mac_params, node_rng));
  }
}

Node& Network::node(std::uint32_t id) {
  RRNET_EXPECTS(id < nodes_.size() && nodes_[id] != nullptr);
  return *nodes_[id];
}

const Node& Network::node(std::uint32_t id) const {
  RRNET_EXPECTS(id < nodes_.size() && nodes_[id] != nullptr);
  return *nodes_[id];
}

Node& Network::adopt_node(std::uint32_t id) {
  RRNET_EXPECTS(id < nodes_.size() && nodes_[id] == nullptr);
  RRNET_EXPECTS(channel_->owns(id));
  channel_->adopt_transceiver(id);  // the MAC attaches to it in the ctor
  nodes_[id] =
      std::make_unique<Node>(*this, id, mac_params_, root_rng_.fork("node", id));
  return *nodes_[id];
}

void Network::evict_node(std::uint32_t id) {
  RRNET_EXPECTS(id < nodes_.size() && nodes_[id] != nullptr);
  RRNET_EXPECTS(!channel_->owns(id));
  nodes_[id].reset();
  channel_->evict_transceiver(id);
}

void Network::start_protocols() {
  for (auto& node : nodes_) {
    if (node != nullptr && node->has_protocol()) node->protocol().start();
  }
}

std::uint64_t Network::total_mac_tx() const noexcept {
  std::uint64_t total = 0;
  for (const auto& node : nodes_) {
    if (node != nullptr) total += node->mac().stats().total_tx();
  }
  return total;
}

void Network::add_observer(PacketObserver* observer) {
  RRNET_EXPECTS(observer != nullptr);
  if (std::find(observers_.begin(), observers_.end(), observer) !=
      observers_.end()) {
    return;  // already registered; keep notification order stable
  }
  observers_.push_back(observer);
}

void Network::remove_observer(PacketObserver* observer) noexcept {
  observers_.erase(
      std::remove(observers_.begin(), observers_.end(), observer),
      observers_.end());
}

void Network::snapshot_metrics(obs::MetricRegistry& reg,
                               obs::Histogram* backoff_slots_out) const {
  namespace m = obs::metric;
  const phy::ChannelStats& ch = channel_->stats();
  reg.add(m::kPhyTransmissions, ch.transmissions);
  reg.add(m::kPhyDeliveries, ch.deliveries);

  obs::Histogram backoff_slots;
  for (std::uint32_t id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id] == nullptr) continue;  // remote shard owns this node
    const Node& node = *nodes_[id];
    const phy::TransceiverStats& phy = channel_->transceiver(id).stats();
    reg.add(m::kPhyTxFrames, phy.frames_sent);
    reg.add(m::kPhySignalsArrived, phy.signals_arrived);
    reg.add(m::kPhyRxDecoded, phy.frames_decoded);
    reg.add(m::kPhyDropCollision, phy.frames_collided);
    reg.add(m::kPhyDropRxWhileBusy, phy.frames_missed_busy);
    reg.add(m::kPhyDropBelowSensitivity, phy.frames_below_threshold);
    reg.add(m::kPhyDropWhileOff, phy.frames_while_off);
    reg.add(m::kPhyDropAbortedOff, phy.frames_aborted_off);
    reg.add(m::kPhyTxDroppedOff, phy.tx_dropped_off);
    reg.add(m::kPhyTxDroppedBusy, phy.tx_dropped_busy);

    const mac::MacStats& mac = node.mac().stats();
    reg.add(m::kMacDataTx, mac.data_tx);
    reg.add(m::kMacAckTx, mac.ack_tx);
    reg.add(m::kMacRtsTx, mac.rts_tx);
    reg.add(m::kMacCtsTx, mac.cts_tx);
    reg.add(m::kMacBackoffs, mac.backoffs);
    reg.add(m::kMacRetries, mac.retries);
    reg.add(m::kMacCtsTimeouts, mac.cts_timeouts);
    reg.add(m::kMacNavDeferrals, mac.nav_deferrals);
    reg.add(m::kMacUnicastFailures, mac.unicast_failures);
    reg.add(m::kMacQueueDrops, mac.queue_drops);
    reg.add(m::kMacTxDroppedRadioOff, mac.tx_dropped_radio_off);
    reg.set_max(m::kMacQueueHighWater, node.mac().queue_high_water());
    backoff_slots.merge(mac.backoff_slots);

    const NodeStats& net = node.stats();
    reg.add(m::kNetTxData, net.data_tx);
    reg.add(m::kNetTxControl, net.control_tx);
    reg.add(m::kNetDelivered, net.delivered);

    if (node.has_protocol()) node.protocol().snapshot_metrics(reg);
  }
  if (backoff_slots_out != nullptr) {
    backoff_slots_out->merge(backoff_slots);
  } else if (!backoff_slots.empty()) {
    backoff_slots.snapshot_into(reg, m::kMacBackoffSlots);
  }
}

}  // namespace rrnet::net
