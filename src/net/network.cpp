#include "net/network.hpp"

#include "util/contracts.hpp"

namespace rrnet::net {

Network::Network(des::Scheduler& scheduler, const geom::Terrain& terrain,
                 std::unique_ptr<phy::PropagationModel> model,
                 phy::RadioParams radio_params, mac::MacParams mac_params,
                 std::vector<geom::Vec2> positions, des::Rng root_rng)
    : scheduler_(&scheduler) {
  const std::size_t n = positions.size();
  RRNET_EXPECTS(n > 0);
  channel_ = std::make_unique<phy::Channel>(
      scheduler, terrain, std::move(model), radio_params, std::move(positions),
      root_rng.fork("channel"));
  nodes_.reserve(n);
  for (std::uint32_t id = 0; id < n; ++id) {
    nodes_.push_back(std::make_unique<Node>(*this, id, mac_params,
                                            root_rng.fork("node", id)));
  }
}

Node& Network::node(std::uint32_t id) {
  RRNET_EXPECTS(id < nodes_.size());
  return *nodes_[id];
}

const Node& Network::node(std::uint32_t id) const {
  RRNET_EXPECTS(id < nodes_.size());
  return *nodes_[id];
}

void Network::start_protocols() {
  for (auto& node : nodes_) {
    if (node->has_protocol()) node->protocol().start();
  }
}

std::uint64_t Network::total_mac_tx() const noexcept {
  std::uint64_t total = 0;
  for (const auto& node : nodes_) total += node->mac().stats().total_tx();
  return total;
}

}  // namespace rrnet::net
