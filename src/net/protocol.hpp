// Network-protocol interface. One protocol instance runs per node; the Node
// routes MAC deliveries into it and the application (CBR) drives it through
// send_data(). Destination-side deliveries flow out through the node's
// delivery handler.
#pragma once

#include <cstdint>
#include <memory>

#include "net/packet_buffer.hpp"
#include "obs/metrics.hpp"
#include "util/pool.hpp"
#include "phy/radio.hpp"

namespace rrnet::net {

class Node;

/// Type-erased protocol state carried across a cross-shard node migration.
/// Concrete protocols derive their own snapshot struct. Deliberately NOT
/// pool-allocated: the blob is built on the evicting shard's thread and
/// read (then destroyed) under the coordinator's barrier ordering, so it
/// must live on the global allocator, never a thread-local pool.
struct MigrationBlob {
  virtual ~MigrationBlob() = default;
};

class Protocol : public util::PoolAllocated {
 public:
  explicit Protocol(Node& node) noexcept : node_(&node) {}
  virtual ~Protocol() = default;
  Protocol(const Protocol&) = delete;
  Protocol& operator=(const Protocol&) = delete;

  /// Called once after the whole network is wired, before traffic starts.
  virtual void start() {}

  /// A network packet arrived from the MAC. `for_us` is true when the MAC
  /// destination was this node or broadcast; false for promiscuously
  /// overheard unicast frames. `mac_src` is the transmitting neighbor.
  virtual void on_packet(const PacketRef& packet, const phy::RxInfo& info,
                         bool for_us, std::uint32_t mac_src) = 0;

  /// The MAC finished (or gave up on) one of our frames. Unicast protocols
  /// use `success == false` as a link-break signal; `mac_dst` identifies the
  /// neighbor the frame was addressed to (kBroadcastAddress for broadcasts).
  virtual void on_send_done(const PacketRef& packet, bool success,
                            std::uint32_t mac_dst) {
    (void)packet;
    (void)success;
    (void)mac_dst;
  }

  /// Application entry point: originate `payload_bytes` of data to `target`.
  /// Returns the uid of the created packet (for end-to-end accounting).
  virtual std::uint64_t send_data(std::uint32_t target,
                                  std::uint32_t payload_bytes) = 0;

  /// Human-readable protocol name for reports.
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Dump protocol-level counters (elections, duplicate caches, ...) into
  /// `reg` using the obs::metric vocabulary. Called once at end-of-run by
  /// Network::snapshot_metrics; must not mutate protocol state.
  virtual void snapshot_metrics(obs::MetricRegistry& reg) const { (void)reg; }

  [[nodiscard]] Node& node() const noexcept { return *node_; }

  // --- Node migration (sharded dynamic ownership) ---
  //
  // A node can change owning shard only when its whole stack is quiescent.
  // Protocols OPT IN by overriding all four hooks; the default (not
  // migratable) is always correct — ownership is pure load balancing, a
  // node that never migrates just keeps its original strip — so protocols
  // with live timers or pooled references simply stay put.

  /// Whether this protocol implements state export/import at all.
  [[nodiscard]] virtual bool migratable() const noexcept { return false; }
  /// True when no scheduled event or timer can re-enter this protocol
  /// instance. Only consulted when migratable().
  [[nodiscard]] virtual bool quiescent() const noexcept { return true; }
  /// Snapshot all protocol state into a self-contained blob (no pooled
  /// refs, no pointers into this shard's world).
  [[nodiscard]] virtual std::unique_ptr<MigrationBlob> export_state() const {
    return nullptr;
  }
  /// Restore an exported blob onto a freshly constructed (and start()ed)
  /// instance on the adopting shard.
  virtual void import_state(const MigrationBlob& blob) { (void)blob; }

 private:
  Node* node_;
};

}  // namespace rrnet::net
