#include "net/node.hpp"

#include <memory>

#include "net/network.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"
#include "util/pool.hpp"

namespace rrnet::net {

Node::Node(Network& network, std::uint32_t id,
           const mac::MacParams& mac_params, des::Rng rng)
    : network_(&network), id_(id), rng_(rng) {
  mac_ = std::make_unique<mac::CsmaMac>(network.channel(), id, mac_params,
                                        rng_.fork("mac"), *this);
}

geom::Vec2 Node::position() const { return network_->channel().position(id_); }

des::Scheduler& Node::scheduler() const { return network_->scheduler(); }

void Node::set_protocol(std::unique_ptr<Protocol> protocol) {
  RRNET_EXPECTS(protocol_ == nullptr);
  RRNET_EXPECTS(protocol != nullptr);
  protocol_ = std::move(protocol);
}

Protocol& Node::protocol() const {
  RRNET_EXPECTS(protocol_ != nullptr);
  return *protocol_;
}

void Node::send_packet(const PacketRef& packet, std::uint32_t mac_dst,
                       double priority) {
  if (packet.type() == PacketType::Data) {
    ++stats_.data_tx;
  } else {
    ++stats_.control_tx;
  }
  RRNET_TRACE_EVENT(obs::EventKind::NetSend, scheduler().now(), id_,
                    packet.uid(), static_cast<std::uint16_t>(packet.type()));
  for (PacketObserver* obs : network_->observers()) {
    obs->on_network_tx(id_, packet);
  }
  mac_->send(mac_dst, packet, packet.size_bytes(), priority);
}

void Node::deliver_to_app(const PacketRef& packet) {
  ++stats_.delivered;
  RRNET_TRACE_EVENT(obs::EventKind::NetDeliver, scheduler().now(), id_,
                    packet.uid(), static_cast<std::uint16_t>(packet.type()));
  for (PacketObserver* obs : network_->observers()) {
    obs->on_delivered(id_, packet);
  }
  if (delivery_handler_) delivery_handler_(packet);
}

void Node::mac_receive(const mac::Frame& frame, const phy::RxInfo& info,
                       bool for_us) {
  if (protocol_ == nullptr || !frame.payload) return;
  protocol_->on_packet(frame.payload, info, for_us, frame.src);
}

void Node::mac_send_done(const mac::Frame& frame, bool success) {
  if (protocol_ == nullptr || !frame.payload) return;
  protocol_->on_send_done(frame.payload, success, frame.dst);
}

}  // namespace rrnet::net
