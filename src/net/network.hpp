// Owns the channel and the nodes; the top of the substrate stack.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "des/rng.hpp"
#include "des/scheduler.hpp"
#include "geom/terrain.hpp"
#include "mac/csma.hpp"
#include "net/node.hpp"
#include "obs/metrics.hpp"
#include "phy/channel.hpp"

namespace rrnet::net {

class Network {
 public:
  /// Builds the channel and one node (transceiver + MAC) per position.
  /// Protocols are attached afterwards via node(i).set_protocol(...).
  Network(des::Scheduler& scheduler, const geom::Terrain& terrain,
          std::unique_ptr<phy::PropagationModel> model,
          phy::RadioParams radio_params, mac::MacParams mac_params,
          std::vector<geom::Vec2> positions, des::Rng root_rng);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] Node& node(std::uint32_t id);
  [[nodiscard]] const Node& node(std::uint32_t id) const;
  [[nodiscard]] phy::Channel& channel() noexcept { return *channel_; }
  [[nodiscard]] const phy::Channel& channel() const noexcept { return *channel_; }
  [[nodiscard]] des::Scheduler& scheduler() noexcept { return *scheduler_; }

  /// Call every protocol's start() hook (after all protocols are attached).
  void start_protocols();

  /// Fresh globally unique packet uid.
  [[nodiscard]] std::uint64_t next_packet_uid() noexcept { return ++last_uid_; }

  /// Observers for tracing (not owned). Multiple observers may watch the
  /// same network — e.g. a PathTrace plus an ad-hoc counter in a test; all
  /// are notified in registration order on every tx/delivery.
  void add_observer(PacketObserver* observer);
  void remove_observer(PacketObserver* observer) noexcept;
  [[nodiscard]] const std::vector<PacketObserver*>& observers() const noexcept {
    return observers_;
  }

  /// Total MAC transmissions (data + ACK) across all nodes — the paper's
  /// "Number of MAC Packets" metric.
  [[nodiscard]] std::uint64_t total_mac_tx() const noexcept;

  /// Dump every layer's counters (PHY, MAC, net, per-protocol) into `reg`.
  /// Pure observation: never mutates simulation state.
  void snapshot_metrics(obs::MetricRegistry& reg) const;

 private:
  des::Scheduler* scheduler_;
  std::unique_ptr<phy::Channel> channel_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<PacketObserver*> observers_;
  std::uint64_t last_uid_ = 0;
};

}  // namespace rrnet::net
