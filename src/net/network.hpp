// Owns the channel and the nodes; the top of the substrate stack.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "des/rng.hpp"
#include "des/scheduler.hpp"
#include "geom/spatial_grid.hpp"
#include "geom/terrain.hpp"
#include "mac/csma.hpp"
#include "net/node.hpp"
#include "obs/metrics.hpp"
#include "phy/channel.hpp"

namespace rrnet::net {

class Network {
 public:
  /// Builds the channel and one node (transceiver + MAC) per position.
  /// Protocols are attached afterwards via node(i).set_protocol(...).
  /// When `shard` marks this network as one shard of a sharded run, nodes
  /// (and their transceivers) exist only for owned ids; node(id) on a
  /// remote id is a contract violation. Rng forks are keyed by node id, so
  /// every shard hands its nodes the exact streams the serial run would.
  /// A non-null `shared_index` replaces the per-channel grid build with a
  /// read-only view of one immutable index (static-position sharded runs);
  /// `positions` may then be empty.
  Network(des::Scheduler& scheduler, const geom::Terrain& terrain,
          std::unique_ptr<phy::PropagationModel> model,
          phy::RadioParams radio_params, mac::MacParams mac_params,
          std::vector<geom::Vec2> positions, des::Rng root_rng,
          phy::ShardSpec shard = {},
          std::shared_ptr<const geom::SpatialGrid> shared_index = nullptr);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] Node& node(std::uint32_t id);
  [[nodiscard]] const Node& node(std::uint32_t id) const;
  /// True iff this network instance owns node `id` (always true serially).
  [[nodiscard]] bool has_node(std::uint32_t id) const noexcept {
    return id < nodes_.size() && nodes_[id] != nullptr;
  }
  [[nodiscard]] phy::Channel& channel() noexcept { return *channel_; }
  [[nodiscard]] const phy::Channel& channel() const noexcept { return *channel_; }
  [[nodiscard]] des::Scheduler& scheduler() noexcept { return *scheduler_; }

  /// Call every protocol's start() hook (after all protocols are attached).
  void start_protocols();

  // --- Node migration (sharded dynamic ownership) ---

  /// Build the node (radio + MAC) for an id this shard just adopted. The
  /// channel's owner map must already name this shard. The node gets the
  /// same id-keyed rng fork as the serial run — identical child streams —
  /// and its engine state is then restored from the migration record.
  /// The protocol and delivery handler are attached by the caller (they
  /// need scenario context the network does not have).
  Node& adopt_node(std::uint32_t id);
  /// Destroy an evicted node and its radio (must run on the owning thread:
  /// both are pool-allocated).
  void evict_node(std::uint32_t id);

  /// Observers for tracing (not owned). Multiple observers may watch the
  /// same network — e.g. a PathTrace plus an ad-hoc counter in a test; all
  /// are notified in registration order on every tx/delivery.
  void add_observer(PacketObserver* observer);
  void remove_observer(PacketObserver* observer) noexcept;
  [[nodiscard]] const std::vector<PacketObserver*>& observers() const noexcept {
    return observers_;
  }

  /// Total MAC transmissions (data + ACK) across all nodes — the paper's
  /// "Number of MAC Packets" metric.
  [[nodiscard]] std::uint64_t total_mac_tx() const noexcept;

  /// Dump every layer's counters (PHY, MAC, net, per-protocol) into `reg`.
  /// Pure observation: never mutates simulation state. When
  /// `backoff_slots_out` is non-null the raw backoff histogram is merged
  /// into it INSTEAD of being flattened into `reg` — percentile entries do
  /// not compose across registries, so a sharded run collects the raw
  /// buckets per shard and flattens the union once.
  void snapshot_metrics(obs::MetricRegistry& reg,
                        obs::Histogram* backoff_slots_out = nullptr) const;

 private:
  des::Scheduler* scheduler_;
  std::unique_ptr<phy::Channel> channel_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<PacketObserver*> observers_;
  /// Retained for adopt_node: forks are keyed off the seed (not stream
  /// position), so late id-keyed forks reproduce construction-time ones.
  des::Rng root_rng_;
  mac::MacParams mac_params_;
};

}  // namespace rrnet::net
