#include "net/packet_buffer.hpp"

#include <sstream>

namespace rrnet::net {

/// The calling thread's PacketBuffer arena. A dedicated pool (rather than
/// the size-class pools) keeps buffer churn — the single hottest
/// allocation in a flood — a branch-free pop/push on a uniform free list.
/// Exposed (read-mostly) so the sim layer can report occupancy metrics.
util::PayloadPool& packet_buffer_pool() noexcept {
  thread_local util::PayloadPool pool;
  return pool;
}

PacketBuffer* PacketBuffer::create(PacketInit&& init) {
  void* slot = packet_buffer_pool().allocate(sizeof(PacketBuffer));
  return ::new (slot) PacketBuffer(std::move(init));
}

void PacketBuffer::destroy(const PacketBuffer* buffer) noexcept {
  buffer->~PacketBuffer();
  util::PayloadPool::release(const_cast<PacketBuffer*>(buffer));
}

std::uint32_t PacketBuffer::header_bytes() const noexcept {
  switch (type_) {
    case PacketType::Data: return 20;
    case PacketType::PathDiscovery: return 24;
    case PacketType::PathReply: return 24;
    case PacketType::NetAck: return 16;
    case PacketType::RouteRequest: return 24;
    case PacketType::RouteReply: return 20;
    case PacketType::RouteError: return 12;
    case PacketType::RouteUpdate: return 8;  // + 10 bytes per entry (payload)
  }
  return 20;
}

PacketRef make_packet(PacketInit init) {
  HopState hop;
  hop.actual_hops = init.actual_hops;
  hop.expected_hops = init.expected_hops;
  hop.ttl = init.ttl;
  hop.prev_hop = init.prev_hop;
  return PacketRef(PacketBuffer::create(std::move(init)), hop);
}

PacketRef clone_packet_deep(const PacketRef& ref) {
  const PacketBuffer& b = ref.buffer();
  PacketInit init;
  init.type = b.type();
  init.origin = b.origin();
  init.target = b.target();
  init.sequence = b.sequence();
  init.uid = b.uid();
  init.payload_bytes = b.payload_bytes();
  init.created_at = b.created_at();
  init.rreq_id = b.rreq_id();
  init.origin_seqno = b.origin_seqno();
  init.target_seqno = b.target_seqno();
  init.unreachable = b.unreachable();
  init.acked_type = b.acked_type();
  // A fresh extension from this thread's pools — never a shared Ref.
  if (b.has_extension()) init.extension = b.extension().get()->clone();
  init.actual_hops = ref.actual_hops();
  init.expected_hops = ref.expected_hops();
  init.ttl = ref.ttl();
  init.prev_hop = ref.prev_hop();
  return make_packet(std::move(init));
}

PacketInit PacketRef::to_init() const {
  PacketInit init;
  init.type = buffer_->type();
  init.origin = buffer_->origin();
  init.target = buffer_->target();
  init.sequence = buffer_->sequence();
  init.uid = buffer_->uid();
  init.payload_bytes = buffer_->payload_bytes();
  init.created_at = buffer_->created_at();
  init.rreq_id = buffer_->rreq_id();
  init.origin_seqno = buffer_->origin_seqno();
  init.target_seqno = buffer_->target_seqno();
  init.unreachable = buffer_->unreachable();
  init.acked_type = buffer_->acked_type();
  init.extension = buffer_->extension();
  init.actual_hops = hop_.actual_hops;
  init.expected_hops = hop_.expected_hops;
  init.ttl = hop_.ttl;
  init.prev_hop = hop_.prev_hop;
  return init;
}

std::string PacketRef::describe() const {
  std::ostringstream oss;
  oss << to_string(type()) << "(origin=" << origin() << " target=" << target()
      << " seq=" << sequence() << " hops=" << actual_hops() << " uid=" << uid()
      << ")";
  return oss.str();
}

}  // namespace rrnet::net
