// The zero-copy cross-layer message path.
//
// A logical packet is allocated exactly once, at origination, as a pooled
// net::PacketBuffer: the immutable origin header (type, origin, target,
// sequence, uid, sizes, AODV fields, typed extension) plus an intrusive
// NON-atomic reference count. Every layer crossing — protocol relay,
// net->MAC queue, MAC->PHY airframe, PHY delivery fan-out — moves a
// 24-byte net::PacketRef instead of copying the ~100-byte packet: the ref
// holds the buffer pointer plus its own HopState trailer (ttl, hop counts,
// prev_hop), which is the only state that legitimately differs between
// concurrent in-flight copies of the same packet.
//
// Ownership/refcount rules:
//  * PacketRef is the ONLY owner type. Copying a ref bumps the count
//    (non-atomically); destroying the last ref returns the buffer to the
//    thread-local PayloadPool it came from.
//  * The refcount is non-atomic by design: replication workers are
//    shared-nothing (each owns its scheduler, network, and pools), so a
//    buffer is created, relayed, and released on one thread. This is what
//    keeps the serial==parallel bit-identity guarantee free of fences.
//  * The header is immutable after make_packet(). A relay that must change
//    header fields (DSR's per-hop route accumulation) rebuilds via
//    to_init() + make_packet(), paying one pool allocation — exactly the
//    cases that semantically ARE new packets.
//
// Protocol-specific payloads ride in a typed extension slot: a
// PacketExtension subclass tagged with an ExtensionKind, reached through
// extension_as<T>() (kind-checked downcast from the typed base — no void*
// anywhere on the path).
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>

#include "des/time.hpp"
#include "net/packet.hpp"
#include "util/pool.hpp"

namespace rrnet::net {

/// Discriminator for the typed extension slot. One entry per concrete
/// PacketExtension subclass (the set is closed and small: protocols that
/// need a new payload add a kind here and a subclass in their own header).
enum class ExtensionKind : std::uint8_t {
  SourceRoute,  ///< DSR: accumulated/complete node list
  RouteTable,   ///< DSDV: full table dump
};

class ExtensionRef;

/// Base of all packet extensions: an ExtensionKind tag plus an intrusive
/// non-atomic refcount (same threading rules as PacketBuffer). Concrete
/// subclasses live in the protocol headers that own them and expose a
/// `static constexpr ExtensionKind kKind` for extension_as<T>().
class PacketExtension : public util::PoolAllocated {
 public:
  explicit PacketExtension(ExtensionKind kind) noexcept : kind_(kind) {}
  virtual ~PacketExtension() = default;
  PacketExtension(const PacketExtension&) = delete;
  PacketExtension& operator=(const PacketExtension&) = delete;

  [[nodiscard]] ExtensionKind kind() const noexcept { return kind_; }

  /// Allocate an independent copy of this extension from the CALLING
  /// thread's pools. The cross-shard handoff path uses this to re-home a
  /// packet onto the destination shard's worker thread: refcounts are
  /// non-atomic, so a buffer must never be shared across threads — it is
  /// deep-cloned instead (see clone_packet_deep below).
  [[nodiscard]] virtual ExtensionRef clone() const = 0;

 private:
  friend class ExtensionRef;
  mutable std::uint32_t refs_ = 0;
  ExtensionKind kind_;
};

/// Intrusive handle to a PacketExtension. make_extension<T>() is the only
/// creation path; the referenced extension is immutable once attached.
class ExtensionRef {
 public:
  ExtensionRef() noexcept = default;
  ExtensionRef(const ExtensionRef& other) noexcept : ext_(other.ext_) {
    if (ext_ != nullptr) ++ext_->refs_;
  }
  ExtensionRef(ExtensionRef&& other) noexcept : ext_(other.ext_) {
    other.ext_ = nullptr;
  }
  ExtensionRef& operator=(const ExtensionRef& other) noexcept {
    ExtensionRef(other).swap(*this);
    return *this;
  }
  ExtensionRef& operator=(ExtensionRef&& other) noexcept {
    ExtensionRef(std::move(other)).swap(*this);
    return *this;
  }
  ~ExtensionRef() { reset(); }

  void reset() noexcept {
    if (ext_ != nullptr && --ext_->refs_ == 0) delete ext_;
    ext_ = nullptr;
  }
  void swap(ExtensionRef& other) noexcept { std::swap(ext_, other.ext_); }

  [[nodiscard]] const PacketExtension* get() const noexcept { return ext_; }
  explicit operator bool() const noexcept { return ext_ != nullptr; }

  template <typename T, typename... Args>
  friend ExtensionRef make_extension(Args&&... args);

 private:
  struct Adopt {};
  ExtensionRef(const PacketExtension* ext, Adopt) noexcept : ext_(ext) {
    ++ext_->refs_;
  }

  const PacketExtension* ext_ = nullptr;
};

/// Build an immutable extension of concrete type T (a PacketExtension
/// subclass). The object routes through the size-class pools via
/// PoolAllocated, so steady-state extension churn stays off the heap.
template <typename T, typename... Args>
[[nodiscard]] ExtensionRef make_extension(Args&&... args) {
  static_assert(std::is_base_of_v<PacketExtension, T>);
  return ExtensionRef(new T(std::forward<Args>(args)...),
                      ExtensionRef::Adopt{});
}

/// The flat origination aggregate: the complete on-air packet (immutable
/// header fields AND the initial per-hop trailer) as one inspectable
/// struct. Protocols fill it in and hand it to make_packet(), which splits
/// it into the shared buffer and the ref's trailer. Field meanings match
/// the paper's packet formats; fields a protocol does not use stay at
/// their defaults and do not count toward the on-air size.
struct PacketInit {
  PacketType type = PacketType::Data;
  std::uint32_t origin = kNoNode;   ///< node that created the packet
  std::uint32_t target = kNoNode;   ///< final destination (kNoNode = flood)
  std::uint32_t sequence = 0;       ///< per-origin sequence number
  std::uint64_t uid = 0;            ///< globally unique (tracing, dedup)
  std::uint16_t actual_hops = 0;    ///< initial trailer: hops traveled
  std::uint16_t expected_hops = 0;  ///< initial trailer: RR expected hops
  std::uint8_t ttl = 64;            ///< initial trailer: relays remaining
  std::uint32_t prev_hop = kNoNode; ///< initial trailer: last transmitter
  std::uint32_t payload_bytes = 0;  ///< application payload size
  des::Time created_at = 0.0;       ///< origination time (end-to-end delay)

  // AODV-only fields.
  std::uint32_t rreq_id = 0;        ///< per-origin route-request id
  std::uint32_t origin_seqno = 0;   ///< origin's AODV sequence number
  std::uint32_t target_seqno = 0;   ///< last known target AODV sequence number
  std::uint32_t unreachable = kNoNode;  ///< RERR: destination that broke

  /// NetAck-only: packet type being acknowledged (the ack references the
  /// acked packet's (origin, sequence, type) flood key).
  PacketType acked_type = PacketType::Data;

  /// Typed protocol extension; its on-air size must be reflected in
  /// payload_bytes by the protocol that attaches it.
  ExtensionRef extension;
};

class PacketRef;
PacketRef make_packet(PacketInit init);

/// The shared, immutable part of an in-flight packet. Created only by
/// make_packet(); reached only through PacketRef. Pooled per-thread and
/// ref-counted non-atomically (see the file comment for the rules).
class PacketBuffer {
 public:
  PacketBuffer(const PacketBuffer&) = delete;
  PacketBuffer& operator=(const PacketBuffer&) = delete;

  [[nodiscard]] PacketType type() const noexcept { return type_; }
  [[nodiscard]] std::uint32_t origin() const noexcept { return origin_; }
  [[nodiscard]] std::uint32_t target() const noexcept { return target_; }
  [[nodiscard]] std::uint32_t sequence() const noexcept { return sequence_; }
  [[nodiscard]] std::uint64_t uid() const noexcept { return uid_; }
  [[nodiscard]] std::uint32_t payload_bytes() const noexcept {
    return payload_bytes_;
  }
  [[nodiscard]] des::Time created_at() const noexcept { return created_at_; }
  [[nodiscard]] std::uint32_t rreq_id() const noexcept { return rreq_id_; }
  [[nodiscard]] std::uint32_t origin_seqno() const noexcept {
    return origin_seqno_;
  }
  [[nodiscard]] std::uint32_t target_seqno() const noexcept {
    return target_seqno_;
  }
  [[nodiscard]] std::uint32_t unreachable() const noexcept {
    return unreachable_;
  }
  [[nodiscard]] PacketType acked_type() const noexcept { return acked_type_; }

  [[nodiscard]] bool has_extension() const noexcept {
    return static_cast<bool>(extension_);
  }
  [[nodiscard]] const ExtensionRef& extension() const noexcept {
    return extension_;
  }
  /// Kind-checked typed access to the extension; nullptr when absent or of
  /// a different kind.
  template <typename T>
  [[nodiscard]] const T* extension_as() const noexcept {
    const PacketExtension* ext = extension_.get();
    return (ext != nullptr && ext->kind() == T::kKind)
               ? static_cast<const T*>(ext)
               : nullptr;
  }

  /// On-air network header size for this packet type (bytes).
  [[nodiscard]] std::uint32_t header_bytes() const noexcept;
  /// Full network-layer size: header + payload.
  [[nodiscard]] std::uint32_t size_bytes() const noexcept {
    return header_bytes() + payload_bytes_;
  }
  [[nodiscard]] std::uint64_t flood_key() const noexcept {
    return flood_key_of(origin_, sequence_, type_);
  }

  /// Live reference count (tests / leak audits).
  [[nodiscard]] std::uint32_t ref_count() const noexcept { return refs_; }

 private:
  friend class PacketRef;
  friend PacketRef make_packet(PacketInit init);

  explicit PacketBuffer(PacketInit&& init) noexcept
      : type_(init.type),
        acked_type_(init.acked_type),
        origin_(init.origin),
        target_(init.target),
        sequence_(init.sequence),
        uid_(init.uid),
        payload_bytes_(init.payload_bytes),
        created_at_(init.created_at),
        rreq_id_(init.rreq_id),
        origin_seqno_(init.origin_seqno),
        target_seqno_(init.target_seqno),
        unreachable_(init.unreachable),
        extension_(std::move(init.extension)) {}

  static PacketBuffer* create(PacketInit&& init);
  static void destroy(const PacketBuffer* buffer) noexcept;

  void ref() const noexcept { ++refs_; }
  void unref() const noexcept {
    if (--refs_ == 0) destroy(this);
  }

  PacketType type_;
  PacketType acked_type_;
  std::uint32_t origin_;
  std::uint32_t target_;
  std::uint32_t sequence_;
  std::uint64_t uid_;
  std::uint32_t payload_bytes_;
  des::Time created_at_;
  std::uint32_t rreq_id_;
  std::uint32_t origin_seqno_;
  std::uint32_t target_seqno_;
  std::uint32_t unreachable_;
  ExtensionRef extension_;
  mutable std::uint32_t refs_ = 0;
};

/// The handle every layer passes around: shared buffer pointer + this
/// copy's own per-hop trailer. 24 bytes, nothrow-movable, cheap to copy
/// (one non-atomic increment) — sized to sit inside InlineFunction capture
/// budgets so relays and elections never box packets again.
class PacketRef {
 public:
  PacketRef() noexcept = default;
  PacketRef(const PacketRef& other) noexcept
      : buffer_(other.buffer_), hop_(other.hop_) {
    if (buffer_ != nullptr) buffer_->ref();
  }
  PacketRef(PacketRef&& other) noexcept
      : buffer_(other.buffer_), hop_(other.hop_) {
    other.buffer_ = nullptr;
  }
  PacketRef& operator=(const PacketRef& other) noexcept {
    PacketRef(other).swap(*this);
    return *this;
  }
  PacketRef& operator=(PacketRef&& other) noexcept {
    PacketRef(std::move(other)).swap(*this);
    return *this;
  }
  ~PacketRef() {
    if (buffer_ != nullptr) buffer_->unref();
  }

  void reset() noexcept {
    if (buffer_ != nullptr) buffer_->unref();
    buffer_ = nullptr;
    hop_ = HopState{};
  }
  void swap(PacketRef& other) noexcept {
    std::swap(buffer_, other.buffer_);
    std::swap(hop_, other.hop_);
  }

  explicit operator bool() const noexcept { return buffer_ != nullptr; }

  // ---- immutable header (shared buffer) ----
  [[nodiscard]] PacketType type() const noexcept { return buffer_->type(); }
  [[nodiscard]] std::uint32_t origin() const noexcept {
    return buffer_->origin();
  }
  [[nodiscard]] std::uint32_t target() const noexcept {
    return buffer_->target();
  }
  [[nodiscard]] std::uint32_t sequence() const noexcept {
    return buffer_->sequence();
  }
  [[nodiscard]] std::uint64_t uid() const noexcept { return buffer_->uid(); }
  [[nodiscard]] std::uint32_t payload_bytes() const noexcept {
    return buffer_->payload_bytes();
  }
  [[nodiscard]] des::Time created_at() const noexcept {
    return buffer_->created_at();
  }
  [[nodiscard]] std::uint32_t rreq_id() const noexcept {
    return buffer_->rreq_id();
  }
  [[nodiscard]] std::uint32_t origin_seqno() const noexcept {
    return buffer_->origin_seqno();
  }
  [[nodiscard]] std::uint32_t target_seqno() const noexcept {
    return buffer_->target_seqno();
  }
  [[nodiscard]] std::uint32_t unreachable() const noexcept {
    return buffer_->unreachable();
  }
  [[nodiscard]] PacketType acked_type() const noexcept {
    return buffer_->acked_type();
  }
  [[nodiscard]] bool has_extension() const noexcept {
    return buffer_->has_extension();
  }
  template <typename T>
  [[nodiscard]] const T* extension_as() const noexcept {
    return buffer_->extension_as<T>();
  }
  [[nodiscard]] std::uint32_t header_bytes() const noexcept {
    return buffer_->header_bytes();
  }
  [[nodiscard]] std::uint32_t size_bytes() const noexcept {
    return buffer_->size_bytes();
  }
  [[nodiscard]] std::uint64_t flood_key() const noexcept {
    return buffer_->flood_key();
  }
  [[nodiscard]] const PacketBuffer& buffer() const noexcept { return *buffer_; }

  // ---- per-hop trailer (this copy only) ----
  [[nodiscard]] HopState& hop() noexcept { return hop_; }
  [[nodiscard]] const HopState& hop() const noexcept { return hop_; }
  [[nodiscard]] std::uint16_t actual_hops() const noexcept {
    return hop_.actual_hops;
  }
  [[nodiscard]] std::uint16_t expected_hops() const noexcept {
    return hop_.expected_hops;
  }
  [[nodiscard]] std::uint8_t ttl() const noexcept { return hop_.ttl; }
  [[nodiscard]] std::uint32_t prev_hop() const noexcept {
    return hop_.prev_hop;
  }

  /// Flatten back into an origination aggregate (header + current trailer).
  /// The escape hatch for relays that must change immutable header fields
  /// (DSR route accumulation, requeue-after-link-break): edit the init and
  /// make_packet() a fresh buffer.
  [[nodiscard]] PacketInit to_init() const;

  [[nodiscard]] std::string describe() const;

  friend PacketRef make_packet(PacketInit init);

 private:
  PacketRef(PacketBuffer* buffer, HopState hop) noexcept
      : buffer_(buffer), hop_(hop) {
    buffer_->ref();
  }

  PacketBuffer* buffer_ = nullptr;
  HopState hop_;
};

/// Originate a packet: one pooled buffer allocation, shared by every copy
/// of the returned ref for the packet's whole network lifetime.
[[nodiscard]] PacketRef make_packet(PacketInit init);

/// Rebuild `ref` as a completely independent packet allocated from the
/// CALLING thread's pools: fresh buffer, fresh extension (virtual clone),
/// identical header and hop trailer. This is the only legal way to move a
/// packet across threads — refcounts are non-atomic and buffers pool-local,
/// so shard handoff re-homes the payload instead of sharing it. Reads the
/// source buffer through const getters only (never copies a Ref), so the
/// source thread's refcounts are untouched.
[[nodiscard]] PacketRef clone_packet_deep(const PacketRef& ref);

/// The calling thread's dedicated PacketBuffer arena (introspection: the
/// sim layer snapshots its occupancy/alloc counters into run metrics).
[[nodiscard]] util::PayloadPool& packet_buffer_pool() noexcept;

static_assert(sizeof(PacketRef) <= 24,
              "PacketRef must stay small enough for InlineFunction captures");
static_assert(std::is_nothrow_move_constructible_v<PacketRef>);

}  // namespace rrnet::net
