// Network-layer packet vocabulary: packet types, the "no node" sentinel,
// the flood key, and the per-hop trailer.
//
// The wire format is split in two at origination (see packet_buffer.hpp):
// the immutable origin header lives once in a pooled, ref-counted
// net::PacketBuffer shared by every in-flight copy, while the small per-hop
// trailer (HopState: ttl / hop counts / previous hop) travels by value
// inside each net::PacketRef.
#pragma once

#include <cstdint>

namespace rrnet::net {

/// "No node" sentinel for optional node-id fields.
inline constexpr std::uint32_t kNoNode = 0xFFFFFFFFu;

enum class PacketType : std::uint8_t {
  Data,           ///< application payload (flooded or routed)
  PathDiscovery,  ///< RR: flooded request carrying actual hop count
  PathReply,      ///< RR: reply forwarded by leader election
  NetAck,         ///< RR: arbiter acknowledgement
  RouteRequest,   ///< AODV/DSR RREQ
  RouteReply,     ///< AODV/DSR RREP
  RouteError,     ///< AODV/DSR RERR
  RouteUpdate,    ///< DSDV periodic/triggered table dump
};

[[nodiscard]] const char* to_string(PacketType type) noexcept;

/// Key identifying a logical packet across relays (origin, sequence, type):
/// origin (32) | sequence (24) | type (8). Relayed copies keep the key, so
/// duplicate caches work; sequences wrap far beyond any cache horizon.
[[nodiscard]] inline std::uint64_t flood_key_of(std::uint32_t origin,
                                                std::uint32_t sequence,
                                                PacketType type) noexcept {
  return (static_cast<std::uint64_t>(origin) << 32) |
         (static_cast<std::uint64_t>(sequence & 0xFFFFFFu) << 8) |
         static_cast<std::uint64_t>(type);
}

/// The mutable per-hop trailer. Each in-flight PacketRef carries its own
/// copy: concurrent relays of one logical packet legitimately disagree on
/// hop counts (an armed election holds hops=2 while a downstream node
/// relays at hops=3), so these fields can never live in the shared buffer.
struct HopState {
  std::uint16_t actual_hops = 0;    ///< hops traveled so far (RR "actual hop count")
  std::uint16_t expected_hops = 0;  ///< RR path-reply "expected hop count"
  std::uint8_t ttl = 64;            ///< relays remaining
  std::uint32_t prev_hop = kNoNode; ///< node that last transmitted this copy
};

}  // namespace rrnet::net
