// The network-layer packet shared by all protocols in this library.
//
// One concrete struct (rather than a class hierarchy) keeps packets cheap to
// copy into MAC frames and trivially inspectable by the promiscuous
// listeners that Routeless Routing relies on. Fields unused by a given
// protocol are simply left at their defaults and do not count toward the
// packet's on-air size (see header_bytes()).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "des/time.hpp"

namespace rrnet::net {

/// "No node" sentinel for optional node-id fields.
inline constexpr std::uint32_t kNoNode = 0xFFFFFFFFu;

enum class PacketType : std::uint8_t {
  Data,           ///< application payload (flooded or routed)
  PathDiscovery,  ///< RR: flooded request carrying actual hop count
  PathReply,      ///< RR: reply forwarded by leader election
  NetAck,         ///< RR: arbiter acknowledgement
  RouteRequest,   ///< AODV RREQ
  RouteReply,     ///< AODV RREP
  RouteError,     ///< AODV RERR
  RouteUpdate,    ///< DSDV periodic/triggered table dump
};

[[nodiscard]] const char* to_string(PacketType type) noexcept;

struct Packet {
  PacketType type = PacketType::Data;
  std::uint32_t origin = kNoNode;   ///< node that created the packet
  std::uint32_t target = kNoNode;   ///< final destination (kNoNode = flood)
  std::uint32_t sequence = 0;       ///< per-origin sequence number
  std::uint64_t uid = 0;            ///< globally unique (tracing, dedup)
  std::uint16_t actual_hops = 0;    ///< hops traveled so far (RR "actual hop count")
  std::uint16_t expected_hops = 0;  ///< RR path-reply "expected hop count"
  std::uint8_t ttl = 64;            ///< relays remaining
  std::uint32_t prev_hop = kNoNode; ///< node that last transmitted this copy
  std::uint32_t payload_bytes = 0;  ///< application payload size
  des::Time created_at = 0.0;       ///< origination time (end-to-end delay)

  // AODV-only fields.
  std::uint32_t rreq_id = 0;        ///< per-origin route-request id
  std::uint32_t origin_seqno = 0;   ///< origin's AODV sequence number
  std::uint32_t target_seqno = 0;   ///< last known target AODV sequence number
  std::uint32_t unreachable = kNoNode;  ///< RERR: destination that broke

  /// NetAck-only: packet type being acknowledged (the ack references the
  /// acked packet's (origin, sequence, type) flood key).
  PacketType acked_type = PacketType::Data;

  /// Protocol-specific extension payload (type-erased; e.g. DSDV carries a
  /// route-table dump here). Its on-air size must be reflected in
  /// payload_bytes by the protocol that attaches it.
  std::shared_ptr<const void> extension;

  /// On-air network header size for this packet type (bytes).
  [[nodiscard]] std::uint32_t header_bytes() const noexcept;
  /// Full network-layer size: header + payload.
  [[nodiscard]] std::uint32_t size_bytes() const noexcept {
    return header_bytes() + payload_bytes;
  }
  /// Key identifying the logical packet across relays (origin, sequence,
  /// type) — relayed copies keep the key, so duplicate caches work.
  [[nodiscard]] std::uint64_t flood_key() const noexcept;

  [[nodiscard]] std::string describe() const;
};

}  // namespace rrnet::net
