// Bounded duplicate-suppression cache keyed by Packet::flood_key().
//
// Counter-1 flooding requires "a list of sequence numbers of received
// packets" per node; the cache also counts how many copies were heard, which
// the counter-based flooding variants and the election logic use.
//
// Eviction is least-recently-OBSERVED, not FIFO-by-insertion: under FIFO a
// packet whose duplicates are still arriving could be evicted purely by
// insertion age, after which a late copy looked "fresh" and re-flooded (and
// its duplicate counter silently restarted). Every observation therefore
// refreshes the key's position; only keys the node has genuinely stopped
// hearing fall off the end.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "util/pooled_containers.hpp"

namespace rrnet::net {

/// Lifetime counters for one cache (suppression pressure + window misses).
struct DuplicateCacheStats {
  std::uint64_t hits = 0;       ///< observations of already-known keys
  std::uint64_t evictions = 0;  ///< keys pushed out by the capacity bound
};

class DuplicateCache {
 public:
  /// Keep at most `capacity` distinct keys; the least-recently-observed key
  /// is evicted when a new key would exceed the budget.
  explicit DuplicateCache(std::size_t capacity = 4096);

  /// Record one observation of `key`. Returns true iff it was NEW.
  bool observe(std::uint64_t key);
  /// True iff the key has been observed (and not yet evicted).
  [[nodiscard]] bool seen(std::uint64_t key) const;
  /// Number of observations of `key` still in the cache (0 if unknown).
  [[nodiscard]] std::uint32_t count(std::uint64_t key) const;
  /// Drop `key` outright (no eviction counted). Returns true iff present.
  bool erase(std::uint64_t key);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] const DuplicateCacheStats& stats() const noexcept {
    return stats_;
  }

  // --- Node migration (sharded dynamic ownership) ---

  /// All (key, count) entries from least- to most-recently observed. Plain
  /// std::vector on purpose: the snapshot crosses threads, so it must not
  /// touch a thread-local pool.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint32_t>>
  export_entries() const;
  /// Rebuild an exported cache into this (empty) one, preserving recency
  /// order, per-key counts, and lifetime stats — eviction behavior on the
  /// adopting shard continues exactly where the evicted node left off.
  void restore(
      const std::vector<std::pair<std::uint64_t, std::uint32_t>>& entries,
      const DuplicateCacheStats& stats);

 private:
  struct Entry {
    std::uint32_t count = 0;
    util::PooledList<std::uint64_t>::iterator pos;  ///< position in order_
  };

  std::size_t capacity_;
  util::PooledUnorderedMap<std::uint64_t, Entry> entries_;
  util::PooledList<std::uint64_t> order_;  ///< front = least recently observed
  DuplicateCacheStats stats_;
};

/// Accumulate one cache's counters into a registry under the obs::metric
/// net.dup_cache_* names (protocols call this per cache they own).
void snapshot_metrics(const DuplicateCache& cache, obs::MetricRegistry& reg);

}  // namespace rrnet::net
