// Bounded duplicate-suppression cache keyed by Packet::flood_key().
//
// Counter-1 flooding requires "a list of sequence numbers of received
// packets" per node; the cache also counts how many copies were heard, which
// the counter-based flooding variants and the election logic use.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

namespace rrnet::net {

class DuplicateCache {
 public:
  /// Keep at most `capacity` distinct keys; oldest keys are evicted FIFO.
  explicit DuplicateCache(std::size_t capacity = 4096);

  /// Record one observation of `key`. Returns true iff it was NEW.
  bool observe(std::uint64_t key);
  /// True iff the key has been observed (and not yet evicted).
  [[nodiscard]] bool seen(std::uint64_t key) const;
  /// Number of observations of `key` still in the cache (0 if unknown).
  [[nodiscard]] std::uint32_t count(std::uint64_t key) const;

  [[nodiscard]] std::size_t size() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::size_t capacity_;
  std::unordered_map<std::uint64_t, std::uint32_t> counts_;
  std::deque<std::uint64_t> order_;
};

}  // namespace rrnet::net
