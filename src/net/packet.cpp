#include "net/packet.hpp"

namespace rrnet::net {

const char* to_string(PacketType type) noexcept {
  switch (type) {
    case PacketType::Data: return "Data";
    case PacketType::PathDiscovery: return "PathDiscovery";
    case PacketType::PathReply: return "PathReply";
    case PacketType::NetAck: return "NetAck";
    case PacketType::RouteRequest: return "RouteRequest";
    case PacketType::RouteReply: return "RouteReply";
    case PacketType::RouteError: return "RouteError";
    case PacketType::RouteUpdate: return "RouteUpdate";
  }
  return "?";
}

}  // namespace rrnet::net
