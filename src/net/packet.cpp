#include "net/packet.hpp"

#include <sstream>

namespace rrnet::net {

const char* to_string(PacketType type) noexcept {
  switch (type) {
    case PacketType::Data: return "Data";
    case PacketType::PathDiscovery: return "PathDiscovery";
    case PacketType::PathReply: return "PathReply";
    case PacketType::NetAck: return "NetAck";
    case PacketType::RouteRequest: return "RouteRequest";
    case PacketType::RouteReply: return "RouteReply";
    case PacketType::RouteError: return "RouteError";
    case PacketType::RouteUpdate: return "RouteUpdate";
  }
  return "?";
}

std::uint32_t Packet::header_bytes() const noexcept {
  switch (type) {
    case PacketType::Data: return 20;
    case PacketType::PathDiscovery: return 24;
    case PacketType::PathReply: return 24;
    case PacketType::NetAck: return 16;
    case PacketType::RouteRequest: return 24;
    case PacketType::RouteReply: return 20;
    case PacketType::RouteError: return 12;
    case PacketType::RouteUpdate: return 8;  // + 10 bytes per entry (payload)
  }
  return 20;
}

std::uint64_t Packet::flood_key() const noexcept {
  // origin (32) | sequence (24) | type (8); sequences wrap far beyond any
  // duplicate-cache horizon used here.
  return (static_cast<std::uint64_t>(origin) << 32) |
         (static_cast<std::uint64_t>(sequence & 0xFFFFFFu) << 8) |
         static_cast<std::uint64_t>(type);
}

std::string Packet::describe() const {
  std::ostringstream oss;
  oss << to_string(type) << "(origin=" << origin << " target=" << target
      << " seq=" << sequence << " hops=" << actual_hops << " uid=" << uid
      << ")";
  return oss.str();
}

}  // namespace rrnet::net
