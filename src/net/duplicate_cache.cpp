#include "net/duplicate_cache.hpp"

#include "util/contracts.hpp"

namespace rrnet::net {

DuplicateCache::DuplicateCache(std::size_t capacity) : capacity_(capacity) {
  RRNET_EXPECTS(capacity > 0);
}

bool DuplicateCache::observe(std::uint64_t key) {
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++it->second.count;
    // Refresh recency: a key still being heard must not age out while colder
    // keys sit in the cache.
    order_.splice(order_.end(), order_, it->second.pos);
    return false;
  }
  order_.push_back(key);
  entries_.emplace(key, Entry{1u, std::prev(order_.end())});
  if (entries_.size() > capacity_) {
    entries_.erase(order_.front());
    order_.pop_front();
  }
  return true;
}

bool DuplicateCache::seen(std::uint64_t key) const {
  return entries_.count(key) > 0;
}

std::uint32_t DuplicateCache::count(std::uint64_t key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? 0u : it->second.count;
}

}  // namespace rrnet::net
