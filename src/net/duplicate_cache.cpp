#include "net/duplicate_cache.hpp"

#include "util/contracts.hpp"

namespace rrnet::net {

DuplicateCache::DuplicateCache(std::size_t capacity) : capacity_(capacity) {
  RRNET_EXPECTS(capacity > 0);
}

bool DuplicateCache::observe(std::uint64_t key) {
  auto [it, inserted] = counts_.try_emplace(key, 0u);
  ++it->second;
  if (!inserted) return false;
  order_.push_back(key);
  if (order_.size() > capacity_) {
    counts_.erase(order_.front());
    order_.pop_front();
  }
  return true;
}

bool DuplicateCache::seen(std::uint64_t key) const {
  return counts_.count(key) > 0;
}

std::uint32_t DuplicateCache::count(std::uint64_t key) const {
  const auto it = counts_.find(key);
  return it == counts_.end() ? 0u : it->second;
}

}  // namespace rrnet::net
