#include "net/duplicate_cache.hpp"

#include "util/contracts.hpp"

namespace rrnet::net {

DuplicateCache::DuplicateCache(std::size_t capacity) : capacity_(capacity) {
  RRNET_EXPECTS(capacity > 0);
}

bool DuplicateCache::observe(std::uint64_t key) {
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++it->second.count;
    ++stats_.hits;
    // Refresh recency: a key still being heard must not age out while colder
    // keys sit in the cache.
    order_.splice(order_.end(), order_, it->second.pos);
    return false;
  }
  order_.push_back(key);
  entries_.emplace(key, Entry{1u, std::prev(order_.end())});
  if (entries_.size() > capacity_) {
    entries_.erase(order_.front());
    order_.pop_front();
    ++stats_.evictions;
  }
  return true;
}

bool DuplicateCache::erase(std::uint64_t key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  order_.erase(it->second.pos);
  entries_.erase(it);
  return true;
}

bool DuplicateCache::seen(std::uint64_t key) const {
  return entries_.count(key) > 0;
}

std::uint32_t DuplicateCache::count(std::uint64_t key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? 0u : it->second.count;
}

std::vector<std::pair<std::uint64_t, std::uint32_t>>
DuplicateCache::export_entries() const {
  std::vector<std::pair<std::uint64_t, std::uint32_t>> out;
  out.reserve(entries_.size());
  for (const std::uint64_t key : order_) {
    out.emplace_back(key, entries_.find(key)->second.count);
  }
  return out;
}

void DuplicateCache::restore(
    const std::vector<std::pair<std::uint64_t, std::uint32_t>>& entries,
    const DuplicateCacheStats& stats) {
  RRNET_EXPECTS(entries_.empty() && entries.size() <= capacity_);
  for (const auto& [key, count] : entries) {
    order_.push_back(key);
    entries_.emplace(key, Entry{count, std::prev(order_.end())});
  }
  stats_ = stats;
}

void snapshot_metrics(const DuplicateCache& cache, obs::MetricRegistry& reg) {
  reg.add(obs::metric::kNetDupCacheHits, cache.stats().hits);
  reg.add(obs::metric::kNetDupCacheEvictions, cache.stats().evictions);
}

}  // namespace rrnet::net
