#include "des/timer.hpp"

namespace rrnet::des {

void Timer::start(Time delay, Callback cb) {
  cancel();
  expiry_ = scheduler_->now() + delay;
  // The scheduler clears the slot before invoking the callback, so by the
  // time `cb` runs this timer already reports inactive.
  id_ = scheduler_->schedule_in(delay, std::move(cb));
}

bool Timer::cancel() noexcept {
  const bool was_pending = scheduler_->cancel(id_);
  id_ = EventId{};
  return was_pending;
}

bool Timer::active() const noexcept { return scheduler_->pending(id_); }

}  // namespace rrnet::des
