#include "des/scheduler.hpp"

#include <cstdlib>
#include <cstring>
#include <limits>
#include <utility>

#include "obs/trace.hpp"
#include "util/contracts.hpp"

#ifdef RRNET_TRACE
#include <chrono>
#endif

namespace rrnet::des {

QueueBackend default_queue_backend() noexcept {
  // Read once: the env var selects a backend for the whole process (it
  // exists so CI can sweep both implementations, not for runtime toggling).
  static const QueueBackend backend = []() noexcept {
    const char* const env = std::getenv("RRNET_SCHED_QUEUE");
    if (env != nullptr &&
        (std::strcmp(env, "heap") == 0 || std::strcmp(env, "quad") == 0)) {
      return QueueBackend::Heap;
    }
    return QueueBackend::Ladder;
  }();
  return backend;
}

std::uint32_t Scheduler::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t s = free_slots_.back();
    free_slots_.pop_back();
    return s;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

EventId Scheduler::schedule_at(Time t, Callback cb) {
  RRNET_EXPECTS(t >= now_);
  RRNET_EXPECTS(cb != nullptr);
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.callback = std::move(cb);
  s.live = true;
  ++live_;
  queue_push(HeapEntry{t, next_sequence_++, slot, s.generation});
  return EventId{slot, s.generation};
}

EventId Scheduler::schedule_in(Time delay, Callback cb) {
  RRNET_EXPECTS(delay >= 0.0);
  return schedule_at(now_ + delay, std::move(cb));
}

bool Scheduler::cancel(EventId id) noexcept {
  if (!pending(id)) return false;
  Slot& s = slots_[id.slot];
  s.live = false;
  s.callback = nullptr;
  ++s.generation;  // invalidate the heap entry lazily
  free_slots_.push_back(id.slot);
  --live_;
  return true;
}

bool Scheduler::pending(EventId id) const noexcept {
  return id.valid() && id.slot < slots_.size() && slots_[id.slot].live &&
         slots_[id.slot].generation == id.generation;
}

bool Scheduler::settle_top() noexcept {
  while (!queue_empty()) {
    const HeapEntry& top = queue_top();
    const Slot& s = slots_[top.slot];
    if (s.live && s.generation == top.generation) return true;
    queue_pop();  // cancelled; its slot was already recycled
  }
  return false;
}

bool Scheduler::step() {
  // Pop-and-skip instead of settle_top + peek + pop: cancelled entries are
  // discarded inline, and the live one is fetched with a single queue
  // operation (the ladder settles its rungs once per pop this way, not
  // once per peek).
  HeapEntry top;
  for (;;) {
    if (queue_empty()) return false;
    top = queue_pop_top();
    const Slot& dead = slots_[top.slot];
    if (dead.live && dead.generation == top.generation) break;
  }
  Slot& s = slots_[top.slot];
  RRNET_ASSERT(top.time >= now_);
  now_ = top.time;
  Callback cb = std::move(s.callback);  // moved-from slot is empty
  s.live = false;
  ++s.generation;
  free_slots_.push_back(top.slot);
  --live_;
  ++executed_;
#ifdef RRNET_TRACE
  // Handler spans: simulated timestamp + wall-clock cost of one callback.
  // Only measured while a tracer is installed and enabled, so the
  // steady-state cost of a traced build without capture is one TLS load.
  if (obs::EventTracer* tracer = obs::thread_tracer();
      tracer != nullptr && tracer->enabled()) {
    const auto wall0 = std::chrono::steady_clock::now();
    cb();
    const auto wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - wall0)
                             .count();
    tracer->record(obs::EventKind::HandlerSpan, now_, obs::kNoTraceNode,
                   static_cast<std::uint64_t>(wall_ns));
    return true;
  }
#endif
  cb();
  return true;
}

void Scheduler::run() {
  while (step()) {
  }
}

Time Scheduler::next_event_time() noexcept {
  return settle_top() ? queue_top().time
                      : std::numeric_limits<Time>::infinity();
}

void Scheduler::run_until(Time t_end) {
  RRNET_EXPECTS(t_end >= now_);
  while (settle_top() && queue_top().time <= t_end) {
    step();
  }
  now_ = t_end;
}

bool Scheduler::run_until(Time t_end, std::uint64_t max_events) {
  RRNET_EXPECTS(t_end >= now_);
  std::uint64_t executed = 0;
  while (settle_top() && queue_top().time <= t_end) {
    if (executed == max_events) return false;
    step();
    ++executed;
  }
  now_ = t_end;
  return true;
}

}  // namespace rrnet::des
