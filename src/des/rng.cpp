#include "des/rng.hpp"

#include <cmath>
#include <numbers>

namespace rrnet::des {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_stream_seed(std::uint64_t base,
                                 std::uint64_t index) noexcept {
  // Mix the base seed through one splitmix64 step, fold the index in, and
  // mix again: adjacent (base, index) pairs land in unrelated streams.
  std::uint64_t s = base;
  s = splitmix64(s) ^ index;
  return splitmix64(s);
}

std::uint64_t link_stream_seed(std::uint64_t base, std::uint32_t tx,
                               std::uint32_t rx,
                               std::uint64_t draw_index) noexcept {
  // Same discipline as derive_stream_seed: fold each key component in
  // through a full splitmix64 mix so adjacent (tx, rx, draw) tuples land in
  // unrelated streams. tx/rx pack into one word (node ids are 32-bit).
  std::uint64_t s = base;
  s = splitmix64(s) ^ ((static_cast<std::uint64_t>(tx) << 32) | rx);
  s = splitmix64(s) ^ draw_index;
  return splitmix64(s);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(engine_());  // full range
  // Lemire-style rejection-free bounded draw with bias < 2^-64 * range.
  const std::uint64_t x = engine_();
  __extension__ using uint128 = unsigned __int128;
  const uint128 mul = static_cast<uint128>(x) * range;
  return lo + static_cast<std::int64_t>(mul >> 64);
}

double Rng::exponential(double mean) noexcept {
  // -mean * ln(1 - U), with U in [0,1) so the argument is in (0,1].
  return -mean * std::log(1.0 - uniform01());
}

double Rng::normal(double mean, double stddev) noexcept {
  const double u1 = 1.0 - uniform01();  // (0, 1]
  const double u2 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

bool Rng::bernoulli(double p) noexcept { return uniform01() < p; }

double Rng::rayleigh(double sigma) noexcept {
  return sigma * std::sqrt(-2.0 * std::log(1.0 - uniform01()));
}

Rng Rng::fork(std::string_view tag, std::uint64_t index) const noexcept {
  // FNV-1a over the tag, mixed with the parent seed and index via splitmix.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : tag) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  std::uint64_t s = seed_ ^ h;
  (void)splitmix64(s);
  s ^= index * 0x9E3779B97F4A7C15ULL;
  (void)splitmix64(s);
  return Rng(s);
}

}  // namespace rrnet::des
