// Simulation time. Seconds as double; helpers for common SI scales.
//
// Double seconds give ~microsecond resolution over days of simulated time,
// far beyond what these protocols need (backoff delays are >= 10 us).
// Event ordering ties are broken deterministically by insertion sequence in
// the scheduler, so exact-equality collisions are well-defined.
#pragma once

namespace rrnet::des {

using Time = double;  ///< simulated seconds

inline constexpr Time kMicrosecond = 1e-6;
inline constexpr Time kMillisecond = 1e-3;
inline constexpr Time kSecond = 1.0;

/// Speed of light, for propagation delays (m/s).
inline constexpr double kSpeedOfLight = 299'792'458.0;

}  // namespace rrnet::des
