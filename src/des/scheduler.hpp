// Discrete-event scheduler with O(log n) insertion and cancellation.
//
// Events are callbacks stored in generation-stamped slots; a 4-ary implicit
// heap (des::QuadHeap) holds (time, sequence, slot, generation) entries.
// Cancellation bumps the slot generation, so stale heap entries are skipped
// lazily at pop time. Ties in time are executed in insertion order, which
// makes simulations deterministic even when two events share a timestamp.
//
// Callbacks are des::InlineCallback, not std::function: captures live inside
// the pooled slot (zero heap allocations per event in steady state) and a
// capture larger than the inline budget is a compile-time error.
#pragma once

#include <cstdint>
#include <vector>

#include "des/inline_callback.hpp"
#include "des/quad_heap.hpp"
#include "des/time.hpp"

namespace rrnet::des {

/// Opaque handle to a scheduled event; value-semantic and cheap to copy.
struct EventId {
  std::uint32_t slot = kInvalidSlot;
  std::uint32_t generation = 0;

  static constexpr std::uint32_t kInvalidSlot = ~0u;
  [[nodiscard]] bool valid() const noexcept { return slot != kInvalidSlot; }
  friend bool operator==(const EventId&, const EventId&) = default;
};

class Scheduler {
 public:
  using Callback = InlineCallback;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time (0 before any event runs).
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedule cb at absolute time t; requires t >= now().
  EventId schedule_at(Time t, Callback cb);
  /// Schedule cb after a nonnegative delay.
  EventId schedule_in(Time delay, Callback cb);

  /// Cancel a pending event. Returns true iff the event was still pending.
  bool cancel(EventId id) noexcept;
  /// True iff the event is scheduled and not yet executed or cancelled.
  [[nodiscard]] bool pending(EventId id) const noexcept;

  /// Run until the queue drains.
  void run();
  /// Run events with time <= t_end, then advance the clock to t_end.
  void run_until(Time t_end);
  /// Execute at most one event; returns false when the queue is empty.
  bool step();

  [[nodiscard]] std::size_t pending_count() const noexcept { return live_; }
  [[nodiscard]] std::uint64_t executed_count() const noexcept {
    return executed_;
  }
  /// Deepest the event heap has ever been (queue-pressure gauge).
  [[nodiscard]] std::size_t heap_high_water() const noexcept {
    return heap_.high_water();
  }

 private:
  struct HeapEntry {
    Time time;
    std::uint64_t sequence;
    std::uint32_t slot;
    std::uint32_t generation;
  };
  struct Earlier {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const noexcept {
      if (a.time != b.time) return a.time < b.time;
      return a.sequence < b.sequence;  // FIFO among equal times
    }
  };
  struct Slot {
    Callback callback;
    std::uint32_t generation = 0;
    bool live = false;
  };

  /// Pop entries until the top is live; returns false if the heap empties.
  bool settle_top() noexcept;
  std::uint32_t acquire_slot();

  QuadHeap<HeapEntry, Earlier> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  Time now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
};

}  // namespace rrnet::des
