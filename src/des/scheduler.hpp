// Discrete-event scheduler with O(1)-amortized insertion and cancellation.
//
// Events are callbacks stored in generation-stamped slots; a priority queue
// holds (time, sequence, slot, generation) entries. Cancellation bumps the
// slot generation, so stale queue entries are skipped lazily at pop time.
// Ties in time are executed in insertion order, which makes simulations
// deterministic even when two events share a timestamp.
//
// Two queue backends implement the same strict total order, so switching
// between them is bit-identical (the serial==ladder determinism gate in
// tests/ladder_queue_test.cpp checks this):
//
//  * QueueBackend::Ladder (default): des::LadderQueue, O(1) amortized —
//    pushes append to time buckets, comparisons are spent only on the few
//    imminent events.
//  * QueueBackend::Heap: des::QuadHeap, O(log n) — the simpler reference
//    implementation the ladder is validated against.
//
// The environment variable RRNET_SCHED_QUEUE=heap|ladder overrides the
// default for default-constructed schedulers (used by scripts/verify.sh to
// sweep both backends under sanitizers).
//
// Callbacks are des::InlineCallback, not std::function: captures live inside
// the pooled slot (zero heap allocations per event in steady state) and a
// capture larger than the inline budget is a compile-time error.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "des/inline_callback.hpp"
#include "des/ladder_queue.hpp"
#include "des/quad_heap.hpp"
#include "des/time.hpp"
#include "util/contracts.hpp"

namespace rrnet::des {

/// Priority-queue implementation behind Scheduler.
enum class QueueBackend : std::uint8_t {
  Heap,    ///< 4-ary heap; O(log n) reference implementation
  Ladder,  ///< bucketed ladder queue; O(1) amortized
};

/// Backend used by default-constructed schedulers: Ladder unless the
/// RRNET_SCHED_QUEUE environment variable says "heap".
[[nodiscard]] QueueBackend default_queue_backend() noexcept;

/// Opaque handle to a scheduled event; value-semantic and cheap to copy.
struct EventId {
  std::uint32_t slot = kInvalidSlot;
  std::uint32_t generation = 0;

  static constexpr std::uint32_t kInvalidSlot = ~0u;
  [[nodiscard]] bool valid() const noexcept { return slot != kInvalidSlot; }
  friend bool operator==(const EventId&, const EventId&) = default;
};

class Scheduler {
 public:
  using Callback = InlineCallback;

  Scheduler() : Scheduler(default_queue_backend()) {}
  explicit Scheduler(QueueBackend backend) : backend_(backend) {}
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] QueueBackend queue_backend() const noexcept { return backend_; }

  /// Current simulated time (0 before any event runs).
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedule cb at absolute time t; requires t >= now(). The template
  /// overload constructs the callable directly in its event slot (no
  /// InlineCallback temporary, no indirect relocate — this is the hot
  /// path, run once per scheduled event); the Callback overload serves
  /// callers that already hold a built InlineCallback.
  template <typename F,
            typename = decltype(std::declval<Callback&>().emplace(
                std::declval<F>()))>
  EventId schedule_at(Time t, F&& f) {
    RRNET_EXPECTS(t >= now_);
    const std::uint32_t slot = acquire_slot();
    Slot& s = slots_[slot];
    s.callback.emplace(std::forward<F>(f));
    s.live = true;
    ++live_;
    queue_push(HeapEntry{t, next_sequence_++, slot, s.generation});
    return EventId{slot, s.generation};
  }
  EventId schedule_at(Time t, Callback cb);
  /// Schedule cb after a nonnegative delay.
  template <typename F,
            typename = decltype(std::declval<Callback&>().emplace(
                std::declval<F>()))>
  EventId schedule_in(Time delay, F&& f) {
    RRNET_EXPECTS(delay >= 0.0);
    return schedule_at(now_ + delay, std::forward<F>(f));
  }
  EventId schedule_in(Time delay, Callback cb);

  /// Cancel a pending event. Returns true iff the event was still pending.
  bool cancel(EventId id) noexcept;
  /// True iff the event is scheduled and not yet executed or cancelled.
  [[nodiscard]] bool pending(EventId id) const noexcept;

  /// Run until the queue drains.
  void run();
  /// Run events with time <= t_end, then advance the clock to t_end.
  void run_until(Time t_end);
  /// Bounded slice of run_until: execute at most `max_events` events with
  /// time <= t_end. Advances the clock to t_end (and returns true) only
  /// once every such event has run, so repeated calls execute exactly the
  /// sequence the unbounded overload would. The run-health monitor's
  /// serial sampling loop drives this between checkpoints.
  bool run_until(Time t_end, std::uint64_t max_events);
  /// Execute at most one event; returns false when the queue is empty.
  bool step();

  /// Absolute time of the earliest live pending event, or +infinity when
  /// the queue holds none. Non-const: cancelled entries at the top are
  /// discarded lazily on the way (the same settle run_until/step pay). The
  /// sharded engine derives its conservative time-window bound from this.
  [[nodiscard]] Time next_event_time() noexcept;

  [[nodiscard]] std::size_t pending_count() const noexcept { return live_; }
  [[nodiscard]] std::uint64_t executed_count() const noexcept {
    return executed_;
  }
  /// Deepest the event queue has ever been (queue-pressure gauge).
  [[nodiscard]] std::size_t heap_high_water() const noexcept {
    return backend_ == QueueBackend::Ladder ? ladder_.high_water()
                                            : heap_.high_water();
  }

 private:
  struct HeapEntry {
    Time time;
    std::uint64_t sequence;
    std::uint32_t slot;
    std::uint32_t generation;
  };
  struct Earlier {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const noexcept {
      if (a.time != b.time) return a.time < b.time;
      return a.sequence < b.sequence;  // FIFO among equal times
    }
  };
  struct EntryTime {
    Time operator()(const HeapEntry& e) const noexcept { return e.time; }
  };
  struct Slot {
    Callback callback;
    std::uint32_t generation = 0;
    bool live = false;
  };

  // Backend dispatch: one branch per queue touch, on a member the branch
  // predictor pins after the first event.
  [[nodiscard]] bool queue_empty() const noexcept {
    return backend_ == QueueBackend::Ladder ? ladder_.empty() : heap_.empty();
  }
  [[nodiscard]] const HeapEntry& queue_top() {
    return backend_ == QueueBackend::Ladder ? ladder_.top() : heap_.top();
  }
  void queue_pop() {
    if (backend_ == QueueBackend::Ladder) {
      ladder_.pop();
    } else {
      heap_.pop();
    }
  }
  /// Fused top+pop: one settle/sift per executed event instead of the
  /// three a peek-check-pop sequence costs (step() is the hottest loop in
  /// the engine; the ladder re-walks its rung fast path on every peek).
  HeapEntry queue_pop_top() {
    return backend_ == QueueBackend::Ladder ? ladder_.pop_top()
                                            : heap_.pop_top();
  }
  void queue_push(HeapEntry entry) {
    if (backend_ == QueueBackend::Ladder) {
      ladder_.push(entry);
    } else {
      heap_.push(entry);
    }
  }

  /// Pop entries until the top is live; returns false if the queue empties.
  bool settle_top() noexcept;
  std::uint32_t acquire_slot();

  QueueBackend backend_ = QueueBackend::Ladder;
  QuadHeap<HeapEntry, Earlier> heap_;
  LadderQueue<HeapEntry, EntryTime, Earlier> ladder_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  Time now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
};

}  // namespace rrnet::des
