// Fixed-capacity inline callables for scheduler events and hot-path handlers.
//
// std::function's small-buffer optimisation (16 bytes in libstdc++) cannot
// hold the hot-path captures of this simulator — Channel::transmit schedules
// lambdas whose captures run up to ~60 bytes — so every scheduled event paid
// one heap allocation and one indirect free. With millions of events per
// replication that allocation dominated the engine.
//
// InlineFunction<void(Args...), Capacity> stores the callable entirely
// inside the object (Capacity bytes of aligned storage + one ops-table
// pointer), is move-only, and *statically rejects* captures that do not
// fit: exceeding the budget is a compile error at the schedule site, never
// a silent heap fallback. Code that genuinely needs a large state block
// (e.g. a delayed net::Packet relay) boxes it behind a 16-byte ref-counted
// handle (util::make_pooled) and captures the handle.
//
// InlineCallback (= InlineFunction<void(), 64>) is the scheduler/timer
// callback type; core::ElectionSession::WinHandler and
// core::Arbiter::Callbacks use narrower instantiations.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace rrnet::des {

template <typename Signature, std::size_t Capacity>
class InlineFunction;  // only void(Args...) is supported

template <typename... Args, std::size_t Capacity>
class InlineFunction<void(Args...), Capacity> {
 public:
  /// Capture budget; exceeding it is a compile-time error at the call site.
  static constexpr std::size_t kCapacity = Capacity;
  static constexpr std::size_t kAlignment = alignof(std::max_align_t);

  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F,
            typename Fn = std::remove_cvref_t<F>,
            typename = std::enable_if_t<!std::is_same_v<Fn, InlineFunction> &&
                                        std::is_invocable_r_v<void, Fn&, Args...>>>
  InlineFunction(F&& fn) {  // NOLINT(runtime/explicit)
    static_assert(sizeof(Fn) <= kCapacity,
                  "callback capture exceeds the InlineFunction capacity; "
                  "capture a pooled/shared handle to the large state instead");
    static_assert(alignof(Fn) <= kAlignment,
                  "callback capture over-aligned for InlineFunction storage");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "callback captures must be nothrow-move-constructible");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
    ops_ = &kOpsFor<Fn>;
  }

  InlineFunction(InlineFunction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      relocate_from(other);
    }
  }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        relocate_from(other);
      }
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  InlineFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  ~InlineFunction() { reset(); }

  /// Destroy the held callable (no-op when empty).
  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  /// Destroy the held callable (if any) and construct `fn` directly in
  /// the inline storage. The schedule hot path uses this instead of
  /// assign-from-temporary, which costs an indirect relocate per event.
  template <typename F,
            typename Fn = std::remove_cvref_t<F>,
            typename = std::enable_if_t<!std::is_same_v<Fn, InlineFunction> &&
                                        std::is_invocable_r_v<void, Fn&, Args...>>>
  void emplace(F&& fn) {
    static_assert(sizeof(Fn) <= kCapacity,
                  "callback capture exceeds the InlineFunction capacity; "
                  "capture a pooled/shared handle to the large state instead");
    static_assert(alignof(Fn) <= kAlignment,
                  "callback capture over-aligned for InlineFunction storage");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "callback captures must be nothrow-move-constructible");
    reset();
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
    ops_ = &kOpsFor<Fn>;
  }

  /// Invoke the held callable; precondition: non-empty.
  void operator()(Args... args) {
    ops_->invoke(storage_, std::forward<Args>(args)...);
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }
  friend bool operator==(const InlineFunction& cb, std::nullptr_t) noexcept {
    return !static_cast<bool>(cb);
  }

 private:
  // Null relocate/destroy mark a trivially copyable / trivially destructible
  // callable. Scheduler::step relocates every event's callback out of its
  // slot before invoking (the slot vector may reallocate mid-callback), and
  // the hot-path captures are all trivial — a fixed-size memcpy plus a
  // skipped destructor replaces two indirect calls per executed event.
  struct Ops {
    void (*invoke)(void* self, Args... args);
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void* self) noexcept;
  };

  /// Move the callable out of `other` into our storage; precondition:
  /// ops_ == other.ops_ != nullptr. Leaves `other` empty.
  void relocate_from(InlineFunction& other) noexcept {
    if (ops_->relocate != nullptr) {
      ops_->relocate(other.storage_, storage_);
    } else {
      std::memcpy(storage_, other.storage_, Capacity);
    }
    other.ops_ = nullptr;
  }

  template <typename Fn>
  static void invoke_impl(void* self, Args... args) {
    (*static_cast<Fn*>(self))(std::forward<Args>(args)...);
  }
  template <typename Fn>
  static void relocate_impl(void* src, void* dst) noexcept {
    ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
    static_cast<Fn*>(src)->~Fn();
  }
  template <typename Fn>
  static void destroy_impl(void* self) noexcept {
    static_cast<Fn*>(self)->~Fn();
  }

  template <typename Fn>
  static constexpr Ops kOpsFor{
      &invoke_impl<Fn>,
      std::is_trivially_copyable_v<Fn> ? nullptr : &relocate_impl<Fn>,
      std::is_trivially_destructible_v<Fn> ? nullptr : &destroy_impl<Fn>};

  alignas(kAlignment) std::byte storage_[Capacity];
  const Ops* ops_ = nullptr;
};

/// The scheduler/timer event callback. The 64-byte budget is sized for the
/// largest engine-internal capture with no headroom to spare — growing a
/// hot-path capture should be a deliberate, reviewed decision.
using InlineCallback = InlineFunction<void(), 64>;

}  // namespace rrnet::des
