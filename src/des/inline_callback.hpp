// Fixed-capacity inline callable for scheduler events.
//
// std::function's small-buffer optimisation (16 bytes in libstdc++) cannot
// hold the hot-path captures of this simulator — Channel::transmit schedules
// three lambdas per receiver whose captures run up to ~60 bytes — so every
// scheduled event paid one heap allocation and one indirect free. With
// millions of events per replication that allocation dominated the engine.
//
// InlineCallback stores the callable entirely inside the object (kCapacity
// bytes of aligned storage + one ops-table pointer), is move-only, and
// *statically rejects* captures that do not fit: exceeding the budget is a
// compile error at the schedule site, never a silent heap fallback. Protocol
// code that genuinely needs a large state block (e.g. a delayed net::Packet
// relay) boxes it in a shared_ptr and captures the 16-byte handle.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace rrnet::des {

class InlineCallback {
 public:
  /// Capture budget. Sized for the largest engine-internal capture (the
  /// per-receiver delivery lambda in Channel::transmit: this + Airframe +
  /// power + id + duration = 60 bytes) with no headroom to spare — growing a
  /// hot-path capture should be a deliberate, reviewed decision.
  static constexpr std::size_t kCapacity = 64;
  static constexpr std::size_t kAlignment = alignof(std::max_align_t);

  InlineCallback() noexcept = default;
  InlineCallback(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F,
            typename Fn = std::remove_cvref_t<F>,
            typename = std::enable_if_t<!std::is_same_v<Fn, InlineCallback> &&
                                        std::is_invocable_r_v<void, Fn&>>>
  InlineCallback(F&& fn) {  // NOLINT(runtime/explicit)
    static_assert(sizeof(Fn) <= kCapacity,
                  "callback capture exceeds InlineCallback::kCapacity; "
                  "capture a shared_ptr to the large state instead");
    static_assert(alignof(Fn) <= kAlignment,
                  "callback capture over-aligned for InlineCallback storage");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "callback captures must be nothrow-move-constructible");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
    ops_ = &kOpsFor<Fn>;
  }

  InlineCallback(InlineCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.storage_, storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  InlineCallback& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  ~InlineCallback() { reset(); }

  /// Destroy the held callable (no-op when empty).
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  /// Invoke the held callable; precondition: non-empty.
  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }
  friend bool operator==(const InlineCallback& cb, std::nullptr_t) noexcept {
    return !static_cast<bool>(cb);
  }

 private:
  struct Ops {
    void (*invoke)(void* self);
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void* self) noexcept;
  };

  template <typename Fn>
  static void invoke_impl(void* self) {
    (*static_cast<Fn*>(self))();
  }
  template <typename Fn>
  static void relocate_impl(void* src, void* dst) noexcept {
    ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
    static_cast<Fn*>(src)->~Fn();
  }
  template <typename Fn>
  static void destroy_impl(void* self) noexcept {
    static_cast<Fn*>(self)->~Fn();
  }

  template <typename Fn>
  static constexpr Ops kOpsFor{&invoke_impl<Fn>, &relocate_impl<Fn>,
                               &destroy_impl<Fn>};

  alignas(kAlignment) std::byte storage_[kCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace rrnet::des
