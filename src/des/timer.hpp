// RAII one-shot timer on top of the scheduler.
//
// Protocol code owns Timer objects; destruction cancels any pending firing,
// so callbacks can never outlive the object they capture (Core Guidelines
// C.31 / F.52 discipline for capturing lambdas).
#pragma once

#include <utility>

#include "des/scheduler.hpp"

namespace rrnet::des {

class Timer {
 public:
  using Callback = Scheduler::Callback;

  /// Binds the timer to a scheduler; the scheduler must outlive the timer.
  explicit Timer(Scheduler& scheduler) noexcept : scheduler_(&scheduler) {}
  ~Timer() { cancel(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  Timer(Timer&& other) noexcept
      : scheduler_(other.scheduler_), id_(std::exchange(other.id_, {})) {}
  Timer& operator=(Timer&& other) noexcept {
    if (this != &other) {
      cancel();
      scheduler_ = other.scheduler_;
      id_ = std::exchange(other.id_, {});
    }
    return *this;
  }

  /// Arm (or re-arm) the timer to fire after `delay`. Replaces any pending
  /// firing.
  void start(Time delay, Callback cb);
  /// Cancel a pending firing; no-op if inactive. Returns true if cancelled.
  bool cancel() noexcept;
  /// True iff armed and not yet fired.
  [[nodiscard]] bool active() const noexcept;
  /// Absolute expiry time; only meaningful while active().
  [[nodiscard]] Time expiry() const noexcept { return expiry_; }
  [[nodiscard]] Scheduler& scheduler() const noexcept { return *scheduler_; }

 private:
  Scheduler* scheduler_;
  EventId id_{};
  Time expiry_ = 0.0;
};

}  // namespace rrnet::des
