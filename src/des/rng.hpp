// Deterministic random number generation.
//
// xoshiro256** core with splitmix64 seeding. Each simulation component forks
// its own independent stream from the replication's root seed, so adding a
// component never perturbs the draws seen by another (a common source of
// accidental nondeterminism in network simulators).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace rrnet::des {

/// splitmix64 step; used for seeding and for hashing stream tags.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Derive an independent stream seed from (base, index) by full splitmix64
/// mixing. Replication i of a run MUST NOT use `base + i`: runs at adjacent
/// base seeds would then share entire replication streams (seed 1 reps 4..9
/// == seed 5 reps 0..5), silently correlating sweep variants.
[[nodiscard]] std::uint64_t derive_stream_seed(std::uint64_t base,
                                               std::uint64_t index) noexcept;

/// Derive the seed of a counter-based per-link stream keyed on
/// (base, tx, rx, draw_index). Pure function of its inputs: any shard, on
/// any thread, at any point in its own event sequence, reconstructs the
/// same stream for the same key — which is what makes stochastic
/// propagation draws replayable when a transmission's receiver walk is
/// re-run on another shard (see phy::Channel).
[[nodiscard]] std::uint64_t link_stream_seed(std::uint64_t base,
                                             std::uint32_t tx,
                                             std::uint32_t rx,
                                             std::uint64_t draw_index) noexcept;

/// xoshiro256** engine (public domain algorithm by Blackman & Vigna).
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) noexcept;

  using result_type = std::uint64_t;
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept;

  /// Raw engine state, for node-migration snapshots.
  [[nodiscard]] std::array<std::uint64_t, 4> state() const noexcept {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void restore(const std::array<std::uint64_t, 4>& s) noexcept {
    for (int i = 0; i < 4; ++i) s_[i] = s[i];
  }

 private:
  std::uint64_t s_[4];
};

/// Snapshot of a full Rng (seed identity + engine position). Moving a node
/// between shards transfers these verbatim so the adopted node continues
/// the exact draw sequence the evicted one would have produced.
struct RngState {
  std::uint64_t seed = 0;
  std::array<std::uint64_t, 4> engine{};
};

/// Convenience distribution wrapper around Xoshiro256.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : engine_(seed), seed_(seed) {}

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept;
  /// Uniform double in [lo, hi). Requires hi >= lo.
  [[nodiscard]] double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] inclusive. Requires hi >= lo.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo,
                                         std::int64_t hi) noexcept;
  /// Exponential with the given mean (> 0).
  [[nodiscard]] double exponential(double mean) noexcept;
  /// Standard normal via Box-Muller (no caching: keeps forks independent).
  [[nodiscard]] double normal(double mean = 0.0, double stddev = 1.0) noexcept;
  [[nodiscard]] bool bernoulli(double p) noexcept;
  /// Rayleigh-distributed sample with the given scale sigma.
  [[nodiscard]] double rayleigh(double sigma) noexcept;

  /// Derive an independent child stream keyed by (this seed, tag, index).
  [[nodiscard]] Rng fork(std::string_view tag, std::uint64_t index = 0) const noexcept;

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] std::uint64_t next_u64() noexcept { return engine_(); }

  /// Snapshot/restore the full stream position (migration support). The
  /// seed travels with the engine state so fork() keys stay identical on
  /// the restoring side.
  [[nodiscard]] RngState state() const noexcept {
    return {seed_, engine_.state()};
  }
  void restore(const RngState& s) noexcept {
    seed_ = s.seed;
    engine_.restore(s.engine);
  }

 private:
  Xoshiro256 engine_;
  std::uint64_t seed_;
};

/// Stateless-per-draw RNG for one (tx, rx, draw_index) link event: a
/// short-lived Rng seeded by link_stream_seed. Stochastic propagation
/// models consume a handful of uniforms per received-power draw; giving
/// each (link, draw) its own stream means the value depends only on the
/// key, never on which shard or thread evaluates it or on how many draws
/// other links made before it.
class LinkRng {
 public:
  LinkRng(std::uint64_t base, std::uint32_t tx, std::uint32_t rx,
          std::uint64_t draw_index) noexcept
      : rng_(link_stream_seed(base, tx, rx, draw_index)) {}

  [[nodiscard]] Rng& rng() noexcept { return rng_; }

 private:
  Rng rng_;
};

}  // namespace rrnet::des
