// Hand-rolled 4-ary implicit min-heap.
//
// This is the priority structure behind both des::Scheduler and
// mac::TxQueue. It replaces std::priority_queue for three reasons:
//
//  * Cache behaviour: a 4-ary layout halves the tree depth, and the four
//    children of node i sit contiguously at 4i+1..4i+4 — one cache line for
//    24-byte entries — so a pop touches ~half the lines a binary heap does.
//    With scheduling already allocation-free, pop/settle was the dominant
//    cost of the event hot path (~250 ns/event, bench_results/).
//  * No comparator indirection: `Before` is a stateless (or tiny) functor
//    inlined into sift_up/sift_down; the hole-shifting loops move each
//    displaced entry once instead of swapping.
//  * Pinned semantics: std::push_heap/pop_heap order equal elements in an
//    implementation-defined way. Callers that need FIFO among equal keys
//    embed a monotonic sequence number in `Before` (Scheduler and TxQueue
//    both do), which makes dequeue order fully deterministic across
//    standard-library versions — a property the simulator's bit-identical
//    replication guarantee rests on.
//
// `Before(a, b)` returns true when `a` must be popped before `b` (a strict
// weak ordering; with an embedded sequence tie-break it is a strict total
// order). Exercised directly by the randomized model test in
// tests/quad_heap_test.cpp.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace rrnet::des {

template <typename T, typename Before>
class QuadHeap {
 public:
  QuadHeap() = default;
  explicit QuadHeap(Before before) : before_(std::move(before)) {}

  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  /// Deepest the heap has ever been — queue-pressure introspection for the
  /// scheduler and MAC queues (obs::MetricRegistry gauges).
  [[nodiscard]] std::size_t high_water() const noexcept { return high_water_; }
  void reserve(std::size_t n) { items_.reserve(n); }
  void clear() noexcept { items_.clear(); }

  /// Smallest element; precondition: !empty().
  [[nodiscard]] const T& top() const noexcept { return items_.front(); }

  void push(T item) {
    items_.push_back(std::move(item));
    if (items_.size() > high_water_) high_water_ = items_.size();
    sift_up(items_.size() - 1);
  }

  /// Remove the top element; precondition: !empty().
  void pop() {
    T last = std::move(items_.back());
    items_.pop_back();
    if (!items_.empty()) {
      sift_down(std::move(last));
    }
  }

  /// Remove and return the top element; precondition: !empty().
  T pop_top() {
    T out = std::move(items_.front());
    pop();
    return out;
  }

 private:
  static constexpr std::size_t kArity = 4;

  void sift_up(std::size_t i) {
    T item = std::move(items_[i]);
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!before_(item, items_[parent])) break;
      items_[i] = std::move(items_[parent]);
      i = parent;
    }
    items_[i] = std::move(item);
  }

  /// Sink `item` from the root, shifting smaller children up into the hole.
  void sift_down(T item) {
    const std::size_t n = items_.size();
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = kArity * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = std::min(first + kArity, n);
      for (std::size_t c = first + 1; c < last; ++c) {
        if (before_(items_[c], items_[best])) best = c;
      }
      if (!before_(items_[best], item)) break;
      items_[i] = std::move(items_[best]);
      i = best;
    }
    items_[i] = std::move(item);
  }

  std::vector<T> items_;
  std::size_t high_water_ = 0;
  [[no_unique_address]] Before before_{};
};

}  // namespace rrnet::des
