// Ladder queue: an O(1)-amortized priority queue for event scheduling.
//
// The classic heap pays O(log n) sift work per operation; with the event
// path otherwise allocation-free that sifting is the dominant cost of
// des::Scheduler at flood scale (bench: schedule_execute). The ladder
// queue (Tang, Goh & Thng, ACM TOMACS 2005) replaces most of that work
// with O(1) bucket appends, spending comparisons only on the handful of
// imminent events:
//
//   * `overflow_` ("top" rung): an unsorted vector receiving every push
//     with time >= `top_start_` — one append, no comparisons. Running
//     min/max are tracked for later bucketing.
//   * `rungs_`: a stack of bucket arrays. Each rung spans part of the
//     timeline split into kNumBuckets equal-width buckets; pushes that
//     fall below `top_start_` append to the right bucket of the
//     outermost rung that still covers their time. When a drained bucket
//     is too dense, a child rung re-buckets it at finer width (bounded
//     by kMaxRungs), which is what keeps skewed distributions O(1).
//   * `bottom_`: a small QuadHeap holding the imminent events in exact
//     (time, sequence) order. Buckets are drained into it one at a time,
//     so its depth tracks the bucket occupancy (~kSpawnThreshold), not
//     the total pending-event count.
//
// Determinism: pop order is bit-identical to a QuadHeap driven by the
// same `Before`. Bucket routing uses a single monotone index function
// (floor of an affine map, clamped), so an entry with a smaller time can
// never land in a later bucket than one with a larger time, buckets
// drain in index order, and the bottom heap applies `Before` exactly —
// including its sequence tie-break, which preserves the FIFO-among-equal-
// times discipline shared with mac::TxQueue. FP fuzz in the division can
// only shift an entry across a bucket boundary, never reorder it,
// because routing and draining use the same index function. Region
// boundaries that must be exact (`top_start_`) are compared directly,
// never re-derived arithmetically.
//
// Steady state is allocation-free like the rest of the engine: retired
// rungs park in a spare pool with their bucket capacity intact, buckets
// are cleared rather than moved from, and `overflow_` keeps its
// capacity across rebuilds. The spare pool is thread-local and shared by
// every LadderQueue of the same entry type, so short-lived schedulers
// (one per scenario replication) inherit warmed-up rung capacity instead
// of re-growing bucket vectors — the same instance-transcending reuse
// the payload pools give packets. Like those pools, a queue must not
// migrate across threads (replication workers are shared-nothing).
//
// `TimeOf(item)` returns the item's timestamp; `Before(a, b)` is the
// strict total order (time first, then a monotone sequence for ties).
#pragma once

#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

#include "des/quad_heap.hpp"
#include "des/time.hpp"
#include "util/contracts.hpp"

namespace rrnet::des {

template <typename T, typename TimeOf, typename Before>
class LadderQueue {
 public:
  LadderQueue() = default;
  LadderQueue(const LadderQueue&) = delete;
  LadderQueue& operator=(const LadderQueue&) = delete;

  ~LadderQueue() {
    // Park every rung (live or spare) in the thread-local pool so the
    // next queue on this thread starts with warmed bucket capacity.
    while (!rungs_.empty()) retire_innermost_rung();
    auto& pool = rung_pool();
    for (Rung& r : spare_rungs_) pool.push_back(std::move(r));
  }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  /// Deepest the queue has ever been (pending-event pressure gauge,
  /// mirroring QuadHeap::high_water()).
  [[nodiscard]] std::size_t high_water() const noexcept { return high_water_; }

  void reserve(std::size_t n) { overflow_.reserve(n); }

  void clear() noexcept {
    bottom_.clear();
    while (!rungs_.empty()) retire_innermost_rung();
    overflow_.clear();
    top_start_ = -std::numeric_limits<Time>::infinity();
    overflow_min_ = std::numeric_limits<Time>::infinity();
    overflow_max_ = -std::numeric_limits<Time>::infinity();
    size_ = 0;
  }

  void push(T item) {
    const Time t = time_of_(item);
    ++size_;
    if (size_ > high_water_) high_water_ = size_;
    if (t >= top_start_) {
      if (t < overflow_min_) overflow_min_ = t;
      if (t > overflow_max_) overflow_max_ = t;
      overflow_.push_back(std::move(item));
      return;
    }
    // Outermost rung first: inner rungs refine the drained region of
    // their parent, so the first rung whose undrained span covers t wins.
    for (Rung& r : rungs_) {
      const std::size_t idx = bucket_index(r, t);
      if (idx >= r.cursor) {
        r.buckets[idx].push_back(std::move(item));
        ++r.count;
        return;
      }
    }
    bottom_.push(std::move(item));
  }

  /// Earliest element; precondition: !empty().
  [[nodiscard]] const T& top() {
    const bool ok = settle();
    RRNET_ASSERT(ok);
    return bottom_.top();
  }

  /// Remove the earliest element; precondition: !empty().
  void pop() {
    const bool ok = settle();
    RRNET_ASSERT(ok);
    bottom_.pop();
    --size_;
  }

  /// Remove and return the earliest element; precondition: !empty().
  T pop_top() {
    const bool ok = settle();
    RRNET_ASSERT(ok);
    --size_;
    return bottom_.pop_top();
  }

 private:
  // 128 buckets x spawn threshold 48 bounds the bottom heap to ~48
  // entries regardless of pending-set size; kMaxRungs bounds refinement
  // depth (128^6 buckets of resolution) before falling back to the heap.
  static constexpr std::size_t kNumBuckets = 128;
  static constexpr std::size_t kSpawnThreshold = 48;
  static constexpr std::size_t kMaxRungs = 6;

  struct Rung {
    Time start = 0.0;
    Time width = 1.0;
    std::size_t cursor = 0;  ///< first undrained bucket index
    std::size_t count = 0;   ///< entries remaining across buckets
    std::vector<std::vector<T>> buckets;
  };

  /// Monotone-nondecreasing map from time to bucket index, clamped to the
  /// rung. Entries beyond the nominal span pile into the edge buckets;
  /// that keeps ordering exact (clamping is monotone) and lets a child
  /// rung absorb them on drain.
  [[nodiscard]] std::size_t bucket_index(const Rung& r, Time t) const noexcept {
    if (t <= r.start) return 0;
    const double di = (t - r.start) / r.width;
    if (di >= static_cast<double>(kNumBuckets - 1)) return kNumBuckets - 1;
    return static_cast<std::size_t>(di);
  }

  /// Thread-local spare-rung pool shared by every queue of this entry
  /// type; parked rungs keep their bucket vectors' capacity.
  static std::vector<Rung>& rung_pool() {
    static thread_local std::vector<Rung> pool;
    return pool;
  }

  Rung acquire_rung(Time start, Time width, std::size_t count) {
    Rung r;
    if (!spare_rungs_.empty()) {
      r = std::move(spare_rungs_.back());
      spare_rungs_.pop_back();
    } else if (auto& pool = rung_pool(); !pool.empty()) {
      r = std::move(pool.back());
      pool.pop_back();
    } else {
      r.buckets.resize(kNumBuckets);
    }
    r.start = start;
    r.width = width;
    r.cursor = 0;
    r.count = count;
    return r;
  }

  void retire_innermost_rung() noexcept {
    Rung& r = rungs_.back();
    for (auto& b : r.buckets) b.clear();  // keep capacity for reuse
    r.count = 0;
    spare_rungs_.push_back(std::move(r));
    rungs_.pop_back();
  }

  /// Distribute `entries` into a fresh innermost rung spanning [mn, mx].
  void spawn_rung(std::vector<T>& entries, Time mn, Time mx) {
    const Time width = (mx - mn) / static_cast<Time>(kNumBuckets);
    Rung r = acquire_rung(mn, width, entries.size());
    for (T& e : entries) {
      r.buckets[bucket_index(r, time_of_(e))].push_back(std::move(e));
    }
    entries.clear();
    rungs_.push_back(std::move(r));
  }

  /// Ensure `bottom_` holds the earliest pending entries (or report the
  /// queue empty). Feeds the heap one bucket at a time, refining dense
  /// buckets into child rungs and rebuilding from overflow last.
  bool settle() {
    while (bottom_.empty()) {
      if (!rungs_.empty()) {
        Rung& r = rungs_.back();
        if (r.count == 0) {
          retire_innermost_rung();
          continue;
        }
        while (r.buckets[r.cursor].empty()) ++r.cursor;
        std::vector<T>& bucket = r.buckets[r.cursor];
        r.count -= bucket.size();
        ++r.cursor;
        if (bucket.size() > kSpawnThreshold && rungs_.size() < kMaxRungs) {
          Time mn = std::numeric_limits<Time>::infinity();
          Time mx = -std::numeric_limits<Time>::infinity();
          for (const T& e : bucket) {
            const Time t = time_of_(e);
            if (t < mn) mn = t;
            if (t > mx) mx = t;
          }
          if (mx > mn) {  // refinable: spread left to split
            spawn_rung(bucket, mn, mx);  // invalidates r / bucket
            continue;
          }
        }
        for (T& e : bucket) bottom_.push(std::move(e));
        bucket.clear();
        continue;
      }
      if (overflow_.empty()) return false;
      // Re-bucket the overflow region. Everything pushed from here on
      // with t >= the batch max belongs after this whole batch, so that
      // max becomes the new overflow threshold (compared exactly; ties
      // pop in sequence order via the bottom heap's Before).
      top_start_ = overflow_max_;
      if (overflow_.size() > kSpawnThreshold && overflow_max_ > overflow_min_) {
        spawn_rung(overflow_, overflow_min_, overflow_max_);
      } else {
        for (T& e : overflow_) bottom_.push(std::move(e));
        overflow_.clear();
      }
      overflow_min_ = std::numeric_limits<Time>::infinity();
      overflow_max_ = -std::numeric_limits<Time>::infinity();
    }
    return true;
  }

  QuadHeap<T, Before> bottom_;
  std::vector<Rung> rungs_;        ///< outermost first, innermost last
  std::vector<Rung> spare_rungs_;  ///< retired rungs, capacity retained
  std::vector<T> overflow_;
  Time top_start_ = -std::numeric_limits<Time>::infinity();
  Time overflow_min_ = std::numeric_limits<Time>::infinity();
  Time overflow_max_ = -std::numeric_limits<Time>::infinity();
  std::size_t size_ = 0;
  std::size_t high_water_ = 0;
  [[no_unique_address]] TimeOf time_of_{};
};

}  // namespace rrnet::des
