// Uniform-grid spatial index for range queries over node positions.
//
// The channel asks "which nodes lie within distance r of p" on every
// transmission; with ~500 nodes and ~25 neighbors this must not be O(n).
// Cell size equals the query radius used most often (the interference
// range), so a query touches at most 9 cells.
//
// Layout is flat CSR: one offsets array (cells + 1 entries) into one
// contiguous ids array, built in a single counting-sort pass. Filling in
// ascending id order keeps every cell span sorted by id, so `query()`
// output stays sorted without relying on insertion history. Mobility does
// not splice the CSR per move: `update_position` only rewrites `cell_of_`
// and appends the id to a dislodged list; queries scan the (stale) base
// span filtered by the current cell plus the dislodged list, and the index
// is recompacted in O(n + cells) once the accumulated query overhead since
// the last epoch would exceed a rebuild ("scan debt"), or when the
// dislodged list hits a hard cap.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/terrain.hpp"
#include "geom/vec2.hpp"

namespace rrnet::geom {

class SpatialGrid {
 public:
  /// Index positions (id = index into `positions`) over `terrain` with the
  /// given cell size (> 0).
  SpatialGrid(const Terrain& terrain, double cell_size,
              const std::vector<Vec2>& positions);

  /// Collect ids within `radius` of `center` into `out` (cleared first).
  /// Results are sorted by id so downstream iteration is deterministic.
  void query(Vec2 center, double radius, std::vector<std::uint32_t>& out) const;

  /// Move a node (e.g. mobility extensions); keeps the index consistent.
  /// Deferred: the CSR arrays are only rebuilt at epoch boundaries.
  void update_position(std::uint32_t id, Vec2 new_position);

  /// Rebuild the CSR arrays from current cells and start a new epoch.
  /// Called automatically from `update_position` when the deferred-update
  /// overhead amortizes a rebuild; callable explicitly at window barriers.
  void compact();

  [[nodiscard]] Vec2 position(std::uint32_t id) const;
  [[nodiscard]] std::size_t size() const noexcept { return positions_.size(); }
  [[nodiscard]] double cell_size() const noexcept { return cell_size_; }
  /// Moves recorded since the last compaction epoch.
  [[nodiscard]] std::size_t pending_updates() const noexcept {
    return dislodged_.size();
  }
  /// Heap bytes held by the index arrays (capacity, not size) — lets the
  /// sharded coordinator audit shared-vs-replicated index memory.
  [[nodiscard]] std::size_t index_bytes() const noexcept;

 private:
  [[nodiscard]] std::size_t cell_index(Vec2 p) const noexcept;
  void rebuild_csr();

  double cell_size_;
  std::size_t cols_;
  std::size_t rows_;
  double width_;
  double height_;
  std::vector<Vec2> positions_;
  std::vector<std::uint32_t> offsets_;       // cells + 1; CSR row starts
  std::vector<std::uint32_t> ids_;           // n; per-cell spans sorted by id
  std::vector<std::uint32_t> cell_of_;       // current cell of each id
  std::vector<std::uint32_t> base_cell_of_;  // cell at last compaction
  std::vector<std::uint32_t> dislodged_;     // ids moved out of their base cell
  std::vector<std::uint8_t> listed_;         // id already on dislodged_
  // Amortization state: each query pays O(|dislodged_|) extra; once that
  // debt exceeds a rebuild cost we compact. Mutable because `query()` is
  // logically const; only ever written when dislodged_ is non-empty, so a
  // grid shared read-only across shards (static scenarios) never races.
  mutable std::uint64_t scan_debt_ = 0;
};

}  // namespace rrnet::geom
