// Uniform-grid spatial index for range queries over node positions.
//
// The channel asks "which nodes lie within distance r of p" on every
// transmission; with ~500 nodes and ~25 neighbors this must not be O(n).
// Cell size equals the query radius used most often (the interference
// range), so a query touches at most 9 cells.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/terrain.hpp"
#include "geom/vec2.hpp"

namespace rrnet::geom {

class SpatialGrid {
 public:
  /// Index positions (id = index into `positions`) over `terrain` with the
  /// given cell size (> 0).
  SpatialGrid(const Terrain& terrain, double cell_size,
              const std::vector<Vec2>& positions);

  /// Collect ids within `radius` of `center` into `out` (cleared first).
  /// Results are sorted by id so downstream iteration is deterministic.
  void query(Vec2 center, double radius, std::vector<std::uint32_t>& out) const;

  /// Move a node (e.g. mobility extensions); keeps the index consistent.
  void update_position(std::uint32_t id, Vec2 new_position);

  [[nodiscard]] Vec2 position(std::uint32_t id) const;
  [[nodiscard]] std::size_t size() const noexcept { return positions_.size(); }

 private:
  [[nodiscard]] std::size_t cell_index(Vec2 p) const noexcept;

  double cell_size_;
  std::size_t cols_;
  std::size_t rows_;
  double width_;
  double height_;
  std::vector<Vec2> positions_;
  std::vector<std::vector<std::uint32_t>> cells_;
};

}  // namespace rrnet::geom
