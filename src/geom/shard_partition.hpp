// Spatial shard partitioning: vertical column strips over the terrain.
//
// The sharded engine assigns each node to exactly one shard by position.
// Strips are columns along x (not a 2-D checkerboard): a column partition
// minimizes the boundary surface per shard for the paper's wide terrains,
// and makes ownership a single multiply — shard_of() must be cheap because
// the channel consults it for every receiver of every cross-shard
// transmission.
//
// Determinism contract: shard_of() is a pure function of (terrain width,
// shard count, position.x). Every shard computes the same owner map from
// the same positions vector, so no owner table ever has to be exchanged
// between workers.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/terrain.hpp"
#include "geom/vec2.hpp"
#include "util/contracts.hpp"

namespace rrnet::geom {

/// K vertical strips of equal width covering [0, terrain.width()].
class ShardPartition {
 public:
  ShardPartition(const Terrain& terrain, std::uint32_t shards)
      : shards_(shards), width_(terrain.width()) {
    RRNET_EXPECTS(shards >= 1);
    RRNET_EXPECTS(width_ > 0.0);
    strip_width_ = width_ / static_cast<double>(shards);
  }

  [[nodiscard]] std::uint32_t shards() const noexcept { return shards_; }
  [[nodiscard]] double strip_width() const noexcept { return strip_width_; }

  /// Owning shard of a position. Points at or beyond the right terrain edge
  /// (x == width, or stray FP above it) clamp into the last strip; points
  /// exactly on an interior strip boundary belong to the right-hand strip
  /// (floor semantics), so every position has exactly one owner.
  [[nodiscard]] std::uint32_t shard_of(Vec2 p) const noexcept {
    if (p.x <= 0.0) return 0;
    const auto s = static_cast<std::uint32_t>(p.x / strip_width_);
    return s >= shards_ ? shards_ - 1 : s;
  }

  /// Inclusive x-range of one strip (tests / diagnostics).
  [[nodiscard]] double strip_begin(std::uint32_t shard) const noexcept {
    return strip_width_ * static_cast<double>(shard);
  }
  [[nodiscard]] double strip_end(std::uint32_t shard) const noexcept {
    return shard + 1 == shards_ ? width_
                                : strip_width_ * static_cast<double>(shard + 1);
  }

 private:
  std::uint32_t shards_;
  double width_;
  double strip_width_;
};

/// owner[i] = owning shard of positions[i]. Every worker derives the same
/// map independently (shard_of is pure), so this is a convenience, not a
/// synchronization point.
[[nodiscard]] inline std::vector<std::uint32_t> shard_owner_map(
    const ShardPartition& partition, const std::vector<Vec2>& positions) {
  std::vector<std::uint32_t> owner;
  owner.reserve(positions.size());
  for (const Vec2& p : positions) owner.push_back(partition.shard_of(p));
  return owner;
}

}  // namespace rrnet::geom
