// 2D vectors for node positions on the simulated terrain.
#pragma once

#include <cmath>

namespace rrnet::geom {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) noexcept {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) noexcept {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr Vec2 operator*(Vec2 a, double s) noexcept {
    return {a.x * s, a.y * s};
  }
  friend constexpr Vec2 operator*(double s, Vec2 a) noexcept { return a * s; }
  friend constexpr bool operator==(const Vec2&, const Vec2&) = default;

  [[nodiscard]] constexpr double dot(Vec2 other) const noexcept {
    return x * other.x + y * other.y;
  }
  [[nodiscard]] constexpr double norm_sq() const noexcept { return dot(*this); }
  [[nodiscard]] double norm() const noexcept { return std::sqrt(norm_sq()); }
};

[[nodiscard]] inline double distance(Vec2 a, Vec2 b) noexcept {
  return (a - b).norm();
}

[[nodiscard]] constexpr double distance_sq(Vec2 a, Vec2 b) noexcept {
  return (a - b).norm_sq();
}

/// Distance from point p to the segment [a, b] (used by the Figure-2 detour
/// metric: how far a packet's relay points stray from the straight line).
[[nodiscard]] double distance_to_segment(Vec2 p, Vec2 a, Vec2 b) noexcept;

}  // namespace rrnet::geom
