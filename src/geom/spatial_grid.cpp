#include "geom/spatial_grid.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace rrnet::geom {

SpatialGrid::SpatialGrid(const Terrain& terrain, double cell_size,
                         const std::vector<Vec2>& positions)
    : cell_size_(cell_size),
      cols_(std::max<std::size_t>(
          1, static_cast<std::size_t>(std::ceil(terrain.width() / cell_size)))),
      rows_(std::max<std::size_t>(
          1, static_cast<std::size_t>(std::ceil(terrain.height() / cell_size)))),
      width_(terrain.width()),
      height_(terrain.height()),
      positions_(positions) {
  RRNET_EXPECTS(cell_size > 0.0);
  cell_of_.resize(positions_.size());
  for (std::uint32_t id = 0; id < positions_.size(); ++id) {
    RRNET_EXPECTS(terrain.contains(positions_[id]));
    cell_of_[id] = static_cast<std::uint32_t>(cell_index(positions_[id]));
  }
  listed_.assign(positions_.size(), 0);
  rebuild_csr();
}

std::size_t SpatialGrid::cell_index(Vec2 p) const noexcept {
  auto col = static_cast<std::size_t>(std::clamp(p.x, 0.0, width_) / cell_size_);
  auto row = static_cast<std::size_t>(std::clamp(p.y, 0.0, height_) / cell_size_);
  col = std::min(col, cols_ - 1);
  row = std::min(row, rows_ - 1);
  return row * cols_ + col;
}

void SpatialGrid::rebuild_csr() {
  // Counting sort over current cells; filling in ascending id order keeps
  // every cell span sorted by id.
  const std::size_t cells = cols_ * rows_;
  offsets_.assign(cells + 1, 0);
  ids_.resize(positions_.size());
  for (const std::uint32_t c : cell_of_) ++offsets_[c + 1];
  for (std::size_t c = 1; c <= cells; ++c) offsets_[c] += offsets_[c - 1];
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::uint32_t id = 0; id < positions_.size(); ++id) {
    ids_[cursor[cell_of_[id]]++] = id;
  }
  base_cell_of_ = cell_of_;
}

void SpatialGrid::compact() {
  if (dislodged_.empty()) return;
  rebuild_csr();
  for (const std::uint32_t id : dislodged_) listed_[id] = 0;
  dislodged_.clear();
  scan_debt_ = 0;
}

void SpatialGrid::query(Vec2 center, double radius,
                        std::vector<std::uint32_t>& out) const {
  out.clear();
  const double r_sq = radius * radius;
  const auto col_lo = static_cast<std::int64_t>(
      std::floor((center.x - radius) / cell_size_));
  const auto col_hi = static_cast<std::int64_t>(
      std::floor((center.x + radius) / cell_size_));
  const auto row_lo = static_cast<std::int64_t>(
      std::floor((center.y - radius) / cell_size_));
  const auto row_hi = static_cast<std::int64_t>(
      std::floor((center.y + radius) / cell_size_));
  const std::int64_t row_min = std::max<std::int64_t>(0, row_lo);
  const std::int64_t row_max =
      std::min<std::int64_t>(static_cast<std::int64_t>(rows_) - 1, row_hi);
  const std::int64_t col_min = std::max<std::int64_t>(0, col_lo);
  const std::int64_t col_max =
      std::min<std::int64_t>(static_cast<std::int64_t>(cols_) - 1, col_hi);
  const bool clean = dislodged_.empty();
  for (std::int64_t row = row_min; row <= row_max; ++row) {
    const std::size_t base = static_cast<std::size_t>(row) * cols_;
    for (std::int64_t col = col_min; col <= col_max; ++col) {
      const std::size_t c = base + static_cast<std::size_t>(col);
      const std::uint32_t* it = ids_.data() + offsets_[c];
      const std::uint32_t* end = ids_.data() + offsets_[c + 1];
      if (clean) {
        for (; it != end; ++it) {
          if (distance_sq(positions_[*it], center) <= r_sq) out.push_back(*it);
        }
      } else {
        // Base spans are stale: an id counts only if it still lives here.
        for (; it != end; ++it) {
          if (cell_of_[*it] == c &&
              distance_sq(positions_[*it], center) <= r_sq) {
            out.push_back(*it);
          }
        }
      }
    }
  }
  if (!clean) {
    // Dislodged ids are missing from (or stale in) their base span; any
    // point within `radius` lies inside the clamped cell rect, so the
    // distance test alone decides membership.
    for (const std::uint32_t id : dislodged_) {
      if (cell_of_[id] != base_cell_of_[id] &&
          distance_sq(positions_[id], center) <= r_sq) {
        out.push_back(id);
      }
    }
    scan_debt_ += dislodged_.size();
  }
  std::sort(out.begin(), out.end());
}

void SpatialGrid::update_position(std::uint32_t id, Vec2 new_position) {
  RRNET_EXPECTS(id < positions_.size());
  positions_[id] = new_position;
  const auto new_cell = static_cast<std::uint32_t>(cell_index(new_position));
  if (new_cell == cell_of_[id]) return;
  cell_of_[id] = new_cell;
  if (!listed_[id] && new_cell != base_cell_of_[id]) {
    listed_[id] = 1;
    dislodged_.push_back(id);
  }
  // Epoch rule: rebuild once queries have paid (in extra dislodged-list
  // scans) roughly what a rebuild costs, or when the list itself would
  // make single queries O(n/8). Both triggers are pure counters, so shard
  // replicas replaying the same moves stay deterministic in results even
  // if their query mixes (and hence epoch boundaries) differ.
  const std::uint64_t rebuild_cost = positions_.size() + cols_ * rows_;
  if (scan_debt_ >= rebuild_cost ||
      dislodged_.size() >= std::max<std::size_t>(64, positions_.size() / 8)) {
    compact();
  }
}

Vec2 SpatialGrid::position(std::uint32_t id) const {
  RRNET_EXPECTS(id < positions_.size());
  return positions_[id];
}

std::size_t SpatialGrid::index_bytes() const noexcept {
  return offsets_.capacity() * sizeof(std::uint32_t) +
         ids_.capacity() * sizeof(std::uint32_t) +
         cell_of_.capacity() * sizeof(std::uint32_t) +
         base_cell_of_.capacity() * sizeof(std::uint32_t) +
         dislodged_.capacity() * sizeof(std::uint32_t) +
         listed_.capacity() * sizeof(std::uint8_t) +
         positions_.capacity() * sizeof(Vec2);
}

}  // namespace rrnet::geom
