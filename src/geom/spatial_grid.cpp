#include "geom/spatial_grid.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace rrnet::geom {

SpatialGrid::SpatialGrid(const Terrain& terrain, double cell_size,
                         const std::vector<Vec2>& positions)
    : cell_size_(cell_size),
      cols_(std::max<std::size_t>(
          1, static_cast<std::size_t>(std::ceil(terrain.width() / cell_size)))),
      rows_(std::max<std::size_t>(
          1, static_cast<std::size_t>(std::ceil(terrain.height() / cell_size)))),
      width_(terrain.width()),
      height_(terrain.height()),
      positions_(positions),
      cells_(cols_ * rows_) {
  RRNET_EXPECTS(cell_size > 0.0);
  for (std::uint32_t id = 0; id < positions_.size(); ++id) {
    RRNET_EXPECTS(terrain.contains(positions_[id]));
    cells_[cell_index(positions_[id])].push_back(id);
  }
}

std::size_t SpatialGrid::cell_index(Vec2 p) const noexcept {
  auto col = static_cast<std::size_t>(std::clamp(p.x, 0.0, width_) / cell_size_);
  auto row = static_cast<std::size_t>(std::clamp(p.y, 0.0, height_) / cell_size_);
  col = std::min(col, cols_ - 1);
  row = std::min(row, rows_ - 1);
  return row * cols_ + col;
}

void SpatialGrid::query(Vec2 center, double radius,
                        std::vector<std::uint32_t>& out) const {
  out.clear();
  const double r_sq = radius * radius;
  const auto col_lo = static_cast<std::int64_t>(
      std::floor((center.x - radius) / cell_size_));
  const auto col_hi = static_cast<std::int64_t>(
      std::floor((center.x + radius) / cell_size_));
  const auto row_lo = static_cast<std::int64_t>(
      std::floor((center.y - radius) / cell_size_));
  const auto row_hi = static_cast<std::int64_t>(
      std::floor((center.y + radius) / cell_size_));
  for (std::int64_t row = std::max<std::int64_t>(0, row_lo);
       row <= std::min<std::int64_t>(static_cast<std::int64_t>(rows_) - 1, row_hi);
       ++row) {
    for (std::int64_t col = std::max<std::int64_t>(0, col_lo);
         col <= std::min<std::int64_t>(static_cast<std::int64_t>(cols_) - 1, col_hi);
         ++col) {
      for (std::uint32_t id :
           cells_[static_cast<std::size_t>(row) * cols_ +
                  static_cast<std::size_t>(col)]) {
        if (distance_sq(positions_[id], center) <= r_sq) out.push_back(id);
      }
    }
  }
  std::sort(out.begin(), out.end());
}

void SpatialGrid::update_position(std::uint32_t id, Vec2 new_position) {
  RRNET_EXPECTS(id < positions_.size());
  const std::size_t old_cell = cell_index(positions_[id]);
  const std::size_t new_cell = cell_index(new_position);
  positions_[id] = new_position;
  if (old_cell == new_cell) return;
  auto& bucket = cells_[old_cell];
  bucket.erase(std::remove(bucket.begin(), bucket.end(), id), bucket.end());
  cells_[new_cell].push_back(id);
}

Vec2 SpatialGrid::position(std::uint32_t id) const {
  RRNET_EXPECTS(id < positions_.size());
  return positions_[id];
}

}  // namespace rrnet::geom
