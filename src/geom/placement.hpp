// Node placement strategies over a terrain.
#pragma once

#include <cstddef>
#include <vector>

#include "des/rng.hpp"
#include "geom/terrain.hpp"

namespace rrnet::geom {

/// n points i.i.d. uniform over the terrain (the paper's layout).
[[nodiscard]] std::vector<Vec2> place_uniform(const Terrain& terrain,
                                              std::size_t n, des::Rng& rng);

/// Regular grid, row-major, padded half a cell from the edges. If n is not a
/// perfect rectangle count, the last row is partially filled.
[[nodiscard]] std::vector<Vec2> place_grid(const Terrain& terrain,
                                           std::size_t n);

/// Uniform placement with a minimum pairwise separation (dart throwing).
/// Falls back to plain uniform placement for points that cannot be separated
/// after `max_attempts` tries, so it always returns exactly n points.
[[nodiscard]] std::vector<Vec2> place_min_separation(const Terrain& terrain,
                                                     std::size_t n,
                                                     double min_separation,
                                                     des::Rng& rng,
                                                     std::size_t max_attempts = 64);

}  // namespace rrnet::geom
