#include "geom/terrain.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace rrnet::geom {

double distance_to_segment(Vec2 p, Vec2 a, Vec2 b) noexcept {
  const Vec2 ab = b - a;
  const double len_sq = ab.norm_sq();
  if (len_sq == 0.0) return distance(p, a);
  const double t = std::clamp((p - a).dot(ab) / len_sq, 0.0, 1.0);
  return distance(p, a + ab * t);
}

Terrain::Terrain(double width, double height) : width_(width), height_(height) {
  RRNET_EXPECTS(width > 0.0);
  RRNET_EXPECTS(height > 0.0);
}

bool Terrain::contains(Vec2 p) const noexcept {
  return p.x >= 0.0 && p.x <= width_ && p.y >= 0.0 && p.y <= height_;
}

Vec2 Terrain::clamp(Vec2 p) const noexcept {
  return {std::clamp(p.x, 0.0, width_), std::clamp(p.y, 0.0, height_)};
}

double Terrain::diameter() const noexcept {
  return std::sqrt(width_ * width_ + height_ * height_);
}

}  // namespace rrnet::geom
