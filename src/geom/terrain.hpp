// Rectangular terrain the nodes live on.
#pragma once

#include "geom/vec2.hpp"

namespace rrnet::geom {

class Terrain {
 public:
  /// Axis-aligned rectangle [0, width] x [0, height]; both must be positive.
  Terrain(double width, double height);

  [[nodiscard]] double width() const noexcept { return width_; }
  [[nodiscard]] double height() const noexcept { return height_; }
  [[nodiscard]] double area() const noexcept { return width_ * height_; }
  [[nodiscard]] Vec2 center() const noexcept {
    return {width_ / 2.0, height_ / 2.0};
  }
  [[nodiscard]] bool contains(Vec2 p) const noexcept;
  /// Clamp a point into the terrain.
  [[nodiscard]] Vec2 clamp(Vec2 p) const noexcept;
  /// Longest possible distance between two points (the diagonal).
  [[nodiscard]] double diameter() const noexcept;

 private:
  double width_;
  double height_;
};

}  // namespace rrnet::geom
