#include "geom/placement.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace rrnet::geom {

std::vector<Vec2> place_uniform(const Terrain& terrain, std::size_t n,
                                des::Rng& rng) {
  std::vector<Vec2> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back(
        {rng.uniform(0.0, terrain.width()), rng.uniform(0.0, terrain.height())});
  }
  return points;
}

std::vector<Vec2> place_grid(const Terrain& terrain, std::size_t n) {
  RRNET_EXPECTS(n > 0);
  const auto cols = static_cast<std::size_t>(std::ceil(std::sqrt(
      static_cast<double>(n) * terrain.width() / terrain.height())));
  const std::size_t rows = (n + cols - 1) / cols;
  const double dx = terrain.width() / static_cast<double>(cols);
  const double dy = terrain.height() / static_cast<double>(rows);
  std::vector<Vec2> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t r = i / cols;
    const std::size_t c = i % cols;
    points.push_back({(static_cast<double>(c) + 0.5) * dx,
                      (static_cast<double>(r) + 0.5) * dy});
  }
  return points;
}

std::vector<Vec2> place_min_separation(const Terrain& terrain, std::size_t n,
                                       double min_separation, des::Rng& rng,
                                       std::size_t max_attempts) {
  RRNET_EXPECTS(min_separation >= 0.0);
  const double min_sq = min_separation * min_separation;
  std::vector<Vec2> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Vec2 candidate{};
    bool placed = false;
    for (std::size_t attempt = 0; attempt < max_attempts && !placed; ++attempt) {
      candidate = {rng.uniform(0.0, terrain.width()),
                   rng.uniform(0.0, terrain.height())};
      placed = true;
      for (const Vec2& p : points) {
        if (distance_sq(candidate, p) < min_sq) {
          placed = false;
          break;
        }
      }
    }
    points.push_back(candidate);  // last candidate even if crowded
  }
  return points;
}

}  // namespace rrnet::geom
