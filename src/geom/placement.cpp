#include "geom/placement.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "util/contracts.hpp"

namespace rrnet::geom {

std::vector<Vec2> place_uniform(const Terrain& terrain, std::size_t n,
                                des::Rng& rng) {
  std::vector<Vec2> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back(
        {rng.uniform(0.0, terrain.width()), rng.uniform(0.0, terrain.height())});
  }
  return points;
}

std::vector<Vec2> place_grid(const Terrain& terrain, std::size_t n) {
  RRNET_EXPECTS(n > 0);
  const auto cols = static_cast<std::size_t>(std::ceil(std::sqrt(
      static_cast<double>(n) * terrain.width() / terrain.height())));
  const std::size_t rows = (n + cols - 1) / cols;
  const double dx = terrain.width() / static_cast<double>(cols);
  const double dy = terrain.height() / static_cast<double>(rows);
  std::vector<Vec2> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t r = i / cols;
    const std::size_t c = i % cols;
    points.push_back({(static_cast<double>(c) + 0.5) * dx,
                      (static_cast<double>(r) + 0.5) * dy});
  }
  return points;
}

std::vector<Vec2> place_min_separation(const Terrain& terrain, std::size_t n,
                                       double min_separation, des::Rng& rng,
                                       std::size_t max_attempts) {
  RRNET_EXPECTS(min_separation >= 0.0);
  const double min_sq = min_separation * min_separation;
  std::vector<Vec2> points;
  points.reserve(n);
  // Bucket accepted points into a grid with cell width >= min_separation so
  // a candidate only needs its 3x3 neighborhood checked. The accept/reject
  // predicate ("any prior point closer than min_separation") is unchanged,
  // so RNG consumption — and therefore the returned points — are bitwise
  // identical to the quadratic scan this replaces.
  const std::size_t axis_cap = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n)))));
  const auto axis_cells = [&](double extent) {
    std::size_t cells = axis_cap;
    if (min_separation > 0.0) {
      const double fit = std::floor(extent / min_separation);
      if (fit < static_cast<double>(cells)) {
        cells = std::max<std::size_t>(1, static_cast<std::size_t>(fit));
      }
    }
    return cells;
  };
  const std::size_t cols = axis_cells(terrain.width());
  const std::size_t rows = axis_cells(terrain.height());
  const double inv_cell_w = static_cast<double>(cols) / terrain.width();
  const double inv_cell_h = static_cast<double>(rows) / terrain.height();
  const auto col_of = [&](double x) {
    return std::min(cols - 1, static_cast<std::size_t>(
                                  std::max(0.0, x) * inv_cell_w));
  };
  const auto row_of = [&](double y) {
    return std::min(rows - 1, static_cast<std::size_t>(
                                  std::max(0.0, y) * inv_cell_h));
  };
  std::vector<std::int32_t> head(cols * rows, -1);
  std::vector<std::int32_t> next(n, -1);
  const auto too_close = [&](Vec2 candidate) {
    const std::size_t col = col_of(candidate.x);
    const std::size_t row = row_of(candidate.y);
    const std::size_t col_lo = col > 0 ? col - 1 : 0;
    const std::size_t col_hi = std::min(cols - 1, col + 1);
    const std::size_t row_lo = row > 0 ? row - 1 : 0;
    const std::size_t row_hi = std::min(rows - 1, row + 1);
    for (std::size_t r = row_lo; r <= row_hi; ++r) {
      for (std::size_t c = col_lo; c <= col_hi; ++c) {
        for (std::int32_t j = head[r * cols + c]; j >= 0; j = next[j]) {
          if (distance_sq(candidate, points[static_cast<std::size_t>(j)]) <
              min_sq) {
            return true;
          }
        }
      }
    }
    return false;
  };
  for (std::size_t i = 0; i < n; ++i) {
    Vec2 candidate{};
    bool placed = false;
    for (std::size_t attempt = 0; attempt < max_attempts && !placed; ++attempt) {
      candidate = {rng.uniform(0.0, terrain.width()),
                   rng.uniform(0.0, terrain.height())};
      placed = !too_close(candidate);
    }
    points.push_back(candidate);  // last candidate even if crowded
    const std::size_t cell = row_of(candidate.y) * cols + col_of(candidate.x);
    next[i] = head[cell];
    head[cell] = static_cast<std::int32_t>(i);
  }
  return points;
}

}  // namespace rrnet::geom
