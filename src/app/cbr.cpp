#include "app/cbr.hpp"

#include "util/contracts.hpp"

namespace rrnet::app {

CbrSource::CbrSource(net::Node& node, std::uint32_t target, CbrConfig config,
                     FlowStats& stats)
    : node_(&node),
      target_(target),
      config_(config),
      stats_(&stats),
      timer_(node.scheduler()),
      rng_(node.rng().fork("cbr", target)) {
  RRNET_EXPECTS(config.interval > 0.0);
  RRNET_EXPECTS(target != node.id());
}

void CbrSource::start() {
  // Desynchronize sources: the first packet departs a random fraction of
  // one interval after start_time.
  const des::Time first =
      config_.start_time + rng_.uniform(0.0, config_.interval);
  timer_.start(first, [this]() { send_one(); });
}

void CbrSource::send_one() {
  const des::Time now = node_->scheduler().now();
  if (config_.stop_time > 0.0 && now >= config_.stop_time) return;
  const std::uint64_t uid =
      node_->protocol().send_data(target_, config_.payload_bytes);
  ++sent_;
  stats_->record_sent(uid, now);
  timer_.start(config_.interval, [this]() { send_one(); });
}

void attach_sink(net::Node& node, FlowStats& stats) {
  net::Node* node_ptr = &node;
  node.set_delivery_handler([node_ptr, &stats](const net::PacketRef& packet) {
    stats.record_delivered(packet, node_ptr->scheduler().now());
  });
}

}  // namespace rrnet::app
