// Constant-bit-rate traffic source (the paper's traffic model).
#pragma once

#include <cstdint>

#include "app/flow_stats.hpp"
#include "des/rng.hpp"
#include "des/timer.hpp"
#include "net/node.hpp"

namespace rrnet::app {

struct CbrConfig {
  des::Time interval = 1.0;         ///< packet generation interval
  std::uint32_t payload_bytes = 512;
  des::Time start_time = 1.0;       ///< first packet at start + U(0, interval)
  des::Time stop_time = 0.0;        ///< no packets at/after this time
};

/// Periodically calls protocol().send_data() on its node and reports each
/// departure to the shared FlowStats.
class CbrSource {
 public:
  CbrSource(net::Node& node, std::uint32_t target, CbrConfig config,
            FlowStats& stats);

  /// Schedule the first packet; call once before the simulation runs.
  void start();

  [[nodiscard]] std::uint32_t target() const noexcept { return target_; }
  [[nodiscard]] std::uint64_t packets_sent() const noexcept { return sent_; }

 private:
  void send_one();

  net::Node* node_;
  std::uint32_t target_;
  CbrConfig config_;
  FlowStats* stats_;
  des::Timer timer_;
  des::Rng rng_;
  std::uint64_t sent_ = 0;
};

/// Install a delivery handler on `node` that feeds `stats`. All sinks in a
/// scenario share one FlowStats.
void attach_sink(net::Node& node, FlowStats& stats);

}  // namespace rrnet::app
