#include "app/flow_stats.hpp"

namespace rrnet::app {

void FlowStats::record_sent(std::uint64_t uid, des::Time /*now*/) {
  ++sent_;
  outstanding_.observe(uid);
}

void FlowStats::record_delivered(const net::PacketRef& packet, des::Time now) {
  if (!seen_uids_.observe(packet.uid())) return;  // duplicate delivery
  // Only count deliveries of packets we saw depart; protocols may also
  // deliver control traffic through the same handler in exotic setups.
  if (!outstanding_.erase(packet.uid())) return;
  ++delivered_;
  delay_.add(now - packet.created_at());
  hops_.add(static_cast<double>(packet.actual_hops()));
  if (series_.has_value()) series_->add(now, now - packet.created_at());
}

double FlowStats::delivery_ratio() const noexcept {
  if (sent_ == 0) return 0.0;
  return static_cast<double>(delivered_) / static_cast<double>(sent_);
}

}  // namespace rrnet::app
