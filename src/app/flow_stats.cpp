#include "app/flow_stats.hpp"

namespace rrnet::app {

void FlowStats::record_sent(std::uint64_t uid, des::Time now) {
  if (log_.has_value()) log_->push_back({now, uid, 0.0, 0, false});
  ++sent_;
  outstanding_.observe(uid);
}

void FlowStats::record_delivered(const net::PacketRef& packet, des::Time now) {
  record_delivered(packet.uid(), packet.created_at(), packet.actual_hops(),
                   now);
}

void FlowStats::record_delivered(std::uint64_t uid, des::Time created_at,
                                 std::uint32_t actual_hops, des::Time now) {
  if (log_.has_value()) log_->push_back({now, uid, created_at, actual_hops, true});
  if (!seen_uids_.observe(uid)) return;  // duplicate delivery
  // Only count deliveries of packets we saw depart; protocols may also
  // deliver control traffic through the same handler in exotic setups.
  if (!outstanding_.erase(uid)) return;
  ++delivered_;
  delay_.add(now - created_at);
  hops_.add(static_cast<double>(actual_hops));
  if (series_.has_value()) series_->add(now, now - created_at);
}

double FlowStats::delivery_ratio() const noexcept {
  if (sent_ == 0) return 0.0;
  return static_cast<double>(delivered_) / static_cast<double>(sent_);
}

}  // namespace rrnet::app
