// End-to-end flow bookkeeping: the paper's three headline metrics.
//
//  * delivery ratio — packets received by all destinations / packets sent
//    by all sources;
//  * end-to-end delay — departure from source to arrival at destination;
//  * hop count — nodes traversed until the packet reached its destination.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>
#include "util/pooled_containers.hpp"

#include "des/time.hpp"
#include "net/packet_buffer.hpp"
#include "util/stats.hpp"
#include "util/timeseries.hpp"

namespace rrnet::app {

class FlowStats {
 public:
  /// A source handed one packet to its protocol.
  void record_sent(std::uint64_t uid, des::Time now);
  /// A destination's application received a packet (call from the node's
  /// delivery handler). Duplicate uids are counted once.
  void record_delivered(const net::PacketRef& packet, des::Time now);

  [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  [[nodiscard]] double delivery_ratio() const noexcept;
  [[nodiscard]] const util::Accumulator& delay() const noexcept {
    return delay_;
  }
  [[nodiscard]] const util::Accumulator& hops() const noexcept {
    return hops_;
  }

  /// Start recording a per-bucket delivery time series (count = deliveries
  /// per bucket, value = end-to-end delay). Call before the run.
  void enable_timeseries(double bucket_width_s, double start_s = 0.0) {
    series_.emplace(bucket_width_s, start_s);
  }
  /// Null unless enable_timeseries() was called.
  [[nodiscard]] const util::TimeSeries* timeseries() const noexcept {
    return series_.has_value() ? &*series_ : nullptr;
  }

 private:
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  util::PooledUnorderedSet<std::uint64_t> outstanding_;
  util::PooledUnorderedSet<std::uint64_t> seen_uids_;
  util::Accumulator delay_;
  util::Accumulator hops_;
  std::optional<util::TimeSeries> series_;
};

}  // namespace rrnet::app
