// End-to-end flow bookkeeping: the paper's three headline metrics.
//
//  * delivery ratio — packets received by all destinations / packets sent
//    by all sources;
//  * end-to-end delay — departure from source to arrival at destination;
//  * hop count — nodes traversed until the packet reached its destination.
//
// Memory is bounded: the uid bookkeeping (in-flight uids awaiting delivery,
// and delivered uids used to suppress duplicate deliveries) lives in two
// least-recently-observed DuplicateCache windows of `uid_window` entries
// each, not in unbounded sets. Under sustained loss a long run previously
// grew `outstanding_` by one entry per lost packet forever; now the oldest
// undelivered uids age out of the window and only the counters keep
// growing. The headline ratios are computed from the `sent_`/`delivered_`
// counters, so eviction never changes a reported metric — a delivery whose
// uid was already evicted (ultra-late, beyond `uid_window` more-recent
// sends) is simply not counted, which is the same judgement call the old
// code made for unknown uids.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "des/time.hpp"
#include "net/duplicate_cache.hpp"
#include "net/packet_buffer.hpp"
#include "util/stats.hpp"
#include "util/timeseries.hpp"

namespace rrnet::app {

class FlowStats {
 public:
  /// `uid_window`: max uids tracked at once in each direction (in-flight
  /// and delivered); the memory bound for arbitrarily long runs.
  explicit FlowStats(std::size_t uid_window = 1u << 16)
      : outstanding_(uid_window), seen_uids_(uid_window) {}

  /// One raw flow event, exactly as it entered record_sent /
  /// record_delivered (before any dedup). A sharded run logs these per
  /// shard and replays the time-merged stream into a fresh FlowStats, which
  /// reproduces the serial run's bookkeeping bit-for-bit (dedup, eviction,
  /// and FP accumulation all happen in replay order).
  struct FlowEvent {
    des::Time time = 0.0;
    std::uint64_t uid = 0;
    des::Time created_at = 0.0;   ///< delivered events only
    std::uint32_t actual_hops = 0;  ///< delivered events only
    bool delivered = false;
  };

  /// A source handed one packet to its protocol.
  void record_sent(std::uint64_t uid, des::Time now);
  /// A destination's application received a packet (call from the node's
  /// delivery handler). Duplicate uids are counted once.
  void record_delivered(const net::PacketRef& packet, des::Time now);
  /// Same bookkeeping from raw fields (replay path — no packet needed).
  void record_delivered(std::uint64_t uid, des::Time created_at,
                        std::uint32_t actual_hops, des::Time now);

  /// Start appending every record_* call to an in-order event log (call
  /// before the run). The log grows unbounded — meant for shard-local
  /// stats that are merged and discarded at end of run.
  void enable_event_log() { log_.emplace(); }
  /// Null unless enable_event_log() was called.
  [[nodiscard]] const std::vector<FlowEvent>* event_log() const noexcept {
    return log_.has_value() ? &*log_ : nullptr;
  }
  /// Move the log out (end-of-run harvest); empty when logging is off.
  [[nodiscard]] std::vector<FlowEvent> take_event_log() noexcept {
    return log_.has_value() ? std::move(*log_) : std::vector<FlowEvent>{};
  }
  /// Apply one logged event as if it had just happened.
  void replay(const FlowEvent& event) {
    if (event.delivered) {
      record_delivered(event.uid, event.created_at, event.actual_hops,
                       event.time);
    } else {
      record_sent(event.uid, event.time);
    }
  }

  [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  [[nodiscard]] double delivery_ratio() const noexcept;
  [[nodiscard]] const util::Accumulator& delay() const noexcept {
    return delay_;
  }
  [[nodiscard]] const util::Accumulator& hops() const noexcept {
    return hops_;
  }

  /// Start recording a per-bucket delivery time series (count = deliveries
  /// per bucket, value = end-to-end delay). Call before the run.
  void enable_timeseries(double bucket_width_s, double start_s = 0.0) {
    series_.emplace(bucket_width_s, start_s);
  }
  /// Null unless enable_timeseries() was called.
  [[nodiscard]] const util::TimeSeries* timeseries() const noexcept {
    return series_.has_value() ? &*series_ : nullptr;
  }

  /// Bookkeeping introspection (the memory-bound regression test).
  [[nodiscard]] std::size_t uid_window() const noexcept {
    return outstanding_.capacity();
  }
  [[nodiscard]] std::size_t outstanding_size() const noexcept {
    return outstanding_.size();
  }
  [[nodiscard]] std::size_t seen_size() const noexcept {
    return seen_uids_.size();
  }
  /// In-flight uids that aged out of the window undelivered (lost, or
  /// slower than `uid_window` subsequent sends).
  [[nodiscard]] std::uint64_t outstanding_evictions() const noexcept {
    return outstanding_.stats().evictions;
  }

 private:
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  net::DuplicateCache outstanding_;  ///< sent, not yet delivered (windowed)
  net::DuplicateCache seen_uids_;    ///< delivered (duplicate suppression)
  util::Accumulator delay_;
  util::Accumulator hops_;
  std::optional<util::TimeSeries> series_;
  std::optional<std::vector<FlowEvent>> log_;
};

}  // namespace rrnet::app
