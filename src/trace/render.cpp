#include "trace/render.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "util/contracts.hpp"

namespace rrnet::trace {

GridCanvas::GridCanvas(const geom::Terrain& terrain, std::size_t cols,
                       std::size_t rows)
    : width_(terrain.width()),
      height_(terrain.height()),
      cols_(cols),
      rows_(rows),
      cells_(cols * rows, 0.0),
      markers_(cols * rows, '\0') {
  RRNET_EXPECTS(cols > 0 && rows > 0);
}

std::size_t GridCanvas::index(geom::Vec2 p) const {
  const double fx = std::clamp(p.x / width_, 0.0, 1.0);
  const double fy = std::clamp(p.y / height_, 0.0, 1.0);
  const std::size_t col =
      std::min(cols_ - 1, static_cast<std::size_t>(fx * static_cast<double>(cols_)));
  const std::size_t row =
      std::min(rows_ - 1, static_cast<std::size_t>(fy * static_cast<double>(rows_)));
  return row * cols_ + col;
}

void GridCanvas::add_point(geom::Vec2 p, double weight) {
  cells_[index(p)] += weight;
}

void GridCanvas::add_segment(geom::Vec2 a, geom::Vec2 b, double weight) {
  const double length = geom::distance(a, b);
  const double step = std::min(width_ / static_cast<double>(cols_),
                               height_ / static_cast<double>(rows_)) /
                      2.0;
  const int samples = std::max(1, static_cast<int>(std::ceil(length / step)));
  std::size_t last = static_cast<std::size_t>(-1);
  for (int i = 0; i <= samples; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(samples);
    const std::size_t idx = index(a + (b - a) * t);
    if (idx != last) {
      cells_[idx] += weight;
      last = idx;
    }
  }
}

void GridCanvas::add_path(const PacketPath& path, double weight) {
  for (std::size_t i = 1; i < path.hops.size(); ++i) {
    add_segment(path.hops[i - 1].position, path.hops[i].position, weight);
  }
}

void GridCanvas::add_marker(geom::Vec2 p, char marker) {
  markers_[index(p)] = marker;
}

double GridCanvas::cell(std::size_t col, std::size_t row) const {
  RRNET_EXPECTS(col < cols_ && row < rows_);
  return cells_[row * cols_ + col];
}

std::string GridCanvas::to_ascii() const {
  static constexpr char kShades[] = {' ', '.', ':', '-', '=', '+', '*', '#'};
  constexpr int kLevels = static_cast<int>(sizeof(kShades)) - 1;
  const double peak = *std::max_element(cells_.begin(), cells_.end());
  std::string out;
  out.reserve((cols_ + 1) * rows_);
  for (std::size_t row = 0; row < rows_; ++row) {
    for (std::size_t col = 0; col < cols_; ++col) {
      const std::size_t idx = row * cols_ + col;
      if (markers_[idx] != '\0') {
        out += markers_[idx];
        continue;
      }
      if (peak <= 0.0) {
        out += ' ';
        continue;
      }
      const double f = cells_[idx] / peak;
      const int level = std::min(
          kLevels, static_cast<int>(std::ceil(f * kLevels)));
      out += kShades[level];
    }
    out += '\n';
  }
  return out;
}

bool GridCanvas::save_pgm(const std::string& path) const {
  std::ofstream ofs(path, std::ios::binary);
  if (!ofs) return false;
  ofs << "P5\n" << cols_ << ' ' << rows_ << "\n255\n";
  const double peak = *std::max_element(cells_.begin(), cells_.end());
  for (std::size_t row = 0; row < rows_; ++row) {
    for (std::size_t col = 0; col < cols_; ++col) {
      const double f = peak > 0.0 ? cells_[row * cols_ + col] / peak : 0.0;
      // Dark = heavily used, on a white background, like the paper's figure.
      const auto value = static_cast<unsigned char>(255.0 * (1.0 - f));
      ofs.put(static_cast<char>(value));
    }
  }
  return static_cast<bool>(ofs);
}

}  // namespace rrnet::trace
