// Rendering packet paths as ASCII heat maps and PGM images (Figure 2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geom/terrain.hpp"
#include "trace/path_trace.hpp"

namespace rrnet::trace {

/// Accumulates point/segment weight over a terrain discretized into cells.
class GridCanvas {
 public:
  GridCanvas(const geom::Terrain& terrain, std::size_t cols, std::size_t rows);

  void add_point(geom::Vec2 p, double weight = 1.0);
  /// Rasterize the segment [a, b] with the given per-sample weight.
  void add_segment(geom::Vec2 a, geom::Vec2 b, double weight = 1.0);
  /// Add every consecutive hop-to-hop segment of a path.
  void add_path(const PacketPath& path, double weight = 1.0);
  /// Stamp a single-character marker (e.g. 'A') at a position; markers
  /// override heat shading in the ASCII rendering.
  void add_marker(geom::Vec2 p, char marker);

  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] double cell(std::size_t col, std::size_t row) const;

  /// Shaded ASCII art (' ' quietest through '#' busiest), row 0 at top.
  [[nodiscard]] std::string to_ascii() const;
  /// Binary 8-bit PGM; returns false on I/O failure.
  bool save_pgm(const std::string& path) const;

 private:
  [[nodiscard]] std::size_t index(geom::Vec2 p) const;

  double width_;
  double height_;
  std::size_t cols_;
  std::size_t rows_;
  std::vector<double> cells_;
  std::vector<char> markers_;
};

}  // namespace rrnet::trace
