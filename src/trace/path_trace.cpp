#include "trace/path_trace.hpp"

#include "net/network.hpp"
#include "util/stats.hpp"

namespace rrnet::trace {

PathTrace::PathTrace(net::Network& network, std::uint32_t type_mask)
    : network_(&network), type_mask_(type_mask) {
  network.add_observer(this);
}

PathTrace::~PathTrace() { network_->remove_observer(this); }

void PathTrace::on_network_tx(std::uint32_t node,
                              const net::PacketRef& packet) {
  if (!traced(packet.type())) return;
  PacketPath& path = paths_[packet.uid()];
  if (path.hops.empty()) {
    path.origin = packet.origin();
    path.target = packet.target();
  }
  path.hops.push_back(Hop{node, network_->channel().position(node),
                          network_->scheduler().now()});
}

void PathTrace::on_delivered(std::uint32_t node,
                             const net::PacketRef& packet) {
  if (!traced(packet.type())) return;
  PacketPath& path = paths_[packet.uid()];
  if (path.hops.empty()) {
    path.origin = packet.origin();
    path.target = packet.target();
  }
  path.delivered = true;
  path.delivered_at = network_->scheduler().now();
  path.hops.push_back(Hop{node, network_->channel().position(node),
                          network_->scheduler().now()});
}

double PathTrace::mean_detour(const PacketPath& path, geom::Vec2 a,
                              geom::Vec2 b) {
  if (path.hops.empty()) return 0.0;
  util::Accumulator acc;
  for (const Hop& hop : path.hops) {
    acc.add(geom::distance_to_segment(hop.position, a, b));
  }
  return acc.mean();
}

double PathTrace::average_detour(std::uint32_t origin,
                                 std::uint32_t target) const {
  const geom::Vec2 a = network_->channel().position(origin);
  const geom::Vec2 b = network_->channel().position(target);
  util::Accumulator acc;
  for (const auto& [uid, path] : paths_) {
    if (path.origin == origin && path.target == target && path.delivered) {
      acc.add(mean_detour(path, a, b));
    }
  }
  return acc.empty() ? 0.0 : acc.mean();
}

}  // namespace rrnet::trace
