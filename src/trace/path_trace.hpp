// Records the actual relay points of traced packets — the information
// behind the paper's Figure 2 ("actual paths taken by different packets").
// By default only Data packets are traced; a packet-type mask widens the
// trace to control floods (PathDiscovery requests, PathReply floods), so
// discovery traffic renders on the same canvas as the data paths.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "des/time.hpp"
#include "geom/vec2.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"

namespace rrnet::trace {

/// Bit per net::PacketType, for PathTrace's type filter.
[[nodiscard]] constexpr std::uint32_t mask_of(net::PacketType type) noexcept {
  return 1u << static_cast<std::uint32_t>(type);
}
inline constexpr std::uint32_t kTraceDataOnly = mask_of(net::PacketType::Data);
inline constexpr std::uint32_t kTraceAllTypes = 0xFFFFFFFFu;

struct Hop {
  std::uint32_t node = 0;
  geom::Vec2 position{};
  des::Time time = 0.0;
};

struct PacketPath {
  std::uint32_t origin = 0;
  std::uint32_t target = 0;
  std::vector<Hop> hops;        ///< transmissions, in order
  bool delivered = false;
  des::Time delivered_at = 0.0;
};

class PathTrace final : public net::PacketObserver {
 public:
  /// Observe `network`, tracing packets whose type bit is set in
  /// `type_mask` (default: Data only — the paper's Figure 2).
  explicit PathTrace(net::Network& network,
                     std::uint32_t type_mask = kTraceDataOnly);
  ~PathTrace() override;
  PathTrace(const PathTrace&) = delete;
  PathTrace& operator=(const PathTrace&) = delete;

  void on_network_tx(std::uint32_t node,
                     const net::PacketRef& packet) override;
  void on_delivered(std::uint32_t node,
                    const net::PacketRef& packet) override;

  [[nodiscard]] const std::unordered_map<std::uint64_t, PacketPath>& paths()
      const noexcept {
    return paths_;
  }

  /// Mean perpendicular distance of a path's relay points from the straight
  /// line between two anchors (the Figure-2 "detour" metric).
  [[nodiscard]] static double mean_detour(const PacketPath& path, geom::Vec2 a,
                                          geom::Vec2 b);

  /// Average mean_detour over all delivered paths between origin & target.
  [[nodiscard]] double average_detour(std::uint32_t origin,
                                      std::uint32_t target) const;

  [[nodiscard]] std::uint32_t type_mask() const noexcept { return type_mask_; }

 private:
  [[nodiscard]] bool traced(net::PacketType type) const noexcept {
    return (type_mask_ & mask_of(type)) != 0;
  }

  net::Network* network_;
  std::uint32_t type_mask_;
  std::unordered_map<std::uint64_t, PacketPath> paths_;
};

}  // namespace rrnet::trace
