#include "phy/energy.hpp"

#include "util/contracts.hpp"

namespace rrnet::phy {

namespace {
double draw_for(const EnergyProfile& p, RadioState s) noexcept {
  switch (s) {
    case RadioState::Tx: return p.tx_w;
    case RadioState::Rx: return p.rx_w;
    case RadioState::Idle: return p.idle_w;
    case RadioState::Off: return p.off_w;
  }
  return 0.0;
}
}  // namespace

void EnergyMeter::account(RadioState state, des::Time now) noexcept {
  if (now <= last_time_) return;
  const des::Time dt = now - last_time_;
  joules_ += draw_for(profile_, state) * dt;
  dwell_[static_cast<int>(state)] += dt;
  last_time_ = now;
}

des::Time EnergyMeter::time_in(RadioState state) const noexcept {
  return dwell_[static_cast<int>(state)];
}

}  // namespace rrnet::phy
