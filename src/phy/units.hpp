// Radio power unit conversions (dBm <-> mW, dB ratios).
//
// Inline: these run on per-signal hot paths (every propagation draw takes
// a ratio_to_db, every arrival a dbm_to_mw), where an out-of-line call per
// conversion is measurable next to the O(1) PHY bookkeeping.
#pragma once

#include <algorithm>
#include <cmath>

namespace rrnet::phy {

/// Smallest representable power used to avoid -inf dBm on zero power.
inline constexpr double kMinPowerMw = 1e-30;

[[nodiscard]] inline double dbm_to_mw(double dbm) noexcept {
  return std::pow(10.0, dbm / 10.0);
}

[[nodiscard]] inline double mw_to_dbm(double mw) noexcept {
  return 10.0 * std::log10(std::max(mw, kMinPowerMw));
}

/// Ratio (linear) -> decibels.
[[nodiscard]] inline double ratio_to_db(double ratio) noexcept {
  return 10.0 * std::log10(std::max(ratio, kMinPowerMw));
}

/// Decibels -> linear ratio.
[[nodiscard]] inline double db_to_ratio(double db) noexcept {
  return std::pow(10.0, db / 10.0);
}

}  // namespace rrnet::phy
