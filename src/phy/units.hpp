// Radio power unit conversions (dBm <-> mW, dB ratios).
#pragma once

namespace rrnet::phy {

[[nodiscard]] double dbm_to_mw(double dbm) noexcept;
[[nodiscard]] double mw_to_dbm(double mw) noexcept;
/// Ratio (linear) -> decibels.
[[nodiscard]] double ratio_to_db(double ratio) noexcept;
/// Decibels -> linear ratio.
[[nodiscard]] double db_to_ratio(double db) noexcept;

/// Smallest representable power used to avoid -inf dBm on zero power.
inline constexpr double kMinPowerMw = 1e-30;

}  // namespace rrnet::phy
