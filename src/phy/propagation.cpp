#include "phy/propagation.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "des/time.hpp"
#include "phy/units.hpp"
#include "util/contracts.hpp"

namespace rrnet::phy {

namespace {
constexpr double kPi = std::numbers::pi;
}

double PropagationModel::rx_power_mw(double tx_power_mw, double distance_m,
                                     des::Rng& rng) const {
  return dbm_to_mw(rx_power_dbm(mw_to_dbm(tx_power_mw), distance_m, rng));
}

double PropagationModel::mean_rx_power_mw(double tx_power_mw,
                                          double distance_m) const {
  return dbm_to_mw(mean_rx_power_dbm(mw_to_dbm(tx_power_mw), distance_m));
}

FreeSpace::FreeSpace(double frequency_hz, double system_loss)
    : wavelength_(des::kSpeedOfLight / frequency_hz),
      system_loss_(system_loss) {
  RRNET_EXPECTS(frequency_hz > 0.0);
  RRNET_EXPECTS(system_loss >= 1.0);
}

double FreeSpace::mean_rx_power_dbm(double tx_power_dbm,
                                    double distance_m) const {
  const double d = std::max(distance_m, kMinDistanceM);
  const double gain = wavelength_ / (4.0 * kPi * d);
  return tx_power_dbm + ratio_to_db(gain * gain / system_loss_);
}

double FreeSpace::rx_power_dbm(double tx_power_dbm, double distance_m,
                               des::Rng& /*rng*/) const {
  return mean_rx_power_dbm(tx_power_dbm, distance_m);
}

double FreeSpace::mean_rx_power_mw(double tx_power_mw,
                                   double distance_m) const {
  // Friis in the linear domain: Pr = Pt * (lambda / 4 pi d)^2 / L. No
  // transcendentals — this is what makes the mW channel path worthwhile.
  const double d = std::max(distance_m, kMinDistanceM);
  const double gain = wavelength_ / (4.0 * kPi * d);
  return tx_power_mw * gain * gain / system_loss_;
}

double FreeSpace::rx_power_mw(double tx_power_mw, double distance_m,
                              des::Rng& /*rng*/) const {
  return mean_rx_power_mw(tx_power_mw, distance_m);
}

TwoRayGround::TwoRayGround(double frequency_hz, double tx_height_m,
                           double rx_height_m)
    : free_space_(frequency_hz),
      tx_height_(tx_height_m),
      rx_height_(rx_height_m),
      crossover_(4.0 * kPi * tx_height_m * rx_height_m /
                 free_space_.wavelength_m()) {
  RRNET_EXPECTS(tx_height_m > 0.0);
  RRNET_EXPECTS(rx_height_m > 0.0);
}

double TwoRayGround::mean_rx_power_dbm(double tx_power_dbm,
                                       double distance_m) const {
  const double d = std::max(distance_m, kMinDistanceM);
  if (d < crossover_) {
    return free_space_.mean_rx_power_dbm(tx_power_dbm, d);
  }
  const double gain =
      tx_height_ * tx_height_ * rx_height_ * rx_height_ / (d * d * d * d);
  return tx_power_dbm + ratio_to_db(gain);
}

double TwoRayGround::rx_power_dbm(double tx_power_dbm, double distance_m,
                                  des::Rng& /*rng*/) const {
  return mean_rx_power_dbm(tx_power_dbm, distance_m);
}

double TwoRayGround::mean_rx_power_mw(double tx_power_mw,
                                      double distance_m) const {
  const double d = std::max(distance_m, kMinDistanceM);
  if (d < crossover_) {
    return free_space_.mean_rx_power_mw(tx_power_mw, d);
  }
  const double gain =
      tx_height_ * tx_height_ * rx_height_ * rx_height_ / (d * d * d * d);
  return tx_power_mw * gain;
}

double TwoRayGround::rx_power_mw(double tx_power_mw, double distance_m,
                                 des::Rng& /*rng*/) const {
  return mean_rx_power_mw(tx_power_mw, distance_m);
}

LogDistance::LogDistance(double exponent, double reference_distance_m,
                         double frequency_hz)
    : free_space_(frequency_hz),
      exponent_(exponent),
      reference_distance_(reference_distance_m) {
  RRNET_EXPECTS(exponent >= 1.0);
  RRNET_EXPECTS(reference_distance_m >= kMinDistanceM);
}

double LogDistance::mean_rx_power_dbm(double tx_power_dbm,
                                      double distance_m) const {
  const double d = std::max(distance_m, kMinDistanceM);
  const double at_ref =
      free_space_.mean_rx_power_dbm(tx_power_dbm, reference_distance_);
  if (d <= reference_distance_) return at_ref;
  return at_ref - 10.0 * exponent_ * std::log10(d / reference_distance_);
}

double LogDistance::rx_power_dbm(double tx_power_dbm, double distance_m,
                                 des::Rng& /*rng*/) const {
  return mean_rx_power_dbm(tx_power_dbm, distance_m);
}

double LogDistance::mean_rx_power_mw(double tx_power_mw,
                                     double distance_m) const {
  // -10 n log10(d/d0) in dB is (d0/d)^n as a linear ratio: one pow, versus
  // the log10 here plus the pow the receiver would pay converting back.
  const double d = std::max(distance_m, kMinDistanceM);
  const double at_ref =
      free_space_.mean_rx_power_mw(tx_power_mw, reference_distance_);
  if (d <= reference_distance_) return at_ref;
  return at_ref * std::pow(reference_distance_ / d, exponent_);
}

double LogDistance::rx_power_mw(double tx_power_mw, double distance_m,
                                des::Rng& /*rng*/) const {
  return mean_rx_power_mw(tx_power_mw, distance_m);
}

RayleighFading::RayleighFading(std::unique_ptr<PropagationModel> large_scale)
    : large_scale_(std::move(large_scale)) {
  RRNET_EXPECTS(large_scale_ != nullptr);
}

double RayleighFading::mean_rx_power_dbm(double tx_power_dbm,
                                         double distance_m) const {
  return large_scale_->mean_rx_power_dbm(tx_power_dbm, distance_m);
}

double RayleighFading::rx_power_dbm(double tx_power_dbm, double distance_m,
                                    des::Rng& rng) const {
  const double mean_dbm =
      large_scale_->mean_rx_power_dbm(tx_power_dbm, distance_m);
  // Rayleigh-amplitude fading <=> exponentially distributed power with the
  // large-scale mean.
  const double factor = rng.exponential(1.0);
  return mw_to_dbm(dbm_to_mw(mean_dbm) * factor);
}

double RayleighFading::mean_rx_power_mw(double tx_power_mw,
                                        double distance_m) const {
  return large_scale_->mean_rx_power_mw(tx_power_mw, distance_m);
}

double RayleighFading::rx_power_mw(double tx_power_mw, double distance_m,
                                   des::Rng& rng) const {
  // Same single Exp(1) draw as the dBm path, applied without ever leaving
  // the linear domain.
  return large_scale_->mean_rx_power_mw(tx_power_mw, distance_m) *
         rng.exponential(1.0);
}

LogNormalShadowing::LogNormalShadowing(
    std::unique_ptr<PropagationModel> large_scale, double sigma_db)
    : large_scale_(std::move(large_scale)), sigma_db_(sigma_db) {
  RRNET_EXPECTS(large_scale_ != nullptr);
  RRNET_EXPECTS(sigma_db >= 0.0);
}

double LogNormalShadowing::mean_rx_power_dbm(double tx_power_dbm,
                                             double distance_m) const {
  return large_scale_->mean_rx_power_dbm(tx_power_dbm, distance_m);
}

double LogNormalShadowing::rx_power_dbm(double tx_power_dbm, double distance_m,
                                        des::Rng& rng) const {
  return large_scale_->mean_rx_power_dbm(tx_power_dbm, distance_m) +
         rng.normal(0.0, sigma_db_);
}

double LogNormalShadowing::mean_rx_power_mw(double tx_power_mw,
                                            double distance_m) const {
  return large_scale_->mean_rx_power_mw(tx_power_mw, distance_m);
}

double LogNormalShadowing::rx_power_mw(double tx_power_mw, double distance_m,
                                       des::Rng& rng) const {
  return large_scale_->mean_rx_power_mw(tx_power_mw, distance_m) *
         db_to_ratio(rng.normal(0.0, sigma_db_));
}

double range_for_threshold(const PropagationModel& model, double tx_power_dbm,
                           double threshold_dbm, double max_distance_m) {
  if (model.mean_rx_power_dbm(tx_power_dbm, kMinDistanceM) < threshold_dbm) {
    return 0.0;
  }
  double lo = kMinDistanceM;
  double hi = max_distance_m;
  if (model.mean_rx_power_dbm(tx_power_dbm, hi) >= threshold_dbm) return hi;
  for (int i = 0; i < 100; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (model.mean_rx_power_dbm(tx_power_dbm, mid) >= threshold_dbm) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double tx_power_for_range(const PropagationModel& model, double range_m,
                          double threshold_dbm) {
  RRNET_EXPECTS(range_m >= kMinDistanceM);
  // Path loss at range is independent of tx power for all models here
  // (pure additive in dB), so solve directly.
  const double loss_db = 0.0 - model.mean_rx_power_dbm(0.0, range_m);
  return threshold_dbm + loss_db;
}

}  // namespace rrnet::phy
