#include "phy/transceiver.hpp"

#include "obs/trace.hpp"
#include "phy/units.hpp"
#include "util/contracts.hpp"

namespace rrnet::phy {

bool Transceiver::medium_busy() const noexcept {
  if (state_ == RadioState::Tx || (state_ == RadioState::Rx && has_lock_)) {
    return true;
  }
  return signals_.total_power_mw() >= cs_threshold_mw_;
}

void Transceiver::recompute_busy() {
  const bool busy = medium_busy();
  if (busy != last_busy_) {
    last_busy_ = busy;
    if (listener_ != nullptr && state_ != RadioState::Off) {
      listener_->on_medium_changed(busy);
    }
  }
}

double Transceiver::interference_mw_excluding_own(
    double own_mw) const noexcept {
  // The SoA map's running total makes exclusion a single subtraction, so
  // SINR evaluation is O(1) even when §3 floods pile tens of concurrent
  // signals onto a receiver. Clamp: subtracting the sole signal's own
  // power from the incremental total can round a hair below zero.
  const double others_mw = signals_.total_power_mw() - own_mw;
  return noise_floor_mw_ + (others_mw > 0.0 ? others_mw : 0.0);
}

bool Transceiver::sinr_clears_threshold(double signal_mw) const noexcept {
  // signal/interference >= ratio, multiplied through: both sides positive,
  // and the linear-domain compare spends a multiply where the dB form
  // spent a log10 per reception decision.
  return signal_mw >=
         sinr_threshold_ratio_ * interference_mw_excluding_own(signal_mw);
}

void Transceiver::begin_transmit(std::uint64_t frame_id) {
  RRNET_ASSERT(state_ == RadioState::Idle || state_ == RadioState::Rx);
  // Half-duplex: starting a transmission abandons any reception in progress.
  if (has_lock_) {
    has_lock_ = false;
    lock_corrupted_ = false;
    ++stats_.frames_collided;
  }
  set_state(RadioState::Tx);
  tx_frame_ = frame_id;
  ++stats_.frames_sent;
  recompute_busy();
}

void Transceiver::end_transmit(std::uint64_t frame_id, des::Time /*now*/) {
  if (state_ != RadioState::Tx || tx_frame_ != frame_id) {
    return;  // radio was turned off mid-transmission
  }
  set_state(RadioState::Idle);
  if (listener_ != nullptr) listener_->on_tx_done(frame_id);
  recompute_busy();
}

std::uint32_t Transceiver::signal_arrives(const Airframe& frame,
                                          double power_mw, des::Time now,
                                          des::Time end_time) {
  ++stats_.signals_arrived;
  if (state_ == RadioState::Off) {
    ++stats_.frames_while_off;
    RRNET_TRACE_EVENT(obs::EventKind::PhyDrop, now, node_id_, frame.id,
                      obs::DropReason::RadioOff);
    return SignalMap::kNoSlot;
  }
  const std::uint32_t slot = signals_.insert(frame.id, power_mw, end_time);

  const bool decodable = power_mw >= rx_threshold_mw_;
  if (decodable && state_ == RadioState::Idle && !has_lock_) {
    if (sinr_clears_threshold(power_mw)) {
      // Lock onto this frame.
      set_state(RadioState::Rx);
      has_lock_ = true;
      lock_corrupted_ = false;
      locked_frame_ = frame.id;
      locked_power_mw_ = power_mw;
      locked_start_ = now;
    } else {
      ++stats_.frames_collided;
      RRNET_TRACE_EVENT(obs::EventKind::PhyDrop, now, node_id_, frame.id,
                        obs::DropReason::Collision);
    }
  } else if (decodable) {
    ++stats_.frames_missed_busy;
    RRNET_TRACE_EVENT(obs::EventKind::PhyDrop, now, node_id_, frame.id,
                      obs::DropReason::RxWhileBusy);
  } else {
    ++stats_.frames_below_threshold;
    RRNET_TRACE_EVENT(obs::EventKind::PhyDrop, now, node_id_, frame.id,
                      obs::DropReason::BelowSensitivity);
  }

  // New interference may corrupt the frame currently being decoded. The
  // locked signal sits in the map at exactly locked_power_mw_ (the same
  // converted value), so excluding it by value is exact.
  if (has_lock_ && !lock_corrupted_ && locked_frame_ != frame.id) {
    if (!sinr_clears_threshold(locked_power_mw_)) {
      lock_corrupted_ = true;
    }
  }
  recompute_busy();
  return slot;
}

void Transceiver::signal_ends(const Airframe& frame, std::uint32_t slot,
                              des::Time now) {
  if (!signals_.slot_matches(slot, frame.id)) {
    return;  // arrived while off, or cleared by an off/on cycle since
  }
  signals_.erase_slot(slot);

  if (has_lock_ && locked_frame_ == frame.id) {
    const bool ok = !lock_corrupted_;
    has_lock_ = false;
    lock_corrupted_ = false;
    if (state_ == RadioState::Rx) set_state(RadioState::Idle);
    if (ok) {
      ++stats_.frames_decoded;
      RRNET_TRACE_EVENT(obs::EventKind::PhyRxDecoded, now, node_id_, frame.id,
                        0);
      if (listener_ != nullptr) {
        // The only mW -> dBm conversion on the reception path: once per
        // decoded frame, not once per arrival.
        listener_->on_receive(
            frame, RxInfo{mw_to_dbm(locked_power_mw_), locked_start_, now});
      }
    } else {
      ++stats_.frames_collided;
      RRNET_TRACE_EVENT(obs::EventKind::PhyDrop, now, node_id_, frame.id,
                        obs::DropReason::Collision);
    }
  }
  recompute_busy();
}

void Transceiver::turn_off() {
  if (state_ == RadioState::Off) return;
  const bool was_tx = state_ == RadioState::Tx;
  const std::uint64_t tx_frame = tx_frame_;
  // Dropping the signal set severs every in-flight reception. Only the
  // locked frame still owes a terminal outcome — every other signal got
  // its drop counter at arrival — so account the aborted decode here or
  // the conservation invariant (decoded + drops == arrived) leaks.
  if (has_lock_) {
    ++stats_.frames_aborted_off;
    RRNET_TRACE_EVENT(obs::EventKind::PhyDrop,
                      clock_ != nullptr ? clock_->now() : 0.0, node_id_,
                      locked_frame_, obs::DropReason::RadioOff);
  }
  signals_.clear();
  has_lock_ = false;
  lock_corrupted_ = false;
  set_state(RadioState::Off);
  last_busy_ = false;
  // A transmission cut short still ends from the MAC's perspective; without
  // this the MAC would wait forever for a tx-done that never comes.
  if (was_tx && listener_ != nullptr) listener_->on_tx_done(tx_frame);
}

void Transceiver::turn_on() {
  if (state_ != RadioState::Off) return;
  set_state(RadioState::Idle);
  last_busy_ = false;
  // Kick the MAC: it may have been parked in WaitIdle since before the
  // outage, and no medium edge will arrive on a quiet channel.
  if (listener_ != nullptr) listener_->on_medium_changed(false);
}

void Transceiver::set_state(RadioState next) {
  if (meter_.has_value()) meter_->account(state_, clock_->now());
  state_ = next;
}

void Transceiver::enable_energy(const EnergyProfile& profile,
                                const des::Scheduler& clock) {
  clock_ = &clock;
  meter_.emplace(profile, clock.now());
}

void Transceiver::finalize_energy() {
  if (meter_.has_value()) meter_->account(state_, clock_->now());
}

}  // namespace rrnet::phy
