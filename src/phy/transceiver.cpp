#include "phy/transceiver.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "phy/units.hpp"
#include "util/contracts.hpp"

namespace rrnet::phy {

bool Transceiver::medium_busy() const noexcept {
  if (state_ == RadioState::Tx || (state_ == RadioState::Rx && has_lock_)) {
    return true;
  }
  return total_power_mw_ >= dbm_to_mw(params_->cs_threshold_dbm);
}

void Transceiver::recompute_busy() {
  const bool busy = medium_busy();
  if (busy != last_busy_) {
    last_busy_ = busy;
    if (listener_ != nullptr && state_ != RadioState::Off) {
      listener_->on_medium_changed(busy);
    }
  }
}

double Transceiver::interference_mw_excluding(
    std::uint64_t frame_id) const noexcept {
  double sum = dbm_to_mw(params_->noise_floor_dbm);
  for (const auto& s : signals_) {
    if (s.frame_id != frame_id) sum += s.power_mw;
  }
  return sum;
}

double Transceiver::sinr_db(double signal_mw,
                            std::uint64_t frame_id) const noexcept {
  return ratio_to_db(signal_mw / interference_mw_excluding(frame_id));
}

void Transceiver::begin_transmit(std::uint64_t frame_id) {
  RRNET_ASSERT(state_ == RadioState::Idle || state_ == RadioState::Rx);
  // Half-duplex: starting a transmission abandons any reception in progress.
  if (has_lock_) {
    has_lock_ = false;
    lock_corrupted_ = false;
    ++stats_.frames_collided;
  }
  set_state(RadioState::Tx);
  tx_frame_ = frame_id;
  ++stats_.frames_sent;
  recompute_busy();
}

void Transceiver::end_transmit(std::uint64_t frame_id, des::Time /*now*/) {
  if (state_ != RadioState::Tx || tx_frame_ != frame_id) {
    return;  // radio was turned off mid-transmission
  }
  set_state(RadioState::Idle);
  if (listener_ != nullptr) listener_->on_tx_done(frame_id);
  recompute_busy();
}

void Transceiver::signal_arrives(const Airframe& frame, double power_dbm,
                                 des::Time now, des::Time end_time) {
  ++stats_.signals_arrived;
  if (state_ == RadioState::Off) {
    ++stats_.frames_while_off;
    RRNET_TRACE_EVENT(obs::EventKind::PhyDrop, now, node_id_, frame.id,
                      obs::DropReason::RadioOff);
    return;
  }
  const double power_mw = dbm_to_mw(power_dbm);
  signals_.push_back({frame.id, power_mw, end_time});
  total_power_mw_ += power_mw;

  const bool decodable = power_dbm >= params_->rx_threshold_dbm;
  if (decodable && state_ == RadioState::Idle && !has_lock_) {
    if (sinr_db(power_mw, frame.id) >= params_->sinr_threshold_db) {
      // Lock onto this frame.
      set_state(RadioState::Rx);
      has_lock_ = true;
      lock_corrupted_ = false;
      locked_frame_ = frame.id;
      locked_power_dbm_ = power_dbm;
      locked_start_ = now;
    } else {
      ++stats_.frames_collided;
      RRNET_TRACE_EVENT(obs::EventKind::PhyDrop, now, node_id_, frame.id,
                        obs::DropReason::Collision);
    }
  } else if (decodable) {
    ++stats_.frames_missed_busy;
    RRNET_TRACE_EVENT(obs::EventKind::PhyDrop, now, node_id_, frame.id,
                      obs::DropReason::RxWhileBusy);
  } else {
    ++stats_.frames_below_threshold;
    RRNET_TRACE_EVENT(obs::EventKind::PhyDrop, now, node_id_, frame.id,
                      obs::DropReason::BelowSensitivity);
  }

  // New interference may corrupt the frame currently being decoded.
  if (has_lock_ && !lock_corrupted_ && locked_frame_ != frame.id) {
    const double locked_mw = dbm_to_mw(locked_power_dbm_);
    if (sinr_db(locked_mw, locked_frame_) < params_->sinr_threshold_db) {
      lock_corrupted_ = true;
    }
  }
  recompute_busy();
}

void Transceiver::signal_ends(const Airframe& frame, des::Time now) {
  const auto it = std::find_if(
      signals_.begin(), signals_.end(),
      [&](const ActiveSignal& s) { return s.frame_id == frame.id; });
  if (it == signals_.end()) return;  // arrived while off, or cleared by off
  const double power_mw = it->power_mw;
  signals_.erase(it);
  total_power_mw_ = std::max(0.0, total_power_mw_ - power_mw);

  if (has_lock_ && locked_frame_ == frame.id) {
    const bool ok = !lock_corrupted_;
    has_lock_ = false;
    lock_corrupted_ = false;
    if (state_ == RadioState::Rx) set_state(RadioState::Idle);
    if (ok) {
      ++stats_.frames_decoded;
      RRNET_TRACE_EVENT(obs::EventKind::PhyRxDecoded, now, node_id_, frame.id,
                        0);
      if (listener_ != nullptr) {
        listener_->on_receive(frame,
                              RxInfo{locked_power_dbm_, locked_start_, now});
      }
    } else {
      ++stats_.frames_collided;
      RRNET_TRACE_EVENT(obs::EventKind::PhyDrop, now, node_id_, frame.id,
                        obs::DropReason::Collision);
    }
  }
  recompute_busy();
}

void Transceiver::turn_off() {
  if (state_ == RadioState::Off) return;
  const bool was_tx = state_ == RadioState::Tx;
  const std::uint64_t tx_frame = tx_frame_;
  signals_.clear();
  total_power_mw_ = 0.0;
  has_lock_ = false;
  lock_corrupted_ = false;
  set_state(RadioState::Off);
  last_busy_ = false;
  // A transmission cut short still ends from the MAC's perspective; without
  // this the MAC would wait forever for a tx-done that never comes.
  if (was_tx && listener_ != nullptr) listener_->on_tx_done(tx_frame);
}

void Transceiver::turn_on() {
  if (state_ != RadioState::Off) return;
  set_state(RadioState::Idle);
  last_busy_ = false;
  // Kick the MAC: it may have been parked in WaitIdle since before the
  // outage, and no medium edge will arrive on a quiet channel.
  if (listener_ != nullptr) listener_->on_medium_changed(false);
}

void Transceiver::set_state(RadioState next) {
  if (meter_.has_value()) meter_->account(state_, clock_->now());
  state_ = next;
}

void Transceiver::enable_energy(const EnergyProfile& profile,
                                const des::Scheduler& clock) {
  clock_ = &clock;
  meter_.emplace(profile, clock.now());
}

void Transceiver::finalize_energy() {
  if (meter_.has_value()) meter_->account(state_, clock_->now());
}

}  // namespace rrnet::phy
