// Radio parameters shared by transceiver, channel, and MAC, plus the
// over-the-air frame.
#pragma once

#include <cstdint>

#include "des/time.hpp"
#include "mac/frame.hpp"

namespace rrnet::phy {

enum class RadioState : std::uint8_t { Idle, Tx, Rx, Off };

struct RadioParams {
  double tx_power_dbm = 15.0;       ///< transmit power
  double rx_threshold_dbm = -64.0;  ///< minimum power to decode a frame
  double cs_threshold_dbm = -74.0;  ///< carrier-sense (busy) threshold
  double noise_floor_dbm = -94.0;   ///< thermal noise for SINR
  double sinr_threshold_db = 10.0;  ///< minimum SINR to keep decoding
  /// Signals with mean rx power below this are not modeled at all (neither
  /// decodable nor interfering). Bounds the per-transmission fan-out: with
  /// free space propagation the cutoff radius grows 10^(dB/20)-fold per dB
  /// below the rx threshold, and every node inside it costs two events.
  double interference_cutoff_dbm = -74.0;
  double bitrate_bps = 1e6;         ///< payload bitrate
  des::Time preamble_s = 192e-6;    ///< PHY preamble + header airtime
  double frequency_hz = 914e6;      ///< carrier frequency

  /// Airtime of a frame of `bytes` payload bytes.
  [[nodiscard]] des::Time airtime(std::uint32_t bytes) const noexcept {
    return preamble_s + static_cast<double>(bytes) * 8.0 / bitrate_bps;
  }
};

/// A frame in flight: the MAC frame embedded by value (it is small — the
/// network packet inside it is a 24-byte PacketRef). Message types are
/// shared vocabulary across layers; the PHY never interprets `frame`
/// beyond handing it back to the RadioListener on decode.
struct Airframe {
  std::uint64_t id = 0;          ///< unique per transmission
  std::uint32_t sender = 0;      ///< node id of the transmitter
  std::uint32_t size_bytes = 0;  ///< payload size driving the airtime
  mac::Frame frame;
};

/// Reception metadata handed to the MAC with a successfully decoded frame.
struct RxInfo {
  double rssi_dbm = 0.0;   ///< received signal strength of this frame
  des::Time rx_start = 0;  ///< when the frame began arriving
  des::Time rx_end = 0;    ///< when it finished (== now at delivery)
};

/// Callbacks from a transceiver up into its MAC.
class RadioListener {
 public:
  virtual ~RadioListener() = default;
  /// A frame was decoded successfully.
  virtual void on_receive(const Airframe& frame, const RxInfo& info) = 0;
  /// Our own transmission finished (the medium may still be busy).
  virtual void on_tx_done(std::uint64_t frame_id) = 0;
  /// The medium busy/idle state changed (carrier sense edge).
  virtual void on_medium_changed(bool busy) = 0;
};

}  // namespace rrnet::phy
