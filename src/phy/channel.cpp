#include "phy/channel.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "phy/units.hpp"
#include "util/contracts.hpp"

namespace rrnet::phy {

Channel::Channel(des::Scheduler& scheduler, const geom::Terrain& terrain,
                 std::unique_ptr<PropagationModel> model, RadioParams params,
                 std::vector<geom::Vec2> positions, des::Rng rng)
    : scheduler_(&scheduler),
      model_(std::move(model)),
      params_(params),
      tx_power_mw_(dbm_to_mw(params.tx_power_dbm)),
      rx_threshold_mw_(dbm_to_mw(params.rx_threshold_dbm)),
      interference_cutoff_mw_(dbm_to_mw(params.interference_cutoff_dbm)),
      grid_(terrain, /*cell_size=*/
            std::max(1.0, range_for_threshold(*model_, params.tx_power_dbm,
                                              params.interference_cutoff_dbm,
                                              terrain.diameter())),
            positions),
      rng_(rng),
      nominal_range_(range_for_threshold(*model_, params.tx_power_dbm,
                                         params.rx_threshold_dbm,
                                         terrain.diameter())),
      interference_range_(range_for_threshold(*model_, params.tx_power_dbm,
                                              params.interference_cutoff_dbm,
                                              terrain.diameter())) {
  RRNET_EXPECTS(model_ != nullptr);
  RRNET_EXPECTS(!positions.empty());
  transceivers_.reserve(positions.size());
  for (std::uint32_t id = 0; id < positions.size(); ++id) {
    transceivers_.push_back(std::make_unique<Transceiver>(id, params_));
    // Channel-owned transceivers can always timestamp their own events
    // (turn_off drop records); enable_energy() re-sets the same clock.
    transceivers_.back()->clock_ = scheduler_;
  }
}

Transceiver& Channel::transceiver(std::uint32_t id) {
  RRNET_EXPECTS(id < transceivers_.size());
  return *transceivers_[id];
}

const Transceiver& Channel::transceiver(std::uint32_t id) const {
  RRNET_EXPECTS(id < transceivers_.size());
  return *transceivers_[id];
}

geom::Vec2 Channel::position(std::uint32_t id) const {
  return grid_.position(id);
}

void Channel::set_position(std::uint32_t id, geom::Vec2 position) {
  RRNET_EXPECTS(id < transceivers_.size());
  grid_.update_position(id, position);
}

bool Channel::transmit(const Airframe& frame) {
  RRNET_EXPECTS(frame.sender < transceivers_.size());
  Transceiver& sender = *transceivers_[frame.sender];
  if (sender.is_off()) {
    ++sender.stats_.tx_dropped_off;
    return false;
  }
  if (sender.state() == RadioState::Tx) {
    ++sender.stats_.tx_dropped_busy;
    RRNET_TRACE_EVENT(obs::EventKind::PhyDrop, scheduler_->now(),
                      frame.sender, frame.id, obs::DropReason::TxWhileBusy);
    return false;
  }

  const des::Time duration = params_.airtime(frame.size_bytes);
  const geom::Vec2 origin = grid_.position(frame.sender);
  sender.begin_transmit(frame.id);
  ++stats_.transmissions;
  RRNET_TRACE_EVENT(obs::EventKind::PhyTxStart, scheduler_->now(),
                    frame.sender, frame.id, 0);
  scheduler_->schedule_in(duration, [this, id = frame.id, s = frame.sender]() {
    RRNET_TRACE_EVENT(obs::EventKind::PhyTxEnd, scheduler_->now(), s, id, 0);
    transceivers_[s]->end_transmit(id, scheduler_->now());
  });

  const des::Time now = scheduler_->now();
  grid_.query(origin, interference_range_, query_buffer_);
  const std::uint32_t slot = acquire_transmission();
  Transmission& tx = *transmissions_[slot];
  tx.frame = frame;
  tx.duration = duration;
  for (const std::uint32_t rx_id : query_buffer_) {
    if (rx_id == frame.sender) continue;
    const double dist = geom::distance(origin, grid_.position(rx_id));
    // Power draws stay in grid-query order at transmit time; positions and
    // powers are pinned here, so signals in flight ignore later mobility.
    // Drawn in mW: the linear entry point spares a log10 per draw and the
    // pow per arrival that converting back would cost.
    const double power_mw = model_->rx_power_mw(tx_power_mw_, dist, rng_);
    if (power_mw < interference_cutoff_mw_) continue;  // imperceptible
    tx.receivers.push_back({now + dist / des::kSpeedOfLight, power_mw,
                            rx_id,
                            static_cast<std::uint32_t>(tx.receivers.size()),
                            SignalMap::kNoSlot, false});
  }
  if (tx.receivers.empty()) {
    release_transmission(slot);
    return true;
  }
  // Equal arrivals keep grid-query order (the `order` field), matching the
  // sequence order the unfused per-receiver events would have had. Plain
  // sort with an explicit tie-break: stable_sort allocates a temporary
  // buffer per call, which would be the hot path's only allocation.
  std::sort(tx.receivers.begin(), tx.receivers.end(),
            [](const PendingRx& a, const PendingRx& b) {
              return a.arrival != b.arrival ? a.arrival < b.arrival
                                            : a.order < b.order;
            });
  scheduler_->schedule_at(tx.receivers.front().arrival,
                          [this, slot]() { advance_transmission(slot); });
  return true;
}

void Channel::advance_transmission(std::uint32_t slot) {
  Transmission& tx = *transmissions_[slot];
  const des::Time now = scheduler_->now();
  for (;;) {
    const bool has_start = tx.next_start < tx.receivers.size();
    const bool has_end = tx.next_end < tx.receivers.size();
    if (!has_start && !has_end) break;
    // End times are spelled `arrival + duration` everywhere (here and in
    // signal_arrives below) so the merge compares bitwise-equal doubles.
    const bool do_start =
        has_start &&
        (!has_end || tx.receivers[tx.next_start].arrival <=
                         tx.receivers[tx.next_end].arrival + tx.duration);
    const des::Time due = do_start
                              ? tx.receivers[tx.next_start].arrival
                              : tx.receivers[tx.next_end].arrival + tx.duration;
    if (due > now) {
      scheduler_->schedule_at(due,
                              [this, slot]() { advance_transmission(slot); });
      return;
    }
    if (do_start) {
      PendingRx& rx = tx.receivers[tx.next_start++];
      Transceiver& trx = *transceivers_[rx.rx_id];
      rx.could_decode = !trx.is_off() && rx.power_mw >= rx_threshold_mw_;
      // Remember the receiver's slot: the matching end below erases in
      // O(1) instead of re-finding the frame id.
      rx.slot = trx.signal_arrives(tx.frame, rx.power_mw, now,
                                   rx.arrival + tx.duration);
    } else {
      const PendingRx& rx = tx.receivers[tx.next_end++];
      Transceiver& trx = *transceivers_[rx.rx_id];
      const std::uint64_t decoded_before = trx.stats().frames_decoded;
      trx.signal_ends(tx.frame, rx.slot, now);
      if (rx.could_decode && trx.stats().frames_decoded > decoded_before) {
        ++stats_.deliveries;
      }
    }
  }
  release_transmission(slot);
}

std::uint32_t Channel::acquire_transmission() {
  if (!free_transmissions_.empty()) {
    const std::uint32_t slot = free_transmissions_.back();
    free_transmissions_.pop_back();
    return slot;
  }
  transmissions_.push_back(std::make_unique<Transmission>());
  return static_cast<std::uint32_t>(transmissions_.size() - 1);
}

void Channel::release_transmission(std::uint32_t slot) {
  Transmission& tx = *transmissions_[slot];
  tx.frame = Airframe{};  // drop the payload handle now, not at slot reuse
  tx.receivers.clear();   // keeps capacity for the next broadcast
  tx.next_start = 0;
  tx.next_end = 0;
  free_transmissions_.push_back(slot);
}

}  // namespace rrnet::phy
