#include "phy/channel.hpp"

#include <algorithm>
#include <limits>

#include "net/packet_buffer.hpp"
#include "obs/trace.hpp"
#include "phy/units.hpp"
#include "util/contracts.hpp"

namespace rrnet::phy {

Channel::Channel(des::Scheduler& scheduler, const geom::Terrain& terrain,
                 std::unique_ptr<PropagationModel> model, RadioParams params,
                 std::vector<geom::Vec2> positions, des::Rng rng,
                 ShardSpec shard,
                 std::shared_ptr<const geom::SpatialGrid> shared_index)
    : scheduler_(&scheduler),
      model_(std::move(model)),
      params_(params),
      tx_power_mw_(dbm_to_mw(params.tx_power_dbm)),
      rx_threshold_mw_(dbm_to_mw(params.rx_threshold_dbm)),
      interference_cutoff_mw_(dbm_to_mw(params.interference_cutoff_dbm)),
      nominal_range_(range_for_threshold(*model_, params.tx_power_dbm,
                                         params.rx_threshold_dbm,
                                         terrain.diameter())),
      interference_range_(range_for_threshold(*model_, params.tx_power_dbm,
                                              params.interference_cutoff_dbm,
                                              terrain.diameter())),
      rng_(rng),
      shard_(std::move(shard)) {
  RRNET_EXPECTS(model_ != nullptr);
  if (shared_index) {
    RRNET_EXPECTS(positions.empty() ||
                  positions.size() == shared_index->size());
    shared_grid_ = std::move(shared_index);
    grid_ = shared_grid_.get();
  } else {
    owned_grid_ = std::make_unique<geom::SpatialGrid>(
        terrain, /*cell_size=*/std::max(1.0, interference_range_), positions);
    grid_ = owned_grid_.get();
  }
  const std::size_t n = grid_->size();
  RRNET_EXPECTS(n > 0);
  RRNET_EXPECTS(shard_.owner.empty() || shard_.owner.size() == n);
  frame_counters_.assign(n, 0);
  transceivers_.reserve(n);
  for (std::uint32_t id = 0; id < n; ++id) {
    if (!owns(id)) {
      // Remote node: position indexed (the grid needs every node for
      // bit-identical receiver walks), radio lives on its owning shard.
      transceivers_.push_back(nullptr);
      continue;
    }
    transceivers_.push_back(std::make_unique<Transceiver>(id, params_));
    // Channel-owned transceivers can always timestamp their own events
    // (turn_off drop records); enable_energy() re-sets the same clock.
    transceivers_.back()->clock_ = scheduler_;
  }
  if (shard_.sharded()) {
    outboxes_.resize(shard_.shards);
    handoff_mark_.assign(shard_.shards, 0);
    migration_marked_.assign(n, 0);
  }
  // Per-link stream base: rng_ is fork-derived from the run's root seed,
  // so every shard computes the same base and stochastic draws replay
  // identically wherever the receiver walk runs.
  link_seed_base_ = rng_.seed();
  stochastic_ = model_->stochastic();
}

Channel::~Channel() {
  // Retire transmission records to the thread's spare pool so the next run
  // built on this thread starts with warmed receiver-list capacity. Clear
  // payload handles here, on the owning thread — refcounts are non-atomic.
  auto& spare = spare_transmissions();
  constexpr std::size_t kMaxSpare = 256;
  for (auto& tx : transmissions_) {
    if (!tx || spare.size() >= kMaxSpare) break;
    tx->frame = Airframe{};
    tx->receivers.clear();
    tx->next_start = 0;
    tx->next_end = 0;
    spare.push_back(std::move(tx));
  }
}

std::vector<std::unique_ptr<Channel::Transmission>>&
Channel::spare_transmissions() {
  static thread_local std::vector<std::unique_ptr<Transmission>> pool;
  return pool;
}

std::vector<std::uint32_t>& Channel::query_scratch() {
  static thread_local std::vector<std::uint32_t> scratch;
  return scratch;
}

void Channel::adopt_transceiver(std::uint32_t id) {
  RRNET_EXPECTS(shard_.sharded() && owns(id) && transceivers_[id] == nullptr);
  transceivers_[id] = std::make_unique<Transceiver>(id, params_);
  transceivers_[id]->clock_ = scheduler_;
}

void Channel::evict_transceiver(std::uint32_t id) {
  RRNET_EXPECTS(shard_.sharded() && !owns(id) && transceivers_[id] != nullptr);
  transceivers_[id].reset();
}

Transceiver& Channel::transceiver(std::uint32_t id) {
  RRNET_EXPECTS(id < transceivers_.size() && transceivers_[id] != nullptr);
  return *transceivers_[id];
}

const Transceiver& Channel::transceiver(std::uint32_t id) const {
  RRNET_EXPECTS(id < transceivers_.size() && transceivers_[id] != nullptr);
  return *transceivers_[id];
}

geom::Vec2 Channel::position(std::uint32_t id) const {
  return grid_->position(id);
}

void Channel::set_position(std::uint32_t id, geom::Vec2 position) {
  RRNET_EXPECTS(id < transceivers_.size());
  // A shared index is immutable by contract (mobility scenarios keep
  // per-shard replicas), so mutation requires exclusive ownership.
  RRNET_EXPECTS(owned_grid_ != nullptr);
  owned_grid_->update_position(id, position);
  // Dynamic ownership: an owned node that moved out of this strip becomes
  // a migration candidate, picked up (and re-checked for quiescence) at the
  // next window barrier. O(movers) — mobility models replicate position
  // updates on every shard, but only the owner marks.
  if (shard_.sharded() && shard_.strip_width > 0.0 && owns(id) &&
      shard_of_position(position) != shard_.shard &&
      migration_marked_[id] == 0) {
    migration_marked_[id] = 1;
    migration_candidates_.push_back(id);
  }
}

des::Time Channel::heap_front(std::vector<des::Time>& heap, des::Time now) {
  // Entries at or before `now` already executed inside the closed window
  // run_until(now) just finished; drop them lazily here.
  while (!heap.empty() && heap.front() <= now) {
    std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
    heap.pop_back();
  }
  return heap.empty() ? std::numeric_limits<des::Time>::infinity()
                      : heap.front();
}

bool Channel::transmit(const Airframe& frame) {
  RRNET_EXPECTS(frame.sender < transceivers_.size());
  RRNET_EXPECTS(owns(frame.sender));
  Transceiver& sender = *transceivers_[frame.sender];
  if (sender.is_off()) {
    ++sender.stats_.tx_dropped_off;
    return false;
  }
  if (sender.state() == RadioState::Tx) {
    ++sender.stats_.tx_dropped_busy;
    RRNET_TRACE_EVENT(obs::EventKind::PhyDrop, scheduler_->now(),
                      frame.sender, frame.id, obs::DropReason::TxWhileBusy);
    return false;
  }

  const des::Time now = scheduler_->now();
  const des::Time duration = params_.airtime(frame.size_bytes);
  sender.begin_transmit(frame.id);
  ++stats_.transmissions;
  RRNET_TRACE_EVENT(obs::EventKind::PhyTxStart, now, frame.sender, frame.id,
                    0);
  scheduler_->schedule_in(duration, [this, id = frame.id, s = frame.sender]() {
    RRNET_TRACE_EVENT(obs::EventKind::PhyTxEnd, scheduler_->now(), s, id, 0);
    transceivers_[s]->end_transmit(id, scheduler_->now());
  });
  if (shard_.sharded()) {
    phy_event_heap_.push_back(now + duration);
    std::push_heap(phy_event_heap_.begin(), phy_event_heap_.end(),
                   std::greater<>{});
  }
  start_transmission(frame, now, duration,
                     /*record_handoffs=*/shard_.sharded());
  return true;
}

void Channel::inject_remote(const ShardHandoff& handoff) {
  RRNET_EXPECTS(shard_.sharded());
  RRNET_EXPECTS(!owns(handoff.frame.sender));
  // Re-home the payload: the handoff's PacketRef points into the SOURCE
  // shard's (thread's) non-atomic pool. The buffer header is immutable in
  // flight, so reading through the const ref is safe — but copying the ref
  // would bump that non-atomic refcount from this thread (two destination
  // shards injecting the same broadcast would race on it). Build the local
  // frame field by field, deep-cloning the payload straight from the
  // source ref; the source's refcount is only ever moved by its own thread
  // (it clears its outboxes at the next window start).
  const Airframe& src = handoff.frame;
  Airframe frame;
  frame.id = src.id;
  frame.sender = src.sender;
  frame.size_bytes = src.size_bytes;
  frame.frame.kind = src.frame.kind;
  frame.frame.src = src.frame.src;
  frame.frame.dst = src.frame.dst;
  frame.frame.sequence = src.frame.sequence;
  frame.frame.size_bytes = src.frame.size_bytes;
  frame.frame.nav_duration = src.frame.nav_duration;
  if (src.frame.payload) {
    frame.frame.payload = net::clone_packet_deep(src.frame.payload);
  }
  start_transmission(frame, handoff.tx_time, handoff.duration,
                     /*record_handoffs=*/false);
}

void Channel::start_transmission(const Airframe& frame, des::Time tx_time,
                                 des::Time duration, bool record_handoffs) {
  const geom::Vec2 origin = grid_->position(frame.sender);
  std::vector<std::uint32_t>& query_buffer = query_scratch();
  grid_->query(origin, interference_range_, query_buffer);
  const std::uint32_t slot = acquire_transmission();
  Transmission& tx = *transmissions_[slot];
  tx.frame = frame;
  tx.duration = duration;
  if (record_handoffs) ++handoff_epoch_;
  // Stochastic models draw from counter-based per-link streams keyed on
  // (base, sender, receiver, per-sender frame counter) — a pure function of
  // the transmission, not of draw history — so a destination shard
  // replaying this walk reproduces every fade bit-for-bit no matter what
  // its own channel drew in between. The per-sender counter is the low
  // half of frame.id, which travels inside the handoff.
  const auto draw_index = frame.id & 0xFFFFFFFFULL;
  // `order` counts every cutoff-passing receiver in grid-query order —
  // including ones this shard does not own — so the equal-arrival
  // tie-break below is the GLOBAL receiver index and a sharded replay
  // interleaves identically to the serial walk.
  std::uint32_t order = 0;
  for (const std::uint32_t rx_id : query_buffer) {
    if (rx_id == frame.sender) continue;
    const double dist = geom::distance(origin, grid_->position(rx_id));
    // Power draws stay in grid-query order at transmit time; positions and
    // powers are pinned here, so signals in flight ignore later mobility.
    // Drawn in mW: the linear entry point spares a log10 per draw and the
    // pow per arrival that converting back would cost.
    double power_mw;
    if (stochastic_) {
      des::LinkRng link(link_seed_base_, frame.sender, rx_id, draw_index);
      power_mw = model_->rx_power_mw(tx_power_mw_, dist, link.rng());
    } else {
      power_mw = model_->rx_power_mw(tx_power_mw_, dist, rng_);
    }
    if (power_mw < interference_cutoff_mw_) continue;  // imperceptible
    const std::uint32_t rx_order = order++;
    if (!owns(rx_id)) {
      if (record_handoffs) {
        const std::uint32_t dst = shard_.owner[rx_id];
        if (handoff_mark_[dst] != handoff_epoch_) {
          handoff_mark_[dst] = handoff_epoch_;
          outboxes_[dst].push_back({tx_time, duration, frame});
        }
      }
      continue;
    }
    tx.receivers.push_back({tx_time + dist / des::kSpeedOfLight, power_mw,
                            rx_id, rx_order, SignalMap::kNoSlot, false});
  }
  if (tx.receivers.empty()) {
    release_transmission(slot);
    return;
  }
  // Equal arrivals keep grid-query order (the `order` field), matching the
  // sequence order the unfused per-receiver events would have had. Plain
  // sort with an explicit tie-break: stable_sort allocates a temporary
  // buffer per call, which would be the hot path's only allocation.
  std::sort(tx.receivers.begin(), tx.receivers.end(),
            [](const PendingRx& a, const PendingRx& b) {
              return a.arrival != b.arrival ? a.arrival < b.arrival
                                            : a.order < b.order;
            });
  const des::Time first = tx.receivers.front().arrival;
  scheduler_->schedule_at(first,
                          [this, slot]() { advance_transmission(slot); });
  if (shard_.sharded()) {
    phy_event_heap_.push_back(first);
    std::push_heap(phy_event_heap_.begin(), phy_event_heap_.end(),
                   std::greater<>{});
  }
}

void Channel::advance_transmission(std::uint32_t slot) {
  Transmission& tx = *transmissions_[slot];
  const des::Time now = scheduler_->now();
  for (;;) {
    const bool has_start = tx.next_start < tx.receivers.size();
    const bool has_end = tx.next_end < tx.receivers.size();
    if (!has_start && !has_end) break;
    // End times are spelled `arrival + duration` everywhere (here and in
    // signal_arrives below) so the merge compares bitwise-equal doubles.
    const bool do_start =
        has_start &&
        (!has_end || tx.receivers[tx.next_start].arrival <=
                         tx.receivers[tx.next_end].arrival + tx.duration);
    const des::Time due = do_start
                              ? tx.receivers[tx.next_start].arrival
                              : tx.receivers[tx.next_end].arrival + tx.duration;
    if (due > now) {
      scheduler_->schedule_at(due,
                              [this, slot]() { advance_transmission(slot); });
      if (shard_.sharded()) {
        phy_event_heap_.push_back(due);
        std::push_heap(phy_event_heap_.begin(), phy_event_heap_.end(),
                       std::greater<>{});
      }
      return;
    }
    if (do_start) {
      PendingRx& rx = tx.receivers[tx.next_start++];
      Transceiver& trx = *transceivers_[rx.rx_id];
      rx.could_decode = !trx.is_off() && rx.power_mw >= rx_threshold_mw_;
      // Remember the receiver's slot: the matching end below erases in
      // O(1) instead of re-finding the frame id.
      rx.slot = trx.signal_arrives(tx.frame, rx.power_mw, now,
                                   rx.arrival + tx.duration);
    } else {
      const PendingRx& rx = tx.receivers[tx.next_end++];
      Transceiver& trx = *transceivers_[rx.rx_id];
      const std::uint64_t decoded_before = trx.stats().frames_decoded;
      trx.signal_ends(tx.frame, rx.slot, now);
      if (rx.could_decode && trx.stats().frames_decoded > decoded_before) {
        ++stats_.deliveries;
      }
    }
  }
  release_transmission(slot);
}

std::uint32_t Channel::acquire_transmission() {
  if (!free_transmissions_.empty()) {
    const std::uint32_t slot = free_transmissions_.back();
    free_transmissions_.pop_back();
    return slot;
  }
  auto& spare = spare_transmissions();
  if (!spare.empty()) {
    transmissions_.push_back(std::move(spare.back()));
    spare.pop_back();
  } else {
    transmissions_.push_back(std::make_unique<Transmission>());
  }
  return static_cast<std::uint32_t>(transmissions_.size() - 1);
}

void Channel::release_transmission(std::uint32_t slot) {
  Transmission& tx = *transmissions_[slot];
  tx.frame = Airframe{};  // drop the payload handle now, not at slot reuse
  tx.receivers.clear();   // keeps capacity for the next broadcast
  tx.next_start = 0;
  tx.next_end = 0;
  free_transmissions_.push_back(slot);
}

}  // namespace rrnet::phy
