#include "phy/channel.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace rrnet::phy {

Channel::Channel(des::Scheduler& scheduler, const geom::Terrain& terrain,
                 std::unique_ptr<PropagationModel> model, RadioParams params,
                 std::vector<geom::Vec2> positions, des::Rng rng)
    : scheduler_(&scheduler),
      model_(std::move(model)),
      params_(params),
      grid_(terrain, /*cell_size=*/
            std::max(1.0, range_for_threshold(*model_, params.tx_power_dbm,
                                              params.interference_cutoff_dbm,
                                              terrain.diameter())),
            positions),
      rng_(rng),
      nominal_range_(range_for_threshold(*model_, params.tx_power_dbm,
                                         params.rx_threshold_dbm,
                                         terrain.diameter())),
      interference_range_(range_for_threshold(*model_, params.tx_power_dbm,
                                              params.interference_cutoff_dbm,
                                              terrain.diameter())) {
  RRNET_EXPECTS(model_ != nullptr);
  RRNET_EXPECTS(!positions.empty());
  transceivers_.reserve(positions.size());
  for (std::uint32_t id = 0; id < positions.size(); ++id) {
    transceivers_.push_back(std::make_unique<Transceiver>(id, params_));
  }
}

Transceiver& Channel::transceiver(std::uint32_t id) {
  RRNET_EXPECTS(id < transceivers_.size());
  return *transceivers_[id];
}

const Transceiver& Channel::transceiver(std::uint32_t id) const {
  RRNET_EXPECTS(id < transceivers_.size());
  return *transceivers_[id];
}

geom::Vec2 Channel::position(std::uint32_t id) const {
  return grid_.position(id);
}

void Channel::set_position(std::uint32_t id, geom::Vec2 position) {
  RRNET_EXPECTS(id < transceivers_.size());
  grid_.update_position(id, position);
}

bool Channel::transmit(const Airframe& frame) {
  RRNET_EXPECTS(frame.sender < transceivers_.size());
  Transceiver& sender = *transceivers_[frame.sender];
  if (sender.is_off() ) {
    ++sender.stats_.tx_dropped_off;
    return false;
  }
  if (sender.state() == RadioState::Tx) return false;

  const des::Time duration = params_.airtime(frame.size_bytes);
  const geom::Vec2 origin = grid_.position(frame.sender);
  sender.begin_transmit(frame.id);
  ++stats_.transmissions;
  scheduler_->schedule_in(duration, [this, id = frame.id, s = frame.sender]() {
    transceivers_[s]->end_transmit(id, scheduler_->now());
  });

  grid_.query(origin, interference_range_, query_buffer_);
  for (const std::uint32_t rx_id : query_buffer_) {
    if (rx_id == frame.sender) continue;
    const double dist = geom::distance(origin, grid_.position(rx_id));
    const double power_dbm =
        model_->rx_power_dbm(params_.tx_power_dbm, dist, rng_);
    if (power_dbm < params_.interference_cutoff_dbm) continue;  // imperceptible
    const des::Time delay = dist / des::kSpeedOfLight;
    scheduler_->schedule_in(delay, [this, frame, power_dbm, rx_id, duration]() {
      const des::Time now = scheduler_->now();
      Transceiver& rx = *transceivers_[rx_id];
      const bool could_decode =
          !rx.is_off() && power_dbm >= params_.rx_threshold_dbm;
      rx.signal_arrives(frame, power_dbm, now, now + duration);
      scheduler_->schedule_in(duration, [this, frame, rx_id, could_decode]() {
        Transceiver& r = *transceivers_[rx_id];
        const std::uint64_t decoded_before = r.stats().frames_decoded;
        r.signal_ends(frame, scheduler_->now());
        if (could_decode && r.stats().frames_decoded > decoded_before) {
          ++stats_.deliveries;
        }
      });
    });
  }
  return true;
}

}  // namespace rrnet::phy
