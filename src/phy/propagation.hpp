// Large- and small-scale radio propagation models (Rappaport [21]).
//
// The paper's experiments use the free space model; two-ray ground,
// log-distance, Rayleigh fading and log-normal shadowing are provided so the
// SSAF premise ("signal weakens with distance at large scale, may fluctuate
// at small scale") can be exercised and tested under harsher channels.
#pragma once

#include <memory>

#include "des/rng.hpp"

namespace rrnet::phy {

class PropagationModel {
 public:
  virtual ~PropagationModel() = default;

  /// Received power (dBm) for a transmission at `tx_power_dbm` over
  /// `distance_m` meters; stochastic models draw fading from `rng`.
  [[nodiscard]] virtual double rx_power_dbm(double tx_power_dbm,
                                            double distance_m,
                                            des::Rng& rng) const = 0;

  /// Deterministic large-scale mean (no fading); used for range calibration.
  [[nodiscard]] virtual double mean_rx_power_dbm(double tx_power_dbm,
                                                 double distance_m) const = 0;

  /// Linear-domain form of rx_power_dbm: received power in mW for a
  /// transmission at `tx_power_mw`. This is the channel's per-receiver hot
  /// path — every in-tree model overrides it with pure linear arithmetic
  /// (free space is two multiplies; the dB form costs a log10 per draw,
  /// plus the pow the receiver would spend converting back). The default
  /// round-trips through the dBm entry point so external models stay
  /// correct without overriding. Stochastic models consume the same rng
  /// draws as rx_power_dbm, so replications are draw-for-draw comparable
  /// across the two entry points.
  [[nodiscard]] virtual double rx_power_mw(double tx_power_mw,
                                           double distance_m,
                                           des::Rng& rng) const;

  /// Linear-domain form of mean_rx_power_dbm (same default round-trip).
  [[nodiscard]] virtual double mean_rx_power_mw(double tx_power_mw,
                                                double distance_m) const;

  /// True for models whose rx-power draws consume RNG state (fading,
  /// shadowing). The channel routes such draws through counter-based
  /// per-link streams (des::LinkRng) instead of its sequential stream, so
  /// a sharded replay of the receiver walk reproduces them exactly.
  [[nodiscard]] virtual bool stochastic() const noexcept { return false; }
};

/// Distances below this are clamped (free-space formulas diverge at d = 0).
inline constexpr double kMinDistanceM = 1.0;

/// Friis free space: Pr = Pt + 20 log10(lambda / (4 pi d)).
class FreeSpace final : public PropagationModel {
 public:
  explicit FreeSpace(double frequency_hz = 914e6, double system_loss = 1.0);
  double rx_power_dbm(double tx_power_dbm, double distance_m,
                      des::Rng& rng) const override;
  double mean_rx_power_dbm(double tx_power_dbm,
                           double distance_m) const override;
  double rx_power_mw(double tx_power_mw, double distance_m,
                     des::Rng& rng) const override;
  double mean_rx_power_mw(double tx_power_mw,
                          double distance_m) const override;
  [[nodiscard]] double wavelength_m() const noexcept { return wavelength_; }

 private:
  double wavelength_;
  double system_loss_;
};

/// Two-ray ground reflection: free space below the crossover distance,
/// Pr = Pt + 10 log10(ht^2 hr^2 / d^4) above it.
class TwoRayGround final : public PropagationModel {
 public:
  TwoRayGround(double frequency_hz = 914e6, double tx_height_m = 1.5,
               double rx_height_m = 1.5);
  double rx_power_dbm(double tx_power_dbm, double distance_m,
                      des::Rng& rng) const override;
  double mean_rx_power_dbm(double tx_power_dbm,
                           double distance_m) const override;
  double rx_power_mw(double tx_power_mw, double distance_m,
                     des::Rng& rng) const override;
  double mean_rx_power_mw(double tx_power_mw,
                          double distance_m) const override;
  [[nodiscard]] double crossover_distance_m() const noexcept {
    return crossover_;
  }

 private:
  FreeSpace free_space_;
  double tx_height_;
  double rx_height_;
  double crossover_;
};

/// Log-distance path loss: free-space loss to d0, then n * 10 log10(d/d0).
class LogDistance final : public PropagationModel {
 public:
  LogDistance(double exponent, double reference_distance_m = 1.0,
              double frequency_hz = 914e6);
  double rx_power_dbm(double tx_power_dbm, double distance_m,
                      des::Rng& rng) const override;
  double mean_rx_power_dbm(double tx_power_dbm,
                           double distance_m) const override;
  double rx_power_mw(double tx_power_mw, double distance_m,
                     des::Rng& rng) const override;
  double mean_rx_power_mw(double tx_power_mw,
                          double distance_m) const override;

 private:
  FreeSpace free_space_;
  double exponent_;
  double reference_distance_;
};

/// Rayleigh (small-scale) fading layered over a large-scale model: the
/// received *power* is scaled by an Exp(1) variate.
class RayleighFading final : public PropagationModel {
 public:
  explicit RayleighFading(std::unique_ptr<PropagationModel> large_scale);
  double rx_power_dbm(double tx_power_dbm, double distance_m,
                      des::Rng& rng) const override;
  double mean_rx_power_dbm(double tx_power_dbm,
                           double distance_m) const override;
  double rx_power_mw(double tx_power_mw, double distance_m,
                     des::Rng& rng) const override;
  double mean_rx_power_mw(double tx_power_mw,
                          double distance_m) const override;
  bool stochastic() const noexcept override { return true; }

 private:
  std::unique_ptr<PropagationModel> large_scale_;
};

/// Log-normal shadowing layered over a large-scale model: adds a zero-mean
/// Gaussian (in dB) with the given standard deviation.
class LogNormalShadowing final : public PropagationModel {
 public:
  LogNormalShadowing(std::unique_ptr<PropagationModel> large_scale,
                     double sigma_db);
  double rx_power_dbm(double tx_power_dbm, double distance_m,
                      des::Rng& rng) const override;
  double mean_rx_power_dbm(double tx_power_dbm,
                           double distance_m) const override;
  double rx_power_mw(double tx_power_mw, double distance_m,
                     des::Rng& rng) const override;
  double mean_rx_power_mw(double tx_power_mw,
                          double distance_m) const override;
  bool stochastic() const noexcept override { return true; }

 private:
  std::unique_ptr<PropagationModel> large_scale_;
  double sigma_db_;
};

/// Largest distance at which mean rx power still meets `threshold_dbm`
/// (bisection over [kMinDistanceM, max_distance_m]; 0 if unreachable even at
/// the minimum distance).
[[nodiscard]] double range_for_threshold(const PropagationModel& model,
                                         double tx_power_dbm,
                                         double threshold_dbm,
                                         double max_distance_m = 1e5);

/// Transmit power (dBm) that makes the mean rx power equal `threshold_dbm`
/// at exactly `range_m` meters.
[[nodiscard]] double tx_power_for_range(const PropagationModel& model,
                                        double range_m, double threshold_dbm);

}  // namespace rrnet::phy
