// Duty-cycle transceiver failure model from the paper's Figure-4 setup:
// "a node failure of 10% means that randomly selected 10% of the time the
// transceiver of a node is turned off and not able to transmit or receive".
//
// Each affected node alternates ON/OFF with exponentially distributed
// durations whose means are chosen so the long-run OFF fraction equals the
// requested percentage. Phases are desynchronized across nodes by drawing
// the initial state from the stationary distribution.
#pragma once

#include <cstdint>
#include <vector>

#include "des/rng.hpp"
#include "des/scheduler.hpp"
#include "phy/channel.hpp"

namespace rrnet::phy {

struct FailureConfig {
  double off_fraction = 0.0;      ///< long-run fraction of time OFF, [0, 1)
  des::Time mean_cycle_s = 10.0;  ///< mean ON+OFF cycle length
  std::vector<std::uint32_t> exempt_nodes;  ///< e.g. traffic endpoints
};

/// Drives turn_off()/turn_on() on each non-exempt transceiver.
class FailureModel {
 public:
  FailureModel(des::Scheduler& scheduler, Channel& channel,
               FailureConfig config, des::Rng rng);

  /// Begin toggling radios; idempotent per construction (call once).
  void start();

  [[nodiscard]] const FailureConfig& config() const noexcept { return config_; }
  /// Observed OFF fraction so far for one node (for tests).
  [[nodiscard]] double observed_off_fraction(std::uint32_t node) const;

 private:
  struct NodeState {
    bool managed = false;
    bool off = false;
    des::Time off_accum = 0.0;
    des::Time last_change = 0.0;
  };

  void schedule_toggle(std::uint32_t node);
  [[nodiscard]] des::Time mean_on() const noexcept;
  [[nodiscard]] des::Time mean_off() const noexcept;

  des::Scheduler* scheduler_;
  Channel* channel_;
  FailureConfig config_;
  des::Rng rng_;
  std::vector<NodeState> states_;
  bool started_ = false;
};

}  // namespace rrnet::phy
