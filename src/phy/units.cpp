#include "phy/units.hpp"

#include <algorithm>
#include <cmath>

namespace rrnet::phy {

double dbm_to_mw(double dbm) noexcept { return std::pow(10.0, dbm / 10.0); }

double mw_to_dbm(double mw) noexcept {
  return 10.0 * std::log10(std::max(mw, kMinPowerMw));
}

double ratio_to_db(double ratio) noexcept {
  return 10.0 * std::log10(std::max(ratio, kMinPowerMw));
}

double db_to_ratio(double db) noexcept { return std::pow(10.0, db / 10.0); }

}  // namespace rrnet::phy
