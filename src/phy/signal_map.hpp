// Structure-of-arrays slot map for the signals concurrently on the air at
// one receiver.
//
// The flat AoS vector it replaces (24-byte ActiveSignal structs) made
// every interference query a pointer-chasing scan with a branch per
// element; in the §3 dense-flood scenarios each node evaluates tens of
// overlapping signals per reception (bench: channel_dense_signals). Here
// each field lives in its own parallel array — frame ids, powers (mW),
// end times — indexed by a stable slot:
//
//  * insert() reuses the most recently freed slot (LIFO free list) or
//    appends; erase_slot() zeroes the slot's power and parks it on the
//    free list. A freed slot therefore contributes exactly 0.0 to power
//    sums, so the fallback queries are branchless dense loops over the
//    slot range — `power_sum_excluding` compiles to a vectorizable
//    accumulate minus one element, and find() is a flat scan of a
//    contiguous u64 array. The hot paths never scan at all: callers keep
//    the slot returned by insert() and validate it with slot_matches(),
//    and interference comes from the running total minus the excluded
//    signal's own power.
//  * Slot assignment is a deterministic function of the insert/erase
//    history, so the FP arithmetic order — and with it every SINR
//    decision — is bit-identical across runs of the same seed.
//  * `total_power_mw()` (the carrier-sense input) is maintained
//    incrementally but snaps back to exactly 0.0 whenever the map
//    empties, so +=/-= rounding residue cannot accumulate across
//    millions of arrivals and leak into medium_busy() comparisons. The
//    whole slot range is truncated at the same point, keeping the dense
//    loops as short as the densest overlap actually seen.
//
// All four arrays live in ONE block carved from the thread-local
// PayloadPool: per-instance construction is a single pool pop (and a push
// at destruction), so scenario replications that churn whole Channels
// stay allocation-free in steady state. Growth past the reserved capacity
// doubles the block through the pool's heap fallback — rare and bounded
// by the densest overlap, exactly like the pooled vector it replaces.
#pragma once

#include <cstdint>
#include <cstring>
#include <utility>

#include "des/time.hpp"
#include "util/pool.hpp"

namespace rrnet::phy {

class SignalMap {
 public:
  static constexpr std::uint32_t kNoSlot = ~0u;

  SignalMap() { allocate_block(kReservedSignals); }

  ~SignalMap() {
    if (ids_ != nullptr) util::PayloadPool::release(ids_);
  }

  SignalMap(const SignalMap&) = delete;
  SignalMap& operator=(const SignalMap&) = delete;
  SignalMap(SignalMap&& other) noexcept { steal(other); }
  SignalMap& operator=(SignalMap&& other) noexcept {
    if (this != &other) {
      if (ids_ != nullptr) util::PayloadPool::release(ids_);
      steal(other);
    }
    return *this;
  }

  [[nodiscard]] bool empty() const noexcept { return active_ == 0; }
  /// Signals currently on the air.
  [[nodiscard]] std::size_t active_count() const noexcept { return active_; }
  /// Slots in the dense range (active + parked); the length of the sums.
  [[nodiscard]] std::size_t slot_count() const noexcept { return count_; }

  /// Cumulative in-air power; exactly 0.0 whenever the map is empty.
  [[nodiscard]] double total_power_mw() const noexcept {
    return total_power_mw_;
  }

  /// Add a signal; frame ids must be unique among active signals.
  std::uint32_t insert(std::uint64_t frame_id, double power_mw,
                       des::Time end_time) {
    std::uint32_t slot;
    if (free_count_ > 0) {
      slot = free_[--free_count_];
    } else {
      if (count_ == capacity_) grow();
      slot = count_++;
    }
    ids_[slot] = frame_id;
    powers_[slot] = power_mw;
    ends_[slot] = end_time;
    ++active_;
    total_power_mw_ += power_mw;
    return slot;
  }

  /// Slot holding `frame_id`, or kNoSlot. Dense scan of the id array.
  [[nodiscard]] std::uint32_t find(std::uint64_t frame_id) const noexcept {
    for (std::uint32_t i = 0; i < count_; ++i) {
      if (ids_[i] == frame_id) return i;
    }
    return kNoSlot;
  }

  /// True iff `slot` (typically remembered from insert()) still holds
  /// `frame_id` — i.e. it survived any clear()/reset in between. O(1).
  [[nodiscard]] bool slot_matches(std::uint32_t slot,
                                  std::uint64_t frame_id) const noexcept {
    return slot < count_ && ids_[slot] == frame_id;
  }

  [[nodiscard]] double power_mw_at(std::uint32_t slot) const noexcept {
    return powers_[slot];
  }

  /// Remove the signal in `slot` (from insert()/find()); returns its power.
  double erase_slot(std::uint32_t slot) noexcept {
    const double power_mw = powers_[slot];
    powers_[slot] = 0.0;  // keeps the parked slot out of the sums
    ids_[slot] = kEmptyFrameId;
    --active_;
    if (active_ == 0) {
      reset_slots();
    } else {
      free_[free_count_++] = slot;
      total_power_mw_ -= power_mw;
      // -= of previously += values can round below zero on the last
      // few signals; the empty() reset above restores exact zero.
      if (total_power_mw_ < 0.0) total_power_mw_ = 0.0;
    }
    return power_mw;
  }

  /// Sum of active powers except `frame_id`'s (whether or not present).
  /// Branchless dense accumulate: parked slots add exactly 0.0.
  [[nodiscard]] double power_sum_excluding(
      std::uint64_t frame_id) const noexcept {
    double sum = 0.0;
    double excluded = 0.0;
    for (std::uint32_t i = 0; i < count_; ++i) {
      sum += powers_[i];
      if (ids_[i] == frame_id) excluded = powers_[i];
    }
    return sum - excluded;
  }

  /// Drop everything (radio off); capacity is retained.
  void clear() noexcept {
    active_ = 0;
    reset_slots();
  }

 private:
  static constexpr std::uint32_t kReservedSignals = 8;
  static constexpr std::uint64_t kEmptyFrameId = ~0ull;

  // One block, four arrays: [ids u64*C][powers f64*C][ends f64*C][free u32*C].
  // The 8-byte-aligned arrays come first so every base pointer is aligned.
  static constexpr std::size_t block_bytes(std::uint32_t capacity) noexcept {
    return static_cast<std::size_t>(capacity) *
           (sizeof(std::uint64_t) + sizeof(double) + sizeof(des::Time) +
            sizeof(std::uint32_t));
  }

  void allocate_block(std::uint32_t capacity) {
    // The reserved size is the pool's chunk size, so steady-state instance
    // churn is pop/push; doubled blocks take the pool's heap fallback.
    void* block =
        util::payload_pool<SignalMap>().allocate(block_bytes(capacity));
    ids_ = static_cast<std::uint64_t*>(block);
    powers_ = reinterpret_cast<double*>(ids_ + capacity);
    ends_ = reinterpret_cast<des::Time*>(powers_ + capacity);
    free_ = reinterpret_cast<std::uint32_t*>(ends_ + capacity);
    capacity_ = capacity;
  }

  void grow() {
    const SignalMap old = std::move(*this);
    allocate_block(old.capacity_ * 2);
    std::memcpy(ids_, old.ids_, old.count_ * sizeof(std::uint64_t));
    std::memcpy(powers_, old.powers_, old.count_ * sizeof(double));
    std::memcpy(ends_, old.ends_, old.count_ * sizeof(des::Time));
    std::memcpy(free_, old.free_, old.free_count_ * sizeof(std::uint32_t));
    count_ = old.count_;
    free_count_ = old.free_count_;
    active_ = old.active_;
    total_power_mw_ = old.total_power_mw_;
  }

  void reset_slots() noexcept {
    count_ = 0;
    free_count_ = 0;
    total_power_mw_ = 0.0;  // exact: no residue survives an empty map
  }

  void steal(SignalMap& other) noexcept {
    ids_ = other.ids_;
    powers_ = other.powers_;
    ends_ = other.ends_;
    free_ = other.free_;
    capacity_ = other.capacity_;
    count_ = other.count_;
    free_count_ = other.free_count_;
    active_ = other.active_;
    total_power_mw_ = other.total_power_mw_;
    other.ids_ = nullptr;
    other.powers_ = nullptr;
    other.ends_ = nullptr;
    other.free_ = nullptr;
    other.capacity_ = 0;
    other.count_ = 0;
    other.free_count_ = 0;
    other.active_ = 0;
    other.total_power_mw_ = 0.0;
  }

  std::uint64_t* ids_ = nullptr;
  double* powers_ = nullptr;
  des::Time* ends_ = nullptr;
  std::uint32_t* free_ = nullptr;
  std::uint32_t capacity_ = 0;
  std::uint32_t count_ = 0;      ///< dense slot range (active + parked)
  std::uint32_t free_count_ = 0;
  std::uint32_t active_ = 0;
  double total_power_mw_ = 0.0;
};

}  // namespace rrnet::phy
