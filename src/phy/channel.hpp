// Shared broadcast medium: delivers each transmission to every transceiver
// within the interference range, after per-receiver propagation delay, with
// per-receiver received power drawn from the propagation model.
//
// Receiver scheduling is fused: instead of two scheduler events per
// receiver (signal start + signal end), each transmission owns a pooled
// Transmission record holding its receiver list sorted by arrival, and a
// single self-rescheduling walker event advances a two-pointer merge of
// the start stream (arrival_i) and the end stream (arrival_i + duration).
// The heap holds at most one entry per transmission in flight instead of
// O(receivers), which keeps it shallow exactly when §3 floods make
// neighborhoods dense. Start/end interleaving, power draws (grid-query
// order at transmit time), and same-timestamp ordering (starts before
// ends; equal arrivals in query order) are preserved bit-for-bit.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "des/rng.hpp"
#include "des/scheduler.hpp"
#include "geom/spatial_grid.hpp"
#include "phy/propagation.hpp"
#include "phy/radio.hpp"
#include "phy/transceiver.hpp"

namespace rrnet::phy {

/// Channel-wide counters (all nodes aggregated).
struct ChannelStats {
  std::uint64_t transmissions = 0;  ///< frames put on the air
  std::uint64_t deliveries = 0;     ///< successful (frame, receiver) decodes
};

/// Sharded-mode identity: which spatial shard this channel instance is and
/// the owning shard of every node id. Default-constructed = serial mode
/// (one shard owning everything). In shard mode the channel still indexes
/// ALL positions (the full grid is what lets it re-run a remote
/// transmission's receiver walk bit-identically), but it creates
/// transceivers only for owned nodes and records transmissions that reach
/// other shards into per-destination outboxes.
struct ShardSpec {
  std::uint32_t shard = 0;   ///< this channel's shard index
  std::uint32_t shards = 1;  ///< total shard count
  /// owner[id] = owning shard of node id; empty means serial (all local).
  /// Mutable after construction: mobility migrates nodes between strips
  /// (set_owner), and every shard applies the same migration records in the
  /// same order, so the maps never diverge.
  std::vector<std::uint32_t> owner;
  /// Width of one vertical strip (terrain width / shards). Zero means
  /// ownership is static (no migration candidates are ever marked); the
  /// sharded engine sets it so set_position can detect strip crossings with
  /// the exact arithmetic of geom::ShardPartition::shard_of.
  double strip_width = 0.0;
  [[nodiscard]] bool sharded() const noexcept { return shards > 1; }
};

/// One cross-shard transmission: everything the destination shard needs to
/// replay the receiver walk locally. Deliberately minimal — the destination
/// re-derives arrivals, powers, and global receiver order from its own full
/// position grid and the (deterministic) propagation model, so the replay
/// is bitwise identical to the serial walk. The embedded frame still
/// references the SOURCE shard's pooled packet buffer; the destination
/// deep-clones it at injection time (inject_remote) and never retains it.
struct ShardHandoff {
  des::Time tx_time = 0.0;   ///< when the frame was put on the air
  des::Time duration = 0.0;  ///< its airtime
  Airframe frame;
};

class Channel {
 public:
  /// `positions[i]` is the location of node i; one transceiver is created
  /// per node (per OWNED node when `shard` says this channel is one shard
  /// of a sharded run). The scheduler, model, and params must outlive the
  /// channel.
  ///
  /// When `shared_index` is non-null the channel queries that immutable
  /// grid instead of building its own (the sharded engine passes one index
  /// to every static-position shard, cutting index memory from O(n*K) to
  /// O(n)); `positions` may then be empty, and set_position is forbidden.
  Channel(des::Scheduler& scheduler, const geom::Terrain& terrain,
          std::unique_ptr<PropagationModel> model, RadioParams params,
          std::vector<geom::Vec2> positions, des::Rng rng,
          ShardSpec shard = {},
          std::shared_ptr<const geom::SpatialGrid> shared_index = nullptr);

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;
  ~Channel();

  [[nodiscard]] std::size_t node_count() const noexcept {
    return transceivers_.size();
  }
  [[nodiscard]] Transceiver& transceiver(std::uint32_t id);
  [[nodiscard]] const Transceiver& transceiver(std::uint32_t id) const;
  [[nodiscard]] geom::Vec2 position(std::uint32_t id) const;
  [[nodiscard]] const RadioParams& params() const noexcept { return params_; }
  [[nodiscard]] const PropagationModel& model() const noexcept { return *model_; }
  [[nodiscard]] des::Scheduler& scheduler() const noexcept { return *scheduler_; }

  /// Start transmitting `frame` from `frame.sender`. Returns false (and
  /// drops the frame) if that radio is off or already transmitting.
  bool transmit(const Airframe& frame);

  /// Distance at which the mean rx power equals the rx threshold — the
  /// nominal transmission range of every node.
  [[nodiscard]] double nominal_range_m() const noexcept { return nominal_range_; }
  /// Distance beyond which signals are ignored entirely (below the noise
  /// floor at mean power; they could not move any SINR perceptibly).
  [[nodiscard]] double interference_range_m() const noexcept {
    return interference_range_;
  }

  /// Heap bytes of the spatial index this channel queries; `owns_index()`
  /// is false when the index is shared across shards (static scenarios).
  [[nodiscard]] std::size_t index_bytes() const noexcept {
    return grid_->index_bytes();
  }
  [[nodiscard]] bool owns_index() const noexcept {
    return owned_grid_ != nullptr;
  }

  [[nodiscard]] const ChannelStats& stats() const noexcept { return stats_; }

  /// Fresh unique frame id for a frame sent by `sender` (MACs stamp
  /// outgoing frames with this). Ids are (sender << 32) | per-sender
  /// counter, so the sequence a node draws is independent of every other
  /// node's transmissions — a spatially sharded run hands out the same ids
  /// as a serial one.
  [[nodiscard]] std::uint64_t next_frame_id(std::uint32_t sender) noexcept {
    RRNET_EXPECTS(sender < frame_counters_.size());
    return (static_cast<std::uint64_t>(sender) << 32) |
           ++frame_counters_[sender];
  }

  /// Move a node (mobility models). Takes effect for transmissions that
  /// start after the call; signals already in flight keep the powers
  /// computed at their transmit time.
  void set_position(std::uint32_t id, geom::Vec2 position);

  // --- Sharded-mode surface (all no-ops / trivially true in serial mode) ---

  [[nodiscard]] bool sharded() const noexcept { return shard_.sharded(); }
  /// True iff node `id` lives on this shard (always true serially).
  [[nodiscard]] bool owns(std::uint32_t id) const noexcept {
    return shard_.owner.empty() || shard_.owner[id] == shard_.shard;
  }

  /// MAC layers call this whenever they arm a timer whose expiry can put a
  /// frame on the air without an intervening DIFS (sifs-deferred responses,
  /// the final backoff slot, DIFS expiry itself). The sharded engine's
  /// conservative window bound is min(earliest armed tx, earliest phy
  /// event + sifs, earliest scheduler event + difs) — without these notes
  /// the first term would be unknown and the bound unsound.
  void note_armed_tx(des::Time when) {
    if (!sharded()) return;
    armed_tx_heap_.push_back(when);
    std::push_heap(armed_tx_heap_.begin(), armed_tx_heap_.end(),
                   std::greater<>{});
  }

  /// Earliest pending armed-tx note at or after `now` (stale notes — timers
  /// that fired or were cancelled — are discarded lazily), or +infinity.
  [[nodiscard]] des::Time earliest_armed_tx(des::Time now) noexcept {
    return heap_front(armed_tx_heap_, now);
  }
  /// Earliest pending channel-internal event (transmission walker due /
  /// end-of-transmit) at or after `now`, or +infinity.
  [[nodiscard]] des::Time earliest_phy_event(des::Time now) noexcept {
    return heap_front(phy_event_heap_, now);
  }

  /// Frames transmitted locally this window that reach shard `dst`'s strip.
  [[nodiscard]] std::vector<ShardHandoff>& outbox(std::uint32_t dst) noexcept {
    return outboxes_[dst];
  }
  /// Drop all outbox entries (src shard, start of each window — the
  /// destination shards have deep-cloned what they needed at the barrier).
  void clear_outboxes() noexcept {
    for (auto& box : outboxes_) box.clear();
  }

  /// Replay a remote shard's transmission on this shard: re-run the full
  /// receiver walk over the complete position grid (same arrivals, powers,
  /// and global order indices as the serial run) but deliver only to
  /// receivers this shard owns. The handoff's packet payload is
  /// deep-cloned here so the source shard's pool is never touched again.
  /// Does NOT count toward stats().transmissions (the source shard did).
  void inject_remote(const ShardHandoff& handoff);

  /// True when any per-destination outbox holds a handoff (the sharded
  /// engine's quiet-window test: nothing outbound means the exchange half
  /// of the barrier round can be skipped).
  [[nodiscard]] bool has_outbound() const noexcept {
    for (const auto& box : outboxes_) {
      if (!box.empty()) return true;
    }
    return false;
  }
  /// Total handoffs parked across all destination outboxes (profiler
  /// fan-out accounting; outboxes are sealed between barriers, so reading
  /// sizes during the exchange is race-free).
  [[nodiscard]] std::uint64_t outbound_handoffs() const noexcept {
    std::uint64_t n = 0;
    for (const auto& box : outboxes_) n += box.size();
    return n;
  }

  // --- Dynamic strip ownership (node migration) ---

  /// Strip that owns position `p` — the EXACT arithmetic of
  /// geom::ShardPartition::shard_of, mirrored here so crossing detection in
  /// set_position agrees bitwise with the partition the engine built.
  [[nodiscard]] std::uint32_t shard_of_position(geom::Vec2 p) const noexcept {
    if (p.x <= 0.0) return 0;
    const auto s = static_cast<std::uint32_t>(p.x / shard_.strip_width);
    return s >= shard_.shards ? shard_.shards - 1 : s;
  }

  /// Re-home node `id` to shard `dst`. Called on EVERY shard for every
  /// migration record, in the same global order, so all owner maps stay
  /// identical (handoff routing reads owner[] for non-owned receivers).
  void set_owner(std::uint32_t id, std::uint32_t dst) {
    RRNET_EXPECTS(shard_.sharded() && id < shard_.owner.size());
    shard_.owner[id] = dst;
  }

  /// Create the radio for a node this shard just adopted (owner map must
  /// already say the node is local). State is restored separately via
  /// Transceiver::import_snapshot.
  void adopt_transceiver(std::uint32_t id);
  /// Destroy the radio of a node this shard just evicted (frees to this
  /// thread's pool — eviction always runs on the owning worker).
  void evict_transceiver(std::uint32_t id);

  /// True while any in-flight transmission still has a pending signal start
  /// or end at receiver `id` — such a node cannot migrate (the walker would
  /// touch a destroyed radio). O(active transmissions x receivers), only
  /// called for boundary-crossing candidates at window barriers.
  [[nodiscard]] bool has_pending_rx(std::uint32_t id) const noexcept {
    for (const auto& tx : transmissions_) {
      for (std::size_t i = tx->next_end; i < tx->receivers.size(); ++i) {
        if (tx->receivers[i].rx_id == id) return true;
      }
    }
    return false;
  }

  /// Per-sender frame-id counter transfer (migration: the adopting shard
  /// must continue the evicted node's id sequence).
  [[nodiscard]] std::uint32_t frame_counter(std::uint32_t id) const noexcept {
    return frame_counters_[id];
  }
  void restore_frame_counter(std::uint32_t id, std::uint32_t value) noexcept {
    frame_counters_[id] = value;
  }

  [[nodiscard]] bool has_migration_candidates() const noexcept {
    return !migration_candidates_.empty();
  }
  /// Drain the deduped list of owned nodes whose last set_position landed
  /// outside this shard's strip (appended to `out`; marks cleared so a
  /// node that keeps moving re-registers next window).
  void take_migration_candidates(std::vector<std::uint32_t>& out) {
    for (const std::uint32_t id : migration_candidates_) {
      migration_marked_[id] = 0;
      out.push_back(id);
    }
    migration_candidates_.clear();
  }

 private:
  struct PendingRx {
    des::Time arrival;     ///< absolute signal-start time at this receiver
    double power_mw;       ///< drawn from the model at transmit time (linear)
    std::uint32_t rx_id;
    std::uint32_t order;   ///< grid-query index; tie-break for equal arrivals
    std::uint32_t slot;    ///< receiver's SignalMap slot, set at signal start
    bool could_decode;     ///< evaluated at signal start (radio state then)
  };

  /// One in-flight broadcast: the frame plus its receiver list, sorted by
  /// arrival, with two cursors merging the start and end streams. Slots are
  /// unique_ptr so references stay stable when a re-entrant transmit()
  /// grows the slot vector.
  struct Transmission {
    Airframe frame;
    des::Time duration = 0.0;
    std::vector<PendingRx> receivers;
    std::size_t next_start = 0;
    std::size_t next_end = 0;
  };

  /// Process every start/end due now for the transmission in `slot`, then
  /// re-schedule for the next due time (or retire the slot when done).
  void advance_transmission(std::uint32_t slot);
  std::uint32_t acquire_transmission();
  void release_transmission(std::uint32_t slot);

  /// Thread-local pool of retired Transmission records (receiver-list
  /// capacity retained). Channels are built and torn down once per run —
  /// serially or one per shard worker — so without this every run re-grows
  /// every receiver vector from scratch; with it, warm runs on the same
  /// thread are allocation-free here.
  static std::vector<std::unique_ptr<Transmission>>& spare_transmissions();
  /// Thread-local grid-query scratch, same rationale.
  static std::vector<std::uint32_t>& query_scratch();

  /// Shared body of transmit() and inject_remote(): build the receiver
  /// walk for `frame` put on the air at `tx_time` for `duration`. In shard
  /// mode, skips non-owned receivers (keeping their global order indices)
  /// and, when `record_handoffs`, appends one ShardHandoff per remote
  /// shard whose strip the signal reaches.
  void start_transmission(const Airframe& frame, des::Time tx_time,
                          des::Time duration, bool record_handoffs);

  /// Pop heap entries at or before `now` (the closed window run_until(now)
  /// already executed them), then return the front or +infinity.
  static des::Time heap_front(std::vector<des::Time>& heap, des::Time now);

  des::Scheduler* scheduler_;
  std::unique_ptr<PropagationModel> model_;
  RadioParams params_;
  // Linear-domain mirrors of the dBm params, converted once: the transmit
  // loop draws and thresholds per receiver in mW, so no per-draw pow/log.
  double tx_power_mw_;
  double rx_threshold_mw_;
  double interference_cutoff_mw_;
  double nominal_range_;
  double interference_range_;
  /// Exactly one of owned_grid_/shared_grid_ is set; grid_ views it.
  /// shared_grid_ is immutable (concurrent const queries from all shard
  /// workers); owned_grid_ additionally serves set_position.
  std::unique_ptr<geom::SpatialGrid> owned_grid_;
  std::shared_ptr<const geom::SpatialGrid> shared_grid_;
  const geom::SpatialGrid* grid_ = nullptr;
  std::vector<std::unique_ptr<Transceiver>> transceivers_;
  des::Rng rng_;
  /// Base key of the counter-based per-link streams (des::LinkRng). Taken
  /// from rng_'s seed, which is fork-derived and therefore identical on
  /// every shard of a run — the property that makes a replayed receiver
  /// walk reproduce the serial draws exactly.
  std::uint64_t link_seed_base_ = 0;
  /// Cached model_->stochastic(): per-receiver branch on the hot path.
  bool stochastic_ = false;
  ChannelStats stats_;
  std::vector<std::uint32_t> frame_counters_;  ///< per-sender frame-id counters
  std::vector<std::unique_ptr<Transmission>> transmissions_;
  std::vector<std::uint32_t> free_transmissions_;
  ShardSpec shard_;
  /// outboxes_[dst]: handoffs for shard dst accumulated this window.
  std::vector<std::vector<ShardHandoff>> outboxes_;
  /// Min-heaps of lookahead-relevant future times (see note_armed_tx).
  std::vector<des::Time> armed_tx_heap_;
  std::vector<des::Time> phy_event_heap_;
  /// Scratch: shards already handed the current transmission (reset by id).
  std::vector<std::uint32_t> handoff_mark_;
  std::uint32_t handoff_epoch_ = 0;
  /// Owned nodes whose position left this strip (deduped via the mark
  /// array); drained by the sharded engine at window barriers.
  std::vector<std::uint32_t> migration_candidates_;
  std::vector<std::uint8_t> migration_marked_;
};

}  // namespace rrnet::phy
