// Shared broadcast medium: delivers each transmission to every transceiver
// within the interference range, after per-receiver propagation delay, with
// per-receiver received power drawn from the propagation model.
//
// Receiver scheduling is fused: instead of two scheduler events per
// receiver (signal start + signal end), each transmission owns a pooled
// Transmission record holding its receiver list sorted by arrival, and a
// single self-rescheduling walker event advances a two-pointer merge of
// the start stream (arrival_i) and the end stream (arrival_i + duration).
// The heap holds at most one entry per transmission in flight instead of
// O(receivers), which keeps it shallow exactly when §3 floods make
// neighborhoods dense. Start/end interleaving, power draws (grid-query
// order at transmit time), and same-timestamp ordering (starts before
// ends; equal arrivals in query order) are preserved bit-for-bit.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "des/rng.hpp"
#include "des/scheduler.hpp"
#include "geom/spatial_grid.hpp"
#include "phy/propagation.hpp"
#include "phy/radio.hpp"
#include "phy/transceiver.hpp"

namespace rrnet::phy {

/// Channel-wide counters (all nodes aggregated).
struct ChannelStats {
  std::uint64_t transmissions = 0;  ///< frames put on the air
  std::uint64_t deliveries = 0;     ///< successful (frame, receiver) decodes
};

class Channel {
 public:
  /// `positions[i]` is the location of node i; one transceiver is created
  /// per node. The scheduler, model, and params must outlive the channel.
  Channel(des::Scheduler& scheduler, const geom::Terrain& terrain,
          std::unique_ptr<PropagationModel> model, RadioParams params,
          std::vector<geom::Vec2> positions, des::Rng rng);

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  [[nodiscard]] std::size_t node_count() const noexcept {
    return transceivers_.size();
  }
  [[nodiscard]] Transceiver& transceiver(std::uint32_t id);
  [[nodiscard]] const Transceiver& transceiver(std::uint32_t id) const;
  [[nodiscard]] geom::Vec2 position(std::uint32_t id) const;
  [[nodiscard]] const RadioParams& params() const noexcept { return params_; }
  [[nodiscard]] const PropagationModel& model() const noexcept { return *model_; }
  [[nodiscard]] des::Scheduler& scheduler() const noexcept { return *scheduler_; }

  /// Start transmitting `frame` from `frame.sender`. Returns false (and
  /// drops the frame) if that radio is off or already transmitting.
  bool transmit(const Airframe& frame);

  /// Distance at which the mean rx power equals the rx threshold — the
  /// nominal transmission range of every node.
  [[nodiscard]] double nominal_range_m() const noexcept { return nominal_range_; }
  /// Distance beyond which signals are ignored entirely (below the noise
  /// floor at mean power; they could not move any SINR perceptibly).
  [[nodiscard]] double interference_range_m() const noexcept {
    return interference_range_;
  }

  [[nodiscard]] const ChannelStats& stats() const noexcept { return stats_; }

  /// Fresh unique frame id (MACs stamp outgoing frames with this).
  [[nodiscard]] std::uint64_t next_frame_id() noexcept { return ++last_frame_id_; }

  /// Move a node (mobility models). Takes effect for transmissions that
  /// start after the call; signals already in flight keep the powers
  /// computed at their transmit time.
  void set_position(std::uint32_t id, geom::Vec2 position);

 private:
  struct PendingRx {
    des::Time arrival;     ///< absolute signal-start time at this receiver
    double power_mw;       ///< drawn from the model at transmit time (linear)
    std::uint32_t rx_id;
    std::uint32_t order;   ///< grid-query index; tie-break for equal arrivals
    std::uint32_t slot;    ///< receiver's SignalMap slot, set at signal start
    bool could_decode;     ///< evaluated at signal start (radio state then)
  };

  /// One in-flight broadcast: the frame plus its receiver list, sorted by
  /// arrival, with two cursors merging the start and end streams. Slots are
  /// unique_ptr so references stay stable when a re-entrant transmit()
  /// grows the slot vector.
  struct Transmission {
    Airframe frame;
    des::Time duration = 0.0;
    std::vector<PendingRx> receivers;
    std::size_t next_start = 0;
    std::size_t next_end = 0;
  };

  /// Process every start/end due now for the transmission in `slot`, then
  /// re-schedule for the next due time (or retire the slot when done).
  void advance_transmission(std::uint32_t slot);
  std::uint32_t acquire_transmission();
  void release_transmission(std::uint32_t slot);

  des::Scheduler* scheduler_;
  std::unique_ptr<PropagationModel> model_;
  RadioParams params_;
  // Linear-domain mirrors of the dBm params, converted once: the transmit
  // loop draws and thresholds per receiver in mW, so no per-draw pow/log.
  double tx_power_mw_;
  double rx_threshold_mw_;
  double interference_cutoff_mw_;
  geom::SpatialGrid grid_;
  std::vector<std::unique_ptr<Transceiver>> transceivers_;
  des::Rng rng_;
  double nominal_range_;
  double interference_range_;
  ChannelStats stats_;
  std::uint64_t last_frame_id_ = 0;
  mutable std::vector<std::uint32_t> query_buffer_;
  std::vector<std::unique_ptr<Transmission>> transmissions_;
  std::vector<std::uint32_t> free_transmissions_;
};

}  // namespace rrnet::phy
