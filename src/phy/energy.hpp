// Per-node energy accounting by radio state dwell time.
//
// The paper motivates Routeless Routing partly by energy (nodes may sleep at
// will); the meter lets experiments report per-protocol energy draw.
#pragma once

#include "des/time.hpp"
#include "phy/radio.hpp"

namespace rrnet::phy {

/// Power draw per radio state, watts. Defaults are in the range of early
/// sensor radios (e.g. 50-100 mW class transceivers).
struct EnergyProfile {
  double tx_w = 0.081;
  double rx_w = 0.030;   ///< also used while locked on a frame
  double idle_w = 0.030; ///< listening
  double off_w = 0.0;    ///< sleeping / failed
};

class EnergyMeter {
 public:
  EnergyMeter(const EnergyProfile& profile, des::Time start_time) noexcept
      : profile_(profile), last_time_(start_time) {}

  /// Record that the radio was in `state` from the last recorded instant
  /// until `now`. Call on every state change and once at the end of the run.
  void account(RadioState state, des::Time now) noexcept;

  [[nodiscard]] double consumed_joules() const noexcept { return joules_; }
  [[nodiscard]] des::Time time_in(RadioState state) const noexcept;

 private:
  EnergyProfile profile_;
  des::Time last_time_;
  double joules_ = 0.0;
  des::Time dwell_[4] = {0.0, 0.0, 0.0, 0.0};
};

}  // namespace rrnet::phy
