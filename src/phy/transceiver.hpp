// Half-duplex transceiver state machine with cumulative-interference SINR
// reception. Owned and driven by the Channel; exposes carrier sense and
// on/off (sleep / failure) control to upper layers.
#pragma once

#include <cstdint>
#include <vector>

#include <optional>

#include "des/scheduler.hpp"
#include "des/time.hpp"
#include "phy/energy.hpp"
#include "phy/radio.hpp"
#include "util/pooled_containers.hpp"

namespace rrnet::phy {

/// Per-transceiver reception counters. Every arrival bumps
/// `signals_arrived` and resolves into exactly one terminal outcome
/// (decoded / collided / missed_busy / below_threshold / while_off) — or
/// none when the radio is switched off mid-reception — so
///   decoded + collided + missed_busy + below_threshold + while_off
///     <= signals_arrived
/// holds by construction (the rx + drops <= potential-receptions
/// consistency invariant checked in tests/obs_test.cpp).
struct TransceiverStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t signals_arrived = 0;    ///< all arrivals, however they end
  std::uint64_t frames_decoded = 0;
  std::uint64_t frames_collided = 0;    ///< locked but SINR dropped
  std::uint64_t frames_missed_busy = 0; ///< arrived while Tx/Rx-locked
  std::uint64_t frames_below_threshold = 0;
  std::uint64_t frames_while_off = 0;
  std::uint64_t tx_dropped_off = 0;     ///< transmit attempts while off
};

class Channel;

class Transceiver : public util::PoolAllocated {
 public:
  Transceiver(std::uint32_t node_id, const RadioParams& params)
      : node_id_(node_id), params_(&params) {
    // One pooled chunk covers the typical concurrent-signal count; denser
    // neighborhoods grow onto the heap per instance, which is rare and
    // bounded.
    signals_.reserve(kReservedSignals);
  }

  Transceiver(const Transceiver&) = delete;
  Transceiver& operator=(const Transceiver&) = delete;
  Transceiver(Transceiver&&) = default;
  Transceiver& operator=(Transceiver&&) = default;

  /// Attach the MAC; must be called before any traffic reaches this node.
  void attach(RadioListener& listener) noexcept { listener_ = &listener; }

  [[nodiscard]] std::uint32_t node_id() const noexcept { return node_id_; }
  [[nodiscard]] RadioState state() const noexcept { return state_; }
  [[nodiscard]] bool is_off() const noexcept { return state_ == RadioState::Off; }

  /// Carrier sense: true when transmitting, locked on a frame, or the total
  /// in-air power at this node exceeds the CS threshold.
  [[nodiscard]] bool medium_busy() const noexcept;

  /// Total received power currently on the air at this node (mW).
  [[nodiscard]] double total_rx_power_mw() const noexcept { return total_power_mw_; }

  /// Power the radio down: ongoing receptions are lost, and a transmission
  /// in progress is truncated (receivers will still see its full airtime;
  /// modeling early TX cut-off is not needed for the paper's failure model,
  /// which flips radios between packets at Poisson times).
  void turn_off();
  void turn_on();

  [[nodiscard]] const TransceiverStats& stats() const noexcept { return stats_; }

  /// Start metering energy by radio-state dwell time. `clock` must outlive
  /// the transceiver; metering starts at the clock's current time.
  void enable_energy(const EnergyProfile& profile, const des::Scheduler& clock);
  /// Null unless enable_energy() was called.
  [[nodiscard]] const EnergyMeter* energy_meter() const noexcept {
    return meter_.has_value() ? &*meter_ : nullptr;
  }
  /// Account the dwell time of the current state up to now (call before
  /// reading the meter at the end of a run).
  void finalize_energy();

 private:
  friend class Channel;

  struct ActiveSignal {
    std::uint64_t frame_id;
    double power_mw;
    des::Time end_time;
  };
  static constexpr std::size_t kReservedSignals = 8;

  // Channel-driven events.
  void begin_transmit(std::uint64_t frame_id);
  void end_transmit(std::uint64_t frame_id, des::Time now);
  void signal_arrives(const Airframe& frame, double power_dbm, des::Time now,
                      des::Time end_time);
  void signal_ends(const Airframe& frame, des::Time now);

  /// Switch radio state, accounting the dwell time of the old state.
  void set_state(RadioState next);
  void recompute_busy();
  [[nodiscard]] double interference_mw_excluding(std::uint64_t frame_id) const noexcept;
  [[nodiscard]] double sinr_db(double signal_mw, std::uint64_t frame_id) const noexcept;

  std::uint32_t node_id_;
  const RadioParams* params_;
  RadioListener* listener_ = nullptr;
  RadioState state_ = RadioState::Idle;
  std::vector<ActiveSignal, util::NodePoolAllocator<ActiveSignal>> signals_;
  double total_power_mw_ = 0.0;
  // Locked (being-decoded) frame bookkeeping.
  std::uint64_t locked_frame_ = 0;
  bool has_lock_ = false;
  bool lock_corrupted_ = false;
  double locked_power_dbm_ = 0.0;
  des::Time locked_start_ = 0.0;
  std::uint64_t tx_frame_ = 0;
  const des::Scheduler* clock_ = nullptr;
  std::optional<EnergyMeter> meter_;
  bool last_busy_ = false;
  TransceiverStats stats_;
};

}  // namespace rrnet::phy
