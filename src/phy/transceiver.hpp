// Half-duplex transceiver state machine with cumulative-interference SINR
// reception. Owned and driven by the Channel; exposes carrier sense and
// on/off (sleep / failure) control to upper layers.
#pragma once

#include <cstdint>

#include <optional>

#include "des/scheduler.hpp"
#include "des/time.hpp"
#include "phy/energy.hpp"
#include "phy/radio.hpp"
#include "phy/signal_map.hpp"
#include "phy/units.hpp"

namespace rrnet::phy {

/// Per-transceiver reception counters. Every arrival bumps
/// `signals_arrived` and resolves into exactly one terminal outcome
/// (decoded / collided / missed_busy / below_threshold / while_off /
/// aborted_off) — a frame being decoded when the radio switches off is
/// the aborted_off case — so
///   decoded + collided + missed_busy + below_threshold + while_off
///     + aborted_off == signals_arrived
/// holds by construction (the rx + drops == potential-receptions
/// conservation invariant checked exactly in tests/obs_test.cpp).
struct TransceiverStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t signals_arrived = 0;    ///< all arrivals, however they end
  std::uint64_t frames_decoded = 0;
  std::uint64_t frames_collided = 0;    ///< locked but SINR dropped
  std::uint64_t frames_missed_busy = 0; ///< arrived while Tx/Rx-locked
  std::uint64_t frames_below_threshold = 0;
  std::uint64_t frames_while_off = 0;
  std::uint64_t frames_aborted_off = 0; ///< decode in progress, radio cut
  std::uint64_t tx_dropped_off = 0;     ///< transmit attempts while off
  std::uint64_t tx_dropped_busy = 0;    ///< transmit attempts while Tx-busy
};

class Channel;

/// Everything of a radio that must survive a cross-shard node migration.
/// The energy meter is copied VERBATIM — no account() at the boundary:
/// splitting one dwell interval into two accumulations is not bitwise equal
/// to accounting it once, and the sharded bit-identity gates compare joules
/// exactly.
struct TransceiverSnapshot {
  TransceiverStats stats;
  bool off = false;
  std::optional<EnergyMeter> meter;
};

class Transceiver : public util::PoolAllocated {
 public:
  Transceiver(std::uint32_t node_id, const RadioParams& params)
      : node_id_(node_id),
        params_(&params),
        // Linear-domain constants, converted once: carrier sense, SINR
        // gating, and noise addition run per signal event, and a pow()
        // per comparison is the difference between O(1) bookkeeping and
        // a transcendental call dominating the dense-flood hot path.
        cs_threshold_mw_(dbm_to_mw(params.cs_threshold_dbm)),
        rx_threshold_mw_(dbm_to_mw(params.rx_threshold_dbm)),
        noise_floor_mw_(dbm_to_mw(params.noise_floor_dbm)),
        sinr_threshold_ratio_(db_to_ratio(params.sinr_threshold_db)) {}

  Transceiver(const Transceiver&) = delete;
  Transceiver& operator=(const Transceiver&) = delete;
  Transceiver(Transceiver&&) = default;
  Transceiver& operator=(Transceiver&&) = default;

  /// Attach the MAC; must be called before any traffic reaches this node.
  void attach(RadioListener& listener) noexcept { listener_ = &listener; }

  [[nodiscard]] std::uint32_t node_id() const noexcept { return node_id_; }
  [[nodiscard]] RadioState state() const noexcept { return state_; }
  [[nodiscard]] bool is_off() const noexcept { return state_ == RadioState::Off; }

  /// Carrier sense: true when transmitting, locked on a frame, or the total
  /// in-air power at this node exceeds the CS threshold.
  [[nodiscard]] bool medium_busy() const noexcept;

  /// Total received power currently on the air at this node (mW); exactly
  /// 0.0 on a quiet medium (SignalMap resets the incremental sum whenever
  /// the signal set empties, so carrier sense cannot drift).
  [[nodiscard]] double total_rx_power_mw() const noexcept {
    return signals_.total_power_mw();
  }

  /// Power the radio down: ongoing receptions are lost, and a transmission
  /// in progress is truncated (receivers will still see its full airtime;
  /// modeling early TX cut-off is not needed for the paper's failure model,
  /// which flips radios between packets at Poisson times).
  void turn_off();
  void turn_on();

  [[nodiscard]] const TransceiverStats& stats() const noexcept { return stats_; }

  /// Start metering energy by radio-state dwell time. `clock` must outlive
  /// the transceiver; metering starts at the clock's current time.
  void enable_energy(const EnergyProfile& profile, const des::Scheduler& clock);
  /// Null unless enable_energy() was called.
  [[nodiscard]] const EnergyMeter* energy_meter() const noexcept {
    return meter_.has_value() ? &*meter_ : nullptr;
  }
  /// Account the dwell time of the current state up to now (call before
  /// reading the meter at the end of a run).
  void finalize_energy();

  // --- Node migration (sharded dynamic ownership) ---

  /// True when nothing references this radio from the event horizon: no
  /// signal on the air at it, no decode lock, not mid-transmission. Off
  /// counts as quiescent — the failure schedule is replicated on every
  /// shard, so the adopting shard continues the off/on cycle.
  [[nodiscard]] bool quiescent() const noexcept {
    return (state_ == RadioState::Idle || state_ == RadioState::Off) &&
           signals_.empty() && !has_lock_;
  }
  [[nodiscard]] TransceiverSnapshot export_snapshot() const {
    return {stats_, state_ == RadioState::Off, meter_};
  }
  /// Restore an evicted radio's state onto a freshly adopted one. Only
  /// valid for quiescent snapshots: raw field assignment, deliberately NOT
  /// set_state() (the meter carries its own last-accounted instant).
  void import_snapshot(const TransceiverSnapshot& snap) {
    stats_ = snap.stats;
    state_ = snap.off ? RadioState::Off : RadioState::Idle;
    meter_ = snap.meter;
  }

 private:
  friend class Channel;

  // Channel-driven events.
  void begin_transmit(std::uint64_t frame_id);
  void end_transmit(std::uint64_t frame_id, des::Time now);
  /// Returns the signal's slot (SignalMap::kNoSlot when the radio is off);
  /// the channel hands it back to signal_ends so neither endpoint scans.
  /// Power is in mW — the whole arrival path (threshold, SINR, map) runs
  /// in the linear domain; dBm reappears only in the decode-time RxInfo.
  std::uint32_t signal_arrives(const Airframe& frame, double power_mw,
                               des::Time now, des::Time end_time);
  /// `slot` is the value signal_arrives returned; stale slots (radio was
  /// cycled off in between) are detected by frame-id mismatch and ignored.
  void signal_ends(const Airframe& frame, std::uint32_t slot, des::Time now);

  /// Switch radio state, accounting the dwell time of the old state.
  void set_state(RadioState next);
  void recompute_busy();
  /// Noise floor plus everything on the air except a signal of power
  /// `own_mw`. O(1): the SoA map keeps the running total, so exclusion is
  /// one subtraction instead of the AoS scan this replaces.
  [[nodiscard]] double interference_mw_excluding_own(double own_mw) const noexcept;
  /// SINR gate in the linear domain (one divide; no pow/log per event).
  [[nodiscard]] bool sinr_clears_threshold(double signal_mw) const noexcept;

  std::uint32_t node_id_;
  const RadioParams* params_;
  double cs_threshold_mw_;
  double rx_threshold_mw_;
  double noise_floor_mw_;
  double sinr_threshold_ratio_;
  RadioListener* listener_ = nullptr;
  RadioState state_ = RadioState::Idle;
  SignalMap signals_;
  // Locked (being-decoded) frame bookkeeping.
  std::uint64_t locked_frame_ = 0;
  bool has_lock_ = false;
  bool lock_corrupted_ = false;
  double locked_power_mw_ = 0.0;  ///< RxInfo converts to dBm at decode
  des::Time locked_start_ = 0.0;
  std::uint64_t tx_frame_ = 0;
  const des::Scheduler* clock_ = nullptr;
  std::optional<EnergyMeter> meter_;
  bool last_busy_ = false;
  TransceiverStats stats_;
};

}  // namespace rrnet::phy
