#include "phy/failure.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace rrnet::phy {

FailureModel::FailureModel(des::Scheduler& scheduler, Channel& channel,
                           FailureConfig config, des::Rng rng)
    : scheduler_(&scheduler),
      channel_(&channel),
      config_(std::move(config)),
      rng_(rng),
      states_(channel.node_count()) {
  RRNET_EXPECTS(config_.off_fraction >= 0.0 && config_.off_fraction < 1.0);
  RRNET_EXPECTS(config_.mean_cycle_s > 0.0);
}

des::Time FailureModel::mean_on() const noexcept {
  return config_.mean_cycle_s * (1.0 - config_.off_fraction);
}

des::Time FailureModel::mean_off() const noexcept {
  return config_.mean_cycle_s * config_.off_fraction;
}

void FailureModel::start() {
  RRNET_EXPECTS(!started_);
  started_ = true;
  if (config_.off_fraction <= 0.0) return;
  for (std::uint32_t node = 0; node < states_.size(); ++node) {
    if (std::find(config_.exempt_nodes.begin(), config_.exempt_nodes.end(),
                  node) != config_.exempt_nodes.end()) {
      continue;
    }
    NodeState& st = states_[node];
    st.managed = true;
    st.last_change = scheduler_->now();
    // Stationary initial state. The draw happens on every shard of a
    // sharded run (the whole model is replicated so the exponential stream
    // stays in serial order); only the owner touches the radio.
    if (rng_.bernoulli(config_.off_fraction)) {
      st.off = true;
      if (channel_->owns(node)) channel_->transceiver(node).turn_off();
    }
    schedule_toggle(node);
  }
}

void FailureModel::schedule_toggle(std::uint32_t node) {
  NodeState& st = states_[node];
  const des::Time dwell =
      rng_.exponential(st.off ? mean_off() : mean_on());
  scheduler_->schedule_in(dwell, [this, node]() {
    NodeState& s = states_[node];
    const des::Time now = scheduler_->now();
    // Ownership is checked at toggle time, not schedule time: a node that
    // migrated since the last toggle is flipped by its new owner (whose
    // replicated state machine agrees on s.off) and skipped by the old.
    if (s.off) {
      s.off_accum += now - s.last_change;
      if (channel_->owns(node)) channel_->transceiver(node).turn_on();
      s.off = false;
    } else {
      if (channel_->owns(node)) channel_->transceiver(node).turn_off();
      s.off = true;
    }
    s.last_change = now;
    schedule_toggle(node);
  });
}

double FailureModel::observed_off_fraction(std::uint32_t node) const {
  RRNET_EXPECTS(node < states_.size());
  const NodeState& st = states_[node];
  const des::Time now = scheduler_->now();
  if (now <= 0.0) return 0.0;
  des::Time off = st.off_accum;
  if (st.off) off += now - st.last_change;
  return off / now;
}

}  // namespace rrnet::phy
