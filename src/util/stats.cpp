#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace rrnet::util {

void Accumulator::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::mean() const noexcept {
  return n_ == 0 ? std::numeric_limits<double>::quiet_NaN() : mean_;
}

double Accumulator::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

Summary Accumulator::summary() const noexcept {
  Summary s;
  s.count = n_;
  s.mean = mean();
  s.stddev = stddev();
  s.min = min_;
  s.max = max_;
  // ci95 is pinned to 0 for n < 2: a half-width is meaningless for a single
  // observation and must never leak NaN into serialized sweep tables.
  if (n_ >= 2) {
    s.ci95 = 1.96 * s.stddev / std::sqrt(static_cast<double>(n_));
  }
  return s;
}

double RatioCounter::ratio() const noexcept {
  if (total_ == 0) return std::numeric_limits<double>::quiet_NaN();
  return static_cast<double>(hits_) / static_cast<double>(total_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  RRNET_EXPECTS(hi > lo);
  RRNET_EXPECTS(bins > 0);
}

void Histogram::add(double x) noexcept {
  ++total_;
  std::size_t i;
  if (x < lo_) {
    ++underflow_;
    i = 0;
  } else if (x >= hi_) {
    ++overflow_;
    i = counts_.size() - 1;
  } else {
    i = static_cast<std::size_t>((x - lo_) / width_);
    i = std::min(i, counts_.size() - 1);
  }
  ++counts_[i];
}

std::uint64_t Histogram::bin_count(std::size_t i) const {
  RRNET_EXPECTS(i < counts_.size());
  return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  RRNET_EXPECTS(i < counts_.size());
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + width_; }

double Histogram::quantile(double q) const {
  RRNET_EXPECTS(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return std::numeric_limits<double>::quiet_NaN();
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum > target) return 0.5 * (bin_lo(i) + bin_hi(i));
  }
  return bin_hi(counts_.size() - 1);
}

Summary summarize(const std::vector<double>& xs) noexcept {
  Accumulator acc;
  for (double x : xs) acc.add(x);
  return acc.summary();
}

}  // namespace rrnet::util
