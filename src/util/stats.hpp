// Streaming statistics: Welford accumulators, summaries with confidence
// intervals, fixed-bin histograms, and simple ratio counters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace rrnet::util {

/// Point summary of a sample: count, mean, stddev, extrema, and a normal
/// approximation half-width for a 95% confidence interval.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = std::numeric_limits<double>::quiet_NaN();
  double max = std::numeric_limits<double>::quiet_NaN();
  double ci95 = 0.0;  ///< half-width of the 95% CI on the mean (0 if count < 2)
};

/// Numerically stable single-pass mean/variance accumulator (Welford).
class Accumulator {
 public:
  void add(double x) noexcept;
  /// Merge another accumulator into this one (parallel-reduction friendly).
  void merge(const Accumulator& other) noexcept;
  void reset() noexcept { *this = Accumulator{}; }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  /// Mean of the sample; NaN when empty.
  [[nodiscard]] double mean() const noexcept;
  /// Unbiased sample variance; 0 when count < 2.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }
  [[nodiscard]] Summary summary() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::quiet_NaN();
  double max_ = std::numeric_limits<double>::quiet_NaN();
};

/// Counter for success/total ratios (e.g. delivery ratio).
class RatioCounter {
 public:
  void add(bool success) noexcept {
    ++total_;
    if (success) ++hits_;
  }
  void add_hits(std::uint64_t hits, std::uint64_t total) noexcept {
    hits_ += hits;
    total_ += total;
  }
  void merge(const RatioCounter& other) noexcept {
    hits_ += other.hits_;
    total_ += other.total_;
  }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  /// hits/total; NaN when total == 0.
  [[nodiscard]] double ratio() const noexcept;

 private:
  std::uint64_t hits_ = 0;
  std::uint64_t total_ = 0;
};

/// Fixed-width binned histogram over [lo, hi); out-of-range samples are
/// clamped into the first/last bin and counted separately.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const;
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  /// Approximate quantile from bin midpoints; q in [0, 1].
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

/// Compute a Summary from a raw sample vector (used by sweep aggregation).
[[nodiscard]] Summary summarize(const std::vector<double>& xs) noexcept;

}  // namespace rrnet::util
