// Lightweight contract checking (C++ Core Guidelines I.6/I.8 style).
//
// RRNET_EXPECTS / RRNET_ENSURES throw ContractViolation so that unit tests can
// assert on precondition failures without aborting the whole test binary.
// RRNET_ASSERT is for internal invariants and behaves the same way.
#pragma once

#include <stdexcept>
#include <string>

namespace rrnet {

/// Thrown when a precondition, postcondition, or internal invariant fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace rrnet

#define RRNET_EXPECTS(cond)                                                  \
  do {                                                                       \
    if (!(cond))                                                             \
      ::rrnet::detail::contract_fail("precondition", #cond, __FILE__,        \
                                     __LINE__);                              \
  } while (false)

#define RRNET_ENSURES(cond)                                                  \
  do {                                                                       \
    if (!(cond))                                                             \
      ::rrnet::detail::contract_fail("postcondition", #cond, __FILE__,       \
                                     __LINE__);                              \
  } while (false)

#define RRNET_ASSERT(cond)                                                   \
  do {                                                                       \
    if (!(cond))                                                             \
      ::rrnet::detail::contract_fail("invariant", #cond, __FILE__, __LINE__);\
  } while (false)
