// Node-based standard containers backed by thread-local payload pools.
//
// unordered_map / unordered_set / list allocate one heap node per element,
// and libstdc++ never recycles erased nodes. For per-packet bookkeeping
// (duplicate caches, election sessions, relay state) that is one or more
// heap round trips per packet per node — the dominant steady-state
// allocation source in the scenario benches once payloads are pooled.
//
// NodePoolAllocator is stateless: every allocation goes to the calling
// thread's PayloadPool keyed by the allocator's *own* value_type. Container
// internals rebind the allocator to their node type, so each node type gets
// a pool whose chunk size matches exactly (a list node and a hash node of
// the same element type land in different pools). Variable-size requests —
// hash bucket arrays — hit the same pool's size-mismatch heap fallback,
// which is fine: bucket growth is geometric and stops once a container
// reaches steady size.
//
// All instances compare equal, so containers move/swap freely within a
// thread. Like everything PayloadPool-based, these containers must not
// migrate across threads (replication workers are shared-nothing).
#pragma once

#include <cstddef>
#include <functional>
#include <list>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "util/pool.hpp"

namespace rrnet::util {

template <typename T>
class NodePoolAllocator {
 public:
  using value_type = T;

  NodePoolAllocator() noexcept = default;
  template <typename U>
  NodePoolAllocator(const NodePoolAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(payload_pool<NodePoolAllocator<T>>().allocate(
        n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t) noexcept { PayloadPool::release(p); }

  template <typename U>
  bool operator==(const NodePoolAllocator<U>&) const noexcept {
    return true;
  }
};

template <typename K, typename V, typename Hash = std::hash<K>>
using PooledUnorderedMap =
    std::unordered_map<K, V, Hash, std::equal_to<K>,
                       NodePoolAllocator<std::pair<const K, V>>>;

template <typename K, typename Hash = std::hash<K>>
using PooledUnorderedSet =
    std::unordered_set<K, Hash, std::equal_to<K>, NodePoolAllocator<K>>;

template <typename T>
using PooledList = std::list<T, NodePoolAllocator<T>>;

}  // namespace rrnet::util
