// Tiny leveled logger. Off (Warn) by default so simulations stay quiet;
// tests and examples can raise verbosity per-scope.
#pragma once

#include <sstream>
#include <string>

namespace rrnet::util {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4 };

/// Process-wide minimum level; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emit a single log line to stderr (thread-safe, one syscall per line).
void log_line(LogLevel level, const std::string& component,
              const std::string& message);

/// RAII helper that restores the previous log level (handy in tests).
class ScopedLogLevel {
 public:
  explicit ScopedLogLevel(LogLevel level) noexcept
      : previous_(log_level()) {
    set_log_level(level);
  }
  ~ScopedLogLevel() { set_log_level(previous_); }
  ScopedLogLevel(const ScopedLogLevel&) = delete;
  ScopedLogLevel& operator=(const ScopedLogLevel&) = delete;

 private:
  LogLevel previous_;
};

}  // namespace rrnet::util

#define RRNET_LOG(level, component, expr)                                   \
  do {                                                                      \
    if (static_cast<int>(level) >=                                          \
        static_cast<int>(::rrnet::util::log_level())) {                     \
      std::ostringstream rrnet_log_oss;                                     \
      rrnet_log_oss << expr;                                                \
      ::rrnet::util::log_line(level, component, rrnet_log_oss.str());       \
    }                                                                       \
  } while (false)

#define RRNET_DEBUG(component, expr) \
  RRNET_LOG(::rrnet::util::LogLevel::Debug, component, expr)
#define RRNET_INFO(component, expr) \
  RRNET_LOG(::rrnet::util::LogLevel::Info, component, expr)
#define RRNET_WARN(component, expr) \
  RRNET_LOG(::rrnet::util::LogLevel::Warn, component, expr)
