#include "util/flags.hpp"

#include <cstdlib>
#include <stdexcept>

#include "util/contracts.hpp"

namespace rrnet::util {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    RRNET_EXPECTS(!body.empty() && body[0] != '=');
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--key value" unless the next token is another flag or absent; then the
    // flag is a bare boolean.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
}

bool Flags::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Flags::get_string(const std::string& key,
                              const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& key,
                            std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw ContractViolation("flag --" + key + " is not an integer: " +
                            it->second);
  }
}

double Flags::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw ContractViolation("flag --" + key + " is not a number: " +
                            it->second);
  }
}

bool Flags::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw ContractViolation("flag --" + key + " is not a boolean: " + v);
}

void Flags::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

}  // namespace rrnet::util
