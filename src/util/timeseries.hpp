// Bucketed time series: per-interval counts and means of a metric over
// simulated time (e.g. delivered packets per second, delay over time).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/csv.hpp"

namespace rrnet::util {

class TimeSeries {
 public:
  /// Buckets of `bucket_width` seconds starting at `start`. Samples before
  /// `start` are dropped; the series grows to cover any later time.
  explicit TimeSeries(double bucket_width, double start = 0.0);

  /// Record one observation of `value` at time `t`.
  void add(double t, double value = 1.0);

  [[nodiscard]] std::size_t buckets() const noexcept { return counts_.size(); }
  [[nodiscard]] double bucket_start(std::size_t i) const noexcept;
  [[nodiscard]] std::uint64_t count(std::size_t i) const;
  [[nodiscard]] double sum(std::size_t i) const;
  /// Mean of the values in bucket i; NaN when empty.
  [[nodiscard]] double mean(std::size_t i) const;
  /// count / bucket_width: observations per second in bucket i.
  [[nodiscard]] double rate(std::size_t i) const;

  /// Bucket index with the largest count (0 if the series is empty).
  [[nodiscard]] std::size_t peak_bucket() const noexcept;

  /// Render as a table: t_start, count, rate_per_s, mean_value.
  [[nodiscard]] Table to_table(const std::string& value_label = "value") const;

 private:
  double bucket_width_;
  double start_;
  std::vector<std::uint64_t> counts_;
  std::vector<double> sums_;
};

}  // namespace rrnet::util
