#include "util/csv.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/contracts.hpp"

namespace rrnet::util {

std::string cell_to_string(const Cell& cell, int precision) {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&cell)) return std::to_string(*i);
  const double d = std::get<double>(cell);
  // Non-finite values (e.g. the mean of an empty Accumulator) render as an
  // empty cell: "nan"/"inf" literals break downstream CSV tooling.
  if (!std::isfinite(d)) return {};
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << d;
  return oss.str();
}

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  RRNET_EXPECTS(!columns_.empty());
}

void Table::add_row(std::vector<Cell> row) {
  RRNET_EXPECTS(row.size() == columns_.size());
  rows_.push_back(std::move(row));
}

const Cell& Table::at(std::size_t row, std::size_t col) const {
  RRNET_EXPECTS(row < rows_.size());
  RRNET_EXPECTS(col < columns_.size());
  return rows_[row][col];
}

std::size_t Table::column_index(const std::string& name) const {
  const auto it = std::find(columns_.begin(), columns_.end(), name);
  RRNET_EXPECTS(it != columns_.end());
  return static_cast<std::size_t>(it - columns_.begin());
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void Table::write_csv(std::ostream& os, int precision) const {
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c > 0) os << ',';
    os << csv_escape(columns_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << csv_escape(cell_to_string(row[c], precision));
    }
    os << '\n';
  }
}

void Table::write_pretty(std::ostream& os, int precision) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      r.push_back(cell_to_string(row[c], precision));
      widths[c] = std::max(widths[c], r.back().size());
    }
    rendered.push_back(std::move(r));
  }
  auto write_line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << cells[c];
    }
    os << '\n';
  };
  write_line(columns_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(rule, '-') << '\n';
  for (const auto& r : rendered) write_line(r);
}

bool Table::save_csv(const std::string& path, int precision) const {
  std::ofstream ofs(path);
  if (!ofs) return false;
  write_csv(ofs, precision);
  return static_cast<bool>(ofs);
}

}  // namespace rrnet::util
