#include "util/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/contracts.hpp"

namespace rrnet::util {

TimeSeries::TimeSeries(double bucket_width, double start)
    : bucket_width_(bucket_width), start_(start) {
  RRNET_EXPECTS(bucket_width > 0.0);
}

void TimeSeries::add(double t, double value) {
  if (t < start_) return;
  const auto index =
      static_cast<std::size_t>((t - start_) / bucket_width_);
  if (index >= counts_.size()) {
    counts_.resize(index + 1, 0);
    sums_.resize(index + 1, 0.0);
  }
  ++counts_[index];
  sums_[index] += value;
}

double TimeSeries::bucket_start(std::size_t i) const noexcept {
  return start_ + bucket_width_ * static_cast<double>(i);
}

std::uint64_t TimeSeries::count(std::size_t i) const {
  RRNET_EXPECTS(i < counts_.size());
  return counts_[i];
}

double TimeSeries::sum(std::size_t i) const {
  RRNET_EXPECTS(i < sums_.size());
  return sums_[i];
}

double TimeSeries::mean(std::size_t i) const {
  RRNET_EXPECTS(i < counts_.size());
  if (counts_[i] == 0) return std::numeric_limits<double>::quiet_NaN();
  return sums_[i] / static_cast<double>(counts_[i]);
}

double TimeSeries::rate(std::size_t i) const {
  RRNET_EXPECTS(i < counts_.size());
  return static_cast<double>(counts_[i]) / bucket_width_;
}

std::size_t TimeSeries::peak_bucket() const noexcept {
  if (counts_.empty()) return 0;
  return static_cast<std::size_t>(
      std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

Table TimeSeries::to_table(const std::string& value_label) const {
  Table table({"t_start", "count", "rate_per_s", "mean_" + value_label});
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    table.add_row({bucket_start(i),
                   static_cast<std::int64_t>(counts_[i]), rate(i),
                   counts_[i] == 0 ? 0.0 : mean(i)});
  }
  return table;
}

}  // namespace rrnet::util
