// Fixed-capacity free-list pool for boxed immutable payloads.
//
// Relay packets (net::Packet) and MAC frame payloads travel through the
// simulator as `std::shared_ptr<const T>`: one control+payload block per
// boxed object, allocated with make_shared and freed when the last frame
// or pending callback drops it. Those were the last per-event heap
// allocations in the fig1/fig3 scenario benches (~0.06–0.08 allocs/event).
//
// PayloadPool removes them: make_pooled<T>(...) routes allocate_shared's
// single combined block through a thread-local free-list arena, so in
// steady state boxing a payload is a pointer pop and releasing it a
// pointer push. Key properties:
//
//  * Fallback, never failure: when the arena is exhausted, chunks come
//    from operator new. Every chunk carries a header naming its owner
//    pool (nullptr for heap chunks), so release is branch-on-header and
//    mixed pool/heap populations coexist safely.
//  * Thread-local by construction: replication workers are shared-nothing
//    (sim::ScenarioResult is plain data), so pooled handles never cross
//    threads and the pools need no locks. Each pool frees its arena at
//    thread exit; outstanding heap-fallback chunks free themselves.
//  * Lazy chunk sizing: allocate_shared's combined block size (control
//    block + T) is an implementation detail, so the arena is carved on
//    the first allocation, when the size is known. Requests of any other
//    size (e.g. a different T rebound through the same allocator) take
//    the heap path.
//
// make_pooled keeps the `std::shared_ptr<const T>` handle type for callers
// that want shared immutable state without intrusive refcounts; the packet
// path itself uses the intrusive net::PacketBuffer on a raw PayloadPool.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace rrnet::util {

struct PoolStats {
  std::uint64_t pool_allocs = 0;  ///< chunks served from the free list
  std::uint64_t heap_allocs = 0;  ///< fallback operator-new chunks
  std::uint64_t releases = 0;     ///< chunks returned (either kind)
};

// Default arena capacity (chunks per pool), overridable per build:
//   cmake -DCMAKE_CXX_FLAGS=-DRRNET_POOL_ARENA_CAPACITY=1024
// Every thread-local pool (size classes, payload pools, the PacketBuffer
// pool) carves kDefaultCapacity chunks on first use, so this knob bounds
// the per-worker arena footprint of parallel replication (the audit table
// lives in DESIGN.md, "Memory footprint").
#ifndef RRNET_POOL_ARENA_CAPACITY
#define RRNET_POOL_ARENA_CAPACITY 4096
#endif

class PayloadPool {
 public:
  static constexpr std::size_t kDefaultCapacity = RRNET_POOL_ARENA_CAPACITY;
  static_assert(kDefaultCapacity > 0,
                "RRNET_POOL_ARENA_CAPACITY must be positive");

  /// Chunk payload size is fixed on the first allocate() call.
  explicit PayloadPool(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  PayloadPool(const PayloadPool&) = delete;
  PayloadPool& operator=(const PayloadPool&) = delete;

  ~PayloadPool() {
    for (std::byte* arena : arenas_) ::operator delete(arena);
  }

  /// Grow the pool so at least `chunks` chunks of `payload_bytes` exist in
  /// total, carving one additional arena for the shortfall. Fixes the chunk
  /// size if no allocation has happened yet; a size mismatch with an
  /// already-sized pool is ignored (those requests heap-fall-back anyway).
  /// Large-n scenario builders call this up front so constructing n nodes
  /// is one arena carve instead of thousands of heap fallbacks.
  void ensure_capacity(std::size_t chunks, std::size_t payload_bytes) {
    if (chunks == 0 || payload_bytes == 0) return;
    if (chunk_bytes_ == 0) {
      carve_arena(payload_bytes, std::max(chunks, capacity_));
      return;
    }
    if (payload_bytes != chunk_bytes_ || chunks <= carved_) return;
    carve_arena(chunk_bytes_, chunks - carved_);
  }

  /// Allocate `bytes` of payload. Pool-served when `bytes` matches the
  /// pool's chunk size and a free chunk exists; heap otherwise.
  void* allocate(std::size_t bytes) {
    if (chunk_bytes_ == 0 && bytes > 0) carve_arena(bytes, capacity_);
    if (bytes == chunk_bytes_ && !free_.empty()) {
      Header* h = free_.back();
      free_.pop_back();
      ++stats_.pool_allocs;
      ++in_use_;
      if (in_use_ > in_use_high_water_) in_use_high_water_ = in_use_;
      return h + 1;
    }
    ++stats_.heap_allocs;
    return allocate_unpooled(bytes);
  }

  /// A headered heap chunk releasable via release(), owned by no pool.
  static void* allocate_unpooled(std::size_t bytes) {
    Header* h = static_cast<Header*>(::operator new(sizeof(Header) + bytes));
    h->owner = nullptr;
    return h + 1;
  }

  /// Return a chunk obtained from any PayloadPool's allocate().
  static void release(void* p) noexcept {
    Header* h = static_cast<Header*>(p) - 1;
    if (h->owner != nullptr) {
      ++h->owner->stats_.releases;
      --h->owner->in_use_;
      h->owner->free_.push_back(h);
    } else {
      ::operator delete(h);
    }
  }

  [[nodiscard]] const PoolStats& stats() const noexcept { return stats_; }
  /// Total pooled chunks: carved so far, or the first-carve size if the
  /// chunk size is not yet known.
  [[nodiscard]] std::size_t capacity() const noexcept {
    return carved_ > 0 ? carved_ : capacity_;
  }
  [[nodiscard]] std::size_t free_count() const noexcept {
    return free_.size();
  }
  /// Arena chunks currently handed out (heap-fallback chunks not counted).
  [[nodiscard]] std::size_t in_use() const noexcept { return in_use_; }
  /// Deepest the arena occupancy has ever been since the last reset.
  [[nodiscard]] std::size_t in_use_high_water() const noexcept {
    return in_use_high_water_;
  }
  /// Restart the occupancy high-water at the current level. Thread-local
  /// pools outlive individual simulation runs, so per-run gauges must reset
  /// at run start to stay deterministic under replication reuse.
  void reset_high_water() noexcept { in_use_high_water_ = in_use_; }

 private:
  struct alignas(std::max_align_t) Header {
    PayloadPool* owner;
  };

  void carve_arena(std::size_t payload_bytes, std::size_t count) {
    // Round the stride so every chunk's payload is max_align_t-aligned.
    constexpr std::size_t kAlign = alignof(std::max_align_t);
    const std::size_t stride =
        sizeof(Header) + ((payload_bytes + kAlign - 1) / kAlign) * kAlign;
    chunk_bytes_ = payload_bytes;
    auto* arena = static_cast<std::byte*>(::operator new(stride * count));
    arenas_.push_back(arena);
    carved_ += count;
    free_.reserve(carved_);
    // Push in reverse so chunks are handed out in ascending address order.
    for (std::size_t i = count; i-- > 0;) {
      Header* h = reinterpret_cast<Header*>(arena + i * stride);
      h->owner = this;
      free_.push_back(h);
    }
  }

  std::size_t capacity_;
  std::size_t chunk_bytes_ = 0;  ///< fixed by the first allocation
  std::size_t carved_ = 0;       ///< total chunks across all arenas
  std::vector<std::byte*> arenas_;
  std::vector<Header*> free_;
  PoolStats stats_;
  std::size_t in_use_ = 0;
  std::size_t in_use_high_water_ = 0;
};

/// Minimal allocator front-end so std::allocate_shared places its combined
/// control-block+payload node in the pool. Rebound copies share the pool.
template <typename T>
class PooledAllocator {
 public:
  using value_type = T;

  explicit PooledAllocator(PayloadPool* pool) noexcept : pool_(pool) {}
  template <typename U>
  PooledAllocator(const PooledAllocator<U>& other) noexcept
      : pool_(other.pool_) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(pool_->allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t) noexcept { PayloadPool::release(p); }

  template <typename U>
  bool operator==(const PooledAllocator<U>& other) const noexcept {
    return pool_ == other.pool_;
  }

  PayloadPool* pool_;
};

/// The per-payload-type, per-thread pool used by make_pooled<T>.
template <typename T>
PayloadPool& payload_pool() {
  thread_local PayloadPool pool;
  return pool;
}

/// Counters for the calling thread's T-pool (tests and benches).
template <typename T>
const PoolStats& pooled_stats() {
  return payload_pool<T>().stats();
}

/// Box an immutable payload in the calling thread's T-pool. Drop-in for
/// `std::make_shared<const T>(...)` on hot paths.
template <typename T, typename... Args>
std::shared_ptr<const T> make_pooled(Args&&... args) {
  return std::allocate_shared<T>(PooledAllocator<T>(&payload_pool<T>()),
                                 std::forward<Args>(args)...);
}

/// Size-class pools for whole objects (64-byte steps up to 1 KiB). Every
/// class that inherits PoolAllocated shares these, so per-scenario object
/// churn (nodes, MACs, transceivers, protocols) recycles through free
/// lists instead of the heap once the classes are warm.
inline constexpr std::size_t kSizeClassStep = 64;
inline constexpr std::size_t kSizeClassMax = 1024;

/// The calling thread's pool for the size class covering `bytes`
/// (bytes <= kSizeClassMax). Exposed for tests.
inline PayloadPool& sized_pool(std::size_t bytes) {
  thread_local PayloadPool pools[kSizeClassMax / kSizeClassStep];
  return pools[(bytes + kSizeClassStep - 1) / kSizeClassStep - 1];
}

inline void* sized_allocate(std::size_t bytes) {
  if (bytes == 0 || bytes > kSizeClassMax) {
    return PayloadPool::allocate_unpooled(bytes);
  }
  const std::size_t rounded =
      ((bytes + kSizeClassStep - 1) / kSizeClassStep) * kSizeClassStep;
  return sized_pool(bytes).allocate(rounded);
}

/// Inherit (empty base) to route a class's `new`/`delete` through the
/// thread's size-class pools. Covers derived classes too — a polymorphic
/// delete through a base pointer reaches the header-driven release, and
/// differently-sized siblings simply land in different size classes.
/// Pool-allocated objects must be deleted on the thread that created them.
struct PoolAllocated {
  static void* operator new(std::size_t bytes) { return sized_allocate(bytes); }
  static void operator delete(void* p) noexcept { PayloadPool::release(p); }
};

}  // namespace rrnet::util
