// Minimal command-line flag parser for bench/example binaries.
//
// Accepts --key=value and --key value pairs plus bare --key booleans.
// Unknown positional arguments are collected in order.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rrnet::util {

class Flags {
 public:
  Flags() = default;
  /// Parse argv; throws ContractViolation on malformed input (e.g. "--=x").
  Flags(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Manually set a value (used by tests and sweep drivers).
  void set(const std::string& key, const std::string& value);

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace rrnet::util
