// CSV emission and aligned console tables for experiment output.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace rrnet::util {

/// A single table cell: string, integer, or double.
using Cell = std::variant<std::string, std::int64_t, double>;

/// Render a cell with a fixed floating-point precision. Non-finite doubles
/// (NaN/inf) render as an empty string, so CSVs never contain "nan" cells.
[[nodiscard]] std::string cell_to_string(const Cell& cell, int precision = 4);

/// Row-oriented table that can render itself as CSV or as an aligned,
/// human-readable console table (used by every bench binary so that the
/// printed series mirror the paper's figures).
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  void add_row(std::vector<Cell> row);
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return columns_.size(); }
  [[nodiscard]] const Cell& at(std::size_t row, std::size_t col) const;
  /// Index of the named column; aborts if absent. Shape checks must use
  /// this instead of hard-coded indices — appending columns to a series
  /// (as the sweep counter columns did) silently shifts positions.
  [[nodiscard]] std::size_t column_index(const std::string& name) const;

  /// Write RFC-4180-ish CSV (quotes fields containing commas/quotes).
  void write_csv(std::ostream& os, int precision = 6) const;
  /// Write an aligned table with a header rule.
  void write_pretty(std::ostream& os, int precision = 4) const;
  /// Convenience: write CSV to a file; returns false on I/O failure.
  bool save_csv(const std::string& path, int precision = 6) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

/// Escape one CSV field.
[[nodiscard]] std::string csv_escape(const std::string& field);

}  // namespace rrnet::util
