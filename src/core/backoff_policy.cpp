#include "core/backoff_policy.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace rrnet::core {

UniformBackoff::UniformBackoff(des::Time lambda) : lambda_(lambda) {
  RRNET_EXPECTS(lambda > 0.0);
}

des::Time UniformBackoff::delay(const ElectionContext& /*context*/,
                                des::Rng& rng) const {
  return lambda_ * rng.uniform01();
}

SignalStrengthBackoff::SignalStrengthBackoff(des::Time lambda,
                                             double jitter_fraction)
    : lambda_(lambda), jitter_fraction_(jitter_fraction) {
  RRNET_EXPECTS(lambda > 0.0);
  RRNET_EXPECTS(jitter_fraction >= 0.0 && jitter_fraction <= 1.0);
}

des::Time SignalStrengthBackoff::delay(const ElectionContext& context,
                                       des::Rng& rng) const {
  const double span = context.rssi_max_dbm - context.rssi_min_dbm;
  // strength = 1 at the strongest plausible signal (closest node),
  // 0 at the weakest decodable one (farthest node).
  double strength = span > 0.0
      ? (context.rssi_dbm - context.rssi_min_dbm) / span
      : 1.0;
  strength = std::clamp(strength, 0.0, 1.0);
  const double jitter = jitter_fraction_ * rng.uniform01();
  return lambda_ * std::min(1.0, strength * (1.0 - jitter_fraction_) + jitter);
}

HopGradientBackoff::HopGradientBackoff(des::Time lambda,
                                       std::uint32_t unknown_penalty_hops)
    : lambda_(lambda), unknown_penalty_hops_(unknown_penalty_hops) {
  RRNET_EXPECTS(lambda > 0.0);
}

des::Time HopGradientBackoff::delay(const ElectionContext& context,
                                    des::Rng& rng) const {
  const double u = rng.uniform01();
  if (context.hops_unknown) {
    return lambda_ * (static_cast<double>(unknown_penalty_hops_) + u);
  }
  if (context.hops_table <= context.hops_expected) {
    return lambda_ * u;
  }
  const double excess = static_cast<double>(context.hops_table) -
                        static_cast<double>(context.hops_expected);
  return lambda_ * (excess + u);
}

}  // namespace rrnet::core

namespace rrnet::core {

EnergyAwareBackoff::EnergyAwareBackoff(des::Time lambda, double jitter_fraction)
    : lambda_(lambda), jitter_fraction_(jitter_fraction) {
  RRNET_EXPECTS(lambda > 0.0);
  RRNET_EXPECTS(jitter_fraction >= 0.0 && jitter_fraction <= 1.0);
}

des::Time EnergyAwareBackoff::delay(const ElectionContext& context,
                                    des::Rng& rng) const {
  const double depleted =
      1.0 - std::clamp(context.energy_fraction, 0.0, 1.0);
  const double jitter = jitter_fraction_ * rng.uniform01();
  return lambda_ *
         std::min(1.0, depleted * (1.0 - jitter_fraction_) + jitter);
}

}  // namespace rrnet::core
