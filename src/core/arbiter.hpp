// Arbiter role from §2 / §4.1.
//
// The node that triggered the implicit synchronization point (in RR: the
// node that just transmitted a path-reply/data packet) keeps listening:
//  * if it overhears the packet being relayed, it immediately broadcasts an
//    acknowledgement so nodes that missed the relay cancel their timers;
//  * if it hears nothing within a timeout, it retransmits the original
//    packet, re-triggering the election — guaranteeing at least one leader
//    eventually (up to a retry budget).
#pragma once

#include <cstdint>
#include <unordered_map>
#include "util/pooled_containers.hpp"

#include "des/inline_callback.hpp"
#include "des/timer.hpp"
#include "obs/metrics.hpp"

namespace rrnet::core {

struct ArbiterConfig {
  des::Time relay_timeout = 50e-3;  ///< silence before retransmitting
  std::uint32_t max_retransmits = 3;
};

struct ArbiterStats {
  std::uint64_t watches = 0;
  std::uint64_t relays_heard = 0;  ///< -> acknowledgement sent
  std::uint64_t retransmits = 0;
  std::uint64_t gave_up = 0;
};

/// Accumulate arbiter counters into a registry under the obs::metric
/// arbiter.* names (protocols call this from their snapshot_metrics).
void snapshot_metrics(const ArbiterStats& stats, obs::MetricRegistry& reg);

class Arbiter {
 public:
  /// `retransmit` re-sends the original packet; `send_ack` broadcasts the
  /// acknowledgement. Both are invoked at most once per timer firing /
  /// relay observation respectively. Inline and move-only: captures above
  /// the des::InlineCallback budget are a compile error — box the packet
  /// behind a pooled handle and capture the handle.
  struct Callbacks {
    des::InlineCallback retransmit;
    des::InlineCallback send_ack;
  };

  Arbiter(des::Scheduler& scheduler, ArbiterConfig config) noexcept
      : scheduler_(&scheduler), config_(config) {}

  /// Begin (or restart) watching for a relay of packet `key`.
  void watch(std::uint64_t key, Callbacks callbacks);

  /// Report that a relay of `key` was overheard. Sends the ack and stops
  /// watching. Returns true iff we were watching this key.
  bool relay_heard(std::uint64_t key);

  /// Stop watching without acknowledging (e.g. the packet reached its
  /// target and an end-to-end ack supersedes arbitration).
  bool stop(std::uint64_t key);

  [[nodiscard]] bool watching(std::uint64_t key) const {
    return watches_.count(key) > 0;
  }
  [[nodiscard]] std::size_t active_count() const noexcept {
    return watches_.size();
  }
  [[nodiscard]] const ArbiterStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ArbiterConfig& config() const noexcept { return config_; }

 private:
  struct Watch {
    explicit Watch(des::Scheduler& scheduler) : timer(scheduler) {}
    des::Timer timer;
    Callbacks callbacks;
    std::uint32_t retransmits_used = 0;
  };

  void arm_timer(std::uint64_t key, Watch& watch);

  des::Scheduler* scheduler_;
  ArbiterConfig config_;
  util::PooledUnorderedMap<std::uint64_t, Watch> watches_;
  ArbiterStats stats_;
};

}  // namespace rrnet::core
