// Backoff-delay derivation — the heart of the paper's local leader election.
//
// "The heart of the solution is how to derive the backoff delay based on a
//  metric or a combination of several metrics so that the most desirable
//  node would have the greatest chance of being elected a leader." (§2)
//
// Policies map per-node context (signal strength of the triggering packet,
// hop-count gradient, ...) to a delay. Smaller delay = higher priority: the
// node whose timer fires first transmits the announcement and wins.
#pragma once

#include <cstdint>
#include <memory>

#include "des/rng.hpp"
#include "des/time.hpp"

namespace rrnet::core {

/// Everything a policy may consult when computing a node's backoff delay.
struct ElectionContext {
  /// RSSI of the packet that acted as the implicit synchronization point.
  double rssi_dbm = 0.0;
  /// RSSI bounds for normalization: strongest plausible (at point-blank
  /// range) and weakest decodable (the rx threshold).
  double rssi_max_dbm = 0.0;
  double rssi_min_dbm = -64.0;
  /// Hop-count gradient inputs (Routeless Routing): this node's stored
  /// distance to the target and the expected hop count from the packet.
  std::uint32_t hops_table = 0;
  std::uint32_t hops_expected = 0;
  /// True when this node has no entry in its active node table.
  bool hops_unknown = false;
  /// Remaining energy as a fraction of the initial budget, [0, 1]
  /// (EnergyAwareBackoff; cf. the Span coordinator election the paper
  /// cites: "nodes with more connectivity and more energy [get] higher
  /// priority to become the coordinators").
  double energy_fraction = 1.0;
};

class BackoffPolicy {
 public:
  virtual ~BackoffPolicy() = default;
  /// Compute the backoff delay for one election participant. Must be >= 0.
  [[nodiscard]] virtual des::Time delay(const ElectionContext& context,
                                        des::Rng& rng) const = 0;
  [[nodiscard]] virtual const char* name() const noexcept = 0;
};

/// Fully random backoff over [0, lambda) — what classic CSMA does, and the
/// baseline the paper argues "wastes the precious opportunity to prioritize".
/// Used by counter-1 flooding.
class UniformBackoff final : public BackoffPolicy {
 public:
  explicit UniformBackoff(des::Time lambda);
  des::Time delay(const ElectionContext& context, des::Rng& rng) const override;
  const char* name() const noexcept override { return "uniform"; }
  [[nodiscard]] des::Time lambda() const noexcept { return lambda_; }

 private:
  des::Time lambda_;
};

/// SSAF policy (§3): the weaker the received signal, the farther the node is
/// likely to be from the sender, and the smaller its backoff. The RSSI is
/// normalized into [0, 1] (0 = weakest decodable, 1 = strongest) and scaled
/// by lambda; a small random jitter (a fraction of lambda) breaks ties
/// between nodes with near-identical signal strength.
class SignalStrengthBackoff final : public BackoffPolicy {
 public:
  SignalStrengthBackoff(des::Time lambda, double jitter_fraction = 0.1);
  des::Time delay(const ElectionContext& context, des::Rng& rng) const override;
  const char* name() const noexcept override { return "signal-strength"; }
  [[nodiscard]] des::Time lambda() const noexcept { return lambda_; }

 private:
  des::Time lambda_;
  double jitter_fraction_;
};

/// Routeless Routing policy (§4.1) — the reconstructed two-band equation
/// (see DESIGN.md):
///
///   d = lambda * U(0,1)                                if h_table <= h_expected
///   d = lambda * (h_table - h_expected + U(0,1))       if h_table >  h_expected
///
/// Nodes at or inside the expected distance compete in [0, lambda); nodes
/// farther than expected are pushed beyond lambda, one band per excess hop.
/// Nodes with no table entry are treated as "much farther than expected"
/// via `unknown_penalty_hops` extra bands.
class HopGradientBackoff final : public BackoffPolicy {
 public:
  explicit HopGradientBackoff(des::Time lambda,
                              std::uint32_t unknown_penalty_hops = 4);
  des::Time delay(const ElectionContext& context, des::Rng& rng) const override;
  const char* name() const noexcept override { return "hop-gradient"; }
  [[nodiscard]] des::Time lambda() const noexcept { return lambda_; }

 private:
  des::Time lambda_;
  std::uint32_t unknown_penalty_hops_;
};

/// Energy-aware policy: the more remaining energy, the smaller the backoff
/// — the richest node volunteers for leadership (cluster head, coordinator)
/// and leadership rotates as it drains. A jitter fraction breaks ties.
class EnergyAwareBackoff final : public BackoffPolicy {
 public:
  explicit EnergyAwareBackoff(des::Time lambda, double jitter_fraction = 0.05);
  des::Time delay(const ElectionContext& context, des::Rng& rng) const override;
  const char* name() const noexcept override { return "energy-aware"; }
  [[nodiscard]] des::Time lambda() const noexcept { return lambda_; }

 private:
  des::Time lambda_;
  double jitter_fraction_;
};

}  // namespace rrnet::core
