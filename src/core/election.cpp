#include "core/election.hpp"

#include <utility>

#include "util/contracts.hpp"

namespace rrnet::core {

void ElectionSession::arm(const BackoffPolicy& policy,
                          const ElectionContext& context, des::Rng& rng,
                          WinHandler on_win) {
  RRNET_EXPECTS(on_win != nullptr);
  delay_ = policy.delay(context, rng);
  RRNET_ENSURES(delay_ >= 0.0);
  timer_.start(delay_, [this, handler = std::move(on_win)]() {
    handler(delay_);
  });
}

bool ElectionSession::cancel() noexcept { return timer_.cancel(); }

void ElectionTable::arm(std::uint64_t key, const BackoffPolicy& policy,
                        const ElectionContext& context, des::Rng& rng,
                        ElectionSession::WinHandler on_win) {
  auto [it, inserted] = sessions_.try_emplace(key, *scheduler_);
  ++stats_.armed;
  it->second.arm(policy, context, rng,
                 [this, key, handler = std::move(on_win)](des::Time delay) {
                   ++stats_.won;
                   // Erase before invoking: the handler may re-arm the key.
                   sessions_.erase(key);
                   handler(delay);
                 });
}

bool ElectionTable::cancel(std::uint64_t key, CancelReason reason) {
  const auto it = sessions_.find(key);
  if (it == sessions_.end()) return false;
  const bool was_pending = it->second.cancel();
  sessions_.erase(it);
  if (was_pending) {
    switch (reason) {
      case CancelReason::DuplicateHeard: ++stats_.cancelled_duplicate; break;
      case CancelReason::ArbiterAck: ++stats_.cancelled_ack; break;
      case CancelReason::Superseded: ++stats_.cancelled_superseded; break;
    }
  }
  return was_pending;
}

bool ElectionTable::armed(std::uint64_t key) const {
  const auto it = sessions_.find(key);
  return it != sessions_.end() && it->second.armed();
}

}  // namespace rrnet::core
