#include "core/election.hpp"

#include <utility>

#include "obs/trace.hpp"
#include "util/contracts.hpp"

namespace rrnet::core {

void snapshot_metrics(const ElectionStats& stats, obs::MetricRegistry& reg) {
  namespace m = obs::metric;
  reg.add(m::kElectionArmed, stats.armed);
  reg.add(m::kElectionWon, stats.won);
  reg.add(m::kElectionCancelledDuplicate, stats.cancelled_duplicate);
  reg.add(m::kElectionCancelledAck, stats.cancelled_ack);
  reg.add(m::kElectionCancelledSuperseded, stats.cancelled_superseded);
}

void ElectionSession::arm_impl(const BackoffPolicy& policy,
                               const ElectionContext& context, des::Rng& rng,
                               WinHandler on_win, ElectionTable* owner,
                               std::uint64_t key) {
  RRNET_EXPECTS(on_win != nullptr);
  delay_ = policy.delay(context, rng);
  RRNET_ENSURES(delay_ >= 0.0);
  handler_ = std::move(on_win);
  owner_ = owner;
  key_ = key;
  timer_.start(delay_, [this]() {
    // Move everything to the stack first: session_won erases this session
    // from its owning table, destroying *this.
    const des::Time delay = delay_;
    WinHandler handler = std::move(handler_);
    ElectionTable* table = owner_;
    const std::uint64_t session_key = key_;
    if (table != nullptr) table->session_won(session_key);
    handler(delay);
  });
}

bool ElectionSession::cancel() noexcept { return timer_.cancel(); }

void ElectionTable::arm(std::uint64_t key, const BackoffPolicy& policy,
                        const ElectionContext& context, des::Rng& rng,
                        ElectionSession::WinHandler on_win) {
  auto [it, inserted] = sessions_.try_emplace(key, *scheduler_);
  ++stats_.armed;
  RRNET_TRACE_EVENT(obs::EventKind::ElectionArm, scheduler_->now(),
                    obs::kNoTraceNode, key, 0);
  it->second.arm_impl(policy, context, rng, std::move(on_win), this, key);
}

void ElectionTable::session_won(std::uint64_t key) {
  ++stats_.won;
  RRNET_TRACE_EVENT(obs::EventKind::ElectionWin, scheduler_->now(),
                    obs::kNoTraceNode, key, 0);
  // Erase before the handler runs: the handler may re-arm the key.
  sessions_.erase(key);
}

bool ElectionTable::cancel(std::uint64_t key, CancelReason reason) {
  const auto it = sessions_.find(key);
  if (it == sessions_.end()) return false;
  const bool was_pending = it->second.cancel();
  sessions_.erase(it);
  if (was_pending) {
    RRNET_TRACE_EVENT(obs::EventKind::ElectionCancel, scheduler_->now(),
                      obs::kNoTraceNode, key,
                      static_cast<std::uint16_t>(reason));
    switch (reason) {
      case CancelReason::DuplicateHeard: ++stats_.cancelled_duplicate; break;
      case CancelReason::ArbiterAck: ++stats_.cancelled_ack; break;
      case CancelReason::Superseded: ++stats_.cancelled_superseded; break;
    }
  }
  return was_pending;
}

bool ElectionTable::armed(std::uint64_t key) const {
  const auto it = sessions_.find(key);
  return it != sessions_.end() && it->second.armed();
}

}  // namespace rrnet::core
