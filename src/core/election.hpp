// Local leader election sessions (§2).
//
// An election is triggered by an implicit synchronization point — here, the
// end of a packet reception, which every competing node observed at (almost)
// the same instant. Each participant arms an ElectionSession: a backoff
// timer whose duration comes from a BackoffPolicy. If the timer fires, the
// node "wins" and transmits its announcement (in SSAF/RR: relays the
// packet). If the node overhears another announcement first — or an arbiter
// acknowledgement — it cancels, conceding leadership.
//
// ElectionTable manages the many concurrent elections a node participates in
// (one per in-flight packet), keyed by the packet's flood key.
#pragma once

#include <cstdint>
#include <unordered_map>
#include "util/pooled_containers.hpp"

#include "core/backoff_policy.hpp"
#include "des/inline_callback.hpp"
#include "des/timer.hpp"
#include "obs/metrics.hpp"

namespace rrnet::core {

class ElectionTable;

enum class CancelReason : std::uint8_t {
  DuplicateHeard,  ///< another node's announcement (relay) was overheard
  ArbiterAck,      ///< the arbiter acknowledged some other relay
  Superseded,      ///< protocol-level replacement / shutdown
};

/// Per-node counters over all elections.
struct ElectionStats {
  std::uint64_t armed = 0;
  std::uint64_t won = 0;
  std::uint64_t cancelled_duplicate = 0;
  std::uint64_t cancelled_ack = 0;
  std::uint64_t cancelled_superseded = 0;
};

/// Accumulate election counters into a registry under the obs::metric
/// election.* names (protocols call this from their snapshot_metrics).
void snapshot_metrics(const ElectionStats& stats, obs::MetricRegistry& reg);

class ElectionSession {
 public:
  /// Called when this node wins; receives the backoff delay that won (the
  /// protocol passes it on as the MAC queue priority). Inline, move-only:
  /// captures above 48 bytes are a compile error — box the packet behind a
  /// pooled handle (util::make_pooled) and capture the 16-byte handle.
  using WinHandler = des::InlineFunction<void(des::Time delay), 48>;

  explicit ElectionSession(des::Scheduler& scheduler) noexcept
      : timer_(scheduler) {}

  /// Compute the backoff from `policy` and arm the timer. Re-arming an
  /// already armed session replaces the pending candidacy.
  void arm(const BackoffPolicy& policy, const ElectionContext& context,
           des::Rng& rng, WinHandler on_win) {
    arm_impl(policy, context, rng, std::move(on_win), nullptr, 0);
  }

  /// Concede. Returns true iff a candidacy was actually pending.
  bool cancel() noexcept;

  [[nodiscard]] bool armed() const noexcept { return timer_.active(); }
  /// The backoff delay of the current/last candidacy.
  [[nodiscard]] des::Time delay() const noexcept { return delay_; }

 private:
  friend class ElectionTable;

  /// The handler lives in the session and the timer captures only `this`,
  /// so a table-managed session needs no wrapper closure (which could not
  /// fit a WinHandler inside a WinHandler's own capture budget). When
  /// `owner` is set, the win notifies it (stats + erasure) before the
  /// handler — already moved to the stack — is invoked.
  void arm_impl(const BackoffPolicy& policy, const ElectionContext& context,
                des::Rng& rng, WinHandler on_win, ElectionTable* owner,
                std::uint64_t key);

  des::Timer timer_;
  des::Time delay_ = 0.0;
  WinHandler handler_;
  ElectionTable* owner_ = nullptr;
  std::uint64_t key_ = 0;
};

class ElectionTable {
 public:
  explicit ElectionTable(des::Scheduler& scheduler) noexcept
      : scheduler_(&scheduler) {}

  /// Arm (or re-arm) the election for `key`. The session is removed from the
  /// table automatically when it wins.
  void arm(std::uint64_t key, const BackoffPolicy& policy,
           const ElectionContext& context, des::Rng& rng,
           ElectionSession::WinHandler on_win);

  /// Cancel the election for `key` (no-op if absent). Returns true iff a
  /// pending candidacy was cancelled.
  bool cancel(std::uint64_t key, CancelReason reason);

  [[nodiscard]] bool armed(std::uint64_t key) const;
  [[nodiscard]] std::size_t active_count() const noexcept {
    return sessions_.size();
  }
  [[nodiscard]] const ElectionStats& stats() const noexcept { return stats_; }
  /// Carry an evicted node's lifetime counters across a shard migration.
  /// Sessions themselves never move — a node migrates only when no
  /// election is armed (active_count() == 0).
  void restore_stats(const ElectionStats& stats) noexcept { stats_ = stats; }

 private:
  friend class ElectionSession;

  /// Invoked by a winning session just before its handler runs; erases the
  /// session (destroying it), so the caller must not touch members after.
  void session_won(std::uint64_t key);

  des::Scheduler* scheduler_;
  util::PooledUnorderedMap<std::uint64_t, ElectionSession> sessions_;
  ElectionStats stats_;
};

}  // namespace rrnet::core
