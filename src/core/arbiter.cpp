#include "core/arbiter.hpp"

#include <utility>

#include "obs/trace.hpp"
#include "util/contracts.hpp"

namespace rrnet::core {

void snapshot_metrics(const ArbiterStats& stats, obs::MetricRegistry& reg) {
  namespace m = obs::metric;
  reg.add(m::kArbiterWatches, stats.watches);
  reg.add(m::kArbiterRelaysHeard, stats.relays_heard);
  reg.add(m::kArbiterRetransmits, stats.retransmits);
  reg.add(m::kArbiterGaveUp, stats.gave_up);
}

void Arbiter::watch(std::uint64_t key, Callbacks callbacks) {
  RRNET_EXPECTS(callbacks.retransmit != nullptr);
  RRNET_EXPECTS(callbacks.send_ack != nullptr);
  auto [it, inserted] = watches_.try_emplace(key, *scheduler_);
  it->second.callbacks = std::move(callbacks);
  if (inserted) ++stats_.watches;
  it->second.retransmits_used = 0;
  arm_timer(key, it->second);
}

void Arbiter::arm_timer(std::uint64_t key, Watch& watch) {
  watch.timer.start(config_.relay_timeout, [this, key]() {
    const auto it = watches_.find(key);
    RRNET_ASSERT(it != watches_.end());
    Watch& w = it->second;
    if (w.retransmits_used >= config_.max_retransmits) {
      ++stats_.gave_up;
      watches_.erase(it);
      return;
    }
    ++w.retransmits_used;
    ++stats_.retransmits;
    RRNET_TRACE_EVENT(obs::EventKind::ArbiterRetransmit, scheduler_->now(),
                      obs::kNoTraceNode, key, w.retransmits_used);
    // Move the callback out: retransmit() may synchronously re-enter
    // watch() and invalidate `w`. If the watch survives with its slot
    // still empty (no re-entrant watch() replaced it), move it back so
    // the next timer firing can retransmit again.
    auto retransmit = std::move(w.callbacks.retransmit);
    arm_timer(key, w);
    retransmit();
    const auto again = watches_.find(key);
    if (again != watches_.end() &&
        again->second.callbacks.retransmit == nullptr) {
      again->second.callbacks.retransmit = std::move(retransmit);
    }
  });
}

bool Arbiter::relay_heard(std::uint64_t key) {
  const auto it = watches_.find(key);
  if (it == watches_.end()) return false;
  ++stats_.relays_heard;
  RRNET_TRACE_EVENT(obs::EventKind::ArbiterAck, scheduler_->now(),
                    obs::kNoTraceNode, key, 0);
  auto send_ack = std::move(it->second.callbacks.send_ack);
  watches_.erase(it);
  send_ack();
  return true;
}

bool Arbiter::stop(std::uint64_t key) { return watches_.erase(key) > 0; }

}  // namespace rrnet::core
