#include "sim/sharded.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <thread>
#include <utility>

#include "app/cbr.hpp"
#include "app/flow_stats.hpp"
#include "geom/placement.hpp"
#include "geom/shard_partition.hpp"
#include "net/network.hpp"
#include "net/packet_buffer.hpp"
#include "phy/propagation.hpp"
#include "sim/builder.hpp"
#include "sim/spin_barrier.hpp"
#include "sim/topology.hpp"
#include "util/contracts.hpp"
#include "util/pool.hpp"

namespace rrnet::sim {

namespace {

/// Walk the calling thread's object size-class pools (mirror of the
/// builder's helper — pools are thread-local, so each worker walks its own).
template <typename Fn>
void for_each_object_pool(Fn&& fn) {
  for (std::size_t bytes = util::kSizeClassStep; bytes <= util::kSizeClassMax;
       bytes += util::kSizeClassStep) {
    fn(util::sized_pool(bytes));
  }
}

/// Everything one shard owns. Built, run, harvested, and destroyed on the
/// same worker thread: nodes allocate from thread-local pools, so the world
/// must never cross threads (only its outboxes are read remotely, between
/// the barriers that make that race-free).
struct ShardWorld {
  des::Scheduler scheduler;
  std::unique_ptr<net::Network> network;
  app::FlowStats flows;
  std::vector<std::unique_ptr<app::CbrSource>> sources;

  explicit ShardWorld(des::QueueBackend backend) : scheduler(backend) {}
};

/// What a worker hands back per shard (plain data; read after join()).
struct ShardOutcome {
  obs::MetricRegistry metrics;
  obs::Histogram backoff_slots;  // raw buckets; flattened after the merge
  std::vector<app::FlowStats::FlowEvent> flow_log;
  std::uint64_t mac_tx = 0;
  std::uint64_t channel_tx = 0;
  std::uint64_t events_executed = 0;
};

/// Conservative lower bound on this shard's next possible transmit time,
/// evaluated with the shard quiesced at `now` (and any remote handoffs
/// already injected). See sharded.hpp for the derivation; soundness rests
/// on the CsmaMac note_armed_tx() hooks covering every timer whose expiry
/// can transmit with less than a DIFS of warning.
des::Time shard_bound(ShardWorld& world, des::Time now,
                      const mac::MacParams& mac) {
  phy::Channel& channel = world.network->channel();
  des::Time bound = channel.earliest_armed_tx(now);
  bound = std::min(bound, channel.earliest_phy_event(now) + mac.sifs);
  bound = std::min(bound, world.scheduler.next_event_time() + mac.difs);
  return bound;
}

/// Inputs shared (read-only) by every worker during the build phase.
struct BuildPlan {
  const ScenarioConfig* config;
  const geom::Terrain* terrain;
  const std::vector<geom::Vec2>* positions;
  const std::vector<std::uint32_t>* owner;
  const std::vector<std::pair<std::uint32_t, std::uint32_t>>* pairs;
  phy::RadioParams radio;  ///< tx power already calibrated to range_m
};

std::unique_ptr<ShardWorld> build_shard(const BuildPlan& plan,
                                        std::uint32_t shard_index) {
  const ScenarioConfig& config = *plan.config;
  auto world = std::make_unique<ShardWorld>(config.scheduler_queue);
  world->flows.enable_event_log();

  phy::ShardSpec spec;
  spec.shard = shard_index;
  spec.shards = config.shards;
  spec.owner = *plan.owner;

  des::Rng root(config.seed);
  world->network = std::make_unique<net::Network>(
      world->scheduler, *plan.terrain, SimInstance::make_propagation(config),
      plan.radio, config.mac, *plan.positions, root.fork("network"),
      std::move(spec));

  net::Network& network = *world->network;
  for (std::uint32_t id = 0; id < network.size(); ++id) {
    if (!network.has_node(id)) continue;
    SimInstance::attach_protocol(config, network.node(id));
    app::attach_sink(network.node(id), world->flows);
  }

  app::CbrConfig cbr;
  cbr.interval = config.cbr_interval;
  cbr.payload_bytes = config.payload_bytes;
  cbr.start_time = config.traffic_start;
  cbr.stop_time = config.traffic_stop;
  for (std::size_t p = 0; p < plan.pairs->size(); ++p) {
    const auto& [src, dst] = (*plan.pairs)[p];
    RRNET_EXPECTS(src < network.size() && dst < network.size());
    app::CbrConfig pair_cbr = cbr;
    if (p < config.explicit_pair_intervals.size() &&
        config.explicit_pair_intervals[p] > 0.0) {
      pair_cbr.interval = config.explicit_pair_intervals[p];
    }
    if (network.has_node(src)) {
      world->sources.push_back(std::make_unique<app::CbrSource>(
          network.node(src), dst, pair_cbr, world->flows));
    }
    if (config.bidirectional && network.has_node(dst)) {
      world->sources.push_back(std::make_unique<app::CbrSource>(
          network.node(dst), src, pair_cbr, world->flows));
    }
  }
  return world;
}

void harvest_shard(ShardWorld& world, ShardOutcome& out) {
  namespace m = obs::metric;
  net::Network& network = *world.network;
  network.snapshot_metrics(out.metrics, &out.backoff_slots);
  out.metrics.add(m::kDesEventsExecuted, world.scheduler.executed_count());
  out.metrics.set_max(m::kDesHeapHighWater, world.scheduler.heap_high_water());
  out.flow_log = world.flows.take_event_log();
  out.mac_tx = network.total_mac_tx();
  out.channel_tx = network.channel().stats().transmissions;
  out.events_executed = world.scheduler.executed_count();
}

}  // namespace

ScenarioResult run_scenario_sharded(const ScenarioConfig& config,
                                    std::vector<obs::TraceRecord>* trace_out) {
  const std::uint32_t shards = config.shards;
  RRNET_EXPECTS(shards >= 2);
  RRNET_EXPECTS(config.nodes >= 2);
  // The sharded engine supports the static-topology scenario family. Each
  // unsupported feature either moves nodes across strip boundaries
  // (mobility), consumes shard-local rng in a globally ordered way
  // (failures, stochastic fading), or walks packet paths across worlds
  // (path trace). Energy sums in node-id order serially; a shard-order sum
  // would break bitwise reproducibility.
  RRNET_EXPECTS(!config.mobility);
  RRNET_EXPECTS(config.failure_fraction == 0.0);
  RRNET_EXPECTS(!config.trace_paths);
  RRNET_EXPECTS(!config.track_energy);
  RRNET_EXPECTS(config.propagation == PropagationKind::FreeSpace ||
                config.propagation == PropagationKind::TwoRay ||
                config.propagation == PropagationKind::LogDistance);

  std::uint32_t threads = config.shard_threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, shards);

  // ---- Coordinator: everything every shard must agree on, computed once
  // from the same seed-derived forks the serial builder uses. ----
  const geom::Terrain terrain(config.width_m, config.height_m);
  auto model = SimInstance::make_propagation(config);
  phy::RadioParams radio = config.radio;
  radio.tx_power_dbm = phy::tx_power_for_range(*model, config.range_m,
                                               radio.rx_threshold_dbm);

  des::Rng root(config.seed);
  des::Rng placement_rng = root.fork("placement");
  const std::vector<geom::Vec2> positions =
      geom::place_uniform(terrain, config.nodes, placement_rng);

  const geom::ShardPartition partition(terrain, shards);
  const std::vector<std::uint32_t> owner =
      geom::shard_owner_map(partition, positions);

  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  if (!config.explicit_pairs.empty()) {
    pairs = config.explicit_pairs;
  } else {
    des::Rng pair_rng = root.fork("pairs");
    if (config.require_connected_pairs) {
      // Same disk graph the serial Topology(channel) snapshot sees: the
      // channel derives its nominal range with this exact expression.
      const double nominal_range = phy::range_for_threshold(
          *model, radio.tx_power_dbm, radio.rx_threshold_dbm,
          terrain.diameter());
      const Topology topology(positions, nominal_range);
      pairs = draw_connected_pairs(topology, config.pairs, pair_rng,
                                   config.min_pair_hops);
    } else {
      pairs = draw_pairs(positions.size(), config.pairs, pair_rng);
    }
  }

  BuildPlan plan{&config, &terrain, &positions, &owner, &pairs, radio};

  // ---- Shared window-protocol state. worlds/bounds slots are written by
  // the owning worker and read by all; every cross-thread handoff of these
  // is ordered by a barrier crossing (or thread join for the outcomes). ----
  SpinBarrier barrier(threads);
  std::vector<ShardWorld*> worlds(shards, nullptr);
  std::vector<des::Time> bounds(shards, 0.0);
  std::vector<ShardOutcome> outcomes(shards);
  std::vector<obs::MetricRegistry> pool_metrics(threads);
  std::vector<std::vector<obs::TraceRecord>> trace_rings(threads);
  const bool want_trace = config.trace_events;
  const des::Time sim_end = config.sim_end;
  const mac::MacParams mac = config.mac;

  auto worker = [&](std::uint32_t t) {
    const std::uint32_t lo = t * shards / threads;
    const std::uint32_t hi = (t + 1) * shards / threads;

    std::unique_ptr<obs::EventTracer> tracer;
    obs::EventTracer* prev_tracer = nullptr;
    if (want_trace) {
      tracer = std::make_unique<obs::EventTracer>(config.trace_capacity);
      tracer->set_enabled(true);
      prev_tracer = obs::set_thread_tracer(tracer.get());
    }

    // Pool baselines before building anything (thread-local arenas).
    util::PayloadPool& pkt_pool = net::packet_buffer_pool();
    pkt_pool.reset_high_water();
    std::uint64_t pkt_allocs_base =
        pkt_pool.stats().pool_allocs + pkt_pool.stats().heap_allocs;
    std::uint64_t pkt_heap_base = pkt_pool.stats().heap_allocs;
    std::uint64_t obj_allocs_base = 0;
    std::uint64_t obj_heap_base = 0;
    for_each_object_pool([&](util::PayloadPool& pool) {
      pool.reset_high_water();
      obj_allocs_base += pool.stats().pool_allocs + pool.stats().heap_allocs;
      obj_heap_base += pool.stats().heap_allocs;
    });

    std::vector<std::unique_ptr<ShardWorld>> mine;
    mine.reserve(hi - lo);
    for (std::uint32_t s = lo; s < hi; ++s) {
      mine.push_back(build_shard(plan, s));
      worlds[s] = mine.back().get();
    }
    // Publish worlds[] (and consume everyone else's) before any cross-shard
    // outbox access.
    barrier.arrive_and_wait();

    // t = 0: start protocols and traffic, then publish the initial bounds.
    for (std::uint32_t s = lo; s < hi; ++s) {
      ShardWorld& world = *worlds[s];
      world.network->start_protocols();
      for (auto& source : world.sources) source->start();
      bounds[s] = shard_bound(world, 0.0, mac);
    }
    barrier.arrive_and_wait();

    des::Time window = sim_end;
    for (std::uint32_t s = 0; s < shards; ++s) {
      window = std::min(window, bounds[s]);
    }
    for (;;) {
      for (std::uint32_t s = lo; s < hi; ++s) {
        // Safe to drop last window's handoffs now: every destination
        // deep-cloned what it needed before the previous barrier.
        worlds[s]->network->channel().clear_outboxes();
        worlds[s]->scheduler.run_until(window);
      }
      barrier.arrive_and_wait();  // A: all outboxes sealed at `window`

      for (std::uint32_t s = lo; s < hi; ++s) {
        phy::Channel& channel = worlds[s]->network->channel();
        // Source-shard-index order, push order within: the deterministic
        // merge that keeps the replayed receiver walks in serial order.
        for (std::uint32_t src = 0; src < shards; ++src) {
          if (src == s) continue;
          for (const phy::ShardHandoff& handoff :
               worlds[src]->network->channel().outbox(s)) {
            channel.inject_remote(handoff);
          }
        }
        // Bound AFTER injection: replayed signals feed the PHY-event term.
        bounds[s] = shard_bound(*worlds[s], window, mac);
      }
      barrier.arrive_and_wait();  // B: bounds published, injections done

      if (window >= sim_end) break;
      des::Time next = sim_end;
      for (std::uint32_t s = 0; s < shards; ++s) {
        next = std::min(next, bounds[s]);
      }
      window = next;
    }

    // Harvest on the owning thread (snapshot_metrics walks thread-local
    // pool-backed structures), then destroy the worlds here too.
    for (std::uint32_t s = lo; s < hi; ++s) {
      harvest_shard(*worlds[s], outcomes[s]);
    }
    mine.clear();

    namespace m = obs::metric;
    obs::MetricRegistry& pools = pool_metrics[t];
    pools.add(m::kPoolPacketAllocs, pkt_pool.stats().pool_allocs +
                                        pkt_pool.stats().heap_allocs -
                                        pkt_allocs_base);
    pools.add(m::kPoolPacketHeapAllocs,
              pkt_pool.stats().heap_allocs - pkt_heap_base);
    pools.set_max(m::kPoolPacketInUseHighWater, pkt_pool.in_use_high_water());
    std::uint64_t obj_allocs = 0;
    std::uint64_t obj_heap = 0;
    std::uint64_t obj_hw = 0;
    for_each_object_pool([&](const util::PayloadPool& pool) {
      obj_allocs += pool.stats().pool_allocs + pool.stats().heap_allocs;
      obj_heap += pool.stats().heap_allocs;
      obj_hw += pool.in_use_high_water();
    });
    pools.add(m::kPoolObjectAllocs, obj_allocs - obj_allocs_base);
    pools.add(m::kPoolObjectHeapAllocs, obj_heap - obj_heap_base);
    pools.set_max(m::kPoolObjectInUseHighWater, obj_hw);

    if (want_trace) {
      trace_rings[t] = tracer->snapshot();
      obs::set_thread_tracer(prev_tracer);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (std::uint32_t t = 1; t < threads; ++t) {
    pool.emplace_back(worker, t);
  }
  worker(0);
  for (std::thread& th : pool) th.join();

  // ---- Deterministic merge (coordinator, after join). ----
  ScenarioResult r;
  app::FlowStats flows;
  {
    std::vector<app::FlowStats::FlowEvent> merged;
    std::size_t total = 0;
    for (const ShardOutcome& out : outcomes) total += out.flow_log.size();
    merged.reserve(total);
    for (const ShardOutcome& out : outcomes) {
      merged.insert(merged.end(), out.flow_log.begin(), out.flow_log.end());
    }
    // Each shard's log is already time-sorted (execution order); a stable
    // sort of the shard-order concatenation is the (time, shard, seq)
    // merge. Absent cross-shard bitwise-equal timestamps — which the
    // determinism test would catch — this is the serial event order, so the
    // replayed dedup windows and FP accumulations match bit-for-bit.
    std::stable_sort(merged.begin(), merged.end(),
                     [](const app::FlowStats::FlowEvent& a,
                        const app::FlowStats::FlowEvent& b) {
                       return a.time < b.time;
                     });
    for (const app::FlowStats::FlowEvent& event : merged) {
      flows.replay(event);
    }
  }

  r.sent = flows.sent();
  r.delivered = flows.delivered();
  r.delivery_ratio = flows.delivery_ratio();
  r.mean_delay_s = flows.delay().empty() ? 0.0 : flows.delay().mean();
  r.mean_hops = flows.hops().empty() ? 0.0 : flows.hops().mean();
  obs::Histogram backoff_slots;
  for (const ShardOutcome& out : outcomes) {
    r.mac_packets += out.mac_tx;
    r.channel_transmissions += out.channel_tx;
    r.events_executed += out.events_executed;
    r.metrics.merge(out.metrics);  // shard-index order
    backoff_slots.merge(out.backoff_slots);
  }
  // Percentiles come from the UNION histogram — merging per-shard p50/p99
  // gauges by max would not match the serial flattening.
  if (!backoff_slots.empty()) {
    backoff_slots.snapshot_into(r.metrics, obs::metric::kMacBackoffSlots);
  }
  for (const obs::MetricRegistry& pools : pool_metrics) {
    r.metrics.merge(pools);
  }

  if (trace_out != nullptr && want_trace) {
    std::size_t total = 0;
    for (const auto& ring : trace_rings) total += ring.size();
    trace_out->reserve(trace_out->size() + total);
    for (const auto& ring : trace_rings) {
      trace_out->insert(trace_out->end(), ring.begin(), ring.end());
    }
    std::stable_sort(trace_out->begin(), trace_out->end(),
                     [](const obs::TraceRecord& a, const obs::TraceRecord& b) {
                       return a.time < b.time;
                     });
  }
  return r;
}

}  // namespace rrnet::sim
