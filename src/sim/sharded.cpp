#include "sim/sharded.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <memory>
#include <thread>
#include <utility>

#include "app/cbr.hpp"
#include "app/flow_stats.hpp"
#include "geom/placement.hpp"
#include "geom/shard_partition.hpp"
#include "net/network.hpp"
#include "net/packet_buffer.hpp"
#include "obs/profiler.hpp"
#include "phy/failure.hpp"
#include "phy/propagation.hpp"
#include "sim/builder.hpp"
#include "sim/mobility.hpp"
#include "sim/spin_barrier.hpp"
#include "sim/topology.hpp"
#include "util/contracts.hpp"
#include "util/pool.hpp"

namespace rrnet::sim {

namespace {

/// Walk the calling thread's object size-class pools (mirror of the
/// builder's helper — pools are thread-local, so each worker walks its own).
template <typename Fn>
void for_each_object_pool(Fn&& fn) {
  for (std::size_t bytes = util::kSizeClassStep; bytes <= util::kSizeClassMax;
       bytes += util::kSizeClassStep) {
    fn(util::sized_pool(bytes));
  }
}

/// Everything one shard owns. Built, run, harvested, and destroyed on the
/// same worker thread: nodes allocate from thread-local pools, so the world
/// must never cross threads (only its outboxes are read remotely, between
/// the barriers that make that race-free).
struct ShardWorld {
  des::Scheduler scheduler;
  std::unique_ptr<net::Network> network;
  app::FlowStats flows;
  std::vector<std::unique_ptr<app::CbrSource>> sources;
  /// Replicated environment drivers: EVERY shard runs the full failure and
  /// mobility schedules for ALL nodes from the same rng forks, so position
  /// grids and on/off states agree bitwise everywhere without any exchange.
  /// Only the side effects gated on ownership (turn_off on a radio) are
  /// shard-local — see FailureModel's owns() guards.
  std::unique_ptr<phy::FailureModel> failures;
  std::unique_ptr<RandomWaypoint> mobility;

  explicit ShardWorld(des::QueueBackend backend) : scheduler(backend) {}
};

/// What a worker hands back per shard (plain data; read after join()).
struct ShardOutcome {
  obs::MetricRegistry metrics;
  obs::Histogram backoff_slots;  // raw buckets; flattened after the merge
  std::vector<app::FlowStats::FlowEvent> flow_log;
  /// (node id, joules) for every transceiver this shard owned at the end;
  /// the coordinator sorts by node id and sums in that order, reproducing
  /// the serial id-order FP accumulation exactly.
  std::vector<std::pair<std::uint32_t, double>> energy;
  std::uint64_t mac_tx = 0;
  std::uint64_t channel_tx = 0;
  std::uint64_t events_executed = 0;
};

/// One node changing owner shards, exchanged at a window barrier. Built by
/// the source shard's worker (in node-id order within the shard), applied
/// by every worker in (source shard, record) order so all owner maps stay
/// identical. Snapshots are by value / on the global allocator — the record
/// crosses threads; the source worker destroys it next round.
struct NodeMigration {
  std::uint32_t node = 0;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint32_t frame_counter = 0;
  std::uint32_t last_uid = 0;
  net::NodeStats node_stats;
  des::RngState node_rng;
  mac::MacMigrationState mac;
  phy::TransceiverSnapshot radio;
  std::unique_ptr<net::MigrationBlob> protocol;
};

/// Conservative lower bound on this shard's next possible transmit time,
/// evaluated with the shard quiesced at `now` (and any remote handoffs
/// already injected). See sharded.hpp for the derivation; soundness rests
/// on the CsmaMac note_armed_tx() hooks covering every timer whose expiry
/// can transmit with less than a DIFS of warning.
des::Time shard_bound(ShardWorld& world, des::Time now,
                      const mac::MacParams& mac,
                      obs::BoundSource* source = nullptr) {
  phy::Channel& channel = world.network->channel();
  des::Time bound = channel.earliest_armed_tx(now);
  obs::BoundSource which = obs::BoundSource::ArmedTx;
  const des::Time phy = channel.earliest_phy_event(now) + mac.sifs;
  if (phy < bound) {
    bound = phy;
    which = obs::BoundSource::PendingPhy;
  }
  const des::Time next = world.scheduler.next_event_time() + mac.difs;
  if (next < bound) {
    bound = next;
    which = obs::BoundSource::NextEvent;
  }
  if (source != nullptr) *source = which;
  return bound;
}

/// Inputs shared (read-only) by every worker during the build phase.
struct BuildPlan {
  const ScenarioConfig* config;
  const geom::Terrain* terrain;
  const std::vector<geom::Vec2>* positions;
  const std::vector<std::uint32_t>* owner;
  const std::vector<std::pair<std::uint32_t, std::uint32_t>>* pairs;
  phy::RadioParams radio;    ///< tx power already calibrated to range_m
  double strip_width = 0.0;  ///< ShardPartition strip width (crossing detect)
  /// Static-position runs: one immutable CSR index built by the
  /// coordinator and queried concurrently by every shard — index memory is
  /// O(n) instead of O(n*K). Null under mobility (each shard keeps a
  /// mutable replica driven by its own replicated position updates).
  std::shared_ptr<const geom::SpatialGrid> shared_index;
};

std::unique_ptr<ShardWorld> build_shard(const BuildPlan& plan,
                                        std::uint32_t shard_index) {
  const ScenarioConfig& config = *plan.config;
  auto world = std::make_unique<ShardWorld>(config.scheduler_queue);
  world->flows.enable_event_log();

  phy::ShardSpec spec;
  spec.shard = shard_index;
  spec.shards = config.shards;
  spec.owner = *plan.owner;
  spec.strip_width = plan.strip_width;

  // Pre-carve this worker's object pools for the nodes this shard owns —
  // at n=1M a shard would otherwise grow its arenas through thousands of
  // reallocation steps during the node loop below.
  std::size_t owned = 0;
  for (const std::uint32_t o : *plan.owner) owned += o == shard_index ? 1 : 0;
  SimInstance::reserve_node_pools(config, owned);

  des::Rng root(config.seed);
  world->network = std::make_unique<net::Network>(
      world->scheduler, *plan.terrain, SimInstance::make_propagation(config),
      plan.radio, config.mac,
      plan.shared_index ? std::vector<geom::Vec2>{} : *plan.positions,
      root.fork("network"), std::move(spec), plan.shared_index);

  net::Network& network = *world->network;
  for (std::uint32_t id = 0; id < network.size(); ++id) {
    if (!network.has_node(id)) continue;
    SimInstance::attach_protocol(config, network.node(id));
    app::attach_sink(network.node(id), world->flows);
  }

  app::CbrConfig cbr;
  cbr.interval = config.cbr_interval;
  cbr.payload_bytes = config.payload_bytes;
  cbr.start_time = config.traffic_start;
  cbr.stop_time = config.traffic_stop;
  for (std::size_t p = 0; p < plan.pairs->size(); ++p) {
    const auto& [src, dst] = (*plan.pairs)[p];
    RRNET_EXPECTS(src < network.size() && dst < network.size());
    app::CbrConfig pair_cbr = cbr;
    if (p < config.explicit_pair_intervals.size() &&
        config.explicit_pair_intervals[p] > 0.0) {
      pair_cbr.interval = config.explicit_pair_intervals[p];
    }
    if (network.has_node(src)) {
      world->sources.push_back(std::make_unique<app::CbrSource>(
          network.node(src), dst, pair_cbr, world->flows));
    }
    if (config.bidirectional && network.has_node(dst)) {
      world->sources.push_back(std::make_unique<app::CbrSource>(
          network.node(dst), src, pair_cbr, world->flows));
    }
  }

  // Replicated failure schedule (see ShardWorld docs): the full draw stream
  // runs on every shard from the same fork, exempt list in the same order
  // the serial builder pushes it.
  if (config.failure_fraction > 0.0) {
    phy::FailureConfig fc;
    fc.off_fraction = config.failure_fraction;
    fc.mean_cycle_s = config.failure_cycle_s;
    for (const auto& [src, dst] : *plan.pairs) {
      fc.exempt_nodes.push_back(src);
      fc.exempt_nodes.push_back(dst);
    }
    world->failures = std::make_unique<phy::FailureModel>(
        world->scheduler, network.channel(), fc, root.fork("failures"));
  }

  // Replicated mobility: every shard moves ALL nodes (not just owned ones)
  // from the same fork, so every shard's position grid stays bitwise equal
  // to the serial one — which is what lets a replayed handoff walk see the
  // same distances the source saw.
  if (config.mobility) {
    MobilityConfig mc;
    mc.min_speed_mps = config.mobility_min_speed_mps;
    mc.max_speed_mps = config.mobility_max_speed_mps;
    mc.pause_s = config.mobility_pause_s;
    for (const auto& [src, dst] : *plan.pairs) {
      mc.pinned_nodes.push_back(src);
      mc.pinned_nodes.push_back(dst);
    }
    world->mobility = std::make_unique<RandomWaypoint>(
        world->scheduler, network.channel(), *plan.terrain, mc,
        root.fork("mobility"));
  }

  if (config.track_energy) {
    for (std::uint32_t id = 0; id < network.size(); ++id) {
      if (!network.has_node(id)) continue;
      network.channel().transceiver(id).enable_energy(config.energy_profile,
                                                      world->scheduler);
    }
  }
  return world;
}

void harvest_shard(ShardWorld& world, ShardOutcome& out, bool track_energy) {
  namespace m = obs::metric;
  net::Network& network = *world.network;
  network.snapshot_metrics(out.metrics, &out.backoff_slots);
  out.metrics.add(m::kDesEventsExecuted, world.scheduler.executed_count());
  out.metrics.set_max(m::kDesHeapHighWater, world.scheduler.heap_high_water());
  out.flow_log = world.flows.take_event_log();
  out.mac_tx = network.total_mac_tx();
  out.channel_tx = network.channel().stats().transmissions;
  out.events_executed = world.scheduler.executed_count();
  if (track_energy) {
    // Every shard's scheduler sits at sim_end here (the last window), so the
    // final dwell interval closes at the same instant as the serial run's.
    for (std::uint32_t id = 0; id < network.size(); ++id) {
      if (!network.has_node(id)) continue;
      phy::Transceiver& radio = network.channel().transceiver(id);
      radio.finalize_energy();
      if (const phy::EnergyMeter* meter = radio.energy_meter()) {
        out.energy.emplace_back(id, meter->consumed_joules());
      }
    }
  }
}

}  // namespace

ScenarioResult run_scenario_sharded(const ScenarioConfig& config,
                                    std::vector<obs::TraceRecord>* trace_out) {
  const std::uint32_t shards = config.shards;
  RRNET_EXPECTS(shards >= 2);
  RRNET_EXPECTS(config.nodes >= 2);
  // The only remaining serial-only feature: PathTrace observes every
  // network-layer tx in one world, and relay paths cross strips. Mobility
  // is handled by replicated position updates + node migration, failures by
  // replicated draw streams with ownership-gated toggles, fading by the
  // counter-based per-link rng, and energy by meters that travel with
  // migrating nodes and a node-id-order final sum.
  RRNET_EXPECTS(!config.trace_paths);

  std::uint32_t threads = config.shard_threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, shards);

  // ---- Coordinator: everything every shard must agree on, computed once
  // from the same seed-derived forks the serial builder uses. ----
  const geom::Terrain terrain(config.width_m, config.height_m);
  auto model = SimInstance::make_propagation(config);
  phy::RadioParams radio = config.radio;
  radio.tx_power_dbm = phy::tx_power_for_range(*model, config.range_m,
                                               radio.rx_threshold_dbm);

  des::Rng root(config.seed);
  des::Rng placement_rng = root.fork("placement");
  const std::vector<geom::Vec2> positions =
      geom::place_uniform(terrain, config.nodes, placement_rng);

  const geom::ShardPartition partition(terrain, shards);
  const std::vector<std::uint32_t> owner =
      geom::shard_owner_map(partition, positions);

  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  if (!config.explicit_pairs.empty()) {
    pairs = config.explicit_pairs;
  } else {
    des::Rng pair_rng = root.fork("pairs");
    if (config.require_connected_pairs) {
      // Same disk graph the serial Topology(channel) snapshot sees: the
      // channel derives its nominal range with this exact expression.
      const double nominal_range = phy::range_for_threshold(
          *model, radio.tx_power_dbm, radio.rx_threshold_dbm,
          terrain.diameter());
      const Topology topology(positions, nominal_range);
      pairs = draw_connected_pairs(topology, config.pairs, pair_rng,
                                   config.min_pair_hops);
    } else {
      pairs = draw_pairs(positions.size(), config.pairs, pair_rng);
    }
  }

  // Static positions: build the spatial index ONCE (same cell-size
  // expression the channel uses) and hand every shard a read-only view.
  // Queries are const and the grid is never mutated (set_position asserts
  // exclusive ownership), so concurrent walks are race-free.
  std::shared_ptr<const geom::SpatialGrid> shared_index;
  if (!config.mobility) {
    const double cell = std::max(
        1.0, phy::range_for_threshold(*model, radio.tx_power_dbm,
                                      radio.interference_cutoff_dbm,
                                      terrain.diameter()));
    shared_index =
        std::make_shared<const geom::SpatialGrid>(terrain, cell, positions);
  }

  BuildPlan plan{&config,   &terrain, &positions,
                 &owner,    &pairs,   radio,
                 partition.strip_width(), shared_index};

  // ---- Shared window-protocol state. worlds/bounds/emitted/migration
  // slots are written by the owning worker and read by all; every
  // cross-thread handoff of these is ordered by a barrier crossing (or
  // thread join for the outcomes). ----
  SpinBarrier barrier(threads);
  std::vector<ShardWorld*> worlds(shards, nullptr);
  // bounds / emitted are double-buffered by round parity: a quiet round has
  // a single barrier (A), so round r's readers and round r+1's writers share
  // the span between two A crossings — parity gives them disjoint slots, and
  // the next same-parity write (round r+2) is separated from round r's reads
  // by barrier A(r+1). bounds[p][s] is the conservative transmit bound of
  // shard s; emitted[p][s] flags outbound handoffs or migration work.
  std::array<std::vector<des::Time>, 2> bounds{
      std::vector<des::Time>(shards, 0.0),
      std::vector<des::Time>(shards, 0.0)};
  std::array<std::vector<std::uint8_t>, 2> emitted{
      std::vector<std::uint8_t>(shards, 0),
      std::vector<std::uint8_t>(shards, 0)};
  std::vector<ShardOutcome> outcomes(shards);
  std::vector<obs::MetricRegistry> pool_metrics(threads);
  std::vector<std::vector<obs::TraceRecord>> trace_rings(threads);
  // Deferred node migrations: written by the source shard's worker between
  // barriers A and B (exchange rounds only), counted via migration_counts
  // (published before B so readers never size() a foreign vector
  // mid-write), applied by everyone between B and C, destroyed by the
  // source worker at the next loop top (ordered by C — records only exist
  // in rounds that crossed it).
  std::vector<std::vector<NodeMigration>> migrations(shards);
  std::vector<std::uint32_t> migration_counts(shards, 0);
  const bool want_trace = config.trace_events;
  const bool track_energy = config.track_energy;
  const des::Time sim_end = config.sim_end;
  const mac::MacParams mac = config.mac;
  // shard_window_batch == 0 selects the adaptive controller: the batch
  // doubles (capped) after each forced exchange that found every shard
  // quiet, and snaps back to 1 the moment any shard emits. Every worker
  // replicates the controller off shared emitted[] state, so all take the
  // same barrier path — and any batch value is bit-identical anyway (the
  // skipped exchange rounds are provably no-ops; see the purity test).
  const bool adaptive_batch = config.shard_window_batch == 0;
  constexpr std::uint32_t kMaxWindowBatch = 64;
  // Runtime profiler: per-worker phase/round accumulators, stamped only at
  // round boundaries (never per event — bit-identity untouched).
  std::unique_ptr<obs::RuntimeProfiler> profiler;
  if (config.profile_runtime) {
    profiler = std::make_unique<obs::RuntimeProfiler>(threads);
  }
  obs::RunHealthMonitor* monitor = config.health_monitor;
  if (monitor != nullptr) monitor->begin_run();
  // Budget abort flag: worker 0 decides between barriers A and B of an
  // exchange round, every worker reads it after B — a plain byte is enough,
  // the barrier crossings order the accesses. All workers then break at the
  // same round with every shard quiesced at the same window, so the partial
  // result flows through the normal harvest/merge.
  std::uint8_t stop_requested = 0;

  auto worker = [&](std::uint32_t t) {
    const std::uint32_t lo = t * shards / threads;
    const std::uint32_t hi = (t + 1) * shards / threads;
    obs::WorkerProfile* const prof =
        profiler != nullptr ? &profiler->worker(t) : nullptr;

    std::unique_ptr<obs::EventTracer> tracer;
    obs::EventTracer* prev_tracer = nullptr;
    if (want_trace) {
      tracer = std::make_unique<obs::EventTracer>(config.trace_capacity);
      tracer->set_enabled(true);
      prev_tracer = obs::set_thread_tracer(tracer.get());
    }

    // Pool baselines before building anything (thread-local arenas).
    util::PayloadPool& pkt_pool = net::packet_buffer_pool();
    pkt_pool.reset_high_water();
    std::uint64_t pkt_allocs_base =
        pkt_pool.stats().pool_allocs + pkt_pool.stats().heap_allocs;
    std::uint64_t pkt_heap_base = pkt_pool.stats().heap_allocs;
    std::uint64_t obj_allocs_base = 0;
    std::uint64_t obj_heap_base = 0;
    for_each_object_pool([&](util::PayloadPool& pool) {
      pool.reset_high_water();
      obj_allocs_base += pool.stats().pool_allocs + pool.stats().heap_allocs;
      obj_heap_base += pool.stats().heap_allocs;
    });

    std::vector<std::unique_ptr<ShardWorld>> mine;
    mine.reserve(hi - lo);
    for (std::uint32_t s = lo; s < hi; ++s) {
      mine.push_back(build_shard(plan, s));
      worlds[s] = mine.back().get();
    }
    // Publish worlds[] (and consume everyone else's) before any cross-shard
    // outbox access.
    barrier.arrive_and_wait();

    // t = 0: start protocols, environment drivers, and traffic in the
    // serial SimInstance order, then publish the initial bounds (parity
    // buffer 0 — the startup acts as round 0).
    for (std::uint32_t s = lo; s < hi; ++s) {
      ShardWorld& world = *worlds[s];
      world.network->start_protocols();
      if (world.failures != nullptr) world.failures->start();
      if (world.mobility != nullptr) world.mobility->start();
      for (auto& source : world.sources) source->start();
      bounds[0][s] = shard_bound(world, 0.0, mac);
    }
    barrier.arrive_and_wait();

    // Boundary-crossing nodes seen but not yet quiescent, per owned shard
    // (worker-local: only this thread harvests candidates from its shards).
    std::vector<std::vector<std::uint32_t>> pending(shards);
    std::vector<std::uint32_t> keep;
    // Outgoing migrations per owned shard (observability: summed into the
    // sim.node_migrations counter at harvest).
    std::vector<std::uint64_t> migrated(shards, 0);

    des::Time window = sim_end;
    for (std::uint32_t s = 0; s < shards; ++s) {
      window = std::min(window, bounds[0][s]);
    }
    // Consecutive windows that skipped the exchange; replicated identically
    // on every worker (it advances off shared emitted[] state only), so all
    // workers take the same barrier path every round.
    std::uint32_t quiet_streak = 0;
    std::uint32_t window_batch =
        adaptive_batch ? 1 : std::max(1u, config.shard_window_batch);
    std::uint32_t parity = 0;
    // Profiler round state: the previous round's window (for width), and
    // this round's barrier spin total (A + B + C) for the trace lane.
    des::Time window_start = 0.0;
    [[maybe_unused]] std::uint64_t round_barrier_ns = 0;
    if (prof != nullptr) prof->begin();
    for (;;) {
      parity ^= 1;
      for (std::uint32_t s = lo; s < hi; ++s) {
        // Safe to drop last window's handoffs and migration records now:
        // every destination deep-cloned / applied what it needed before the
        // previous barrier.
        worlds[s]->network->channel().clear_outboxes();
        migrations[s].clear();
        worlds[s]->scheduler.run_until(window);
      }
      for (std::uint32_t s = lo; s < hi; ++s) {
        phy::Channel& channel = worlds[s]->network->channel();
        emitted[parity][s] = channel.has_outbound() ||
                                     channel.has_migration_candidates() ||
                                     !pending[s].empty()
                                 ? 1
                                 : 0;
        // Provisional bound; exact when the exchange below is skipped
        // (injection and migration would both be no-ops then).
        obs::BoundSource bound_src = obs::BoundSource::ArmedTx;
        bounds[parity][s] = shard_bound(*worlds[s], window, mac,
                                        prof != nullptr ? &bound_src : nullptr);
        if (prof != nullptr) {
          ++prof->bound_source[static_cast<std::uint8_t>(bound_src)];
        }
      }
      if (prof != nullptr) {
        ++prof->rounds;
        const std::uint64_t exec_ns = prof->lap(obs::ShardPhase::Execute);
        RRNET_TRACE_EVENT(obs::EventKind::WindowSpan, window_start, t, exec_ns,
                          0);
        (void)exec_ns;
        if (t == 0) {
          // Window width / batch are global round properties: one observer,
          // or K workers would inflate the histogram counts K-fold.
          const double width_s = window - window_start;
          prof->window_width_ns.observe(
              width_s > 0.0 ? static_cast<std::uint64_t>(width_s * 1e9) : 0);
        }
        window_start = window;
        round_barrier_ns = 0;
      }
      barrier.arrive_and_wait();  // A: outboxes sealed, emitted[] published
      if (prof != nullptr) {
        round_barrier_ns = prof->lap(obs::ShardPhase::BarrierWait);
      }

      bool any_emitted = false;
      for (std::uint32_t s = 0; s < shards && !any_emitted; ++s) {
        any_emitted = emitted[parity][s] != 0;
      }
      const bool exchange =
          window >= sim_end || quiet_streak + 1 >= window_batch || any_emitted;
      if (!exchange) {
        // Quiet window: nothing outbound anywhere, so the injection +
        // rebound + barrier B round-trip is skipped entirely. Bit-identical
        // for any window_batch — the skipped work is provably a no-op.
        ++quiet_streak;
        if (prof != nullptr) {
          RRNET_TRACE_EVENT(obs::EventKind::BarrierWait, window, t,
                            round_barrier_ns, 0);
        }
        des::Time next = sim_end;
        for (std::uint32_t s = 0; s < shards; ++s) {
          next = std::min(next, bounds[parity][s]);
        }
        window = next;
        continue;
      }
      if (adaptive_batch) {
        // Busy window: exchanges are earning their keep, go tight. A forced
        // exchange that found nothing anywhere: widen the quiet allowance.
        window_batch = any_emitted
                           ? 1
                           : std::min(window_batch * 2, kMaxWindowBatch);
      }
      quiet_streak = 0;
      if (prof != nullptr) {
        ++prof->exchange_rounds;
        if (!any_emitted && window < sim_end) ++prof->forced_quiet_exchanges;
        if (t == 0) prof->batch_width.observe(window_batch);
      }

      for (std::uint32_t s = lo; s < hi; ++s) {
        phy::Channel& channel = worlds[s]->network->channel();
        if (prof != nullptr) {
          // This shard's sealed outboxes: its exchange fan-out this round.
          const std::uint64_t fanout = channel.outbound_handoffs();
          prof->handoffs_out += fanout;
          prof->handoff_fanout.observe(fanout);
        }
        // Source-shard-index order, push order within: the deterministic
        // merge that keeps the replayed receiver walks in serial order.
        for (std::uint32_t src = 0; src < shards; ++src) {
          if (src == s) continue;
          for (const phy::ShardHandoff& handoff :
               worlds[src]->network->channel().outbox(s)) {
            channel.inject_remote(handoff);
          }
        }

        // Migration records AFTER injection: a handoff aimed at a crossing
        // node parks a pending rx on it, which vetoes the move this round.
        net::Network& network = *worlds[s]->network;
        channel.take_migration_candidates(pending[s]);
        std::sort(pending[s].begin(), pending[s].end());
        pending[s].erase(std::unique(pending[s].begin(), pending[s].end()),
                         pending[s].end());
        keep.clear();
        for (const std::uint32_t id : pending[s]) {
          net::Node& node = network.node(id);
          // Non-migratable protocols keep static ownership: semantically any
          // owner map is correct (the full grid replays every walk), the
          // strips just stay unbalanced. Drop the candidate for good.
          if (!node.protocol().migratable()) continue;
          const std::uint32_t dst =
              channel.shard_of_position(channel.position(id));
          if (dst == s) continue;  // wandered back home before quiescing
          phy::Transceiver& radio = channel.transceiver(id);
          if (!node.protocol().quiescent() || !node.mac().quiescent() ||
              !radio.quiescent() || channel.has_pending_rx(id)) {
            keep.push_back(id);  // busy: retry at a later window
            continue;
          }
          NodeMigration rec;
          rec.node = id;
          rec.src = s;
          rec.dst = dst;
          rec.frame_counter = channel.frame_counter(id);
          rec.last_uid = node.last_uid();
          rec.node_stats = node.stats();
          rec.node_rng = node.rng().state();
          rec.mac = node.mac().export_migration_state();
          rec.radio = radio.export_snapshot();
          rec.protocol = node.protocol().export_state();
          migrations[s].push_back(std::move(rec));
        }
        pending[s].assign(keep.begin(), keep.end());
        migration_counts[s] =
            static_cast<std::uint32_t>(migrations[s].size());
        if (window < sim_end) {
          migrated[s] += migrations[s].size();
          if (prof != nullptr) prof->migrations_out += migrations[s].size();
        }

        // Bound AFTER injection: replayed signals feed the PHY-event term.
        // Migrating nodes are quiescent by construction, so re-homing them
        // after barrier B cannot invalidate this bound.
        bounds[parity][s] = shard_bound(*worlds[s], window, mac);
      }
      if (t == 0 && monitor != nullptr) {
        // Health sample on exchange rounds only: foreign executed_ counters
        // were last written before barrier A (happens-before via the spin
        // barrier) and their owners are parked until B, so summing them
        // here is race-free. Quiet rounds cross only barrier A and give no
        // such window.
        std::uint64_t events = 0;
        for (std::uint32_t s = 0; s < shards; ++s) {
          events += worlds[s]->scheduler.executed_count();
        }
        stop_requested = monitor->checkpoint(events) ? 0 : 1;
      }
      if (prof != nullptr) (void)prof->lap(obs::ShardPhase::Exchange);
      barrier.arrive_and_wait();  // B: bounds + migration counts published
      if (prof != nullptr) {
        round_barrier_ns += prof->lap(obs::ShardPhase::BarrierWait);
      }

      std::uint32_t total_migrations = 0;
      for (std::uint32_t s = 0; s < shards; ++s) {
        total_migrations += migration_counts[s];
      }
      if (window < sim_end && total_migrations > 0) {
        // EVERY worker walks ALL records in (source shard, record) order:
        // each updates the owner maps of the shards it owns for every
        // record, and performs the evict / adopt halves it owns. The
        // per-record order (owner map first) satisfies the adopt/evict
        // contracts when src or dst is local.
        for (std::uint32_t src = 0; src < shards; ++src) {
          for (const NodeMigration& rec : migrations[src]) {
            for (std::uint32_t s = lo; s < hi; ++s) {
              worlds[s]->network->channel().set_owner(rec.node, rec.dst);
            }
            if (rec.src >= lo && rec.src < hi) {
              worlds[rec.src]->network->evict_node(rec.node);
            }
            if (rec.dst >= lo && rec.dst < hi) {
              ShardWorld& world = *worlds[rec.dst];
              net::Node& node = world.network->adopt_node(rec.node);
              SimInstance::attach_protocol(config, node);
              app::attach_sink(node, world.flows);
              node.protocol().start();
              world.network->channel().restore_frame_counter(
                  rec.node, rec.frame_counter);
              node.restore_migration_state(rec.node_stats, rec.last_uid,
                                           rec.node_rng);
              node.mac().import_migration_state(rec.mac);
              world.network->channel().transceiver(rec.node).import_snapshot(
                  rec.radio);
              if (rec.protocol != nullptr) {
                node.protocol().import_state(*rec.protocol);
              }
            }
          }
        }
        if (prof != nullptr) (void)prof->lap(obs::ShardPhase::Exchange);
        // C: all adoptions done before any source clears its records (next
        // loop top) or transmits to the node's new home.
        barrier.arrive_and_wait();
        if (prof != nullptr) {
          round_barrier_ns += prof->lap(obs::ShardPhase::BarrierWait);
        }
      }
      if (prof != nullptr) {
        RRNET_TRACE_EVENT(obs::EventKind::BarrierWait, window, t,
                          round_barrier_ns, 0);
      }

      // Budget abort (worker 0's verdict, published before barrier B): all
      // workers break at the same round, every shard quiesced at `window`,
      // migrations fully applied — a consistent partial result.
      if (stop_requested != 0) break;
      if (window >= sim_end) break;
      des::Time next = sim_end;
      for (std::uint32_t s = 0; s < shards; ++s) {
        next = std::min(next, bounds[parity][s]);
      }
      window = next;
    }
    if (prof != nullptr) prof->end();

    // Harvest on the owning thread (snapshot_metrics walks thread-local
    // pool-backed structures), then destroy the worlds here too.
    for (std::uint32_t s = lo; s < hi; ++s) {
      harvest_shard(*worlds[s], outcomes[s], track_energy);
      if (migrated[s] > 0) {
        outcomes[s].metrics.add(obs::metric::kSimNodeMigrations, migrated[s]);
      }
    }
    mine.clear();

    namespace m = obs::metric;
    obs::MetricRegistry& pools = pool_metrics[t];
    pools.add(m::kPoolPacketAllocs, pkt_pool.stats().pool_allocs +
                                        pkt_pool.stats().heap_allocs -
                                        pkt_allocs_base);
    pools.add(m::kPoolPacketHeapAllocs,
              pkt_pool.stats().heap_allocs - pkt_heap_base);
    pools.set_max(m::kPoolPacketInUseHighWater, pkt_pool.in_use_high_water());
    std::uint64_t obj_allocs = 0;
    std::uint64_t obj_heap = 0;
    std::uint64_t obj_hw = 0;
    for_each_object_pool([&](const util::PayloadPool& pool) {
      obj_allocs += pool.stats().pool_allocs + pool.stats().heap_allocs;
      obj_heap += pool.stats().heap_allocs;
      obj_hw += pool.in_use_high_water();
    });
    pools.add(m::kPoolObjectAllocs, obj_allocs - obj_allocs_base);
    pools.add(m::kPoolObjectHeapAllocs, obj_heap - obj_heap_base);
    pools.set_max(m::kPoolObjectInUseHighWater, obj_hw);

    if (want_trace) {
      trace_rings[t] = tracer->snapshot();
      obs::set_thread_tracer(prev_tracer);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (std::uint32_t t = 1; t < threads; ++t) {
    pool.emplace_back(worker, t);
  }
  worker(0);
  for (std::thread& th : pool) th.join();

  // ---- Deterministic merge (coordinator, after join). ----
  ScenarioResult r;
  app::FlowStats flows;
  {
    std::vector<app::FlowStats::FlowEvent> merged;
    std::size_t total = 0;
    for (const ShardOutcome& out : outcomes) total += out.flow_log.size();
    merged.reserve(total);
    for (const ShardOutcome& out : outcomes) {
      merged.insert(merged.end(), out.flow_log.begin(), out.flow_log.end());
    }
    // Each shard's log is already time-sorted (execution order); a stable
    // sort of the shard-order concatenation is the (time, shard, seq)
    // merge. Absent cross-shard bitwise-equal timestamps — which the
    // determinism test would catch — this is the serial event order, so the
    // replayed dedup windows and FP accumulations match bit-for-bit.
    std::stable_sort(merged.begin(), merged.end(),
                     [](const app::FlowStats::FlowEvent& a,
                        const app::FlowStats::FlowEvent& b) {
                       return a.time < b.time;
                     });
    for (const app::FlowStats::FlowEvent& event : merged) {
      flows.replay(event);
    }
  }

  r.sent = flows.sent();
  r.delivered = flows.delivered();
  r.delivery_ratio = flows.delivery_ratio();
  r.mean_delay_s = flows.delay().empty() ? 0.0 : flows.delay().mean();
  r.mean_hops = flows.hops().empty() ? 0.0 : flows.hops().mean();
  obs::Histogram backoff_slots;
  for (const ShardOutcome& out : outcomes) {
    r.mac_packets += out.mac_tx;
    r.channel_transmissions += out.channel_tx;
    r.events_executed += out.events_executed;
    r.metrics.merge(out.metrics);  // shard-index order
    backoff_slots.merge(out.backoff_slots);
  }
  if (track_energy) {
    // Exactly one shard reported each node (migrations re-home the meter
    // with the node). Summing in node-id order reproduces the serial FP
    // accumulation bit-for-bit regardless of final ownership.
    std::vector<std::pair<std::uint32_t, double>> energy;
    for (const ShardOutcome& out : outcomes) {
      energy.insert(energy.end(), out.energy.begin(), out.energy.end());
    }
    std::sort(energy.begin(), energy.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    double joules = 0.0;
    for (const auto& [id, j] : energy) joules += j;
    r.total_energy_j = joules;
    if (r.delivered > 0) {
      r.energy_per_delivered_j = joules / static_cast<double>(r.delivered);
    }
  }
  // Percentiles come from the UNION histogram — merging per-shard p50/p99
  // gauges by max would not match the serial flattening.
  if (!backoff_slots.empty()) {
    backoff_slots.snapshot_into(r.metrics, obs::metric::kMacBackoffSlots);
  }
  for (const obs::MetricRegistry& pools : pool_metrics) {
    r.metrics.merge(pools);
  }
  if (profiler != nullptr) profiler->snapshot_into(r.metrics);
  if (monitor != nullptr) {
    if (profiler != nullptr) monitor->note_profile(*profiler);
    monitor->finish_run(r.events_executed);
  }

  if (trace_out != nullptr && want_trace) {
    const std::vector<obs::TraceRecord> merged =
        obs::merge_records_by_time(trace_rings);
    trace_out->insert(trace_out->end(), merged.begin(), merged.end());
  }
  return r;
}

}  // namespace rrnet::sim
