// Generation-counting spin barrier for the sharded engine's time windows.
//
// The window protocol crosses a barrier twice per window (outboxes-sealed,
// bounds-published), hundreds of thousands of times per run, so the barrier
// must cost nanoseconds when all workers arrive together: a futex-based
// std::barrier syscalls under contention, while this one spins on one cache
// line and falls back to yield only when a worker is genuinely late (e.g.
// more shards than cores).
//
// Memory ordering: the arriving store (fetch_add, acq_rel) and the release
// bump of the generation publish every write a worker made before the
// barrier to every worker that observes the new generation (acquire loads).
// This is the happens-before edge that makes the cross-shard outbox
// hand-off data-race-free — TSan verifies exactly this in the sanitizer
// sweep scripts/verify.sh runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "util/contracts.hpp"

namespace rrnet::sim {

class SpinBarrier {
 public:
  explicit SpinBarrier(std::uint32_t parties) : parties_(parties) {
    RRNET_EXPECTS(parties >= 1);
  }

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Block (spinning) until all parties have arrived at this barrier
  /// crossing. Safe to reuse immediately for the next crossing.
  void arrive_and_wait() noexcept {
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_release);
      return;
    }
    std::uint32_t spins = 0;
    while (generation_.load(std::memory_order_acquire) == gen) {
      // Spin hot for a while (the common case: all workers in lockstep),
      // then yield so oversubscribed runs (shards > cores) still progress.
      if (++spins > 4096) std::this_thread::yield();
    }
  }

 private:
  std::uint32_t parties_;
  std::atomic<std::uint32_t> arrived_{0};
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace rrnet::sim
