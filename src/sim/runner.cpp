#include "sim/runner.hpp"

namespace rrnet::sim {

ScenarioResult run_scenario(const ScenarioConfig& config) {
  SimInstance sim(config);
  sim.run();
  return sim.result();
}

}  // namespace rrnet::sim
