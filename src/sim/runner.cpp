#include "sim/runner.hpp"

#include "sim/sharded.hpp"

namespace rrnet::sim {

ScenarioResult run_scenario(const ScenarioConfig& config) {
  if (config.shards > 1) return run_scenario_sharded(config);
  SimInstance sim(config);
  sim.run();
  return sim.result();
}

}  // namespace rrnet::sim
