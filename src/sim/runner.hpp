// One-shot scenario execution.
#pragma once

#include "sim/builder.hpp"
#include "sim/scenario.hpp"

namespace rrnet::sim {

/// Build, run to sim_end, and return the headline metrics.
[[nodiscard]] ScenarioResult run_scenario(const ScenarioConfig& config);

}  // namespace rrnet::sim
