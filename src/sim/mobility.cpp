#include "sim/mobility.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace rrnet::sim {

RandomWaypoint::RandomWaypoint(des::Scheduler& scheduler,
                               phy::Channel& channel,
                               const geom::Terrain& terrain,
                               MobilityConfig config, des::Rng rng)
    : scheduler_(&scheduler),
      channel_(&channel),
      terrain_(terrain),
      config_(std::move(config)),
      rng_(rng),
      states_(channel.node_count()) {
  RRNET_EXPECTS(config_.min_speed_mps > 0.0);
  RRNET_EXPECTS(config_.max_speed_mps >= config_.min_speed_mps);
  RRNET_EXPECTS(config_.tick_s > 0.0);
  for (const std::uint32_t node : config_.pinned_nodes) {
    RRNET_EXPECTS(node < states_.size());
    states_[node].pinned = true;
  }
}

void RandomWaypoint::choose_waypoint(std::uint32_t node) {
  NodeState& st = states_[node];
  st.waypoint = {rng_.uniform(0.0, terrain_.width()),
                 rng_.uniform(0.0, terrain_.height())};
  st.speed = rng_.uniform(config_.min_speed_mps, config_.max_speed_mps);
  st.paused = false;
}

void RandomWaypoint::start() {
  for (std::uint32_t node = 0; node < states_.size(); ++node) {
    if (states_[node].pinned) continue;
    choose_waypoint(node);
    // Desynchronize ticks across nodes.
    scheduler_->schedule_in(rng_.uniform(0.0, config_.tick_s),
                            [this, node]() { tick(node); });
  }
}

void RandomWaypoint::tick(std::uint32_t node) {
  NodeState& st = states_[node];
  if (st.paused) {
    choose_waypoint(node);
    scheduler_->schedule_in(config_.tick_s, [this, node]() { tick(node); });
    return;
  }
  const geom::Vec2 pos = channel_->position(node);
  const geom::Vec2 to_waypoint = st.waypoint - pos;
  const double remaining = to_waypoint.norm();
  const double step = st.speed * config_.tick_s;
  if (remaining <= step) {
    channel_->set_position(node, st.waypoint);
    st.traveled += remaining;
    st.paused = true;
    scheduler_->schedule_in(config_.pause_s, [this, node]() { tick(node); });
    return;
  }
  const geom::Vec2 next = pos + to_waypoint * (step / remaining);
  channel_->set_position(node, terrain_.clamp(next));
  st.traveled += step;
  scheduler_->schedule_in(config_.tick_s, [this, node]() { tick(node); });
}

double RandomWaypoint::distance_traveled(std::uint32_t node) const {
  RRNET_EXPECTS(node < states_.size());
  return states_[node].traveled;
}

}  // namespace rrnet::sim
