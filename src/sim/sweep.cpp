#include "sim/sweep.hpp"

#include <cstdio>

#include "util/contracts.hpp"

namespace rrnet::sim {

void Sweep::run(const std::string& label, ProtocolKind protocol,
                const ConfigMutator& mutate) {
  Series series;
  series.label = label;
  series.points.reserve(spec_.x_values.size());
  for (const double x : spec_.x_values) {
    ScenarioConfig config = base_;
    config.protocol = protocol;
    if (mutate) mutate(config, x);
    series.points.push_back(
        run_replications(config, spec_.replications, spec_.threads));
    std::fprintf(stderr, "  [%s] %s=%g done (%zu reps)\n", label.c_str(),
                 spec_.x_label.c_str(), x, spec_.replications);
  }
  series_.push_back(std::move(series));
}

util::Table Sweep::table() const {
  RRNET_EXPECTS(!series_.empty());
  std::vector<std::string> columns{spec_.x_label};
  for (const Series& s : series_) {
    columns.push_back(s.label + "_delivery");
    columns.push_back(s.label + "_delay_s");
    columns.push_back(s.label + "_hops");
    columns.push_back(s.label + "_mac_pkts");
    // Observability counters (summed over replications): control-plane
    // overhead, channel contention, suppression pressure, election activity.
    columns.push_back(s.label + "_ctrl_tx");
    columns.push_back(s.label + "_phy_drop_collision");
    columns.push_back(s.label + "_dup_hits");
    columns.push_back(s.label + "_elec_won");
  }
  util::Table table(columns);
  namespace m = obs::metric;
  for (std::size_t i = 0; i < spec_.x_values.size(); ++i) {
    std::vector<util::Cell> row;
    row.emplace_back(spec_.x_values[i]);
    for (const Series& s : series_) {
      RRNET_ASSERT(s.points.size() == spec_.x_values.size());
      const Aggregated& a = s.points[i];
      row.emplace_back(a.delivery_ratio.mean);
      row.emplace_back(a.delay_s.mean);
      row.emplace_back(a.hops.mean);
      row.emplace_back(a.mac_packets.mean);
      row.emplace_back(static_cast<double>(a.metrics.value(m::kNetTxControl)));
      row.emplace_back(
          static_cast<double>(a.metrics.value(m::kPhyDropCollision)));
      row.emplace_back(
          static_cast<double>(a.metrics.value(m::kNetDupCacheHits)));
      row.emplace_back(static_cast<double>(a.metrics.value(m::kElectionWon)));
    }
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace rrnet::sim
