// Random-waypoint mobility (the classic MANET model).
//
// Each node repeatedly: picks a uniform random waypoint in the terrain,
// moves toward it in straight-line steps at a uniform random speed from
// [min_speed, max_speed], then pauses. Positions are updated in discrete
// ticks; the channel uses the position current at each transmission.
#pragma once

#include <cstdint>
#include <vector>

#include "des/rng.hpp"
#include "des/scheduler.hpp"
#include "phy/channel.hpp"

namespace rrnet::sim {

struct MobilityConfig {
  double min_speed_mps = 1.0;
  double max_speed_mps = 5.0;
  des::Time pause_s = 2.0;
  des::Time tick_s = 0.5;  ///< position update granularity
  std::vector<std::uint32_t> pinned_nodes;  ///< never move (e.g. sinks)
};

class RandomWaypoint {
 public:
  RandomWaypoint(des::Scheduler& scheduler, phy::Channel& channel,
                 const geom::Terrain& terrain, MobilityConfig config,
                 des::Rng rng);

  /// Begin moving nodes; call once before the simulation runs.
  void start();

  /// Total distance traveled by one node so far (m), for tests.
  [[nodiscard]] double distance_traveled(std::uint32_t node) const;

 private:
  struct NodeState {
    geom::Vec2 waypoint{};
    double speed = 0.0;
    bool paused = true;
    double traveled = 0.0;
    bool pinned = false;
  };

  void tick(std::uint32_t node);
  void choose_waypoint(std::uint32_t node);

  des::Scheduler* scheduler_;
  phy::Channel* channel_;
  geom::Terrain terrain_;
  MobilityConfig config_;
  des::Rng rng_;
  std::vector<NodeState> states_;
};

}  // namespace rrnet::sim
