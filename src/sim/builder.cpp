#include "sim/builder.hpp"

#include <algorithm>

#include "geom/placement.hpp"
#include "obs/profiler.hpp"
#include "sim/topology.hpp"
#include "proto/flooding.hpp"
#include "util/contracts.hpp"
#include "util/pool.hpp"

namespace rrnet::sim {

namespace {

/// Walk the calling thread's object size-class pools.
template <typename Fn>
void for_each_object_pool(Fn&& fn) {
  for (std::size_t bytes = util::kSizeClassStep; bytes <= util::kSizeClassMax;
       bytes += util::kSizeClassStep) {
    fn(util::sized_pool(bytes));
  }
}

}  // namespace

std::unique_ptr<phy::PropagationModel> SimInstance::make_propagation(
    const ScenarioConfig& config) {
  const double f = config.radio.frequency_hz;
  switch (config.propagation) {
    case PropagationKind::FreeSpace:
      return std::make_unique<phy::FreeSpace>(f);
    case PropagationKind::TwoRay:
      return std::make_unique<phy::TwoRayGround>(f);
    case PropagationKind::LogDistance:
      return std::make_unique<phy::LogDistance>(config.pathloss_exponent, 1.0, f);
    case PropagationKind::Rayleigh:
      return std::make_unique<phy::RayleighFading>(
          std::make_unique<phy::FreeSpace>(f));
    case PropagationKind::Shadowing:
      return std::make_unique<phy::LogNormalShadowing>(
          std::make_unique<phy::FreeSpace>(f), config.shadowing_sigma_db);
  }
  return std::make_unique<phy::FreeSpace>(f);
}

void SimInstance::attach_protocol(const ScenarioConfig& config,
                                  net::Node& node) {
  switch (config.protocol) {
    case ProtocolKind::Counter1Flooding:
      node.set_protocol(proto::make_counter1_flooding(node, config.flood_lambda,
                                                      config.flood_ttl));
      return;
    case ProtocolKind::Ssaf: {
      proto::SsafConfig sc = config.ssaf;
      sc.ttl = config.flood_ttl;
      node.set_protocol(proto::make_ssaf(node, sc));
      return;
    }
    case ProtocolKind::BlindFlooding: {
      proto::FloodingConfig fc;
      fc.lambda = config.flood_lambda;
      fc.ttl = config.flood_ttl;
      fc.blind = true;
      node.set_protocol(std::make_unique<proto::FloodingProtocol>(
          node, fc, std::make_unique<core::UniformBackoff>(config.flood_lambda)));
      return;
    }
    case ProtocolKind::Routeless:
      node.set_protocol(
          std::make_unique<proto::RoutelessProtocol>(node, config.routeless));
      return;
    case ProtocolKind::Aodv:
      node.set_protocol(
          std::make_unique<proto::AodvProtocol>(node, config.aodv));
      return;
    case ProtocolKind::Gradient:
      node.set_protocol(
          std::make_unique<proto::GradientProtocol>(node, config.gradient));
      return;
    case ProtocolKind::Dsdv:
      node.set_protocol(
          std::make_unique<proto::DsdvProtocol>(node, config.dsdv));
      return;
    case ProtocolKind::Dsr:
      node.set_protocol(
          std::make_unique<proto::DsrProtocol>(node, config.dsr));
      return;
  }
  RRNET_ASSERT(false);
}

void SimInstance::reserve_node_pools(const ScenarioConfig& config,
                                     std::size_t nodes) {
  if (nodes == 0) return;
  // One entry per size class: distinct types can share a class, so counts
  // accumulate before any pool is grown.
  std::size_t need[util::kSizeClassMax / util::kSizeClassStep] = {};
  const auto note = [&](std::size_t bytes) {
    if (bytes == 0 || bytes > util::kSizeClassMax) return;
    need[(bytes + util::kSizeClassStep - 1) / util::kSizeClassStep - 1] +=
        nodes;
  };
  note(sizeof(net::Node));
  note(sizeof(phy::Transceiver));
  note(sizeof(mac::CsmaMac));
  switch (config.protocol) {
    case ProtocolKind::Counter1Flooding:
    case ProtocolKind::BlindFlooding:
      note(sizeof(proto::FloodingProtocol));
      break;
    case ProtocolKind::Ssaf:
      note(sizeof(proto::SsafProtocol));
      break;
    case ProtocolKind::Routeless:
      note(sizeof(proto::RoutelessProtocol));
      break;
    case ProtocolKind::Aodv:
      note(sizeof(proto::AodvProtocol));
      break;
    case ProtocolKind::Gradient:
      note(sizeof(proto::GradientProtocol));
      break;
    case ProtocolKind::Dsdv:
      note(sizeof(proto::DsdvProtocol));
      break;
    case ProtocolKind::Dsr:
      note(sizeof(proto::DsrProtocol));
      break;
  }
  for (std::size_t i = 0; i < util::kSizeClassMax / util::kSizeClassStep; ++i) {
    if (need[i] == 0) continue;
    const std::size_t rounded = (i + 1) * util::kSizeClassStep;
    util::PayloadPool& pool = util::sized_pool(rounded);
    pool.ensure_capacity(pool.in_use() + need[i], rounded);
  }
}

SimInstance::SimInstance(const ScenarioConfig& config)
    : config_(config),
      scheduler_(config.scheduler_queue),
      terrain_(config.width_m, config.height_m) {
  RRNET_EXPECTS(config.nodes >= 2);

  // Pool metrics are per-run deltas: the thread-local arenas accumulate
  // counters across every run on this worker thread, so capture baselines
  // (and restart the occupancy high-waters) before building anything. A run
  // starts with all prior buffers released, so deltas are deterministic per
  // seed regardless of how many runs this thread served before.
  {
    util::PayloadPool& pkt = net::packet_buffer_pool();
    pkt.reset_high_water();
    packet_allocs_base_ = pkt.stats().pool_allocs + pkt.stats().heap_allocs;
    packet_heap_allocs_base_ = pkt.stats().heap_allocs;
    object_allocs_base_ = 0;
    object_heap_allocs_base_ = 0;
    for_each_object_pool([this](util::PayloadPool& pool) {
      pool.reset_high_water();
      object_allocs_base_ += pool.stats().pool_allocs + pool.stats().heap_allocs;
      object_heap_allocs_base_ += pool.stats().heap_allocs;
    });
  }

  if (config_.trace_events) {
    tracer_ = std::make_unique<obs::EventTracer>(config_.trace_capacity);
    tracer_->set_enabled(true);
    prev_tracer_ = obs::set_thread_tracer(tracer_.get());
  }

  des::Rng root(config.seed);

  auto model = make_propagation(config_);
  phy::RadioParams radio = config_.radio;
  // Calibrate tx power so the nominal range is exactly config.range_m.
  radio.tx_power_dbm =
      phy::tx_power_for_range(*model, config_.range_m, radio.rx_threshold_dbm);

  des::Rng placement_rng = root.fork("placement");
  std::vector<geom::Vec2> positions =
      geom::place_uniform(terrain_, config_.nodes, placement_rng);

  reserve_node_pools(config_, config_.nodes);
  network_ = std::make_unique<net::Network>(
      scheduler_, terrain_, std::move(model), radio, config_.mac,
      std::move(positions), root.fork("network"));

  for (std::uint32_t id = 0; id < network_->size(); ++id) {
    attach_protocol(config_, network_->node(id));
    app::attach_sink(network_->node(id), flows_);
  }

  // Traffic pairs.
  if (!config_.explicit_pairs.empty()) {
    pairs_ = config_.explicit_pairs;
  } else {
    des::Rng pair_rng = root.fork("pairs");
    if (config_.require_connected_pairs) {
      const Topology topology(network_->channel());
      pairs_ = draw_connected_pairs(topology, config_.pairs, pair_rng,
                                    config_.min_pair_hops);
    } else {
      pairs_ = draw_pairs(network_->size(), config_.pairs, pair_rng);
    }
  }
  app::CbrConfig cbr;
  cbr.interval = config_.cbr_interval;
  cbr.payload_bytes = config_.payload_bytes;
  cbr.start_time = config_.traffic_start;
  cbr.stop_time = config_.traffic_stop;
  for (std::size_t p = 0; p < pairs_.size(); ++p) {
    const auto& [src, dst] = pairs_[p];
    RRNET_EXPECTS(src < network_->size() && dst < network_->size());
    app::CbrConfig pair_cbr = cbr;
    if (p < config_.explicit_pair_intervals.size() &&
        config_.explicit_pair_intervals[p] > 0.0) {
      pair_cbr.interval = config_.explicit_pair_intervals[p];
    }
    sources_.push_back(std::make_unique<app::CbrSource>(network_->node(src),
                                                        dst, pair_cbr, flows_));
    if (config_.bidirectional) {
      sources_.push_back(std::make_unique<app::CbrSource>(
          network_->node(dst), src, pair_cbr, flows_));
    }
  }

  // Node failures: traffic endpoints are exempt (the paper turns off
  // transceivers "in all nodes but those that generate and receive CBR
  // traffic").
  if (config_.failure_fraction > 0.0) {
    phy::FailureConfig fc;
    fc.off_fraction = config_.failure_fraction;
    fc.mean_cycle_s = config_.failure_cycle_s;
    for (const auto& [src, dst] : pairs_) {
      fc.exempt_nodes.push_back(src);
      fc.exempt_nodes.push_back(dst);
    }
    failures_ = std::make_unique<phy::FailureModel>(
        scheduler_, network_->channel(), fc, root.fork("failures"));
  }

  if (config_.mobility) {
    MobilityConfig mc;
    mc.min_speed_mps = config_.mobility_min_speed_mps;
    mc.max_speed_mps = config_.mobility_max_speed_mps;
    mc.pause_s = config_.mobility_pause_s;
    for (const auto& [src, dst] : pairs_) {
      mc.pinned_nodes.push_back(src);
      mc.pinned_nodes.push_back(dst);
    }
    mobility_ = std::make_unique<RandomWaypoint>(
        scheduler_, network_->channel(), terrain_, mc, root.fork("mobility"));
  }

  if (config_.track_energy) {
    for (std::uint32_t id = 0; id < network_->size(); ++id) {
      network_->channel().transceiver(id).enable_energy(
          config_.energy_profile, scheduler_);
    }
  }

  if (config_.trace_paths) {
    trace_ = std::make_unique<trace::PathTrace>(*network_);
  }
}

SimInstance::~SimInstance() {
  // Only restore if we are still the installed tracer: a later SimInstance
  // on this thread may have replaced us (LIFO destruction restores
  // correctly; other orders leave the newest tracer installed).
  if (tracer_ != nullptr && obs::thread_tracer() == tracer_.get()) {
    obs::set_thread_tracer(prev_tracer_);
  }
}

void SimInstance::run_until(des::Time t) {
  // Re-install our tracer in case another instance was built in between.
  if (tracer_ != nullptr && obs::thread_tracer() != tracer_.get()) {
    obs::set_thread_tracer(tracer_.get());
  }
  if (!started_) {
    started_ = true;
    network_->start_protocols();
    if (failures_ != nullptr) failures_->start();
    if (mobility_ != nullptr) mobility_->start();
    for (auto& source : sources_) source->start();
  }
  obs::RunHealthMonitor* monitor = config_.health_monitor;
  if (monitor == nullptr) {
    scheduler_.run_until(t);
    return;
  }
  // Serial health sampling: run in bounded event slices so the monitor can
  // sample throughput/RSS "every N events" and enforce budgets between
  // slices. The slice sequence executes exactly what one run_until(t)
  // would, so results are unchanged; a budget abort stops at a slice edge
  // and keeps the partial state consistent for result().
  constexpr std::uint64_t kEventsPerCheckpoint = std::uint64_t{1} << 18;
  bool within_budget = monitor->checkpoint(scheduler_.executed_count());
  while (within_budget && !scheduler_.run_until(t, kEventsPerCheckpoint)) {
    within_budget = monitor->checkpoint(scheduler_.executed_count());
  }
}

void SimInstance::run() {
  run_until(config_.sim_end);
  if (config_.health_monitor != nullptr) {
    config_.health_monitor->finish_run(scheduler_.executed_count());
  }
}

ScenarioResult SimInstance::result() const {
  ScenarioResult r;
  r.sent = flows_.sent();
  r.delivered = flows_.delivered();
  r.delivery_ratio = flows_.delivery_ratio();
  r.mean_delay_s = flows_.delay().empty() ? 0.0 : flows_.delay().mean();
  r.mean_hops = flows_.hops().empty() ? 0.0 : flows_.hops().mean();
  r.mac_packets = network_->total_mac_tx();
  r.channel_transmissions = network_->channel().stats().transmissions;
  r.events_executed = scheduler_.executed_count();
  if (config_.track_energy) {
    double joules = 0.0;
    for (std::uint32_t id = 0; id < network_->size(); ++id) {
      // finalize_energy is idempotent at a fixed clock time.
      auto& radio = const_cast<SimInstance*>(this)
                        ->network_->channel().transceiver(id);
      radio.finalize_energy();
      if (const phy::EnergyMeter* meter = radio.energy_meter()) {
        joules += meter->consumed_joules();
      }
    }
    r.total_energy_j = joules;
    if (r.delivered > 0) {
      r.energy_per_delivered_j = joules / static_cast<double>(r.delivered);
    }
  }

  // Per-layer counter snapshot. Must run on the thread that ran the
  // simulation (the pools are thread-local); replication workers respect
  // this by building, running, and reading each instance on one thread.
  namespace m = obs::metric;
  network_->snapshot_metrics(r.metrics);
  r.metrics.add(m::kDesEventsExecuted, scheduler_.executed_count());
  r.metrics.set_max(m::kDesHeapHighWater, scheduler_.heap_high_water());

  const util::PayloadPool& pkt = net::packet_buffer_pool();
  r.metrics.add(m::kPoolPacketAllocs, pkt.stats().pool_allocs +
                                          pkt.stats().heap_allocs -
                                          packet_allocs_base_);
  r.metrics.add(m::kPoolPacketHeapAllocs,
                pkt.stats().heap_allocs - packet_heap_allocs_base_);
  r.metrics.set_max(m::kPoolPacketInUseHighWater, pkt.in_use_high_water());
  std::uint64_t object_allocs = 0;
  std::uint64_t object_heap_allocs = 0;
  std::uint64_t object_in_use_hw = 0;
  for_each_object_pool([&](const util::PayloadPool& pool) {
    object_allocs += pool.stats().pool_allocs + pool.stats().heap_allocs;
    object_heap_allocs += pool.stats().heap_allocs;
    object_in_use_hw += pool.in_use_high_water();
  });
  r.metrics.add(m::kPoolObjectAllocs, object_allocs - object_allocs_base_);
  r.metrics.add(m::kPoolObjectHeapAllocs,
                object_heap_allocs - object_heap_allocs_base_);
  r.metrics.set_max(m::kPoolObjectInUseHighWater, object_in_use_hw);
  return r;
}

}  // namespace rrnet::sim
