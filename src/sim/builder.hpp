// Builds and owns one complete simulation instance from a ScenarioConfig:
// scheduler, terrain, channel/network, protocols, traffic, failures, traces.
#pragma once

#include <memory>
#include <vector>

#include "app/cbr.hpp"
#include "app/flow_stats.hpp"
#include "des/scheduler.hpp"
#include "geom/terrain.hpp"
#include "net/network.hpp"
#include "obs/trace.hpp"
#include "phy/failure.hpp"
#include "sim/mobility.hpp"
#include "sim/scenario.hpp"
#include "trace/path_trace.hpp"

namespace rrnet::sim {

class SimInstance {
 public:
  explicit SimInstance(const ScenarioConfig& config);
  ~SimInstance();
  SimInstance(const SimInstance&) = delete;
  SimInstance& operator=(const SimInstance&) = delete;

  /// Run to config.sim_end. May be called repeatedly with later horizons
  /// via run_until().
  void run();
  void run_until(des::Time t);

  [[nodiscard]] ScenarioResult result() const;

  [[nodiscard]] const ScenarioConfig& config() const noexcept { return config_; }
  [[nodiscard]] des::Scheduler& scheduler() noexcept { return scheduler_; }
  [[nodiscard]] net::Network& network() noexcept { return *network_; }
  [[nodiscard]] app::FlowStats& flows() noexcept { return flows_; }
  [[nodiscard]] const std::vector<std::pair<std::uint32_t, std::uint32_t>>&
  pairs() const noexcept {
    return pairs_;
  }
  /// Null unless config.trace_paths.
  [[nodiscard]] trace::PathTrace* path_trace() noexcept { return trace_.get(); }
  /// Null unless config.trace_events.
  [[nodiscard]] obs::EventTracer* tracer() noexcept { return tracer_.get(); }
  /// Null unless config.failure_fraction > 0.
  [[nodiscard]] phy::FailureModel* failures() noexcept { return failures_.get(); }
  /// Null unless config.mobility.
  [[nodiscard]] RandomWaypoint* mobility() noexcept { return mobility_.get(); }
  [[nodiscard]] const geom::Terrain& terrain() const noexcept { return terrain_; }

  /// Build the propagation model a config describes (also used by tests).
  [[nodiscard]] static std::unique_ptr<phy::PropagationModel>
  make_propagation(const ScenarioConfig& config);
  /// Attach the configured protocol type to one node.
  static void attach_protocol(const ScenarioConfig& config, net::Node& node);
  /// Pre-carve the calling thread's size-class pools for `nodes` node
  /// stacks (node + transceiver + MAC + the configured protocol), so
  /// large-n construction is a handful of arena carves instead of O(n)
  /// pool-exhaustion heap fallbacks. Only the shortfall beyond what the
  /// thread's pools already hold is carved — small runs are untouched.
  static void reserve_node_pools(const ScenarioConfig& config,
                                 std::size_t nodes);

 private:
  ScenarioConfig config_;
  des::Scheduler scheduler_;
  geom::Terrain terrain_;
  std::unique_ptr<net::Network> network_;
  app::FlowStats flows_;
  std::vector<std::unique_ptr<app::CbrSource>> sources_;
  std::unique_ptr<phy::FailureModel> failures_;
  std::unique_ptr<RandomWaypoint> mobility_;
  std::unique_ptr<trace::PathTrace> trace_;
  std::unique_ptr<obs::EventTracer> tracer_;
  obs::EventTracer* prev_tracer_ = nullptr;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs_;
  bool started_ = false;
  // Thread-local pools outlive runs, so per-run pool metrics are deltas
  // from these ctor-time baselines (see result()).
  std::uint64_t packet_allocs_base_ = 0;
  std::uint64_t packet_heap_allocs_base_ = 0;
  std::uint64_t object_allocs_base_ = 0;
  std::uint64_t object_heap_allocs_base_ = 0;
};

}  // namespace rrnet::sim
