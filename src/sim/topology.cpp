#include "sim/topology.hpp"

#include <queue>

#include "util/contracts.hpp"

namespace rrnet::sim {

namespace {
std::vector<geom::Vec2> channel_positions(const phy::Channel& channel) {
  std::vector<geom::Vec2> positions;
  positions.reserve(channel.node_count());
  for (std::uint32_t i = 0; i < channel.node_count(); ++i) {
    positions.push_back(channel.position(i));
  }
  return positions;
}
}  // namespace

Topology::Topology(const phy::Channel& channel)
    : Topology(channel_positions(channel), channel.nominal_range_m()) {}

Topology::Topology(const std::vector<geom::Vec2>& positions, double range_m)
    : adjacency_(positions.size()) {
  const double range_sq = range_m * range_m;
  const auto n = static_cast<std::uint32_t>(positions.size());
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) {
      if (geom::distance_sq(positions[i], positions[j]) <= range_sq) {
        adjacency_[i].push_back(j);
        adjacency_[j].push_back(i);
      }
    }
  }
}

const std::vector<std::uint32_t>& Topology::neighbors(
    std::uint32_t node) const {
  RRNET_EXPECTS(node < adjacency_.size());
  return adjacency_[node];
}

double Topology::average_degree() const noexcept {
  if (adjacency_.empty()) return 0.0;
  std::size_t edges2 = 0;
  for (const auto& list : adjacency_) edges2 += list.size();
  return static_cast<double>(edges2) / static_cast<double>(adjacency_.size());
}

int Topology::hop_distance(std::uint32_t from, std::uint32_t to) const {
  RRNET_EXPECTS(from < adjacency_.size());
  RRNET_EXPECTS(to < adjacency_.size());
  if (from == to) return 0;
  std::vector<int> dist(adjacency_.size(), -1);
  std::queue<std::uint32_t> queue;
  dist[from] = 0;
  queue.push(from);
  while (!queue.empty()) {
    const std::uint32_t u = queue.front();
    queue.pop();
    for (const std::uint32_t v : adjacency_[u]) {
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        if (v == to) return dist[v];
        queue.push(v);
      }
    }
  }
  return -1;
}

bool Topology::connected() const {
  return largest_component() == adjacency_.size();
}

std::size_t Topology::largest_component() const {
  std::vector<bool> seen(adjacency_.size(), false);
  std::size_t best = 0;
  for (std::uint32_t root = 0; root < adjacency_.size(); ++root) {
    if (seen[root]) continue;
    std::size_t size = 0;
    std::queue<std::uint32_t> queue;
    queue.push(root);
    seen[root] = true;
    while (!queue.empty()) {
      const std::uint32_t u = queue.front();
      queue.pop();
      ++size;
      for (const std::uint32_t v : adjacency_[u]) {
        if (!seen[v]) {
          seen[v] = true;
          queue.push(v);
        }
      }
    }
    best = std::max(best, size);
  }
  return best;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> draw_connected_pairs(
    const Topology& topology, std::size_t pairs, des::Rng& rng, int min_hops,
    std::size_t max_attempts) {
  RRNET_EXPECTS(topology.node_count() >= 2);
  const auto n = static_cast<std::int64_t>(topology.node_count());
  std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
  out.reserve(pairs);
  for (std::size_t p = 0; p < pairs; ++p) {
    std::pair<std::uint32_t, std::uint32_t> chosen{0, 1};
    for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
      const auto src = static_cast<std::uint32_t>(rng.uniform_int(0, n - 1));
      const auto dst = static_cast<std::uint32_t>(rng.uniform_int(0, n - 1));
      if (src == dst) continue;
      chosen = {src, dst};
      const int hops = topology.hop_distance(src, dst);
      if (hops >= min_hops) break;
    }
    out.push_back(chosen);
  }
  return out;
}

}  // namespace rrnet::sim
