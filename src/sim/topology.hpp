// Connectivity analysis of a deployed network: the unit-disk graph induced
// by the channel's nominal range. Used by experiments to draw communicating
// pairs that are actually reachable (a partitioned pair says nothing about
// a protocol) and by tests as ground truth for hop counts.
#pragma once

#include <cstdint>
#include <vector>

#include "phy/channel.hpp"

namespace rrnet::sim {

class Topology {
 public:
  /// Snapshot the disk graph at the channel's current positions, with edges
  /// at distance <= channel.nominal_range_m().
  explicit Topology(const phy::Channel& channel);

  /// Same graph from raw positions and an explicit range — for callers that
  /// need connectivity before any channel exists (the sharded engine's
  /// coordinator draws communicating pairs up front, then builds one
  /// channel per shard).
  Topology(const std::vector<geom::Vec2>& positions, double range_m);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return adjacency_.size();
  }
  [[nodiscard]] const std::vector<std::uint32_t>& neighbors(
      std::uint32_t node) const;
  [[nodiscard]] double average_degree() const noexcept;

  /// BFS hop distance; -1 if unreachable.
  [[nodiscard]] int hop_distance(std::uint32_t from, std::uint32_t to) const;
  [[nodiscard]] bool reachable(std::uint32_t from, std::uint32_t to) const {
    return hop_distance(from, to) >= 0;
  }
  /// True iff every node can reach every other node.
  [[nodiscard]] bool connected() const;
  /// Size of the largest connected component.
  [[nodiscard]] std::size_t largest_component() const;

 private:
  std::vector<std::vector<std::uint32_t>> adjacency_;
};

/// Draw `pairs` random (source, destination) pairs that are mutually
/// reachable in `topology` and at least `min_hops` apart. Falls back to an
/// unconstrained pair if none qualifies after `max_attempts` draws.
[[nodiscard]] std::vector<std::pair<std::uint32_t, std::uint32_t>>
draw_connected_pairs(const Topology& topology, std::size_t pairs,
                     des::Rng& rng, int min_hops = 1,
                     std::size_t max_attempts = 256);

}  // namespace rrnet::sim
