// Spatially sharded scenario execution: K terrain strips, each a complete
// shared-nothing simulation world (scheduler + channel slice + nodes),
// synchronized by conservative time windows.
//
// Determinism contract (gated by tests/sharded_test.cpp): for any shard
// count K, every semantic per-layer counter (phy.*, mac.*, net.*,
// election.*, arbiter.*) and every flow metric (sent/delivered/delay/hops)
// is bit-identical to the serial run. Engine-internal counters
// (des.events_executed, des.heap_high_water, pool.*) depend on K — a
// sharded run executes extra walker bookkeeping and splits pools across
// workers — and are excluded from the contract.
//
// How the windows work, in one paragraph: each shard i publishes a lower
// bound P_i on the earliest time it could put a frame on the air, derived
// from its MAC turnaround constants — P_i = min(earliest armed-tx timer,
// earliest in-flight PHY event + SIFS, earliest scheduler event + DIFS).
// All shards then run to W = min_i P_i. By construction no shard transmits
// before W, so no signal can arrive from another shard at or before W
// (cross-strip distance > 0 adds strictly positive propagation delay), and
// every shard's window is causally closed. Frames that do go on the air at
// W and reach another strip are exchanged at the barrier as ShardHandoff
// records and replayed by the destination shard over the full position
// grid, which reproduces the serial receiver interleaving exactly.
#pragma once

#include <vector>

#include "obs/trace.hpp"
#include "sim/scenario.hpp"

namespace rrnet::sim {

/// Run `config` across config.shards spatial shards on up to
/// config.shard_threads workers. Requires config.shards >= 2 (use
/// run_scenario / SimInstance for serial) and no path tracing (PathTrace
/// observes one world). Everything else — mobility, failures, stochastic
/// fading, energy tracking — runs sharded and stays bit-identical to
/// serial: mobility and failure schedules are replicated on every shard
/// from the same rng forks, nodes that cross strip boundaries migrate at
/// window barriers once quiescent, fading draws come from counter-based
/// per-link streams (des::LinkRng) that any shard can replay, and energy
/// meters travel with migrating nodes (final sum in node-id order).
///
/// When `trace_out` is non-null and config.trace_events is set, the
/// per-worker tracer rings are merged by timestamp into it (stable across
/// worker counts for distinct timestamps).
[[nodiscard]] ScenarioResult run_scenario_sharded(
    const ScenarioConfig& config,
    std::vector<obs::TraceRecord>* trace_out = nullptr);

}  // namespace rrnet::sim
