// Declarative scenario description — everything a paper experiment needs.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "des/rng.hpp"
#include "des/scheduler.hpp"
#include "obs/metrics.hpp"
#include "phy/energy.hpp"
#include "mac/csma.hpp"
#include "phy/radio.hpp"
#include "proto/aodv.hpp"
#include "proto/dsdv.hpp"
#include "proto/dsr.hpp"
#include "proto/gradient.hpp"
#include "proto/routeless.hpp"
#include "proto/ssaf.hpp"

namespace rrnet::obs {
class RunHealthMonitor;
}  // namespace rrnet::obs

namespace rrnet::sim {

enum class ProtocolKind : std::uint8_t {
  Counter1Flooding,
  Ssaf,
  BlindFlooding,
  Routeless,
  Aodv,
  Gradient,
  Dsdv,
  Dsr,
};

[[nodiscard]] const char* to_string(ProtocolKind kind) noexcept;

enum class PropagationKind : std::uint8_t {
  FreeSpace,   ///< the paper's model
  TwoRay,
  LogDistance,
  Rayleigh,    ///< free space + Rayleigh small-scale fading
  Shadowing,   ///< free space + log-normal shadowing
};

struct ScenarioConfig {
  std::uint64_t seed = 1;

  /// Event-queue implementation behind the scheduler. Both backends pop in
  /// the same strict (time, sequence) order, so results are bit-identical;
  /// the field exists so the serial==ladder determinism gate can run the
  /// same scenario on each and compare metric snapshots.
  des::QueueBackend scheduler_queue = des::default_queue_backend();

  /// Spatial shards: 1 (default) runs the untouched serial engine; K > 1
  /// partitions the terrain into K vertical strips, each with its own
  /// scheduler/channel/nodes, synchronized by conservative time windows
  /// (see DESIGN.md "Parallel execution"). Semantic per-layer counters and
  /// every figure metric are bit-identical for any K; engine-internal
  /// counters (des.*, pool.*, sim.*) differ. Every scenario shape runs
  /// sharded — mobility (replicated position updates + node migration),
  /// failures (replicated schedules, ownership-gated toggles), stochastic
  /// fading (counter-based per-link rng), and energy tracking (meters travel
  /// with migrating nodes) included. Only trace_paths remains serial-only.
  std::uint32_t shards = 1;
  /// Worker threads driving the shards; 0 = min(hardware_concurrency,
  /// shards). Clamped to `shards` — each worker owns a contiguous block.
  std::uint32_t shard_threads = 0;
  /// Barrier amortization: max consecutive quiet windows (no shard has
  /// outbound handoffs or migration work) that may skip the exchange half
  /// of the barrier round before one is forced. 1 exchanges every window;
  /// larger values halve the barrier crossings of quiet stretches. 0
  /// (default) enables the adaptive controller: the allowance doubles
  /// (capped at 64) after every forced exchange that found all shards
  /// quiet and snaps back to 1 on a busy window, so idle stretches widen
  /// automatically while bursts stay tightly synchronized. Results are
  /// bit-identical for ANY value — a skipped exchange is provably a no-op —
  /// so this is purely a performance knob.
  std::uint32_t shard_window_batch = 0;

  // Topology.
  std::size_t nodes = 100;
  double width_m = 1000.0;
  double height_m = 1000.0;
  double range_m = 250.0;  ///< nominal transmission range (tx power is
                           ///< calibrated so the mean rx power hits the rx
                           ///< threshold exactly here)
  PropagationKind propagation = PropagationKind::FreeSpace;
  double pathloss_exponent = 3.0;  ///< LogDistance only
  double shadowing_sigma_db = 4.0; ///< Shadowing only

  phy::RadioParams radio{.tx_power_dbm = 15.0,
                         .rx_threshold_dbm = -64.0,
                         .cs_threshold_dbm = -71.0,
                         .noise_floor_dbm = -78.0,
                         .sinr_threshold_db = 10.0,
                         .interference_cutoff_dbm = -74.0,
                         .bitrate_bps = 1e6,
                         .preamble_s = 192e-6,
                         .frequency_hz = 914e6};
  mac::MacParams mac{};

  // Protocol under test.
  ProtocolKind protocol = ProtocolKind::Counter1Flooding;
  proto::RoutelessConfig routeless{};
  proto::SsafConfig ssaf{};
  proto::AodvConfig aodv{};
  proto::GradientConfig gradient{};
  proto::DsdvConfig dsdv{};
  proto::DsrConfig dsr{};
  des::Time flood_lambda = 10e-3;  ///< counter-1 / blind flooding backoff
  std::uint8_t flood_ttl = 32;

  // Traffic.
  std::size_t pairs = 1;
  bool bidirectional = false;  ///< Figures 3-4 use bidirectional CBR
  des::Time cbr_interval = 1.0;
  std::uint32_t payload_bytes = 512;
  des::Time traffic_start = 1.0;
  des::Time traffic_stop = 61.0;
  des::Time sim_end = 70.0;  ///< includes drain time after traffic stops
  /// Explicit (source, destination) pairs; when empty, `pairs` random pairs
  /// are drawn.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> explicit_pairs;
  /// Draw pairs that are mutually reachable and at least `min_pair_hops`
  /// apart in the deployed disk graph (partitioned pairs measure nothing).
  bool require_connected_pairs = false;
  int min_pair_hops = 1;
  /// Optional per-pair CBR interval override, parallel to explicit_pairs
  /// (0 or missing entry = use cbr_interval). Lets one flow be observed
  /// while another congests (Figure 2).
  std::vector<des::Time> explicit_pair_intervals;

  // Node failures (Figure 4).
  double failure_fraction = 0.0;
  des::Time failure_cycle_s = 10.0;

  bool trace_paths = false;  ///< record per-packet relay paths (Figure 2)

  /// Record packet-lifecycle / election / scheduler events into an
  /// obs::EventTracer ring owned by the SimInstance (exportable as JSONL or
  /// a Chrome trace). Needs a build with -DRRNET_TRACE=ON to capture the
  /// hot-path events; a compiled-out build runs but records nothing.
  bool trace_events = false;
  std::size_t trace_capacity = 1u << 20;  ///< ring size, in records

  /// Attribute wall clock per shard worker across the three phases of each
  /// window round (execute / barrier-wait / exchange+migration), plus
  /// window-width / bound-source / handoff-fanout / batch-width telemetry,
  /// surfaced as shard.* / runtime.* registry entries and — in RRNET_TRACE
  /// builds with trace_events on — WindowSpan/BarrierWait worker lanes in
  /// the Chrome trace. Stamps are taken only at round boundaries, never
  /// per event, so enabling this cannot perturb bit-identity. Serial runs
  /// (shards == 1) have no rounds to attribute and ignore it.
  bool profile_runtime = false;
  /// Optional run-health monitor (non-owning; see obs::RunHealthMonitor):
  /// sampled at window barriers (sharded) or every ~262k events (serial)
  /// for throughput/RSS progress, wall-clock + RSS budget enforcement with
  /// graceful partial-result abort, and structured report.json output.
  obs::RunHealthMonitor* health_monitor = nullptr;

  // Mobility (random waypoint; traffic endpoints are pinned).
  bool mobility = false;
  double mobility_min_speed_mps = 1.0;
  double mobility_max_speed_mps = 5.0;
  des::Time mobility_pause_s = 2.0;

  // Energy accounting.
  bool track_energy = false;
  phy::EnergyProfile energy_profile{};
};

/// Headline metrics of one scenario run.
struct ScenarioResult {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  double delivery_ratio = 0.0;
  double mean_delay_s = 0.0;       ///< over delivered packets
  double mean_hops = 0.0;          ///< over delivered packets
  std::uint64_t mac_packets = 0;   ///< all MAC transmissions incl. ACKs
  std::uint64_t channel_transmissions = 0;
  std::uint64_t events_executed = 0;
  double total_energy_j = 0.0;     ///< 0 unless track_energy
  double energy_per_delivered_j = 0.0;
  /// Full per-layer counter/gauge snapshot (obs::metric names). Counters
  /// sum and gauges max across replications, merged in index order, so
  /// aggregates are thread-count independent like every other field here.
  obs::MetricRegistry metrics;
};

/// Draw `pairs` random (source, destination) pairs with distinct endpoints.
[[nodiscard]] std::vector<std::pair<std::uint32_t, std::uint32_t>>
draw_pairs(std::size_t node_count, std::size_t pairs, des::Rng& rng);

}  // namespace rrnet::sim
