// Multi-seed replication with thread-parallel execution.
//
// Replications are shared-nothing: each thread builds and runs its own
// SimInstance from `base` with seed = derive_stream_seed(base.seed, i), so a
// parallel run produces bit-identical per-replication results to a serial
// one. Seeds are hash-derived (never base.seed + i) so runs at adjacent base
// seeds draw from disjoint streams. Metrics are aggregated into mean +/- CI
// summaries in replication-index order, independent of thread interleaving.
#pragma once

#include <cstddef>

#include "sim/scenario.hpp"
#include "util/stats.hpp"

namespace rrnet::sim {

/// Cross-replication summaries of the four paper metrics.
struct Aggregated {
  util::Summary delivery_ratio;
  util::Summary delay_s;
  util::Summary hops;
  util::Summary mac_packets;
  util::Summary mac_per_delivered;  ///< protocol overhead per useful packet
  /// Per-layer counters merged across replications in index order
  /// (counters sum, gauges max) — thread-count independent.
  obs::MetricRegistry metrics;
  std::size_t replications = 0;
};

/// Run `replications` independent copies of `base` (per-replication seeds
/// hash-derived from (base.seed, i)) on up to `threads` worker threads
/// (0 = hardware concurrency).
[[nodiscard]] Aggregated run_replications(const ScenarioConfig& base,
                                          std::size_t replications,
                                          std::size_t threads = 0);

}  // namespace rrnet::sim
