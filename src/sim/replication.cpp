#include "sim/replication.hpp"

#include <atomic>
#include <thread>
#include <vector>

#include "des/rng.hpp"
#include "sim/runner.hpp"
#include "util/contracts.hpp"

namespace rrnet::sim {

Aggregated run_replications(const ScenarioConfig& base,
                            std::size_t replications, std::size_t threads) {
  RRNET_EXPECTS(replications > 0);
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  // Workers each replication spawns internally when the sharded engine is
  // active. The replication pool and the per-replication shard pools share
  // one combined budget: outer × inner ≤ the requested thread count, never
  // the product. `inner` is clamped to the request too (a caller asking for
  // 2 threads on an 8-shard scenario gets 1 outer × 2 inner, not 1 × 8),
  // and is propagated into each replication's shard_threads so
  // run_scenario_sharded cannot re-derive a larger pool from
  // hardware_concurrency on its own.
  if (threads == 0) threads = hw;
  std::size_t inner = 1;
  if (base.shards > 1) {
    const std::size_t per_rep =
        base.shard_threads > 0 ? base.shard_threads : hw;
    inner = std::max<std::size_t>(
        1, std::min({per_rep, static_cast<std::size_t>(base.shards), threads}));
  }
  threads = std::max<std::size_t>(1, threads / inner);
  threads = std::min(threads, replications);
  const auto shard_threads = static_cast<std::uint32_t>(inner);

  std::vector<ScenarioResult> results(replications);
  std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= replications) return;
      ScenarioConfig config = base;
      config.seed = des::derive_stream_seed(base.seed, i);
      if (config.shards > 1) config.shard_threads = shard_threads;
      results[i] = run_scenario(config);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  Aggregated agg;
  agg.replications = replications;
  util::Accumulator delivery, delay, hops, mac, mac_per;
  for (const ScenarioResult& r : results) {
    delivery.add(r.delivery_ratio);
    delay.add(r.mean_delay_s);
    hops.add(r.mean_hops);
    mac.add(static_cast<double>(r.mac_packets));
    if (r.delivered > 0) {
      mac_per.add(static_cast<double>(r.mac_packets) /
                  static_cast<double>(r.delivered));
    }
    // Merge in index order: counter sums and gauge maxes come out identical
    // whatever thread ran which replication.
    agg.metrics.merge(r.metrics);
  }
  agg.delivery_ratio = delivery.summary();
  agg.delay_s = delay.summary();
  agg.hops = hops.summary();
  agg.mac_packets = mac.summary();
  agg.mac_per_delivered = mac_per.summary();
  return agg;
}

}  // namespace rrnet::sim
