#include "sim/replication.hpp"

#include <atomic>
#include <thread>
#include <vector>

#include "des/rng.hpp"
#include "sim/runner.hpp"
#include "util/contracts.hpp"

namespace rrnet::sim {

Aggregated run_replications(const ScenarioConfig& base,
                            std::size_t replications, std::size_t threads) {
  RRNET_EXPECTS(replications > 0);
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  // Workers each replication spawns internally when the sharded engine is
  // active (run_scenario_sharded applies the same clamp). The replication
  // pool and the per-replication shard pools share one combined budget:
  // outer × inner ≈ the requested thread count, instead of multiplying.
  std::size_t inner = 1;
  if (base.shards > 1) {
    const std::size_t per_rep =
        base.shard_threads > 0 ? base.shard_threads : hw;
    inner = std::max<std::size_t>(1, std::min<std::size_t>(per_rep, base.shards));
  }
  if (threads == 0) threads = hw;
  threads = std::max<std::size_t>(1, threads / inner);
  threads = std::min(threads, replications);

  std::vector<ScenarioResult> results(replications);
  std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= replications) return;
      ScenarioConfig config = base;
      config.seed = des::derive_stream_seed(base.seed, i);
      results[i] = run_scenario(config);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  Aggregated agg;
  agg.replications = replications;
  util::Accumulator delivery, delay, hops, mac, mac_per;
  for (const ScenarioResult& r : results) {
    delivery.add(r.delivery_ratio);
    delay.add(r.mean_delay_s);
    hops.add(r.mean_hops);
    mac.add(static_cast<double>(r.mac_packets));
    if (r.delivered > 0) {
      mac_per.add(static_cast<double>(r.mac_packets) /
                  static_cast<double>(r.delivered));
    }
    // Merge in index order: counter sums and gauge maxes come out identical
    // whatever thread ran which replication.
    agg.metrics.merge(r.metrics);
  }
  agg.delivery_ratio = delivery.summary();
  agg.delay_s = delay.summary();
  agg.hops = hops.summary();
  agg.mac_packets = mac.summary();
  agg.mac_per_delivered = mac_per.summary();
  return agg;
}

}  // namespace rrnet::sim
