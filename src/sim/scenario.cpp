#include "sim/scenario.hpp"

#include "util/contracts.hpp"

namespace rrnet::sim {

const char* to_string(ProtocolKind kind) noexcept {
  switch (kind) {
    case ProtocolKind::Counter1Flooding: return "counter-1 flooding";
    case ProtocolKind::Ssaf: return "SSAF";
    case ProtocolKind::BlindFlooding: return "blind flooding";
    case ProtocolKind::Routeless: return "Routeless Routing";
    case ProtocolKind::Aodv: return "AODV";
    case ProtocolKind::Gradient: return "Gradient Routing";
    case ProtocolKind::Dsdv: return "DSDV";
    case ProtocolKind::Dsr: return "DSR";
  }
  return "?";
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> draw_pairs(
    std::size_t node_count, std::size_t pairs, des::Rng& rng) {
  RRNET_EXPECTS(node_count >= 2);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
  out.reserve(pairs);
  for (std::size_t i = 0; i < pairs; ++i) {
    const auto src = static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(node_count) - 1));
    std::uint32_t dst = src;
    while (dst == src) {
      dst = static_cast<std::uint32_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(node_count) - 1));
    }
    out.emplace_back(src, dst);
  }
  return out;
}

}  // namespace rrnet::sim
