// Parameter sweeps that print paper-style series tables.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/replication.hpp"
#include "util/csv.hpp"

namespace rrnet::sim {

/// A sweep point: mutate a copy of the base config for the given x value.
using ConfigMutator = std::function<void(ScenarioConfig&, double x)>;

struct SweepSpec {
  std::string x_label;            ///< e.g. "interval_s", "pairs", "failure_%"
  std::vector<double> x_values;
  std::size_t replications = 3;
  std::size_t threads = 0;        ///< 0 = hardware concurrency
};

/// Run `base` for every x in spec (mutated by `mutate`) and append four
/// metric columns per protocol label. Rows: one per x value. Columns:
/// x, delivery, delay_s, hops, mac_packets (each with a label prefix).
class Sweep {
 public:
  Sweep(SweepSpec spec, ScenarioConfig base) noexcept
      : spec_(std::move(spec)), base_(std::move(base)) {}

  /// Run the sweep for one protocol variant; call repeatedly to compare
  /// variants (each call adds labeled columns to the result table).
  void run(const std::string& label, ProtocolKind protocol,
           const ConfigMutator& mutate);

  /// Assemble the table after all run() calls.
  [[nodiscard]] util::Table table() const;

 private:
  struct Series {
    std::string label;
    std::vector<Aggregated> points;
  };

  SweepSpec spec_;
  ScenarioConfig base_;
  std::vector<Series> series_;
};

}  // namespace rrnet::sim
