#include "proto/aodv.hpp"

#include <algorithm>
#include <utility>

#include "net/network.hpp"
#include "util/contracts.hpp"

namespace rrnet::proto {

namespace {
/// Dedup key for a route request: (origin, rreq_id).
std::uint64_t rreq_key(const net::PacketRef& packet) {
  return (static_cast<std::uint64_t>(packet.origin()) << 32) | packet.rreq_id();
}
}  // namespace

AodvProtocol::AodvProtocol(net::Node& node, AodvConfig config)
    : net::Protocol(node),
      config_(config),
      rng_(node.rng().fork("aodv")),
      rreq_policy_(config.rreq_backoff),
      rreq_elections_(node.scheduler()) {}

bool AodvProtocol::has_route(std::uint32_t target) const {
  const auto it = routes_.find(target);
  return it != routes_.end() && it->second.valid;
}

std::uint32_t AodvProtocol::next_hop(std::uint32_t target) const {
  const auto it = routes_.find(target);
  RRNET_EXPECTS(it != routes_.end() && it->second.valid);
  return it->second.next_hop;
}

std::uint32_t AodvProtocol::route_hops(std::uint32_t target) const {
  const auto it = routes_.find(target);
  RRNET_EXPECTS(it != routes_.end() && it->second.valid);
  return it->second.hops;
}

void AodvProtocol::update_route(std::uint32_t target, std::uint32_t via,
                                std::uint16_t hops, std::uint32_t seqno) {
  if (target == node().id()) return;
  Route& route = routes_[target];
  const bool fresher = seqno > route.seqno;
  const bool equal_and_better =
      seqno == route.seqno && (!route.valid || hops < route.hops);
  if (!route.valid || fresher || equal_and_better) {
    route.next_hop = via;
    route.hops = hops;
    route.seqno = std::max(route.seqno, seqno);
    route.valid = true;
  }
}

std::uint64_t AodvProtocol::send_data(std::uint32_t target,
                             std::uint32_t payload_bytes) {
  RRNET_EXPECTS(target != node().id());
  net::PacketInit init;
  init.type = net::PacketType::Data;
  init.origin = node().id();
  init.target = target;
  init.sequence = next_sequence_++;
  init.uid = node().next_packet_uid();
  init.ttl = config_.ttl;
  init.payload_bytes = payload_bytes;
  init.created_at = node().scheduler().now();
  const std::uint64_t uid = init.uid;
  net::PacketRef packet = net::make_packet(std::move(init));

  if (!has_route(target)) {
    auto [it, inserted] = pending_.try_emplace(target, node().scheduler());
    PendingDiscovery& pd = it->second;
    if (pd.queued.size() >= config_.pending_capacity) {
      ++stats_.pending_dropped;
      return uid;
    }
    pd.queued.push_back(std::move(packet));
    if (inserted) start_discovery(target);
    return uid;
  }
  ++stats_.data_originated;
  forward_data(std::move(packet));
  return uid;
}

void AodvProtocol::forward_data(net::PacketRef packet) {
  if (packet.ttl() == 0) {
    ++stats_.drops_no_route;
    return;
  }
  const auto it = routes_.find(packet.target());
  if (it == routes_.end() || !it->second.valid) {
    if (packet.origin() == node().id()) {
      // Route vanished between queueing and sending: rediscover.
      auto [pit, inserted] = pending_.try_emplace(packet.target(),
                                                  node().scheduler());
      if (pit->second.queued.size() < config_.pending_capacity) {
        const std::uint32_t target = packet.target();
        pit->second.queued.push_back(std::move(packet));
        if (inserted) start_discovery(target);
      } else {
        ++stats_.pending_dropped;
      }
    } else {
      ++stats_.drops_no_route;
      broadcast_rerr(packet.target());
    }
    return;
  }
  packet.hop().ttl -= 1;
  packet.hop().prev_hop = node().id();
  if (packet.origin() != node().id()) ++stats_.data_forwarded;
  node().send_packet(packet, it->second.next_hop, 0.0);
}

void AodvProtocol::start_discovery(std::uint32_t target) {
  ++stats_.rreq_originated;
  const auto pending_it = pending_.find(target);
  RRNET_ASSERT(pending_it != pending_.end());
  std::uint8_t ring_ttl = config_.ttl;
  if (config_.expanding_ring) {
    const std::uint32_t widened =
        config_.ring_start_ttl +
        config_.ring_increment * pending_it->second.retries;
    ring_ttl = static_cast<std::uint8_t>(
        std::min<std::uint32_t>(widened, config_.ttl));
  }
  net::PacketInit init;
  init.type = net::PacketType::RouteRequest;
  init.origin = node().id();
  init.target = target;
  init.rreq_id = next_rreq_id_++;
  init.sequence = next_sequence_++;
  init.uid = node().next_packet_uid();
  init.origin_seqno = ++my_seqno_;
  const auto rit = routes_.find(target);
  init.target_seqno = rit == routes_.end() ? 0 : rit->second.seqno;
  init.actual_hops = 0;
  init.ttl = ring_ttl;
  init.prev_hop = node().id();
  init.created_at = node().scheduler().now();
  net::PacketRef rreq = net::make_packet(std::move(init));
  rreq_seen_.observe(rreq_key(rreq));
  node().send_packet(rreq, mac::kBroadcastAddress, 0.0);

  pending_it->second.timer.start(
      config_.discovery_timeout,
      [this, target]() { discovery_timeout(target); });
}

void AodvProtocol::discovery_timeout(std::uint32_t target) {
  const auto it = pending_.find(target);
  if (it == pending_.end()) return;
  if (has_route(target)) {
    flush_pending(target);
    return;
  }
  PendingDiscovery& pd = it->second;
  if (pd.retries >= config_.max_discovery_retries) {
    ++stats_.discovery_failures;
    stats_.pending_dropped += pd.queued.size();
    pending_.erase(it);
    return;
  }
  ++pd.retries;
  --stats_.rreq_originated;  // counted again inside start_discovery
  start_discovery(target);
}

void AodvProtocol::flush_pending(std::uint32_t target) {
  const auto it = pending_.find(target);
  if (it == pending_.end()) return;
  std::vector<net::PacketRef> queued = std::move(it->second.queued);
  pending_.erase(it);
  for (net::PacketRef& packet : queued) {
    ++stats_.data_originated;
    forward_data(std::move(packet));
  }
}

void AodvProtocol::handle_rreq(const net::PacketRef& packet,
                               std::uint32_t mac_src) {
  if (packet.origin() == node().id()) return;  // our own flood echoed back
  const std::uint16_t hops_to_me =
      static_cast<std::uint16_t>(packet.actual_hops() + 1);
  // Reverse route toward the origin.
  update_route(packet.origin(), mac_src, hops_to_me, packet.origin_seqno());

  const std::uint64_t key = rreq_key(packet);
  const bool is_new = rreq_seen_.observe(key);

  if (packet.target() == node().id()) {
    if (is_new) send_rrep(packet);
    return;
  }
  if (packet.ttl() == 0) return;

  switch (config_.discovery) {
    case RreqFlooding::Blind: {
      const std::uint64_t copy_key =
          key ^ (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(mac_src) + 1));
      if (!rreq_copy_seen_.insert(copy_key).second) return;
      relay_rreq(packet);
      return;
    }
    case RreqFlooding::Dedup: {
      if (is_new) relay_rreq(packet);
      return;
    }
    case RreqFlooding::Suppress: {
      if (is_new) {
        core::ElectionContext ctx;
        rreq_elections_.arm(key, rreq_policy_, ctx, rng_,
                            [this, copy = packet](des::Time delay) {
                              net::PacketRef relay = copy;
                              relay.hop().ttl -= 1;
                              relay.hop().actual_hops += 1;
                              relay.hop().prev_hop = node().id();
                              ++stats_.rreq_relayed;
                              node().send_packet(relay, mac::kBroadcastAddress,
                                                 delay);
                            });
      } else if (rreq_seen_.count(key) > config_.suppress_threshold) {
        if (rreq_elections_.cancel(key, core::CancelReason::DuplicateHeard)) {
          ++stats_.rreq_suppressed;
        }
      }
      return;
    }
  }
}

void AodvProtocol::relay_rreq(const net::PacketRef& packet) {
  net::PacketRef copy = packet;
  copy.hop().ttl -= 1;
  copy.hop().actual_hops += 1;
  copy.hop().prev_hop = node().id();
  const des::Time delay = rng_.uniform(0.0, config_.rreq_backoff);
  node().scheduler().schedule_in(delay, [this, copy, delay]() {
    ++stats_.rreq_relayed;
    node().send_packet(copy, mac::kBroadcastAddress, delay);
  });
}

void AodvProtocol::send_rrep(const net::PacketRef& rreq) {
  const auto it = routes_.find(rreq.origin());
  RRNET_ASSERT(it != routes_.end() && it->second.valid);
  net::PacketInit init;
  init.type = net::PacketType::RouteReply;
  init.origin = node().id();      // the destination of the data flow
  init.target = rreq.origin();    // the RREQ originator
  init.rreq_id = rreq.rreq_id();
  init.sequence = next_sequence_++;
  init.uid = node().next_packet_uid();
  init.target_seqno = std::max(my_seqno_ + 1, rreq.target_seqno());
  my_seqno_ = init.target_seqno;
  init.actual_hops = 0;
  init.ttl = config_.ttl;
  init.prev_hop = node().id();
  init.created_at = node().scheduler().now();
  ++stats_.rrep_sent;
  node().send_packet(net::make_packet(std::move(init)), it->second.next_hop,
                     0.0);
}

void AodvProtocol::handle_rrep(const net::PacketRef& packet,
                               std::uint32_t mac_src) {
  const std::uint16_t hops_to_me =
      static_cast<std::uint16_t>(packet.actual_hops() + 1);
  // Forward route toward the destination (the RREP's origin).
  update_route(packet.origin(), mac_src, hops_to_me, packet.target_seqno());

  if (packet.target() == node().id()) {
    flush_pending(packet.origin());
    return;
  }
  const auto it = routes_.find(packet.target());
  if (it == routes_.end() || !it->second.valid) {
    ++stats_.drops_no_route;
    return;
  }
  if (packet.ttl() == 0) return;
  net::PacketRef copy = packet;
  copy.hop().ttl -= 1;
  copy.hop().actual_hops += 1;
  copy.hop().prev_hop = node().id();
  ++stats_.rrep_forwarded;
  node().send_packet(copy, it->second.next_hop, 0.0);
}

void AodvProtocol::broadcast_rerr(std::uint32_t unreachable) {
  net::PacketInit init;
  init.type = net::PacketType::RouteError;
  init.origin = node().id();
  init.unreachable = unreachable;
  init.sequence = next_sequence_++;
  init.uid = node().next_packet_uid();
  init.ttl = 1;  // propagated hop-by-hop by affected nodes only
  init.prev_hop = node().id();
  init.created_at = node().scheduler().now();
  net::PacketRef rerr = net::make_packet(std::move(init));
  rerr_seen_.observe(rerr.flood_key());
  ++stats_.rerr_sent;
  node().send_packet(rerr, mac::kBroadcastAddress, 0.0);
}

void AodvProtocol::handle_rerr(const net::PacketRef& packet,
                               std::uint32_t mac_src) {
  if (!rerr_seen_.observe(packet.flood_key())) return;
  const auto it = routes_.find(packet.unreachable());
  if (it != routes_.end() && it->second.valid &&
      it->second.next_hop == mac_src) {
    it->second.valid = false;
    broadcast_rerr(packet.unreachable());
  }
}

void AodvProtocol::handle_data(const net::PacketRef& packet) {
  if (packet.target() == node().id()) {
    if (delivered_.observe(packet.flood_key())) {
      net::PacketRef delivered = packet;
      delivered.hop().actual_hops =
          static_cast<std::uint16_t>(packet.actual_hops() + 1);
      ++stats_.data_delivered;
      node().deliver_to_app(delivered);
    }
    return;
  }
  net::PacketRef copy = packet;
  copy.hop().actual_hops += 1;
  forward_data(std::move(copy));
}

void AodvProtocol::handle_link_break(std::uint32_t neighbor,
                                     const net::PacketRef& packet) {
  ++stats_.link_breaks;
  for (auto& [dest, route] : routes_) {
    if (route.valid && route.next_hop == neighbor) {
      route.valid = false;
      broadcast_rerr(dest);
    }
  }
  if (packet.type() == net::PacketType::Data) {
    if (packet.origin() == node().id()) {
      // Re-queue and rediscover; the packet keeps its original timestamp.
      auto [it, inserted] = pending_.try_emplace(packet.target(),
                                                 node().scheduler());
      if (it->second.queued.size() < config_.pending_capacity) {
        it->second.queued.push_back(packet);
        if (inserted) start_discovery(packet.target());
      } else {
        ++stats_.pending_dropped;
      }
    } else {
      ++stats_.drops_no_route;
    }
  }
}

void AodvProtocol::on_send_done(const net::PacketRef& packet, bool success,
                                std::uint32_t mac_dst) {
  if (success || mac_dst == mac::kBroadcastAddress) return;
  handle_link_break(mac_dst, packet);
}

void AodvProtocol::on_packet(const net::PacketRef& packet,
                             const phy::RxInfo& /*info*/, bool for_us,
                             std::uint32_t mac_src) {
  if (!for_us) return;  // AODV does not listen promiscuously
  switch (packet.type()) {
    case net::PacketType::RouteRequest:
      handle_rreq(packet, mac_src);
      return;
    case net::PacketType::RouteReply:
      handle_rrep(packet, mac_src);
      return;
    case net::PacketType::RouteError:
      handle_rerr(packet, mac_src);
      return;
    case net::PacketType::Data:
      handle_data(packet);
      return;
    default:
      return;
  }
}


void AodvProtocol::snapshot_metrics(obs::MetricRegistry& reg) const {
  core::snapshot_metrics(rreq_elections_.stats(), reg);
  net::snapshot_metrics(rreq_seen_, reg);
  net::snapshot_metrics(rerr_seen_, reg);
  net::snapshot_metrics(delivered_, reg);
}

}  // namespace rrnet::proto
