// Routeless Routing (§4).
//
// No node ever stores a route. Each node keeps only an *active node table*
// mapping a target node to the number of hops from that target to itself,
// learned passively from the actual-hop-count field every packet carries.
// Forwarding a path-reply or data packet is a local leader election among
// the receivers, with the backoff derived from the hop-count gradient
// (HopGradientBackoff); the previous transmitter acts as arbiter — it
// acknowledges the first relay it overhears and retransmits after silence.
//
// Path discovery floods a PathDiscovery packet (counter-1 by default, SSAF
// optionally); the destination answers with a PathReply that finds its own
// way back through successive leader elections. Data packets travel exactly
// like path replies.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include "util/pooled_containers.hpp"
#include <vector>

#include "core/arbiter.hpp"
#include "core/backoff_policy.hpp"
#include "core/election.hpp"
#include "net/duplicate_cache.hpp"
#include "net/node.hpp"
#include "net/protocol.hpp"

namespace rrnet::proto {

struct RoutelessConfig {
  /// Election backoff band width (the paper's λ). Must comfortably exceed
  /// the data-frame airtime: losers can only concede after the winner's
  /// relay has fully arrived, so λ below the airtime degenerates into
  /// everyone relaying (the paper: "if λ is too small, the difference
  /// between backoff delays ... will be too small to avoid collisions").
  /// At 1 Mb/s a 256-byte data packet takes ~2.5 ms of air; 50 ms gives
  /// collision-free separation while keeping per-hop delay moderate (the
  /// paper's Figure-3 end-to-end delays, ~0.2-0.45 s over 5-7 hops, imply a
  /// per-hop budget of this order).
  des::Time lambda = 50e-3;
  std::uint32_t unknown_penalty_hops = 4;  ///< bands for table-less nodes
  /// The arbiter must wait out the slowest plausible relay: the penalty
  /// band tops out at (unknown_penalty_hops + 1) * lambda plus MAC queueing.
  core::ArbiterConfig arbiter{/*relay_timeout=*/500e-3, /*max_retransmits=*/2};
  std::uint8_t ttl = 32;
  des::Time discovery_lambda = 10e-3;  ///< counter-1 flood backoff
  des::Time discovery_timeout = 2.0;
  std::uint32_t max_discovery_retries = 3;
  std::size_t pending_capacity = 32;  ///< buffered data per awaited target
  bool ssaf_discovery = false;  ///< flood discovery with SSAF backoff
};

struct RoutelessStats {
  std::uint64_t discoveries_started = 0;
  std::uint64_t discovery_retries = 0;
  std::uint64_t discovery_failures = 0;
  std::uint64_t replies_sent = 0;
  std::uint64_t discovery_relays = 0;
  std::uint64_t relays = 0;          ///< PathReply/Data relays won & sent
  std::uint64_t re_relays = 0;       ///< resends triggered by retransmission
  std::uint64_t netacks_sent = 0;
  std::uint64_t data_originated = 0;
  std::uint64_t data_delivered = 0;
  std::uint64_t replies_delivered = 0;
  std::uint64_t pending_dropped = 0;
  std::uint64_t ttl_expired = 0;
};

class RoutelessProtocol final : public net::Protocol {
 public:
  RoutelessProtocol(net::Node& node, RoutelessConfig config = {});

  void start() override;
  void on_packet(const net::PacketRef& packet, const phy::RxInfo& info,
                 bool for_us, std::uint32_t mac_src) override;
  std::uint64_t send_data(std::uint32_t target,
                          std::uint32_t payload_bytes) override;
  const char* name() const noexcept override { return "routeless"; }
  void snapshot_metrics(obs::MetricRegistry& reg) const override;

  /// Active-node-table lookup (paper §4.1); 0 hops = the node itself.
  [[nodiscard]] bool knows_target(std::uint32_t target) const;
  [[nodiscard]] std::uint32_t hops_to(std::uint32_t target) const;

  [[nodiscard]] const RoutelessStats& rr_stats() const noexcept { return stats_; }
  [[nodiscard]] const core::ElectionStats& election_stats() const noexcept {
    return elections_.stats();
  }
  [[nodiscard]] const core::ArbiterStats& arbiter_stats() const noexcept {
    return arbiter_.stats();
  }

 private:
  struct TableEntry {
    std::uint16_t hops = 0;
    std::uint32_t sequence = 0;  ///< freshest origin sequence backing `hops`
  };
  struct RelayState {
    bool relayed = false;
    std::uint16_t armed_hops = 0;    ///< actual_hops of the copy we armed on
    std::uint16_t relayed_hops = 0;  ///< actual_hops of the copy we sent
    std::uint32_t armed_from = net::kNoNode;  ///< neighbor we first heard it from
    std::uint32_t cancelled_from = net::kNoNode;  ///< relay that cancelled us
    std::uint16_t cancelled_hops = 0;
    std::uint8_t re_relays_used = 0;          ///< bounded resend budget
    net::PacketRef relayed_copy;     ///< for re-relay on retransmission
  };
  struct PendingDiscovery {
    explicit PendingDiscovery(des::Scheduler& scheduler) : timer(scheduler) {}
    des::Timer timer;
    std::uint32_t retries = 0;
    std::vector<net::PacketRef> queued;
  };

  void update_table(std::uint32_t origin, std::uint32_t sequence,
                    std::uint16_t hops_to_me);
  void handle_discovery(const net::PacketRef& packet, const phy::RxInfo& info);
  void handle_forwarded(const net::PacketRef& packet, std::uint32_t mac_src);
  void handle_netack(const net::PacketRef& packet);
  void send_reply(const net::PacketRef& discovery);
  void start_discovery(std::uint32_t target);
  void discovery_timeout(std::uint32_t target);
  void flush_pending(std::uint32_t target);
  /// Originate a PathReply/Data packet: broadcast it and become its arbiter.
  void originate_forwarded(net::PacketRef packet);
  void do_relay(std::uint64_t key, net::PacketRef copy, des::Time delay);
  void watch_as_arbiter(std::uint64_t key, const net::PacketRef& sent_copy);
  void send_netack(const net::PacketRef& acked);
  [[nodiscard]] core::ElectionContext gradient_context(
      const net::PacketRef& packet) const;
  RelayState& relay_state(std::uint64_t key);

  RoutelessConfig config_;
  core::HopGradientBackoff gradient_policy_;
  core::UniformBackoff discovery_policy_;
  core::SignalStrengthBackoff ssaf_policy_;
  double rssi_min_dbm_ = -64.0;
  double rssi_max_dbm_ = 0.0;
  core::ElectionTable elections_;
  core::Arbiter arbiter_;
  des::Rng rng_;
  util::PooledUnorderedMap<std::uint32_t, TableEntry> table_;
  net::DuplicateCache seen_;
  net::DuplicateCache delivered_;
  util::PooledUnorderedMap<std::uint64_t, RelayState> relay_states_;
  std::deque<std::uint64_t> relay_state_order_;
  util::PooledUnorderedMap<std::uint32_t, PendingDiscovery> pending_;
  std::uint32_t next_sequence_ = 0;
  RoutelessStats stats_;
};

}  // namespace rrnet::proto
