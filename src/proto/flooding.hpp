// Flooding protocols (§3).
//
// One engine covers the paper's three flooding flavors:
//  * blind ("original") flooding — every received copy is rebroadcast (per
//    transmitting neighbor), the broadcast-storm baseline AODV's discovery
//    uses in the paper;
//  * counter-1 flooding — a packet is rebroadcast only the first time its
//    (origin, sequence) is seen; backoff drawn uniformly at random;
//  * SSAF — counter-1 with the backoff derived from received signal
//    strength via the local-leader-election machinery (see ssaf.hpp).
//
// An optional counter threshold k (Tseng et al.'s counter-based scheme)
// cancels a pending rebroadcast after k duplicate copies are overheard
// during the backoff; the paper's counter-1 has no suppression (k = 0).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_set>
#include "util/pooled_containers.hpp"

#include "core/backoff_policy.hpp"
#include "core/election.hpp"
#include "net/duplicate_cache.hpp"
#include "net/node.hpp"
#include "net/protocol.hpp"

namespace rrnet::proto {

struct FloodingConfig {
  des::Time lambda = 10e-3;      ///< backoff scale (max delay for uniform)
  std::uint8_t ttl = 32;         ///< max relays per packet
  bool blind = false;            ///< original flooding (per-copy rebroadcast)
  std::uint32_t counter_threshold = 0;  ///< k>0: suppress after k duplicates
  bool forward_at_target = false;       ///< destination also rebroadcasts
};

struct FloodingStats {
  std::uint64_t originated = 0;
  std::uint64_t relayed = 0;
  std::uint64_t suppressed = 0;  ///< cancelled by the counter threshold
  std::uint64_t ttl_expired = 0;
  std::uint64_t delivered = 0;
};

/// Migration snapshot of a quiescent flooding instance: counters, stream
/// position, and the duplicate-suppression memory. No pooled refs — the
/// blob crosses threads on the global allocator.
struct FloodingMigrationState final : net::MigrationBlob {
  FloodingStats stats;
  core::ElectionStats election_stats;
  net::DuplicateCacheStats seen_stats;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> seen;  ///< LRU -> MRU
  std::vector<std::uint64_t> copy_seen;
  std::uint32_t next_sequence = 0;
  des::RngState rng;
};

class FloodingProtocol : public net::Protocol {
 public:
  /// `policy` decides the rebroadcast backoff; counter-1 passes
  /// UniformBackoff, SSAF passes SignalStrengthBackoff.
  FloodingProtocol(net::Node& node, FloodingConfig config,
                   std::unique_ptr<core::BackoffPolicy> policy);

  void start() override;
  void on_packet(const net::PacketRef& packet, const phy::RxInfo& info,
                 bool for_us, std::uint32_t mac_src) override;
  std::uint64_t send_data(std::uint32_t target,
                          std::uint32_t payload_bytes) override;
  const char* name() const noexcept override { return "flooding"; }
  void snapshot_metrics(obs::MetricRegistry& reg) const override;

  // Migration: the whole flooding family (blind / counter-1 / SSAF) opts
  // in. Pending work is either an armed election session or a scheduled
  // blind-relay lambda; quiescence means neither exists, so only counters
  // and caches need to travel.
  [[nodiscard]] bool migratable() const noexcept override { return true; }
  [[nodiscard]] bool quiescent() const noexcept override {
    return elections_.active_count() == 0 && pending_relays_ == 0;
  }
  [[nodiscard]] std::unique_ptr<net::MigrationBlob> export_state()
      const override;
  void import_state(const net::MigrationBlob& blob) override;

  [[nodiscard]] const FloodingStats& flood_stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const core::ElectionStats& election_stats() const noexcept {
    return elections_.stats();
  }

 protected:
  /// Build the election context for a received copy (RSSI normalization
  /// bounds come from the channel; hop fields unused by flooding).
  [[nodiscard]] core::ElectionContext make_context(
      const phy::RxInfo& info) const noexcept;

 private:
  void relay(net::PacketRef packet, des::Time priority_delay);

  FloodingConfig config_;
  std::unique_ptr<core::BackoffPolicy> policy_;
  net::DuplicateCache seen_;
  util::PooledUnorderedSet<std::uint64_t> copy_seen_;  ///< blind: (key, prev_hop)
  core::ElectionTable elections_;
  des::Rng rng_;
  std::uint32_t next_sequence_ = 0;
  double rssi_min_dbm_ = -64.0;
  double rssi_max_dbm_ = 0.0;
  /// Scheduled blind-relay lambdas in flight (they capture `this`); a node
  /// with any outstanding cannot migrate.
  std::uint32_t pending_relays_ = 0;
  FloodingStats stats_;
};

}  // namespace rrnet::proto
