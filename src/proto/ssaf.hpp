// Signal Strength Aware Flooding (§3).
//
// SSAF is counter-1 flooding whose rebroadcast backoff comes from the
// received signal strength instead of a uniform draw: the weaker the signal,
// the farther the receiver probably is from the sender, and the sooner it
// rebroadcasts. "SSAF does not intend to precisely select the furthest node
// every time, but to choose nodes that are highly likely to be far away."
#pragma once

#include <memory>

#include "proto/flooding.hpp"

namespace rrnet::proto {

struct SsafConfig {
  des::Time lambda = 10e-3;      ///< backoff scale
  double jitter_fraction = 0.1;  ///< random tie-break share of the backoff
  std::uint8_t ttl = 32;
  bool forward_at_target = false;
  /// Duplicates overheard during the backoff before conceding. SSAF runs a
  /// local leader election per packet per neighborhood: an overheard
  /// rebroadcast IS the winner's announcement, so the default cancels after
  /// the first one (§2's cancellation rule applied to flooding). Setting
  /// this to 0 disables suppression (ordering-only SSAF, for ablation).
  std::uint32_t counter_threshold = 1;
};

class SsafProtocol final : public FloodingProtocol {
 public:
  SsafProtocol(net::Node& node, SsafConfig config = {});
  const char* name() const noexcept override { return "ssaf"; }
};

/// Factory helpers mirroring the paper's two Figure-1 contenders.
[[nodiscard]] std::unique_ptr<net::Protocol> make_counter1_flooding(
    net::Node& node, des::Time lambda = 10e-3, std::uint8_t ttl = 32);
[[nodiscard]] std::unique_ptr<net::Protocol> make_ssaf(net::Node& node,
                                                       SsafConfig config = {});

}  // namespace rrnet::proto
