// DSR — Dynamic Source Routing (Johnson & Maltz [27]).
//
// The second reactive protocol the paper's taxonomy names ("reactive (or
// on-demand), such as AODV and DSR"). Route requests flood outward
// accumulating the node list they traversed; the target returns that list
// in a route reply, and every data packet then carries its complete source
// route — intermediate nodes keep no per-flow state at all (they do keep a
// route *cache* gleaned from the routes that pass by).
//
// Simplifications vs the full protocol, noted per DESIGN.md: no promiscuous
// route shortening, no packet salvaging at intermediate nodes (a break is
// reported to the source, which re-discovers), and route replies travel the
// reversed discovered route (bidirectional links, as the paper assumes).
#pragma once

#include <cstdint>
#include <unordered_map>
#include "util/pooled_containers.hpp"
#include <vector>

#include "des/rng.hpp"
#include "des/timer.hpp"
#include "net/duplicate_cache.hpp"
#include "net/node.hpp"
#include "net/protocol.hpp"

namespace rrnet::proto {

struct DsrConfig {
  des::Time rreq_jitter = 10e-3;   ///< route-request rebroadcast jitter
  std::uint8_t ttl = 32;
  des::Time discovery_timeout = 2.0;
  std::uint32_t max_discovery_retries = 3;
  std::size_t pending_capacity = 32;
  std::size_t cache_capacity = 64;  ///< cached routes per node
};

struct DsrStats {
  std::uint64_t rreq_originated = 0;
  std::uint64_t rreq_relayed = 0;
  std::uint64_t rrep_sent = 0;
  std::uint64_t rrep_forwarded = 0;
  std::uint64_t rerr_sent = 0;
  std::uint64_t cache_hits = 0;     ///< send_data answered from the cache
  std::uint64_t cache_evictions = 0;
  std::uint64_t data_originated = 0;
  std::uint64_t data_forwarded = 0;
  std::uint64_t data_delivered = 0;
  std::uint64_t link_breaks = 0;
  std::uint64_t drops_bad_route = 0;
  std::uint64_t discovery_failures = 0;
  std::uint64_t pending_dropped = 0;
};

/// A complete node list from source to destination (inclusive).
using SourceRoute = std::vector<std::uint32_t>;

/// Typed packet extension carrying a source route (immutable once attached;
/// per-hop route growth rebuilds the packet via to_init + make_packet).
class SourceRouteExtension final : public net::PacketExtension {
 public:
  static constexpr net::ExtensionKind kKind = net::ExtensionKind::SourceRoute;
  explicit SourceRouteExtension(SourceRoute route_in)
      : net::PacketExtension(kKind), route(std::move(route_in)) {}
  [[nodiscard]] net::ExtensionRef clone() const override {
    return net::make_extension<SourceRouteExtension>(route);
  }
  const SourceRoute route;
};

class DsrProtocol final : public net::Protocol {
 public:
  DsrProtocol(net::Node& node, DsrConfig config = {});

  void on_packet(const net::PacketRef& packet, const phy::RxInfo& info,
                 bool for_us, std::uint32_t mac_src) override;
  void on_send_done(const net::PacketRef& packet, bool success,
                    std::uint32_t mac_dst) override;
  std::uint64_t send_data(std::uint32_t target,
                          std::uint32_t payload_bytes) override;
  const char* name() const noexcept override { return "dsr"; }
  void snapshot_metrics(obs::MetricRegistry& reg) const override;

  /// Route-cache introspection for tests.
  [[nodiscard]] bool has_cached_route(std::uint32_t target) const;
  [[nodiscard]] const SourceRoute& cached_route(std::uint32_t target) const;

  [[nodiscard]] const DsrStats& dsr_stats() const noexcept { return stats_; }

 private:
  struct PendingDiscovery {
    explicit PendingDiscovery(des::Scheduler& scheduler) : timer(scheduler) {}
    des::Timer timer;
    std::uint32_t retries = 0;
    std::vector<net::PacketRef> queued;
  };

  void handle_rreq(const net::PacketRef& packet);
  void handle_rrep(const net::PacketRef& packet);
  void handle_rerr(const net::PacketRef& packet);
  void handle_data(const net::PacketRef& packet);
  void start_discovery(std::uint32_t target);
  void discovery_timeout(std::uint32_t target);
  void flush_pending(std::uint32_t target);
  /// Send a source-routed packet to the next hop on its route.
  void forward_on_route(net::PacketRef packet);
  void cache_route(const SourceRoute& route);
  void purge_link(std::uint32_t from, std::uint32_t to);
  [[nodiscard]] static const SourceRoute& route_of(const net::PacketRef& packet);

  DsrConfig config_;
  des::Rng rng_;
  util::PooledUnorderedMap<std::uint32_t, SourceRoute> cache_;
  std::vector<std::uint32_t> cache_order_;  ///< FIFO eviction
  net::DuplicateCache rreq_seen_;
  net::DuplicateCache rerr_seen_;
  net::DuplicateCache delivered_;
  util::PooledUnorderedMap<std::uint32_t, PendingDiscovery> pending_;
  std::uint32_t next_rreq_id_ = 0;
  std::uint32_t next_sequence_ = 0;
  DsrStats stats_;
};

}  // namespace rrnet::proto
