#include "proto/routeless.hpp"

#include <algorithm>
#include <utility>

#include "net/network.hpp"
#include "util/contracts.hpp"

namespace rrnet::proto {

namespace {
/// Flood key of the packet a NetAck refers to.
std::uint64_t acked_key(const net::PacketRef& netack) {
  return net::flood_key_of(netack.origin(), netack.sequence(),
                           netack.acked_type());
}

constexpr std::size_t kRelayStateCapacity = 8192;
}  // namespace

RoutelessProtocol::RoutelessProtocol(net::Node& node, RoutelessConfig config)
    : net::Protocol(node),
      config_(config),
      gradient_policy_(config.lambda, config.unknown_penalty_hops),
      discovery_policy_(config.discovery_lambda),
      ssaf_policy_(config.discovery_lambda),
      elections_(node.scheduler()),
      arbiter_(node.scheduler(), config.arbiter),
      rng_(node.rng().fork("routeless")) {}

void RoutelessProtocol::start() {
  const phy::Channel& channel = node().network().channel();
  rssi_min_dbm_ = channel.params().rx_threshold_dbm;
  rssi_max_dbm_ = channel.model().mean_rx_power_dbm(
      channel.params().tx_power_dbm, 0.1 * channel.nominal_range_m());
}

bool RoutelessProtocol::knows_target(std::uint32_t target) const {
  return target == node().id() || table_.count(target) > 0;
}

std::uint32_t RoutelessProtocol::hops_to(std::uint32_t target) const {
  if (target == node().id()) return 0;
  const auto it = table_.find(target);
  RRNET_EXPECTS(it != table_.end());
  return it->second.hops;
}

void RoutelessProtocol::update_table(std::uint32_t origin,
                                     std::uint32_t sequence,
                                     std::uint16_t hops_to_me) {
  if (origin == node().id()) return;
  auto [it, inserted] = table_.try_emplace(origin, TableEntry{hops_to_me, sequence});
  if (inserted) return;
  TableEntry& entry = it->second;
  if (sequence > entry.sequence) {
    // Fresher information supersedes the old distance entirely — this is
    // what lets the table grow back after topology changes.
    entry.sequence = sequence;
    entry.hops = hops_to_me;
  } else if (sequence == entry.sequence) {
    entry.hops = std::min(entry.hops, hops_to_me);
  }
}

RoutelessProtocol::RelayState& RoutelessProtocol::relay_state(
    std::uint64_t key) {
  auto [it, inserted] = relay_states_.try_emplace(key);
  if (inserted) {
    relay_state_order_.push_back(key);
    if (relay_state_order_.size() > kRelayStateCapacity) {
      relay_states_.erase(relay_state_order_.front());
      relay_state_order_.pop_front();
    }
  }
  return it->second;
}

core::ElectionContext RoutelessProtocol::gradient_context(
    const net::PacketRef& packet) const {
  core::ElectionContext ctx;
  const auto it = table_.find(packet.target());
  if (it == table_.end()) {
    ctx.hops_unknown = true;
  } else {
    ctx.hops_table = it->second.hops;
  }
  ctx.hops_expected = packet.expected_hops();
  return ctx;
}

std::uint64_t RoutelessProtocol::send_data(std::uint32_t target,
                                  std::uint32_t payload_bytes) {
  RRNET_EXPECTS(target != node().id());
  net::PacketInit init;
  init.type = net::PacketType::Data;
  init.origin = node().id();
  init.target = target;
  init.sequence = next_sequence_++;
  init.uid = node().next_packet_uid();
  init.ttl = config_.ttl;
  init.payload_bytes = payload_bytes;
  init.created_at = node().scheduler().now();
  const std::uint64_t uid = init.uid;

  const auto it = table_.find(target);
  if (it == table_.end()) {
    auto [pit, inserted] =
        pending_.try_emplace(target, node().scheduler());
    PendingDiscovery& pd = pit->second;
    if (pd.queued.size() >= config_.pending_capacity) {
      ++stats_.pending_dropped;
      return uid;
    }
    pd.queued.push_back(net::make_packet(std::move(init)));
    if (inserted) start_discovery(target);
    return uid;
  }
  init.expected_hops =
      it->second.hops > 0 ? static_cast<std::uint16_t>(it->second.hops - 1) : 0;
  ++stats_.data_originated;
  originate_forwarded(net::make_packet(std::move(init)));
  return uid;
}

void RoutelessProtocol::start_discovery(std::uint32_t target) {
  ++stats_.discoveries_started;
  net::PacketInit init;
  init.type = net::PacketType::PathDiscovery;
  init.origin = node().id();
  init.target = target;
  init.sequence = next_sequence_++;
  init.uid = node().next_packet_uid();
  init.actual_hops = 0;
  init.ttl = config_.ttl;
  init.prev_hop = node().id();
  init.created_at = node().scheduler().now();
  net::PacketRef packet = net::make_packet(std::move(init));
  seen_.observe(packet.flood_key());
  node().send_packet(packet, mac::kBroadcastAddress, 0.0);

  const auto it = pending_.find(target);
  RRNET_ASSERT(it != pending_.end());
  it->second.timer.start(config_.discovery_timeout,
                         [this, target]() { discovery_timeout(target); });
}

void RoutelessProtocol::discovery_timeout(std::uint32_t target) {
  const auto it = pending_.find(target);
  if (it == pending_.end()) return;
  if (table_.count(target) > 0) {
    // Learned the distance passively in the meantime.
    flush_pending(target);
    return;
  }
  PendingDiscovery& pd = it->second;
  if (pd.retries >= config_.max_discovery_retries) {
    ++stats_.discovery_failures;
    stats_.pending_dropped += pd.queued.size();
    pending_.erase(it);
    return;
  }
  ++pd.retries;
  ++stats_.discovery_retries;
  start_discovery(target);
  --stats_.discoveries_started;  // a retry, not a new discovery
}

void RoutelessProtocol::flush_pending(std::uint32_t target) {
  const auto it = pending_.find(target);
  if (it == pending_.end()) return;
  std::vector<net::PacketRef> queued = std::move(it->second.queued);
  pending_.erase(it);
  const auto entry = table_.find(target);
  RRNET_ASSERT(entry != table_.end());
  const std::uint16_t expected =
      entry->second.hops > 0
          ? static_cast<std::uint16_t>(entry->second.hops - 1)
          : 0;
  for (net::PacketRef& packet : queued) {
    packet.hop().expected_hops = expected;
    ++stats_.data_originated;
    originate_forwarded(std::move(packet));
  }
}

void RoutelessProtocol::originate_forwarded(net::PacketRef packet) {
  packet.hop().actual_hops = 0;
  packet.hop().prev_hop = node().id();
  const std::uint64_t key = packet.flood_key();
  seen_.observe(key);
  RelayState& st = relay_state(key);
  st.relayed = true;
  st.relayed_hops = 0;
  st.relayed_copy = packet;
  node().send_packet(packet, mac::kBroadcastAddress, 0.0);
  watch_as_arbiter(key, packet);
}

void RoutelessProtocol::watch_as_arbiter(std::uint64_t key,
                                         const net::PacketRef& sent_copy) {
  // Each callback captures its own 24-byte ref to the shared buffer; the
  // retransmit path may fire several times and resends the same copy.
  arbiter_.watch(key, core::Arbiter::Callbacks{
      /*retransmit=*/[this, copy = sent_copy]() {
        node().send_packet(copy, mac::kBroadcastAddress, 0.0);
      },
      /*send_ack=*/[this, copy = sent_copy]() { send_netack(copy); }});
}

void RoutelessProtocol::send_netack(const net::PacketRef& acked) {
  net::PacketInit init;
  init.type = net::PacketType::NetAck;
  init.origin = acked.origin();
  init.target = acked.target();
  init.sequence = acked.sequence();
  init.acked_type = acked.type();
  init.uid = node().next_packet_uid();
  init.prev_hop = node().id();
  init.created_at = node().scheduler().now();
  ++stats_.netacks_sent;
  node().send_packet(net::make_packet(std::move(init)),
                     mac::kBroadcastAddress, 0.0);
}

void RoutelessProtocol::do_relay(std::uint64_t key, net::PacketRef copy,
                                 des::Time delay) {
  if (copy.ttl() == 0) {
    ++stats_.ttl_expired;
    return;
  }
  copy.hop().ttl -= 1;
  copy.hop().actual_hops += 1;
  copy.hop().prev_hop = node().id();
  const auto it = table_.find(copy.target());
  if (it != table_.end()) {
    copy.hop().expected_hops =
        it->second.hops > 0 ? static_cast<std::uint16_t>(it->second.hops - 1)
                            : 0;
  } else if (copy.expected_hops() > 0) {
    copy.hop().expected_hops -= 1;
  }
  RelayState& st = relay_state(key);
  st.relayed = true;
  st.relayed_hops = copy.actual_hops();
  st.relayed_copy = copy;
  ++stats_.relays;
  node().send_packet(copy, mac::kBroadcastAddress, delay);
  watch_as_arbiter(key, copy);
}

void RoutelessProtocol::handle_discovery(const net::PacketRef& packet,
                                         const phy::RxInfo& info) {
  const std::uint16_t hops_to_me =
      static_cast<std::uint16_t>(packet.actual_hops() + 1);
  update_table(packet.origin(), packet.sequence(), hops_to_me);
  const std::uint64_t key = packet.flood_key();
  const bool is_new = seen_.observe(key);
  if (packet.target() == node().id()) {
    if (is_new) send_reply(packet);
    return;
  }
  if (!is_new) {
    // Counter-1 forwards each discovery exactly once and never concedes;
    // SSAF discovery treats the overheard rebroadcast as a winning
    // announcement and cancels (fewer discovery relays, larger jumps).
    if (config_.ssaf_discovery) {
      elections_.cancel(key, core::CancelReason::DuplicateHeard);
    }
    return;
  }
  if (packet.ttl() == 0) {
    ++stats_.ttl_expired;
    return;
  }
  core::ElectionContext ctx;
  ctx.rssi_dbm = info.rssi_dbm;
  ctx.rssi_min_dbm = rssi_min_dbm_;
  ctx.rssi_max_dbm = rssi_max_dbm_;
  const core::BackoffPolicy& policy =
      config_.ssaf_discovery
          ? static_cast<const core::BackoffPolicy&>(ssaf_policy_)
          : static_cast<const core::BackoffPolicy&>(discovery_policy_);
  elections_.arm(key, policy, ctx, rng_,
                 [this, copy = packet](des::Time delay) {
                   net::PacketRef relay = copy;
                   relay.hop().ttl -= 1;
                   relay.hop().actual_hops += 1;
                   relay.hop().prev_hop = node().id();
                   ++stats_.discovery_relays;
                   node().send_packet(relay, mac::kBroadcastAddress, delay);
                 });
}

void RoutelessProtocol::send_reply(const net::PacketRef& discovery) {
  const auto it = table_.find(discovery.origin());
  RRNET_ASSERT(it != table_.end());
  net::PacketInit init;
  init.type = net::PacketType::PathReply;
  init.origin = node().id();
  init.target = discovery.origin();
  init.sequence = next_sequence_++;
  init.uid = node().next_packet_uid();
  init.ttl = config_.ttl;
  init.expected_hops =
      it->second.hops > 0 ? static_cast<std::uint16_t>(it->second.hops - 1)
                          : 0;
  init.created_at = node().scheduler().now();
  ++stats_.replies_sent;
  originate_forwarded(net::make_packet(std::move(init)));
}

void RoutelessProtocol::handle_forwarded(const net::PacketRef& packet,
                                         std::uint32_t mac_src) {
  const std::uint16_t hops_to_me =
      static_cast<std::uint16_t>(packet.actual_hops() + 1);
  update_table(packet.origin(), packet.sequence(), hops_to_me);
  const std::uint64_t key = packet.flood_key();
  const bool is_new = seen_.observe(key);

  if (packet.target() == node().id()) {
    // Destination reached. Acknowledge every copy (the upstream arbiter may
    // have missed our earlier ack), deliver once.
    send_netack(packet);
    if (delivered_.observe(key)) {
      net::PacketRef delivered = packet;
      delivered.hop().actual_hops = hops_to_me;
      if (packet.type() == net::PacketType::Data) {
        ++stats_.data_delivered;
        node().deliver_to_app(delivered);
      } else {
        ++stats_.replies_delivered;
        // Path discovery complete: the table entry for the reply's origin
        // (the destination we were looking for) was just updated.
        if (pending_.count(packet.origin()) > 0) flush_pending(packet.origin());
      }
    }
    return;
  }

  RelayState& st = relay_state(key);
  if (is_new) {
    st.armed_hops = packet.actual_hops();
    st.armed_from = mac_src;
    // First-round eligibility: only nodes at or inside the expected
    // distance compete ("the node closer to the target node should be given
    // the higher priority"). Nodes that would land in the penalty band stay
    // silent for now — if no eligible node exists, the arbiter's
    // retransmission re-runs the election below with everyone included,
    // which is what bounds the relay set to the downhill cone while still
    // guaranteeing progress around dead ends.
    const auto entry = table_.find(packet.target());
    const bool eligible = entry != table_.end() &&
                          entry->second.hops <= packet.expected_hops();
    if (eligible) {
      elections_.arm(key, gradient_policy_, gradient_context(packet), rng_,
                     [this, key, copy = packet](des::Time delay) {
                       do_relay(key, copy, delay);
                     });
    }
    return;
  }

  // Duplicate copy. A *retransmission* — the upstream arbiter trying again —
  // is recognizable as the same packet from the same neighbor we first
  // heard it from; late copies from parallel same-hop winners are not
  // retransmissions and must not re-trigger anything, or congestion feeds
  // on itself.
  const bool is_retransmission =
      mac_src == st.armed_from && packet.actual_hops() == st.armed_hops;
  if (st.relayed) {
    if (packet.actual_hops() > st.relayed_hops) {
      // Someone downstream relayed our copy: as arbiter, acknowledge.
      arbiter_.relay_heard(key);
    } else if (is_retransmission &&
               st.re_relays_used < config_.arbiter.max_retransmits) {
      // Our relay was not heard upstream: resend after a short random gap.
      ++st.re_relays_used;
      ++stats_.re_relays;
      const des::Time delay = rng_.uniform(0.0, config_.lambda);
      node().scheduler().schedule_in(
          delay, [this, key, copy = st.relayed_copy, delay]() {
            node().send_packet(copy, mac::kBroadcastAddress, delay);
            watch_as_arbiter(key, copy);
          });
    }
    return;
  }
  if (elections_.armed(key)) {
    // Cancellation rule (i): receiving the same packet again means another
    // node already relayed it — concede. (A retransmission from our own
    // upstream neighbor is the arbiter *re-running* the election, not a
    // competing relay, so it does not cancel.) This literal reading of the
    // rule is what keeps the relay set narrow: nodes between two successive
    // relayers hear both copies and drop out, leaving only the fresh
    // forward crescent competing for the next hop.
    if (!is_retransmission) {
      elections_.cancel(key, core::CancelReason::DuplicateHeard);
      st.cancelled_from = mac_src;
      st.cancelled_hops = packet.actual_hops();
    }
    return;
  }
  // Inactive (cancelled earlier or never armed). A retransmission — from
  // the neighbor that first triggered us, or from the relayer that
  // cancelled us — re-runs the election (the arbiter found no successor).
  const bool cancelled_retransmission =
      mac_src == st.cancelled_from && packet.actual_hops() == st.cancelled_hops;
  if (is_retransmission || cancelled_retransmission) {
    st.armed_from = mac_src;
    st.armed_hops = packet.actual_hops();
    elections_.arm(key, gradient_policy_, gradient_context(packet), rng_,
                   [this, key, copy = packet](des::Time delay) {
                     do_relay(key, copy, delay);
                   });
  }
}

void RoutelessProtocol::handle_netack(const net::PacketRef& packet) {
  const std::uint64_t key = acked_key(packet);
  RelayState& st = relay_state(key);
  // Cancellation rule (ii), precisely as stated: concede only on an
  // acknowledgement "from the node from which it received the packet" —
  // that node is the arbiter of *our* cohort, and its ack means our
  // election concluded with another winner. Acks from other nodes concern
  // other cohorts (e.g. the previous hop's) and must not cancel us, or the
  // ack cascade would suppress the very elections that keep the packet
  // moving.
  if (packet.prev_hop() == st.armed_from) {
    elections_.cancel(key, core::CancelReason::ArbiterAck);
  }
  // The target's own ack ("the packet has reached the target, stop other
  // nodes from trying to retransmit") ends our arbitration for this packet.
  // An intermediate ack does not: it acknowledges the PREVIOUS hop's relay,
  // while we are still responsible for finding our successor.
  if (packet.prev_hop() == packet.target()) {
    arbiter_.stop(key);
    elections_.cancel(key, core::CancelReason::ArbiterAck);
  }
}

void RoutelessProtocol::on_packet(const net::PacketRef& packet,
                                  const phy::RxInfo& info, bool /*for_us*/,
                                  std::uint32_t mac_src) {
  switch (packet.type()) {
    case net::PacketType::PathDiscovery:
      handle_discovery(packet, info);
      return;
    case net::PacketType::PathReply:
    case net::PacketType::Data:
      handle_forwarded(packet, mac_src);
      return;
    case net::PacketType::NetAck:
      handle_netack(packet);
      return;
    default:
      return;  // AODV control traffic in mixed deployments: ignore
  }
}


void RoutelessProtocol::snapshot_metrics(obs::MetricRegistry& reg) const {
  core::snapshot_metrics(elections_.stats(), reg);
  core::snapshot_metrics(arbiter_.stats(), reg);
  net::snapshot_metrics(seen_, reg);
  net::snapshot_metrics(delivered_, reg);
}

}  // namespace rrnet::proto
