// DSDV — Destination-Sequenced Distance Vector (Perkins & Bhagwat [26]).
//
// The paper classifies wireless routing protocols as proactive (DSDV) or
// reactive (AODV, DSR); this is the proactive baseline. Every node
// periodically broadcasts its full routing table, stamped with per-
// destination sequence numbers (even = reachable, odd = broken) so newer
// information always displaces older regardless of metric. Routes exist
// before any data flows — zero discovery latency — at the cost of a
// constant control-traffic floor that the on-demand protocols avoid.
//
// Simplifications vs the full 1994 protocol, documented per DESIGN.md:
// full dumps only (no incremental updates) and no settling-time damping of
// triggered updates beyond a minimum spacing.
#pragma once

#include <cstdint>
#include <unordered_map>
#include "util/pooled_containers.hpp"
#include <vector>

#include "des/rng.hpp"
#include "des/timer.hpp"
#include "net/node.hpp"
#include "net/protocol.hpp"

namespace rrnet::proto {

struct DsdvConfig {
  des::Time update_interval = 3.0;      ///< periodic full-dump period
  des::Time triggered_min_gap = 1.0;    ///< damping for triggered updates
  std::uint16_t infinity_metric = 16;   ///< unreachable marker
  des::Time route_expiry = 12.0;        ///< drop entries not refreshed
  std::uint8_t ttl = 32;                ///< data-packet hop budget
  std::size_t pending_capacity = 16;    ///< packets buffered per unknown dest
};

struct DsdvStats {
  std::uint64_t updates_sent = 0;
  std::uint64_t triggered_updates = 0;
  std::uint64_t entries_advertised = 0;
  std::uint64_t data_originated = 0;
  std::uint64_t data_forwarded = 0;
  std::uint64_t data_delivered = 0;
  std::uint64_t drops_no_route = 0;
  std::uint64_t link_breaks = 0;
  std::uint64_t pending_dropped = 0;
};

/// One advertised route in an update dump.
struct DsdvEntry {
  std::uint32_t destination = 0;
  std::uint16_t metric = 0;
  std::uint32_t seqno = 0;
};

/// Typed packet extension carrying a full table dump.
class RouteTableExtension final : public net::PacketExtension {
 public:
  static constexpr net::ExtensionKind kKind = net::ExtensionKind::RouteTable;
  explicit RouteTableExtension(std::vector<DsdvEntry> entries_in)
      : net::PacketExtension(kKind), entries(std::move(entries_in)) {}
  [[nodiscard]] net::ExtensionRef clone() const override {
    return net::make_extension<RouteTableExtension>(entries);
  }
  const std::vector<DsdvEntry> entries;
};

class DsdvProtocol final : public net::Protocol {
 public:
  DsdvProtocol(net::Node& node, DsdvConfig config = {});

  void start() override;
  void on_packet(const net::PacketRef& packet, const phy::RxInfo& info,
                 bool for_us, std::uint32_t mac_src) override;
  void on_send_done(const net::PacketRef& packet, bool success,
                    std::uint32_t mac_dst) override;
  std::uint64_t send_data(std::uint32_t target,
                          std::uint32_t payload_bytes) override;
  const char* name() const noexcept override { return "dsdv"; }

  [[nodiscard]] bool has_route(std::uint32_t target) const;
  [[nodiscard]] std::uint32_t next_hop(std::uint32_t target) const;
  [[nodiscard]] std::uint16_t route_metric(std::uint32_t target) const;

  [[nodiscard]] const DsdvStats& dsdv_stats() const noexcept { return stats_; }

 private:
  struct Route {
    std::uint32_t next_hop = net::kNoNode;
    std::uint16_t metric = 0;
    std::uint32_t seqno = 0;
    des::Time refreshed = 0.0;
  };

  void broadcast_update(bool triggered);
  void schedule_periodic();
  void handle_update(const net::PacketRef& packet, std::uint32_t mac_src);
  void handle_data(const net::PacketRef& packet);
  void forward_data(net::PacketRef packet);
  void handle_link_break(std::uint32_t neighbor);
  void request_triggered_update();
  void flush_pending(std::uint32_t target);
  [[nodiscard]] bool route_usable(const Route& route) const;

  DsdvConfig config_;
  des::Rng rng_;
  des::Timer periodic_timer_;
  des::Timer triggered_timer_;
  util::PooledUnorderedMap<std::uint32_t, Route> routes_;
  util::PooledUnorderedMap<std::uint32_t, std::vector<net::PacketRef>> pending_;
  std::uint32_t my_seqno_ = 0;  ///< kept even while reachable
  std::uint32_t next_sequence_ = 0;
  des::Time last_update_ = -1e9;
  bool triggered_pending_ = false;
  DsdvStats stats_;
};

}  // namespace rrnet::proto
