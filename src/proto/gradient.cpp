#include "proto/gradient.hpp"

#include <algorithm>
#include <utility>

#include "net/network.hpp"
#include "util/contracts.hpp"
#include "util/pool.hpp"

namespace rrnet::proto {

GradientProtocol::GradientProtocol(net::Node& node, GradientConfig config)
    : net::Protocol(node),
      config_(config),
      rng_(node.rng().fork("gradient")) {}

void GradientProtocol::update_table(std::uint32_t origin,
                                    std::uint32_t sequence,
                                    std::uint16_t hops_to_me) {
  if (origin == node().id()) return;
  auto [it, inserted] =
      table_.try_emplace(origin, std::make_pair(hops_to_me, sequence));
  if (inserted) return;
  auto& [hops, seq] = it->second;
  if (sequence > seq) {
    seq = sequence;
    hops = hops_to_me;
  } else if (sequence == seq) {
    hops = std::min(hops, hops_to_me);
  }
}

std::uint64_t GradientProtocol::send_data(std::uint32_t target,
                                 std::uint32_t payload_bytes) {
  RRNET_EXPECTS(target != node().id());
  net::Packet packet;
  packet.type = net::PacketType::Data;
  packet.origin = node().id();
  packet.target = target;
  packet.sequence = next_sequence_++;
  packet.uid = node().network().next_packet_uid();
  packet.ttl = config_.ttl;
  packet.payload_bytes = payload_bytes;
  packet.created_at = node().scheduler().now();

  const auto it = table_.find(target);
  if (it == table_.end()) {
    auto [pit, inserted] = pending_.try_emplace(target, node().scheduler());
    PendingDiscovery& pd = pit->second;
    if (pd.queued.size() >= config_.pending_capacity) {
      ++stats_.pending_dropped;
      return packet.uid;
    }
    pd.queued.push_back(packet);
    if (inserted) start_discovery(target);
    return packet.uid;
  }
  packet.expected_hops = it->second.first;  // my height on the gradient
  ++stats_.data_originated;
  originate(packet);
  return packet.uid;
}

void GradientProtocol::originate(net::Packet packet) {
  packet.actual_hops = 0;
  packet.prev_hop = node().id();
  seen_.observe(packet.flood_key());
  relayed_.observe(packet.flood_key());
  node().send_packet(packet, mac::kBroadcastAddress, 0.0);
}

void GradientProtocol::start_discovery(std::uint32_t target) {
  ++stats_.discoveries_started;
  net::Packet packet;
  packet.type = net::PacketType::PathDiscovery;
  packet.origin = node().id();
  packet.target = target;
  packet.sequence = next_sequence_++;
  packet.uid = node().network().next_packet_uid();
  packet.ttl = config_.ttl;
  packet.prev_hop = node().id();
  packet.created_at = node().scheduler().now();
  seen_.observe(packet.flood_key());
  node().send_packet(packet, mac::kBroadcastAddress, 0.0);

  const auto it = pending_.find(target);
  RRNET_ASSERT(it != pending_.end());
  it->second.timer.start(config_.discovery_timeout,
                         [this, target]() { discovery_timeout(target); });
}

void GradientProtocol::discovery_timeout(std::uint32_t target) {
  const auto it = pending_.find(target);
  if (it == pending_.end()) return;
  if (table_.count(target) > 0) {
    flush_pending(target);
    return;
  }
  PendingDiscovery& pd = it->second;
  if (pd.retries >= config_.max_discovery_retries) {
    stats_.pending_dropped += pd.queued.size();
    pending_.erase(it);
    return;
  }
  ++pd.retries;
  --stats_.discoveries_started;
  start_discovery(target);
}

void GradientProtocol::flush_pending(std::uint32_t target) {
  const auto it = pending_.find(target);
  if (it == pending_.end()) return;
  std::vector<net::Packet> queued = std::move(it->second.queued);
  pending_.erase(it);
  const auto entry = table_.find(target);
  RRNET_ASSERT(entry != table_.end());
  for (net::Packet& packet : queued) {
    packet.expected_hops = entry->second.first;
    ++stats_.data_originated;
    originate(packet);
  }
}

void GradientProtocol::handle_discovery(const net::Packet& packet) {
  update_table(packet.origin, packet.sequence,
               static_cast<std::uint16_t>(packet.actual_hops + 1));
  const bool is_new = seen_.observe(packet.flood_key());
  if (packet.target == node().id()) {
    if (is_new && pending_.count(packet.origin) == 0) {
      // Answer with a gradient-forwarded reply so the requester learns its
      // distance to us (symmetric to RR's path reply).
      const auto it = table_.find(packet.origin);
      RRNET_ASSERT(it != table_.end());
      net::Packet reply;
      reply.type = net::PacketType::PathReply;
      reply.origin = node().id();
      reply.target = packet.origin;
      reply.sequence = next_sequence_++;
      reply.uid = node().network().next_packet_uid();
      reply.ttl = config_.ttl;
      reply.expected_hops = 0;  // our own height toward ourselves
      reply.created_at = node().scheduler().now();
      ++stats_.replies_sent;
      // Height toward the requester is what gates forwarding.
      reply.expected_hops = it->second.first;
      originate(reply);
    }
    return;
  }
  if (!is_new || packet.ttl == 0) return;
  net::Packet copy = packet;
  copy.ttl -= 1;
  copy.actual_hops += 1;
  copy.prev_hop = node().id();
  const des::Time delay = rng_.uniform(0.0, config_.discovery_lambda);
  auto boxed = util::make_pooled<net::Packet>(std::move(copy));
  node().scheduler().schedule_in(delay, [this, boxed, delay]() {
    ++stats_.discovery_relays;
    node().send_packet(*boxed, mac::kBroadcastAddress, delay);
  });
}

void GradientProtocol::handle_forwarded(const net::Packet& packet) {
  update_table(packet.origin, packet.sequence,
               static_cast<std::uint16_t>(packet.actual_hops + 1));
  const std::uint64_t key = packet.flood_key();
  seen_.observe(key);

  if (packet.target == node().id()) {
    if (delivered_.observe(key)) {
      net::Packet delivered = packet;
      delivered.actual_hops =
          static_cast<std::uint16_t>(packet.actual_hops + 1);
      if (packet.type == net::PacketType::Data) {
        ++stats_.data_delivered;
        node().deliver_to_app(delivered);
      } else if (pending_.count(packet.origin) > 0) {
        flush_pending(packet.origin);
      }
    }
    return;
  }

  // Gradient rule: forward iff strictly closer to the target than the node
  // we heard it from — and only once per packet.
  const auto it = table_.find(packet.target);
  if (it == table_.end() || it->second.first >= packet.expected_hops) {
    ++stats_.not_on_gradient;
    return;
  }
  if (packet.ttl == 0) return;
  if (!relayed_.observe(key)) return;  // already relayed this packet
  net::Packet copy = packet;
  copy.ttl -= 1;
  copy.actual_hops += 1;
  copy.prev_hop = node().id();
  copy.expected_hops = it->second.first;  // my own height gates the next ring
  const des::Time delay = rng_.uniform(0.0, config_.jitter);
  auto boxed = util::make_pooled<net::Packet>(std::move(copy));
  node().scheduler().schedule_in(delay, [this, boxed, delay]() {
    ++stats_.relays;
    node().send_packet(*boxed, mac::kBroadcastAddress, delay);
  });
}

void GradientProtocol::on_packet(const net::Packet& packet,
                                 const phy::RxInfo& /*info*/, bool /*for_us*/,
                                 std::uint32_t /*mac_src*/) {
  switch (packet.type) {
    case net::PacketType::PathDiscovery:
      handle_discovery(packet);
      return;
    case net::PacketType::PathReply:
    case net::PacketType::Data:
      handle_forwarded(packet);
      return;
    default:
      return;
  }
}

}  // namespace rrnet::proto
