#include "proto/gradient.hpp"

#include <algorithm>
#include <utility>

#include "net/network.hpp"
#include "util/contracts.hpp"

namespace rrnet::proto {

GradientProtocol::GradientProtocol(net::Node& node, GradientConfig config)
    : net::Protocol(node),
      config_(config),
      rng_(node.rng().fork("gradient")) {}

void GradientProtocol::update_table(std::uint32_t origin,
                                    std::uint32_t sequence,
                                    std::uint16_t hops_to_me) {
  if (origin == node().id()) return;
  auto [it, inserted] =
      table_.try_emplace(origin, std::make_pair(hops_to_me, sequence));
  if (inserted) return;
  auto& [hops, seq] = it->second;
  if (sequence > seq) {
    seq = sequence;
    hops = hops_to_me;
  } else if (sequence == seq) {
    hops = std::min(hops, hops_to_me);
  }
}

std::uint64_t GradientProtocol::send_data(std::uint32_t target,
                                 std::uint32_t payload_bytes) {
  RRNET_EXPECTS(target != node().id());
  net::PacketInit init;
  init.type = net::PacketType::Data;
  init.origin = node().id();
  init.target = target;
  init.sequence = next_sequence_++;
  init.uid = node().next_packet_uid();
  init.ttl = config_.ttl;
  init.payload_bytes = payload_bytes;
  init.created_at = node().scheduler().now();

  const auto it = table_.find(target);
  if (it == table_.end()) {
    auto [pit, inserted] = pending_.try_emplace(target, node().scheduler());
    PendingDiscovery& pd = pit->second;
    if (pd.queued.size() >= config_.pending_capacity) {
      ++stats_.pending_dropped;
      return init.uid;
    }
    const std::uint64_t uid = init.uid;
    pd.queued.push_back(net::make_packet(std::move(init)));
    if (inserted) start_discovery(target);
    return uid;
  }
  init.expected_hops = it->second.first;  // my height on the gradient
  ++stats_.data_originated;
  const std::uint64_t uid = init.uid;
  originate(net::make_packet(std::move(init)));
  return uid;
}

void GradientProtocol::originate(net::PacketRef packet) {
  packet.hop().actual_hops = 0;
  packet.hop().prev_hop = node().id();
  seen_.observe(packet.flood_key());
  relayed_.observe(packet.flood_key());
  node().send_packet(packet, mac::kBroadcastAddress, 0.0);
}

void GradientProtocol::start_discovery(std::uint32_t target) {
  ++stats_.discoveries_started;
  net::PacketInit init;
  init.type = net::PacketType::PathDiscovery;
  init.origin = node().id();
  init.target = target;
  init.sequence = next_sequence_++;
  init.uid = node().next_packet_uid();
  init.ttl = config_.ttl;
  init.prev_hop = node().id();
  init.created_at = node().scheduler().now();
  net::PacketRef packet = net::make_packet(std::move(init));
  seen_.observe(packet.flood_key());
  node().send_packet(packet, mac::kBroadcastAddress, 0.0);

  const auto it = pending_.find(target);
  RRNET_ASSERT(it != pending_.end());
  it->second.timer.start(config_.discovery_timeout,
                         [this, target]() { discovery_timeout(target); });
}

void GradientProtocol::discovery_timeout(std::uint32_t target) {
  const auto it = pending_.find(target);
  if (it == pending_.end()) return;
  if (table_.count(target) > 0) {
    flush_pending(target);
    return;
  }
  PendingDiscovery& pd = it->second;
  if (pd.retries >= config_.max_discovery_retries) {
    stats_.pending_dropped += pd.queued.size();
    pending_.erase(it);
    return;
  }
  ++pd.retries;
  --stats_.discoveries_started;
  start_discovery(target);
}

void GradientProtocol::flush_pending(std::uint32_t target) {
  const auto it = pending_.find(target);
  if (it == pending_.end()) return;
  std::vector<net::PacketRef> queued = std::move(it->second.queued);
  pending_.erase(it);
  const auto entry = table_.find(target);
  RRNET_ASSERT(entry != table_.end());
  for (net::PacketRef& packet : queued) {
    packet.hop().expected_hops = entry->second.first;
    ++stats_.data_originated;
    originate(std::move(packet));
  }
}

void GradientProtocol::handle_discovery(const net::PacketRef& packet) {
  update_table(packet.origin(), packet.sequence(),
               static_cast<std::uint16_t>(packet.actual_hops() + 1));
  const bool is_new = seen_.observe(packet.flood_key());
  if (packet.target() == node().id()) {
    if (is_new && pending_.count(packet.origin()) == 0) {
      // Answer with a gradient-forwarded reply so the requester learns its
      // distance to us (symmetric to RR's path reply).
      const auto it = table_.find(packet.origin());
      RRNET_ASSERT(it != table_.end());
      net::PacketInit reply;
      reply.type = net::PacketType::PathReply;
      reply.origin = node().id();
      reply.target = packet.origin();
      reply.sequence = next_sequence_++;
      reply.uid = node().next_packet_uid();
      reply.ttl = config_.ttl;
      reply.created_at = node().scheduler().now();
      ++stats_.replies_sent;
      // Height toward the requester is what gates forwarding.
      reply.expected_hops = it->second.first;
      originate(net::make_packet(std::move(reply)));
    }
    return;
  }
  if (!is_new || packet.ttl() == 0) return;
  net::PacketRef copy = packet;
  copy.hop().ttl -= 1;
  copy.hop().actual_hops += 1;
  copy.hop().prev_hop = node().id();
  const des::Time delay = rng_.uniform(0.0, config_.discovery_lambda);
  node().scheduler().schedule_in(delay, [this, copy, delay]() {
    ++stats_.discovery_relays;
    node().send_packet(copy, mac::kBroadcastAddress, delay);
  });
}

void GradientProtocol::handle_forwarded(const net::PacketRef& packet) {
  update_table(packet.origin(), packet.sequence(),
               static_cast<std::uint16_t>(packet.actual_hops() + 1));
  const std::uint64_t key = packet.flood_key();
  seen_.observe(key);

  if (packet.target() == node().id()) {
    if (delivered_.observe(key)) {
      net::PacketRef delivered = packet;
      delivered.hop().actual_hops =
          static_cast<std::uint16_t>(packet.actual_hops() + 1);
      if (packet.type() == net::PacketType::Data) {
        ++stats_.data_delivered;
        node().deliver_to_app(delivered);
      } else if (pending_.count(packet.origin()) > 0) {
        flush_pending(packet.origin());
      }
    }
    return;
  }

  // Gradient rule: forward iff strictly closer to the target than the node
  // we heard it from — and only once per packet.
  const auto it = table_.find(packet.target());
  if (it == table_.end() || it->second.first >= packet.expected_hops()) {
    ++stats_.not_on_gradient;
    return;
  }
  if (packet.ttl() == 0) return;
  if (!relayed_.observe(key)) return;  // already relayed this packet
  net::PacketRef copy = packet;
  copy.hop().ttl -= 1;
  copy.hop().actual_hops += 1;
  copy.hop().prev_hop = node().id();
  copy.hop().expected_hops = it->second.first;  // my height gates the next ring
  const des::Time delay = rng_.uniform(0.0, config_.jitter);
  node().scheduler().schedule_in(delay, [this, copy, delay]() {
    ++stats_.relays;
    node().send_packet(copy, mac::kBroadcastAddress, delay);
  });
}

void GradientProtocol::on_packet(const net::PacketRef& packet,
                                 const phy::RxInfo& /*info*/, bool /*for_us*/,
                                 std::uint32_t /*mac_src*/) {
  switch (packet.type()) {
    case net::PacketType::PathDiscovery:
      handle_discovery(packet);
      return;
    case net::PacketType::PathReply:
    case net::PacketType::Data:
      handle_forwarded(packet);
      return;
    default:
      return;
  }
}


void GradientProtocol::snapshot_metrics(obs::MetricRegistry& reg) const {
  net::snapshot_metrics(seen_, reg);
  net::snapshot_metrics(relayed_, reg);
  net::snapshot_metrics(delivered_, reg);
}

}  // namespace rrnet::proto
