// Gradient Routing comparator (§4.4, after Poor [32]).
//
// Like Routeless Routing, nodes learn a hop-count gradient from flooded
// discovery packets. Unlike RR, forwarding is NOT arbitrated: every node
// whose stored hop count toward the target is smaller than the previous
// transmitter's relays the packet (once, after a small random jitter).
// The paper's §4.4 point — "every node with a smaller hop count may
// retransmit the same packet, resulting in a significant increase in the
// number of packet transmissions" and extra congestion — falls out of this
// rule; the abl_gradient_vs_rr bench quantifies it.
#pragma once

#include <cstdint>
#include <unordered_map>
#include "util/pooled_containers.hpp"
#include <vector>

#include "net/duplicate_cache.hpp"
#include "net/node.hpp"
#include "net/protocol.hpp"

namespace rrnet::proto {

struct GradientConfig {
  des::Time jitter = 2e-3;      ///< relay jitter (collision avoidance only)
  std::uint8_t ttl = 32;
  des::Time discovery_lambda = 10e-3;
  des::Time discovery_timeout = 2.0;
  std::uint32_t max_discovery_retries = 3;
  std::size_t pending_capacity = 32;
};

struct GradientStats {
  std::uint64_t discoveries_started = 0;
  std::uint64_t discovery_relays = 0;
  std::uint64_t replies_sent = 0;
  std::uint64_t relays = 0;
  std::uint64_t not_on_gradient = 0;  ///< copies heard but not relayed
  std::uint64_t data_originated = 0;
  std::uint64_t data_delivered = 0;
  std::uint64_t pending_dropped = 0;
};

class GradientProtocol final : public net::Protocol {
 public:
  GradientProtocol(net::Node& node, GradientConfig config = {});

  void on_packet(const net::PacketRef& packet, const phy::RxInfo& info,
                 bool for_us, std::uint32_t mac_src) override;
  std::uint64_t send_data(std::uint32_t target,
                          std::uint32_t payload_bytes) override;
  const char* name() const noexcept override { return "gradient"; }
  void snapshot_metrics(obs::MetricRegistry& reg) const override;

  [[nodiscard]] const GradientStats& gradient_stats() const noexcept {
    return stats_;
  }

 private:
  struct PendingDiscovery {
    explicit PendingDiscovery(des::Scheduler& scheduler) : timer(scheduler) {}
    des::Timer timer;
    std::uint32_t retries = 0;
    std::vector<net::PacketRef> queued;
  };

  void update_table(std::uint32_t origin, std::uint32_t sequence,
                    std::uint16_t hops_to_me);
  void handle_discovery(const net::PacketRef& packet);
  void handle_forwarded(const net::PacketRef& packet);
  void start_discovery(std::uint32_t target);
  void discovery_timeout(std::uint32_t target);
  void flush_pending(std::uint32_t target);
  void originate(net::PacketRef packet);

  GradientConfig config_;
  des::Rng rng_;
  util::PooledUnorderedMap<std::uint32_t,
                           std::pair<std::uint16_t, std::uint32_t>>
      table_;  ///< target -> (hops, freshest sequence)
  net::DuplicateCache seen_;
  net::DuplicateCache relayed_;
  net::DuplicateCache delivered_;
  util::PooledUnorderedMap<std::uint32_t, PendingDiscovery> pending_;
  std::uint32_t next_sequence_ = 0;
  GradientStats stats_;
};

}  // namespace rrnet::proto
