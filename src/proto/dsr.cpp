#include "proto/dsr.hpp"

#include <algorithm>
#include <utility>

#include "net/network.hpp"
#include "util/contracts.hpp"

namespace rrnet::proto {

namespace {
/// Per-entry on-air bytes of a source route.
constexpr std::uint32_t kRouteEntryBytes = 4;

std::uint64_t rreq_key(const net::PacketRef& packet) {
  return (static_cast<std::uint64_t>(packet.origin()) << 32) | packet.rreq_id();
}

}  // namespace

DsrProtocol::DsrProtocol(net::Node& node, DsrConfig config)
    : net::Protocol(node), config_(config), rng_(node.rng().fork("dsr")) {
  RRNET_EXPECTS(config.cache_capacity > 0);
}

const SourceRoute& DsrProtocol::route_of(const net::PacketRef& packet) {
  const auto* ext = packet.extension_as<SourceRouteExtension>();
  RRNET_ASSERT(ext != nullptr);
  return ext->route;
}

bool DsrProtocol::has_cached_route(std::uint32_t target) const {
  return cache_.count(target) > 0;
}

const SourceRoute& DsrProtocol::cached_route(std::uint32_t target) const {
  const auto it = cache_.find(target);
  RRNET_EXPECTS(it != cache_.end());
  return it->second;
}

void DsrProtocol::cache_route(const SourceRoute& route) {
  // Cache the sub-route from us to every node after us on the route, and
  // (bidirectional links) the reversed sub-route to every node before us.
  const auto self = std::find(route.begin(), route.end(), node().id());
  if (self == route.end()) return;
  auto remember = [this](std::uint32_t dest, SourceRoute sub) {
    if (dest == node().id() || sub.size() < 2) return;
    auto [it, inserted] = cache_.try_emplace(dest);
    if (!inserted && it->second.size() <= sub.size()) return;  // keep shorter
    it->second = std::move(sub);
    if (inserted) {
      cache_order_.push_back(dest);
      if (cache_order_.size() > config_.cache_capacity) {
        cache_.erase(cache_order_.front());
        cache_order_.erase(cache_order_.begin());
        ++stats_.cache_evictions;
      }
    }
  };
  remember(route.back(), SourceRoute(self, route.end()));
  SourceRoute reversed(route.begin(), self + 1);
  std::reverse(reversed.begin(), reversed.end());
  remember(route.front(), std::move(reversed));
}

std::uint64_t DsrProtocol::send_data(std::uint32_t target,
                                     std::uint32_t payload_bytes) {
  RRNET_EXPECTS(target != node().id());
  net::PacketInit init;
  init.type = net::PacketType::Data;
  init.origin = node().id();
  init.target = target;
  init.sequence = next_sequence_++;
  init.uid = node().next_packet_uid();
  init.ttl = config_.ttl;
  init.payload_bytes = payload_bytes;
  init.created_at = node().scheduler().now();
  const std::uint64_t uid = init.uid;

  const auto it = cache_.find(target);
  if (it == cache_.end()) {
    auto [pit, inserted] = pending_.try_emplace(target, node().scheduler());
    PendingDiscovery& pd = pit->second;
    if (pd.queued.size() >= config_.pending_capacity) {
      ++stats_.pending_dropped;
      return uid;
    }
    pd.queued.push_back(net::make_packet(std::move(init)));
    if (inserted) start_discovery(target);
    return uid;
  }
  ++stats_.cache_hits;
  ++stats_.data_originated;
  init.extension = net::make_extension<SourceRouteExtension>(it->second);
  init.payload_bytes +=
      static_cast<std::uint32_t>(it->second.size()) * kRouteEntryBytes;
  init.actual_hops = 0;  // index of the current holder on the route
  forward_on_route(net::make_packet(std::move(init)));
  return uid;
}

void DsrProtocol::forward_on_route(net::PacketRef packet) {
  const SourceRoute& route = route_of(packet);
  const std::size_t index = packet.actual_hops();
  if (index + 1 >= route.size() || route[index] != node().id()) {
    ++stats_.drops_bad_route;
    return;
  }
  packet.hop().prev_hop = node().id();
  if (packet.origin() != node().id() &&
      packet.type() == net::PacketType::Data) {
    ++stats_.data_forwarded;
  }
  node().send_packet(packet, route[index + 1], 0.0);
}

void DsrProtocol::start_discovery(std::uint32_t target) {
  ++stats_.rreq_originated;
  net::PacketInit init;
  init.type = net::PacketType::RouteRequest;
  init.origin = node().id();
  init.target = target;
  init.rreq_id = next_rreq_id_++;
  init.sequence = next_sequence_++;
  init.uid = node().next_packet_uid();
  init.ttl = config_.ttl;
  init.prev_hop = node().id();
  init.created_at = node().scheduler().now();
  init.extension =
      net::make_extension<SourceRouteExtension>(SourceRoute{node().id()});
  init.payload_bytes = kRouteEntryBytes;
  net::PacketRef rreq = net::make_packet(std::move(init));
  rreq_seen_.observe(rreq_key(rreq));
  node().send_packet(rreq, mac::kBroadcastAddress, 0.0);

  const auto it = pending_.find(target);
  RRNET_ASSERT(it != pending_.end());
  it->second.timer.start(config_.discovery_timeout,
                         [this, target]() { discovery_timeout(target); });
}

void DsrProtocol::discovery_timeout(std::uint32_t target) {
  const auto it = pending_.find(target);
  if (it == pending_.end()) return;
  if (cache_.count(target) > 0) {
    flush_pending(target);
    return;
  }
  PendingDiscovery& pd = it->second;
  if (pd.retries >= config_.max_discovery_retries) {
    ++stats_.discovery_failures;
    stats_.pending_dropped += pd.queued.size();
    pending_.erase(it);
    return;
  }
  ++pd.retries;
  --stats_.rreq_originated;  // counted again by start_discovery
  start_discovery(target);
}

void DsrProtocol::flush_pending(std::uint32_t target) {
  const auto it = pending_.find(target);
  if (it == pending_.end()) return;
  std::vector<net::PacketRef> queued = std::move(it->second.queued);
  pending_.erase(it);
  const auto route_it = cache_.find(target);
  RRNET_ASSERT(route_it != cache_.end());
  for (net::PacketRef& packet : queued) {
    ++stats_.data_originated;
    // Attaching the discovered route changes the immutable header: rebuild.
    net::PacketInit init = packet.to_init();
    init.extension = net::make_extension<SourceRouteExtension>(route_it->second);
    init.payload_bytes +=
        static_cast<std::uint32_t>(route_it->second.size()) * kRouteEntryBytes;
    init.actual_hops = 0;
    forward_on_route(net::make_packet(std::move(init)));
  }
}

void DsrProtocol::handle_rreq(const net::PacketRef& packet) {
  if (packet.origin() == node().id()) return;
  const SourceRoute& accumulated = route_of(packet);
  if (std::find(accumulated.begin(), accumulated.end(), node().id()) !=
      accumulated.end()) {
    return;  // loop
  }
  if (!rreq_seen_.observe(rreq_key(packet))) return;

  SourceRoute extended = accumulated;
  extended.push_back(node().id());
  cache_route(extended);

  if (packet.target() == node().id()) {
    // Full route discovered: reply along the reversed route.
    ++stats_.rrep_sent;
    net::PacketInit init;
    init.type = net::PacketType::RouteReply;
    init.origin = node().id();
    init.target = packet.origin();
    init.sequence = next_sequence_++;
    init.uid = node().next_packet_uid();
    init.ttl = config_.ttl;
    init.created_at = node().scheduler().now();
    SourceRoute reversed = extended;
    std::reverse(reversed.begin(), reversed.end());
    init.extension =
        net::make_extension<SourceRouteExtension>(std::move(reversed));
    init.payload_bytes =
        static_cast<std::uint32_t>(extended.size()) * kRouteEntryBytes;
    init.actual_hops = 0;
    forward_on_route(net::make_packet(std::move(init)));
    return;
  }
  if (packet.ttl() == 0) return;
  // The accumulated route is part of the immutable header: the relayed
  // packet semantically IS a new packet — rebuild it.
  net::PacketInit init = packet.to_init();
  init.ttl = static_cast<std::uint8_t>(packet.ttl() - 1);
  init.prev_hop = node().id();
  init.extension = net::make_extension<SourceRouteExtension>(std::move(extended));
  init.payload_bytes += kRouteEntryBytes;
  net::PacketRef copy = net::make_packet(std::move(init));
  const des::Time delay = rng_.uniform(0.0, config_.rreq_jitter);
  node().scheduler().schedule_in(delay, [this, copy, delay]() {
    ++stats_.rreq_relayed;
    node().send_packet(copy, mac::kBroadcastAddress, delay);
  });
}

void DsrProtocol::handle_rrep(const net::PacketRef& packet) {
  cache_route(route_of(packet));
  if (packet.target() == node().id()) {
    // The reply's route is [destination ... us]; the forward route to the
    // destination was cached by cache_route above. Release waiting data.
    if (pending_.count(packet.origin()) > 0) flush_pending(packet.origin());
    return;
  }
  net::PacketRef copy = packet;
  copy.hop().actual_hops += 1;
  ++stats_.rrep_forwarded;
  forward_on_route(std::move(copy));
}

void DsrProtocol::handle_data(const net::PacketRef& packet) {
  cache_route(route_of(packet));
  if (packet.target() == node().id()) {
    if (delivered_.observe(packet.flood_key())) {
      ++stats_.data_delivered;
      net::PacketRef delivered = packet;
      // actual_hops held the route index; at the destination that index is
      // the number of hops traveled.
      delivered.hop().actual_hops =
          static_cast<std::uint16_t>(route_of(packet).size() - 1);
      node().deliver_to_app(delivered);
    }
    return;
  }
  net::PacketRef copy = packet;
  copy.hop().actual_hops += 1;
  forward_on_route(std::move(copy));
}

void DsrProtocol::purge_link(std::uint32_t from, std::uint32_t to) {
  for (auto it = cache_.begin(); it != cache_.end();) {
    const SourceRoute& route = it->second;
    bool broken = false;
    for (std::size_t i = 0; i + 1 < route.size(); ++i) {
      if ((route[i] == from && route[i + 1] == to) ||
          (route[i] == to && route[i + 1] == from)) {
        broken = true;
        break;
      }
    }
    if (broken) {
      cache_order_.erase(std::find(cache_order_.begin(), cache_order_.end(),
                                   it->first));
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
}

void DsrProtocol::handle_rerr(const net::PacketRef& packet) {
  if (!rerr_seen_.observe(packet.flood_key())) return;
  purge_link(packet.prev_hop(), packet.unreachable());
}

void DsrProtocol::on_send_done(const net::PacketRef& packet, bool success,
                               std::uint32_t mac_dst) {
  if (success || mac_dst == mac::kBroadcastAddress) return;
  ++stats_.link_breaks;
  purge_link(node().id(), mac_dst);
  // Tell the neighborhood which link died; everyone drops routes using it.
  net::PacketInit init;
  init.type = net::PacketType::RouteError;
  init.origin = node().id();
  init.sequence = next_sequence_++;
  init.uid = node().next_packet_uid();
  init.prev_hop = node().id();  // the broken link is (prev_hop, unreachable)
  init.unreachable = mac_dst;
  init.created_at = node().scheduler().now();
  net::PacketRef rerr = net::make_packet(std::move(init));
  rerr_seen_.observe(rerr.flood_key());
  ++stats_.rerr_sent;
  node().send_packet(rerr, mac::kBroadcastAddress, 0.0);
  // Our own packet: requeue and rediscover; a forwarded one is dropped
  // (no salvaging in this implementation).
  if (packet.type() == net::PacketType::Data &&
      packet.origin() == node().id()) {
    auto [it, inserted] = pending_.try_emplace(packet.target(),
                                               node().scheduler());
    if (it->second.queued.size() < config_.pending_capacity) {
      // Dropping the stale route changes the immutable header: rebuild the
      // packet without the extension (it keeps its original timestamp).
      net::PacketInit requeued = packet.to_init();
      requeued.payload_bytes -= static_cast<std::uint32_t>(
          route_of(packet).size() * kRouteEntryBytes);
      requeued.extension.reset();
      requeued.actual_hops = 0;
      it->second.queued.push_back(net::make_packet(std::move(requeued)));
      if (inserted) start_discovery(packet.target());
    } else {
      ++stats_.pending_dropped;
    }
  } else if (packet.type() == net::PacketType::Data) {
    ++stats_.drops_bad_route;
  }
}

void DsrProtocol::on_packet(const net::PacketRef& packet,
                            const phy::RxInfo& /*info*/, bool for_us,
                            std::uint32_t /*mac_src*/) {
  if (!for_us) return;
  switch (packet.type()) {
    case net::PacketType::RouteRequest:
      handle_rreq(packet);
      return;
    case net::PacketType::RouteReply:
      handle_rrep(packet);
      return;
    case net::PacketType::RouteError:
      handle_rerr(packet);
      return;
    case net::PacketType::Data:
      handle_data(packet);
      return;
    default:
      return;
  }
}


void DsrProtocol::snapshot_metrics(obs::MetricRegistry& reg) const {
  net::snapshot_metrics(rreq_seen_, reg);
  net::snapshot_metrics(rerr_seen_, reg);
  net::snapshot_metrics(delivered_, reg);
}

}  // namespace rrnet::proto
