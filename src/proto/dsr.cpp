#include "proto/dsr.hpp"

#include <algorithm>
#include <memory>

#include "net/network.hpp"
#include "util/contracts.hpp"
#include "util/pool.hpp"

namespace rrnet::proto {

namespace {
/// Per-entry on-air bytes of a source route.
constexpr std::uint32_t kRouteEntryBytes = 4;

std::uint64_t rreq_key(const net::Packet& packet) {
  return (static_cast<std::uint64_t>(packet.origin) << 32) | packet.rreq_id;
}

}  // namespace

DsrProtocol::DsrProtocol(net::Node& node, DsrConfig config)
    : net::Protocol(node), config_(config), rng_(node.rng().fork("dsr")) {
  RRNET_EXPECTS(config.cache_capacity > 0);
}

const SourceRoute& DsrProtocol::route_of(const net::Packet& packet) {
  RRNET_ASSERT(packet.extension != nullptr);
  return *static_cast<const SourceRoute*>(packet.extension.get());
}

bool DsrProtocol::has_cached_route(std::uint32_t target) const {
  return cache_.count(target) > 0;
}

const SourceRoute& DsrProtocol::cached_route(std::uint32_t target) const {
  const auto it = cache_.find(target);
  RRNET_EXPECTS(it != cache_.end());
  return it->second;
}

void DsrProtocol::cache_route(const SourceRoute& route) {
  // Cache the sub-route from us to every node after us on the route, and
  // (bidirectional links) the reversed sub-route to every node before us.
  const auto self = std::find(route.begin(), route.end(), node().id());
  if (self == route.end()) return;
  auto remember = [this](std::uint32_t dest, SourceRoute sub) {
    if (dest == node().id() || sub.size() < 2) return;
    auto [it, inserted] = cache_.try_emplace(dest);
    if (!inserted && it->second.size() <= sub.size()) return;  // keep shorter
    it->second = std::move(sub);
    if (inserted) {
      cache_order_.push_back(dest);
      if (cache_order_.size() > config_.cache_capacity) {
        cache_.erase(cache_order_.front());
        cache_order_.erase(cache_order_.begin());
        ++stats_.cache_evictions;
      }
    }
  };
  remember(route.back(), SourceRoute(self, route.end()));
  SourceRoute reversed(route.begin(), self + 1);
  std::reverse(reversed.begin(), reversed.end());
  remember(route.front(), std::move(reversed));
}

std::uint64_t DsrProtocol::send_data(std::uint32_t target,
                                     std::uint32_t payload_bytes) {
  RRNET_EXPECTS(target != node().id());
  net::Packet packet;
  packet.type = net::PacketType::Data;
  packet.origin = node().id();
  packet.target = target;
  packet.sequence = next_sequence_++;
  packet.uid = node().network().next_packet_uid();
  packet.ttl = config_.ttl;
  packet.payload_bytes = payload_bytes;
  packet.created_at = node().scheduler().now();

  const auto it = cache_.find(target);
  if (it == cache_.end()) {
    auto [pit, inserted] = pending_.try_emplace(target, node().scheduler());
    PendingDiscovery& pd = pit->second;
    if (pd.queued.size() >= config_.pending_capacity) {
      ++stats_.pending_dropped;
      return packet.uid;
    }
    pd.queued.push_back(packet);
    if (inserted) start_discovery(target);
    return packet.uid;
  }
  ++stats_.cache_hits;
  ++stats_.data_originated;
  packet.extension = std::make_shared<const SourceRoute>(it->second);
  packet.payload_bytes +=
      static_cast<std::uint32_t>(it->second.size()) * kRouteEntryBytes;
  packet.actual_hops = 0;  // index of the current holder on the route
  forward_on_route(std::move(packet));
  return packet.uid;
}

void DsrProtocol::forward_on_route(net::Packet packet) {
  const SourceRoute& route = route_of(packet);
  const std::size_t index = packet.actual_hops;
  if (index + 1 >= route.size() || route[index] != node().id()) {
    ++stats_.drops_bad_route;
    return;
  }
  packet.prev_hop = node().id();
  if (packet.origin != node().id() &&
      packet.type == net::PacketType::Data) {
    ++stats_.data_forwarded;
  }
  node().send_packet(packet, route[index + 1], 0.0);
}

void DsrProtocol::start_discovery(std::uint32_t target) {
  ++stats_.rreq_originated;
  net::Packet rreq;
  rreq.type = net::PacketType::RouteRequest;
  rreq.origin = node().id();
  rreq.target = target;
  rreq.rreq_id = next_rreq_id_++;
  rreq.sequence = next_sequence_++;
  rreq.uid = node().network().next_packet_uid();
  rreq.ttl = config_.ttl;
  rreq.prev_hop = node().id();
  rreq.created_at = node().scheduler().now();
  rreq.extension = std::make_shared<const SourceRoute>(
      SourceRoute{node().id()});
  rreq.payload_bytes = kRouteEntryBytes;
  rreq_seen_.observe(rreq_key(rreq));
  node().send_packet(rreq, mac::kBroadcastAddress, 0.0);

  const auto it = pending_.find(target);
  RRNET_ASSERT(it != pending_.end());
  it->second.timer.start(config_.discovery_timeout,
                         [this, target]() { discovery_timeout(target); });
}

void DsrProtocol::discovery_timeout(std::uint32_t target) {
  const auto it = pending_.find(target);
  if (it == pending_.end()) return;
  if (cache_.count(target) > 0) {
    flush_pending(target);
    return;
  }
  PendingDiscovery& pd = it->second;
  if (pd.retries >= config_.max_discovery_retries) {
    ++stats_.discovery_failures;
    stats_.pending_dropped += pd.queued.size();
    pending_.erase(it);
    return;
  }
  ++pd.retries;
  --stats_.rreq_originated;  // counted again by start_discovery
  start_discovery(target);
}

void DsrProtocol::flush_pending(std::uint32_t target) {
  const auto it = pending_.find(target);
  if (it == pending_.end()) return;
  std::vector<net::Packet> queued = std::move(it->second.queued);
  pending_.erase(it);
  const auto route_it = cache_.find(target);
  RRNET_ASSERT(route_it != cache_.end());
  for (net::Packet& packet : queued) {
    ++stats_.data_originated;
    packet.extension = std::make_shared<const SourceRoute>(route_it->second);
    packet.payload_bytes +=
        static_cast<std::uint32_t>(route_it->second.size()) * kRouteEntryBytes;
    packet.actual_hops = 0;
    forward_on_route(std::move(packet));
  }
}

void DsrProtocol::handle_rreq(const net::Packet& packet) {
  if (packet.origin == node().id()) return;
  const SourceRoute& accumulated = route_of(packet);
  if (std::find(accumulated.begin(), accumulated.end(), node().id()) !=
      accumulated.end()) {
    return;  // loop
  }
  if (!rreq_seen_.observe(rreq_key(packet))) return;

  SourceRoute extended = accumulated;
  extended.push_back(node().id());
  cache_route(extended);

  if (packet.target == node().id()) {
    // Full route discovered: reply along the reversed route.
    ++stats_.rrep_sent;
    net::Packet rrep;
    rrep.type = net::PacketType::RouteReply;
    rrep.origin = node().id();
    rrep.target = packet.origin;
    rrep.sequence = next_sequence_++;
    rrep.uid = node().network().next_packet_uid();
    rrep.ttl = config_.ttl;
    rrep.created_at = node().scheduler().now();
    SourceRoute reversed = extended;
    std::reverse(reversed.begin(), reversed.end());
    rrep.extension = std::make_shared<const SourceRoute>(std::move(reversed));
    rrep.payload_bytes =
        static_cast<std::uint32_t>(extended.size()) * kRouteEntryBytes;
    rrep.actual_hops = 0;
    forward_on_route(std::move(rrep));
    return;
  }
  if (packet.ttl == 0) return;
  net::Packet copy = packet;
  copy.ttl -= 1;
  copy.prev_hop = node().id();
  copy.extension = std::make_shared<const SourceRoute>(std::move(extended));
  copy.payload_bytes += kRouteEntryBytes;
  const des::Time delay = rng_.uniform(0.0, config_.rreq_jitter);
  auto boxed = util::make_pooled<net::Packet>(std::move(copy));
  node().scheduler().schedule_in(delay, [this, boxed, delay]() {
    ++stats_.rreq_relayed;
    node().send_packet(*boxed, mac::kBroadcastAddress, delay);
  });
}

void DsrProtocol::handle_rrep(const net::Packet& packet) {
  cache_route(route_of(packet));
  if (packet.target == node().id()) {
    // The reply's route is [destination ... us]; the forward route to the
    // destination was cached by cache_route above. Release waiting data.
    if (pending_.count(packet.origin) > 0) flush_pending(packet.origin);
    return;
  }
  net::Packet copy = packet;
  copy.actual_hops += 1;
  ++stats_.rrep_forwarded;
  forward_on_route(std::move(copy));
}

void DsrProtocol::handle_data(const net::Packet& packet) {
  cache_route(route_of(packet));
  if (packet.target == node().id()) {
    if (delivered_.observe(packet.flood_key())) {
      ++stats_.data_delivered;
      net::Packet delivered = packet;
      // actual_hops held the route index; at the destination that index is
      // the number of hops traveled.
      delivered.actual_hops =
          static_cast<std::uint16_t>(route_of(packet).size() - 1);
      node().deliver_to_app(delivered);
    }
    return;
  }
  net::Packet copy = packet;
  copy.actual_hops += 1;
  forward_on_route(std::move(copy));
}

void DsrProtocol::purge_link(std::uint32_t from, std::uint32_t to) {
  for (auto it = cache_.begin(); it != cache_.end();) {
    const SourceRoute& route = it->second;
    bool broken = false;
    for (std::size_t i = 0; i + 1 < route.size(); ++i) {
      if ((route[i] == from && route[i + 1] == to) ||
          (route[i] == to && route[i + 1] == from)) {
        broken = true;
        break;
      }
    }
    if (broken) {
      cache_order_.erase(std::find(cache_order_.begin(), cache_order_.end(),
                                   it->first));
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
}

void DsrProtocol::handle_rerr(const net::Packet& packet) {
  if (!rerr_seen_.observe(packet.flood_key())) return;
  purge_link(packet.prev_hop, packet.unreachable);
}

void DsrProtocol::on_send_done(const net::Packet& packet, bool success,
                               std::uint32_t mac_dst) {
  if (success || mac_dst == mac::kBroadcastAddress) return;
  ++stats_.link_breaks;
  purge_link(node().id(), mac_dst);
  // Tell the neighborhood which link died; everyone drops routes using it.
  net::Packet rerr;
  rerr.type = net::PacketType::RouteError;
  rerr.origin = node().id();
  rerr.sequence = next_sequence_++;
  rerr.uid = node().network().next_packet_uid();
  rerr.prev_hop = node().id();  // the broken link is (prev_hop, unreachable)
  rerr.unreachable = mac_dst;
  rerr.created_at = node().scheduler().now();
  rerr_seen_.observe(rerr.flood_key());
  ++stats_.rerr_sent;
  node().send_packet(rerr, mac::kBroadcastAddress, 0.0);
  // Our own packet: requeue and rediscover; a forwarded one is dropped
  // (no salvaging in this implementation).
  if (packet.type == net::PacketType::Data && packet.origin == node().id()) {
    auto [it, inserted] = pending_.try_emplace(packet.target,
                                               node().scheduler());
    if (it->second.queued.size() < config_.pending_capacity) {
      net::Packet requeued = packet;
      requeued.payload_bytes -= static_cast<std::uint32_t>(
          route_of(packet).size() * kRouteEntryBytes);
      requeued.extension.reset();
      requeued.actual_hops = 0;
      it->second.queued.push_back(requeued);
      if (inserted) start_discovery(packet.target);
    } else {
      ++stats_.pending_dropped;
    }
  } else if (packet.type == net::PacketType::Data) {
    ++stats_.drops_bad_route;
  }
}

void DsrProtocol::on_packet(const net::Packet& packet,
                            const phy::RxInfo& /*info*/, bool for_us,
                            std::uint32_t /*mac_src*/) {
  if (!for_us) return;
  switch (packet.type) {
    case net::PacketType::RouteRequest:
      handle_rreq(packet);
      return;
    case net::PacketType::RouteReply:
      handle_rrep(packet);
      return;
    case net::PacketType::RouteError:
      handle_rerr(packet);
      return;
    case net::PacketType::Data:
      handle_data(packet);
      return;
    default:
      return;
  }
}

}  // namespace rrnet::proto
