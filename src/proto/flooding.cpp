#include "proto/flooding.hpp"

#include <utility>

#include "net/network.hpp"
#include "util/contracts.hpp"

namespace rrnet::proto {

FloodingProtocol::FloodingProtocol(net::Node& node, FloodingConfig config,
                                   std::unique_ptr<core::BackoffPolicy> policy)
    : net::Protocol(node),
      config_(config),
      policy_(std::move(policy)),
      elections_(node.scheduler()),
      rng_(node.rng().fork("flooding")) {
  RRNET_EXPECTS(policy_ != nullptr);
}

void FloodingProtocol::start() {
  const phy::Channel& channel = node().network().channel();
  // RSSI normalization span for the signal-strength policy: the weakest
  // decodable signal arrives from the edge of the nominal range, the
  // strongest realistic one from a neighbor a tenth of the range away.
  rssi_min_dbm_ = channel.params().rx_threshold_dbm;
  rssi_max_dbm_ = channel.model().mean_rx_power_dbm(
      channel.params().tx_power_dbm, 0.1 * channel.nominal_range_m());
}

core::ElectionContext FloodingProtocol::make_context(
    const phy::RxInfo& info) const noexcept {
  core::ElectionContext ctx;
  ctx.rssi_dbm = info.rssi_dbm;
  ctx.rssi_min_dbm = rssi_min_dbm_;
  ctx.rssi_max_dbm = rssi_max_dbm_;
  return ctx;
}

std::uint64_t FloodingProtocol::send_data(std::uint32_t target,
                                 std::uint32_t payload_bytes) {
  net::PacketInit init;
  init.type = net::PacketType::Data;
  init.origin = node().id();
  init.target = target;
  init.sequence = next_sequence_++;
  init.uid = node().next_packet_uid();
  init.actual_hops = 0;
  init.ttl = config_.ttl;
  init.prev_hop = node().id();
  init.payload_bytes = payload_bytes;
  init.created_at = node().scheduler().now();
  net::PacketRef packet = net::make_packet(std::move(init));
  ++stats_.originated;
  seen_.observe(packet.flood_key());  // never relay our own packet
  node().send_packet(packet, mac::kBroadcastAddress, /*priority=*/0.0);
  return packet.uid();
}

void FloodingProtocol::relay(net::PacketRef packet, des::Time priority_delay) {
  if (packet.ttl() == 0) {
    ++stats_.ttl_expired;
    return;
  }
  packet.hop().ttl -= 1;
  packet.hop().actual_hops += 1;
  packet.hop().prev_hop = node().id();
  ++stats_.relayed;
  node().send_packet(packet, mac::kBroadcastAddress, priority_delay);
}

void FloodingProtocol::on_packet(const net::PacketRef& packet,
                                 const phy::RxInfo& info, bool /*for_us*/,
                                 std::uint32_t mac_src) {
  if (packet.type() != net::PacketType::Data) return;
  const std::uint64_t key = packet.flood_key();
  const bool is_new = seen_.observe(key);

  if (is_new && packet.target() == node().id()) {
    net::PacketRef delivered = packet;
    delivered.hop().actual_hops += 1;  // hops traveled to reach this node
    ++stats_.delivered;
    node().deliver_to_app(delivered);
    if (!config_.forward_at_target) return;
  }
  if (packet.target() == node().id() && !config_.forward_at_target) return;

  if (config_.blind) {
    // Original flooding: rebroadcast once per (packet, transmitting
    // neighbor) copy — "forward to every neighbor except the one from which
    // the packet came" in broadcast-medium form.
    const std::uint64_t copy_key = key ^ (0x9E3779B97F4A7C15ULL *
                                          (static_cast<std::uint64_t>(mac_src) + 1));
    if (!copy_seen_.insert(copy_key).second) return;
    const des::Time delay = rng_.uniform(0.0, config_.lambda);
    // The ref shares the buffer: scheduling a relay copies 24 bytes, never
    // the packet.
    ++pending_relays_;
    node().scheduler().schedule_in(delay, [this, copy = packet, delay]() {
      --pending_relays_;
      relay(copy, delay);
    });
    return;
  }

  if (is_new) {
    // First sight: compete in the local leader election to relay it.
    core::ElectionContext ctx = make_context(info);
    elections_.arm(key, *policy_, ctx, rng_,
                   [this, copy = packet](des::Time delay) { relay(copy, delay); });
    return;
  }

  // Duplicate. Plain counter-1 keeps its pending rebroadcast (every node
  // forwards each new packet exactly once); the counter-based variant
  // suppresses once k duplicates have been overheard.
  if (config_.counter_threshold > 0 &&
      seen_.count(key) > config_.counter_threshold) {
    if (elections_.cancel(key, core::CancelReason::DuplicateHeard)) {
      ++stats_.suppressed;
    }
  }
}


void FloodingProtocol::snapshot_metrics(obs::MetricRegistry& reg) const {
  core::snapshot_metrics(elections_.stats(), reg);
  net::snapshot_metrics(seen_, reg);
}

std::unique_ptr<net::MigrationBlob> FloodingProtocol::export_state() const {
  auto blob = std::make_unique<FloodingMigrationState>();
  blob->stats = stats_;
  blob->election_stats = elections_.stats();
  blob->seen_stats = seen_.stats();
  blob->seen = seen_.export_entries();
  blob->copy_seen.assign(copy_seen_.begin(), copy_seen_.end());
  blob->next_sequence = next_sequence_;
  blob->rng = rng_.state();
  return blob;
}

void FloodingProtocol::import_state(const net::MigrationBlob& blob) {
  // The engine only ever pairs export/import of the same protocol type
  // (every shard attaches protocols from the same ScenarioConfig).
  const auto& s = static_cast<const FloodingMigrationState&>(blob);
  stats_ = s.stats;
  elections_.restore_stats(s.election_stats);
  seen_.restore(s.seen, s.seen_stats);
  for (const std::uint64_t key : s.copy_seen) copy_seen_.insert(key);
  next_sequence_ = s.next_sequence;
  rng_.restore(s.rng);
}

}  // namespace rrnet::proto
