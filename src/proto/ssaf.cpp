#include "proto/ssaf.hpp"

namespace rrnet::proto {

namespace {
FloodingConfig to_flooding_config(const SsafConfig& config) {
  FloodingConfig fc;
  fc.lambda = config.lambda;
  fc.ttl = config.ttl;
  fc.blind = false;
  fc.counter_threshold = config.counter_threshold;
  fc.forward_at_target = config.forward_at_target;
  return fc;
}
}  // namespace

SsafProtocol::SsafProtocol(net::Node& node, SsafConfig config)
    : FloodingProtocol(node, to_flooding_config(config),
                       std::make_unique<core::SignalStrengthBackoff>(
                           config.lambda, config.jitter_fraction)) {}

std::unique_ptr<net::Protocol> make_counter1_flooding(net::Node& node,
                                                      des::Time lambda,
                                                      std::uint8_t ttl) {
  FloodingConfig config;
  config.lambda = lambda;
  config.ttl = ttl;
  return std::make_unique<FloodingProtocol>(
      node, config, std::make_unique<core::UniformBackoff>(lambda));
}

std::unique_ptr<net::Protocol> make_ssaf(net::Node& node, SsafConfig config) {
  return std::make_unique<SsafProtocol>(node, config);
}

}  // namespace rrnet::proto
