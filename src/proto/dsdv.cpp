#include "proto/dsdv.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "net/network.hpp"
#include "util/contracts.hpp"

namespace rrnet::proto {

namespace {
/// On-air bytes per advertised route (dest + metric + seqno).
constexpr std::uint32_t kEntryBytes = 10;
}  // namespace

DsdvProtocol::DsdvProtocol(net::Node& node, DsdvConfig config)
    : net::Protocol(node),
      config_(config),
      rng_(node.rng().fork("dsdv")),
      periodic_timer_(node.scheduler()),
      triggered_timer_(node.scheduler()) {
  RRNET_EXPECTS(config.update_interval > 0.0);
  RRNET_EXPECTS(config.infinity_metric > 1);
}

void DsdvProtocol::start() {
  // Stagger first dumps so the network does not synchronize its beacons.
  periodic_timer_.start(rng_.uniform(0.0, config_.update_interval),
                        [this]() { schedule_periodic(); });
}

void DsdvProtocol::schedule_periodic() {
  broadcast_update(/*triggered=*/false);
  periodic_timer_.start(
      config_.update_interval * rng_.uniform(0.9, 1.1),
      [this]() { schedule_periodic(); });
}

void DsdvProtocol::broadcast_update(bool triggered) {
  const des::Time now = node().scheduler().now();
  last_update_ = now;
  triggered_pending_ = false;
  my_seqno_ += 2;  // stays even: this node is alive

  std::vector<DsdvEntry> entries;
  entries.push_back(DsdvEntry{node().id(), 0, my_seqno_});
  for (auto it = routes_.begin(); it != routes_.end();) {
    Route& route = it->second;
    if (now - route.refreshed > config_.route_expiry &&
        route.metric < config_.infinity_metric) {
      // Stale: advertise as broken once (odd seqno), then let it age out.
      route.metric = config_.infinity_metric;
      route.seqno += 1;
    }
    entries.push_back(DsdvEntry{it->first, route.metric, route.seqno});
    ++it;
  }

  net::PacketInit init;
  init.type = net::PacketType::RouteUpdate;
  init.origin = node().id();
  init.sequence = next_sequence_++;
  init.uid = node().next_packet_uid();
  init.payload_bytes =
      static_cast<std::uint32_t>(entries.size()) * kEntryBytes;
  init.created_at = now;
  init.prev_hop = node().id();
  ++stats_.updates_sent;
  if (triggered) ++stats_.triggered_updates;
  stats_.entries_advertised += entries.size();
  init.extension = net::make_extension<RouteTableExtension>(std::move(entries));
  node().send_packet(net::make_packet(std::move(init)),
                     mac::kBroadcastAddress, 0.0);
}

void DsdvProtocol::request_triggered_update() {
  if (triggered_pending_) return;
  const des::Time now = node().scheduler().now();
  const des::Time earliest = last_update_ + config_.triggered_min_gap;
  triggered_pending_ = true;
  triggered_timer_.start(std::max(0.0, earliest - now) +
                             rng_.uniform(0.0, 0.02),
                         [this]() { broadcast_update(/*triggered=*/true); });
}

bool DsdvProtocol::route_usable(const Route& route) const {
  return route.metric < config_.infinity_metric &&
         route.next_hop != net::kNoNode;
}

bool DsdvProtocol::has_route(std::uint32_t target) const {
  const auto it = routes_.find(target);
  return it != routes_.end() && route_usable(it->second);
}

std::uint32_t DsdvProtocol::next_hop(std::uint32_t target) const {
  const auto it = routes_.find(target);
  RRNET_EXPECTS(it != routes_.end() && route_usable(it->second));
  return it->second.next_hop;
}

std::uint16_t DsdvProtocol::route_metric(std::uint32_t target) const {
  const auto it = routes_.find(target);
  RRNET_EXPECTS(it != routes_.end());
  return it->second.metric;
}

void DsdvProtocol::handle_update(const net::PacketRef& packet,
                                 std::uint32_t mac_src) {
  const auto* ext = packet.extension_as<RouteTableExtension>();
  RRNET_ASSERT(ext != nullptr);
  const std::vector<DsdvEntry>& entries = ext->entries;
  const des::Time now = node().scheduler().now();
  bool significant_change = false;
  for (const DsdvEntry& entry : entries) {
    if (entry.destination == node().id()) continue;
    const std::uint16_t metric =
        entry.metric >= config_.infinity_metric
            ? config_.infinity_metric
            : static_cast<std::uint16_t>(entry.metric + 1);
    const bool is_new_destination = routes_.count(entry.destination) == 0;
    Route& route = routes_[entry.destination];
    const bool newer = entry.seqno > route.seqno;
    const bool same_but_better =
        entry.seqno == route.seqno && metric < route.metric;
    if (route.next_hop == net::kNoNode || newer || same_but_better) {
      const bool was_usable = route_usable(route);
      route.next_hop = metric >= config_.infinity_metric ? route.next_hop
                                                         : mac_src;
      route.metric = metric;
      route.seqno = entry.seqno;
      route.refreshed = now;
      // Real DSDV damps triggered updates to *significant* events: a
      // destination appearing, breaking, or recovering. Metric churn from
      // neighbors racing to deliver each round's fresh sequence number is
      // left to the periodic dump, or the network drowns in updates.
      if (route_usable(route) != was_usable || is_new_destination) {
        significant_change = true;
      }
      if (route_usable(route)) flush_pending(entry.destination);
    } else if (entry.seqno == route.seqno && route.next_hop == mac_src) {
      route.refreshed = now;  // our chosen hop re-confirmed the route
    }
  }
  if (significant_change) request_triggered_update();
}

std::uint64_t DsdvProtocol::send_data(std::uint32_t target,
                                      std::uint32_t payload_bytes) {
  RRNET_EXPECTS(target != node().id());
  net::PacketInit init;
  init.type = net::PacketType::Data;
  init.origin = node().id();
  init.target = target;
  init.sequence = next_sequence_++;
  init.uid = node().next_packet_uid();
  init.ttl = config_.ttl;
  init.payload_bytes = payload_bytes;
  init.created_at = node().scheduler().now();
  const std::uint64_t uid = init.uid;
  net::PacketRef packet = net::make_packet(std::move(init));
  if (!has_route(target)) {
    // Proactive protocol: no discovery to trigger. Buffer briefly — the
    // next periodic update may bring the route.
    auto& queue = pending_[target];
    if (queue.size() >= config_.pending_capacity) {
      ++stats_.pending_dropped;
      return uid;
    }
    queue.push_back(std::move(packet));
    return uid;
  }
  ++stats_.data_originated;
  forward_data(std::move(packet));
  return uid;
}

void DsdvProtocol::flush_pending(std::uint32_t target) {
  const auto it = pending_.find(target);
  if (it == pending_.end()) return;
  std::vector<net::PacketRef> queued = std::move(it->second);
  pending_.erase(it);
  for (net::PacketRef& packet : queued) {
    ++stats_.data_originated;
    forward_data(std::move(packet));
  }
}

void DsdvProtocol::forward_data(net::PacketRef packet) {
  if (packet.ttl() == 0 || !has_route(packet.target())) {
    ++stats_.drops_no_route;
    return;
  }
  packet.hop().ttl -= 1;
  packet.hop().prev_hop = node().id();
  if (packet.origin() != node().id()) ++stats_.data_forwarded;
  node().send_packet(packet, next_hop(packet.target()), 0.0);
}

void DsdvProtocol::handle_data(const net::PacketRef& packet) {
  if (packet.target() == node().id()) {
    ++stats_.data_delivered;
    net::PacketRef delivered = packet;
    delivered.hop().actual_hops =
        static_cast<std::uint16_t>(packet.actual_hops() + 1);
    node().deliver_to_app(delivered);
    return;
  }
  net::PacketRef copy = packet;
  copy.hop().actual_hops += 1;
  forward_data(std::move(copy));
}

void DsdvProtocol::handle_link_break(std::uint32_t neighbor) {
  ++stats_.link_breaks;
  bool changed = false;
  for (auto& [dest, route] : routes_) {
    if (route.next_hop == neighbor && route_usable(route)) {
      route.metric = config_.infinity_metric;
      route.seqno += 1;  // odd: broken, wins over the stale even seqno
      changed = true;
    }
  }
  if (changed) request_triggered_update();
}

void DsdvProtocol::on_send_done(const net::PacketRef& packet, bool success,
                                std::uint32_t mac_dst) {
  (void)packet;
  if (success || mac_dst == mac::kBroadcastAddress) return;
  handle_link_break(mac_dst);
}

void DsdvProtocol::on_packet(const net::PacketRef& packet,
                             const phy::RxInfo& /*info*/, bool for_us,
                             std::uint32_t mac_src) {
  if (!for_us) return;
  switch (packet.type()) {
    case net::PacketType::RouteUpdate:
      handle_update(packet, mac_src);
      return;
    case net::PacketType::Data:
      handle_data(packet);
      return;
    default:
      return;
  }
}

}  // namespace rrnet::proto
